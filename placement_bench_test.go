package dbvirt_test

import (
	"context"
	"fmt"
	"testing"

	"dbvirt/internal/core"
	"dbvirt/internal/experiments"
	"dbvirt/internal/placement"
)

// fleetSize is the BENCH_9 regime: >= 1,000 tenants at paper scale, a
// smaller fleet under -short (CI).
func fleetSize() int {
	if testing.Short() {
		return 300
	}
	return 1000
}

// newFleetSolver builds a cold fleet solver: fresh synthetic grid, fresh
// what-if model (empty prepared-statement cache), fresh shared cost
// memo — the from-scratch baseline an incremental Apply is measured
// against.
func newFleetSolver(b *testing.B, e *experiments.Env) *placement.Solver {
	b.Helper()
	axes := []float64{0.25, 0.5, 0.75, 1.0}
	grid, err := experiments.SyntheticGrid(axes, axes, axes)
	if err != nil {
		b.Fatal(err)
	}
	model := core.NewSharedCostModel(&core.WhatIfModel{Grid: grid}, func(w *core.WorkloadSpec) string {
		return placement.SpecKey(w)
	})
	solver, err := placement.NewSolver(placement.Config{}, model)
	if err != nil {
		b.Fatal(err)
	}
	return solver
}

// BenchmarkPlacementFleet measures fleet placement at BENCH_9 scale:
//
//   - full: a from-scratch solve — cold solver, cold cost model — of the
//     whole fleet, the cost a naive controller pays per fleet change.
//   - incremental: a single fleet event per iteration (alternating one
//     tenant arrival and its departure) applied to a warm placement via
//     Placement.Apply, which re-solves only the dirty machine shapes
//     against the solver's memos.
//
// The ns/op ratio full/incremental is therefore the per-event speedup;
// the CI placement-bench job asserts it stays >= 5x, and BENCH_9.json
// records the measured value.
func BenchmarkPlacementFleet(b *testing.B) {
	e := sharedEnv(b)
	ctx := context.Background()
	n := fleetSize()
	tenants, err := e.FleetTenants(n, 11)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver := newFleetSolver(b, e)
			pl, err := solver.Solve(ctx, tenants)
			if err != nil {
				b.Fatal(err)
			}
			if err := pl.Verify(ctx); err != nil {
				b.Fatal(err)
			}
			if pl.Stats.Tenants != n {
				b.Fatalf("placed %d of %d tenants", pl.Stats.Tenants, n)
			}
		}
	})

	b.Run("incremental", func(b *testing.B) {
		solver := newFleetSolver(b, e)
		pl, err := solver.Solve(ctx, tenants)
		if err != nil {
			b.Fatal(err)
		}
		extra, err := e.FleetTenants(1, 997)
		if err != nil {
			b.Fatal(err)
		}
		extra[0].Name = "t-extra"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := placement.Event{Type: placement.Arrive, Tenant: extra[0]}
			if i%2 == 1 {
				ev = placement.Event{Type: placement.Leave, Name: "t-extra"}
			}
			if _, err := pl.Apply(ctx, ev); err != nil {
				b.Fatal(err)
			}
		}
	})

	emit("placement", fmt.Sprintf("placement fleet: %d tenants\n", n))
}
