package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dbvirt/internal/faults"
)

// Device is the durable medium under a Log: an append-only byte store
// with explicit sync. Two implementations exist — FileDevice for real
// durability and MemDevice for tests and for simulated (cost-only) WALs in
// the experiments — plus FaultDevice, which wraps either with a seeded
// fault injector.
type Device interface {
	// Append writes one record frame (or the header) at the end.
	Append(buf []byte) error
	// Sync makes every appended byte durable.
	Sync() error
	// Load returns the device's full current contents.
	Load() ([]byte, error)
	// Reset atomically replaces the contents with initial (a fresh
	// header) and makes the replacement durable.
	Reset(initial []byte) error
	// Size returns the current length in bytes.
	Size() int64
	// Close releases the device, reporting any deferred write error.
	Close() error
}

// MemDevice is an in-memory Device for tests and cost-only logging.
type MemDevice struct {
	buf []byte
}

// NewMemDevice creates an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// Append implements Device.
func (m *MemDevice) Append(buf []byte) error {
	m.buf = append(m.buf, buf...)
	return nil
}

// Sync implements Device (a no-op in memory).
func (m *MemDevice) Sync() error { return nil }

// Load implements Device.
func (m *MemDevice) Load() ([]byte, error) { return append([]byte(nil), m.buf...), nil }

// Reset implements Device.
func (m *MemDevice) Reset(initial []byte) error {
	m.buf = append(m.buf[:0], initial...)
	return nil
}

// Size implements Device.
func (m *MemDevice) Size() int64 { return int64(len(m.buf)) }

// Close implements Device.
func (m *MemDevice) Close() error { return nil }

// FileDevice is a Device over one file. Writes go straight to the file
// descriptor; Sync is fsync. Reset writes a sibling temp file, fsyncs it,
// renames it over the log, and fsyncs the directory, so a crash during
// reset leaves either the old or the new log, never a hybrid.
type FileDevice struct {
	path string
	f    *os.File
	size int64
}

// OpenFileDevice opens (creating if absent) the log file at path.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &FileDevice{path: path, f: f, size: st.Size()}, nil
}

// Append implements Device.
func (d *FileDevice) Append(buf []byte) error {
	n, err := d.f.Write(buf)
	d.size += int64(n)
	if err != nil {
		return fmt.Errorf("wal: appending to %s: %w", d.path, err)
	}
	return nil
}

// Sync implements Device.
func (d *FileDevice) Sync() error {
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", d.path, err)
	}
	return nil
}

// Load implements Device.
func (d *FileDevice) Load() ([]byte, error) {
	data, err := os.ReadFile(d.path)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Reset implements Device.
func (d *FileDevice) Reset(initial []byte) error {
	tmp := d.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Write(initial); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return err
	}
	if err := os.Rename(tmp, d.path); err != nil {
		nf.Close()
		return err
	}
	if err := SyncDir(filepath.Dir(d.path)); err != nil {
		nf.Close()
		return err
	}
	// The old descriptor now points at the unlinked file; swap to the new
	// one. The old close error is surfaced: a deferred write error on the
	// superseded log is still a disk telling us something.
	old := d.f
	d.f = nf
	d.size = int64(len(initial))
	if err := old.Close(); err != nil {
		return fmt.Errorf("wal: closing superseded log: %w", err)
	}
	return nil
}

// Size implements Device.
func (d *FileDevice) Size() int64 { return d.size }

// Close implements Device, syncing first so a clean shutdown is durable
// and propagating both errors (close errors on Linux can carry deferred
// write-back failures).
func (d *FileDevice) Close() error {
	syncErr := d.f.Sync()
	closeErr := d.f.Close()
	if syncErr != nil {
		return fmt.Errorf("wal: fsync %s on close: %w", d.path, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("wal: close %s: %w", d.path, closeErr)
	}
	return nil
}

// SyncDir fsyncs a directory, making renames within it durable.
func SyncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := df.Sync()
	closeErr := df.Close()
	if syncErr != nil {
		return fmt.Errorf("wal: fsync dir %s: %w", dir, syncErr)
	}
	return closeErr
}

// FaultDevice wraps a Device with deterministic seeded disk faults: crash
// at a record boundary (optionally tearing the next record), fsync
// errors, and partial reads. Used by the crash-recovery tests.
type FaultDevice struct {
	Inner Device
	Inj   *faults.DiskInjector
}

// NewFaultDevice wraps dev with the given injector.
func NewFaultDevice(dev Device, inj *faults.DiskInjector) *FaultDevice {
	return &FaultDevice{Inner: dev, Inj: inj}
}

// Append implements Device, consulting the injector per record.
func (d *FaultDevice) Append(buf []byte) error {
	out := d.Inj.Append(int64(len(buf)))
	if out.Err != nil {
		if out.TornPrefix > 0 {
			// A torn write: a prefix of the record reaches the platter
			// before the crash.
			if err := d.Inner.Append(buf[:out.TornPrefix]); err != nil {
				return err
			}
		}
		return out.Err
	}
	return d.Inner.Append(buf)
}

// Sync implements Device.
func (d *FaultDevice) Sync() error {
	if err := d.Inj.Fsync(); err != nil {
		return err
	}
	return d.Inner.Sync()
}

// Load implements Device; partial reads shorten the returned prefix.
func (d *FaultDevice) Load() ([]byte, error) {
	data, err := d.Inner.Load()
	if err != nil {
		return nil, err
	}
	if n := d.Inj.Read(len(data)); n < len(data) {
		return data[:n], nil
	}
	return data, nil
}

// Reset implements Device.
func (d *FaultDevice) Reset(initial []byte) error {
	if d.Inj.Crashed() {
		return faults.ErrCrash
	}
	return d.Inner.Reset(initial)
}

// Size implements Device.
func (d *FaultDevice) Size() int64 { return d.Inner.Size() }

// Close implements Device.
func (d *FaultDevice) Close() error { return d.Inner.Close() }
