// Package wal implements the engine's write-ahead log: checksummed,
// length-prefixed records describing transaction boundaries and logical
// tuple operations, an append-only writer with group fsync, and a scanner
// that recovers the longest valid record prefix from a possibly torn log.
//
// The log is logical (ARIES-lite): each data record names a table, a tuple
// identifier, and a full tuple image. Redo replays every record in log
// order against a snapshot-consistent base image — including the work of
// transactions that later abort — which makes the physical page layout of
// the recovered database a deterministic function of the log alone; the
// undo phase then reverts the loser transactions exactly as a runtime
// rollback would. Tuple-level undo images double as the statement-level
// undo log that makes DML statements all-or-nothing.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"dbvirt/internal/storage"
)

// Magic and epoch header written at the start of every log file. The epoch
// ties a log to the snapshot it extends: recovery ignores a log whose
// epoch is older than the snapshot's (a crash between snapshot publication
// and log reset leaves exactly that state behind).
const (
	Magic      = "DBVWAL01"
	HeaderSize = len(Magic) + 8
)

// RecordType enumerates the log record kinds.
type RecordType uint8

// Record types.
const (
	RecBegin RecordType = iota + 1
	RecCommit
	RecAbort
	RecInsert
	RecDelete
	RecCreateTable
	RecCreateIndex
	RecCheckpoint
	// RecUndoInsert and RecUndoDelete are compensation records (ARIES
	// CLRs): they are written when a failed statement's work is rolled
	// back inside a transaction that continues, so redo replays the
	// rollback and the loser-undo pass knows those operations are already
	// reverted. An undo-insert reverts an insert (same Table/TID/Tuple);
	// an undo-delete reverts a delete.
	RecUndoInsert
	RecUndoDelete
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecCreateTable:
		return "CREATE TABLE"
	case RecCreateIndex:
		return "CREATE INDEX"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecUndoInsert:
		return "UNDO INSERT"
	case RecUndoDelete:
		return "UNDO DELETE"
	default:
		return fmt.Sprintf("record(%d)", uint8(t))
	}
}

// ColumnDef is one column of a logged CREATE TABLE.
type ColumnDef struct {
	Name string
	Kind uint8
}

// Record is one decoded log record. Fields beyond Type and XID are
// populated per type: Insert/Delete carry Table, TID and Tuple (the redo
// image for inserts, the undo image for deletes); CreateTable carries
// Table and Cols; CreateIndex carries Table, Index and Column.
type Record struct {
	Type  RecordType
	XID   uint64
	Table string
	TID   storage.TID
	// Tuple is the encoded tuple image (storage.EncodeTuple bytes).
	Tuple  []byte
	Cols   []ColumnDef
	Index  string
	Column string
	// ActiveXIDs lists in-flight transactions at a checkpoint record.
	ActiveXIDs []uint64
}

// crcTable is the Castagnoli polynomial, as used by filesystems.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame layout: | payloadLen uint32 | crc32c(payload) uint32 | payload |.
const frameHeader = 8

// maxPayload bounds a single record; anything larger is corrupt. One
// tuple fits one 8 KiB page, so 1 MiB leaves two orders of headroom while
// keeping a corrupt length prefix from allocating gigabytes.
const maxPayload = 1 << 20

func putString(buf []byte, s string) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(s)))
	buf = append(buf, tmp[:]...)
	return append(buf, s...)
}

func getString(buf []byte) (string, []byte, error) {
	if len(buf) < 4 {
		return "", nil, fmt.Errorf("wal: truncated string length")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if n < 0 || n > len(buf) {
		return "", nil, fmt.Errorf("wal: string of %d bytes exceeds payload", n)
	}
	return string(buf[:n]), buf[n:], nil
}

// Encode frames the record: length prefix, checksum, payload.
func Encode(r *Record) ([]byte, error) {
	payload := make([]byte, 0, 64+len(r.Tuple))
	payload = append(payload, byte(r.Type))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], r.XID)
	payload = append(payload, tmp[:]...)
	switch r.Type {
	case RecBegin, RecCommit, RecAbort:
	case RecInsert, RecDelete, RecUndoInsert, RecUndoDelete:
		payload = putString(payload, r.Table)
		binary.LittleEndian.PutUint32(tmp[:4], r.TID.Page)
		payload = append(payload, tmp[:4]...)
		binary.LittleEndian.PutUint16(tmp[:2], r.TID.Slot)
		payload = append(payload, tmp[:2]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(r.Tuple)))
		payload = append(payload, tmp[:4]...)
		payload = append(payload, r.Tuple...)
	case RecCreateTable:
		payload = putString(payload, r.Table)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(r.Cols)))
		payload = append(payload, tmp[:4]...)
		for _, c := range r.Cols {
			payload = putString(payload, c.Name)
			payload = append(payload, c.Kind)
		}
	case RecCreateIndex:
		payload = putString(payload, r.Table)
		payload = putString(payload, r.Index)
		payload = putString(payload, r.Column)
	case RecCheckpoint:
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(r.ActiveXIDs)))
		payload = append(payload, tmp[:4]...)
		for _, x := range r.ActiveXIDs {
			binary.LittleEndian.PutUint64(tmp[:], x)
			payload = append(payload, tmp[:]...)
		}
	default:
		return nil, fmt.Errorf("wal: cannot encode record type %d", r.Type)
	}
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("wal: record payload of %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// decodePayload parses one checksum-verified payload into a Record.
func decodePayload(payload []byte) (*Record, error) {
	if len(payload) < 9 {
		return nil, fmt.Errorf("wal: payload of %d bytes too short", len(payload))
	}
	r := &Record{Type: RecordType(payload[0])}
	r.XID = binary.LittleEndian.Uint64(payload[1:])
	rest := payload[9:]
	var err error
	switch r.Type {
	case RecBegin, RecCommit, RecAbort:
		if len(rest) != 0 {
			return nil, fmt.Errorf("wal: %s record has %d trailing bytes", r.Type, len(rest))
		}
	case RecInsert, RecDelete, RecUndoInsert, RecUndoDelete:
		if r.Table, rest, err = getString(rest); err != nil {
			return nil, err
		}
		if len(rest) < 10 {
			return nil, fmt.Errorf("wal: truncated %s record", r.Type)
		}
		r.TID.Page = binary.LittleEndian.Uint32(rest)
		r.TID.Slot = binary.LittleEndian.Uint16(rest[4:])
		n := int(binary.LittleEndian.Uint32(rest[6:]))
		rest = rest[10:]
		if n != len(rest) {
			return nil, fmt.Errorf("wal: tuple image of %d bytes, %d remain", n, len(rest))
		}
		r.Tuple = append([]byte(nil), rest...)
	case RecCreateTable:
		if r.Table, rest, err = getString(rest); err != nil {
			return nil, err
		}
		if len(rest) < 4 {
			return nil, fmt.Errorf("wal: truncated CREATE TABLE record")
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if n > maxPayload/2 {
			return nil, fmt.Errorf("wal: implausible column count %d", n)
		}
		r.Cols = make([]ColumnDef, 0, n)
		for i := 0; i < n; i++ {
			var name string
			if name, rest, err = getString(rest); err != nil {
				return nil, err
			}
			if len(rest) < 1 {
				return nil, fmt.Errorf("wal: truncated column kind")
			}
			r.Cols = append(r.Cols, ColumnDef{Name: name, Kind: rest[0]})
			rest = rest[1:]
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("wal: CREATE TABLE record has %d trailing bytes", len(rest))
		}
	case RecCreateIndex:
		if r.Table, rest, err = getString(rest); err != nil {
			return nil, err
		}
		if r.Index, rest, err = getString(rest); err != nil {
			return nil, err
		}
		if r.Column, rest, err = getString(rest); err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("wal: CREATE INDEX record has %d trailing bytes", len(rest))
		}
	case RecCheckpoint:
		if len(rest) < 4 {
			return nil, fmt.Errorf("wal: truncated checkpoint record")
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if n*8 != len(rest) {
			return nil, fmt.Errorf("wal: checkpoint lists %d XIDs, %d bytes remain", n, len(rest))
		}
		r.ActiveXIDs = make([]uint64, n)
		for i := 0; i < n; i++ {
			r.ActiveXIDs[i] = binary.LittleEndian.Uint64(rest[i*8:])
		}
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", payload[0])
	}
	return r, nil
}

// Scan parses the record region of a log (everything after the file
// header) and returns the decoded records of the longest valid prefix,
// plus the byte length of that prefix. A torn or corrupt tail — short
// frame, impossible length, checksum mismatch, undecodable payload — ends
// the scan cleanly rather than erroring: everything after the last valid
// record is garbage a crash may legitimately leave behind, and the caller
// truncates the log there. Scan never panics on arbitrary input (the
// FuzzWALDecode target).
func Scan(data []byte) (recs []*Record, valid int) {
	off := 0
	for {
		if off+frameHeader > len(data) {
			return recs, off
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n < 9 || n > maxPayload || off+frameHeader+n > len(data) {
			return recs, off
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[off+4:]) {
			return recs, off
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += frameHeader + n
	}
}

// EncodeHeader renders the log file header for the given epoch.
func EncodeHeader(epoch uint64) []byte {
	buf := make([]byte, HeaderSize)
	copy(buf, Magic)
	binary.LittleEndian.PutUint64(buf[len(Magic):], epoch)
	return buf
}

// DecodeHeader parses a log file header, returning its epoch.
func DecodeHeader(data []byte) (uint64, error) {
	if len(data) < HeaderSize {
		return 0, fmt.Errorf("wal: log shorter than header (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return 0, fmt.Errorf("wal: bad log magic %q", data[:len(Magic)])
	}
	return binary.LittleEndian.Uint64(data[len(Magic):]), nil
}
