package wal

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"dbvirt/internal/faults"
	"dbvirt/internal/storage"
)

// sampleRecords returns one record of every type with every per-type field
// populated.
func sampleRecords() []*Record {
	return []*Record{
		{Type: RecBegin, XID: 7},
		{Type: RecCommit, XID: 7},
		{Type: RecAbort, XID: 8},
		{Type: RecInsert, XID: 7, Table: "t", TID: storage.TID{Page: 3, Slot: 9}, Tuple: []byte{1, 2, 3}},
		{Type: RecDelete, XID: 7, Table: "t", TID: storage.TID{Page: 1, Slot: 0}, Tuple: []byte{4, 5}},
		{Type: RecUndoInsert, XID: 7, Table: "t", TID: storage.TID{Page: 3, Slot: 9}, Tuple: []byte{1, 2, 3}},
		{Type: RecUndoDelete, XID: 7, Table: "t", TID: storage.TID{Page: 1, Slot: 0}, Tuple: []byte{4, 5}},
		{Type: RecCreateTable, Table: "orders", Cols: []ColumnDef{{Name: "a", Kind: 1}, {Name: "b", Kind: 3}}},
		{Type: RecCreateIndex, Table: "orders", Index: "orders_a", Column: "a"},
		{Type: RecCheckpoint, ActiveXIDs: []uint64{3, 9, 12}},
	}
}

func encodeAll(t *testing.T, recs []*Record) []byte {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		frame, err := Encode(r)
		if err != nil {
			t.Fatalf("encode %v: %v", r.Type, err)
		}
		buf = append(buf, frame...)
	}
	return buf
}

func TestRecordRoundTrip(t *testing.T) {
	want := sampleRecords()
	data := encodeAll(t, want)
	got, valid := Scan(data)
	if valid != len(data) {
		t.Fatalf("Scan consumed %d of %d bytes", valid, len(data))
	}
	if len(got) != len(want) {
		t.Fatalf("Scan returned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestScanTornTail(t *testing.T) {
	recs := sampleRecords()[:3]
	data := encodeAll(t, recs)
	frame, err := Encode(&Record{Type: RecInsert, XID: 9, Table: "t", Tuple: []byte{9}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(frame); cut++ {
		torn := append(append([]byte(nil), data...), frame[:cut]...)
		got, valid := Scan(torn)
		if valid != len(data) {
			t.Fatalf("cut %d: valid=%d, want %d", cut, valid, len(data))
		}
		if len(got) != len(recs) {
			t.Fatalf("cut %d: got %d records, want %d", cut, len(got), len(recs))
		}
	}
}

func TestScanCorruptChecksum(t *testing.T) {
	recs := sampleRecords()
	data := encodeAll(t, recs)
	first, err := Encode(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second record: everything from it on is
	// discarded, the first record survives.
	data[len(first)+frameHeader] ^= 0xff
	got, valid := Scan(data)
	if valid != len(first) {
		t.Fatalf("valid=%d, want %d", valid, len(first))
	}
	if len(got) != 1 || got[0].Type != recs[0].Type {
		t.Fatalf("got %d records, want the first only", len(got))
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := EncodeHeader(42)
	if len(h) != HeaderSize {
		t.Fatalf("header is %d bytes, want %d", len(h), HeaderSize)
	}
	epoch, err := DecodeHeader(h)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 42 {
		t.Fatalf("epoch=%d, want 42", epoch)
	}
	bad := append([]byte(nil), h...)
	bad[0] ^= 0xff
	if _, err := DecodeHeader(bad); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	if _, err := DecodeHeader(h[:HeaderSize-1]); err == nil {
		t.Fatal("short header accepted")
	}
}

// countingDevice wraps a MemDevice and counts Sync calls.
type countingDevice struct {
	*MemDevice
	syncs int
}

func (c *countingDevice) Sync() error {
	c.syncs++
	return c.MemDevice.Sync()
}

func TestLogFlushCoalesces(t *testing.T) {
	dev := &countingDevice{MemDevice: NewMemDevice()}
	l, err := OpenLog(dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := dev.syncs // header sync
	lsn1, err := l.Append(&Record{Type: RecBegin, XID: 1})
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := l.Append(&Record{Type: RecCommit, XID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(lsn2); err != nil {
		t.Fatal(err)
	}
	if dev.syncs != base+1 {
		t.Fatalf("syncs=%d after first flush, want %d", dev.syncs, base+1)
	}
	// A flush target already covered by the previous fsync coalesces.
	if err := l.Flush(lsn1); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(lsn2); err != nil {
		t.Fatal(err)
	}
	if dev.syncs != base+1 {
		t.Fatalf("syncs=%d after coalesced flushes, want %d", dev.syncs, base+1)
	}
	if l.Records() != 2 {
		t.Fatalf("records=%d, want 2", l.Records())
	}
}

func TestLogResetAndReopen(t *testing.T) {
	dev := NewMemDevice()
	l, err := OpenLog(dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(&Record{Type: RecBegin, XID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(2); err != nil {
		t.Fatal(err)
	}
	if l.Epoch() != 2 || l.Records() != 0 || l.AppendedBytes() != int64(HeaderSize) {
		t.Fatalf("after reset: epoch=%d records=%d bytes=%d", l.Epoch(), l.Records(), l.AppendedBytes())
	}
	if _, err := l.Append(&Record{Type: RecBegin, XID: 9}); err != nil {
		t.Fatal(err)
	}
	// Reopening over the same device resumes: the stored epoch wins over
	// the caller's, the record count is rebuilt by scanning.
	l2, err := OpenLog(dev, 99)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Epoch() != 2 || l2.Records() != 1 {
		t.Fatalf("reopened: epoch=%d records=%d, want 2/1", l2.Epoch(), l2.Records())
	}
}

func TestOpenLogRejectsTornTail(t *testing.T) {
	dev := NewMemDevice()
	l, err := OpenLog(dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecBegin, XID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Append([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(dev, 1); err == nil {
		t.Fatal("torn tail accepted by OpenLog")
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := append(EncodeHeader(1), []byte("hello")...)
	if err := d.Append(payload); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if d.Size() != int64(len(payload)) {
		t.Fatalf("size=%d, want %d", d.Size(), len(payload))
	}
	got, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("load mismatch")
	}
	if err := d.Reset(EncodeHeader(2)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the reset contents survived, the temp file did not.
	d2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err = d2.Load()
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := DecodeHeader(got)
	if err != nil || epoch != 2 {
		t.Fatalf("after reset: epoch=%d err=%v, want 2", epoch, err)
	}
}

func TestFaultDeviceCrashAtBoundary(t *testing.T) {
	mem := NewMemDevice()
	// Pre-seed the header: the injector counts every device append, and the
	// header would otherwise consume the first crash tick.
	if err := mem.Append(EncodeHeader(1)); err != nil {
		t.Fatal(err)
	}
	inj := faults.NewDisk(faults.DiskConfig{Seed: 1, CrashAfterRecords: 2})
	d := NewFaultDevice(mem, inj)
	l, err := OpenLog(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecBegin, XID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecInsert, XID: 1, Table: "t", Tuple: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecCommit, XID: 1}); !faults.IsCrash(err) {
		t.Fatalf("third append: err=%v, want crash", err)
	}
	// Everything after the crash fails too, including fsync and reset.
	if _, err := l.Append(&Record{Type: RecAbort, XID: 1}); !faults.IsCrash(err) {
		t.Fatalf("post-crash append: err=%v, want crash", err)
	}
	if err := d.Sync(); !faults.IsCrash(err) {
		t.Fatalf("post-crash sync: err=%v, want crash", err)
	}
	if err := d.Reset(EncodeHeader(2)); !faults.IsCrash(err) {
		t.Fatalf("post-crash reset: err=%v, want crash", err)
	}
	// The surviving contents hold exactly the two durable records.
	data, err := mem.Load()
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := Scan(data[HeaderSize:])
	if len(recs) != 2 {
		t.Fatalf("%d records survived, want 2", len(recs))
	}
}

func TestFaultDeviceTornWrite(t *testing.T) {
	mem := NewMemDevice()
	if err := mem.Append(EncodeHeader(1)); err != nil {
		t.Fatal(err)
	}
	inj := faults.NewDisk(faults.DiskConfig{Seed: 1, CrashAfterRecords: 1, TornBytes: 5})
	d := NewFaultDevice(mem, inj)
	l, err := OpenLog(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	lsn1, err := l.Append(&Record{Type: RecBegin, XID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecCommit, XID: 1}); !faults.IsCrash(err) {
		t.Fatalf("err=%v, want crash", err)
	}
	data, err := mem.Load()
	if err != nil {
		t.Fatal(err)
	}
	// Five bytes of the torn record reached the device...
	if int64(len(data)) != int64(lsn1)+5 {
		t.Fatalf("device holds %d bytes, want %d", len(data), int64(lsn1)+5)
	}
	// ...and checksum scanning discards them.
	recs, valid := Scan(data[HeaderSize:])
	if len(recs) != 1 || int64(HeaderSize+valid) != int64(lsn1) {
		t.Fatalf("scan: %d records, valid=%d", len(recs), valid)
	}
}

func TestFaultDeviceFsyncError(t *testing.T) {
	mem := NewMemDevice()
	// Header is appended before the log's first sync, so seed the device
	// with a header and let OpenLog take the scan path (no sync needed).
	if err := mem.Append(EncodeHeader(1)); err != nil {
		t.Fatal(err)
	}
	d := NewFaultDevice(mem, faults.NewDisk(faults.DiskConfig{Seed: 1, FsyncErrRate: 1}))
	l, err := OpenLog(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(&Record{Type: RecBegin, XID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(lsn); !errors.Is(err, faults.ErrFsync) {
		t.Fatalf("flush err=%v, want ErrFsync", err)
	}
}
