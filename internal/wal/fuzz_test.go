package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode exercises the log reader on arbitrary bytes. Scan is the
// crash-recovery entry point — it must never panic, must stop at the first
// invalid frame (checksum, length, or payload corruption), and the valid
// prefix it reports must itself decode to the same records (recovery
// truncates the log to that prefix, so the property is load-bearing).
func FuzzWALDecode(f *testing.F) {
	// Seeds: a header, each record type, a multi-record log, and torn and
	// corrupted variants.
	f.Add([]byte{})
	f.Add(EncodeHeader(1))
	var all []byte
	for _, r := range sampleRecords() {
		frame, err := Encode(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		all = append(all, frame...)
	}
	f.Add(all)
	f.Add(all[:len(all)-3]) // torn tail
	flipped := append([]byte(nil), all...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped) // mid-log corruption

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := Scan(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid=%d out of range [0,%d]", valid, len(data))
		}
		// The valid prefix must re-scan to the identical record sequence
		// with nothing left over.
		recs2, valid2 := Scan(data[:valid])
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("rescan of valid prefix: %d records/%d bytes, want %d/%d",
				len(recs2), valid2, len(recs), valid)
		}
		// Every decoded record must re-encode and decode back cleanly
		// (recovery trusts these fields verbatim).
		for i, r := range recs {
			frame, err := Encode(r)
			if err != nil {
				t.Fatalf("record %d does not re-encode: %v", i, err)
			}
			rr, v := Scan(frame)
			if len(rr) != 1 || v != len(frame) {
				t.Fatalf("record %d re-encoding does not re-decode", i)
			}
		}
		// Header decoding must never panic either.
		if epoch, err := DecodeHeader(data); err == nil {
			if !bytes.Equal(EncodeHeader(epoch)[:len(Magic)], data[:len(Magic)]) {
				t.Fatal("decoded header does not round-trip")
			}
		}
	})
}
