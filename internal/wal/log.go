package wal

import (
	"fmt"
	"sync"

	"dbvirt/internal/obs"
)

// Package-level metrics (always on, near-zero cost — see internal/obs).
var (
	mAppendRecords  = obs.Global.Counter("wal.append.records")
	mAppendBytes    = obs.Global.Counter("wal.append.bytes")
	mFsyncCount     = obs.Global.Counter("wal.fsync.count")
	mFsyncCoalesced = obs.Global.Counter("wal.fsync.coalesced")
	mFsyncErrors    = obs.Global.Counter("wal.fsync.errors")
	mResets         = obs.Global.Counter("wal.resets")
)

// LSN is a log sequence number: the byte offset of a record's frame in the
// current log epoch. LSNs restart at HeaderSize after every Reset.
type LSN int64

// Log is the append side of the write-ahead log. It is safe for
// concurrent use; commits from concurrent sessions group their fsyncs (a
// committer whose records were already made durable by another session's
// fsync returns without touching the disk).
type Log struct {
	mu       sync.Mutex // guards dev appends and counters
	syncMu   sync.Mutex // serializes fsyncs; held outside mu
	dev      Device
	epoch    uint64
	appended LSN // end offset of the last appended record
	flushed  LSN // end offset covered by the last successful fsync
	records  int64
}

// OpenLog opens a log over the device. An empty device is initialized
// with a fresh header at the given epoch; a non-empty device must carry a
// valid header (its epoch wins) and is scanned so appends resume after
// the last valid record — the caller is expected to have truncated or
// otherwise dealt with any torn tail via Scan/Reset first.
func OpenLog(dev Device, epoch uint64) (*Log, error) {
	l := &Log{dev: dev, epoch: epoch}
	if dev.Size() == 0 {
		if err := dev.Append(EncodeHeader(epoch)); err != nil {
			return nil, err
		}
		if err := dev.Sync(); err != nil {
			mFsyncErrors.Inc()
			return nil, err
		}
		mFsyncCount.Inc()
		l.appended = LSN(HeaderSize)
		l.flushed = LSN(HeaderSize)
		return l, nil
	}
	data, err := dev.Load()
	if err != nil {
		return nil, err
	}
	e, err := DecodeHeader(data)
	if err != nil {
		return nil, err
	}
	l.epoch = e
	recs, valid := Scan(data[HeaderSize:])
	l.appended = LSN(HeaderSize + valid)
	l.flushed = l.appended
	l.records = int64(len(recs))
	if int(l.appended) != len(data) {
		return nil, fmt.Errorf("wal: log has %d bytes of torn tail (valid through %d of %d); truncate before appending",
			len(data)-int(l.appended), l.appended, len(data))
	}
	return l, nil
}

// Epoch returns the log's current epoch.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// AppendedBytes returns the end offset of the last appended record.
func (l *Log) AppendedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(l.appended)
}

// Records returns the number of records appended this epoch.
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Append encodes and appends one record, returning the LSN *after* it
// (the durability target to pass to Flush). The record is buffered in the
// OS, not yet durable.
func (l *Log) Append(r *Record) (LSN, error) {
	frame, err := Encode(r)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.dev.Append(frame); err != nil {
		return 0, err
	}
	l.appended += LSN(len(frame))
	l.records++
	mAppendRecords.Inc()
	mAppendBytes.Add(int64(len(frame)))
	return l.appended, nil
}

// Flush makes the log durable through at least upTo. Concurrent callers
// group: whoever takes the sync lock first fsyncs everything appended so
// far, and the rest find their target already covered.
func (l *Log) Flush(upTo LSN) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	flushed, appended := l.flushed, l.appended
	l.mu.Unlock()
	if flushed >= upTo {
		mFsyncCoalesced.Inc()
		return nil
	}
	if err := l.dev.Sync(); err != nil {
		mFsyncErrors.Inc()
		return err
	}
	mFsyncCount.Inc()
	l.mu.Lock()
	if appended > l.flushed {
		l.flushed = appended
	}
	l.mu.Unlock()
	return nil
}

// Reset atomically replaces the log with an empty one at the given epoch;
// called after a checkpoint has made everything before it redundant.
func (l *Log) Reset(epoch uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.dev.Reset(EncodeHeader(epoch)); err != nil {
		return err
	}
	l.epoch = epoch
	l.appended = LSN(HeaderSize)
	l.flushed = l.appended
	l.records = 0
	mResets.Inc()
	return nil
}

// Close flushes and closes the device.
func (l *Log) Close() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dev.Close()
}
