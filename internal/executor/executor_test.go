package executor

import (
	"testing"

	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
	"dbvirt/internal/types"
)

func TestAggStateCount(t *testing.T) {
	spec := &plan.AggSpec{Func: sql.AggCount}
	var st aggState
	st.add(spec, types.NewInt(1))
	st.add(spec, types.Null) // ignored
	st.add(spec, types.NewInt(2))
	if got := st.result(spec); got.I != 2 {
		t.Errorf("count = %v", got)
	}
}

func TestAggStateSumIntAndFloat(t *testing.T) {
	specI := &plan.AggSpec{Func: sql.AggSum, Kind: types.KindInt}
	var st aggState
	st.add(specI, types.NewInt(3))
	st.add(specI, types.NewInt(4))
	if got := st.result(specI); got.Kind != types.KindInt || got.I != 7 {
		t.Errorf("int sum = %v", got)
	}
	specF := &plan.AggSpec{Func: sql.AggSum, Kind: types.KindFloat}
	var stf aggState
	stf.add(specF, types.NewFloat(1.5))
	stf.add(specF, types.NewInt(2)) // mixed input still sums
	if got := stf.result(specF); got.Kind != types.KindFloat || got.F != 3.5 {
		t.Errorf("float sum = %v", got)
	}
}

func TestAggStateAvgMinMax(t *testing.T) {
	avg := &plan.AggSpec{Func: sql.AggAvg, Kind: types.KindFloat}
	var st aggState
	for _, v := range []int64{2, 4, 6} {
		st.add(avg, types.NewInt(v))
	}
	if got := st.result(avg); got.F != 4 {
		t.Errorf("avg = %v", got)
	}
	mn := &plan.AggSpec{Func: sql.AggMin, Kind: types.KindString}
	var stm aggState
	stm.add(mn, types.NewString("b"))
	stm.add(mn, types.NewString("a"))
	stm.add(mn, types.NewString("c"))
	if got := stm.result(mn); got.S != "a" {
		t.Errorf("min = %v", got)
	}
	mx := &plan.AggSpec{Func: sql.AggMax, Kind: types.KindString}
	var stx aggState
	stx.add(mx, types.NewString("b"))
	stx.add(mx, types.NewString("c"))
	if got := stx.result(mx); got.S != "c" {
		t.Errorf("max = %v", got)
	}
}

func TestAggStateEmpty(t *testing.T) {
	for _, spec := range []*plan.AggSpec{
		{Func: sql.AggSum, Kind: types.KindInt},
		{Func: sql.AggAvg, Kind: types.KindFloat},
		{Func: sql.AggMin, Kind: types.KindInt},
		{Func: sql.AggMax, Kind: types.KindInt},
	} {
		var st aggState
		if got := st.result(spec); !got.IsNull() {
			t.Errorf("%v over empty = %v, want NULL", spec.Func, got)
		}
	}
	var st aggState
	if got := st.result(&plan.AggSpec{Func: sql.AggCount}); got.I != 0 {
		t.Errorf("count over empty = %v, want 0", got)
	}
}

func TestEncodeKeyDistinguishesValues(t *testing.T) {
	cases := [][2][]types.Value{
		{{types.NewInt(1)}, {types.NewInt(2)}},
		{{types.NewString("ab")}, {types.NewString("ba")}},
		{{types.NewString("a"), types.NewString("b")}, {types.NewString("ab"), types.NewString("")}},
		{{types.Null}, {types.NewInt(0)}},
		{{types.NewBool(true)}, {types.NewBool(false)}},
	}
	for i, c := range cases {
		if encodeKey(c[0]) == encodeKey(c[1]) {
			t.Errorf("case %d: keys collide", i)
		}
	}
	// Identical values produce identical keys.
	a := []types.Value{types.NewInt(5), types.NewString("x")}
	b := []types.Value{types.NewInt(5), types.NewString("x")}
	if encodeKey(a) != encodeKey(b) {
		t.Error("equal values should produce equal keys")
	}
}

func TestJoinKeyNormalization(t *testing.T) {
	// int 2 and float 2.0 must produce the same join key.
	k1, null1 := joinKey([]types.Value{types.NewInt(2)})
	k2, null2 := joinKey([]types.Value{types.NewFloat(2.0)})
	if null1 || null2 {
		t.Fatal("no nulls here")
	}
	if k1 != k2 {
		t.Error("int and equal float should share a join key")
	}
	// Date and int normalize the same way.
	k3, _ := joinKey([]types.Value{types.NewDate(2)})
	if k3 != k1 {
		t.Error("date 2 should match int 2")
	}
	// Non-integral float stays distinct.
	k4, _ := joinKey([]types.Value{types.NewFloat(2.5)})
	if k4 == k1 {
		t.Error("2.5 must not match 2")
	}
	// NULL flags.
	if _, hasNull := joinKey([]types.Value{types.NewInt(1), types.Null}); !hasNull {
		t.Error("NULL key must be flagged")
	}
}

func TestRowBytes(t *testing.T) {
	small := rowBytes(plan.Row{types.NewInt(1)})
	big := rowBytes(plan.Row{types.NewInt(1), types.NewString(string(make([]byte, 1000)))})
	if big <= small || big < 1000 {
		t.Errorf("rowBytes small=%d big=%d", small, big)
	}
}
