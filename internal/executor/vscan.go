package executor

import (
	"dbvirt/internal/optimizer"
	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
	"dbvirt/internal/storage"
	"dbvirt/internal/types"
)

// Zone-analyzable conjunct forms. For these the per-row CPU charge of an
// evaluation is statically known, which is what lets a page's predicate
// work be charged in bulk when the zone map proves its outcome.
const (
	zfNone    = iota // not analyzable
	zfConst          // constant conjunct
	zfCmp            // <col> cmp <const> (operands possibly flipped)
	zfBetween        // <col> [NOT] BETWEEN <const> AND <const>
)

type zoneConj struct {
	form      int
	ops       float64 // charge per row for one evaluation of this conjunct
	col       int     // column offset (zfCmp, zfBetween)
	op        sql.BinaryOp
	k, lo, hi types.Value
	notB      bool
	constPass bool // zfConst: conjunct truthy
}

func flipCmp(op sql.BinaryOp) sql.BinaryOp {
	switch op {
	case sql.OpLt:
		return sql.OpGt
	case sql.OpLe:
		return sql.OpGe
	case sql.OpGt:
		return sql.OpLt
	case sql.OpGe:
		return sql.OpLe
	default:
		return op
	}
}

// analyzeZoneConj classifies one pushed-down conjunct for zone-map
// reasoning. Unrecognized shapes are zfNone and end the analyzable prefix.
func analyzeZoneConj(e plan.Expr, lay plan.Layout) zoneConj {
	switch x := e.(type) {
	case *plan.Const:
		return zoneConj{form: zfConst, constPass: plan.Truthy(x.Val)}
	case *plan.Bin:
		if !x.Op.Comparison() {
			return zoneConj{}
		}
		if cr, ok := x.L.(*plan.ColRef); ok {
			if c, ok2 := x.R.(*plan.Const); ok2 {
				if off, err := lay.Offset(cr); err == nil {
					return zoneConj{form: zfCmp, ops: plan.OpsPerOperator, col: off, op: x.Op, k: c.Val}
				}
			}
		}
		if c, ok := x.L.(*plan.Const); ok {
			if cr, ok2 := x.R.(*plan.ColRef); ok2 {
				if off, err := lay.Offset(cr); err == nil {
					return zoneConj{form: zfCmp, ops: plan.OpsPerOperator, col: off, op: flipCmp(x.Op), k: c.Val}
				}
			}
		}
	case *plan.Between:
		cr, ok := x.E.(*plan.ColRef)
		if !ok {
			return zoneConj{}
		}
		lo, ok1 := x.Lo.(*plan.Const)
		hi, ok2 := x.Hi.(*plan.Const)
		if !ok1 || !ok2 {
			return zoneConj{}
		}
		if off, err := lay.Offset(cr); err == nil {
			return zoneConj{form: zfBetween, ops: 2 * plan.OpsPerOperator, col: off, lo: lo.Val, hi: hi.Val, notB: x.NotB}
		}
	}
	return zoneConj{}
}

// zoneAllFail reports whether the conjunct provably evaluates to not-true
// for every live row of a page with the given zone.
func zoneAllFail(zc *zoneConj, z *storage.Zone) bool {
	switch zc.form {
	case zfConst:
		return !zc.constPass
	case zfCmp:
		if zc.k.IsNull() || z.NonNulls == 0 {
			return true // every evaluation yields NULL, which is not true
		}
		if !z.Ordered {
			return false
		}
		cMin, ok1 := types.Compare(z.Min, zc.k)
		cMax, ok2 := types.Compare(z.Max, zc.k)
		if !ok1 || !ok2 {
			return false
		}
		switch zc.op {
		case sql.OpEq:
			return cMin > 0 || cMax < 0
		case sql.OpNe:
			return cMin == 0 && cMax == 0
		case sql.OpLt:
			return cMin >= 0
		case sql.OpLe:
			return cMin > 0
		case sql.OpGt:
			return cMax <= 0
		case sql.OpGe:
			return cMax < 0
		}
		return false
	case zfBetween:
		if zc.lo.IsNull() || zc.hi.IsNull() || z.NonNulls == 0 {
			return true
		}
		if !z.Ordered {
			return false
		}
		cMaxLo, ok1 := types.Compare(z.Max, zc.lo)
		cMinHi, ok2 := types.Compare(z.Min, zc.hi)
		cMinLo, ok3 := types.Compare(z.Min, zc.lo)
		cMaxHi, ok4 := types.Compare(z.Max, zc.hi)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return false
		}
		inside := cMinLo >= 0 && cMaxHi <= 0  // all values within [lo, hi]
		outside := cMaxLo < 0 || cMinHi > 0   // all values outside [lo, hi]
		if z.Nulls > 0 {
			// NULL rows fail BETWEEN but pass NOT BETWEEN only as NULL
			// (not true), so they fail either form; the non-null rows
			// still need the range proof below.
		}
		if zc.notB {
			return inside
		}
		return outside
	}
	return false
}

// zoneAllPass reports whether the conjunct provably evaluates to true for
// every live row of the page — the condition for the analyzable prefix to
// extend past it.
func zoneAllPass(zc *zoneConj, z *storage.Zone) bool {
	switch zc.form {
	case zfConst:
		return zc.constPass
	case zfCmp:
		if z.Nulls > 0 || z.NonNulls == 0 || zc.k.IsNull() || !z.Ordered {
			return false
		}
		cMin, ok1 := types.Compare(z.Min, zc.k)
		cMax, ok2 := types.Compare(z.Max, zc.k)
		if !ok1 || !ok2 {
			return false
		}
		switch zc.op {
		case sql.OpEq:
			return cMin == 0 && cMax == 0
		case sql.OpNe:
			return cMax < 0 || cMin > 0
		case sql.OpLt:
			return cMax < 0
		case sql.OpLe:
			return cMax <= 0
		case sql.OpGt:
			return cMin > 0
		case sql.OpGe:
			return cMin >= 0
		}
		return false
	case zfBetween:
		if z.Nulls > 0 || z.NonNulls == 0 || zc.lo.IsNull() || zc.hi.IsNull() || !z.Ordered {
			return false
		}
		cMinLo, ok1 := types.Compare(z.Min, zc.lo)
		cMaxHi, ok2 := types.Compare(z.Max, zc.hi)
		cMaxLo, ok3 := types.Compare(z.Max, zc.lo)
		cMinHi, ok4 := types.Compare(z.Min, zc.hi)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return false
		}
		inside := cMinLo >= 0 && cMaxHi <= 0
		outside := cMaxLo < 0 || cMinHi > 0
		if zc.notB {
			return outside
		}
		return inside
	}
	return false
}

// vSeqScan is the vectorized sequential scan. Each NextBatch pins one heap
// page (the same Fetch/Unpin sequence as the tuple scan), reads its cached
// columnar block, and either:
//
//   - skips the page: if the zone maps prove that every live row passes
//     conjuncts 0..j-1 and fails conjunct j, the exact CPU the tuple scan
//     would have spent is charged in bulk (rows × (OpsPerTuple + the
//     prefix's evaluation charges)) and no per-row work happens; or
//   - emits one batch for the page: OpsPerTuple per live row plus the
//     vectorized conjunct cascade, whose charges mirror scalar early exit.
//
// Skipping is charge-transparent: the page is still fetched (identical
// simulated I/O and buffer state); only the host-side row work disappears.
type vSeqScan struct {
	ctx    *Context
	node   *optimizer.SeqScan
	pages  uint32
	pageNo uint32
	pinned bool
	id     storage.PageID

	conj    *vecConjuncts
	zones   []zoneConj
	verd    []int8
	rowPred func(plan.Row) (bool, error) // for irregular blocks

	b       plan.Batch
	selBuf  []int
	err     error
	irrRows []plan.Row
	irrIdx  int
	irrOut  plan.Batch
	closed  bool
}

func newVSeqScan(n *optimizer.SeqScan, ctx *Context) (batchIterator, error) {
	conj, err := compileVecConjuncts(n.Filter, n.Layout(), ctx.VM)
	if err != nil {
		return nil, err
	}
	rowPred, err := compileConjuncts(n.Filter, n.Layout(), ctx.VM)
	if err != nil {
		return nil, err
	}
	zones := make([]zoneConj, len(n.Filter))
	for i, c := range n.Filter {
		zones[i] = analyzeZoneConj(c.E, n.Layout())
	}
	return &vSeqScan{
		ctx:     ctx,
		node:    n,
		pages:   ctx.Pool.NumPages(n.Rel.Table.Heap.FileID()),
		conj:    conj,
		zones:   zones,
		rowPred: rowPred,
	}, nil
}

// block returns the columnar form of the pinned page, from the table's
// block cache when possible.
func (s *vSeqScan) block(data *storage.PageData) *storage.ColBlock {
	cache := s.node.Rel.Table.Blocks
	if blk := cache.Get(s.pageNo); blk != nil {
		mBlockCacheHits.Inc()
		return blk
	}
	blk := storage.BuildColBlock(storage.NewSlottedPage(data))
	mBlocksDecoded.Inc()
	cache.Put(s.pageNo, blk)
	return blk
}

// Per-page conjunct verdicts from the zone maps.
const (
	vUnknown = int8(iota) // must be evaluated row by row
	vAllPass              // provably true for every live row
	vAllFail              // provably not-true for every live row
)

// pageVerdicts classifies every analyzable conjunct against the page's
// zones. Verdicts are usable at any cascade position: a decided conjunct's
// evaluation is replaced by its exact bulk charge (the per-row cost of
// these forms is statically known), so the cascade's totals stay
// bit-identical to scalar evaluation.
func (s *vSeqScan) pageVerdicts(blk *storage.ColBlock) []int8 {
	if cap(s.verd) < len(s.zones) {
		s.verd = make([]int8, len(s.zones))
	}
	s.verd = s.verd[:len(s.zones)]
	for i := range s.zones {
		s.verd[i] = vUnknown
		zc := &s.zones[i]
		if zc.form == zfNone || blk.Zones == nil {
			continue
		}
		var z *storage.Zone
		if zc.form != zfConst {
			if zc.col >= len(blk.Zones) {
				continue
			}
			z = &blk.Zones[zc.col]
		}
		if zoneAllFail(zc, z) {
			s.verd[i] = vAllFail
		} else if zoneAllPass(zc, z) {
			s.verd[i] = vAllPass
		}
	}
	return s.verd
}

// zoneSkip walks the conjunct verdicts from the front. If some conjunct
// provably fails on every row while all earlier ones provably pass, the
// whole page is skipped and the exact bulk CPU charge is returned.
func (s *vSeqScan) zoneSkip(blk *storage.ColBlock, verd []int8) (bool, float64) {
	if blk.Rows == 0 || len(s.zones) == 0 {
		return false, 0
	}
	var prefixOps float64
	for i, v := range verd {
		switch v {
		case vAllFail:
			rows := float64(blk.Rows)
			return true, rows * (OpsPerTuple + prefixOps + s.zones[i].ops)
		case vAllPass:
			prefixOps += s.zones[i].ops
		default:
			return false, 0
		}
	}
	// Every conjunct passes on every row: not a skip, but the cascade
	// below charges each conjunct in bulk without touching any row.
	return false, 0
}

// applyCascade runs the conjunct cascade with zone verdicts: decided
// conjuncts charge ops × |survivors| in bulk (exactly what evaluating them
// on the surviving rows would charge, since every live row shares the
// outcome) and skip evaluation; undecided ones run vectorized as usual.
func (s *vSeqScan) applyCascade(b *plan.Batch, sel []int, verd []int8) ([]int, error) {
	cur := sel
	for ci, ev := range s.conj.evs {
		if len(cur) == 0 {
			return cur, nil
		}
		switch verd[ci] {
		case vAllPass:
			s.ctx.VM.AccountCPU(s.zones[ci].ops * float64(len(cur)))
			continue
		case vAllFail:
			s.ctx.VM.AccountCPU(s.zones[ci].ops * float64(len(cur)))
			return cur[:0], nil
		}
		s.conj.vals = growVals(s.conj.vals, len(cur))
		if err := ev(b, cur, s.conj.vals); err != nil {
			return nil, err
		}
		kept := 0
		for k := range cur {
			if plan.Truthy(s.conj.vals[k]) {
				cur[kept] = cur[k]
				kept++
			}
		}
		cur = cur[:kept]
	}
	return cur, nil
}

func (s *vSeqScan) NextBatch() (*plan.Batch, bool, error) {
	// Drain buffered rows of an irregular page first (pin still held).
	if s.irrIdx < len(s.irrRows) {
		row := s.irrRows[s.irrIdx]
		s.irrIdx++
		s.irrOut.Reset(len(row))
		s.irrOut.AppendRow(row)
		return &s.irrOut, true, nil
	}
	if s.err != nil {
		// A decode error surfaces after the page's earlier rows have been
		// emitted; the tuple iterator unpins before erroring, so do the
		// same here.
		s.unpin()
		err := s.err
		s.err = nil
		s.closed = true
		return nil, false, err
	}
	if s.closed {
		return nil, false, nil
	}
	for {
		if s.pinned {
			s.unpin()
			s.pageNo++
		}
		if s.pageNo >= s.pages {
			s.closed = true
			return nil, false, nil
		}
		s.id = storage.PageID{File: s.node.Rel.Table.Heap.FileID(), Page: s.pageNo}
		data, err := s.ctx.Pool.Fetch(s.id, storage.SeqHint)
		if err != nil {
			s.closed = true
			return nil, false, err
		}
		s.pinned = true
		blk := s.block(data)
		b, emitted, err := s.processBlock(blk)
		if err != nil {
			return nil, false, err
		}
		if emitted {
			return b, true, nil
		}
		if s.err != nil {
			// Error block with no rows before the bad slot: fail now, with
			// the unpin-first ordering of the tuple scan.
			s.unpin()
			err := s.err
			s.err = nil
			s.closed = true
			return nil, false, err
		}
	}
}

// processBlock charges and filters one page. It returns the page's batch
// when any rows survive; otherwise the caller advances to the next page.
func (s *vSeqScan) processBlock(blk *storage.ColBlock) (*plan.Batch, bool, error) {
	if blk.Err != nil {
		// Decode error partway through the page: emit the decoded prefix
		// row by row (it may be irregular), then surface the error.
		s.err = blk.Err
		if blk.RowData != nil {
			return s.processIrregular(blk)
		}
		if blk.Rows == 0 {
			return nil, false, nil
		}
	}
	if blk.RowData != nil {
		return s.processIrregular(blk)
	}
	if blk.Rows == 0 {
		return nil, false, nil
	}
	verd := s.pageVerdicts(blk)
	if s.ctx.Vis == nil {
		// The page-skip bulk charge covers every live row; with a
		// visibility filter only the visible subset is charged, so the
		// skip is disabled and the cascade handles the page (its bulk
		// verdicts charge per survivor, which stays exact).
		if skip, charge := s.zoneSkip(blk, verd); skip {
			s.ctx.VM.AccountCPU(charge)
			mPagesSkipped.Inc()
			return nil, false, nil
		}
	}
	s.b.Cols = blk.Cols
	s.b.N = blk.Rows
	s.b.Sel = nil
	var sel []int
	if s.ctx.Vis != nil {
		sel = s.visibleSel(blk)
		s.ctx.VM.AccountCPU(OpsPerTuple * float64(len(sel)))
		if len(sel) == 0 {
			return nil, false, nil
		}
	} else {
		s.ctx.VM.AccountCPU(OpsPerTuple * float64(blk.Rows))
	}
	if len(s.conj.evs) > 0 {
		if sel == nil {
			sel = liveSel(&s.b, &s.selBuf)
		}
		filtered, err := s.applyCascade(&s.b, sel, verd)
		if err != nil {
			return nil, false, err
		}
		if len(filtered) == 0 {
			return nil, false, nil
		}
		sel = filtered
	}
	if sel != nil && len(sel) < blk.Rows {
		s.b.Sel = sel
	}
	return &s.b, true, nil
}

// visibleSel builds the selection of rows visible under the context's
// snapshot, matching slot numbers against the visibility filter exactly as
// the tuple-at-a-time scan does.
func (s *vSeqScan) visibleSel(blk *storage.ColBlock) []int {
	sel := growSel(s.selBuf, blk.Rows)[:0]
	fid := s.node.Rel.Table.Heap.FileID()
	for i := 0; i < blk.Rows; i++ {
		if s.ctx.Vis(fid, storage.TID{Page: s.pageNo, Slot: blk.Slots[i]}) {
			sel = append(sel, i)
		}
	}
	s.selBuf = sel[:cap(sel)]
	return sel
}

// processIrregular runs the scalar path over a row-decoded page, buffering
// the passing rows for one-per-batch emission (their widths may differ).
func (s *vSeqScan) processIrregular(blk *storage.ColBlock) (*plan.Batch, bool, error) {
	s.irrRows = s.irrRows[:0]
	s.irrIdx = 0
	fid := s.node.Rel.Table.Heap.FileID()
	for ri, tup := range blk.RowData {
		if s.ctx.Vis != nil && !s.ctx.Vis(fid, storage.TID{Page: s.pageNo, Slot: blk.Slots[ri]}) {
			continue
		}
		s.ctx.VM.AccountCPU(OpsPerTuple)
		row := plan.Row(tup)
		pass, err := s.rowPred(row)
		if err != nil {
			return nil, false, err
		}
		if pass {
			s.irrRows = append(s.irrRows, row)
		}
	}
	if len(s.irrRows) == 0 {
		return nil, false, nil
	}
	row := s.irrRows[s.irrIdx]
	s.irrIdx++
	s.irrOut.Reset(len(row))
	s.irrOut.AppendRow(row)
	return &s.irrOut, true, nil
}

func (s *vSeqScan) unpin() {
	if s.pinned {
		s.ctx.Pool.Unpin(s.id, false)
		s.pinned = false
	}
}

func (s *vSeqScan) Close() {
	s.unpin()
	s.closed = true
}

// vSubquery exposes a derived table's visible columns: a pure column
// remap sharing the input's vectors and selection, with no copying.
type vSubquery struct {
	input   batchIterator
	visible []int
	out     plan.Batch
}

func newVSubquery(n *optimizer.SubqueryScan, ctx *Context) (batchIterator, error) {
	input, err := vbuild(n.Input, ctx)
	if err != nil {
		return nil, err
	}
	return &vSubquery{input: input, visible: n.Visible}, nil
}

func (s *vSubquery) NextBatch() (*plan.Batch, bool, error) {
	b, ok, err := s.input.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	if cap(s.out.Cols) < len(s.visible) {
		s.out.Cols = make([]types.Vec, len(s.visible))
	}
	s.out.Cols = s.out.Cols[:len(s.visible)]
	for i, idx := range s.visible {
		s.out.Cols[i] = b.Cols[idx]
	}
	s.out.Sel = b.Sel
	s.out.N = b.N
	return &s.out, true, nil
}

func (s *vSubquery) Close() { s.input.Close() }

// vFilter applies residual predicates by narrowing the selection vector.
type vFilter struct {
	input  batchIterator
	conj   *vecConjuncts
	selBuf []int
}

func newVFilter(n *optimizer.FilterNode, ctx *Context) (batchIterator, error) {
	input, err := vbuild(n.Input, ctx)
	if err != nil {
		return nil, err
	}
	conj, err := compileVecConjuncts(n.Conds, n.Layout(), ctx.VM)
	if err != nil {
		input.Close()
		return nil, err
	}
	return &vFilter{input: input, conj: conj}, nil
}

func (f *vFilter) NextBatch() (*plan.Batch, bool, error) {
	for {
		b, ok, err := f.input.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		sel := liveSel(b, &f.selBuf)
		sel, err = f.conj.apply(b, sel)
		if err != nil {
			return nil, false, err
		}
		if len(sel) == 0 {
			continue
		}
		b.Sel = sel
		return b, true, nil
	}
}

func (f *vFilter) Close() { f.input.Close() }

// vProject evaluates the output expressions column-wise into an owned
// boxed batch.
type vProject struct {
	input  batchIterator
	evs    []plan.VecEval
	out    plan.Batch
	selBuf []int
}

func newVProject(n *optimizer.Project, ctx *Context) (batchIterator, error) {
	input, err := vbuild(n.Input, ctx)
	if err != nil {
		return nil, err
	}
	evs := make([]plan.VecEval, len(n.Cols))
	for i, c := range n.Cols {
		evs[i], err = plan.CompileVec(c.E, n.Input.Layout(), ctx.VM)
		if err != nil {
			input.Close()
			return nil, err
		}
	}
	return &vProject{input: input, evs: evs}, nil
}

func (p *vProject) NextBatch() (*plan.Batch, bool, error) {
	for {
		b, ok, err := p.input.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		sel := liveSel(b, &p.selBuf)
		n := len(sel)
		if n == 0 {
			continue
		}
		p.out.Reset(len(p.evs))
		for i, ev := range p.evs {
			p.out.Cols[i].Any = growVals(p.out.Cols[i].Any, n)
			if err := ev(b, sel, p.out.Cols[i].Any); err != nil {
				return nil, false, err
			}
		}
		p.out.N = n
		return &p.out, true, nil
	}
}

func (p *vProject) Close() { p.input.Close() }

// vDistinct removes duplicate rows over the leading visible columns,
// narrowing the selection to first occurrences.
type vDistinct struct {
	ctx     *Context
	input   batchIterator
	visible int
	seen    map[string]bool
	// intSeen is the fast path for a single KindInt column; the byte-coded
	// keys in seen carry a kind byte, so the partitions never collide.
	intSeen    map[int64]bool
	keyBuf     []types.Value
	keyScratch []byte
	selBuf     []int
}

func newVDistinct(n *optimizer.Distinct, ctx *Context) (batchIterator, error) {
	input, err := vbuild(n.Input, ctx)
	if err != nil {
		return nil, err
	}
	return &vDistinct{
		ctx: ctx, input: input, visible: n.VisibleCols,
		seen: make(map[string]bool), intSeen: make(map[int64]bool),
	}, nil
}

func (d *vDistinct) NextBatch() (*plan.Batch, bool, error) {
	for {
		b, ok, err := d.input.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		sel := liveSel(b, &d.selBuf)
		// The tuple path hashes every input row, duplicates included.
		d.ctx.VM.AccountCPU(float64(d.visible) * OpsPerHash * float64(len(sel)))
		d.keyBuf = growVals(d.keyBuf, d.visible)
		kept := 0
		for _, i := range sel {
			if d.visible == 1 {
				if v := b.Cols[0].Get(i); v.Kind == types.KindInt {
					if d.intSeen[v.I] {
						continue
					}
					d.intSeen[v.I] = true
					sel[kept] = i
					kept++
					continue
				}
			}
			for c := 0; c < d.visible; c++ {
				d.keyBuf[c] = b.Cols[c].Get(i)
			}
			key := encodeKeyAppend(d.keyScratch[:0], d.keyBuf)
			d.keyScratch = key
			if d.seen[string(key)] {
				continue
			}
			d.seen[string(key)] = true
			sel[kept] = i
			kept++
		}
		if kept == 0 {
			continue
		}
		b.Sel = sel[:kept]
		return b, true, nil
	}
}

func (d *vDistinct) Close() { d.input.Close() }
