package executor

import (
	"sort"

	"dbvirt/internal/optimizer"
	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
	"dbvirt/internal/storage"
	"dbvirt/internal/types"
)

// intKeyVal reports the int64 fast-path key for one non-NULL join key
// value, applying the same normalization as joinKey (dates, bools, and
// integral floats fold to their integer value). ok=false routes the value
// to the byte-encoded table instead; the split is deterministic, so build
// and probe sides always agree on which table a key lives in.
func intKeyVal(v types.Value) (int64, bool) {
	switch v.Kind {
	case types.KindInt, types.KindDate, types.KindBool:
		return v.I, true
	case types.KindFloat:
		if v.F == float64(int64(v.F)) {
			return int64(v.F), true
		}
	}
	return 0, false
}

// joinTable is a join hash table with an int64 fast path: single-column
// keys that normalize to integers avoid the byte encoding and string
// hashing of the general path entirely.
type joinTable[T any] struct {
	single bool
	ints   map[int64][]T
	strs   map[string][]T
	keyBuf []types.Value
	bufB   []byte
}

func newJoinTable[T any](nkeys int) *joinTable[T] {
	return &joinTable[T]{
		single: nkeys == 1,
		ints:   make(map[int64][]T),
		strs:   make(map[string][]T),
		keyBuf: make([]types.Value, 0, nkeys),
	}
}

// encode normalizes the key values into bufB (joinKey's byte form);
// hasNull reports a NULL key, which can never match.
func (t *joinTable[T]) encode(keys []types.Value) (hasNull bool) {
	kb := append(t.keyBuf[:0], keys...)
	t.keyBuf = kb
	for i, v := range kb {
		if v.IsNull() {
			return true
		}
		kb[i] = normalizeKeyVal(v)
	}
	t.bufB = encodeKeyAppend(t.bufB[:0], kb)
	return false
}

// add inserts a row under its key values; NULL keys are rejected
// (hasNull=true) since they can never match.
func (t *joinTable[T]) add(keys []types.Value, v T) (hasNull bool) {
	if t.single {
		kv := keys[0]
		if kv.IsNull() {
			return true
		}
		if ik, ok := intKeyVal(kv); ok {
			t.ints[ik] = append(t.ints[ik], v)
			return false
		}
	}
	if t.encode(keys) {
		return true
	}
	key := string(t.bufB)
	t.strs[key] = append(t.strs[key], v)
	return false
}

// lookup returns the bucket for the key values (nil for NULL keys). The
// common paths — int64 keys and byte-encoded probes — do not allocate.
func (t *joinTable[T]) lookup(keys []types.Value) []T {
	if t.single {
		kv := keys[0]
		if kv.IsNull() {
			return nil
		}
		if ik, ok := intKeyVal(kv); ok {
			return t.ints[ik]
		}
	}
	if t.encode(keys) {
		return nil
	}
	return t.strs[string(t.bufB)]
}

// exprCols collects the column offsets an expression reads, resolved
// against lay. ok=false means the shape is not understood and the caller
// must materialize every column.
func exprCols(e plan.Expr, lay plan.Layout, set map[int]struct{}) bool {
	switch x := e.(type) {
	case *plan.Const:
		return true
	case *plan.ColRef:
		off, err := lay.Offset(x)
		if err != nil {
			return false
		}
		set[off] = struct{}{}
		return true
	case *plan.Bin:
		return exprCols(x.L, lay, set) && exprCols(x.R, lay, set)
	case *plan.Not:
		return exprCols(x.E, lay, set)
	case *plan.Neg:
		return exprCols(x.E, lay, set)
	case *plan.Between:
		return exprCols(x.E, lay, set) && exprCols(x.Lo, lay, set) && exprCols(x.Hi, lay, set)
	case *plan.In:
		if !exprCols(x.E, lay, set) {
			return false
		}
		for _, it := range x.List {
			if !exprCols(it, lay, set) {
				return false
			}
		}
		return true
	case *plan.Like:
		return exprCols(x.E, lay, set)
	case *plan.IsNull:
		return exprCols(x.E, lay, set)
	}
	return false
}

// pruneOut zeroes the vectors of columns the consumer never reads, so a
// reused output batch's stale empty-but-non-nil boxed vectors can't be
// indexed; the zero Vec reads as NULL for any row.
func pruneOut(b *plan.Batch, emit []bool) {
	if emit == nil {
		return
	}
	for col, need := range emit {
		if !need {
			b.Cols[col] = types.Vec{}
		}
	}
}

// residualCols returns the sorted column offsets read by a conjunct list,
// or (allCols(width), nil-safe) when some expression shape is unknown.
// Candidate batches only materialize these columns; the rest of the
// combined row is gathered lazily at emission.
func residualCols(conjs []plan.Conjunct, lay plan.Layout, width int) []int {
	set := make(map[int]struct{})
	for _, c := range conjs {
		if !exprCols(c.E, lay, set) {
			all := make([]int, width)
			for i := range all {
				all[i] = i
			}
			return all
		}
	}
	cols := make([]int, 0, len(set))
	for c := range set {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	return cols
}

// vHashJoin is the vectorized hash join (build on the right, probe with
// the left). The build side is drained batch-at-a-time with bulk charges.
// Probe batches expand into candidate (probe row, build row) pairs; only
// the columns the residual actually reads are materialized for its
// vectorized cascade, and passing pairs are emitted in the tuple
// executor's order (each probe row's bucket matches, then its LEFT null
// extension) by gathering directly from the probe batch and build rows.
type vHashJoin struct {
	ctx       *Context
	node      *optimizer.HashJoin
	left      batchIterator
	leftKeys  []plan.VecEval
	rightKeys []plan.VecEval
	residual  *vecConjuncts
	resCols   []int
	table     *joinTable[plan.Row]
	built     bool
	done      bool

	keyCols   [][]types.Value
	keyBuf    []types.Value
	selBuf    []int
	candRows  []plan.Row
	candProbe []int
	candStart []int
	cand      plan.Batch
	candSel   []int
	pass      []bool
	rowBuf    plan.Row
	out       plan.Batch
	// emit, when non-nil, flags the output columns the consumer reads;
	// the rest are left empty (see colPruner).
	emit []bool
}

func (j *vHashJoin) pruneOutput(needed []bool) { j.emit = needed }

func newVHashJoin(n *optimizer.HashJoin, ctx *Context) (batchIterator, error) {
	if n.BuildOuter {
		return newVHashJoinOuter(n, ctx)
	}
	left, err := vbuild(n.Left, ctx)
	if err != nil {
		return nil, err
	}
	lks := make([]plan.VecEval, len(n.LeftKeys))
	for i, e := range n.LeftKeys {
		lks[i], err = plan.CompileVec(e, n.Left.Layout(), ctx.VM)
		if err != nil {
			left.Close()
			return nil, err
		}
	}
	rks := make([]plan.VecEval, len(n.RightKeys))
	for i, e := range n.RightKeys {
		rks[i], err = plan.CompileVec(e, n.Right.Layout(), ctx.VM)
		if err != nil {
			left.Close()
			return nil, err
		}
	}
	residual, err := compileVecConjuncts(n.Residual, n.Layout(), ctx.VM)
	if err != nil {
		left.Close()
		return nil, err
	}
	nk := len(lks)
	if len(rks) > nk {
		nk = len(rks)
	}
	return &vHashJoin{
		ctx: ctx, node: n, left: left,
		leftKeys: lks, rightKeys: rks, residual: residual,
		resCols: residualCols(n.Residual, n.Layout(), n.Width()),
		table:   newJoinTable[plan.Row](len(rks)),
		keyCols: make([][]types.Value, nk),
		keyBuf:  make([]types.Value, len(lks)),
		rowBuf:  make(plan.Row, n.Width()),
	}, nil
}

func (j *vHashJoin) buildTable() error {
	right, err := vbuild(j.node.Right, j.ctx)
	if err != nil {
		return err
	}
	defer right.Close()
	var bytes int64
	for {
		b, ok, err := right.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		sel := liveSel(b, &j.selBuf)
		n := len(sel)
		j.ctx.VM.AccountCPU((OpsPerTuple + float64(len(j.rightKeys))*OpsPerHash) * float64(n))
		for i, ev := range j.rightKeys {
			j.keyCols[i] = growVals(j.keyCols[i], n)
			if err := ev(b, sel, j.keyCols[i]); err != nil {
				return err
			}
		}
		for k, i := range sel {
			kb := j.keyBuf[:len(j.rightKeys)]
			for c := range j.rightKeys {
				kb[c] = j.keyCols[c][k]
			}
			stored := make(plan.Row, len(b.Cols))
			b.ReadRow(i, stored)
			if j.table.add(kb, stored) {
				continue // NULL keys never match
			}
			bytes += rowBytes(stored)
		}
	}
	if float64(bytes)*HashTableOverhead > float64(j.ctx.WorkMemBytes) {
		spillPages := int(bytes / storage.PageSize)
		j.ctx.VM.AccountWrite(spillPages)
		j.ctx.VM.AccountSeqRead(spillPages)
	}
	j.built = true
	return nil
}

// fillCand materializes the residual-referenced columns of the candidate
// pairs: probe-side columns gather from the probe batch, build-side
// columns from the stored build rows.
func (j *vHashJoin) fillCand(b *plan.Batch, leftW, width int) {
	candN := len(j.candRows)
	j.cand.Reset(width)
	j.cand.N = candN
	for _, c := range j.resCols {
		vals := growVals(j.cand.Cols[c].Any, candN)
		if c < leftW {
			col := &b.Cols[c]
			for x, i := range j.candProbe {
				vals[x] = col.Get(i)
			}
		} else {
			bc := c - leftW
			for x, r := range j.candRows {
				vals[x] = r[bc]
			}
		}
		j.cand.Cols[c].Any = vals
	}
}

func (j *vHashJoin) NextBatch() (*plan.Batch, bool, error) {
	if j.done {
		return nil, false, nil
	}
	if !j.built {
		if err := j.buildTable(); err != nil {
			return nil, false, err
		}
	}
	leftW := j.node.Left.Width()
	width := j.node.Width()
	for {
		b, ok, err := j.left.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.done = true
			return nil, false, nil
		}
		sel := liveSel(b, &j.selBuf)
		n := len(sel)
		j.ctx.VM.AccountCPU(float64(len(j.leftKeys)) * OpsPerHash * float64(n))
		for i, ev := range j.leftKeys {
			j.keyCols[i] = growVals(j.keyCols[i], n)
			if err := ev(b, sel, j.keyCols[i]); err != nil {
				return nil, false, err
			}
		}
		// Expand each probe row against its bucket into candidate pairs.
		j.candRows = j.candRows[:0]
		j.candProbe = j.candProbe[:0]
		if cap(j.candStart) < n+1 {
			j.candStart = make([]int, n+1)
		}
		j.candStart = j.candStart[:n+1]
		for k, i := range sel {
			j.candStart[k] = len(j.candRows)
			kb := j.keyBuf[:len(j.leftKeys)]
			for c := range j.leftKeys {
				kb[c] = j.keyCols[c][k]
			}
			for _, buildRow := range j.table.lookup(kb) {
				j.candRows = append(j.candRows, buildRow)
				j.candProbe = append(j.candProbe, i)
			}
		}
		candN := len(j.candRows)
		j.candStart[n] = candN

		// One vectorized residual cascade over all candidates. With no
		// residual every candidate passes and nothing is materialized.
		pass := j.pass[:0]
		if len(j.residual.evs) > 0 && candN > 0 {
			if cap(pass) < candN {
				pass = make([]bool, candN)
			}
			pass = pass[:candN]
			for c := range pass {
				pass[c] = false
			}
			j.fillCand(b, leftW, width)
			j.candSel = growSel(j.candSel, candN)
			for c := range j.candSel {
				j.candSel[c] = c
			}
			surv, err := j.residual.apply(&j.cand, j.candSel)
			if err != nil {
				return nil, false, err
			}
			for _, c := range surv {
				pass[c] = true
			}
		}
		j.pass = pass

		// Emit in tuple order: each probe row's passing matches, then its
		// LEFT null extension. Output rows are gathered straight from the
		// probe batch and build rows.
		j.out.Reset(width)
		pruneOut(&j.out, j.emit)
		comb := j.rowBuf[:width]
		emitted := 0
		for k := range sel {
			i := sel[k]
			rowMatched := false
			for c := j.candStart[k]; c < j.candStart[k+1]; c++ {
				if len(pass) > 0 && !pass[c] {
					continue
				}
				rowMatched = true
				if j.emit == nil {
					for col := 0; col < leftW; col++ {
						comb[col] = b.Value(i, col)
					}
					copy(comb[leftW:], j.candRows[c])
					j.out.AppendRow(comb)
				} else {
					r := j.candRows[c]
					for col, need := range j.emit {
						if !need {
							continue
						}
						if col < leftW {
							j.out.Cols[col].Append(b.Value(i, col))
						} else {
							j.out.Cols[col].Append(r[col-leftW])
						}
					}
					j.out.N++
				}
				emitted++
			}
			if !rowMatched && j.node.Type == sql.LeftJoin {
				if j.emit == nil {
					for col := 0; col < leftW; col++ {
						comb[col] = b.Value(i, col)
					}
					for col := leftW; col < width; col++ {
						comb[col] = types.Null
					}
					j.out.AppendRow(comb)
				} else {
					for col, need := range j.emit {
						if !need {
							continue
						}
						if col < leftW {
							j.out.Cols[col].Append(b.Value(i, col))
						} else {
							j.out.Cols[col].Append(types.Null)
						}
					}
					j.out.N++
				}
				emitted++
			}
		}
		if emitted > 0 {
			j.ctx.VM.AccountCPU(OpsPerTuple * float64(emitted))
			return &j.out, true, nil
		}
	}
}

func (j *vHashJoin) Close() { j.left.Close() }

// vHashJoinOuter is the vectorized "hash right join": build on the outer
// (left) side, probe with right rows, then emit the unmatched outer tail
// null-extended for LEFT joins.
type vHashJoinOuter struct {
	ctx       *Context
	node      *optimizer.HashJoin
	right     batchIterator
	leftKeys  []plan.VecEval
	rightKeys []plan.VecEval
	residual  *vecConjuncts
	resCols   []int

	table   *joinTable[*outerEntry]
	allRows []*outerEntry
	built   bool

	keyCols   [][]types.Value
	keyBuf    []types.Value
	selBuf    []int
	candEnt   []*outerEntry
	candProbe []int
	cand      plan.Batch
	candSel   []int
	pass      []bool
	rowBuf    plan.Row
	out       plan.Batch
	// emit, when non-nil, flags the output columns the consumer reads;
	// the rest are left empty (see colPruner).
	emit []bool

	rightDone bool
	tailIdx   int
	done      bool
}

func (j *vHashJoinOuter) pruneOutput(needed []bool) { j.emit = needed }

func newVHashJoinOuter(n *optimizer.HashJoin, ctx *Context) (batchIterator, error) {
	right, err := vbuild(n.Right, ctx)
	if err != nil {
		return nil, err
	}
	lks := make([]plan.VecEval, len(n.LeftKeys))
	for i, e := range n.LeftKeys {
		lks[i], err = plan.CompileVec(e, n.Left.Layout(), ctx.VM)
		if err != nil {
			right.Close()
			return nil, err
		}
	}
	rks := make([]plan.VecEval, len(n.RightKeys))
	for i, e := range n.RightKeys {
		rks[i], err = plan.CompileVec(e, n.Right.Layout(), ctx.VM)
		if err != nil {
			right.Close()
			return nil, err
		}
	}
	residual, err := compileVecConjuncts(n.Residual, n.Layout(), ctx.VM)
	if err != nil {
		right.Close()
		return nil, err
	}
	nk := len(lks)
	if len(rks) > nk {
		nk = len(rks)
	}
	return &vHashJoinOuter{
		ctx: ctx, node: n, right: right,
		leftKeys: lks, rightKeys: rks, residual: residual,
		resCols: residualCols(n.Residual, n.Layout(), n.Width()),
		table:   newJoinTable[*outerEntry](len(lks)),
		keyCols: make([][]types.Value, nk),
		keyBuf:  make([]types.Value, nk),
		rowBuf:  make(plan.Row, n.Width()),
	}, nil
}

func (j *vHashJoinOuter) buildTable() error {
	left, err := vbuild(j.node.Left, j.ctx)
	if err != nil {
		return err
	}
	defer left.Close()
	var bytes int64
	for {
		b, ok, err := left.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		sel := liveSel(b, &j.selBuf)
		n := len(sel)
		j.ctx.VM.AccountCPU((OpsPerTuple + float64(len(j.leftKeys))*OpsPerHash) * float64(n))
		for i, ev := range j.leftKeys {
			j.keyCols[i] = growVals(j.keyCols[i], n)
			if err := ev(b, sel, j.keyCols[i]); err != nil {
				return err
			}
		}
		for k, i := range sel {
			stored := make(plan.Row, len(b.Cols))
			b.ReadRow(i, stored)
			e := &outerEntry{row: stored}
			j.allRows = append(j.allRows, e)
			bytes += rowBytes(stored)
			kb := j.keyBuf[:len(j.leftKeys)]
			for c := range j.leftKeys {
				kb[c] = j.keyCols[c][k]
			}
			// NULL keys are kept only for the LEFT tail.
			j.table.add(kb, e)
		}
	}
	if float64(bytes)*HashTableOverhead > float64(j.ctx.WorkMemBytes) {
		spillPages := int(bytes / storage.PageSize)
		j.ctx.VM.AccountWrite(spillPages)
		j.ctx.VM.AccountSeqRead(spillPages)
	}
	j.built = true
	return nil
}

// fillCand materializes the residual-referenced columns of the candidate
// pairs: outer columns gather from the stored build rows, probe columns
// from the probe batch.
func (j *vHashJoinOuter) fillCand(b *plan.Batch, leftW, width int) {
	candN := len(j.candEnt)
	j.cand.Reset(width)
	j.cand.N = candN
	for _, c := range j.resCols {
		vals := growVals(j.cand.Cols[c].Any, candN)
		if c < leftW {
			for x, e := range j.candEnt {
				vals[x] = e.row[c]
			}
		} else {
			col := &b.Cols[c-leftW]
			for x, i := range j.candProbe {
				vals[x] = col.Get(i)
			}
		}
		j.cand.Cols[c].Any = vals
	}
}

func (j *vHashJoinOuter) NextBatch() (*plan.Batch, bool, error) {
	if j.done {
		return nil, false, nil
	}
	if !j.built {
		if err := j.buildTable(); err != nil {
			return nil, false, err
		}
	}
	leftW := j.node.Left.Width()
	width := j.node.Width()
	comb := j.rowBuf[:width]
	for !j.rightDone {
		b, ok, err := j.right.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.rightDone = true
			break
		}
		sel := liveSel(b, &j.selBuf)
		n := len(sel)
		j.ctx.VM.AccountCPU(float64(len(j.rightKeys)) * OpsPerHash * float64(n))
		for i, ev := range j.rightKeys {
			j.keyCols[i] = growVals(j.keyCols[i], n)
			if err := ev(b, sel, j.keyCols[i]); err != nil {
				return nil, false, err
			}
		}
		j.candEnt = j.candEnt[:0]
		j.candProbe = j.candProbe[:0]
		for k, i := range sel {
			kb := j.keyBuf[:len(j.rightKeys)]
			for c := range j.rightKeys {
				kb[c] = j.keyCols[c][k]
			}
			for _, e := range j.table.lookup(kb) {
				j.candEnt = append(j.candEnt, e)
				j.candProbe = append(j.candProbe, i)
			}
		}
		candN := len(j.candEnt)

		pass := j.pass[:0]
		if len(j.residual.evs) > 0 && candN > 0 {
			if cap(pass) < candN {
				pass = make([]bool, candN)
			}
			pass = pass[:candN]
			for c := range pass {
				pass[c] = false
			}
			j.fillCand(b, leftW, width)
			j.candSel = growSel(j.candSel, candN)
			for c := range j.candSel {
				j.candSel[c] = c
			}
			surv, err := j.residual.apply(&j.cand, j.candSel)
			if err != nil {
				return nil, false, err
			}
			for _, c := range surv {
				pass[c] = true
			}
		}
		j.pass = pass

		j.out.Reset(width)
		pruneOut(&j.out, j.emit)
		emitted := 0
		for c := 0; c < candN; c++ {
			if len(pass) > 0 && !pass[c] {
				continue
			}
			e := j.candEnt[c]
			e.matched = true
			i := j.candProbe[c]
			if j.emit == nil {
				copy(comb, e.row)
				for col := leftW; col < width; col++ {
					comb[col] = b.Value(i, col-leftW)
				}
				j.out.AppendRow(comb)
			} else {
				for col, need := range j.emit {
					if !need {
						continue
					}
					if col < leftW {
						j.out.Cols[col].Append(e.row[col])
					} else {
						j.out.Cols[col].Append(b.Value(i, col-leftW))
					}
				}
				j.out.N++
			}
			emitted++
		}
		if emitted > 0 {
			j.ctx.VM.AccountCPU(OpsPerTuple * float64(emitted))
			return &j.out, true, nil
		}
	}
	// Unmatched outer tail for LEFT joins, in build order.
	if j.node.Type == sql.LeftJoin {
		j.out.Reset(width)
		pruneOut(&j.out, j.emit)
		emitted := 0
		for j.tailIdx < len(j.allRows) && emitted < plan.BatchSize {
			e := j.allRows[j.tailIdx]
			j.tailIdx++
			if e.matched {
				continue
			}
			if j.emit == nil {
				copy(comb, e.row)
				for c := leftW; c < width; c++ {
					comb[c] = types.Null
				}
				j.out.AppendRow(comb)
			} else {
				for col, need := range j.emit {
					if !need {
						continue
					}
					if col < leftW {
						j.out.Cols[col].Append(e.row[col])
					} else {
						j.out.Cols[col].Append(types.Null)
					}
				}
				j.out.N++
			}
			emitted++
		}
		if emitted > 0 {
			j.ctx.VM.AccountCPU(OpsPerTuple * float64(emitted))
			return &j.out, true, nil
		}
	}
	j.done = true
	return nil, false, nil
}

func (j *vHashJoinOuter) Close() { j.right.Close() }

// vNLJoin is the vectorized nested-loops join: the inner side is
// materialized once — its predicate-referenced columns transposed into
// vectors that every candidate batch aliases — then each outer row runs
// the vectorized predicate cascade over the full inner list, with only the
// referenced outer columns broadcast per row.
type vNLJoin struct {
	ctx   *Context
	node  *optimizer.NLJoin
	outer batchIterator
	pred  *vecConjuncts
	inner []plan.Row

	resCols   []int
	innerCols [][]types.Value // keyed by output offset; nil when not referenced
	outerBufs [][]types.Value

	loaded bool
	done   bool

	b      *plan.Batch // current outer batch
	sel    []int
	k      int
	selBuf []int

	cand    plan.Batch
	candSel []int
	rowBuf  plan.Row
	out     plan.Batch
}

func newVNLJoin(n *optimizer.NLJoin, ctx *Context) (batchIterator, error) {
	outer, err := vbuild(n.Outer, ctx)
	if err != nil {
		return nil, err
	}
	pred, err := compileVecConjuncts(n.On, n.Layout(), ctx.VM)
	if err != nil {
		outer.Close()
		return nil, err
	}
	return &vNLJoin{
		ctx: ctx, node: n, outer: outer, pred: pred,
		resCols: residualCols(n.On, n.Layout(), n.Width()),
		rowBuf:  make(plan.Row, n.Width()),
	}, nil
}

func (j *vNLJoin) load() error {
	inner, err := vbuild(j.node.Inner, j.ctx)
	if err != nil {
		return err
	}
	defer inner.Close()
	var selBuf []int
	for {
		b, ok, err := inner.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		sel := liveSel(b, &selBuf)
		j.ctx.VM.AccountCPU(OpsPerTuple * float64(len(sel)))
		for _, i := range sel {
			r := make(plan.Row, len(b.Cols))
			b.ReadRow(i, r)
			j.inner = append(j.inner, r)
		}
	}
	// Transpose the referenced inner columns once; candidate batches alias
	// these vectors for every outer row.
	outerW := j.node.Outer.Width()
	width := j.node.Width()
	j.innerCols = make([][]types.Value, width)
	j.outerBufs = make([][]types.Value, outerW)
	for _, c := range j.resCols {
		if c < outerW {
			j.outerBufs[c] = make([]types.Value, len(j.inner))
			continue
		}
		vals := make([]types.Value, len(j.inner))
		for x, r := range j.inner {
			vals[x] = r[c-outerW]
		}
		j.innerCols[c] = vals
	}
	j.loaded = true
	return nil
}

func (j *vNLJoin) NextBatch() (*plan.Batch, bool, error) {
	if j.done {
		return nil, false, nil
	}
	if !j.loaded {
		if err := j.load(); err != nil {
			return nil, false, err
		}
	}
	outerW := j.node.Outer.Width()
	width := j.node.Width()
	comb := j.rowBuf[:width]
	for {
		if j.b == nil || j.k >= len(j.sel) {
			b, ok, err := j.outer.NextBatch()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.done = true
				return nil, false, nil
			}
			j.b = b
			j.sel = liveSel(b, &j.selBuf)
			j.k = 0
		}
		// One outer row per iteration bounds candidate memory to the inner
		// size; the output batch carries that row's matches.
		i := j.sel[j.k]
		j.k++
		candN := len(j.inner)
		if len(j.node.On) == 0 {
			j.ctx.VM.AccountCPU(plan.OpsPerOperator * float64(candN))
		}
		var surv []int
		if candN > 0 {
			if len(j.pred.evs) > 0 {
				// Assemble the candidate batch: referenced outer columns are
				// this row's value broadcast, inner columns alias the
				// transposed vectors.
				if cap(j.cand.Cols) < width {
					j.cand.Cols = make([]types.Vec, width)
				}
				j.cand.Cols = j.cand.Cols[:width]
				j.cand.Sel = nil
				j.cand.N = candN
				for _, c := range j.resCols {
					if c < outerW {
						v := j.b.Value(i, c)
						buf := j.outerBufs[c]
						for x := range buf {
							buf[x] = v
						}
						j.cand.Cols[c] = types.Vec{Any: buf}
					} else {
						j.cand.Cols[c] = types.Vec{Any: j.innerCols[c]}
					}
				}
				j.candSel = growSel(j.candSel, candN)
				for c := range j.candSel {
					j.candSel[c] = c
				}
				var err error
				surv, err = j.pred.apply(&j.cand, j.candSel)
				if err != nil {
					return nil, false, err
				}
			} else {
				j.candSel = growSel(j.candSel, candN)
				for c := range j.candSel {
					j.candSel[c] = c
				}
				surv = j.candSel
			}
		}
		j.out.Reset(width)
		if len(surv) > 0 {
			for c := 0; c < outerW; c++ {
				comb[c] = j.b.Value(i, c)
			}
			for _, x := range surv {
				copy(comb[outerW:], j.inner[x])
				j.out.AppendRow(comb)
			}
		}
		if j.out.N == 0 && j.node.Type == sql.LeftJoin {
			for c := 0; c < outerW; c++ {
				comb[c] = j.b.Value(i, c)
			}
			for c := outerW; c < width; c++ {
				comb[c] = types.Null
			}
			j.out.AppendRow(comb)
		}
		if j.out.N > 0 {
			j.ctx.VM.AccountCPU(OpsPerTuple * float64(j.out.N))
			return &j.out, true, nil
		}
	}
}

func (j *vNLJoin) Close() { j.outer.Close() }
