package executor

import (
	"fmt"

	"dbvirt/internal/obs"
	"dbvirt/internal/optimizer"
	"dbvirt/internal/plan"
	"dbvirt/internal/types"
	"dbvirt/internal/vm"
)

// Mode selects the executor implementation.
type Mode int

const (
	// ModeBatch (the default) runs queries through the vectorized executor:
	// operators exchange column-vector batches, sequential scans read
	// columnar page blocks and skip per-row work on pages whose zone maps
	// prove the filter's outcome. VM cost charges are issued per batch but
	// are bit-identical in total to ModeTuple, because every charge is an
	// exact integer counter increment and buffer-pool events happen in the
	// same order.
	ModeBatch Mode = iota
	// ModeTuple runs the original row-at-a-time Volcano executor.
	ModeTuple
)

var (
	mBatchBatches   = obs.Global.Counter("executor.batch.batches")
	mBatchRows      = obs.Global.Counter("executor.batch.rows")
	mPagesSkipped   = obs.Global.Counter("executor.batch.pages_skipped")
	mBlocksDecoded  = obs.Global.Counter("executor.batch.blocks_decoded")
	mBlockCacheHits = obs.Global.Counter("executor.batch.block_cache_hits")
)

// batchIterator is the vectorized operator interface. NextBatch returns a
// non-empty batch or ok=false at end of stream. Returned batches (and any
// column vectors they alias) are valid until the next NextBatch or Close
// call. The batch executor assumes results are drained: operators may do
// work ahead of what has been consumed, and totals converge once the root
// is exhausted. Plans that can legitimately stop early (LIMIT) run their
// whole subtree on the row-at-a-time executor behind an adapter, so
// early-stop charge semantics are exactly the legacy ones.
type batchIterator interface {
	NextBatch() (*plan.Batch, bool, error)
	Close()
}

// vbuild constructs the batch operator tree for a plan node. Vectorized
// operators are wrapped with a statBatch when statistics are collected;
// nodes that run as legacy subtrees get their statistics from the legacy
// statIter wrapping inside build().
func vbuild(n optimizer.Node, ctx *Context) (batchIterator, error) {
	var (
		it  batchIterator
		err error
	)
	switch x := n.(type) {
	case *optimizer.SeqScan:
		it, err = newVSeqScan(x, ctx)
	case *optimizer.SubqueryScan:
		it, err = newVSubquery(x, ctx)
	case *optimizer.FilterNode:
		it, err = newVFilter(x, ctx)
	case *optimizer.Project:
		it, err = newVProject(x, ctx)
	case *optimizer.Distinct:
		it, err = newVDistinct(x, ctx)
	case *optimizer.Sort:
		it, err = newVSort(x, ctx)
	case *optimizer.HashAgg:
		it, err = newVHashAgg(x, ctx)
	case *optimizer.HashJoin:
		it, err = newVHashJoin(x, ctx)
	case *optimizer.NLJoin:
		it, err = newVNLJoin(x, ctx)
	case *optimizer.IndexScan, *optimizer.MergeJoin, *optimizer.IndexNLJoin, *optimizer.Limit:
		// These run as legacy row iterators (index access is inherently
		// per-tuple; LIMIT needs exact early-stop semantics). build()
		// already attaches per-node statistics to the whole subtree, so the
		// adapter is not wrapped again.
		inner, aerr := build(n, ctx)
		if aerr != nil {
			return nil, aerr
		}
		return &batchAdapter{it: inner, width: n.Width()}, nil
	default:
		return nil, fmt.Errorf("executor: unknown plan node %T", n)
	}
	if err != nil {
		return nil, err
	}
	if ctx.Stats != nil {
		it = &statBatch{inner: it, stats: ctx.Stats.register(n), vm: ctx.VM}
	}
	return it, nil
}

// batchAdapter exposes a legacy row iterator as a batch source, buffering
// up to BatchSize rows per call.
type batchAdapter struct {
	it    iterator
	width int
	out   plan.Batch
	done  bool
}

func (a *batchAdapter) NextBatch() (*plan.Batch, bool, error) {
	if a.done {
		return nil, false, nil
	}
	a.out.Reset(a.width)
	for a.out.N < plan.BatchSize {
		row, ok, err := a.it.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			a.done = true
			break
		}
		a.out.AppendRow(row)
	}
	if a.out.N == 0 {
		return nil, false, nil
	}
	return &a.out, true, nil
}

func (a *batchAdapter) Close() { a.it.Close() }

// statBatch attributes per-node rows and VM usage for EXPLAIN ANALYZE in
// batch mode. Row counts are exact — the full batch length is added, never
// a batch-granularity approximation — so `rows=` matches the tuple
// executor; "actual time" is attributed at batch granularity.
type statBatch struct {
	inner batchIterator
	stats *NodeStats
	vm    *vm.VM
}

func (s *statBatch) NextBatch() (*plan.Batch, bool, error) {
	before := s.vm.Snapshot()
	b, ok, err := s.inner.NextBatch()
	s.stats.Usage = s.stats.Usage.Add(s.vm.Since(before))
	if ok {
		s.stats.Rows += int64(b.Len())
	}
	return b, ok, err
}

func (s *statBatch) Close() { s.inner.Close() }

// colPruner is implemented by batch operators that can skip materializing
// output columns no consumer reads. needed[i]==false promises the consumer
// never reads column i of this operator's output; the operator may leave
// that column's vector empty (Vec.Get then yields NULL). Pruning changes
// no charges and no live row counts — only which column values are
// physically materialized.
type colPruner interface{ pruneOutput(needed []bool) }

func (s *statBatch) pruneOutput(needed []bool) {
	if p, ok := s.inner.(colPruner); ok {
		p.pruneOutput(needed)
	}
}

// batchRowIter adapts the batch tree back to the row Result interface.
type batchRowIter struct {
	in  batchIterator
	b   *plan.Batch
	k   int
	out plan.Row
}

func (r *batchRowIter) Next() (plan.Row, bool, error) {
	for {
		if r.b != nil && r.k < r.b.Len() {
			i := r.b.RowIdx(r.k)
			r.k++
			if cap(r.out) < len(r.b.Cols) {
				r.out = make(plan.Row, len(r.b.Cols))
			}
			r.out = r.out[:len(r.b.Cols)]
			r.b.ReadRow(i, r.out)
			return r.out, true, nil
		}
		b, ok, err := r.in.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		mBatchBatches.Inc()
		mBatchRows.Add(int64(b.Len()))
		r.b, r.k = b, 0
	}
}

func (r *batchRowIter) Close() { r.in.Close() }

// growVals returns a value slice of length n, reusing capacity.
func growVals(s []types.Value, n int) []types.Value {
	if cap(s) < n {
		return make([]types.Value, n)
	}
	return s[:n]
}

// growSel returns an int slice of length n, reusing capacity.
func growSel(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// vecConjuncts is a compiled conjunct cascade over batches. Each conjunct
// is evaluated only on the rows that survived the previous ones, so the
// per-conjunct charges match the scalar evaluator's early exit exactly.
type vecConjuncts struct {
	evs  []plan.VecEval
	vals []types.Value
}

func compileVecConjuncts(conjs []plan.Conjunct, lay plan.Layout, sink plan.CPUSink) (*vecConjuncts, error) {
	vc := &vecConjuncts{evs: make([]plan.VecEval, len(conjs))}
	for i, c := range conjs {
		ev, err := plan.CompileVec(c.E, lay, sink)
		if err != nil {
			return nil, err
		}
		vc.evs[i] = ev
	}
	return vc, nil
}

// apply narrows sel (in place) to the rows passing every conjunct and
// returns the surviving prefix of sel.
func (vc *vecConjuncts) apply(b *plan.Batch, sel []int) ([]int, error) {
	cur := sel
	for _, ev := range vc.evs {
		if len(cur) == 0 {
			return cur, nil
		}
		vc.vals = growVals(vc.vals, len(cur))
		if err := ev(b, cur, vc.vals); err != nil {
			return nil, err
		}
		kept := 0
		for k := range cur {
			if plan.Truthy(vc.vals[k]) {
				cur[kept] = cur[k]
				kept++
			}
		}
		cur = cur[:kept]
	}
	return cur, nil
}

// liveSel returns the batch's live physical row indexes as a writable
// slice: b.Sel when set, otherwise 0..N-1 materialized into scratch.
func liveSel(b *plan.Batch, scratch *[]int) []int {
	if b.Sel != nil {
		return b.Sel
	}
	s := growSel(*scratch, b.N)
	for i := range s {
		s[i] = i
	}
	*scratch = s
	return s
}
