package executor

import (
	"fmt"

	"dbvirt/internal/optimizer"
	"dbvirt/internal/plan"
	"dbvirt/internal/types"
)

// mergeJoinIter joins two inputs sorted ascending by their key columns
// (inner joins only). Duplicate keys are handled by buffering the right
// side's current key group and replaying it for each equal left row.
type mergeJoinIter struct {
	ctx  *Context
	node *optimizer.MergeJoin

	left, right iterator
	leftRow     plan.Row
	rightRow    plan.Row // next unconsumed right row (nil when exhausted)
	rightDone   bool

	group    []plan.Row // right rows sharing groupKey
	groupKey plan.Row
	groupIdx int

	residual func(plan.Row) (bool, error)
	combined plan.Row
	done     bool
	started  bool
}

func newMergeJoinIter(n *optimizer.MergeJoin, ctx *Context) (iterator, error) {
	left, err := build(n.Left, ctx)
	if err != nil {
		return nil, err
	}
	right, err := build(n.Right, ctx)
	if err != nil {
		left.Close()
		return nil, err
	}
	residual, err := compileConjuncts(n.Residual, n.Layout(), ctx.VM)
	if err != nil {
		left.Close()
		right.Close()
		return nil, err
	}
	return &mergeJoinIter{
		ctx: ctx, node: n, left: left, right: right, residual: residual,
		combined: make(plan.Row, n.Width()),
	}, nil
}

// keyCompare orders two rows by the join keys; a NULL key orders the row
// as "advance me" (NULLs never join). ok=false marks a NULL key on side a
// (-1) or b (+1).
func (j *mergeJoinIter) keyCompare(a plan.Row, aCols []int, b plan.Row, bCols []int) (int, error) {
	j.ctx.VM.AccountCPU(float64(len(aCols)) * OpsPerCompare)
	for i := range aCols {
		av, bv := a[aCols[i]], b[bCols[i]]
		if av.IsNull() {
			return -1, nil // push the NULL side forward
		}
		if bv.IsNull() {
			return 1, nil
		}
		c, ok := types.Compare(av, bv)
		if !ok {
			return 0, fmt.Errorf("executor: merge join keys incomparable (%s vs %s)", av.Kind, bv.Kind)
		}
		if c != 0 {
			return c, nil
		}
	}
	return 0, nil
}

// rowHasNullKey reports whether any key column of the row is NULL.
func rowHasNullKey(r plan.Row, cols []int) bool {
	for _, c := range cols {
		if r[c].IsNull() {
			return true
		}
	}
	return false
}

// sameKey reports whether two left rows share the join key.
func (j *mergeJoinIter) sameKey(a, b plan.Row) (bool, error) {
	c, err := j.keyCompare(a, j.node.LeftCols, b, j.node.LeftCols)
	return c == 0 && !rowHasNullKey(a, j.node.LeftCols), err
}

func (j *mergeJoinIter) advanceLeft() error {
	row, ok, err := j.left.Next()
	if err != nil {
		return err
	}
	if !ok {
		j.leftRow = nil
		return nil
	}
	j.leftRow = cloneRow(row)
	return nil
}

func (j *mergeJoinIter) advanceRight() error {
	row, ok, err := j.right.Next()
	if err != nil {
		return err
	}
	if !ok {
		j.rightRow = nil
		j.rightDone = true
		return nil
	}
	j.rightRow = cloneRow(row)
	return nil
}

// fillGroup buffers all right rows equal to j.rightRow's key into group.
func (j *mergeJoinIter) fillGroup() error {
	j.group = j.group[:0]
	j.groupKey = j.rightRow
	for {
		j.group = append(j.group, j.rightRow)
		if err := j.advanceRight(); err != nil {
			return err
		}
		if j.rightRow == nil {
			return nil
		}
		c, err := j.keyCompare(j.rightRow, j.node.RightCols, j.groupKey, j.node.RightCols)
		if err != nil {
			return err
		}
		if c != 0 || rowHasNullKey(j.rightRow, j.node.RightCols) {
			return nil
		}
	}
}

func (j *mergeJoinIter) Next() (plan.Row, bool, error) {
	if j.done {
		return nil, false, nil
	}
	if !j.started {
		j.started = true
		if err := j.advanceLeft(); err != nil {
			return nil, false, err
		}
		if err := j.advanceRight(); err != nil {
			return nil, false, err
		}
	}
	leftW := j.node.Left.Width()
	for {
		// Emit from the current group.
		for j.leftRow != nil && j.groupKey != nil && j.groupIdx < len(j.group) {
			match, err := j.sameKey(j.leftRow, j.groupKey)
			if err != nil {
				return nil, false, err
			}
			if !match {
				break
			}
			r := j.group[j.groupIdx]
			j.groupIdx++
			copy(j.combined, j.leftRow)
			copy(j.combined[leftW:], r)
			pass, err := j.residual(j.combined)
			if err != nil {
				return nil, false, err
			}
			if pass {
				j.ctx.VM.AccountCPU(OpsPerTuple)
				return j.combined, true, nil
			}
		}
		// Group exhausted for this left row (or key mismatch): advance left
		// and replay the group if the key repeats.
		if j.groupKey != nil && j.leftRow != nil {
			match, err := j.sameKey(j.leftRow, j.groupKey)
			if err != nil {
				return nil, false, err
			}
			if match {
				if err := j.advanceLeft(); err != nil {
					return nil, false, err
				}
				j.groupIdx = 0
				continue
			}
		}
		if j.leftRow == nil {
			j.done = true
			return nil, false, nil
		}
		// Align the two sides.
		if j.rightRow == nil {
			// Right side fully consumed; only a live group could match, and
			// it did not: check if a later left row might match the group.
			if j.groupKey != nil {
				if err := j.advanceLeft(); err != nil {
					return nil, false, err
				}
				j.groupIdx = 0
				if j.leftRow == nil {
					j.done = true
					return nil, false, nil
				}
				continue
			}
			j.done = true
			return nil, false, nil
		}
		if rowHasNullKey(j.leftRow, j.node.LeftCols) {
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
			continue
		}
		if rowHasNullKey(j.rightRow, j.node.RightCols) {
			if err := j.advanceRight(); err != nil {
				return nil, false, err
			}
			continue
		}
		c, err := j.keyCompare(j.leftRow, j.node.LeftCols, j.rightRow, j.node.RightCols)
		if err != nil {
			return nil, false, err
		}
		switch {
		case c < 0:
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
		case c > 0:
			if err := j.advanceRight(); err != nil {
				return nil, false, err
			}
		default:
			if err := j.fillGroup(); err != nil {
				return nil, false, err
			}
			j.groupIdx = 0
		}
	}
}

func (j *mergeJoinIter) Close() {
	j.left.Close()
	j.right.Close()
}
