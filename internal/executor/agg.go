package executor

import (
	"fmt"
	"sort"

	"dbvirt/internal/optimizer"
	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
	"dbvirt/internal/storage"
	"dbvirt/internal/types"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	count  int64
	sumI   int64
	sumF   float64
	anyF   bool
	minMax types.Value
	hasVal bool
}

func (a *aggState) add(spec *plan.AggSpec, v types.Value) {
	if v.IsNull() {
		return
	}
	a.count++
	switch spec.Func {
	case sql.AggCount:
	case sql.AggSum, sql.AggAvg:
		if v.Kind == types.KindFloat {
			a.anyF = true
			a.sumF += v.F
		} else {
			a.sumI += v.I
		}
	case sql.AggMin:
		if !a.hasVal {
			a.minMax = v
			a.hasVal = true
		} else if c, ok := types.Compare(v, a.minMax); ok && c < 0 {
			a.minMax = v
		}
	case sql.AggMax:
		if !a.hasVal {
			a.minMax = v
			a.hasVal = true
		} else if c, ok := types.Compare(v, a.minMax); ok && c > 0 {
			a.minMax = v
		}
	}
}

func (a *aggState) result(spec *plan.AggSpec) types.Value {
	switch spec.Func {
	case sql.AggCount:
		return types.NewInt(a.count)
	case sql.AggSum:
		if a.count == 0 {
			return types.Null
		}
		if a.anyF || spec.Kind == types.KindFloat {
			return types.NewFloat(a.sumF + float64(a.sumI))
		}
		return types.NewInt(a.sumI)
	case sql.AggAvg:
		if a.count == 0 {
			return types.Null
		}
		return types.NewFloat((a.sumF + float64(a.sumI)) / float64(a.count))
	case sql.AggMin, sql.AggMax:
		if !a.hasVal {
			return types.Null
		}
		return a.minMax
	default:
		return types.Null
	}
}

// hashAggIter consumes its entire input, grouping rows by the group-by
// keys, then emits one row per group: keys followed by aggregate results.
type hashAggIter struct {
	ctx    *Context
	node   *optimizer.HashAgg
	groups map[string]*groupEntry
	order  []string // deterministic emission order (first-seen)
	pos    int
	built  bool
}

type groupEntry struct {
	keys   []types.Value
	states []aggState
}

func newHashAggIter(n *optimizer.HashAgg, ctx *Context) (iterator, error) {
	return &hashAggIter{ctx: ctx, node: n, groups: make(map[string]*groupEntry)}, nil
}

func (a *hashAggIter) buildGroups() error {
	input, err := build(a.node.Input, a.ctx)
	if err != nil {
		return err
	}
	defer input.Close()

	lay := a.node.Input.Layout()
	keyEvs := make([]plan.Evaluator, len(a.node.GroupBy))
	for i, g := range a.node.GroupBy {
		keyEvs[i], err = plan.Compile(g, lay, a.ctx.VM)
		if err != nil {
			return err
		}
	}
	argEvs := make([]plan.Evaluator, len(a.node.Aggs))
	for i, spec := range a.node.Aggs {
		if spec.Star {
			continue
		}
		argEvs[i], err = plan.Compile(spec.Arg, lay, a.ctx.VM)
		if err != nil {
			return err
		}
	}

	keyVals := make([]types.Value, len(keyEvs))
	for {
		row, ok, err := input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for i, ev := range keyEvs {
			v, err := ev(row)
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		a.ctx.VM.AccountCPU(float64(len(keyEvs))*OpsPerHash + float64(len(a.node.Aggs))*plan.OpsPerOperator)
		key := encodeKey(keyVals)
		g, ok := a.groups[key]
		if !ok {
			g = &groupEntry{
				keys:   append([]types.Value(nil), keyVals...),
				states: make([]aggState, len(a.node.Aggs)),
			}
			a.groups[key] = g
			a.order = append(a.order, key)
		}
		for i := range a.node.Aggs {
			spec := &a.node.Aggs[i]
			if spec.Star {
				g.states[i].count++
				continue
			}
			v, err := argEvs[i](row)
			if err != nil {
				return err
			}
			g.states[i].add(spec, v)
		}
	}
	// Global aggregation over zero rows still yields one group.
	if len(a.node.GroupBy) == 0 && len(a.groups) == 0 {
		key := ""
		a.groups[key] = &groupEntry{states: make([]aggState, len(a.node.Aggs))}
		a.order = append(a.order, key)
	}
	a.built = true
	return nil
}

func (a *hashAggIter) Next() (plan.Row, bool, error) {
	if !a.built {
		if err := a.buildGroups(); err != nil {
			return nil, false, err
		}
	}
	if a.pos >= len(a.order) {
		return nil, false, nil
	}
	g := a.groups[a.order[a.pos]]
	a.pos++
	a.ctx.VM.AccountCPU(OpsPerTuple)
	out := make(plan.Row, 0, len(g.keys)+len(g.states))
	out = append(out, g.keys...)
	for i := range g.states {
		out = append(out, g.states[i].result(&a.node.Aggs[i]))
	}
	return out, true, nil
}

func (a *hashAggIter) Close() {}

// sortIter materializes and sorts its input. Rows are held in host memory;
// when their simulated size exceeds work_mem, external-merge I/O is
// charged to the VM (one write pass plus one read pass).
type sortIter struct {
	ctx   *Context
	node  *optimizer.Sort
	rows  []plan.Row
	pos   int
	built bool
	err   error
}

func newSortIter(n *optimizer.Sort, ctx *Context) (iterator, error) {
	return &sortIter{ctx: ctx, node: n}, nil
}

func (s *sortIter) buildRows() error {
	input, err := build(s.node.Input, s.ctx)
	if err != nil {
		return err
	}
	defer input.Close()
	var bytes int64
	for {
		row, ok, err := input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		r := cloneRow(row)
		s.rows = append(s.rows, r)
		bytes += rowBytes(r)
	}
	keys := s.node.Keys
	var sortErr error
	sort.SliceStable(s.rows, func(i, j int) bool {
		s.ctx.VM.AccountCPU(2 * OpsPerCompare)
		for _, k := range keys {
			a, b := s.rows[i][k.Col], s.rows[j][k.Col]
			// NULLs sort last in ascending order (PostgreSQL default).
			switch {
			case a.IsNull() && b.IsNull():
				continue
			case a.IsNull():
				return k.Desc
			case b.IsNull():
				return !k.Desc
			}
			c, ok := types.Compare(a, b)
			if !ok {
				if sortErr == nil {
					sortErr = fmt.Errorf("executor: cannot compare %s with %s in sort", a.Kind, b.Kind)
				}
				return false
			}
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	if bytes > s.ctx.WorkMemBytes {
		spillPages := int(bytes / storage.PageSize)
		s.ctx.VM.AccountWrite(spillPages)
		s.ctx.VM.AccountSeqRead(spillPages)
	}
	s.built = true
	return nil
}

func (s *sortIter) Next() (plan.Row, bool, error) {
	if s.err != nil {
		return nil, false, s.err
	}
	if !s.built {
		if err := s.buildRows(); err != nil {
			s.err = err
			return nil, false, err
		}
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	s.ctx.VM.AccountCPU(plan.OpsPerOperator)
	return row, true, nil
}

func (s *sortIter) Close() {}
