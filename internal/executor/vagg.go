package executor

import (
	"fmt"
	"sort"

	"dbvirt/internal/optimizer"
	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
	"dbvirt/internal/storage"
	"dbvirt/internal/types"
)

// vSort materializes its input from batches and sorts with the exact
// comparator (and therefore the exact comparison count and charges) of the
// tuple executor, then emits batch-sized chunks.
type vSort struct {
	ctx   *Context
	node  *optimizer.Sort
	rows  []plan.Row
	pos   int
	built bool
	err   error

	selBuf []int
	out    plan.Batch
}

func newVSort(n *optimizer.Sort, ctx *Context) (batchIterator, error) {
	return &vSort{ctx: ctx, node: n}, nil
}

func (s *vSort) buildRows() error {
	input, err := vbuild(s.node.Input, s.ctx)
	if err != nil {
		return err
	}
	defer input.Close()
	var bytes int64
	for {
		b, ok, err := input.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		sel := liveSel(b, &s.selBuf)
		for _, i := range sel {
			r := make(plan.Row, len(b.Cols))
			b.ReadRow(i, r)
			s.rows = append(s.rows, r)
			bytes += rowBytes(r)
		}
	}
	keys := s.node.Keys
	var sortErr error
	// The comparator below is the tuple executor's, so the comparison
	// count is identical; the charge (an exact integer per call) is
	// accumulated locally and issued once, which sums to the same total.
	var compares int64
	sort.SliceStable(s.rows, func(i, j int) bool {
		compares++
		for _, k := range keys {
			a, b := s.rows[i][k.Col], s.rows[j][k.Col]
			// NULLs sort last in ascending order (PostgreSQL default).
			switch {
			case a.IsNull() && b.IsNull():
				continue
			case a.IsNull():
				return k.Desc
			case b.IsNull():
				return !k.Desc
			}
			c, ok := types.Compare(a, b)
			if !ok {
				if sortErr == nil {
					sortErr = fmt.Errorf("executor: cannot compare %s with %s in sort", a.Kind, b.Kind)
				}
				return false
			}
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	s.ctx.VM.AccountCPU(2 * OpsPerCompare * float64(compares))
	if sortErr != nil {
		return sortErr
	}
	if bytes > s.ctx.WorkMemBytes {
		spillPages := int(bytes / storage.PageSize)
		s.ctx.VM.AccountWrite(spillPages)
		s.ctx.VM.AccountSeqRead(spillPages)
	}
	s.built = true
	return nil
}

func (s *vSort) NextBatch() (*plan.Batch, bool, error) {
	if s.err != nil {
		return nil, false, s.err
	}
	if !s.built {
		if err := s.buildRows(); err != nil {
			s.err = err
			return nil, false, err
		}
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	n := len(s.rows) - s.pos
	if n > plan.BatchSize {
		n = plan.BatchSize
	}
	s.out.Reset(len(s.rows[s.pos]))
	for i := 0; i < n; i++ {
		s.out.AppendRow(s.rows[s.pos+i])
	}
	s.pos += n
	s.ctx.VM.AccountCPU(plan.OpsPerOperator * float64(n))
	return &s.out, true, nil
}

func (s *vSort) Close() {}

// vHashAgg consumes its input in batches, grouping rows and accumulating
// aggregate states exactly as the tuple executor does (hash and operator
// charges issued in bulk per batch), then emits one row per group in
// first-seen order.
type vHashAgg struct {
	ctx    *Context
	node   *optimizer.HashAgg
	groups map[string]*groupEntry
	// intGroups/strGroups/pairGroups are kind-exact fast paths for common
	// key shapes (one KindInt key, one KindString key, two KindString
	// keys); every other shape (including NULLs and mixed kinds) uses the
	// byte-encoded map. Each row's key kinds pick the same map
	// deterministically, so the partitions can never alias one group.
	intGroups  map[int64]*groupEntry
	strGroups  map[string]*groupEntry
	pairGroups map[[2]string]*groupEntry
	// pairList mirrors pairGroups; while the group count stays small a
	// linear scan over one-or-few-character keys beats hashing the pair.
	pairList []*groupEntry
	order    []*groupEntry
	pos       int
	built     bool

	selBuf     []int
	keyScratch []byte
	out        plan.Batch
}

func newVHashAgg(n *optimizer.HashAgg, ctx *Context) (batchIterator, error) {
	return &vHashAgg{
		ctx: ctx, node: n,
		groups:     make(map[string]*groupEntry),
		intGroups:  make(map[int64]*groupEntry),
		strGroups:  make(map[string]*groupEntry),
		pairGroups: make(map[[2]string]*groupEntry),
	}, nil
}

func (a *vHashAgg) newGroup(keys []types.Value) *groupEntry {
	g := &groupEntry{
		keys:   append([]types.Value(nil), keys...),
		states: make([]aggState, len(a.node.Aggs)),
	}
	a.order = append(a.order, g)
	return g
}

// accumVec folds column i of the input batch (a bare-ColRef aggregate
// argument) into the resolved group states, replicating aggState.add
// exactly. Typed null-free vectors get dedicated loops; everything else
// goes through Vec.Get.
func (a *vHashAgg) accumVec(spec *plan.AggSpec, i int, vec *types.Vec, sel []int, ptrs []*groupEntry) {
	n := len(ptrs)
	if vec.Any == nil && vec.Null == nil && vec.Kind != types.KindNull {
		if spec.Func == sql.AggCount {
			for k := 0; k < n; k++ {
				ptrs[k].states[i].count++
			}
			return
		}
		if spec.Func == sql.AggSum || spec.Func == sql.AggAvg {
			switch vec.Kind {
			case types.KindFloat:
				f := vec.F
				for k := 0; k < n; k++ {
					st := &ptrs[k].states[i]
					st.count++
					st.anyF = true
					st.sumF += f[sel[k]]
				}
				return
			case types.KindInt, types.KindDate, types.KindBool:
				iv := vec.I
				for k := 0; k < n; k++ {
					st := &ptrs[k].states[i]
					st.count++
					st.sumI += iv[sel[k]]
				}
				return
			}
		}
	}
	switch spec.Func {
	case sql.AggCount:
		for k := 0; k < n; k++ {
			if vec.Get(sel[k]).IsNull() {
				continue
			}
			ptrs[k].states[i].count++
		}
	case sql.AggSum, sql.AggAvg:
		for k := 0; k < n; k++ {
			v := vec.Get(sel[k])
			if v.IsNull() {
				continue
			}
			st := &ptrs[k].states[i]
			st.count++
			if v.Kind == types.KindFloat {
				st.anyF = true
				st.sumF += v.F
			} else {
				st.sumI += v.I
			}
		}
	default:
		for k := 0; k < n; k++ {
			ptrs[k].states[i].add(spec, vec.Get(sel[k]))
		}
	}
}

func (a *vHashAgg) buildGroups() error {
	input, err := vbuild(a.node.Input, a.ctx)
	if err != nil {
		return err
	}
	defer input.Close()

	lay := a.node.Input.Layout()
	keyEvs := make([]plan.VecEval, len(a.node.GroupBy))
	for i, g := range a.node.GroupBy {
		keyEvs[i], err = plan.CompileVec(g, lay, a.ctx.VM)
		if err != nil {
			return err
		}
	}
	argEvs := make([]plan.VecEval, len(a.node.Aggs))
	// argOffs[i] >= 0 marks an aggregate whose argument is a bare column
	// reference: its values are read straight from the input batch instead
	// of being gathered (a ColRef evaluation charges no CPU ops, so the
	// skip is charge-neutral).
	argOffs := make([]int, len(a.node.Aggs))
	for i, spec := range a.node.Aggs {
		argOffs[i] = -1
		if spec.Star {
			continue
		}
		if cr, ok := spec.Arg.(*plan.ColRef); ok {
			if off, err := lay.Offset(cr); err == nil {
				argOffs[i] = off
				continue
			}
		}
		argEvs[i], err = plan.CompileVec(spec.Arg, lay, a.ctx.VM)
		if err != nil {
			return err
		}
	}

	// Tell the input which of its output columns the aggregate reads; a
	// join below can then skip materializing the rest (charge-neutral:
	// only physical column fills are elided, never evaluations).
	if p, ok := input.(colPruner); ok {
		set := make(map[int]struct{})
		prunable := true
		for _, g := range a.node.GroupBy {
			if !exprCols(g, lay, set) {
				prunable = false
				break
			}
		}
		for i := range a.node.Aggs {
			if !prunable {
				break
			}
			if a.node.Aggs[i].Star {
				continue
			}
			if !exprCols(a.node.Aggs[i].Arg, lay, set) {
				prunable = false
			}
		}
		if prunable {
			needed := make([]bool, a.node.Input.Width())
			for c := range set {
				if c < len(needed) {
					needed[c] = true
				}
			}
			p.pruneOutput(needed)
		}
	}

	keyCols := make([][]types.Value, len(keyEvs))
	argCols := make([][]types.Value, len(argEvs))
	keyVals := make([]types.Value, len(keyEvs))
	var ptrs []*groupEntry
	perRow := float64(len(keyEvs))*OpsPerHash + float64(len(a.node.Aggs))*plan.OpsPerOperator
	for {
		b, ok, err := input.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		sel := liveSel(b, &a.selBuf)
		n := len(sel)
		for i, ev := range keyEvs {
			keyCols[i] = growVals(keyCols[i], n)
			if err := ev(b, sel, keyCols[i]); err != nil {
				return err
			}
		}
		a.ctx.VM.AccountCPU(perRow * float64(n))
		for i, ev := range argEvs {
			if ev == nil {
				continue
			}
			argCols[i] = growVals(argCols[i], n)
			if err := ev(b, sel, argCols[i]); err != nil {
				return err
			}
		}
		// Resolve each row's group first, then accumulate column-at-a-time:
		// one pass per aggregate keeps the spec dispatch out of the row loop.
		if cap(ptrs) < n {
			ptrs = make([]*groupEntry, n)
		}
		ptrs = ptrs[:n]
		nk := len(keyEvs)
		for k := 0; k < n; k++ {
			var g *groupEntry
			if nk == 1 {
				switch kv := keyCols[0][k]; kv.Kind {
				case types.KindInt:
					g = a.intGroups[kv.I]
					if g == nil {
						g = a.newGroup(keyCols[0][k : k+1])
						a.intGroups[kv.I] = g
					}
				case types.KindString:
					g = a.strGroups[kv.S]
					if g == nil {
						g = a.newGroup(keyCols[0][k : k+1])
						a.strGroups[kv.S] = g
					}
				}
			} else if nk == 2 {
				ka, kb := keyCols[0][k], keyCols[1][k]
				if ka.Kind == types.KindString && kb.Kind == types.KindString {
					if len(a.pairList) <= 16 {
						for _, e := range a.pairList {
							if e.keys[0].S == ka.S && e.keys[1].S == kb.S {
								g = e
								break
							}
						}
					} else {
						g = a.pairGroups[[2]string{ka.S, kb.S}]
					}
					if g == nil {
						keyVals[0], keyVals[1] = ka, kb
						g = a.newGroup(keyVals)
						a.pairGroups[[2]string{ka.S, kb.S}] = g
						a.pairList = append(a.pairList, g)
					}
				}
			}
			if g == nil {
				for i := range keyEvs {
					keyVals[i] = keyCols[i][k]
				}
				// Allocation-free lookup; the string key materializes only
				// when a new group is inserted.
				key := encodeKeyAppend(a.keyScratch[:0], keyVals)
				a.keyScratch = key
				g = a.groups[string(key)]
				if g == nil {
					g = a.newGroup(keyVals)
					a.groups[string(key)] = g
				}
			}
			ptrs[k] = g
		}
		// Accumulate column-at-a-time with the aggregate function hoisted
		// out of the row loop; each arm replicates aggState.add exactly.
		for i := range a.node.Aggs {
			spec := &a.node.Aggs[i]
			if spec.Star {
				for k := 0; k < n; k++ {
					ptrs[k].states[i].count++
				}
				continue
			}
			if off := argOffs[i]; off >= 0 {
				a.accumVec(spec, i, &b.Cols[off], sel, ptrs)
				continue
			}
			col := argCols[i]
			switch spec.Func {
			case sql.AggCount:
				for k := 0; k < n; k++ {
					if col[k].IsNull() {
						continue
					}
					ptrs[k].states[i].count++
				}
			case sql.AggSum, sql.AggAvg:
				for k := 0; k < n; k++ {
					v := col[k]
					if v.IsNull() {
						continue
					}
					st := &ptrs[k].states[i]
					st.count++
					if v.Kind == types.KindFloat {
						st.anyF = true
						st.sumF += v.F
					} else {
						st.sumI += v.I
					}
				}
			default:
				for k := 0; k < n; k++ {
					ptrs[k].states[i].add(spec, col[k])
				}
			}
		}
	}
	// Global aggregation over zero rows still yields one group.
	if len(a.node.GroupBy) == 0 && len(a.order) == 0 {
		g := &groupEntry{states: make([]aggState, len(a.node.Aggs))}
		a.groups[""] = g
		a.order = append(a.order, g)
	}
	a.built = true
	return nil
}

func (a *vHashAgg) NextBatch() (*plan.Batch, bool, error) {
	if !a.built {
		if err := a.buildGroups(); err != nil {
			return nil, false, err
		}
	}
	if a.pos >= len(a.order) {
		return nil, false, nil
	}
	width := len(a.node.GroupBy) + len(a.node.Aggs)
	a.out.Reset(width)
	emitted := 0
	row := make(plan.Row, 0, width)
	for a.pos < len(a.order) && emitted < plan.BatchSize {
		g := a.order[a.pos]
		a.pos++
		row = row[:0]
		row = append(row, g.keys...)
		for i := range g.states {
			row = append(row, g.states[i].result(&a.node.Aggs[i]))
		}
		a.out.AppendRow(row)
		emitted++
	}
	a.ctx.VM.AccountCPU(OpsPerTuple * float64(emitted))
	return &a.out, true, nil
}

func (a *vHashAgg) Close() {}
