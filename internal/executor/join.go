package executor

import (
	"dbvirt/internal/optimizer"
	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
	"dbvirt/internal/storage"
	"dbvirt/internal/types"
)

// nljoinIter is a nested-loops join with the inner side materialized.
type nljoinIter struct {
	ctx      *Context
	node     *optimizer.NLJoin
	outer    iterator
	inner    []plan.Row
	pred     func(plan.Row) (bool, error)
	outerRow plan.Row
	innerIdx int
	matched  bool // current outer row matched at least once (LEFT join)
	done     bool
	combined plan.Row
	loaded   bool
}

func newNLJoinIter(n *optimizer.NLJoin, ctx *Context) (iterator, error) {
	outer, err := build(n.Outer, ctx)
	if err != nil {
		return nil, err
	}
	pred, err := compileConjuncts(n.On, n.Layout(), ctx.VM)
	if err != nil {
		outer.Close()
		return nil, err
	}
	return &nljoinIter{
		ctx: ctx, node: n, outer: outer, pred: pred,
		combined: make(plan.Row, n.Width()),
		innerIdx: -1,
	}, nil
}

// load materializes the inner side once.
func (j *nljoinIter) load() error {
	inner, err := build(j.node.Inner, j.ctx)
	if err != nil {
		return err
	}
	defer inner.Close()
	for {
		row, ok, err := inner.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.ctx.VM.AccountCPU(OpsPerTuple)
		j.inner = append(j.inner, cloneRow(row))
	}
	j.loaded = true
	return nil
}

func (j *nljoinIter) Next() (plan.Row, bool, error) {
	if j.done {
		return nil, false, nil
	}
	if !j.loaded {
		if err := j.load(); err != nil {
			return nil, false, err
		}
	}
	outerW := j.node.Outer.Width()
	for {
		if j.outerRow == nil {
			row, ok, err := j.outer.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.done = true
				return nil, false, nil
			}
			j.outerRow = cloneRow(row)
			j.innerIdx = 0
			j.matched = false
		}
		for j.innerIdx < len(j.inner) {
			innerRow := j.inner[j.innerIdx]
			j.innerIdx++
			copy(j.combined, j.outerRow)
			copy(j.combined[outerW:], innerRow)
			if len(j.node.On) == 0 {
				j.ctx.VM.AccountCPU(plan.OpsPerOperator)
			}
			pass, err := j.pred(j.combined)
			if err != nil {
				return nil, false, err
			}
			if pass {
				j.matched = true
				j.ctx.VM.AccountCPU(OpsPerTuple)
				return j.combined, true, nil
			}
		}
		// Inner exhausted for this outer row.
		if j.node.Type == sql.LeftJoin && !j.matched {
			copy(j.combined, j.outerRow)
			for i := outerW; i < len(j.combined); i++ {
				j.combined[i] = types.Null
			}
			j.outerRow = nil
			j.ctx.VM.AccountCPU(OpsPerTuple)
			return j.combined, true, nil
		}
		j.outerRow = nil
	}
}

func (j *nljoinIter) Close() { j.outer.Close() }

// hashJoinIter builds a hash table on the right input and probes with the
// left.
type hashJoinIter struct {
	ctx       *Context
	node      *optimizer.HashJoin
	left      iterator
	table     map[string][]plan.Row
	leftKeys  []plan.Evaluator
	rightKeys []plan.Evaluator
	residual  func(plan.Row) (bool, error)
	built     bool

	probeRow  plan.Row
	bucket    []plan.Row
	bucketIdx int
	matched   bool
	combined  plan.Row
	keyBuf    []types.Value
	done      bool
}

func newHashJoinIter(n *optimizer.HashJoin, ctx *Context) (iterator, error) {
	if n.BuildOuter {
		return newBuildOuterHashJoinIter(n, ctx)
	}
	left, err := build(n.Left, ctx)
	if err != nil {
		return nil, err
	}
	lks := make([]plan.Evaluator, len(n.LeftKeys))
	for i, e := range n.LeftKeys {
		lks[i], err = plan.Compile(e, n.Left.Layout(), ctx.VM)
		if err != nil {
			left.Close()
			return nil, err
		}
	}
	rks := make([]plan.Evaluator, len(n.RightKeys))
	for i, e := range n.RightKeys {
		rks[i], err = plan.Compile(e, n.Right.Layout(), ctx.VM)
		if err != nil {
			left.Close()
			return nil, err
		}
	}
	residual, err := compileConjuncts(n.Residual, n.Layout(), ctx.VM)
	if err != nil {
		left.Close()
		return nil, err
	}
	return &hashJoinIter{
		ctx: ctx, node: n, left: left,
		leftKeys: lks, rightKeys: rks, residual: residual,
		table:    make(map[string][]plan.Row),
		combined: make(plan.Row, n.Width()),
		keyBuf:   make([]types.Value, len(lks)),
	}, nil
}

// buildTable materializes the right (build) side into the hash table,
// charging grace-partitioning I/O when the build input exceeds work_mem.
func (j *hashJoinIter) buildTable() error {
	right, err := build(j.node.Right, j.ctx)
	if err != nil {
		return err
	}
	defer right.Close()
	var bytes int64
	for {
		row, ok, err := right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.ctx.VM.AccountCPU(OpsPerTuple + float64(len(j.rightKeys))*OpsPerHash)
		for i, ev := range j.rightKeys {
			v, err := ev(row)
			if err != nil {
				return err
			}
			j.keyBuf[i] = v
		}
		key, hasNull := joinKey(j.keyBuf)
		if hasNull {
			continue // NULL keys never match
		}
		stored := cloneRow(row)
		j.table[key] = append(j.table[key], stored)
		bytes += rowBytes(stored)
	}
	// Grace hash join spill accounting: with B batches, both inputs are
	// written out and re-read once.
	if float64(bytes)*HashTableOverhead > float64(j.ctx.WorkMemBytes) {
		spillPages := int(bytes / storage.PageSize)
		j.ctx.VM.AccountWrite(spillPages)
		j.ctx.VM.AccountSeqRead(spillPages)
	}
	j.built = true
	return nil
}

func (j *hashJoinIter) Next() (plan.Row, bool, error) {
	if j.done {
		return nil, false, nil
	}
	if !j.built {
		if err := j.buildTable(); err != nil {
			return nil, false, err
		}
	}
	leftW := j.node.Left.Width()
	for {
		// Drain the current bucket.
		for j.bucketIdx < len(j.bucket) {
			buildRow := j.bucket[j.bucketIdx]
			j.bucketIdx++
			copy(j.combined, j.probeRow)
			copy(j.combined[leftW:], buildRow)
			pass, err := j.residual(j.combined)
			if err != nil {
				return nil, false, err
			}
			if pass {
				j.matched = true
				j.ctx.VM.AccountCPU(OpsPerTuple)
				return j.combined, true, nil
			}
		}
		// Left-join null extension for the finished probe row.
		if j.probeRow != nil && j.node.Type == sql.LeftJoin && !j.matched {
			copy(j.combined, j.probeRow)
			for i := leftW; i < len(j.combined); i++ {
				j.combined[i] = types.Null
			}
			j.probeRow = nil
			j.bucket = nil
			j.ctx.VM.AccountCPU(OpsPerTuple)
			return j.combined, true, nil
		}

		// Advance the probe side.
		row, ok, err := j.left.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.done = true
			return nil, false, nil
		}
		j.ctx.VM.AccountCPU(float64(len(j.leftKeys)) * OpsPerHash)
		for i, ev := range j.leftKeys {
			v, err := ev(row)
			if err != nil {
				return nil, false, err
			}
			j.keyBuf[i] = v
		}
		j.probeRow = cloneRow(row)
		j.matched = false
		key, hasNull := joinKey(j.keyBuf)
		if hasNull {
			j.bucket = nil
		} else {
			j.bucket = j.table[key]
		}
		j.bucketIdx = 0
	}
}

func (j *hashJoinIter) Close() { j.left.Close() }

// indexNLJoinIter probes the inner relation's B+-tree per outer row.
type indexNLJoinIter struct {
	ctx       *Context
	node      *optimizer.IndexNLJoin
	outer     iterator
	keyEv     plan.Evaluator
	innerPred func(plan.Row) (bool, error)
	residual  func(plan.Row) (bool, error)
	combined  plan.Row

	outerRow plan.Row
	matches  []storage.Tuple
	matchIdx int
	matched  bool
	done     bool
}

func newIndexNLJoinIter(n *optimizer.IndexNLJoin, ctx *Context) (iterator, error) {
	outer, err := build(n.Outer, ctx)
	if err != nil {
		return nil, err
	}
	keyEv, err := plan.Compile(n.OuterKey, n.Outer.Layout(), ctx.VM)
	if err != nil {
		outer.Close()
		return nil, err
	}
	innerPred, err := compileConjuncts(n.InnerFilter, plan.SingleRel(n.InnerRel.Idx), ctx.VM)
	if err != nil {
		outer.Close()
		return nil, err
	}
	residual, err := compileConjuncts(n.Residual, n.Layout(), ctx.VM)
	if err != nil {
		outer.Close()
		return nil, err
	}
	return &indexNLJoinIter{
		ctx: ctx, node: n, outer: outer,
		keyEv: keyEv, innerPred: innerPred, residual: residual,
		combined: make(plan.Row, n.Width()),
	}, nil
}

// probe fetches the inner tuples matching key.
func (j *indexNLJoinIter) probe(key int64) error {
	j.matches = j.matches[:0]
	it, err := j.node.Index.Tree.SeekRange(j.ctx.Pool, key, key)
	if err != nil {
		return err
	}
	defer it.Close()
	for {
		_, tid, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.ctx.VM.AccountCPU(OpsPerIndexTuple)
		if j.ctx.Vis != nil && !j.ctx.Vis(j.node.InnerRel.Table.Heap.FileID(), tid) {
			continue
		}
		tup, err := j.node.InnerRel.Table.Heap.GetAt(j.ctx.Pool, tid, storage.RandHint)
		if err != nil {
			return err
		}
		j.ctx.VM.AccountCPU(OpsPerTuple)
		pass, err := j.innerPred(plan.Row(tup))
		if err != nil {
			return err
		}
		if pass {
			j.matches = append(j.matches, tup)
		}
	}
	return nil
}

func (j *indexNLJoinIter) Next() (plan.Row, bool, error) {
	if j.done {
		return nil, false, nil
	}
	outerW := j.node.Outer.Width()
	for {
		for j.matchIdx < len(j.matches) {
			inner := j.matches[j.matchIdx]
			j.matchIdx++
			copy(j.combined, j.outerRow)
			copy(j.combined[outerW:], inner)
			pass, err := j.residual(j.combined)
			if err != nil {
				return nil, false, err
			}
			if pass {
				j.matched = true
				j.ctx.VM.AccountCPU(OpsPerTuple)
				return j.combined, true, nil
			}
		}
		if j.outerRow != nil && j.node.Type == sql.LeftJoin && !j.matched {
			copy(j.combined, j.outerRow)
			for i := outerW; i < len(j.combined); i++ {
				j.combined[i] = types.Null
			}
			j.outerRow = nil
			j.ctx.VM.AccountCPU(OpsPerTuple)
			return j.combined, true, nil
		}

		row, ok, err := j.outer.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.done = true
			return nil, false, nil
		}
		j.outerRow = cloneRow(row)
		j.matched = false
		j.matchIdx = 0
		j.matches = j.matches[:0]
		j.ctx.VM.AccountCPU(plan.OpsPerOperator)
		kv, err := j.keyEv(j.outerRow)
		if err != nil {
			return nil, false, err
		}
		if kv.IsNull() {
			continue // NULL key matches nothing (LEFT join emits above)
		}
		k := normalizeKeyVal(kv)
		if k.Kind != types.KindInt {
			continue // non-integral key cannot match an int64 index
		}
		if err := j.probe(k.I); err != nil {
			return nil, false, err
		}
	}
}

func (j *indexNLJoinIter) Close() { j.outer.Close() }
