package executor

import (
	"dbvirt/internal/optimizer"
	"dbvirt/internal/plan"
	"dbvirt/internal/vm"
)

// NodeStats records what one plan operator actually did during execution,
// for EXPLAIN ANALYZE.
type NodeStats struct {
	// Rows is the number of rows the operator produced.
	Rows int64
	// Loops counts how many times the operator was opened (rescans).
	Loops int64
	// Usage is the simulated VM usage charged while this operator (and,
	// as in PostgreSQL's "actual time", its children) was producing rows:
	// inclusive, measured as VM-clock deltas around each Next call.
	Usage vm.Usage
}

// Seconds returns the operator's inclusive simulated time under the
// machine's CPU/IO overlap factor — the "actual time" half of an
// estimate-vs-actual residual.
func (s *NodeStats) Seconds(overlap float64) float64 {
	if s == nil {
		return 0
	}
	return s.Usage.Elapsed(overlap)
}

// StatsCollector accumulates per-node execution statistics when attached
// to a Context.
type StatsCollector struct {
	byNode map[optimizer.Node]*NodeStats
}

// NewStatsCollector creates an empty collector.
func NewStatsCollector() *StatsCollector {
	return &StatsCollector{byNode: make(map[optimizer.Node]*NodeStats)}
}

// For returns the recorded statistics for a plan node (nil if the node
// never ran).
func (c *StatsCollector) For(n optimizer.Node) *NodeStats {
	if c == nil {
		return nil
	}
	return c.byNode[n]
}

// register returns the stats cell for a node, creating it on first use.
func (c *StatsCollector) register(n optimizer.Node) *NodeStats {
	st, ok := c.byNode[n]
	if !ok {
		st = &NodeStats{}
		c.byNode[n] = st
	}
	st.Loops++
	return st
}

// statIter wraps an iterator, counting its output rows and attributing
// the VM usage of each Next call to the node. The delta includes the
// node's children (they run inside inner.Next), so Usage is inclusive.
type statIter struct {
	inner iterator
	stats *NodeStats
	vm    *vm.VM
}

func (s *statIter) Next() (plan.Row, bool, error) {
	before := s.vm.Snapshot()
	row, ok, err := s.inner.Next()
	s.stats.Usage = s.stats.Usage.Add(s.vm.Since(before))
	if ok {
		s.stats.Rows++
	}
	return row, ok, err
}

func (s *statIter) Close() { s.inner.Close() }
