package executor

import (
	"dbvirt/internal/index"
	"dbvirt/internal/optimizer"
	"dbvirt/internal/plan"
	"dbvirt/internal/storage"
)

// seqScanIter scans a heap file sequentially with pushed-down filters.
type seqScanIter struct {
	ctx    *Context
	node   *optimizer.SeqScan
	heapIt *storage.Iterator
	pred   func(plan.Row) (bool, error)
	closed bool
}

func newSeqScanIter(n *optimizer.SeqScan, ctx *Context) (iterator, error) {
	pred, err := compileConjuncts(n.Filter, n.Layout(), ctx.VM)
	if err != nil {
		return nil, err
	}
	return &seqScanIter{
		ctx:    ctx,
		node:   n,
		heapIt: n.Rel.Table.Heap.NewIterator(ctx.Pool),
		pred:   pred,
	}, nil
}

func (s *seqScanIter) Next() (plan.Row, bool, error) {
	fid := s.node.Rel.Table.Heap.FileID()
	for {
		tid, tup, ok, err := s.heapIt.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if s.ctx.Vis != nil && !s.ctx.Vis(fid, tid) {
			continue
		}
		s.ctx.VM.AccountCPU(OpsPerTuple)
		row := plan.Row(tup)
		pass, err := s.pred(row)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return row, true, nil
		}
	}
}

func (s *seqScanIter) Close() {
	if !s.closed {
		s.heapIt.Close()
		s.closed = true
	}
}

// indexScanIter probes a B+-tree range and fetches matching heap tuples.
type indexScanIter struct {
	ctx     *Context
	node    *optimizer.IndexScan
	rangeIt *index.RangeIterator
	pred    func(plan.Row) (bool, error)
	hint    storage.AccessHint
	closed  bool
}

func newIndexScanIter(n *optimizer.IndexScan, ctx *Context) (iterator, error) {
	pred, err := compileConjuncts(n.Filter, n.Layout(), ctx.VM)
	if err != nil {
		return nil, err
	}
	lo := int64(-1 << 62)
	hi := int64(1<<62 - 1)
	if n.Lo != nil {
		lo = n.Lo.Key
	}
	if n.Hi != nil {
		hi = n.Hi.Key
	}
	it, err := n.Index.Tree.SeekRange(ctx.Pool, lo, hi)
	if err != nil {
		return nil, err
	}
	hint := storage.RandHint
	if n.Correlated {
		hint = storage.SeqHint
	}
	return &indexScanIter{ctx: ctx, node: n, rangeIt: it, pred: pred, hint: hint}, nil
}

func (s *indexScanIter) Next() (plan.Row, bool, error) {
	fid := s.node.Rel.Table.Heap.FileID()
	for {
		_, tid, ok, err := s.rangeIt.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		s.ctx.VM.AccountCPU(OpsPerIndexTuple)
		if s.ctx.Vis != nil && !s.ctx.Vis(fid, tid) {
			continue
		}
		tup, err := s.node.Rel.Table.Heap.GetAt(s.ctx.Pool, tid, s.hint)
		if err != nil {
			return nil, false, err
		}
		s.ctx.VM.AccountCPU(OpsPerTuple)
		row := plan.Row(tup)
		pass, err := s.pred(row)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return row, true, nil
		}
	}
}

func (s *indexScanIter) Close() {
	if !s.closed {
		s.rangeIt.Close()
		s.closed = true
	}
}

// subqueryScanIter evaluates a derived table: it runs the inner plan and
// exposes its visible output columns as the relation's rows.
type subqueryScanIter struct {
	input   iterator
	visible []int
	out     plan.Row
}

func newSubqueryScanIter(n *optimizer.SubqueryScan, ctx *Context) (iterator, error) {
	input, err := build(n.Input, ctx)
	if err != nil {
		return nil, err
	}
	return &subqueryScanIter{
		input:   input,
		visible: n.Visible,
		out:     make(plan.Row, len(n.Visible)),
	}, nil
}

func (s *subqueryScanIter) Next() (plan.Row, bool, error) {
	row, ok, err := s.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	for i, idx := range s.visible {
		s.out[i] = row[idx]
	}
	return s.out, true, nil
}

func (s *subqueryScanIter) Close() { s.input.Close() }

// filterIter applies residual predicates.
type filterIter struct {
	input iterator
	pred  func(plan.Row) (bool, error)
}

func newFilterIter(n *optimizer.FilterNode, ctx *Context) (iterator, error) {
	input, err := build(n.Input, ctx)
	if err != nil {
		return nil, err
	}
	pred, err := compileConjuncts(n.Conds, n.Layout(), ctx.VM)
	if err != nil {
		input.Close()
		return nil, err
	}
	return &filterIter{input: input, pred: pred}, nil
}

func (f *filterIter) Next() (plan.Row, bool, error) {
	for {
		row, ok, err := f.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := f.pred(row)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return row, true, nil
		}
	}
}

func (f *filterIter) Close() { f.input.Close() }

// projectIter evaluates the output expressions.
type projectIter struct {
	input iterator
	evs   []plan.Evaluator
	out   plan.Row
}

func newProjectIter(n *optimizer.Project, ctx *Context) (iterator, error) {
	input, err := build(n.Input, ctx)
	if err != nil {
		return nil, err
	}
	evs := make([]plan.Evaluator, len(n.Cols))
	for i, c := range n.Cols {
		ev, err := plan.Compile(c.E, n.Input.Layout(), ctx.VM)
		if err != nil {
			input.Close()
			return nil, err
		}
		evs[i] = ev
	}
	return &projectIter{input: input, evs: evs, out: make(plan.Row, len(evs))}, nil
}

func (p *projectIter) Next() (plan.Row, bool, error) {
	row, ok, err := p.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	for i, ev := range p.evs {
		v, err := ev(row)
		if err != nil {
			return nil, false, err
		}
		p.out[i] = v
	}
	return p.out, true, nil
}

func (p *projectIter) Close() { p.input.Close() }

// limitIter truncates the stream.
type limitIter struct {
	input iterator
	left  int64
}

func newLimitIter(n *optimizer.Limit, ctx *Context) (iterator, error) {
	input, err := build(n.Input, ctx)
	if err != nil {
		return nil, err
	}
	return &limitIter{input: input, left: n.N}, nil
}

func (l *limitIter) Next() (plan.Row, bool, error) {
	if l.left <= 0 {
		return nil, false, nil
	}
	row, ok, err := l.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.left--
	return row, true, nil
}

func (l *limitIter) Close() { l.input.Close() }

// distinctIter removes duplicate rows over the leading visible columns.
type distinctIter struct {
	ctx     *Context
	input   iterator
	visible int
	seen    map[string]bool
}

func newDistinctIter(n *optimizer.Distinct, ctx *Context) (iterator, error) {
	input, err := build(n.Input, ctx)
	if err != nil {
		return nil, err
	}
	return &distinctIter{ctx: ctx, input: input, visible: n.VisibleCols, seen: make(map[string]bool)}, nil
}

func (d *distinctIter) Next() (plan.Row, bool, error) {
	for {
		row, ok, err := d.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		d.ctx.VM.AccountCPU(float64(d.visible) * OpsPerHash)
		key := encodeKey(row[:d.visible])
		if d.seen[key] {
			continue
		}
		d.seen[key] = true
		return row, true, nil
	}
}

func (d *distinctIter) Close() { d.input.Close() }
