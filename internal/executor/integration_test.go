package executor_test

import (
	"fmt"
	"strings"
	"testing"

	"dbvirt/internal/engine"
	"dbvirt/internal/executor"
	"dbvirt/internal/vm"
)

// These tests drive the executor through its own API (Run, Context,
// StatsCollector) rather than through the engine facade, using the engine
// only to build plans.

func session(t *testing.T) *engine.Session {
	t.Helper()
	m := vm.MustMachine(vm.DefaultMachineConfig())
	v, err := m.NewVM("x", vm.Shares{CPU: 1, Memory: 1, IO: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := engine.NewSession(engine.NewDatabase(), v, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CREATE TABLE t (a INT, b TEXT)"); err != nil {
		t.Fatal(err)
	}
	var vals []string
	for i := 0; i < 300; i++ {
		vals = append(vals, fmt.Sprintf("(%d, 'row%d')", i, i))
	}
	if _, err := s.Exec("INSERT INTO t VALUES " + strings.Join(vals, ", ")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("ANALYZE t"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunStreamsRows(t *testing.T) {
	s := session(t)
	pl, err := s.Plan("SELECT a FROM t WHERE a < 10 ORDER BY a DESC", s.Params)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &executor.Context{Pool: s.Pool, VM: s.VM, WorkMemBytes: s.Params.WorkMemBytes}
	res, err := executor.Run(pl, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "a" {
		t.Errorf("columns = %v", res.Columns)
	}
	rows, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 || rows[0][0].I != 9 || rows[9][0].I != 0 {
		t.Errorf("rows = %v", rows)
	}
}

func TestStatsCollectorCountsRows(t *testing.T) {
	s := session(t)
	pl, err := s.Plan("SELECT count(*) FROM t WHERE a < 100", s.Params)
	if err != nil {
		t.Fatal(err)
	}
	coll := executor.NewStatsCollector()
	ctx := &executor.Context{Pool: s.Pool, VM: s.VM, WorkMemBytes: s.Params.WorkMemBytes, Stats: coll}
	res, err := executor.Run(pl, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Collect(); err != nil {
		t.Fatal(err)
	}
	// Walk the plan: the scan node must report 100 rows, the root 1.
	rootStats := coll.For(pl.Root)
	if rootStats == nil || rootStats.Rows != 1 {
		t.Errorf("root stats = %+v", rootStats)
	}
	// A fresh collector has no record for unknown nodes.
	if coll.For(nil) != nil {
		t.Error("unknown node should have nil stats")
	}
}

func TestRunWithoutStatsHasNoOverhead(t *testing.T) {
	s := session(t)
	pl, err := s.Plan("SELECT a FROM t", s.Params)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &executor.Context{Pool: s.Pool, VM: s.VM, WorkMemBytes: s.Params.WorkMemBytes}
	res, err := executor.Run(pl, ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Collect()
	if err != nil || len(rows) != 300 {
		t.Fatalf("rows = %d, %v", len(rows), err)
	}
}

func TestResultCloseIdempotent(t *testing.T) {
	s := session(t)
	pl, err := s.Plan("SELECT a FROM t LIMIT 5", s.Params)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &executor.Context{Pool: s.Pool, VM: s.VM, WorkMemBytes: s.Params.WorkMemBytes}
	res, err := executor.Run(pl, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := res.Next(); !ok || err != nil {
		t.Fatal("first row should exist")
	}
	res.Close()
	res.Close() // must be safe
}
