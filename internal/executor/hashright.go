package executor

import (
	"dbvirt/internal/optimizer"
	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
	"dbvirt/internal/storage"
	"dbvirt/internal/types"
)

// buildOuterHashJoinIter executes a hash join "in reverse" (PostgreSQL's
// Hash Right Join): the hash table is built on the smaller outer (left)
// side and probed with inner (right) rows. Matched outer rows are flagged;
// for LEFT joins, unmatched outer rows are emitted null-extended after the
// probe stream is drained. Output column order is unchanged (outer columns
// first).
type buildOuterHashJoinIter struct {
	ctx  *Context
	node *optimizer.HashJoin

	right     iterator
	leftKeys  []plan.Evaluator
	rightKeys []plan.Evaluator
	residual  func(plan.Row) (bool, error)

	table    map[string][]*outerEntry
	nullKeys []*outerEntry // outer rows with NULL keys (LEFT join tail)
	allRows  []*outerEntry // emission order for the unmatched tail
	built    bool

	bucket    []*outerEntry
	bucketIdx int
	probeRow  plan.Row
	combined  plan.Row
	keyBuf    []types.Value

	tailIdx   int
	rightDone bool
	done      bool
}

type outerEntry struct {
	row     plan.Row
	matched bool
}

func newBuildOuterHashJoinIter(n *optimizer.HashJoin, ctx *Context) (iterator, error) {
	right, err := build(n.Right, ctx)
	if err != nil {
		return nil, err
	}
	lks := make([]plan.Evaluator, len(n.LeftKeys))
	for i, e := range n.LeftKeys {
		lks[i], err = plan.Compile(e, n.Left.Layout(), ctx.VM)
		if err != nil {
			right.Close()
			return nil, err
		}
	}
	rks := make([]plan.Evaluator, len(n.RightKeys))
	for i, e := range n.RightKeys {
		rks[i], err = plan.Compile(e, n.Right.Layout(), ctx.VM)
		if err != nil {
			right.Close()
			return nil, err
		}
	}
	residual, err := compileConjuncts(n.Residual, n.Layout(), ctx.VM)
	if err != nil {
		right.Close()
		return nil, err
	}
	return &buildOuterHashJoinIter{
		ctx: ctx, node: n, right: right,
		leftKeys: lks, rightKeys: rks, residual: residual,
		table:    make(map[string][]*outerEntry),
		combined: make(plan.Row, n.Width()),
		keyBuf:   make([]types.Value, len(lks)),
	}, nil
}

func (j *buildOuterHashJoinIter) buildTable() error {
	left, err := build(j.node.Left, j.ctx)
	if err != nil {
		return err
	}
	defer left.Close()
	var bytes int64
	for {
		row, ok, err := left.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.ctx.VM.AccountCPU(OpsPerTuple + float64(len(j.leftKeys))*OpsPerHash)
		for i, ev := range j.leftKeys {
			v, err := ev(row)
			if err != nil {
				return err
			}
			j.keyBuf[i] = v
		}
		e := &outerEntry{row: cloneRow(row)}
		j.allRows = append(j.allRows, e)
		bytes += rowBytes(e.row)
		key, hasNull := joinKey(j.keyBuf)
		if hasNull {
			j.nullKeys = append(j.nullKeys, e)
			continue
		}
		j.table[key] = append(j.table[key], e)
	}
	if float64(bytes)*HashTableOverhead > float64(j.ctx.WorkMemBytes) {
		spillPages := int(bytes / storage.PageSize)
		j.ctx.VM.AccountWrite(spillPages)
		j.ctx.VM.AccountSeqRead(spillPages)
	}
	j.built = true
	return nil
}

func (j *buildOuterHashJoinIter) Next() (plan.Row, bool, error) {
	if j.done {
		return nil, false, nil
	}
	if !j.built {
		if err := j.buildTable(); err != nil {
			return nil, false, err
		}
	}
	leftW := j.node.Left.Width()
	for !j.rightDone {
		// Drain the current bucket against the current probe row.
		for j.bucketIdx < len(j.bucket) {
			e := j.bucket[j.bucketIdx]
			j.bucketIdx++
			copy(j.combined, e.row)
			copy(j.combined[leftW:], j.probeRow)
			pass, err := j.residual(j.combined)
			if err != nil {
				return nil, false, err
			}
			if pass {
				e.matched = true
				j.ctx.VM.AccountCPU(OpsPerTuple)
				return j.combined, true, nil
			}
		}
		// Advance the probe (right/inner) side.
		row, ok, err := j.right.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.rightDone = true
			break
		}
		j.ctx.VM.AccountCPU(float64(len(j.rightKeys)) * OpsPerHash)
		for i, ev := range j.rightKeys {
			v, err := ev(row)
			if err != nil {
				return nil, false, err
			}
			j.keyBuf[i] = v
		}
		key, hasNull := joinKey(j.keyBuf)
		if hasNull {
			j.bucket = nil
		} else {
			j.bucket = j.table[key]
		}
		j.bucketIdx = 0
		j.probeRow = cloneRow(row)
	}
	// Emit the unmatched outer tail for LEFT joins.
	if j.node.Type == sql.LeftJoin {
		for j.tailIdx < len(j.allRows) {
			e := j.allRows[j.tailIdx]
			j.tailIdx++
			if e.matched {
				continue
			}
			copy(j.combined, e.row)
			for i := leftW; i < len(j.combined); i++ {
				j.combined[i] = types.Null
			}
			j.ctx.VM.AccountCPU(OpsPerTuple)
			return j.combined, true, nil
		}
	}
	j.done = true
	return nil, false, nil
}

func (j *buildOuterHashJoinIter) Close() { j.right.Close() }
