// Package executor runs physical plans produced by the optimizer using
// Volcano-style iterators. Every unit of work — tuples decoded, predicate
// operators evaluated, hash probes, sort comparisons, pages read through
// the buffer pool, and sort/hash spill I/O — is charged to the session's
// virtual machine, so the simulated execution time of a query responds to
// the VM's CPU, memory, and I/O shares exactly the way the paper's
// measured PostgreSQL-on-Xen times do.
package executor

import (
	"fmt"

	"dbvirt/internal/buffer"
	"dbvirt/internal/optimizer"
	"dbvirt/internal/plan"
	"dbvirt/internal/storage"
	"dbvirt/internal/types"
	"dbvirt/internal/vm"
)

// Simulated CPU costs in abstract machine operations. With the default
// machine (1e9 ops/s CPU, 2560 pages/s disk) a tuple costs ~0.0008
// sequential page fetches and an index entry ~0.0004 — the regime of the
// paper's 2006 testbed, where plain relation scans are disk-bound and CPU
// sensitivity comes from expression-heavy work (Q13's LIKE predicates).
// Expression operators charge plan.OpsPerOperator per evaluation.
const (
	// OpsPerTuple is charged for each tuple an operator processes.
	OpsPerTuple = 300
	// OpsPerIndexTuple is charged for each index entry visited.
	OpsPerIndexTuple = 150
	// OpsPerHash is charged per key per row for hashing (build, probe,
	// group, distinct).
	OpsPerHash = plan.OpsPerOperator
	// OpsPerCompare is charged per comparison during sorting.
	OpsPerCompare = plan.OpsPerOperator
)

// HashTableOverhead is the in-memory expansion factor of hashed rows
// (buckets, pointers, padding); the planner uses the same factor when
// predicting whether a hash join fits work_mem, keeping estimated and
// actual spill decisions aligned.
const HashTableOverhead = 1.5

// Visibility decides whether one heap tuple is visible to the executing
// snapshot. Scans consult it before processing (or charging for) a tuple.
// A nil Visibility means every live tuple is visible — the zero-overhead
// path taken whenever no multiversion state exists.
type Visibility func(fid storage.FileID, tid storage.TID) bool

// Context carries the runtime environment of one query execution.
type Context struct {
	// Pool is the session's buffer pool; all page access flows through it.
	Pool *buffer.Pool
	// VM is charged for all CPU work and (via the pool) all I/O.
	VM *vm.VM
	// WorkMemBytes bounds sort and hash memory before spill I/O is
	// charged, mirroring the planner's work_mem.
	WorkMemBytes int64
	// Stats, when non-nil, collects per-node execution statistics for
	// EXPLAIN ANALYZE.
	Stats *StatsCollector
	// Mode selects the vectorized (default) or tuple-at-a-time executor.
	// Both charge bit-identical costs to the VM.
	Mode Mode
	// Vis, when non-nil, restricts scans to tuples visible under the
	// session's snapshot. Both executor modes apply it identically, before
	// any per-tuple CPU charge.
	Vis Visibility
}

// iterator is the Volcano operator interface.
type iterator interface {
	// Next returns the next row, or ok=false at end of stream.
	Next() (plan.Row, bool, error)
	// Close releases resources; must be idempotent.
	Close()
}

// Result streams the visible output rows of a query.
type Result struct {
	Columns []string
	it      iterator
	strip   func(plan.Row) plan.Row
}

// Next returns the next output row.
func (r *Result) Next() (plan.Row, bool, error) {
	row, ok, err := r.it.Next()
	if err != nil || !ok {
		return nil, ok, err
	}
	return r.strip(row), true, nil
}

// Close releases the result's resources.
func (r *Result) Close() { r.it.Close() }

// Collect drains the result into a slice and closes it.
func (r *Result) Collect() ([]plan.Row, error) {
	defer r.Close()
	var out []plan.Row
	for {
		row, ok, err := r.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, cloneRow(row))
	}
}

// cloneRow copies a row so callers may retain it across Next calls.
func cloneRow(r plan.Row) plan.Row { return append(plan.Row(nil), r...) }

// Run executes a physical plan and returns a streaming result.
func Run(p *optimizer.Plan, ctx *Context) (*Result, error) {
	var it iterator
	var err error
	if ctx.Mode == ModeBatch {
		var bit batchIterator
		bit, err = vbuild(p.Root, ctx)
		if err != nil {
			return nil, err
		}
		it = &batchRowIter{in: bit}
	} else {
		it, err = build(p.Root, ctx)
	}
	if err != nil {
		return nil, err
	}
	// Identify visible columns (hidden ORDER BY keys are stripped).
	var visible []int
	var names []string
	for i, c := range p.Query.Select {
		if !c.Hidden {
			visible = append(visible, i)
			names = append(names, c.Name)
		}
	}
	allVisible := len(visible) == len(p.Query.Select)
	strip := func(row plan.Row) plan.Row {
		if allVisible {
			return row
		}
		out := make(plan.Row, len(visible))
		for i, idx := range visible {
			out[i] = row[idx]
		}
		return out
	}
	return &Result{Columns: names, it: it, strip: strip}, nil
}

// build constructs the iterator tree for a plan node, wrapping it with a
// row counter when the context collects statistics.
func build(n optimizer.Node, ctx *Context) (iterator, error) {
	it, err := buildRaw(n, ctx)
	if err != nil || ctx.Stats == nil {
		return it, err
	}
	return &statIter{inner: it, stats: ctx.Stats.register(n), vm: ctx.VM}, nil
}

func buildRaw(n optimizer.Node, ctx *Context) (iterator, error) {
	switch x := n.(type) {
	case *optimizer.SeqScan:
		return newSeqScanIter(x, ctx)
	case *optimizer.IndexScan:
		return newIndexScanIter(x, ctx)
	case *optimizer.SubqueryScan:
		return newSubqueryScanIter(x, ctx)
	case *optimizer.FilterNode:
		return newFilterIter(x, ctx)
	case *optimizer.NLJoin:
		return newNLJoinIter(x, ctx)
	case *optimizer.HashJoin:
		return newHashJoinIter(x, ctx)
	case *optimizer.IndexNLJoin:
		return newIndexNLJoinIter(x, ctx)
	case *optimizer.MergeJoin:
		return newMergeJoinIter(x, ctx)
	case *optimizer.Sort:
		return newSortIter(x, ctx)
	case *optimizer.HashAgg:
		return newHashAggIter(x, ctx)
	case *optimizer.Project:
		return newProjectIter(x, ctx)
	case *optimizer.Distinct:
		return newDistinctIter(x, ctx)
	case *optimizer.Limit:
		return newLimitIter(x, ctx)
	default:
		return nil, fmt.Errorf("executor: unknown plan node %T", n)
	}
}

// compileConjuncts compiles a conjunct list into one pass/fail predicate.
func compileConjuncts(conjs []plan.Conjunct, lay plan.Layout, sink plan.CPUSink) (func(plan.Row) (bool, error), error) {
	evs := make([]plan.Evaluator, len(conjs))
	for i, c := range conjs {
		ev, err := plan.Compile(c.E, lay, sink)
		if err != nil {
			return nil, err
		}
		evs[i] = ev
	}
	return func(row plan.Row) (bool, error) {
		for _, ev := range evs {
			v, err := ev(row)
			if err != nil {
				return false, err
			}
			if !plan.Truthy(v) {
				return false, nil
			}
		}
		return true, nil
	}, nil
}

// rowBytes approximates the in-memory size of a row for spill accounting.
func rowBytes(r plan.Row) int64 {
	var n int64
	for _, v := range r {
		if v.Kind == types.KindString {
			n += int64(len(v.S)) + 4
		} else {
			n += 10
		}
	}
	return n
}

// encodeKey builds a hashable string key from values. NULLs are encoded
// distinctly so group-by treats them as one group; join code must check
// for NULL keys separately (NULL never matches in joins).
func encodeKey(vals []types.Value) string {
	return string(encodeKeyAppend(make([]byte, 0, 16*len(vals)), vals))
}

// encodeKeyAppend is the allocation-free form of encodeKey: it appends the
// byte encoding to buf, letting callers look up map entries via
// m[string(buf)] without materializing a string per row.
func encodeKeyAppend(buf []byte, vals []types.Value) []byte {
	for _, v := range vals {
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case types.KindString:
			buf = appendUint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		case types.KindFloat:
			// Normalize float bits so that 2.0 == int 2 does NOT collide
			// incorrectly: keys are compared post-normalization below.
			buf = appendUint(buf, uint64(int64(v.F)))
			buf = appendUint(buf, uint64(frac(v.F)))
		default:
			buf = appendUint(buf, uint64(v.I))
		}
	}
	return buf
}

func appendUint(b []byte, u uint64) []byte {
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func frac(f float64) int64 { return int64((f - float64(int64(f))) * 1e9) }

// normalizeKeyVal maps numerically equal values of different kinds to the
// same key representation so joins on int = float match correctly.
func normalizeKeyVal(v types.Value) types.Value {
	switch v.Kind {
	case types.KindDate, types.KindBool:
		return types.Value{Kind: types.KindInt, I: v.I}
	case types.KindFloat:
		if v.F == float64(int64(v.F)) {
			return types.NewInt(int64(v.F))
		}
		return v
	default:
		return v
	}
}

// joinKey encodes join key values, reporting hasNull when any key is NULL
// (in which case the row cannot match).
func joinKey(vals []types.Value) (string, bool) {
	for i, v := range vals {
		if v.IsNull() {
			return "", true
		}
		vals[i] = normalizeKeyVal(v)
	}
	return encodeKey(vals), false
}
