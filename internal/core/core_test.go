package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"dbvirt/internal/engine"
	"dbvirt/internal/vm"
)

// funcModel wraps a cost function for fast solver tests.
type funcModel struct {
	name string
	f    func(w *WorkloadSpec, s vm.Shares) float64
}

func (m *funcModel) Name() string { return m.name }
func (m *funcModel) Cost(_ context.Context, w *WorkloadSpec, s vm.Shares) (float64, error) {
	return m.f(w, s), nil
}

// fakeSpecs builds n workload specs with dummy databases (solver tests
// never touch them, but Validate requires non-nil).
func fakeSpecs(names ...string) []*WorkloadSpec {
	var out []*WorkloadSpec
	for _, n := range names {
		out = append(out, &WorkloadSpec{
			Name:       n,
			Statements: []string{"SELECT 1 FROM t"},
			DB:         engine.NewDatabase(),
		})
	}
	return out
}

// cpuHungryModel: workload "hungry" scales 1/cpu; "flat" is insensitive.
func cpuHungryModel() CostModel {
	return &funcModel{name: "fake", f: func(w *WorkloadSpec, s vm.Shares) float64 {
		if w.Name == "hungry" {
			return 1 / s.CPU
		}
		return 1.0
	}}
}

func cpuProblem(specs []*WorkloadSpec, step float64) *Problem {
	return &Problem{
		Workloads: specs,
		Resources: []vm.Resource{vm.CPU},
		Step:      step,
	}
}

func TestValidate(t *testing.T) {
	good := cpuProblem(fakeSpecs("a", "b"), 0.25)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Problem{
		cpuProblem(fakeSpecs("a"), 0.25),             // one workload
		{Workloads: fakeSpecs("a", "b"), Step: 0.25}, // no resources
		{Workloads: fakeSpecs("a", "b"), Resources: []vm.Resource{vm.CPU}, Step: 0},
		{Workloads: fakeSpecs("a", "b"), Resources: []vm.Resource{vm.CPU}, Step: 0.3},                 // doesn't divide 1
		{Workloads: fakeSpecs("a", "b"), Resources: []vm.Resource{vm.CPU, vm.CPU}, Step: 0.25},        // dup
		{Workloads: fakeSpecs("a", "b", "c", "d", "e"), Resources: []vm.Resource{vm.CPU}, Step: 0.25}, // min infeasible
	}
	noStmt := cpuProblem(fakeSpecs("a", "b"), 0.25)
	noStmt.Workloads[0].Statements = nil
	bad = append(bad, noStmt)
	noDB := cpuProblem(fakeSpecs("a", "b"), 0.25)
	noDB.Workloads[0].DB = nil
	bad = append(bad, noDB)
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestEqualAllocation(t *testing.T) {
	a := EqualAllocation(4)
	if len(a) != 4 || a[0].CPU != 0.25 {
		t.Errorf("equal allocation = %v", a)
	}
}

func TestCompositions(t *testing.T) {
	c := compositions(2, 4, 1)
	if len(c) != 3 { // (1,3) (2,2) (3,1)
		t.Errorf("compositions(2,4,1) = %v", c)
	}
	for _, v := range c {
		if v[0]+v[1] != 4 {
			t.Errorf("composition does not sum: %v", v)
		}
	}
	if got := compositions(3, 2, 1); len(got) != 0 {
		t.Errorf("infeasible compositions should be empty, got %v", got)
	}
	if got := compositions(3, 9, 2); len(got) != 10 {
		t.Errorf("compositions(3,9,2) = %d, want 10", len(got))
	}
}

func TestAllSolversFindCPUShift(t *testing.T) {
	specs := fakeSpecs("hungry", "flat")
	p := cpuProblem(specs, 0.25)
	model := cpuHungryModel()

	for name, solve := range map[string]func(context.Context, *Problem, CostModel) (*Result, error){
		"exhaustive": SolveExhaustive,
		"dp":         SolveDP,
		"greedy":     SolveGreedy,
	} {
		res, err := solve(context.Background(), p, model)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Optimal gives hungry the max 75% CPU (flat keeps the 25% floor).
		if math.Abs(res.Allocation[0].CPU-0.75) > 1e-9 {
			t.Errorf("%s: hungry CPU = %g, want 0.75 (%v)", name, res.Allocation[0].CPU, res.Allocation)
		}
		if math.Abs(res.Allocation[1].CPU-0.25) > 1e-9 {
			t.Errorf("%s: flat CPU = %g, want 0.25", name, res.Allocation[1].CPU)
		}
		// Non-searched resources stay equal.
		if res.Allocation[0].Memory != 0.5 || res.Allocation[0].IO != 0.5 {
			t.Errorf("%s: non-searched resources moved: %v", name, res.Allocation[0])
		}
		wantTotal := 1/0.75 + 1
		if math.Abs(res.PredictedTotal-wantTotal) > 1e-9 {
			t.Errorf("%s: total = %g, want %g", name, res.PredictedTotal, wantTotal)
		}
	}
}

func TestSolversBeatEqualShares(t *testing.T) {
	specs := fakeSpecs("hungry", "flat")
	p := cpuProblem(specs, 0.25)
	model := cpuHungryModel()
	opt, err := SolveDP(context.Background(), p, model)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := EvaluateAllocation(context.Background(), p, model, EqualAllocation(2), "equal")
	if err != nil {
		t.Fatal(err)
	}
	if opt.PredictedTotal >= eq.PredictedTotal {
		t.Errorf("optimal %g should beat equal %g", opt.PredictedTotal, eq.PredictedTotal)
	}
}

func TestDPMatchesExhaustiveOnRandomCosts(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		// Random per-workload cost tables keyed by quantized cpu share.
		costs := make([]map[int]float64, 3)
		for i := range costs {
			costs[i] = map[int]float64{}
			for u := 1; u <= 10; u++ {
				costs[i][u] = rng.Float64() * 10
			}
		}
		model := &funcModel{name: "rand", f: func(w *WorkloadSpec, s vm.Shares) float64 {
			idx := int(w.Weight) // stash index in weight... no: weight affects objective.
			_ = idx
			return 0
		}}
		specs := fakeSpecs("w0", "w1", "w2")
		model.f = func(w *WorkloadSpec, s vm.Shares) float64 {
			var idx int
			for i, sp := range specs {
				if sp == w {
					idx = i
				}
			}
			return costs[idx][int(math.Round(s.CPU*10))]
		}
		p := &Problem{Workloads: specs, Resources: []vm.Resource{vm.CPU}, Step: 0.1}
		ex, err := SolveExhaustive(context.Background(), p, model)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := SolveDP(context.Background(), p, model)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ex.PredictedTotal-dp.PredictedTotal) > 1e-9 {
			t.Errorf("trial %d: dp %g != exhaustive %g", trial, dp.PredictedTotal, ex.PredictedTotal)
		}
	}
}

func TestGreedyOptimalOnConvexCosts(t *testing.T) {
	// Convex decreasing costs: greedy quantum-shifting reaches the global
	// optimum.
	specs := fakeSpecs("a", "b", "c")
	model := &funcModel{name: "convex", f: func(w *WorkloadSpec, s vm.Shares) float64 {
		k := map[string]float64{"a": 4, "b": 1, "c": 0.25}[w.Name]
		return k / s.CPU
	}}
	p := &Problem{Workloads: specs, Resources: []vm.Resource{vm.CPU}, Step: 0.05}
	g, err := SolveGreedy(context.Background(), p, model)
	if err != nil {
		t.Fatal(err)
	}
	d, err := SolveDP(context.Background(), p, model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.PredictedTotal-d.PredictedTotal) > 1e-9 {
		t.Errorf("greedy %g != dp %g on convex costs", g.PredictedTotal, d.PredictedTotal)
	}
	if g.Evaluations >= d.Evaluations {
		t.Logf("note: greedy evals %d vs dp %d", g.Evaluations, d.Evaluations)
	}
}

func TestTwoResourceSearch(t *testing.T) {
	specs := fakeSpecs("cpuHog", "ioHog")
	model := &funcModel{name: "2d", f: func(w *WorkloadSpec, s vm.Shares) float64 {
		if w.Name == "cpuHog" {
			return 1/s.CPU + 0.1/s.IO
		}
		return 0.1/s.CPU + 1/s.IO
	}}
	p := &Problem{Workloads: specs, Resources: []vm.Resource{vm.CPU, vm.IO}, Step: 0.25}
	res, err := SolveDP(context.Background(), p, model)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocation[0].CPU <= res.Allocation[1].CPU {
		t.Errorf("cpuHog should get more CPU: %v", res.Allocation)
	}
	if res.Allocation[1].IO <= res.Allocation[0].IO {
		t.Errorf("ioHog should get more IO: %v", res.Allocation)
	}
	// Shares per resource sum to 1.
	for _, r := range []vm.Resource{vm.CPU, vm.IO} {
		sum := res.Allocation[0].Get(r) + res.Allocation[1].Get(r)
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("resource %v sums to %g", r, sum)
		}
	}
}

func TestSLOPenaltyShiftsOptimum(t *testing.T) {
	// Without SLO, workload b is insensitive and gets the floor. With a
	// tight SLO on b requiring more CPU, the optimum moves.
	specs := fakeSpecs("a", "b")
	model := &funcModel{name: "slo", f: func(w *WorkloadSpec, s vm.Shares) float64 {
		if w.Name == "a" {
			return 2 / s.CPU
		}
		return 0.5 / s.CPU
	}}
	base := &Problem{Workloads: specs, Resources: []vm.Resource{vm.CPU}, Step: 0.25}
	res, err := SolveDP(context.Background(), base, model)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocation[1].CPU != 0.25 {
		t.Fatalf("baseline should starve b: %v", res.Allocation)
	}
	// SLO: b must finish within 1s => needs cpu >= 0.5.
	specs[1].SLOSeconds = 1.0
	withSLO := &Problem{
		Workloads: specs, Resources: []vm.Resource{vm.CPU}, Step: 0.25,
		Objective: Objective{SLOPenalty: 100},
	}
	res2, err := SolveDP(context.Background(), withSLO, model)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Allocation[1].CPU < 0.5 {
		t.Errorf("SLO should push b's CPU to >= 0.5: %v", res2.Allocation)
	}
}

func TestWeightsShiftOptimum(t *testing.T) {
	specs := fakeSpecs("a", "b")
	// Symmetric costs; weight breaks the tie decisively.
	model := &funcModel{name: "w", f: func(w *WorkloadSpec, s vm.Shares) float64 {
		return 1 / s.CPU
	}}
	specs[1].Weight = 10
	p := cpuProblem(specs, 0.25)
	res, err := SolveDP(context.Background(), p, model)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocation[1].CPU <= res.Allocation[0].CPU {
		t.Errorf("weighted workload should win CPU: %v", res.Allocation)
	}
}

func TestMemoizationReducesEvaluations(t *testing.T) {
	specs := fakeSpecs("a", "b", "c")
	var calls atomic.Int64 // the solver may invoke the model from several workers
	model := &funcModel{name: "count", f: func(w *WorkloadSpec, s vm.Shares) float64 {
		calls.Add(1)
		return 1 / s.CPU
	}}
	p := &Problem{Workloads: specs, Resources: []vm.Resource{vm.CPU}, Step: 0.1}
	res, err := SolveExhaustive(context.Background(), p, model)
	if err != nil {
		t.Fatal(err)
	}
	// 8 distinct unit values per workload => at most 3*8 = 24 evals even
	// though the exhaustive search visits C(9,2)=36 allocations.
	if calls.Load() > 24 {
		t.Errorf("cost model called %d times, memoization broken", calls.Load())
	}
	if int64(res.Evaluations) != calls.Load() {
		t.Errorf("Evaluations = %d, calls = %d", res.Evaluations, calls.Load())
	}
}

func TestEvaluateAllocationValidates(t *testing.T) {
	specs := fakeSpecs("a", "b")
	p := cpuProblem(specs, 0.25)
	if _, err := EvaluateAllocation(context.Background(), p, cpuHungryModel(), EqualAllocation(3), "x"); err == nil {
		t.Error("wrong-length allocation should fail")
	}
}

func TestControllerReconfigures(t *testing.T) {
	cfg := vm.DefaultMachineConfig()
	cfg.SchedOverhead = 0
	m := vm.MustMachine(cfg)
	v1, err := m.NewVM("w1", vm.Equal(2))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := m.NewVM("w2", vm.Equal(2))
	if err != nil {
		t.Fatal(err)
	}

	specs := fakeSpecs("hungry", "flat")
	p := cpuProblem(specs, 0.25)
	ctrl := &Controller{Machine: m, Model: cpuHungryModel()}
	res, err := ctrl.Reconfigure(context.Background(), p, []*vm.VM{v1, v2})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Shares().CPU != 0.75 || v2.Shares().CPU != 0.25 {
		t.Errorf("shares after reconfigure: %v %v", v1.Shares(), v2.Shares())
	}
	if len(ctrl.History) != 1 || !ctrl.History[0].Applied {
		t.Errorf("history = %+v", ctrl.History)
	}
	if res.Algorithm != "dp" {
		t.Errorf("default solver should be dp, got %s", res.Algorithm)
	}

	// Flip the demand: flat becomes hungry. Reconfiguration must swap
	// shares without transiently over-committing (validated inside vm).
	flip := &funcModel{name: "flip", f: func(w *WorkloadSpec, s vm.Shares) float64 {
		if w.Name == "flat" {
			return 1 / s.CPU
		}
		return 1.0
	}}
	ctrl.Model = flip
	if _, err := ctrl.Reconfigure(context.Background(), p, []*vm.VM{v1, v2}); err != nil {
		t.Fatal(err)
	}
	if v1.Shares().CPU != 0.25 || v2.Shares().CPU != 0.75 {
		t.Errorf("shares after flip: %v %v", v1.Shares(), v2.Shares())
	}
}

func TestControllerMismatchedVMs(t *testing.T) {
	ctrl := &Controller{Model: cpuHungryModel()}
	p := cpuProblem(fakeSpecs("a", "b"), 0.25)
	if _, err := ctrl.Reconfigure(context.Background(), p, nil); err == nil {
		t.Error("expected VM count mismatch error")
	}
}

func TestAllocationString(t *testing.T) {
	a := EqualAllocation(2)
	s := a.String()
	if s == "" {
		t.Error("empty string")
	}
	r := &Result{Algorithm: "dp", Allocation: a, PredictedTotal: 1.5}
	if r.String() == "" {
		t.Error("empty result string")
	}
}

func TestMinShareOverride(t *testing.T) {
	specs := fakeSpecs("hungry", "flat")
	p := &Problem{
		Workloads: specs,
		Resources: []vm.Resource{vm.CPU},
		Step:      0.05,
		MinShare:  0.2,
	}
	res, err := SolveDP(context.Background(), p, cpuHungryModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocation[1].CPU < 0.2-1e-9 {
		t.Errorf("min share violated: %v", res.Allocation)
	}
	if math.Abs(res.Allocation[0].CPU-0.8) > 1e-9 {
		t.Errorf("hungry should get 0.8: %v", res.Allocation)
	}
}

func TestResultStringFormat(t *testing.T) {
	specs := fakeSpecs("a", "b")
	p := cpuProblem(specs, 0.25)
	res, err := SolveGreedy(context.Background(), p, cpuHungryModel())
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprint(res)
	if got == "" {
		t.Error("result should format")
	}
}
