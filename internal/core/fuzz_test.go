package core

import (
	"testing"

	"dbvirt/internal/sql"
)

// FuzzNormalizeSQL checks the cache-key invariants of NormalizeSQL
// against arbitrary input. The prepared-statement cache keys on the
// normalized text, so these properties are correctness, not hygiene: a
// violation means two differently-behaving statements could share a
// cache entry, or one statement could occupy several.
func FuzzNormalizeSQL(f *testing.F) {
	for _, seed := range []string{
		"SELECT 1",
		"  SELECT\t*\nFROM t  ;  ",
		"SELECT a -- comment\nFROM t",
		"SELECT 'a  --  b' FROM t",
		"SELECT 'it''s  fine' FROM t",
		"SELECT 1;;",
		"select a from t where b = 'x'",
		"-- only a comment",
		"",
		";",
		"'",
		"SELECT a--b\nFROM t",
		"\x00 \xff'",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		norm := NormalizeSQL(src)

		// Idempotent: normalizing a normalized statement is the identity.
		// Without this, raw and re-normalized lookups of the same statement
		// would miss each other in the cache.
		if again := NormalizeSQL(norm); again != norm {
			t.Fatalf("not idempotent:\n src %q\n 1st %q\n 2nd %q", src, norm, again)
		}
		// Normalization only removes or collapses; it never invents bytes.
		if len(norm) > len(src) {
			t.Fatalf("grew input: len %d -> %d\n src %q\n out %q", len(src), len(norm), src, norm)
		}
		// Parse equivalence: the lexer skips comments and whitespace, so a
		// statement the parser accepts must still be accepted after
		// normalization — otherwise the cache would prepare a different
		// statement than the raw path executes.
		if _, err := sql.Parse(src); err == nil {
			if _, err := sql.Parse(norm); err != nil && norm != "" {
				t.Fatalf("parseable input normalized to unparseable text:\n src %q\n out %q\n err %v", src, norm, err)
			}
		}
		// Outside string literals nothing but printable single spaces
		// separate tokens: no tabs, newlines, or double spaces survive.
		inStr := false
		for i := 0; i < len(norm); i++ {
			c := norm[i]
			if inStr {
				if c == '\'' {
					inStr = false
				}
				continue
			}
			switch c {
			case '\'':
				inStr = true
			case '\t', '\n', '\r':
				t.Fatalf("control whitespace outside literal at %d:\n src %q\n out %q", i, src, norm)
			case ' ':
				if i+1 < len(norm) && norm[i+1] == ' ' {
					t.Fatalf("double space outside literal at %d:\n src %q\n out %q", i, src, norm)
				}
			}
		}
	})
}
