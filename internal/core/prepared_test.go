package core

import (
	"context"
	"testing"

	"dbvirt/internal/calibration"
	"dbvirt/internal/engine"
	"dbvirt/internal/optimizer"
	"dbvirt/internal/vm"
	"dbvirt/internal/workload"
)

func TestNormalizeSQL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT 1", "SELECT 1"},
		{"  SELECT\t*\nFROM   t ;  ", "SELECT * FROM t"},
		{"SELECT c FROM t;", "SELECT c FROM t"},
		{"SELECT 'a  b' FROM t", "SELECT 'a  b' FROM t"},
		{"SELECT  'it''s   fine'  FROM\nt", "SELECT 'it''s   fine' FROM t"},
		{"SELECT c\r\nFROM t\r\nWHERE c LIKE '%  x%'", "SELECT c FROM t WHERE c LIKE '%  x%'"},
	}
	for _, c := range cases {
		if got := NormalizeSQL(c.in); got != c.want {
			t.Errorf("NormalizeSQL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// cacheDB builds one small workload database and keeps a session open on
// it so tests can run ANALYZE and DML against it.
func cacheDB(t *testing.T) (*engine.Database, *engine.Session) {
	t.Helper()
	cfg := vm.DefaultMachineConfig()
	cfg.MemBytes = 16 << 20
	m := vm.MustMachine(cfg)
	loader, err := m.NewVM("cache-loader", vm.Shares{CPU: 1, Memory: 1, IO: 1})
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase()
	s, err := engine.NewSession(db, loader, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.Build(s, workload.SmallScale(), 7); err != nil {
		t.Fatal(err)
	}
	return db, s
}

// TestPreparedCacheIdentity pins the cache-key fix: statements sharing a
// long prefix (which the old first-words key conflated) get distinct
// entries, while whitespace variants of one statement share an entry.
func TestPreparedCacheIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a workload database")
	}
	db, _ := cacheDB(t)
	c := newStmtCache()
	const eq = "SELECT o_totalprice FROM orders WHERE o_orderkey = 4242"
	const lt = "SELECT o_totalprice FROM orders WHERE o_orderkey < 4242"

	missBefore := mPreparedMiss.Value()
	pqEq, err := c.prepared(db, eq)
	if err != nil {
		t.Fatal(err)
	}
	pqLt, err := c.prepared(db, lt)
	if err != nil {
		t.Fatal(err)
	}
	if pqEq == pqLt {
		t.Fatal("prefix-sharing statements share one cache entry")
	}
	if got := mPreparedMiss.Value() - missBefore; got != 2 {
		t.Errorf("want 2 cache misses, got %d", got)
	}

	p := optimizer.DefaultParams()
	plEq, err := pqEq.Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	plLt, err := pqLt.Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if plEq.TotalCost() == plLt.TotalCost() {
		t.Errorf("point and range lookup cost identically (%v); cache entries conflated?", plEq.TotalCost())
	}

	hitBefore := mPreparedHit.Value()
	pqWS, err := c.prepared(db, "SELECT  o_totalprice\n\tFROM orders  WHERE o_orderkey = 4242 ;")
	if err != nil {
		t.Fatal(err)
	}
	if pqWS != pqEq {
		t.Error("whitespace variant missed the cache")
	}
	if got := mPreparedHit.Value() - hitBefore; got != 1 {
		t.Errorf("want 1 cache hit, got %d", got)
	}
}

// TestPreparedCacheInvalidation: refreshed statistics (ANALYZE) and DML
// bump the catalog version, so the cache re-prepares instead of serving
// plans built from stale statistics.
func TestPreparedCacheInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a workload database")
	}
	db, s := cacheDB(t)
	c := newStmtCache()
	const q = "SELECT count(*) FROM orders"

	pq1, err := c.prepared(db, q)
	if err != nil {
		t.Fatal(err)
	}
	v1 := db.Catalog.Version()
	if _, err := s.Exec("ANALYZE"); err != nil {
		t.Fatal(err)
	}
	if db.Catalog.Version() == v1 {
		t.Fatal("ANALYZE did not bump the catalog version")
	}
	pq2, err := c.prepared(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if pq2 == pq1 {
		t.Error("cache served a pre-ANALYZE prepared query")
	}
	pq3, err := c.prepared(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if pq3 != pq2 {
		t.Error("repeat lookup at an unchanged version missed the cache")
	}

	v2 := db.Catalog.Version()
	if _, err := s.Exec("INSERT INTO orders VALUES (999999, 1, 'O', 1.0, DATE '1998-01-01', 'LOW', 'late insert')"); err != nil {
		t.Fatal(err)
	}
	if db.Catalog.Version() == v2 {
		t.Error("DML did not bump the catalog version")
	}
}

// TestWhatIfModelPreparedEquivalence: the memoized model and the cold
// (NoPrepare) model must return bit-identical costs for every workload
// at every allocation of a plan-flipping parameter grid.
func TestWhatIfModelPreparedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a workload database")
	}
	db, _ := cacheDB(t)
	axes := []float64{0.25, 1.0}
	points := make([]optimizer.Params, 0, 8)
	for _, cpu := range axes {
		for _, mem := range axes {
			for _, io := range axes {
				p := optimizer.DefaultParams()
				p.RandomPageCost = 1 + 3/io
				p.CPUTupleCost = 0.01 * io / cpu
				p.CPUOperatorCost = 0.0025 * io / cpu
				p.EffectiveCacheSizePages = int64(8192 * mem)
				p.WorkMemBytes = int64(float64(8<<20) * mem)
				p.TimePerSeqPage = 1e-4 / io
				p.Overlap = 0.3
				points = append(points, p)
			}
		}
	}
	g, err := calibration.NewGrid(axes, axes, axes, points)
	if err != nil {
		t.Fatal(err)
	}
	w := &WorkloadSpec{
		Name:       "w",
		Statements: append(workload.Repeat("a", workload.Query("Q4"), 2).Statements, workload.Query("QPOINT")),
		DB:         db,
	}
	memo := &WhatIfModel{Grid: g}
	cold := &WhatIfModel{Grid: g, NoPrepare: true}
	ctx := context.Background()
	// Off-lattice allocations exercise interpolation too.
	allocs := append(g.Allocations(), vm.Shares{CPU: 0.6, Memory: 0.4, IO: 0.8})
	for _, sh := range allocs {
		want, err := cold.Cost(ctx, w, sh)
		if err != nil {
			t.Fatal(err)
		}
		got, err := memo.Cost(ctx, w, sh)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("alloc %v: memoized cost %v, cold cost %v", sh, got, want)
		}
	}
	// Second sweep: everything is now served from the caches; results
	// must not drift.
	for _, sh := range allocs {
		want, err := cold.Cost(ctx, w, sh)
		if err != nil {
			t.Fatal(err)
		}
		got, err := memo.Cost(ctx, w, sh)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("alloc %v (warm): memoized cost %v, cold cost %v", sh, got, want)
		}
	}
}
