package core

import (
	"context"
	"math"
	"testing"

	"dbvirt/internal/vm"
)

// TestGreedyAllocsPerRound pins the hoisted move-scan scaffolding: the
// greedy round loop reuses its move list, result slots, and per-worker
// scratch, so steady-state allocations amortize to the per-solve setup
// plus the cost cache's new entries — far below the ~2 allocations per
// candidate move the pre-hoist implementation paid (a fresh Allocation
// and costs slice per evaluation). The bound is deliberately loose
// against map-growth noise but tight enough that reintroducing per-move
// allocation trips it.
func TestGreedyAllocsPerRound(t *testing.T) {
	specs := fakeSpecs("w0", "w1", "w2", "w3")
	model := &funcModel{name: "convex", f: func(w *WorkloadSpec, s vm.Shares) float64 {
		appetite := math.Pow(4, float64(w.Name[1]-'0'))
		return appetite / s.CPU
	}}
	p := &Problem{
		Workloads:   specs,
		Resources:   []vm.Resource{vm.CPU},
		Step:        1.0 / 16,
		Parallelism: 1, // serial: measured allocations exclude goroutine machinery
	}
	res, err := SolveGreedy(context.Background(), p, model)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 3 {
		t.Fatalf("want a multi-round search for a meaningful bound, got %d rounds", res.Rounds)
	}
	movesPerRound := len(p.Resources) * len(specs) * (len(specs) - 1)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := SolveGreedy(context.Background(), p, model); err != nil {
			t.Fatal(err)
		}
	})
	perRound := allocs / float64(res.Rounds)
	t.Logf("rounds=%d moves/round<=%d allocs/solve=%.1f allocs/round=%.2f",
		res.Rounds, movesPerRound, allocs, perRound)
	// Pre-hoist, every move evaluation allocated an Allocation plus a costs
	// slice (2*moves = 24 allocations per round before counting per-round
	// totals/costs/scratch: ~46/round on this problem). Post-hoist the
	// per-round cost is the cache's new entries plus amortized setup
	// (~17/round here); 28 sits between with margin on both sides.
	const maxAllocsPerRound = 28
	if perRound > maxAllocsPerRound {
		t.Errorf("greedy allocates %.2f/round (> %d); per-move scaffolding has regressed",
			perRound, maxAllocsPerRound)
	}
}
