// Package core implements the paper's primary contribution: the
// virtualization design problem. Given N database workloads that will run
// in N virtual machines on one physical machine, choose the resource-share
// matrix R (a column of CPU/memory/I-O shares per workload, each resource
// summing to 1) that minimizes the total predicted cost
//
//	Σ_i Cost(W_i, R_i)
//
// subject to r_ij ≥ 0 and Σ_i r_ij = 1 for every resource j.
//
// The package provides the problem formulation, three cost models (the
// paper's calibrated what-if optimizer model, a measured oracle, and a
// profile-scaling baseline), and three search algorithms over the
// discretized share simplex (exhaustive, dynamic programming, greedy),
// plus the paper's Section 7 extensions: weighted/SLO objectives and an
// online reconfiguration controller.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dbvirt/internal/engine"
	"dbvirt/internal/obs"
	"dbvirt/internal/vm"
)

// Always-on cost-cache metrics (see internal/obs): one atomic update per
// cache lookup. By construction mCacheMiss equals the sum of
// Result.Evaluations over all solves in the process.
var (
	mCacheHit     = obs.Global.Counter("core.cache.hit")
	mCacheMiss    = obs.Global.Counter("core.cache.miss")
	mCacheInWait  = obs.Global.Counter("core.cache.inflight_wait")
	mSolveCount   = obs.Global.Counter("core.solve.count")
	mWhatIfCalls  = obs.Global.Counter("core.whatif.cost_calls")
	hEvalSeconds  = obs.Global.Histogram("core.eval.seconds")
	hSolveSeconds = obs.Global.Histogram("core.solve.seconds")
)

// WorkloadSpec is one workload W_i: a sequence of SQL statements against
// its own database, plus objective parameters.
type WorkloadSpec struct {
	Name       string
	Statements []string
	// DB is the workload's database (loaded and analyzed).
	DB *engine.Database
	// Weight scales this workload's cost in the objective (default 1).
	Weight float64
	// SLOSeconds, if positive, is a latency target; cost above it incurs
	// the problem's SLO penalty (a Section 7 extension).
	SLOSeconds float64

	normOnce  sync.Once
	normStmts []string
}

// NormalizedStatements returns the spec's statements in NormalizeSQL
// canonical form, computed once per spec — the identity stream fed into
// per-tenant workload sketches. Interned specs make the cache effective:
// every request naming the same workload shares one normalization.
func (w *WorkloadSpec) NormalizedStatements() []string {
	w.normOnce.Do(func() {
		w.normStmts = make([]string, len(w.Statements))
		for i, s := range w.Statements {
			w.normStmts[i] = NormalizeSQL(s)
		}
	})
	return w.normStmts
}

func (w *WorkloadSpec) weight() float64 {
	if w.Weight <= 0 {
		return 1
	}
	return w.Weight
}

// Allocation assigns resource shares to each workload: the columns R_i of
// the paper's matrix R.
type Allocation []vm.Shares

// Clone deep-copies the allocation.
func (a Allocation) Clone() Allocation { return append(Allocation(nil), a...) }

// String formats the allocation.
func (a Allocation) String() string {
	s := ""
	for i, sh := range a {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("W%d{%v}", i+1, sh)
	}
	return s
}

// EqualAllocation splits every resource evenly — the default the paper
// argues can be far from optimal.
func EqualAllocation(n int) Allocation {
	a := make(Allocation, n)
	for i := range a {
		a[i] = vm.Equal(n)
	}
	return a
}

// Objective configures the optimization target.
type Objective struct {
	// SLOPenalty multiplies each workload's cost overshoot beyond its
	// SLOSeconds. Zero disables SLO handling.
	SLOPenalty float64
}

// Problem is one virtualization design problem instance.
type Problem struct {
	Workloads []*WorkloadSpec
	// Resources lists the dimensions being optimized; the others are
	// split equally. The paper's illustrative experiment optimizes CPU
	// with memory fixed at 50/50.
	Resources []vm.Resource
	// Step is the share quantum of the search grid (e.g. 0.25 or 0.05).
	Step float64
	// MinShare is the smallest share any workload may receive of a
	// searched resource; defaults to Step.
	MinShare  float64
	Objective Objective
	// Parallelism bounds the number of worker goroutines the solvers use
	// to evaluate candidate allocations; 0 (the default) means
	// runtime.GOMAXPROCS(0), 1 forces serial execution. Results are
	// byte-identical at every setting: workers write into pre-indexed
	// slots and ties break by allocation order, never completion order.
	Parallelism int
	// Obs receives trace spans and progress events from the solvers; nil
	// (the default) disables both at the cost of a nil check. Metrics
	// (cache hit/miss counters, evaluation latency) are always recorded
	// against the process-global obs registry and never affect results.
	Obs *obs.Telemetry
}

// workers resolves the configured parallelism to a worker count.
func (p *Problem) workers() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Validate checks the problem is well-formed.
func (p *Problem) Validate() error {
	n := len(p.Workloads)
	if n < 2 {
		return fmt.Errorf("core: need at least 2 workloads, got %d", n)
	}
	for i, w := range p.Workloads {
		if w.DB == nil {
			return fmt.Errorf("core: workload %d (%s) has no database", i, w.Name)
		}
		if len(w.Statements) == 0 {
			return fmt.Errorf("core: workload %d (%s) has no statements", i, w.Name)
		}
	}
	if len(p.Resources) == 0 {
		return fmt.Errorf("core: no resources to optimize")
	}
	seen := map[vm.Resource]bool{}
	for _, r := range p.Resources {
		if r < 0 || r >= vm.NumResources {
			return fmt.Errorf("core: unknown resource %v", r)
		}
		if seen[r] {
			return fmt.Errorf("core: duplicate resource %v", r)
		}
		seen[r] = true
	}
	if p.Step <= 0 || p.Step > 0.5 {
		return fmt.Errorf("core: step %g out of range (0, 0.5]", p.Step)
	}
	units := 1 / p.Step
	if math.Abs(units-math.Round(units)) > 1e-9 {
		return fmt.Errorf("core: step %g must divide 1 evenly", p.Step)
	}
	min := p.minShare()
	if min*float64(n) > 1+1e-9 {
		return fmt.Errorf("core: minimum share %g infeasible for %d workloads", min, n)
	}
	return nil
}

func (p *Problem) minShare() float64 {
	if p.MinShare > 0 {
		return p.MinShare
	}
	return p.Step
}

// units returns the number of grid quanta per resource.
func (p *Problem) units() int { return int(math.Round(1 / p.Step)) }

// minUnits returns the per-workload floor in quanta.
func (p *Problem) minUnits() int {
	u := int(math.Ceil(p.minShare()/p.Step - 1e-9))
	if u < 1 {
		u = 1
	}
	return u
}

// searched reports whether resource r is being optimized.
func (p *Problem) searched(r vm.Resource) bool {
	for _, pr := range p.Resources {
		if pr == r {
			return true
		}
	}
	return false
}

// fixedShare is the share of non-searched resources (equal split).
func (p *Problem) fixedShare() float64 { return 1 / float64(len(p.Workloads)) }

// objectiveTerm computes one workload's contribution to the objective.
func (p *Problem) objectiveTerm(w *WorkloadSpec, cost float64) float64 {
	obj := w.weight() * cost
	if w.SLOSeconds > 0 && p.Objective.SLOPenalty > 0 && cost > w.SLOSeconds {
		obj += p.Objective.SLOPenalty * w.weight() * (cost - w.SLOSeconds)
	}
	return obj
}

// CostModel predicts the cost (seconds) of running a workload under a
// resource allocation — the paper's Cost(W_i, R_i).
type CostModel interface {
	// Cost returns the predicted execution time in seconds. Implementations
	// that measure or calibrate should honor ctx cancellation; pure
	// estimators may ignore it.
	Cost(ctx context.Context, w *WorkloadSpec, shares vm.Shares) (float64, error)
	// Name identifies the model in reports.
	Name() string
}

// Result is a solved virtualization design.
type Result struct {
	Algorithm      string
	Allocation     Allocation
	PredictedCosts []float64 // per workload, model units (seconds)
	PredictedTotal float64   // objective value
	Evaluations    int       // cost-model invocations (cache misses)
	// CacheHits counts cost-cache lookups answered without a new model
	// invocation (map hits plus joined in-flight computations). Lookups
	// and misses are both scheduling-independent, so CacheHits is too.
	CacheHits int
	// Elapsed is the wall-clock duration of the solve. It is the one
	// non-deterministic field of a Result.
	Elapsed time.Duration
	// Rounds counts the local-search improvement rounds (greedy only;
	// zero for the other algorithms).
	Rounds int
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %s (predicted %.3fs, %d evals, %d cache hits, %s)",
		r.Algorithm, r.Allocation, r.PredictedTotal, r.Evaluations,
		r.CacheHits, r.Elapsed.Round(time.Microsecond))
}

// evaluate computes the objective of an allocation, using a memoizing
// wrapper around the cost model.
func (p *Problem) evaluate(ctx context.Context, m *costCache, alloc Allocation) (total float64, costs []float64, err error) {
	costs = make([]float64, len(p.Workloads))
	total, err = p.evaluateInto(ctx, m, alloc, costs)
	if err != nil {
		return 0, nil, err
	}
	return total, costs, nil
}

// evaluateInto is evaluate writing the per-workload costs into a
// caller-owned slice (len == len(p.Workloads)) so hot loops — greedy's
// move scan — evaluate candidates without allocating.
func (p *Problem) evaluateInto(ctx context.Context, m *costCache, alloc Allocation, costs []float64) (total float64, err error) {
	for i, w := range p.Workloads {
		c, err := m.Cost(ctx, i, w, alloc[i])
		if err != nil {
			return 0, err
		}
		costs[i] = c
		total += p.objectiveTerm(w, c)
	}
	return total, nil
}

// cacheShards spreads the cost cache's lock over independent buckets so
// concurrent solver workers rarely contend on the same mutex.
const cacheShards = 16

// costCache caches cost-model calls per (workload, quantized shares). It
// is safe for concurrent use: lookups are sharded by key, and an in-flight
// computation is joined (singleflight-style) rather than repeated, so the
// same (workload, shares) pair is evaluated exactly once even when many
// workers race on it. Errors are not cached; a failed computation may be
// retried by a later call, matching the serial memoization semantics.
type costCache struct {
	inner  CostModel
	shards [cacheShards]costShard
	evals  atomic.Int64
	hits   atomic.Int64
}

type costShard struct {
	mu      sync.Mutex
	entries map[memoKey]*costEntry
}

type memoKey struct {
	wi  int // workload index within the problem
	key [3]int64
}

// shard hashes the key onto a lock shard (FNV-style mixing).
func (k memoKey) shard() int {
	h := uint64(k.wi) + 14695981039346656037
	for _, v := range k.key {
		h = (h ^ uint64(v)) * 1099511628211
	}
	return int(h % cacheShards)
}

// costEntry is one cache slot; done is closed once val/err are final.
type costEntry struct {
	done chan struct{}
	val  float64
	err  error
}

func newCostCache(inner CostModel) *costCache {
	m := &costCache{inner: inner}
	for i := range m.shards {
		m.shards[i].entries = make(map[memoKey]*costEntry)
	}
	return m
}

func quantizeShares(s vm.Shares) [3]int64 {
	q := func(f float64) int64 { return int64(math.Round(f * 1e9)) }
	return [3]int64{q(s.CPU), q(s.Memory), q(s.IO)}
}

// Cost returns the memoized cost of workload wi (== p.Workloads[wi])
// under the given shares, computing it at most once per distinct key. A
// waiter whose ctx is cancelled stops waiting; the in-flight computation
// it joined continues for any other waiters.
func (m *costCache) Cost(ctx context.Context, wi int, w *WorkloadSpec, shares vm.Shares) (float64, error) {
	k := memoKey{wi: wi, key: quantizeShares(shares)}
	sh := &m.shards[k.shard()]
	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		sh.mu.Unlock()
		// A hit regardless of whether the computation already finished;
		// the split is only visible in the global metrics, keeping the
		// per-solve hit count scheduling-independent.
		m.hits.Add(1)
		mCacheHit.Inc()
		select {
		case <-e.done:
		default:
			mCacheInWait.Inc()
			select {
			case <-e.done:
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		return e.val, e.err
	}
	e := &costEntry{done: make(chan struct{})}
	sh.entries[k] = e
	sh.mu.Unlock()

	start := time.Now()
	func() {
		// A panicking model must not leave the entry's done channel open:
		// joined waiters would block on it forever. Convert the panic to an
		// error and finalize the entry exactly like any other failure.
		defer func() {
			if r := recover(); r != nil {
				e.val, e.err = 0, fmt.Errorf("core: cost model %s panicked: %v", m.inner.Name(), r)
			}
			if e.err == nil {
				m.evals.Add(1)
				mCacheMiss.Inc()
				hEvalSeconds.ObserveSince(start)
			}
			close(e.done)
			if e.err != nil {
				sh.mu.Lock()
				delete(sh.entries, k)
				sh.mu.Unlock()
			}
		}()
		e.val, e.err = m.inner.Cost(ctx, w, shares)
	}()
	return e.val, e.err
}

// evaluations returns the number of successful cost-model invocations
// (cache misses) so far.
func (m *costCache) evaluations() int { return int(m.evals.Load()) }

// cacheHits returns the number of lookups served from the cache
// (including joined in-flight computations).
func (m *costCache) cacheHits() int { return int(m.hits.Load()) }
