package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"dbvirt/internal/vm"
)

// TestControllerConcurrentReconfigure is the regression test for the
// unguarded-Reconfigure bug: the autotune loop's periodic actuation and
// the HTTP trigger endpoint can call Reconfigure on the same controller
// concurrently. Before the mutex, concurrent calls raced on the History
// append (a -race failure) and could interleave the lower-then-raise
// share transition. Now every call must complete, every step must be
// recorded, and the final shares must be the solver's answer.
func TestControllerConcurrentReconfigure(t *testing.T) {
	machine := vm.MustMachine(vm.DefaultMachineConfig())
	specs := fakeSpecs("hungry", "flat")
	equal := EqualAllocation(2)
	var vms []*vm.VM
	for i, s := range specs {
		v, err := machine.NewVM(s.Name, equal[i])
		if err != nil {
			t.Fatal(err)
		}
		vms = append(vms, v)
	}
	inner := cpuHungryModel()
	slow := &funcModel{name: "slow", f: func(w *WorkloadSpec, s vm.Shares) float64 {
		time.Sleep(200 * time.Microsecond) // widen the race window
		c, _ := inner.Cost(context.Background(), w, s)
		return c
	}}
	ctrl := &Controller{Machine: machine, Model: slow}
	p := cpuProblem(specs, 0.25)
	p.Parallelism = 1

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = ctrl.Reconfigure(context.Background(), p, vms)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if len(ctrl.History) != callers {
		t.Fatalf("history has %d steps, want %d (lost updates)", len(ctrl.History), callers)
	}
	for i, step := range ctrl.History {
		if !step.Applied {
			t.Fatalf("history step %d not applied", i)
		}
	}
	// The hungry workload must hold the solver's 0.75 CPU share, and the
	// machine must never have been over-committed (SetShares would have
	// errored above if a racing transition tried).
	if got := vms[0].Shares().CPU; got != 0.75 {
		t.Fatalf("hungry CPU share = %g, want 0.75", got)
	}
	if got := vms[1].Shares().CPU; got != 0.25 {
		t.Fatalf("flat CPU share = %g, want 0.25", got)
	}
}
