package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"dbvirt/internal/obs"
	"dbvirt/internal/vm"
)

// finishSolve stamps the bookkeeping shared by every solver onto r: the
// cache counters, the wall clock, the global solve metrics, and the span
// (nil-safe) annotated with the solve's shape.
func finishSolve(r *Result, memo *costCache, start time.Time, sp *obs.Span) *Result {
	r.Evaluations = memo.evaluations()
	r.CacheHits = memo.cacheHits()
	r.Elapsed = time.Since(start)
	mSolveCount.Inc()
	hSolveSeconds.Observe(r.Elapsed.Seconds())
	sp.SetArg("evaluations", r.Evaluations)
	sp.SetArg("cache_hits", r.CacheHits)
	sp.SetArg("total", r.PredictedTotal)
	sp.End()
	return r
}

// sharesFromUnits builds one workload's Shares from per-searched-resource
// unit counts (units is aligned with p.Resources); non-searched resources
// get the equal split. No intermediate maps are allocated: shares are set
// by indexing the resource directly.
func (p *Problem) sharesFromUnits(units []int) vm.Shares {
	f := p.fixedShare()
	s := vm.Shares{CPU: f, Memory: f, IO: f}
	for k, r := range p.Resources {
		s = s.With(r, float64(units[k])*p.Step)
	}
	return s
}

// allocationFromResUnits converts a per-resource unit matrix (rows aligned
// with p.Resources, columns per workload) into an Allocation.
func (p *Problem) allocationFromResUnits(resUnits [][]int) Allocation {
	return p.allocationIntoResUnits(make(Allocation, len(p.Workloads)), resUnits)
}

// allocationIntoResUnits is allocationFromResUnits writing into a
// caller-owned Allocation (len == len(p.Workloads)), for hot loops that
// must not allocate per candidate.
func (p *Problem) allocationIntoResUnits(dst Allocation, resUnits [][]int) Allocation {
	f := p.fixedShare()
	for i := range dst {
		s := vm.Shares{CPU: f, Memory: f, IO: f}
		for k, r := range p.Resources {
			s = s.With(r, float64(resUnits[k][i])*p.Step)
		}
		dst[i] = s
	}
	return dst
}

// compositions enumerates all ways to split `total` units among n
// workloads with at least min units each.
func compositions(n, total, min int) [][]int {
	var out [][]int
	cur := make([]int, n)
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == n-1 {
			if remaining >= min {
				cur[i] = remaining
				out = append(out, append([]int(nil), cur...))
			}
			return
		}
		maxHere := remaining - min*(n-1-i)
		for u := min; u <= maxHere; u++ {
			cur[i] = u
			rec(i+1, remaining-u)
		}
	}
	if total >= min*n {
		rec(0, total)
	}
	return out
}

// exhaustiveCand is one worker's best candidate so far in the exhaustive
// enumeration: the flat candidate index plus the evaluated allocation.
type exhaustiveCand struct {
	idx   int
	total float64
	costs []float64
	alloc Allocation
}

// better reports whether c should replace cur. Ties in the objective break
// by enumeration order (the smaller flat index), which is exactly the
// "first strictly-better candidate wins" rule of a serial scan — so the
// winner is independent of how candidates were distributed over workers.
func (c *exhaustiveCand) better(cur *exhaustiveCand) bool {
	if cur == nil {
		return true
	}
	return c.total < cur.total || (c.total == cur.total && c.idx < cur.idx)
}

// SolveExhaustive enumerates every grid allocation and returns the best.
// The search space is the cross product of per-resource compositions, so
// it is only feasible for small N and coarse steps; it exists as the
// ground truth for the other algorithms. Candidates are evaluated on
// p.Parallelism workers over a shared memoized cost cache; the result is
// identical to a serial scan regardless of scheduling. The first
// evaluation error cancels the remaining candidates, and cancelling ctx
// aborts the search promptly.
func SolveExhaustive(ctx context.Context, p *Problem, model CostModel) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	startT := time.Now()
	sp := p.Obs.Span("core.solve.exhaustive")
	defer sp.End() // idempotent; covers the error returns
	memo := newCostCache(model)
	perRes := make([][][]int, len(p.Resources))
	numCands := 1
	for ri := range p.Resources {
		perRes[ri] = compositions(len(p.Workloads), p.units(), p.minUnits())
		if len(perRes[ri]) == 0 {
			return nil, fmt.Errorf("core: no feasible allocation at step %g", p.Step)
		}
		numCands *= len(perRes[ri])
	}

	// Candidates are indexed in mixed radix with the last resource varying
	// fastest, matching the nesting order of a recursive enumeration.
	decode := func(idx int, resUnits [][]int) {
		for ri := len(perRes) - 1; ri >= 0; ri-- {
			comps := perRes[ri]
			resUnits[ri] = comps[idx%len(comps)]
			idx /= len(comps)
		}
	}

	workers := p.workers()
	if workers > numCands {
		workers = numCands
	}
	bests := make([]*exhaustiveCand, workers)
	decodeBufs := make([][][]int, workers)
	for w := range decodeBufs {
		decodeBufs[w] = make([][]int, len(perRes))
	}
	// The first failing candidate cancels dispatch (parallelFor) so the
	// pool stops promptly instead of evaluating the rest of the space.
	if err := ParallelFor(ctx, workers, numCands, func(w, idx int) error {
		resUnits := decodeBufs[w]
		decode(idx, resUnits)
		alloc := p.allocationFromResUnits(resUnits)
		total, costs, err := p.evaluate(ctx, memo, alloc)
		if err != nil {
			return err
		}
		c := &exhaustiveCand{idx: idx, total: total, costs: costs, alloc: alloc}
		if c.better(bests[w]) {
			bests[w] = c
		}
		return nil
	}); err != nil {
		return nil, err
	}

	var best *exhaustiveCand
	for _, c := range bests {
		if c != nil && c.better(best) {
			best = c
		}
	}
	sp.SetArg("candidates", numCands)
	return finishSolve(&Result{
		Algorithm:      "exhaustive",
		Allocation:     best.alloc,
		PredictedCosts: best.costs,
		PredictedTotal: best.total,
	}, memo, startT, sp), nil
}

// SolveDP solves the problem exactly by dynamic programming over
// workloads, with the remaining units of each searched resource as state.
// The objective is separable across workloads (each workload's cost
// depends only on its own shares), which is exactly the structure the
// paper suggests exploiting with standard DP. Cancelling ctx aborts the
// recursion at the next state expansion.
func SolveDP(ctx context.Context, p *Problem, model CostModel) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	startT := time.Now()
	sp := p.Obs.Span("core.solve.dp")
	defer sp.End()
	memo := newCostCache(model)
	n := len(p.Workloads)
	nr := len(p.Resources)
	min := p.minUnits()

	type state struct {
		i   int
		rem [vm.NumResources]int
	}
	type entry struct {
		cost   float64
		choice [vm.NumResources]int
	}
	table := make(map[state]entry)

	var solve func(st state) (entry, error)
	solve = func(st state) (entry, error) {
		if err := ctx.Err(); err != nil {
			return entry{}, err
		}
		if e, ok := table[st]; ok {
			return e, nil
		}
		// Enumerate this workload's unit vector.
		w := p.Workloads[st.i]
		last := st.i == n-1
		bestE := entry{cost: math.Inf(1)}
		units := make([]int, nr)
		var rec func(ri int) error
		rec = func(ri int) error {
			if ri == nr {
				c, err := memo.Cost(ctx, st.i, w, p.sharesFromUnits(units))
				if err != nil {
					return err
				}
				total := p.objectiveTerm(w, c)
				if !last {
					next := state{i: st.i + 1}
					for k, r := range p.Resources {
						next.rem[r] = st.rem[r] - units[k]
					}
					sub, err := solve(next)
					if err != nil {
						return err
					}
					total += sub.cost
				}
				if total < bestE.cost {
					bestE.cost = total
					for k, r := range p.Resources {
						bestE.choice[r] = units[k]
					}
				}
				return nil
			}
			r := p.Resources[ri]
			lo, hi := min, st.rem[r]-min*(n-1-st.i)
			if last {
				lo, hi = st.rem[r], st.rem[r] // the last workload takes the rest
			}
			for u := lo; u <= hi; u++ {
				units[ri] = u
				if err := rec(ri + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := rec(0); err != nil {
			return entry{}, err
		}
		if math.IsInf(bestE.cost, 1) {
			return entry{}, fmt.Errorf("core: no feasible allocation for workload %d", st.i)
		}
		table[st] = bestE
		return bestE, nil
	}

	start := state{}
	for _, r := range p.Resources {
		start.rem[r] = p.units()
	}
	if _, err := solve(start); err != nil {
		return nil, err
	}

	// Reconstruct the allocation by replaying the choices.
	resUnits := make([][]int, nr)
	for k := range p.Resources {
		resUnits[k] = make([]int, n)
	}
	st := start
	for i := 0; i < n; i++ {
		st.i = i
		e := table[st]
		next := st
		next.i = i + 1
		for k, r := range p.Resources {
			resUnits[k][i] = e.choice[r]
			next.rem[r] = st.rem[r] - e.choice[r]
		}
		st = next
	}
	alloc := p.allocationFromResUnits(resUnits)
	total, costs, err := p.evaluate(ctx, memo, alloc)
	if err != nil {
		return nil, err
	}
	sp.SetArg("states", len(table))
	return finishSolve(&Result{
		Algorithm:      "dp",
		Allocation:     alloc,
		PredictedCosts: costs,
		PredictedTotal: total,
	}, memo, startT, sp), nil
}

// greedyMove is one candidate quantum shift: one unit of resource
// p.Resources[ri] from workload donor to workload recv.
type greedyMove struct {
	ri, donor, recv int
}

// SolveGreedy starts from the equal allocation and repeatedly moves one
// share quantum of one resource from a donor workload to a recipient,
// taking the best improving move until none exists. A local search in the
// spirit of the paper's "standard combinatorial search" suggestion: cheap,
// and optimal in practice for well-behaved cost surfaces. Each round's
// neighbor moves are evaluated on p.Parallelism workers into pre-indexed
// slots and then selected by a serial scan in move order, so the chosen
// move is identical to a fully serial search. The first evaluation error
// cancels the round's remaining moves, and cancelling ctx aborts the
// search promptly.
func SolveGreedy(ctx context.Context, p *Problem, model CostModel) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	startT := time.Now()
	sp := p.Obs.Span("core.solve.greedy")
	defer sp.End()
	memo := newCostCache(model)
	n := len(p.Workloads)
	min := p.minUnits()
	workers := p.workers()

	// Equal start, snapped to the grid.
	resUnits := make([][]int, len(p.Resources))
	for k := range p.Resources {
		base := p.units() / n
		rem := p.units() - base*n
		u := make([]int, n)
		for i := range u {
			u[i] = base
			if i < rem {
				u[i]++
			}
		}
		resUnits[k] = u
	}

	alloc := p.allocationFromResUnits(resUnits)
	bestTotal, bestCosts, err := p.evaluate(ctx, memo, alloc)
	if err != nil {
		return nil, err
	}

	// Invariant scaffolding, hoisted out of the round loop: the move list,
	// the per-move result slots (totals plus a flat per-workload cost
	// matrix), and per-worker scratch (a private unit matrix and a reusable
	// candidate Allocation). Every round reuses these; the steady-state move
	// scan performs zero allocations beyond what the cost model itself
	// needs (see TestGreedyAllocsPerRound).
	maxMoves := len(p.Resources) * n * (n - 1)
	moves := make([]greedyMove, 0, maxMoves)
	totals := make([]float64, maxMoves)
	costsFlat := make([]float64, maxMoves*n)
	scratch := make([][][]int, workers)
	candBufs := make([]Allocation, workers)
	rounds := 0
	for round := 1; ; round++ {
		// Enumerate this round's feasible moves in deterministic order.
		moves = moves[:0]
		for ri := range p.Resources {
			u := resUnits[ri]
			for donor := 0; donor < n; donor++ {
				if u[donor] <= min {
					continue
				}
				for recv := 0; recv < n; recv++ {
					if recv != donor {
						moves = append(moves, greedyMove{ri: ri, donor: donor, recv: recv})
					}
				}
			}
		}
		if len(moves) == 0 {
			break
		}
		rounds = round

		// Fan the move evaluations out; each worker applies moves to its
		// own scratch copy of the unit matrix and writes results into the
		// move's slot.
		if err := ParallelFor(ctx, workers, len(moves), func(w, mi int) error {
			if scratch[w] == nil {
				cp := make([][]int, len(resUnits))
				for k := range resUnits {
					cp[k] = append([]int(nil), resUnits[k]...)
				}
				scratch[w] = cp
				candBufs[w] = make(Allocation, n)
			}
			u := scratch[w]
			mv := moves[mi]
			u[mv.ri][mv.donor]--
			u[mv.ri][mv.recv]++
			cand := p.allocationIntoResUnits(candBufs[w], u)
			u[mv.ri][mv.donor]++
			u[mv.ri][mv.recv]--
			var err error
			totals[mi], err = p.evaluateInto(ctx, memo, cand, costsFlat[mi*n:(mi+1)*n])
			return err
		}); err != nil {
			return nil, err
		}

		// Select the winning move exactly as a serial scan would: first
		// strictly-improving total in move order wins ties.
		bestMove := -1
		bestMoveTotal := bestTotal
		for mi := range moves {
			if total := totals[mi]; total < bestMoveTotal-1e-12 {
				bestMoveTotal = total
				bestMove = mi
			}
		}
		if bestMove < 0 {
			p.Obs.Debug("greedy converged", "round", round,
				"moves", len(moves), "total", bestTotal)
			break
		}
		// The winner's total and per-workload costs are already known from
		// the scan; apply the move (to the live unit matrix and to every
		// initialized worker scratch, keeping them in sync for the next
		// round) and reuse them instead of re-evaluating.
		mv := moves[bestMove]
		resUnits[mv.ri][mv.donor]--
		resUnits[mv.ri][mv.recv]++
		for w := range scratch {
			if scratch[w] != nil {
				scratch[w][mv.ri][mv.donor]--
				scratch[w][mv.ri][mv.recv]++
			}
		}
		p.allocationIntoResUnits(alloc, resUnits)
		bestTotal = bestMoveTotal
		copy(bestCosts, costsFlat[bestMove*n:(bestMove+1)*n])
		p.Obs.Debug("greedy round", "round", round, "moves", len(moves),
			"resource", int(p.Resources[mv.ri]), "donor", mv.donor,
			"recv", mv.recv, "total", bestTotal)
	}

	return finishSolve(&Result{
		Algorithm:      "greedy",
		Allocation:     alloc,
		PredictedCosts: bestCosts,
		PredictedTotal: bestTotal,
		Rounds:         rounds,
	}, memo, startT, sp), nil
}

// EvaluateAllocation scores an arbitrary allocation (e.g. the equal-shares
// baseline) under a cost model, returning a Result for comparison.
func EvaluateAllocation(ctx context.Context, p *Problem, model CostModel, alloc Allocation, name string) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(alloc) != len(p.Workloads) {
		return nil, fmt.Errorf("core: allocation has %d entries for %d workloads", len(alloc), len(p.Workloads))
	}
	startT := time.Now()
	sp := p.Obs.Span("core.evaluate." + name)
	defer sp.End()
	memo := newCostCache(model)
	total, costs, err := p.evaluate(ctx, memo, alloc)
	if err != nil {
		return nil, err
	}
	return finishSolve(&Result{
		Algorithm:      name,
		Allocation:     alloc.Clone(),
		PredictedCosts: costs,
		PredictedTotal: total,
	}, memo, startT, sp), nil
}
