package core

import (
	"fmt"
	"math"

	"dbvirt/internal/vm"
)

// sharesFor builds one workload's Shares from per-searched-resource unit
// counts; non-searched resources get the equal split.
func (p *Problem) sharesFor(units map[vm.Resource]int) vm.Shares {
	s := vm.Shares{CPU: p.fixedShare(), Memory: p.fixedShare(), IO: p.fixedShare()}
	for r, u := range units {
		s = s.With(r, float64(u)*p.Step)
	}
	return s
}

// allocationFromUnits converts a per-resource unit matrix (resource →
// per-workload units) into an Allocation.
func (p *Problem) allocationFromUnits(unitsByRes map[vm.Resource][]int) Allocation {
	n := len(p.Workloads)
	alloc := make(Allocation, n)
	for i := 0; i < n; i++ {
		perWorkload := make(map[vm.Resource]int, len(p.Resources))
		for _, r := range p.Resources {
			perWorkload[r] = unitsByRes[r][i]
		}
		alloc[i] = p.sharesFor(perWorkload)
	}
	return alloc
}

// compositions enumerates all ways to split `total` units among n
// workloads with at least min units each.
func compositions(n, total, min int) [][]int {
	var out [][]int
	cur := make([]int, n)
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == n-1 {
			if remaining >= min {
				cur[i] = remaining
				out = append(out, append([]int(nil), cur...))
			}
			return
		}
		maxHere := remaining - min*(n-1-i)
		for u := min; u <= maxHere; u++ {
			cur[i] = u
			rec(i+1, remaining-u)
		}
	}
	if total >= min*n {
		rec(0, total)
	}
	return out
}

// SolveExhaustive enumerates every grid allocation and returns the best.
// The search space is the cross product of per-resource compositions, so
// it is only feasible for small N and coarse steps; it exists as the
// ground truth for the other algorithms.
func SolveExhaustive(p *Problem, model CostModel) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	memo := newMemoModel(model)
	n := len(p.Workloads)
	perRes := make([][][]int, len(p.Resources))
	for ri := range p.Resources {
		perRes[ri] = compositions(n, p.units(), p.minUnits())
		if len(perRes[ri]) == 0 {
			return nil, fmt.Errorf("core: no feasible allocation at step %g", p.Step)
		}
	}

	var best *Result
	choice := make(map[vm.Resource][]int, len(p.Resources))
	var rec func(ri int) error
	rec = func(ri int) error {
		if ri == len(p.Resources) {
			alloc := p.allocationFromUnits(choice)
			total, costs, err := p.evaluate(memo, alloc)
			if err != nil {
				return err
			}
			if best == nil || total < best.PredictedTotal {
				best = &Result{
					Algorithm:      "exhaustive",
					Allocation:     alloc,
					PredictedCosts: costs,
					PredictedTotal: total,
				}
			}
			return nil
		}
		for _, comp := range perRes[ri] {
			choice[p.Resources[ri]] = comp
			if err := rec(ri + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	best.Evaluations = memo.evals
	return best, nil
}

// SolveDP solves the problem exactly by dynamic programming over
// workloads, with the remaining units of each searched resource as state.
// The objective is separable across workloads (each workload's cost
// depends only on its own shares), which is exactly the structure the
// paper suggests exploiting with standard DP.
func SolveDP(p *Problem, model CostModel) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	memo := newMemoModel(model)
	n := len(p.Workloads)
	nr := len(p.Resources)
	min := p.minUnits()

	type state struct {
		i   int
		rem [vm.NumResources]int
	}
	type entry struct {
		cost   float64
		choice [vm.NumResources]int
	}
	table := make(map[state]entry)

	var solve func(st state) (entry, error)
	solve = func(st state) (entry, error) {
		if e, ok := table[st]; ok {
			return e, nil
		}
		// Enumerate this workload's unit vector.
		w := p.Workloads[st.i]
		last := st.i == n-1
		bestE := entry{cost: math.Inf(1)}
		units := make([]int, nr)
		var rec func(ri int) error
		rec = func(ri int) error {
			if ri == nr {
				perWorkload := make(map[vm.Resource]int, nr)
				for k, r := range p.Resources {
					perWorkload[r] = units[k]
				}
				c, err := memo.Cost(w, p.sharesFor(perWorkload))
				if err != nil {
					return err
				}
				total := p.objectiveTerm(w, c)
				if !last {
					next := state{i: st.i + 1}
					for k, r := range p.Resources {
						next.rem[r] = st.rem[r] - units[k]
					}
					sub, err := solve(next)
					if err != nil {
						return err
					}
					total += sub.cost
				}
				if total < bestE.cost {
					bestE.cost = total
					for k, r := range p.Resources {
						bestE.choice[r] = units[k]
					}
				}
				return nil
			}
			r := p.Resources[ri]
			lo, hi := min, st.rem[r]-min*(n-1-st.i)
			if last {
				lo, hi = st.rem[r], st.rem[r] // the last workload takes the rest
			}
			for u := lo; u <= hi; u++ {
				units[ri] = u
				if err := rec(ri + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := rec(0); err != nil {
			return entry{}, err
		}
		if math.IsInf(bestE.cost, 1) {
			return entry{}, fmt.Errorf("core: no feasible allocation for workload %d", st.i)
		}
		table[st] = bestE
		return bestE, nil
	}

	start := state{}
	for _, r := range p.Resources {
		start.rem[r] = p.units()
	}
	if _, err := solve(start); err != nil {
		return nil, err
	}

	// Reconstruct the allocation by replaying the choices.
	unitsByRes := make(map[vm.Resource][]int, nr)
	for _, r := range p.Resources {
		unitsByRes[r] = make([]int, n)
	}
	st := start
	for i := 0; i < n; i++ {
		st.i = i
		e := table[st]
		next := st
		next.i = i + 1
		for _, r := range p.Resources {
			unitsByRes[r][i] = e.choice[r]
			next.rem[r] = st.rem[r] - e.choice[r]
		}
		st = next
	}
	alloc := p.allocationFromUnits(unitsByRes)
	total, costs, err := p.evaluate(memo, alloc)
	if err != nil {
		return nil, err
	}
	return &Result{
		Algorithm:      "dp",
		Allocation:     alloc,
		PredictedCosts: costs,
		PredictedTotal: total,
		Evaluations:    memo.evals,
	}, nil
}

// SolveGreedy starts from the equal allocation and repeatedly moves one
// share quantum of one resource from a donor workload to a recipient,
// taking the best improving move until none exists. A local search in the
// spirit of the paper's "standard combinatorial search" suggestion: cheap,
// and optimal in practice for well-behaved cost surfaces.
func SolveGreedy(p *Problem, model CostModel) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	memo := newMemoModel(model)
	n := len(p.Workloads)
	min := p.minUnits()

	// Equal start, snapped to the grid.
	unitsByRes := make(map[vm.Resource][]int, len(p.Resources))
	for _, r := range p.Resources {
		base := p.units() / n
		rem := p.units() - base*n
		u := make([]int, n)
		for i := range u {
			u[i] = base
			if i < rem {
				u[i]++
			}
		}
		unitsByRes[r] = u
	}

	alloc := p.allocationFromUnits(unitsByRes)
	bestTotal, bestCosts, err := p.evaluate(memo, alloc)
	if err != nil {
		return nil, err
	}

	for {
		type move struct {
			r           vm.Resource
			donor, recv int
		}
		var bestMove *move
		bestMoveTotal := bestTotal
		for _, r := range p.Resources {
			u := unitsByRes[r]
			for donor := 0; donor < n; donor++ {
				if u[donor] <= min {
					continue
				}
				for recv := 0; recv < n; recv++ {
					if recv == donor {
						continue
					}
					u[donor]--
					u[recv]++
					cand := p.allocationFromUnits(unitsByRes)
					total, _, err := p.evaluate(memo, cand)
					u[donor]++
					u[recv]--
					if err != nil {
						return nil, err
					}
					if total < bestMoveTotal-1e-12 {
						bestMoveTotal = total
						bestMove = &move{r: r, donor: donor, recv: recv}
					}
				}
			}
		}
		if bestMove == nil {
			break
		}
		unitsByRes[bestMove.r][bestMove.donor]--
		unitsByRes[bestMove.r][bestMove.recv]++
		alloc = p.allocationFromUnits(unitsByRes)
		bestTotal, bestCosts, err = p.evaluate(memo, alloc)
		if err != nil {
			return nil, err
		}
	}

	return &Result{
		Algorithm:      "greedy",
		Allocation:     alloc,
		PredictedCosts: bestCosts,
		PredictedTotal: bestTotal,
		Evaluations:    memo.evals,
	}, nil
}

// EvaluateAllocation scores an arbitrary allocation (e.g. the equal-shares
// baseline) under a cost model, returning a Result for comparison.
func EvaluateAllocation(p *Problem, model CostModel, alloc Allocation, name string) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(alloc) != len(p.Workloads) {
		return nil, fmt.Errorf("core: allocation has %d entries for %d workloads", len(alloc), len(p.Workloads))
	}
	memo := newMemoModel(model)
	total, costs, err := p.evaluate(memo, alloc)
	if err != nil {
		return nil, err
	}
	return &Result{
		Algorithm:      name,
		Allocation:     alloc.Clone(),
		PredictedCosts: costs,
		PredictedTotal: total,
		Evaluations:    memo.evals,
	}, nil
}
