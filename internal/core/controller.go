package core

import (
	"context"
	"fmt"
	"sync"

	"dbvirt/internal/vm"
)

// Controller implements the paper's Section 7 dynamic extension: instead
// of solving the virtualization design problem once at deployment time, it
// re-solves whenever the workloads change and reconfigures the running
// VMs' shares on the fly.
type Controller struct {
	// Machine hosts the VMs being controlled.
	Machine *vm.Machine
	// Model predicts workload costs for candidate allocations.
	Model CostModel
	// Solve is the search algorithm (defaults to SolveDP).
	Solve func(context.Context, *Problem, CostModel) (*Result, error)
	// History records every reconfiguration decision.
	History []ControllerStep

	// mu serializes Reconfigure: the autotune loop's periodic actuation
	// and vdtuned's manual trigger endpoint may call it concurrently, and
	// both the History append and the lower-then-raise share transition
	// assume exclusive access to the VMs. Configuration fields (Machine,
	// Model, Solve) are not protected — set them before sharing the
	// controller.
	mu sync.Mutex
}

// ControllerStep is one reconfiguration decision.
type ControllerStep struct {
	Result  *Result
	Applied bool
}

// Reconfigure solves the design problem for the current workload
// descriptions and applies the resulting shares to the VMs. VMs are
// matched to workloads positionally. To avoid transient over-commitment,
// shares are first lowered everywhere, then raised. A cancelled ctx
// aborts the solve; shares are never half-applied from a cancelled solve.
// Concurrent callers are serialized.
func (c *Controller) Reconfigure(ctx context.Context, p *Problem, vms []*vm.VM) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(vms) != len(p.Workloads) {
		return nil, fmt.Errorf("core: %d VMs for %d workloads", len(vms), len(p.Workloads))
	}
	solve := c.Solve
	if solve == nil {
		solve = SolveDP
	}
	res, err := solve(ctx, p, c.Model)
	if err != nil {
		return nil, err
	}
	if err := applyShares(vms, res.Allocation); err != nil {
		c.History = append(c.History, ControllerStep{Result: res, Applied: false})
		return res, err
	}
	c.History = append(c.History, ControllerStep{Result: res, Applied: true})
	return res, nil
}

// applyShares transitions the VMs to the target allocation without ever
// over-committing a resource: first every VM whose share shrinks is
// lowered, then the grown shares are raised.
func applyShares(vms []*vm.VM, alloc Allocation) error {
	type change struct {
		v      *vm.VM
		target vm.Shares
	}
	var shrinks, grows []change
	for i, v := range vms {
		target := alloc[i]
		cur := v.Shares()
		// Intermediate step: the component-wise minimum never
		// over-commits.
		intermediate := vm.Shares{
			CPU:    minF(cur.CPU, target.CPU),
			Memory: minF(cur.Memory, target.Memory),
			IO:     minF(cur.IO, target.IO),
		}
		if intermediate != cur {
			shrinks = append(shrinks, change{v, intermediate})
		}
		if target != intermediate {
			grows = append(grows, change{v, target})
		}
	}
	for _, ch := range shrinks {
		if err := ch.v.SetShares(ch.target); err != nil {
			return err
		}
	}
	for _, ch := range grows {
		if err := ch.v.SetShares(ch.target); err != nil {
			return err
		}
	}
	return nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
