package core

import (
	"fmt"

	"dbvirt/internal/engine"
	"dbvirt/internal/vm"
)

// Deployment is a set of workloads running in VMs on one machine under a
// chosen allocation.
type Deployment struct {
	Machine  *vm.Machine
	VMs      []*vm.VM
	Sessions []*engine.Session
	Specs    []*WorkloadSpec
}

// Deploy provisions one VM per workload with the given allocation and
// opens a session on each workload's database.
func Deploy(machineCfg vm.MachineConfig, engCfg engine.Config, specs []*WorkloadSpec, alloc Allocation) (*Deployment, error) {
	if len(specs) != len(alloc) {
		return nil, fmt.Errorf("core: %d workloads but %d allocations", len(specs), len(alloc))
	}
	m, err := vm.NewMachine(machineCfg)
	if err != nil {
		return nil, err
	}
	d := &Deployment{Machine: m, Specs: specs}
	for i, spec := range specs {
		v, err := m.NewVM(spec.Name, alloc[i])
		if err != nil {
			return nil, fmt.Errorf("core: provisioning %s: %w", spec.Name, err)
		}
		s, err := engine.NewSession(spec.DB, v, engCfg)
		if err != nil {
			return nil, err
		}
		d.VMs = append(d.VMs, v)
		d.Sessions = append(d.Sessions, s)
	}
	return d, nil
}

// MeasureWorkloads runs every workload once in its VM (after an optional
// warmup pass) and returns the simulated elapsed seconds per workload.
// Because the hypervisor's shares fully determine each VM's effective
// rates, the workloads are independent and can be run back to back.
func (d *Deployment) MeasureWorkloads(warmup bool) ([]float64, error) {
	out := make([]float64, len(d.Specs))
	for i, spec := range d.Specs {
		if warmup {
			if _, err := d.Sessions[i].RunWorkload(spec.Statements); err != nil {
				return nil, fmt.Errorf("core: warmup %s: %w", spec.Name, err)
			}
		}
		elapsed, err := d.Sessions[i].RunWorkload(spec.Statements)
		if err != nil {
			return nil, fmt.Errorf("core: measuring %s: %w", spec.Name, err)
		}
		out[i] = elapsed
	}
	return out, nil
}

// MeasureAllocation is the one-shot form: deploy, optionally warm up, and
// measure every workload under the allocation.
func MeasureAllocation(machineCfg vm.MachineConfig, engCfg engine.Config, specs []*WorkloadSpec, alloc Allocation, warmup bool) ([]float64, error) {
	d, err := Deploy(machineCfg, engCfg, specs, alloc)
	if err != nil {
		return nil, err
	}
	return d.MeasureWorkloads(warmup)
}
