package core

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"dbvirt/internal/vm"
)

// TestCostCacheConcurrent hammers the memoized cost cache from many
// goroutines requesting overlapping keys and checks that (a) every
// distinct (workload, shares) pair is computed exactly once, and (b)
// every caller observes the same value. Run under -race this also
// exercises the sharded-lock and in-flight-dedup paths.
func TestCostCacheConcurrent(t *testing.T) {
	specs := fakeSpecs("a", "b", "c")
	var computed atomic.Int64
	inner := &funcModel{name: "count", f: func(w *WorkloadSpec, s vm.Shares) float64 {
		computed.Add(1)
		return s.CPU*100 + s.Memory*10 + s.IO + float64(len(w.Name))
	}}
	cache := newCostCache(inner)

	shares := func(k int) vm.Shares {
		return vm.Shares{CPU: 0.05 * float64(k%19+1), Memory: 0.5, IO: 0.5}
	}
	const goroutines = 32
	const perG = 200
	uniqueKeys := 3 * 19 // 3 workloads x 19 distinct CPU shares

	var wg sync.WaitGroup
	results := make([][]float64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]float64, perG)
			for i := 0; i < perG; i++ {
				wi := (g + i) % len(specs)
				v, err := cache.Cost(context.Background(), wi, specs[wi], shares(g*7+i))
				if err != nil {
					t.Errorf("Cost: %v", err)
					return
				}
				results[g][i] = v
			}
		}(g)
	}
	wg.Wait()

	if got := computed.Load(); got != int64(uniqueKeys) {
		t.Fatalf("inner model computed %d times, want once per unique key (%d)", got, uniqueKeys)
	}
	if cache.evaluations() != uniqueKeys {
		t.Fatalf("evaluations() = %d, want %d", cache.evaluations(), uniqueKeys)
	}
	// Every goroutine must have seen the deterministic value.
	for g := range results {
		for i, v := range results[g] {
			wi := (g + i) % len(specs)
			want := inner.f(specs[wi], shares(g*7+i))
			if v != want {
				t.Fatalf("goroutine %d call %d: got %v want %v", g, i, v, want)
			}
		}
	}
}

// TestParallelSolversMatchSerial checks the headline determinism claim:
// every solver returns a byte-identical Result regardless of the worker
// count, including the Evaluations counter and tie-breaks.
func TestParallelSolversMatchSerial(t *testing.T) {
	specs := fakeSpecs("w0", "w1", "w2", "w3")
	// A bumpy deterministic cost surface with plateaus, so ties exist and
	// tie-breaking order actually matters.
	model := &funcModel{name: "bumpy", f: func(w *WorkloadSpec, s vm.Shares) float64 {
		base := 1/(s.CPU+0.1) + 0.5/(s.IO+0.2)
		bump := math.Sin(float64(len(w.Name))*s.CPU*7) * 0.05
		return math.Round((base+bump)*8) / 8 // quantize to create plateaus
	}}
	solvers := []struct {
		name  string
		solve func(context.Context, *Problem, CostModel) (*Result, error)
	}{
		{"exhaustive", SolveExhaustive},
		{"greedy", SolveGreedy},
		{"dp", SolveDP},
	}
	for _, sv := range solvers {
		t.Run(sv.name, func(t *testing.T) {
			var results []*Result
			for _, j := range []int{1, 2, 8} {
				p := &Problem{
					Workloads:   specs,
					Resources:   []vm.Resource{vm.CPU, vm.IO},
					Step:        0.25,
					Parallelism: j,
				}
				r, err := sv.solve(context.Background(), p, model)
				if err != nil {
					t.Fatalf("j=%d: %v", j, err)
				}
				if r.Elapsed <= 0 {
					t.Fatalf("j=%d: Elapsed not recorded", j)
				}
				// Elapsed is wall clock — the one documented
				// non-deterministic field; everything else (including
				// Evaluations and CacheHits) must match bit-for-bit.
				r.Elapsed = 0
				results = append(results, r)
			}
			for i := 1; i < len(results); i++ {
				if !reflect.DeepEqual(results[0], results[i]) {
					t.Fatalf("results diverge:\n  j=1: %+v\n  j=%d: %+v", results[0], []int{1, 2, 8}[i], results[i])
				}
			}
		})
	}
}

// TestParallelSolversPropagateErrors checks that a failing cost model
// surfaces the same (first, in candidate order) error at any parallelism.
func TestParallelSolversPropagateErrors(t *testing.T) {
	specs := fakeSpecs("a", "b")
	bad := &errModel{}
	for _, j := range []int{1, 4} {
		p := &Problem{Workloads: specs, Resources: []vm.Resource{vm.CPU}, Step: 0.25, Parallelism: j}
		if _, err := SolveExhaustive(context.Background(), p, bad); err == nil {
			t.Fatalf("j=%d: exhaustive: want error", j)
		}
		if _, err := SolveGreedy(context.Background(), p, bad); err == nil {
			t.Fatalf("j=%d: greedy: want error", j)
		}
	}
}

type errModel struct{}

func (m *errModel) Name() string { return "err" }
func (m *errModel) Cost(_ context.Context, w *WorkloadSpec, s vm.Shares) (float64, error) {
	if s.CPU > 0.6 {
		return 0, fmt.Errorf("model failure at cpu=%g", s.CPU)
	}
	return 1 / s.CPU, nil
}

// expensiveModel burns deterministic CPU per evaluation, standing in for
// the real what-if model (whose per-evaluation cost is planning a whole
// workload). The work is pure arithmetic so results are bit-identical
// across workers.
func expensiveModel() CostModel {
	return &funcModel{name: "expensive", f: func(w *WorkloadSpec, s vm.Shares) float64 {
		x := s.CPU + s.Memory + s.IO
		for i := 0; i < 200_000; i++ {
			x = x + math.Sqrt(float64(i%97)+x)/1e6
		}
		return 1/(s.CPU+0.05) + x*1e-9
	}}
}

// BenchmarkExhaustiveSearch measures the N=4 exhaustive grid search over
// CPU+IO at step 0.05 with an artificially expensive cost model, at
// worker counts 1 and 4. On a multi-core host j=4 should cut wall-clock
// time by ~the core count (the unique-evaluation count is identical —
// memoization dedups across candidates in both modes).
func BenchmarkExhaustiveSearch(b *testing.B) {
	specs := fakeSpecs("w0", "w1", "w2", "w3")
	model := expensiveModel()
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			p := &Problem{
				Workloads:   specs,
				Resources:   []vm.Resource{vm.CPU},
				Step:        0.05,
				Parallelism: j,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SolveExhaustive(context.Background(), p, model); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedySearch is the same comparison for the greedy solver's
// per-round neighbor-move fan-out.
func BenchmarkGreedySearch(b *testing.B) {
	specs := fakeSpecs("w0", "w1", "w2", "w3")
	model := expensiveModel()
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			p := &Problem{
				Workloads:   specs,
				Resources:   []vm.Resource{vm.CPU, vm.IO},
				Step:        0.1,
				Parallelism: j,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SolveGreedy(context.Background(), p, model); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
