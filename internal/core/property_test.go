// Property-based and metamorphic tests of the what-if cost model: rather
// than pinning specific numbers, they assert relations that must hold
// across a seeded lattice of problems — relations the design-search
// algorithms silently rely on (greedy's marginal-gain step assumes more
// resources never hurt; every solver assumes workload order is
// presentation, not physics).
package core_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"dbvirt/internal/core"
	"dbvirt/internal/experiments"
	"dbvirt/internal/vm"
	"dbvirt/internal/workload"
)

// propertyModel builds a grid-backed what-if model and a set of workload
// specs over tiny databases — small enough that the full lattice sweep
// stays fast, real enough to exercise parse/bind/plan/cost end to end.
func propertyModel(t *testing.T) (core.CostModel, []*core.WorkloadSpec) {
	t.Helper()
	axes := []float64{0.25, 0.5, 0.75, 1.0}
	grid, err := experiments.SyntheticGrid(axes, axes, axes)
	if err != nil {
		t.Fatalf("SyntheticGrid: %v", err)
	}
	env := experiments.NewEnv(workload.TinyScale(), vm.DefaultMachineConfig())
	var specs []*core.WorkloadSpec
	for _, q := range []struct {
		name   string
		repeat int
	}{{"Q4", 2}, {"Q13", 3}, {"Q6", 1}, {"Q1", 1}} {
		db, err := env.DB("prop-" + q.name)
		if err != nil {
			t.Fatalf("building %s: %v", q.name, err)
		}
		specs = append(specs, &core.WorkloadSpec{
			Name:       fmt.Sprintf("%sx%d", q.name, q.repeat),
			Statements: workload.Repeat(q.name, workload.Query(q.name), q.repeat).Statements,
			DB:         db,
		})
	}
	return &core.WhatIfModel{Grid: grid}, specs
}

// sharesLattice enumerates a seeded lattice of allocations (all
// combinations of the given values on each axis).
func sharesLattice(vals []float64) []vm.Shares {
	var out []vm.Shares
	for _, c := range vals {
		for _, m := range vals {
			for _, io := range vals {
				out = append(out, vm.Shares{CPU: c, Memory: m, IO: io})
			}
		}
	}
	return out
}

// TestCostMonotoneInShares: growing any single resource share, all else
// fixed, never increases a workload's predicted cost. More CPU, memory,
// or I/O bandwidth can only help; a violation would let the greedy
// solver's marginal-gain step go negative and strand resources.
func TestCostMonotoneInShares(t *testing.T) {
	model, specs := propertyModel(t)
	ctx := context.Background()
	vals := []float64{0.25, 0.5, 0.75, 1.0}

	cost := func(w *core.WorkloadSpec, s vm.Shares) float64 {
		c, err := model.Cost(ctx, w, s)
		if err != nil {
			t.Fatalf("Cost(%s, %+v): %v", w.Name, s, err)
		}
		return c
	}
	bump := func(s vm.Shares, axis int, v float64) vm.Shares {
		switch axis {
		case 0:
			s.CPU = v
		case 1:
			s.Memory = v
		default:
			s.IO = v
		}
		return s
	}
	axisVal := func(s vm.Shares, axis int) float64 {
		return [3]float64{s.CPU, s.Memory, s.IO}[axis]
	}

	const slack = 1e-9 // relative; interpolation arithmetic only
	for _, w := range specs {
		for _, base := range sharesLattice(vals) {
			for axis, name := range []string{"cpu", "memory", "io"} {
				for _, v := range vals {
					if v <= axisVal(base, axis) {
						continue
					}
					lo, hi := cost(w, base), cost(w, bump(base, axis, v))
					if hi > lo*(1+slack) {
						t.Fatalf("%s: cost increased when %s grew %g -> %g at %+v: %.12g -> %.12g",
							w.Name, name, axisVal(base, axis), v, base, lo, hi)
					}
				}
			}
		}
	}
}

// TestCostPermutationInvariant: workloads are costed independently, so
// reordering the workload list permutes the per-workload costs exactly
// and leaves the total unchanged up to float-summation order. A
// violation would mean request ordering — pure presentation — leaks into
// recommendations.
func TestCostPermutationInvariant(t *testing.T) {
	model, specs := propertyModel(t)
	ctx := context.Background()
	allocs := sharesLattice([]float64{0.25, 0.5, 1.0})

	base, err := experiments.CostMatrix(ctx, model, specs, allocs)
	if err != nil {
		t.Fatalf("CostMatrix: %v", err)
	}
	perms := [][]int{
		{3, 2, 1, 0},
		{1, 0, 3, 2},
		{2, 3, 0, 1},
	}
	for _, perm := range perms {
		shuffled := make([]*core.WorkloadSpec, len(specs))
		for i, j := range perm {
			shuffled[i] = specs[j]
		}
		got, err := experiments.CostMatrix(ctx, model, shuffled, allocs)
		if err != nil {
			t.Fatalf("CostMatrix(perm %v): %v", perm, err)
		}
		for i, j := range perm {
			for a := range allocs {
				// Exact equality: each workload's cost is computed by the
				// same pure function either way.
				if got[i][a] != base[j][a] {
					t.Fatalf("perm %v: workload %s alloc %d: %g != %g",
						perm, specs[j].Name, a, got[i][a], base[j][a])
				}
			}
		}
		// Totals may differ only by summation order.
		for a := range allocs {
			var sumBase, sumGot float64
			for i := range specs {
				sumBase += base[i][a]
				sumGot += got[i][a]
			}
			if diff := math.Abs(sumBase - sumGot); diff > 1e-9*math.Max(math.Abs(sumBase), 1) {
				t.Fatalf("perm %v alloc %d: total drifted %g vs %g", perm, a, sumGot, sumBase)
			}
		}
	}
}

// TestSolversAgreeOnLattice: on problems small enough to enumerate, DP
// and exhaustive search must find allocations of equal objective value —
// DP's decomposition is an optimization, not an approximation.
func TestSolversAgreeOnLattice(t *testing.T) {
	model, specs := propertyModel(t)
	ctx := context.Background()
	for _, n := range []int{2, 3} {
		p := &core.Problem{
			Workloads: specs[:n],
			Resources: []vm.Resource{vm.CPU},
			Step:      0.25,
		}
		dp, err := core.SolveDP(ctx, p, model)
		if err != nil {
			t.Fatalf("SolveDP(n=%d): %v", n, err)
		}
		ex, err := core.SolveExhaustive(ctx, p, model)
		if err != nil {
			t.Fatalf("SolveExhaustive(n=%d): %v", n, err)
		}
		if diff := math.Abs(dp.PredictedTotal - ex.PredictedTotal); diff > 1e-9*math.Max(ex.PredictedTotal, 1) {
			t.Fatalf("n=%d: DP total %.12g != exhaustive total %.12g", n, dp.PredictedTotal, ex.PredictedTotal)
		}
	}
}
