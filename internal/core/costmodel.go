package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"dbvirt/internal/calibration"
	"dbvirt/internal/engine"
	"dbvirt/internal/optimizer"
	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
	"dbvirt/internal/vm"
)

// WhatIfModel is the paper's cost model: for a candidate allocation R it
// obtains the calibrated optimizer parameters P(R) — directly from the
// calibrator, or by interpolating a pre-computed grid — and sums the
// optimizer's estimated execution times of the workload's queries planned
// under P(R). Nothing is executed.
type WhatIfModel struct {
	// Cal calibrates on demand; used when Grid is nil or misses.
	Cal *calibration.Calibrator
	// Grid, if set, answers allocations by trilinear interpolation,
	// avoiding new calibration experiments (the paper's §7 refinement).
	Grid *calibration.Grid
	// NoPrepare disables the prepared-statement cache, re-parsing,
	// re-binding, and re-enumerating every statement on every call — the
	// pre-memoization behavior, kept as the cold baseline for benchmarks
	// and differential tests.
	NoPrepare bool

	prepOnce sync.Once
	prep     *stmtCache
}

// prepared returns the model's statement cache, creating it lazily so the
// zero value (and composite-literal construction) keeps working.
func (m *WhatIfModel) prepared() *stmtCache {
	m.prepOnce.Do(func() { m.prep = newStmtCache() })
	return m.prep
}

// Name implements CostModel.
func (m *WhatIfModel) Name() string {
	if m.Grid != nil {
		return "whatif-grid"
	}
	return "whatif"
}

// params obtains P(R).
func (m *WhatIfModel) params(ctx context.Context, shares vm.Shares) (optimizer.Params, error) {
	if m.Grid != nil {
		if p, ok := m.Grid.Lookup(shares); ok {
			return p, nil
		}
		return m.Grid.Interpolate(shares), nil
	}
	if m.Cal == nil {
		return optimizer.Params{}, fmt.Errorf("core: WhatIfModel has neither grid nor calibrator")
	}
	return m.Cal.Calibrate(ctx, shares)
}

// Cost implements CostModel.
func (m *WhatIfModel) Cost(ctx context.Context, w *WorkloadSpec, shares vm.Shares) (float64, error) {
	mWhatIfCalls.Inc()
	p, err := m.params(ctx, shares)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, stmt := range w.Statements {
		var est float64
		if m.NoPrepare {
			est, err = estimateStatement(w.DB, stmt, p)
		} else {
			est, err = m.estimatePrepared(w.DB, stmt, p)
		}
		if err != nil {
			return 0, fmt.Errorf("core: workload %s: %w", w.Name, err)
		}
		total += est
	}
	return total, nil
}

// estimatePrepared is the memoized counterpart of estimateStatement: the
// statement's parse, bind, and plan space are cached across calls (and
// across allocations), so pricing it under a new P is usually a re-cost
// of the recorded plan tree rather than a fresh enumeration.
func (m *WhatIfModel) estimatePrepared(db *engine.Database, stmt string, p optimizer.Params) (float64, error) {
	pq, err := m.prepared().prepared(db, stmt)
	if err != nil {
		return 0, err
	}
	pl, err := pq.Optimize(p)
	if err != nil {
		return 0, err
	}
	return pl.EstimatedSeconds(), nil
}

// estimateStatement plans one SELECT under P and returns its estimated
// seconds. Non-SELECT statements are rejected: design-time workloads are
// query workloads, as in the paper.
func estimateStatement(db *engine.Database, stmt string, p optimizer.Params) (float64, error) {
	if !strings.HasPrefix(strings.TrimSpace(strings.ToUpper(stmt)), "SELECT") {
		return 0, fmt.Errorf("only SELECT statements can be cost-estimated, got %q", truncateSQL(NormalizeSQL(stmt)))
	}
	sel, err := sql.ParseSelect(stmt)
	if err != nil {
		return 0, err
	}
	q, err := plan.Bind(sel, db.Catalog)
	if err != nil {
		return 0, err
	}
	pl, err := optimizer.Optimize(q, p)
	if err != nil {
		return 0, err
	}
	return pl.EstimatedSeconds(), nil
}

// MeasuredModel is the oracle cost model: it actually runs the workload
// in a freshly provisioned VM at the candidate allocation and reports the
// simulated elapsed time. It is far more expensive than the what-if model
// and exists to validate it (and as the measurement harness for the
// paper's "actual" bars).
type MeasuredModel struct {
	Machine vm.MachineConfig
	Engine  engine.Config
	// Warmup runs the workload once before measuring, as the paper does
	// by including multiple query copies.
	Warmup bool
}

// Name implements CostModel.
func (m *MeasuredModel) Name() string { return "measured" }

// Cost implements CostModel.
func (m *MeasuredModel) Cost(ctx context.Context, w *WorkloadSpec, shares vm.Shares) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	machine, err := vm.NewMachine(m.Machine)
	if err != nil {
		return 0, err
	}
	v, err := machine.NewVM(w.Name, shares)
	if err != nil {
		return 0, err
	}
	sess, err := engine.NewSession(w.DB, v, m.Engine)
	if err != nil {
		return 0, err
	}
	if m.Warmup {
		if _, err := sess.RunWorkload(w.Statements); err != nil {
			return 0, err
		}
	}
	return sess.RunWorkload(w.Statements)
}

// ProfiledModel is a simple baseline: it profiles the workload once at a
// reference allocation, recording its CPU and I/O seconds, and predicts
// other allocations by rescaling each component by the ratio of effective
// resource rates. It captures first-order sensitivity but is blind to
// plan changes, caching effects, and spills — the things the optimizer's
// what-if mode models.
type ProfiledModel struct {
	Machine   vm.MachineConfig
	Engine    engine.Config
	Reference vm.Shares

	profiles map[*WorkloadSpec]vm.Usage
}

// Name implements CostModel.
func (m *ProfiledModel) Name() string { return "profiled" }

// profile measures the workload once at the reference allocation.
func (m *ProfiledModel) profile(w *WorkloadSpec) (vm.Usage, error) {
	if m.profiles == nil {
		m.profiles = make(map[*WorkloadSpec]vm.Usage)
	}
	if u, ok := m.profiles[w]; ok {
		return u, nil
	}
	machine, err := vm.NewMachine(m.Machine)
	if err != nil {
		return vm.Usage{}, err
	}
	v, err := machine.NewVM(w.Name, m.Reference)
	if err != nil {
		return vm.Usage{}, err
	}
	sess, err := engine.NewSession(w.DB, v, m.Engine)
	if err != nil {
		return vm.Usage{}, err
	}
	// Warm then measure, matching the measured model's protocol.
	if _, err := sess.RunWorkload(w.Statements); err != nil {
		return vm.Usage{}, err
	}
	start := v.Snapshot()
	if _, err := sess.RunWorkload(w.Statements); err != nil {
		return vm.Usage{}, err
	}
	u := v.Since(start)
	m.profiles[w] = u
	return u, nil
}

// Cost implements CostModel.
func (m *ProfiledModel) Cost(ctx context.Context, w *WorkloadSpec, shares vm.Shares) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	u, err := m.profile(w)
	if err != nil {
		return 0, err
	}
	// Rescale CPU and I/O seconds by effective-rate ratios, then blend
	// with the machine's overlap model.
	refCPU := effCPURate(m.Machine, m.Reference.CPU)
	newCPU := effCPURate(m.Machine, shares.CPU)
	cpuSec := u.CPUSeconds * refCPU / newCPU
	ioSec := u.IOSeconds * m.Reference.IO / shares.IO
	lo := cpuSec
	if ioSec < lo {
		lo = ioSec
	}
	return cpuSec + ioSec - m.Machine.Overlap*lo, nil
}

func effCPURate(cfg vm.MachineConfig, share float64) float64 {
	return cfg.CPUOpsPerSec * share * (1 - cfg.SchedOverhead*(1-share))
}
