package core

import (
	"fmt"
	"strings"
	"sync"

	"dbvirt/internal/engine"
	"dbvirt/internal/obs"
	"dbvirt/internal/optimizer"
	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
)

var (
	mPreparedHit  = obs.Global.Counter("core.prepared.hit")
	mPreparedMiss = obs.Global.Counter("core.prepared.miss")
)

// NormalizeSQL canonicalizes statement text for cache identity: runs of
// whitespace outside single-quoted literals collapse to one space, "--"
// line comments are removed (the lexer skips them, so they carry no parse
// meaning), and surrounding whitespace and trailing semicolons are
// dropped. Two statements normalizing equal parse and bind identically,
// so — unlike the old first-words keying — the normalized text is a
// collision-free cache key. The function is idempotent:
// NormalizeSQL(NormalizeSQL(s)) == NormalizeSQL(s).
//
// Comment removal is load-bearing, not cosmetic: collapsing the newline
// that terminates a "-- ..." comment into a space would splice the rest
// of the statement into the comment, so the normalized text would parse
// differently from the original. Deleting the comment (as whitespace)
// keeps the token stream identical to the lexer's view of the input.
func NormalizeSQL(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			b.WriteByte(c)
			if c == '\'' {
				if i+1 < len(s) && s[i+1] == '\'' {
					b.WriteByte('\'') // doubled quote stays inside the literal
					i++
				} else {
					inStr = false
				}
			}
			continue
		}
		if c == '-' && i+1 < len(s) && s[i+1] == '-' {
			// Line comment: skip to (not past) the terminating newline,
			// which the next iteration folds into pending whitespace.
			for i < len(s) && s[i] != '\n' {
				i++
			}
			i--
			pendingSpace = true
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			pendingSpace = true
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			if c == '\'' {
				inStr = true
			}
			b.WriteByte(c)
		}
	}
	out := b.String()
	// Strip any run of trailing semicolons and the spaces between them, so
	// "SELECT 1 ; ;" and "SELECT 1" key identically and normalization is a
	// fixed point.
	for {
		t := strings.TrimRight(out, " ")
		t = strings.TrimSuffix(t, ";")
		if t == out {
			return out
		}
		out = t
	}
}

// truncateSQL shortens statement text for error messages.
func truncateSQL(s string) string {
	const max = 60
	if len(s) <= max {
		return s
	}
	return s[:max] + "..."
}

// stmtKey identifies one prepared statement: the database it binds
// against plus its normalized text. The catalog version is checked on
// every lookup rather than baked into the key so stale entries are
// replaced instead of accumulating.
type stmtKey struct {
	db  *engine.Database
	sql string
}

type stmtEntry struct {
	version uint64
	pq      *optimizer.PreparedQuery
	err     error
}

// stmtCache is the per-model prepared-statement cache: each statement is
// parsed, bound, and plan-space-prepared once per catalog version, then
// shared by every allocation the what-if model prices — including
// concurrent solver workers.
type stmtCache struct {
	mu      sync.RWMutex
	entries map[stmtKey]*stmtEntry
}

func newStmtCache() *stmtCache {
	return &stmtCache{entries: make(map[stmtKey]*stmtEntry)}
}

// prepared returns the cached PreparedQuery for the statement, preparing
// it on first use or when the database catalog has changed since. Parse
// and bind errors are cached too: a statement that cannot be prepared
// fails every allocation identically.
func (c *stmtCache) prepared(db *engine.Database, stmt string) (*optimizer.PreparedQuery, error) {
	norm := NormalizeSQL(stmt)
	if !strings.HasPrefix(strings.ToUpper(norm), "SELECT") {
		return nil, fmt.Errorf("only SELECT statements can be cost-estimated, got %q", truncateSQL(norm))
	}
	key := stmtKey{db: db, sql: norm}
	ver := db.Catalog.Version()
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	if e != nil && e.version == ver {
		mPreparedHit.Inc()
		return e.pq, e.err
	}
	mPreparedMiss.Inc()
	entry := &stmtEntry{version: ver}
	if sel, err := sql.ParseSelect(norm); err != nil {
		entry.err = err
	} else if q, err := plan.Bind(sel, db.Catalog); err != nil {
		entry.err = err
	} else {
		entry.pq = optimizer.Prepare(q)
	}
	c.mu.Lock()
	if cur := c.entries[key]; cur != nil && cur.version == ver {
		// Lost a prepare race; keep the winner so all callers share one
		// plan-space memo.
		entry = cur
	} else {
		c.entries[key] = entry
	}
	c.mu.Unlock()
	return entry.pq, entry.err
}
