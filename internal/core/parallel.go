package core

import (
	"sync"
	"sync/atomic"
)

// parallelFor invokes body(worker, i) for every i in [0, n), distributing
// indices over at most `workers` goroutines through a shared counter. With
// one worker (or one index) it degenerates to a plain loop with zero
// goroutine overhead. body must confine its writes to worker-private or
// index-private state; determinism is then the caller's responsibility —
// the convention throughout this package is to write results into
// pre-indexed slots (or per-worker bests) and merge them in index order
// afterwards, so the outcome is independent of goroutine scheduling.
func parallelFor(workers, n int, body func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(w, i)
			}
		}(w)
	}
	wg.Wait()
}
