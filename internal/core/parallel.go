package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// ParallelFor invokes body(worker, i) for every i in [0, n), distributing
// indices over at most `workers` goroutines through a shared counter. With
// one worker (or one index) it degenerates to a plain loop with zero
// goroutine overhead. body must confine its writes to worker-private or
// index-private state; determinism is then the caller's responsibility —
// the convention throughout this package (and in internal/placement,
// which fans per-machine solves out over the same pool) is to write
// results into pre-indexed slots (or per-worker bests) and merge them in
// index order afterwards, so the outcome is independent of goroutine
// scheduling.
//
// Failure semantics: the first body error (or panic, which is recovered
// and converted to an error) cancels all dispatch, so no new indices start
// after a failure — workers drain promptly instead of grinding through
// the remaining work. Of the failures actually observed before
// cancellation propagated, the one with the smallest index is returned;
// on a successful sweep a cancelled ctx returns ctx.Err(). All spawned
// goroutines have exited by the time ParallelFor returns.
func ParallelFor(ctx context.Context, workers, n int, body func(worker, i int) error) error {
	if workers > n {
		workers = n
	}
	run := func(w, i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("core: panic evaluating candidate %d: %v", i, r)
			}
		}()
		return body(w, i)
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	var wg sync.WaitGroup
	errVals := make([]error, workers)
	errIdxs := make([]int, workers)
	for w := 0; w < workers; w++ {
		errIdxs[w] = n
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(w, i); err != nil {
					errVals[w] = err
					errIdxs[w] = i
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	best := -1
	for w := range errVals {
		if errVals[w] != nil && (best < 0 || errIdxs[w] < errIdxs[best]) {
			best = w
		}
	}
	if best >= 0 {
		return errVals[best]
	}
	return ctx.Err()
}
