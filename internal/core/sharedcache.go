package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dbvirt/internal/obs"
	"dbvirt/internal/vm"
)

// Shared-cache metrics: the cross-solve analogue of the core.cache.*
// counters. A shared hit means some earlier solve or request already paid
// for the cost-model call.
var (
	mSharedHit    = obs.Global.Counter("core.shared.hit")
	mSharedMiss   = obs.Global.Counter("core.shared.miss")
	mSharedInWait = obs.Global.Counter("core.shared.inflight_wait")
)

// SharedCostModel wraps a CostModel with a process-lifetime, concurrency-
// safe memo so identical (workload, shares) evaluations are computed once
// across every solve and request that shares the wrapper — the serving-
// side extension of the per-solve cost cache. An in-flight computation is
// joined singleflight-style rather than repeated, so concurrent callers
// racing on the same key coalesce onto one model invocation. Errors are
// not cached (a failed computation may be retried later), panics in the
// inner model are converted to errors, and a waiter whose ctx is
// cancelled stops waiting while the computation it joined continues for
// the others.
//
// Because the memo only ever returns values the inner model produced for
// the same key, a deterministic inner model stays deterministic through
// the wrapper: results are bit-identical whether a lookup hits, joins, or
// computes. Solvers layer their own per-solve cache on top; their
// Result.Evaluations then counts invocations of the shared model, whose
// misses alone reach the inner model.
type SharedCostModel struct {
	inner  CostModel
	keyFn  func(*WorkloadSpec) string
	shards [cacheShards]sharedShard
}

type sharedShard struct {
	mu      sync.Mutex
	entries map[sharedKey]*costEntry
}

// sharedKey identifies one memo slot: the caller-scoped workload identity
// plus the quantized shares.
type sharedKey struct {
	wk  string
	key [3]int64
}

// shard hashes the key onto a lock shard (FNV-1a over the workload key,
// then the same mixing as memoKey).
func (k sharedKey) shard() int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.wk); i++ {
		h = (h ^ uint64(k.wk[i])) * 1099511628211
	}
	for _, v := range k.key {
		h = (h ^ uint64(v)) * 1099511628211
	}
	return int(h % cacheShards)
}

// NewSharedCostModel wraps inner with a shared memo. key maps a workload
// spec to its cache identity; workloads whose keys are equal MUST price
// identically under the inner model (same statements against the same
// database), or the cache will serve one workload's costs for another.
// A nil key falls back to pointer identity, which is always sound but
// only coalesces callers that share *WorkloadSpec values (interned specs,
// as the server's registry hands out).
func NewSharedCostModel(inner CostModel, key func(*WorkloadSpec) string) *SharedCostModel {
	if key == nil {
		key = func(w *WorkloadSpec) string { return fmt.Sprintf("%p", w) }
	}
	m := &SharedCostModel{inner: inner, keyFn: key}
	for i := range m.shards {
		m.shards[i].entries = make(map[sharedKey]*costEntry)
	}
	return m
}

// Name implements CostModel; the wrapper is transparent in reports.
func (m *SharedCostModel) Name() string { return m.inner.Name() }

// Cost implements CostModel with at-most-once evaluation per distinct
// (workload key, quantized shares) pair.
func (m *SharedCostModel) Cost(ctx context.Context, w *WorkloadSpec, shares vm.Shares) (float64, error) {
	k := sharedKey{wk: m.keyFn(w), key: quantizeShares(shares)}
	sh := &m.shards[k.shard()]
	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		sh.mu.Unlock()
		mSharedHit.Inc()
		select {
		case <-e.done:
		default:
			mSharedInWait.Inc()
			select {
			case <-e.done:
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		return e.val, e.err
	}
	e := &costEntry{done: make(chan struct{})}
	sh.entries[k] = e
	sh.mu.Unlock()

	start := time.Now()
	func() {
		// Mirror costCache.Cost: finalize the entry even if the inner model
		// panics, and drop failed entries so a later call may retry.
		defer func() {
			if r := recover(); r != nil {
				e.val, e.err = 0, fmt.Errorf("core: cost model %s panicked: %v", m.inner.Name(), r)
			}
			if e.err == nil {
				mSharedMiss.Inc()
				hEvalSeconds.ObserveSince(start)
			}
			close(e.done)
			if e.err != nil {
				sh.mu.Lock()
				delete(sh.entries, k)
				sh.mu.Unlock()
			}
		}()
		e.val, e.err = m.inner.Cost(ctx, w, shares)
	}()
	return e.val, e.err
}

// Len reports the number of cached entries (for tests and the server's
// stats surface); it is O(shards) plus map sizes.
func (m *SharedCostModel) Len() int {
	n := 0
	for i := range m.shards {
		m.shards[i].mu.Lock()
		n += len(m.shards[i].entries)
		m.shards[i].mu.Unlock()
	}
	return n
}
