package core

import (
	"context"
	"testing"

	"dbvirt/internal/calibration"
	"dbvirt/internal/engine"
	"dbvirt/internal/vm"
	"dbvirt/internal/workload"
)

// integrationEnv builds two small workload databases (an I/O-bound Q4
// workload and a CPU-bound Q13 workload) on a scaled-down machine.
func integrationEnv(t *testing.T) (vm.MachineConfig, []*WorkloadSpec) {
	t.Helper()
	cfg := vm.DefaultMachineConfig()
	cfg.MemBytes = 16 << 20

	buildDB := func(name string) *engine.Database {
		m := vm.MustMachine(cfg)
		loader, err := m.NewVM(name+"-loader", vm.Shares{CPU: 1, Memory: 1, IO: 1})
		if err != nil {
			t.Fatal(err)
		}
		db := engine.NewDatabase()
		s, err := engine.NewSession(db, loader, engine.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.Build(s, workload.SmallScale(), 7); err != nil {
			t.Fatal(err)
		}
		return db
	}

	specs := []*WorkloadSpec{
		{
			Name:       "io-q4",
			Statements: workload.Repeat("q4", workload.Query("Q4"), 1).Statements,
			DB:         buildDB("q4"),
		},
		{
			Name:       "cpu-q13",
			Statements: workload.Repeat("q13", workload.Query("Q13"), 3).Statements,
			DB:         buildDB("q13"),
		},
	}
	return cfg, specs
}

func TestWhatIfModelEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	machineCfg, specs := integrationEnv(t)

	calCfg := calibration.DefaultConfig()
	calCfg.Machine = machineCfg
	calCfg.NarrowRows = 4000
	calCfg.BigRows = 36000
	model := &WhatIfModel{Cal: calibration.New(calCfg)}

	p := &Problem{
		Workloads: specs,
		Resources: []vm.Resource{vm.CPU},
		Step:      0.25,
	}
	res, err := SolveDP(context.Background(), p, model)
	if err != nil {
		t.Fatal(err)
	}
	// The what-if search must shift CPU from the I/O-bound Q4 workload to
	// the CPU-bound Q13 workload — the paper's headline decision.
	if res.Allocation[1].CPU <= res.Allocation[0].CPU {
		t.Errorf("Q13 should receive more CPU than Q4: %v", res.Allocation)
	}

	// Validate with actual (simulated) execution: the chosen allocation
	// must not be worse than equal shares in measured total time.
	engCfg := engine.DefaultConfig()
	chosen, err := MeasureAllocation(machineCfg, engCfg, specs, res.Allocation, true)
	if err != nil {
		t.Fatal(err)
	}
	equal, err := MeasureAllocation(machineCfg, engCfg, specs, EqualAllocation(2), true)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(v []float64) float64 { return v[0] + v[1] }
	if sum(chosen) > sum(equal)*1.05 {
		t.Errorf("chosen allocation measured %.3fs, equal %.3fs — what-if decision hurt",
			sum(chosen), sum(equal))
	}
	// And the Q13 workload specifically must improve.
	if chosen[1] >= equal[1] {
		t.Errorf("Q13 workload should improve: chosen %.3fs vs equal %.3fs", chosen[1], equal[1])
	}
}

func TestMeasuredAndProfiledModels(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	machineCfg, specs := integrationEnv(t)
	engCfg := engine.DefaultConfig()

	measured := &MeasuredModel{Machine: machineCfg, Engine: engCfg, Warmup: true}
	q13 := specs[1]
	cLow, err := measured.Cost(context.Background(), q13, vm.Shares{CPU: 0.25, Memory: 0.5, IO: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cHigh, err := measured.Cost(context.Background(), q13, vm.Shares{CPU: 0.75, Memory: 0.5, IO: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if cLow <= cHigh {
		t.Errorf("CPU-bound workload should slow down at low CPU: %.3f vs %.3f", cLow, cHigh)
	}

	profiled := &ProfiledModel{
		Machine: machineCfg, Engine: engCfg,
		Reference: vm.Shares{CPU: 0.5, Memory: 0.5, IO: 0.5},
	}
	pLow, err := profiled.Cost(context.Background(), q13, vm.Shares{CPU: 0.25, Memory: 0.5, IO: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pHigh, err := profiled.Cost(context.Background(), q13, vm.Shares{CPU: 0.75, Memory: 0.5, IO: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if pLow <= pHigh {
		t.Errorf("profiled model should track CPU sensitivity: %.3f vs %.3f", pLow, pHigh)
	}
	// The profiled prediction at the reference point equals the profile
	// measurement (sanity of the rescaling).
	pRef, err := profiled.Cost(context.Background(), q13, profiled.Reference)
	if err != nil {
		t.Fatal(err)
	}
	mRef, err := measured.Cost(context.Background(), q13, profiled.Reference)
	if err != nil {
		t.Fatal(err)
	}
	rel := (pRef - mRef) / mRef
	if rel < -0.3 || rel > 0.3 {
		t.Errorf("profiled reference %.3fs vs measured %.3fs", pRef, mRef)
	}
}

func TestWhatIfModelRejectsNonSelect(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	machineCfg, specs := integrationEnv(t)
	calCfg := calibration.DefaultConfig()
	calCfg.Machine = machineCfg
	calCfg.NarrowRows = 2000
	calCfg.BigRows = 36000
	model := &WhatIfModel{Cal: calibration.New(calCfg)}
	bad := &WorkloadSpec{
		Name:       "ddl",
		Statements: []string{"INSERT INTO t VALUES (1)"},
		DB:         specs[0].DB,
	}
	if _, err := model.Cost(context.Background(), bad, vm.Equal(2)); err == nil {
		t.Error("non-SELECT workload should be rejected by the what-if model")
	}
}

func TestWhatIfModelRequiresSource(t *testing.T) {
	m := &WhatIfModel{}
	if _, err := m.Cost(context.Background(), &WorkloadSpec{Name: "x"}, vm.Equal(2)); err == nil {
		t.Error("model without grid or calibrator should fail")
	}
}

func TestDeployOverCommitRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	machineCfg, specs := integrationEnv(t)
	over := Allocation{
		vm.Shares{CPU: 0.75, Memory: 0.5, IO: 0.5},
		vm.Shares{CPU: 0.75, Memory: 0.5, IO: 0.5},
	}
	if _, err := Deploy(machineCfg, engine.DefaultConfig(), specs, over); err == nil {
		t.Error("over-committed allocation must be rejected")
	}
	if _, err := Deploy(machineCfg, engine.DefaultConfig(), specs, EqualAllocation(1)); err == nil {
		t.Error("length mismatch must be rejected")
	}
}
