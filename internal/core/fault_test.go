package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"dbvirt/internal/vm"
)

// slowModel blocks per evaluation so a search is reliably in flight when
// the test cancels it.
type slowModel struct{ delay time.Duration }

func (m *slowModel) Name() string { return "slow" }
func (m *slowModel) Cost(ctx context.Context, w *WorkloadSpec, s vm.Shares) (float64, error) {
	select {
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-time.After(m.delay):
	}
	return 1 / (s.CPU + 0.1), nil
}

// TestSolveCancelledMidSearch cancels an exhaustive search mid-sweep and
// requires a prompt context.Canceled return with all worker goroutines
// joined.
func TestSolveCancelledMidSearch(t *testing.T) {
	specs := fakeSpecs("a", "b", "c")
	p := &Problem{
		Workloads:   specs,
		Resources:   []vm.Resource{vm.CPU, vm.IO},
		Step:        0.05,
		Parallelism: 4,
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := SolveExhaustive(ctx, p, &slowModel{delay: 2 * time.Millisecond})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveExhaustive error = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("cancellation took %v; want a prompt return", el)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, g)
	}
}

// TestSolveDeadlineExceeded runs a search under an already-expired
// deadline; every solver must refuse immediately.
func TestSolveDeadlineExceeded(t *testing.T) {
	specs := fakeSpecs("a", "b")
	p := &Problem{Workloads: specs, Resources: []vm.Resource{vm.CPU}, Step: 0.25}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for name, solve := range map[string]func(context.Context, *Problem, CostModel) (*Result, error){
		"exhaustive": SolveExhaustive,
		"greedy":     SolveGreedy,
		"dp":         SolveDP,
	} {
		if _, err := solve(ctx, p, &slowModel{delay: time.Millisecond}); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: error = %v, want context.DeadlineExceeded", name, err)
		}
	}
}

// panicModel panics on a subset of allocations, standing in for a cost
// model bug; solvers must surface an error, not crash the process.
type panicModel struct{}

func (m *panicModel) Name() string { return "panicky" }
func (m *panicModel) Cost(_ context.Context, w *WorkloadSpec, s vm.Shares) (float64, error) {
	if s.CPU > 0.5 {
		panic("injected cost-model panic")
	}
	return 1 / (s.CPU + 0.1), nil
}

// TestSolvePanicRecovered checks that a panic inside the cost model is
// converted into a search error at any parallelism.
func TestSolvePanicRecovered(t *testing.T) {
	specs := fakeSpecs("a", "b")
	for _, j := range []int{1, 4} {
		p := &Problem{Workloads: specs, Resources: []vm.Resource{vm.CPU}, Step: 0.25, Parallelism: j}
		for name, solve := range map[string]func(context.Context, *Problem, CostModel) (*Result, error){
			"exhaustive": SolveExhaustive,
			"greedy":     SolveGreedy,
		} {
			_, err := solve(context.Background(), p, &panicModel{})
			if err == nil {
				t.Fatalf("%s j=%d: search succeeded despite a panicking model", name, j)
			}
			if !strings.Contains(err.Error(), "panic") {
				t.Fatalf("%s j=%d: error %q does not mention the recovered panic", name, j, err)
			}
		}
	}
}
