package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dbvirt/internal/obs"
)

// Job states. A job is terminal in done, failed, or canceled.
const (
	jobQueued   = "queued"
	jobRunning  = "running"
	jobDone     = "done"
	jobFailed   = "failed"
	jobCanceled = "canceled"
)

var (
	// ErrQueueFull rejects a submission when the bounded job queue is at
	// capacity — the admission-control signal mapped to 429.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining rejects a submission once drain has begun.
	ErrDraining = errors.New("server: draining, not accepting new jobs")
)

var (
	mJobsSubmitted = obs.Global.Counter("server.jobs.submitted")
	mJobsCompleted = obs.Global.Counter("server.jobs.completed")
	mJobsFailed    = obs.Global.Counter("server.jobs.failed")
	mJobsCanceled  = obs.Global.Counter("server.jobs.canceled")
	mJobsRejected  = obs.Global.Counter("server.jobs.rejected")
	gJobQueueDepth = obs.Global.Gauge("server.jobs.queue.depth")
	hJobSeconds    = obs.Global.Histogram("server.jobs.seconds")
)

// job is one asynchronous solve. Mutable fields are guarded by mu; done
// closes when the job reaches a terminal state.
type job struct {
	id  string
	req SolveRequest
	sc  obs.SpanContext // submitting request's trace context

	mu     sync.Mutex
	state  string
	result *SolveResult
	errMsg string
	cancel context.CancelFunc // non-nil once running

	done chan struct{}
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{ID: j.id, State: j.state, Result: j.result, Error: j.errMsg}
}

// finish moves the job to a terminal state exactly once.
func (j *job) finish(state string, res *SolveResult, errMsg string) {
	j.mu.Lock()
	if j.state == jobDone || j.state == jobFailed || j.state == jobCanceled {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.mu.Unlock()
	switch state {
	case jobDone:
		mJobsCompleted.Inc()
	case jobFailed:
		mJobsFailed.Inc()
	case jobCanceled:
		mJobsCanceled.Inc()
	}
	close(j.done)
}

// jobManager runs solve jobs on a bounded worker pool behind a bounded
// queue. Admission control is by construction: a full queue rejects with
// ErrQueueFull instead of queueing unbounded work, and once draining no
// new jobs are accepted while every accepted job still runs to
// completion — an accepted 202 is a promise the daemon keeps.
type jobManager struct {
	run func(ctx context.Context, j *job) (*SolveResult, error)

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for bounded retention
	queue    chan *job
	draining bool
	seq      int64
	maxJobs  int

	workers sync.WaitGroup
	// baseCtx parents every job's context; baseCancel aborts running jobs
	// if a drain deadline expires.
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

func newJobManager(workers, queueCap, maxJobs int, run func(ctx context.Context, j *job) (*SolveResult, error)) *jobManager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &jobManager{
		run:        run,
		jobs:       make(map[string]*job),
		queue:      make(chan *job, queueCap),
		maxJobs:    maxJobs,
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	for i := 0; i < workers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	return m
}

func (m *jobManager) worker() {
	defer m.workers.Done()
	for j := range m.queue {
		gJobQueueDepth.Set(float64(len(m.queue)))
		m.execute(j)
	}
}

func (m *jobManager) execute(j *job) {
	j.mu.Lock()
	if j.state != jobQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	if j.req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx, time.Duration(j.req.TimeoutMS)*time.Millisecond)
	}
	j.state = jobRunning
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	start := time.Now()
	res, err := m.run(ctx, j)
	hJobSeconds.ObserveSince(start)
	switch {
	case err == nil:
		j.finish(jobDone, res, "")
	case errors.Is(err, context.Canceled):
		j.finish(jobCanceled, nil, "canceled")
	default:
		j.finish(jobFailed, nil, err.Error())
	}
}

// submit queues one job, enforcing drain and queue bounds. sc is the
// submitting request's trace context, carried across the async boundary.
func (m *jobManager) submit(req SolveRequest, sc obs.SpanContext) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	m.seq++
	j := &job{
		id:    fmt.Sprintf("j-%d", m.seq),
		req:   req,
		sc:    sc,
		state: jobQueued,
		done:  make(chan struct{}),
	}
	select {
	case m.queue <- j:
	default:
		mJobsRejected.Inc()
		return nil, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.evictLocked()
	mJobsSubmitted.Inc()
	gJobQueueDepth.Set(float64(len(m.queue)))
	return j, nil
}

// evictLocked drops the oldest terminal jobs beyond the retention cap so
// a long-running daemon's job table stays bounded. Queued and running
// jobs are never evicted.
func (m *jobManager) evictLocked() {
	if m.maxJobs <= 0 || len(m.jobs) <= m.maxJobs {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if j == nil {
			continue
		}
		if len(m.jobs) > m.maxJobs {
			j.mu.Lock()
			terminal := j.state == jobDone || j.state == jobFailed || j.state == jobCanceled
			j.mu.Unlock()
			if terminal {
				delete(m.jobs, id)
				continue
			}
		}
		kept = append(kept, id)
	}
	m.order = append([]string(nil), kept...)
}

// get returns the job by ID.
func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// cancelJob cancels a queued or running job; terminal jobs are left
// untouched. It reports whether the job exists.
func (m *jobManager) cancelJob(id string) (JobStatus, bool) {
	j, ok := m.get(id)
	if !ok {
		return JobStatus{}, false
	}
	j.mu.Lock()
	switch j.state {
	case jobQueued:
		j.state = jobCanceled
		j.errMsg = "canceled"
		j.mu.Unlock()
		mJobsCanceled.Inc()
		close(j.done)
	case jobRunning:
		cancel := j.cancel
		j.mu.Unlock()
		cancel() // the worker observes ctx.Canceled and finishes the job
	default:
		j.mu.Unlock()
	}
	return j.status(), true
}

// drain stops accepting new jobs and waits for every accepted job to
// reach a terminal state. If ctx expires first, running jobs are
// canceled (they finish as canceled, not dropped) and ctx's error is
// returned after the workers exit.
func (m *jobManager) drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-idle // workers unwind promptly once their contexts die
		return ctx.Err()
	}
}
