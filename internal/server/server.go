package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dbvirt/internal/autotune"
	"dbvirt/internal/calibration"
	"dbvirt/internal/core"
	"dbvirt/internal/experiments"
	"dbvirt/internal/obs"
	"dbvirt/internal/optimizer"
	"dbvirt/internal/telemetry"
	"dbvirt/internal/vm"
	"dbvirt/internal/workload"
)

var (
	mAdmissionReject = obs.Global.Counter("server.admission.rejected")
	mDrainStarted    = obs.Global.Counter("server.drain.started")
	gInflight        = obs.Global.Gauge("server.http.inflight")
	gQueueDepth      = obs.Global.Gauge("server.queue.depth")
)

// Config parameterizes a Server. The zero value is completed by New with
// the defaults noted per field.
type Config struct {
	// Scale selects the workload database scale: "tiny", "small", or
	// "experiment" (default "small"). Ignored when Env is set.
	Scale string
	// Env overrides the experiment environment (tests inject a prebuilt
	// one so several servers share databases).
	Env *experiments.Env
	// Grid answers calibration lookups and backs the default what-if
	// model. Required unless both Model is set and /v1/calibration/grid
	// may 404.
	Grid *calibration.Grid
	// Model overrides the cost model (tests inject slow or failing
	// models). Default: a SharedCostModel over WhatIfModel{Grid}.
	Model core.CostModel
	// MaxInflight bounds concurrently executing what-if sweeps (leaders
	// only — coalesced joiners don't hold slots). Default GOMAXPROCS.
	MaxInflight int
	// MaxQueue bounds sweeps waiting for a slot; beyond it requests are
	// rejected with 429. Default 4*MaxInflight.
	MaxQueue int
	// JobWorkers is the solve worker-pool size (default 2).
	JobWorkers int
	// JobQueue bounds queued-but-not-running solve jobs (default 16);
	// beyond it submissions are rejected with 429.
	JobQueue int
	// MaxJobs bounds the retained job table; oldest terminal jobs are
	// evicted first (default 1024).
	MaxJobs int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default 30s); MaxTimeout caps what a request may ask for
	// (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s,
	// rounded up to whole seconds).
	RetryAfter time.Duration
	// CoalesceMemo bounds the completed-sweep memo (default 256 entries;
	// negative disables memoization, keeping only in-flight coalescing).
	CoalesceMemo int
	// Parallelism is handed to the solvers and the environment; 0 means
	// GOMAXPROCS.
	Parallelism int
	// Obs receives spans and logs; nil disables both (metrics are always
	// recorded against the process-global registry).
	Obs *obs.Telemetry
	// Telemetry is the per-tenant workload-telemetry hub fed by every
	// what-if request. Default: a hub with default sketch/drift parameters
	// over the global registry.
	Telemetry *telemetry.Hub
	// RequestWindow is the total span of the sliding-window request
	// latency histogram exposed as server.http.window.seconds (default
	// 60s, split into 6 slots).
	RequestWindow time.Duration
	// Autotune, when set, runs the closed-loop autotuner over a managed
	// deployment of the named workloads (see AutotuneOptions); nil leaves
	// the /v1/autotune endpoints answering 404.
	Autotune *AutotuneOptions
}

func (c *Config) applyDefaults() error {
	if c.Env == nil {
		switch c.Scale {
		case "", "small":
			c.Env = experiments.QuickEnv()
		case "tiny":
			c.Env = experiments.NewEnv(workload.TinyScale(), vm.DefaultMachineConfig())
		case "experiment":
			c.Env = experiments.DefaultEnv()
		default:
			return fmt.Errorf("server: unknown scale %q (want tiny, small, or experiment)", c.Scale)
		}
	}
	if c.Model == nil {
		if c.Grid == nil {
			return fmt.Errorf("server: need a calibration grid (or an explicit model)")
		}
		c.Model = core.NewSharedCostModel(&core.WhatIfModel{Grid: c.Grid}, specCacheKey)
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.JobQueue <= 0 {
		c.JobQueue = 16
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CoalesceMemo == 0 {
		c.CoalesceMemo = 256
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.NewHub(telemetry.Config{})
	}
	if c.RequestWindow <= 0 {
		c.RequestWindow = time.Minute
	}
	return nil
}

// specCacheKey is the shared cost memo's workload identity: the spec
// name is the interned canonical QUERYxN form, and specs live on
// per-query databases, so name + weight + SLO determines the cost.
func specCacheKey(w *core.WorkloadSpec) string {
	return fmt.Sprintf("%s|w=%.9f|slo=%.9f", w.Name, w.Weight, w.SLOSeconds)
}

// Server is the vdtuned daemon: handlers, shared session state, and the
// drain machinery. Create with New, expose via Handler, stop with Drain.
type Server struct {
	cfg     Config
	wl      *workloadSet
	col     *coalescer
	jobs    *jobManager
	lim     *limiter
	mux     *http.ServeMux
	started time.Time
	hWindow *obs.WindowedHistogram // sliding-window request latency

	// plCol coalesces identical in-flight placement solves only — no
	// completed-response memo, because a solve also replaces plState and
	// replaying stale bytes would desynchronize the two.
	plCol   *coalescer
	plState placementState

	// tuner is the closed-loop autotuner (nil unless Config.Autotune);
	// atStop cancels its background ticker, atDone closes when the ticker
	// goroutine has exited.
	tuner  *autotune.Loop
	atStop context.CancelFunc
	atDone chan struct{}

	draining atomic.Bool
	inflight sync.WaitGroup // tracked /v1/* requests, for drain
}

// New builds a Server from cfg (see Config for defaults).
func New(cfg Config) (*Server, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	cfg.Env.Parallelism = cfg.Parallelism
	if cfg.Env.Obs == nil {
		cfg.Env.Obs = cfg.Obs
	}
	s := &Server{
		cfg:     cfg,
		col:     newCoalescer(cfg.CoalesceMemo),
		plCol:   newCoalescer(-1),
		lim:     newLimiter(cfg.MaxInflight, cfg.MaxQueue),
		started: time.Now(),
		hWindow: obs.Global.Window("server.http.window.seconds", 6, cfg.RequestWindow/6),
	}
	s.wl = newWorkloadSet(cfg.Env)
	s.jobs = newJobManager(cfg.JobWorkers, cfg.JobQueue, cfg.MaxJobs, s.runSolve)
	if cfg.Autotune != nil {
		if err := s.initAutotune(cfg.Autotune); err != nil {
			return nil, err
		}
		if cfg.Autotune.Interval > 0 {
			ctx, cancel := context.WithCancel(context.Background())
			s.atStop = cancel
			s.atDone = make(chan struct{})
			go func() {
				defer close(s.atDone)
				s.tuner.Run(ctx, cfg.Autotune.Interval)
			}()
		}
	}
	s.routes()
	return s, nil
}

// Prewarm builds the databases and interned specs for the named queries
// ahead of traffic, so first requests don't pay the build.
func (s *Server) Prewarm(queries []string) error {
	for _, q := range queries {
		if _, err := s.wl.spec(WorkloadRef{Query: q}); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /v1/whatif", s.instrument("whatif", s.track(s.handleWhatIf)))
	s.mux.Handle("POST /v1/solve", s.instrument("solve", s.track(s.handleSolve)))
	s.mux.Handle("POST /v1/placement", s.instrument("placement", s.track(s.handlePlacement)))
	s.mux.Handle("POST /v1/placement/events", s.instrument("placement_events", s.track(s.handlePlacementEvents)))
	s.mux.Handle("GET /v1/jobs/{id}", s.instrument("jobs", s.handleJobGet))
	s.mux.Handle("DELETE /v1/jobs/{id}", s.instrument("jobs", s.track(s.handleJobCancel)))
	s.mux.Handle("GET /v1/calibration/grid", s.instrument("grid", s.handleGrid))
	s.mux.Handle("GET /v1/autotune/status", s.instrument("autotune_status", s.handleAutotuneStatus))
	s.mux.Handle("POST /v1/autotune/enable", s.instrument("autotune_toggle", s.track(s.handleAutotuneEnable)))
	s.mux.Handle("POST /v1/autotune/disable", s.instrument("autotune_toggle", s.track(s.handleAutotuneDisable)))
	s.mux.Handle("POST /v1/autotune/trigger", s.instrument("autotune_trigger", s.track(s.handleAutotuneTrigger)))
	s.mux.Handle("GET /healthz", http.HandlerFunc(s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", obs.HandleMetricsProm)
	s.mux.HandleFunc("GET /debug/metrics", obs.HandleMetricsJSON)
	s.mux.HandleFunc("GET /debug/flightrecorder", obs.HandleFlightRecorder)
	s.mux.HandleFunc("GET /debug/telemetry", s.handleTelemetry)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// statusWriter captures the response status code for the flight
// recorder; an unset code means an implicit 200 from the first Write.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps a handler with the per-endpoint latency histogram and
// request counter (server.http.<route>.seconds / .count), the
// process-wide in-flight gauge and sliding-window latency histogram, W3C
// trace-context propagation (an incoming traceparent header is continued
// with a fresh span ID; absent or malformed ones start a new trace; the
// request's identity is echoed in the response traceparent header), and
// a flight-recorder entry per completed request.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	count := obs.Global.Counter("server.http." + route + ".count")
	hist := obs.Global.Histogram("server.http." + route + ".seconds")
	var inflight atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		count.Inc()
		gInflight.Set(float64(inflight.Add(1)))

		sc, err := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if err != nil {
			sc = obs.NewSpanContext()
		} else {
			sc = sc.NewChild()
		}
		w.Header().Set("traceparent", sc.Traceparent())
		r = r.WithContext(obs.WithSpanContext(r.Context(), sc))
		sw := &statusWriter{ResponseWriter: w}

		start := time.Now()
		defer func() {
			dur := time.Since(start)
			hist.Observe(dur.Seconds())
			s.hWindow.Observe(dur.Seconds())
			gInflight.Set(float64(inflight.Add(-1)))
			obs.Flight.Record(obs.FlightRecord{
				Time:    start,
				TraceID: sc.TraceIDString(),
				SpanID:  sc.SpanIDString(),
				Method:  r.Method,
				Path:    r.URL.Path,
				Status:  sw.status(),
				Micros:  dur.Microseconds(),
			})
		}()
		h(sw, r)
	})
}

// track rejects work-accepting requests once draining and otherwise
// registers them with the drain wait group. Read-only endpoints (job
// polls, grid lookups, health, metrics) stay available during drain so
// clients can collect results.
func (s *Server) track(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "draining: not accepting new work")
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Done()
		h(w, r)
	}
}

// requestCtx derives the request's working context from its deadline
// parameters: timeoutMS if given (capped at MaxTimeout), else the server
// default. The HTTP request context is the parent, so a disconnected
// client cancels the work.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	var req WhatIfRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	sp := s.cfg.Obs.Span("server.whatif")
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		sc.Annotate(sp)
	}
	defer sp.End()

	body, err := s.col.do(ctx, req.coalesceKey(), func() ([]byte, error) {
		release, ok := s.lim.acquire(ctx)
		if !ok {
			return nil, errTooBusy
		}
		csp := sp.Child("server.whatif.compute")
		defer csp.End()
		defer release()
		return s.computeWhatIf(ctx, &req)
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	s.recordWhatIf(&req, body)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// tenantName maps one workload reference onto its telemetry tenant: the
// caller-chosen display name when given, else the canonical QUERYxN
// identity — so unnamed traffic still aggregates sensibly per query.
func tenantName(ref WorkloadRef) string {
	if n := strings.TrimSpace(ref.Name); n != "" {
		return n
	}
	n := ref.Repeat
	if n == 0 {
		n = 1
	}
	return fmt.Sprintf("%sx%d", strings.ToUpper(strings.TrimSpace(ref.Query)), n)
}

// recordWhatIf streams one answered what-if request into the per-tenant
// telemetry: every statement's normalized SQL into the workload sketch
// and the workload's predicted cost row into the reservoir. The response
// body is decoded rather than the freshly computed matrix so coalesced
// and memoized hits count as tenant traffic too — the body is a
// deterministic function of the request, so this is the same data the
// leader computed.
func (s *Server) recordWhatIf(req *WhatIfRequest, body []byte) {
	var resp WhatIfResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return
	}
	specs, err := s.wl.resolve(req.Workloads)
	if err != nil {
		return
	}
	for i, ref := range req.Workloads {
		ten := s.cfg.Telemetry.Tenant(tenantName(ref))
		for _, norm := range specs[i].NormalizedStatements() {
			ten.ObserveQuery(norm)
		}
		if i < len(resp.Costs) {
			ten.ObserveCosts(resp.Costs[i])
		}
	}
}

// computeWhatIf prices the request's cost matrix. The response bytes are
// a deterministic function of the request, which is what entitles the
// coalescer to replay them for identical requests.
func (s *Server) computeWhatIf(ctx context.Context, req *WhatIfRequest) ([]byte, error) {
	specs, err := s.wl.resolve(req.Workloads)
	if err != nil {
		return nil, badRequestError{err}
	}
	allocs := make([]vm.Shares, len(req.Allocations))
	for i, a := range req.Allocations {
		allocs[i] = a.shares()
	}
	costs, err := experiments.CostMatrix(ctx, s.cfg.Model, specs, allocs)
	if err != nil {
		return nil, err
	}
	return json.Marshal(WhatIfResponse{Model: s.cfg.Model.Name(), Costs: costs})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	req.applyDefaults()
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Resolve workloads synchronously so malformed problems fail with 400
	// here, not as a failed job later; this also prices the database
	// build before the job occupies a worker.
	if _, err := s.wl.resolve(req.Workloads); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sc, _ := obs.SpanContextFrom(r.Context())
	j, err := s.jobs.submit(req, sc)
	switch {
	case errors.Is(err, ErrQueueFull):
		mAdmissionReject.Inc()
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "job queue full")
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(SolveAccepted{JobID: j.id})
}

// runSolve executes one queued job; it is the jobManager's run callback.
// The submitting request's trace context rides on the job, so the solve
// span joins the same distributed trace even though it runs on a worker
// goroutine long after the 202 was written.
func (s *Server) runSolve(ctx context.Context, j *job) (*SolveResult, error) {
	sp := s.cfg.Obs.Span("server.job.solve")
	j.sc.Annotate(sp)
	sp.SetArg("job_id", j.id)
	defer sp.End()
	specs, err := s.wl.resolve(j.req.Workloads)
	if err != nil {
		return nil, err
	}
	resources := make([]vm.Resource, len(j.req.Resources))
	for i, rs := range j.req.Resources {
		if resources[i], err = parseResource(rs); err != nil {
			return nil, err
		}
	}
	problem := &core.Problem{
		Workloads:   specs,
		Resources:   resources,
		Step:        j.req.Step,
		Objective:   core.Objective{SLOPenalty: j.req.SLOPenalty},
		Parallelism: s.cfg.Parallelism,
		Obs:         s.cfg.Obs,
	}
	var solve func(context.Context, *core.Problem, core.CostModel) (*core.Result, error)
	switch j.req.Algo {
	case "dp":
		solve = core.SolveDP
	case "greedy":
		solve = core.SolveGreedy
	case "exhaustive":
		solve = core.SolveExhaustive
	default:
		return nil, fmt.Errorf("unknown algo %q", j.req.Algo)
	}
	res, err := solve(ctx, problem, s.cfg.Model)
	if err != nil {
		return nil, err
	}
	return solveResult(res), nil
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.jobs.cancelJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// GridResponse answers one calibration lookup: the parameter vector at
// the requested allocation, and whether it was an exact lattice point or
// a trilinear interpolation.
type GridResponse struct {
	Exact  bool             `json:"exact"`
	Params optimizer.Params `json:"params"`
	Shares SharesDTO        `json:"shares"`
}

func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Grid == nil {
		writeError(w, http.StatusNotFound, "no calibration grid loaded")
		return
	}
	q := r.URL.Query()
	var sh SharesDTO
	for _, f := range []struct {
		name string
		dst  *float64
	}{{"cpu", &sh.CPU}, {"mem", &sh.Memory}, {"io", &sh.IO}} {
		v, err := strconv.ParseFloat(q.Get(f.name), 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad or missing %q parameter", f.name))
			return
		}
		*f.dst = v
	}
	if err := sh.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	p, exact := s.cfg.Grid.Lookup(sh.shares())
	if !exact {
		p = s.cfg.Grid.Interpolate(sh.shares())
	}
	writeJSON(w, http.StatusOK, GridResponse{Exact: exact, Params: p, Shares: sh})
}

// HealthResponse is the /healthz body: liveness plus enough identity to
// tell which build has been up how long and whether it is draining.
type HealthResponse struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		Version:       obs.Version(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Draining:      s.draining.Load(),
	}
	if resp.Draining {
		resp.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTelemetry serves the per-tenant telemetry snapshot: sketches,
// drift scores, and residual EWMAs, tenants in name order.
func (s *Server) handleTelemetry(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Tenants []telemetry.TenantSnapshot `json:"tenants"`
	}{Tenants: s.cfg.Telemetry.Snapshot()})
}

// Drain gracefully stops the server's work: new work-accepting requests
// are rejected with 503 (polling and health endpoints stay up), accepted
// solve jobs run to completion, and in-flight synchronous requests
// finish. If ctx expires first, still-running jobs are canceled (they
// terminate as canceled, never silently dropped) and ctx's error is
// returned. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.Swap(true) {
		mDrainStarted.Inc()
		if s.cfg.Obs != nil {
			s.cfg.Obs.Info("drain started")
		}
		// Stop the autotune ticker first: a reconfiguration mid-drain has
		// nothing left to serve, and the loop's goroutine must not outlive
		// the server.
		if s.atStop != nil {
			s.atStop()
			<-s.atDone
		}
	}
	if err := s.jobs.drain(ctx); err != nil {
		return err
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.cfg.Obs != nil {
			s.cfg.Obs.Info("drain complete")
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- admission control -------------------------------------------------

// errTooBusy maps to 429 + Retry-After.
var errTooBusy = errors.New("server: saturated, try again later")

// badRequestError marks a compute-path failure as the caller's fault
// (400 rather than 500).
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }

// limiter admits at most maxInflight concurrent executions with at most
// maxQueue more waiting; anything beyond is rejected immediately — the
// bounded-worker-pool half of admission control (jobs have their own
// bounded queue). The waiting count is exported as server.queue.depth.
type limiter struct {
	slots    chan struct{}
	pressure atomic.Int64 // executing + waiting
	max      int64        // maxInflight + maxQueue
	inflight int64        // == cap(slots)
}

func newLimiter(maxInflight, maxQueue int) *limiter {
	return &limiter{
		slots:    make(chan struct{}, maxInflight),
		max:      int64(maxInflight + maxQueue),
		inflight: int64(maxInflight),
	}
}

// acquire claims an execution slot, waiting in the bounded queue if all
// slots are busy. ok is false when the queue is full (reject with 429)
// or ctx died while waiting.
func (l *limiter) acquire(ctx context.Context) (release func(), ok bool) {
	p := l.pressure.Add(1)
	if p > l.max {
		l.pressure.Add(-1)
		mAdmissionReject.Inc()
		return nil, false
	}
	l.setQueueGauge(p)
	select {
	case l.slots <- struct{}{}:
		return func() {
			<-l.slots
			l.setQueueGauge(l.pressure.Add(-1))
		}, true
	case <-ctx.Done():
		l.setQueueGauge(l.pressure.Add(-1))
		return nil, false
	}
}

// setQueueGauge publishes the number of sweeps waiting for a slot.
func (l *limiter) setQueueGauge(pressure int64) {
	waiting := pressure - l.inflight
	if waiting < 0 {
		waiting = 0
	}
	gQueueDepth.Set(float64(waiting))
}

// --- JSON plumbing ------------------------------------------------------

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// writeComputeError maps a what-if computation failure onto its status
// code: saturation → 429 (+Retry-After), caller mistakes → 400, expired
// deadlines → 504, everything else → 500.
func (s *Server) writeComputeError(w http.ResponseWriter, err error) {
	var bad badRequestError
	switch {
	case errors.Is(err, errTooBusy):
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.As(err, &bad):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request canceled")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
