package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dbvirt/internal/obs"
	"dbvirt/internal/telemetry"
)

// getHdr is get plus arbitrary request headers.
func getHdr(t *testing.T, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func postHdr(t *testing.T, h http.Handler, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestWhatIfFeedsTelemetry drives named and unnamed what-if traffic and
// checks that the per-tenant sketches, reservoirs, and /debug/telemetry
// reflect it — including for coalesced repeats of an identical request.
func TestWhatIfFeedsTelemetry(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Config{Registry: obs.NewRegistry()})
	s := newTestServer(t, func(c *Config) { c.Telemetry = hub })
	h := s.Handler()

	named := `{"workloads":[{"name":"acme","query":"Q4","repeat":2}],
		"allocations":[{"cpu":0.5,"memory":0.5,"io":0.5}]}`
	for i := 0; i < 3; i++ {
		if rec := post(t, h, "/v1/whatif", named); rec.Code != 200 {
			t.Fatalf("whatif %d: status %d: %s", i, rec.Code, rec.Body)
		}
	}
	if rec := post(t, h, "/v1/whatif", whatifBody); rec.Code != 200 {
		t.Fatalf("unnamed whatif: status %d: %s", rec.Code, rec.Body)
	}

	snaps := hub.Snapshot()
	byName := map[string]telemetry.TenantSnapshot{}
	for _, sn := range snaps {
		byName[sn.Name] = sn
	}
	acme, ok := byName["acme"]
	if !ok {
		t.Fatalf("no tenant %q in snapshot %+v", "acme", snaps)
	}
	// Q4x2 is two statements; three requests (two of them coalesced or
	// memoized repeats) must all count.
	if acme.Updates != 6 {
		t.Fatalf("acme sketch updates = %d, want 6", acme.Updates)
	}
	if acme.SamplesSeen == 0 || acme.SamplesKept == 0 {
		t.Fatalf("acme reservoir empty: %+v", acme)
	}
	// Unnamed workloads land under their canonical QUERYxN identity.
	if _, ok := byName["Q4x2"]; !ok {
		t.Fatalf("no canonical tenant Q4x2 in %v", names(snaps))
	}
	if _, ok := byName["Q13x3"]; !ok {
		t.Fatalf("no canonical tenant Q13x3 in %v", names(snaps))
	}

	// /debug/telemetry serves the same snapshot as JSON.
	rec := get(t, h, "/debug/telemetry")
	if rec.Code != 200 {
		t.Fatalf("/debug/telemetry: status %d", rec.Code)
	}
	var body struct {
		Tenants []telemetry.TenantSnapshot `json:"tenants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("/debug/telemetry: %v", err)
	}
	if len(body.Tenants) != len(snaps) {
		t.Fatalf("/debug/telemetry tenants = %d, want %d", len(body.Tenants), len(snaps))
	}
}

func names(snaps []telemetry.TenantSnapshot) []string {
	out := make([]string, len(snaps))
	for i, sn := range snaps {
		out[i] = sn.Name
	}
	return out
}

// TestMetricsEndpointProm scrapes GET /metrics after live traffic and
// validates the body with the strict Prometheus text parser.
func TestMetricsEndpointProm(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	if rec := post(t, h, "/v1/whatif", whatifBody); rec.Code != 200 {
		t.Fatalf("whatif: status %d: %s", rec.Code, rec.Body)
	}

	rec := get(t, h, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	samples, err := obs.ParsePrometheusText(strings.NewReader(rec.Body.String()))
	if err != nil {
		t.Fatalf("invalid Prometheus exposition: %v\n%s", err, rec.Body)
	}
	// The default server hub registers on obs.Global, so the scrape must
	// carry a non-zero telemetry counter.
	v, ok := samples["telemetry_sketch_updates"]
	if !ok {
		t.Fatalf("telemetry_sketch_updates missing from scrape (%d samples)", len(samples))
	}
	if v.Value <= 0 {
		t.Fatalf("telemetry_sketch_updates = %v, want > 0", v.Value)
	}
	if _, ok := samples["server_http_whatif_count"]; !ok {
		t.Fatal("server_http_whatif_count missing from scrape")
	}
}

// TestDebugMetricsDeterministicJSON checks the /debug/metrics contract:
// explicit content type and a body whose map keys are already sorted, so
// equal registry states produce byte-identical documents.
func TestDebugMetricsDeterministicJSON(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	rec := get(t, h, "/debug/metrics")
	if rec.Code != 200 {
		t.Fatalf("/debug/metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("body is not a MetricsSnapshot: %v", err)
	}
	// Re-encoding the decoded snapshot must reproduce the body exactly:
	// encoding/json sorts map keys, so this catches any non-deterministic
	// hand-rolled encoding creeping in.
	want, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(rec.Body.String())
	if got != string(want) {
		t.Fatalf("/debug/metrics body is not canonical JSON:\ngot:  %.200s\nwant: %.200s", got, want)
	}
}

// TestTraceparentPropagation checks the W3C trace-context contract on an
// instrumented route: a valid incoming traceparent is continued (same
// trace ID, fresh span ID), a malformed one starts a new trace, and the
// identity lands in the flight recorder.
func TestTraceparentPropagation(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	const parent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	rec := postHdr(t, h, "/v1/whatif", whatifBody, map[string]string{"traceparent": parent})
	if rec.Code != 200 {
		t.Fatalf("whatif: status %d: %s", rec.Code, rec.Body)
	}
	echoed := rec.Header().Get("traceparent")
	sc, err := obs.ParseTraceparent(echoed)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", echoed, err)
	}
	if got := sc.TraceIDString(); got != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("trace ID not continued: got %s", got)
	}
	if sc.SpanIDString() == "00f067aa0ba902b7" {
		t.Fatal("span ID not re-minted for the server hop")
	}

	// Malformed header: the server starts a fresh, valid trace.
	rec = postHdr(t, h, "/v1/whatif", whatifBody, map[string]string{"traceparent": "garbage"})
	if rec.Code != 200 {
		t.Fatalf("whatif: status %d", rec.Code)
	}
	fresh, err := obs.ParseTraceparent(rec.Header().Get("traceparent"))
	if err != nil {
		t.Fatalf("fresh traceparent: %v", err)
	}
	if fresh.TraceIDString() == sc.TraceIDString() {
		t.Fatal("malformed parent must not inherit a trace ID")
	}

	// The continued request must appear in the flight recorder under its
	// trace ID (obs.Flight is process-global, so scan rather than count).
	found := false
	for _, fr := range obs.Flight.Snapshot() {
		if fr.TraceID == "0123456789abcdef0123456789abcdef" && fr.Path == "/v1/whatif" && fr.Status == 200 {
			found = true
		}
	}
	if !found {
		t.Fatal("continued request missing from flight recorder")
	}

	// And /debug/flightrecorder serves it.
	frRec := get(t, h, "/debug/flightrecorder")
	if frRec.Code != 200 {
		t.Fatalf("/debug/flightrecorder: status %d", frRec.Code)
	}
	var frBody struct {
		Records []obs.FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(frRec.Body.Bytes(), &frBody); err != nil {
		t.Fatalf("/debug/flightrecorder: %v", err)
	}
	if len(frBody.Records) == 0 {
		t.Fatal("/debug/flightrecorder: no records")
	}
}

// TestHealthzBody checks the enriched /healthz identity fields.
func TestHealthzBody(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	rec := get(t, h, "/healthz")
	if rec.Code != 200 {
		t.Fatalf("/healthz: status %d", rec.Code)
	}
	var hr HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatalf("/healthz: %v", err)
	}
	if hr.Status != "ok" || hr.Draining {
		t.Fatalf("healthy body = %+v", hr)
	}
	if hr.Version == "" {
		t.Fatal("healthz: empty version")
	}
	if hr.UptimeSeconds < 0 {
		t.Fatalf("healthz: negative uptime %f", hr.UptimeSeconds)
	}
}

// TestSolveJobCarriesTrace checks that the traceparent of the submitting
// request is captured on the async job so the solver span joins the
// distributed trace.
func TestSolveJobCarriesTrace(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	const parent = "00-aaaabbbbccccddddaaaabbbbccccdddd-1122334455667788-01"
	rec := postHdr(t, h, "/v1/solve", solveBody, map[string]string{"traceparent": parent})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("solve: status %d: %s", rec.Code, rec.Body)
	}
	var sr SolveAccepted
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatalf("solve body: %v", err)
	}
	s.jobs.mu.Lock()
	j := s.jobs.jobs[sr.JobID]
	s.jobs.mu.Unlock()
	if j == nil {
		t.Fatalf("job %s not found", sr.JobID)
	}
	if got := j.sc.TraceIDString(); got != "aaaabbbbccccddddaaaabbbbccccdddd" {
		t.Fatalf("job trace ID = %s, want the submitter's", got)
	}
}
