package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"dbvirt/internal/autotune"
)

func autotuneOpts() *AutotuneOptions {
	return &AutotuneOptions{
		Workloads: []WorkloadRef{
			{Name: "w1", Query: "Q4", Repeat: 2},
			{Name: "w2", Query: "Q13", Repeat: 2},
		},
		MinGain:       0.02,
		ConfirmTicks:  1,
		CooldownTicks: 1,
		Enabled:       true,
	}
}

func TestAutotuneNotConfigured(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	if rec := get(t, h, "/v1/autotune/status"); rec.Code != http.StatusNotFound {
		t.Fatalf("status without autotune: %d, want 404", rec.Code)
	}
	for _, p := range []string{"enable", "disable", "trigger"} {
		if rec := post(t, h, "/v1/autotune/"+p, ""); rec.Code != http.StatusNotFound {
			t.Fatalf("%s without autotune: %d, want 404", p, rec.Code)
		}
	}
}

func TestAutotuneOptionsValidation(t *testing.T) {
	for name, mut := range map[string]func(*AutotuneOptions){
		"one workload":     func(o *AutotuneOptions) { o.Workloads = o.Workloads[:1] },
		"duplicate tenant": func(o *AutotuneOptions) { o.Workloads[1] = o.Workloads[0] },
		"unknown query":    func(o *AutotuneOptions) { o.Workloads[0].Query = "Q99" },
		"bad resource":     func(o *AutotuneOptions) { o.Resources = []string{"gpu"} },
	} {
		opts := autotuneOpts()
		mut(opts)
		env, grid := testEnv(t)
		if _, err := New(Config{Env: env, Grid: grid, Autotune: opts}); err == nil {
			t.Errorf("%s: config accepted, want error", name)
		}
	}
}

// TestAutotuneEndpoints exercises the HTTP surface end to end in-process:
// status, toggling, and synchronous triggered ticks whose decisions land
// in the status log.
func TestAutotuneEndpoints(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Autotune = autotuneOpts() })
	h := s.Handler()

	var st autotune.Status
	rec := get(t, h, "/v1/autotune/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Tick != 0 || len(st.Tenants) != 2 || len(st.Allocation) != 2 {
		t.Fatalf("fresh status: %+v", st)
	}
	if st.Allocation[0].CPU != 0.5 {
		t.Fatalf("managed deployment should start at the equal split, got %+v", st.Allocation)
	}

	// Disabled loops still tick but skip whole.
	if rec := post(t, h, "/v1/autotune/disable", ""); rec.Code != http.StatusOK {
		t.Fatalf("disable: %d", rec.Code)
	}
	var d autotune.Decision
	rec = post(t, h, "/v1/autotune/trigger", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("trigger: %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Action != autotune.ActionSkipped || d.Reason != "disabled" {
		t.Fatalf("disabled trigger decision: %+v", d)
	}

	if rec := post(t, h, "/v1/autotune/enable", ""); rec.Code != http.StatusOK {
		t.Fatalf("enable: %d", rec.Code)
	}
	rec = post(t, h, "/v1/autotune/trigger", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Trigger != autotune.TriggerManual {
		t.Fatalf("manual trigger decision: %+v", d)
	}
	if d.Action != autotune.ActionApplied && d.Action != autotune.ActionSuppressed {
		t.Fatalf("trigger should have resolved, got %+v", d)
	}
	if len(d.Current) != 2 || d.CurrentTotal <= 0 {
		t.Fatalf("resolved decision missing pricing: %+v", d)
	}

	rec = get(t, h, "/v1/autotune/status")
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ticks != 2 || st.Resolves != 1 || st.Skips != 1 {
		t.Fatalf("status accounting after two ticks: %+v", st)
	}
	if len(st.Decisions) != 2 || st.Decisions[1].Tick != 2 {
		t.Fatalf("decision log: %+v", st.Decisions)
	}
}

// TestAutotuneDrainStopsTicker: draining must stop the background loop
// goroutine and reject further triggers.
func TestAutotuneDrainStopsTicker(t *testing.T) {
	opts := autotuneOpts()
	opts.Interval = 5 * time.Millisecond
	s := newTestServer(t, func(c *Config) { c.Autotune = opts })

	deadline, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(deadline); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case <-s.atDone:
	default:
		t.Fatal("autotune ticker goroutine still running after drain")
	}
	if rec := post(t, s.Handler(), "/v1/autotune/trigger", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("trigger during drain: %d, want 503", rec.Code)
	}
	// Status stays readable during drain, like the other read-only
	// endpoints.
	if rec := get(t, s.Handler(), "/v1/autotune/status"); rec.Code != http.StatusOK {
		t.Fatalf("status during drain: %d, want 200", rec.Code)
	}
}
