package server

import (
	"context"
	"sync"

	"dbvirt/internal/obs"
)

var (
	// mCoalesceHits counts what-if sweeps answered without recomputation —
	// joined onto an in-flight identical sweep or served from the bounded
	// memo of completed sweeps. The serving-scale acceptance signal: under
	// concurrent load this must be nonzero.
	mCoalesceHits     = obs.Global.Counter("server.coalesce.hits")
	mCoalesceInflight = obs.Global.Counter("server.coalesce.inflight_join")
	mCoalesceMemo     = obs.Global.Counter("server.coalesce.memo")
	mCoalesceMisses   = obs.Global.Counter("server.coalesce.miss")
)

// sweepEntry is one coalesced what-if computation: done closes when body
// and err are final.
type sweepEntry struct {
	done chan struct{}
	body []byte // marshaled 200 response
	err  error  // non-nil if the computation failed
}

// coalescer deduplicates what-if sweeps by canonical request key. An
// identical request arriving while one is in flight joins it
// (singleflight); identical requests arriving after completion are served
// from a bounded memo of finished response bodies. Both are sound because
// a sweep's response is a pure, deterministic function of its key: the
// grid is immutable, the databases are immutable (the daemon exposes no
// DDL), and the cost model is deterministic — so a coalesced caller
// receives byte-for-byte the response it would have computed itself.
// Failed computations are not retained; a later identical request
// recomputes.
type coalescer struct {
	mu      sync.Mutex
	entries map[string]*sweepEntry
	fifo    []string // completed-entry eviction order
	maxDone int
}

func newCoalescer(maxDone int) *coalescer {
	return &coalescer{entries: make(map[string]*sweepEntry), maxDone: maxDone}
}

// do returns the response body for the keyed sweep, computing it via
// compute at most once per key among concurrent and remembered callers.
// A joiner whose ctx expires stops waiting (the computation continues
// for the others); the leader runs under its own request context.
func (c *coalescer) do(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.done:
			mCoalesceHits.Inc()
			mCoalesceMemo.Inc()
		default:
			mCoalesceHits.Inc()
			mCoalesceInflight.Inc()
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return e.body, e.err
	}
	e := &sweepEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	mCoalesceMisses.Inc()

	e.body, e.err = compute()
	close(e.done)

	c.mu.Lock()
	if e.err != nil || c.maxDone < 0 {
		// Do not memoize failures (timeouts, transient model errors): the
		// next identical request deserves a fresh attempt. A negative
		// maxDone never memoizes at all — only concurrent identical
		// requests coalesce, which is what stateful endpoints (placement)
		// need: replaying a completed body later could hand out state that
		// subsequent events have already superseded.
		delete(c.entries, key)
	} else {
		c.fifo = append(c.fifo, key)
		for c.maxDone > 0 && len(c.fifo) > c.maxDone {
			old := c.fifo[0]
			c.fifo = c.fifo[1:]
			if cur, ok := c.entries[old]; ok {
				select {
				case <-cur.done:
					delete(c.entries, old) // completed: safe to forget
				default:
					// The key was evicted earlier and an identical sweep is
					// recomputing; leave the in-flight entry alone.
				}
			}
		}
	}
	c.mu.Unlock()
	return e.body, e.err
}
