package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"dbvirt/internal/obs"
	"dbvirt/internal/placement"
)

// Fleet-placement request bounds, in the same spirit as the what-if
// bounds: anything beyond them is abusive, rejected with 400 up front.
const (
	maxPlacementTenants = 4096
	maxPlacementCount   = 1024
	maxPlacementEvents  = 64
)

// PlacementTenantRef names one fleet tenant (or, with count > 1, a block
// of identical tenants) over the server's built-in workloads. The
// underlying specs are interned exactly like what-if workloads, so the
// placement solver's per-spec feature memo and the shared cost memo
// concentrate across tenants and requests.
type PlacementTenantRef struct {
	WorkloadRef
	// Count expands this reference into count tenants named
	// "<name>-0000".."<name>-NNNN" (default 1, which uses the name as-is).
	Count int `json:"count,omitempty"`
}

// MachineCapsDTO is the per-machine capacity envelope of a placement
// request; zero-valued capacities are unlimited.
type MachineCapsDTO struct {
	CPU        float64 `json:"cpu,omitempty"`
	Memory     float64 `json:"memory,omitempty"`
	IO         float64 `json:"io,omitempty"`
	MaxTenants int     `json:"max_tenants,omitempty"`
}

// PlacementRequest asks for a from-scratch fleet placement: cluster the
// tenants into workload classes, bin-pack them onto machines, and price
// every machine with the single-machine solvers. A successful solve
// becomes the server's current placement, the target of subsequent
// /v1/placement/events calls.
type PlacementRequest struct {
	Tenants   []PlacementTenantRef `json:"tenants"`
	Machine   *MachineCapsDTO      `json:"machine,omitempty"`
	Threshold float64              `json:"threshold,omitempty"` // default 0.1
	Step      float64              `json:"step,omitempty"`      // default 0.125
	Resources []string             `json:"resources,omitempty"` // default ["cpu"]
	Algo      string               `json:"algo,omitempty"`      // greedy (default) or dp
	Orders    int                  `json:"orders,omitempty"`    // default 3
	Seed      uint64               `json:"seed,omitempty"`
	TimeoutMS int64                `json:"timeout_ms,omitempty"`
}

func (r *PlacementRequest) validate() error {
	if len(r.Tenants) == 0 {
		return fmt.Errorf("no tenants")
	}
	total := 0
	for i, t := range r.Tenants {
		if err := validateRef(t.WorkloadRef); err != nil {
			return fmt.Errorf("tenant %d: %w", i, err)
		}
		if t.Count < 0 || t.Count > maxPlacementCount {
			return fmt.Errorf("tenant %d: count %d out of range [0, %d]", i, t.Count, maxPlacementCount)
		}
		n := t.Count
		if n == 0 {
			n = 1
		}
		total += n
	}
	if total > maxPlacementTenants {
		return fmt.Errorf("too many tenants (%d > %d)", total, maxPlacementTenants)
	}
	switch r.Algo {
	case "", "greedy", "dp":
	default:
		return fmt.Errorf("unknown algo %q (want greedy or dp)", r.Algo)
	}
	for _, res := range r.Resources {
		if _, err := parseResource(res); err != nil {
			return err
		}
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("negative timeout_ms")
	}
	// Threshold, step, orders, and machine-cap ranges are owned by
	// placement.Config.validate; NewSolver failures map to 400 below.
	return nil
}

// coalesceKey canonicalizes a placement request for in-flight
// coalescing. Identical fleets solving concurrently share one
// computation; the placement memo is NOT consulted across time because a
// successful solve also replaces the server's current placement state.
func (r *PlacementRequest) coalesceKey() string {
	var b strings.Builder
	for _, t := range r.Tenants {
		n := t.Count
		if n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "t:%s|n=%s|c=%d;", refKey(t.WorkloadRef), t.Name, n)
	}
	if m := r.Machine; m != nil {
		fmt.Fprintf(&b, "m:%.9f,%.9f,%.9f,%d;", m.CPU, m.Memory, m.IO, m.MaxTenants)
	}
	fmt.Fprintf(&b, "th=%.9f|st=%.9f|res=%s|algo=%s|k=%d|seed=%d",
		r.Threshold, r.Step, strings.Join(r.Resources, ","), r.Algo, r.Orders, r.Seed)
	return b.String()
}

// config maps the request onto a placement.Config (zero fields defer to
// the solver's defaults).
func (r *PlacementRequest) config(parallelism int, tel *obs.Telemetry) placement.Config {
	cfg := placement.Config{
		Threshold:   r.Threshold,
		Step:        r.Step,
		Algo:        r.Algo,
		Orders:      r.Orders,
		Seed:        r.Seed,
		Parallelism: parallelism,
		Obs:         tel,
	}
	if m := r.Machine; m != nil {
		cfg.Machine = placement.MachineCaps{CPU: m.CPU, Memory: m.Memory, IO: m.IO, MaxTenants: m.MaxTenants}
	}
	for _, res := range r.Resources {
		pr, _ := parseResource(res) // validated above
		cfg.Resources = append(cfg.Resources, pr)
	}
	return cfg
}

// PlacementEventDTO is one fleet change: "arrive" and "drift" carry a
// tenant reference (count must be absent or 1 — events are per tenant),
// "leave" carries the tenant name.
type PlacementEventDTO struct {
	Type   string              `json:"type"`
	Name   string              `json:"name,omitempty"`
	Tenant *PlacementTenantRef `json:"tenant,omitempty"`
}

// PlacementEventsRequest folds fleet events into the server's current
// placement with an incremental re-solve.
type PlacementEventsRequest struct {
	Events    []PlacementEventDTO `json:"events"`
	TimeoutMS int64               `json:"timeout_ms,omitempty"`
}

func (r *PlacementEventsRequest) validate() error {
	if len(r.Events) == 0 {
		return fmt.Errorf("no events")
	}
	if len(r.Events) > maxPlacementEvents {
		return fmt.Errorf("too many events (%d > %d)", len(r.Events), maxPlacementEvents)
	}
	for i, ev := range r.Events {
		et, err := placement.ParseEventType(ev.Type)
		if err != nil {
			return fmt.Errorf("event %d: unknown type %q (want arrive, leave, or drift)", i, ev.Type)
		}
		switch et {
		case placement.Leave:
			if strings.TrimSpace(ev.Name) == "" && ev.Tenant == nil {
				return fmt.Errorf("event %d: leave needs a tenant name", i)
			}
		default:
			if ev.Tenant == nil {
				return fmt.Errorf("event %d: %s needs a tenant", i, et)
			}
			if err := validateRef(ev.Tenant.WorkloadRef); err != nil {
				return fmt.Errorf("event %d: %w", i, err)
			}
			if ev.Tenant.Count > 1 {
				return fmt.Errorf("event %d: count %d not allowed on events (one tenant per event)", i, ev.Tenant.Count)
			}
		}
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("negative timeout_ms")
	}
	return nil
}

// PlacementResponse reports one placement pass. TotalCost is only ever
// written after Placement.Verify has re-evaluated every machine's
// allocation through the cost model — Verified records that fact.
type PlacementResponse struct {
	TotalCost float64               `json:"total_cost"`
	Order     int                   `json:"order"`
	Verified  bool                  `json:"verified"`
	Events    int                   `json:"events,omitempty"` // events applied (events endpoint only)
	Stats     placement.SolveStats  `json:"stats"`
	Classes   []placement.ClassInfo `json:"classes"`
	Machines  []placement.Machine   `json:"machines"`
}

func placementResponse(pl *placement.Placement, events int) *PlacementResponse {
	return &PlacementResponse{
		TotalCost: pl.TotalCost,
		Order:     pl.Order,
		Verified:  true,
		Events:    events,
		Stats:     pl.Stats,
		Classes:   pl.Classes,
		Machines:  pl.Machines,
	}
}

// placementState is the server's current fleet placement: one solver
// (owning the feature and machine-solve memos) plus the latest solved
// placement. The mutex serializes event application against replacement;
// fresh solves build their placement outside the lock and swap it in.
type placementState struct {
	mu     sync.Mutex
	solver *placement.Solver
	pl     *placement.Placement
}

func (ps *placementState) set(solver *placement.Solver, pl *placement.Placement) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.solver = solver
	ps.pl = pl
}

func (s *Server) handlePlacement(w http.ResponseWriter, r *http.Request) {
	var req PlacementRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	sp := s.cfg.Obs.Span("server.placement")
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		sc.Annotate(sp)
	}
	defer sp.End()

	body, err := s.plCol.do(ctx, req.coalesceKey(), func() ([]byte, error) {
		release, ok := s.lim.acquire(ctx)
		if !ok {
			return nil, errTooBusy
		}
		csp := sp.Child("server.placement.compute")
		defer csp.End()
		defer release()
		return s.computePlacement(ctx, &req)
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// computePlacement solves the fleet from scratch, verifies it, installs
// it as the server's current placement, and marshals the response.
func (s *Server) computePlacement(ctx context.Context, req *PlacementRequest) ([]byte, error) {
	tenants, err := s.resolvePlacementTenants(req.Tenants)
	if err != nil {
		return nil, badRequestError{err}
	}
	solver, err := placement.NewSolver(req.config(s.cfg.Parallelism, s.cfg.Obs), s.cfg.Model)
	if err != nil {
		return nil, badRequestError{err}
	}
	pl, err := solver.Solve(ctx, tenants)
	if err != nil {
		return nil, err
	}
	if err := pl.Verify(ctx); err != nil {
		return nil, fmt.Errorf("placement verification failed: %w", err)
	}
	s.plState.set(solver, pl)
	return json.Marshal(placementResponse(pl, 0))
}

func (s *Server) handlePlacementEvents(w http.ResponseWriter, r *http.Request) {
	var req PlacementEventsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	sp := s.cfg.Obs.Span("server.placement.events")
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		sc.Annotate(sp)
	}
	defer sp.End()

	release, ok := s.lim.acquire(ctx)
	if !ok {
		s.writeComputeError(w, errTooBusy)
		return
	}
	defer release()

	evs, err := s.resolvePlacementEvents(req.Events)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.plState.mu.Lock()
	defer s.plState.mu.Unlock()
	if s.plState.pl == nil {
		writeError(w, http.StatusConflict, "no placement loaded (POST /v1/placement first)")
		return
	}
	stats, err := s.plState.pl.Apply(ctx, evs...)
	switch {
	case placement.IsEventError(err):
		writeError(w, http.StatusBadRequest, err.Error())
		return
	case err != nil:
		s.writeComputeError(w, err)
		return
	}
	if err := s.plState.pl.Verify(ctx); err != nil {
		s.writeComputeError(w, fmt.Errorf("placement verification failed: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, placementResponse(s.plState.pl, stats.Events))
}

// plStats exposes the current placement's headline stats (tests and the
// drain path use it to observe state without an HTTP round trip).
func (s *Server) plStats() (placement.SolveStats, bool) {
	s.plState.mu.Lock()
	defer s.plState.mu.Unlock()
	if s.plState.pl == nil {
		return placement.SolveStats{}, false
	}
	return s.plState.pl.Stats, true
}

// resolvePlacementTenants expands tenant references (count blocks
// included) into placement tenants over interned specs.
func (s *Server) resolvePlacementTenants(refs []PlacementTenantRef) ([]*placement.Tenant, error) {
	var tenants []*placement.Tenant
	for _, ref := range refs {
		spec, err := s.wl.spec(ref.WorkloadRef)
		if err != nil {
			return nil, err
		}
		base := tenantName(ref.WorkloadRef)
		n := ref.Count
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			name := base
			if ref.Count > 1 {
				name = fmt.Sprintf("%s-%04d", base, j)
			}
			tenants = append(tenants, &placement.Tenant{Name: name, Spec: spec})
		}
	}
	return tenants, nil
}

// resolvePlacementEvents maps event DTOs onto placement events,
// resolving tenant payloads to interned specs.
func (s *Server) resolvePlacementEvents(evs []PlacementEventDTO) ([]placement.Event, error) {
	out := make([]placement.Event, len(evs))
	for i, ev := range evs {
		et, err := placement.ParseEventType(ev.Type)
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		e := placement.Event{Type: et, Name: strings.TrimSpace(ev.Name)}
		if ev.Tenant != nil && et != placement.Leave {
			spec, err := s.wl.spec(ev.Tenant.WorkloadRef)
			if err != nil {
				return nil, fmt.Errorf("event %d: %w", i, err)
			}
			e.Tenant = &placement.Tenant{Name: tenantName(ev.Tenant.WorkloadRef), Spec: spec}
		}
		if et == placement.Leave && e.Name == "" && ev.Tenant != nil {
			e.Name = tenantName(ev.Tenant.WorkloadRef)
		}
		out[i] = e
	}
	return out, nil
}
