package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dbvirt/internal/calibration"
	"dbvirt/internal/core"
	"dbvirt/internal/experiments"
	"dbvirt/internal/faults"
	"dbvirt/internal/vm"
	"dbvirt/internal/workload"
)

// testEnv is shared across the package's tests: database builds dominate
// test time and every test reads, never mutates, the built databases.
var (
	envOnce    sync.Once
	sharedEnv  *experiments.Env
	sharedGrid *calibration.Grid
)

func testEnv(t *testing.T) (*experiments.Env, *calibration.Grid) {
	t.Helper()
	envOnce.Do(func() {
		sharedEnv = experiments.NewEnv(workload.TinyScale(), vm.DefaultMachineConfig())
		axes := []float64{0.25, 0.5, 0.75, 1.0}
		g, err := experiments.SyntheticGrid(axes, axes, axes)
		if err != nil {
			panic(err)
		}
		sharedGrid = g
	})
	return sharedEnv, sharedGrid
}

func newTestServer(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	env, grid := testEnv(t)
	cfg := Config{Env: env, Grid: grid}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// gateModel blocks every Cost call until released (or the call's ctx
// dies), so tests can hold requests in flight deterministically.
type gateModel struct {
	inner   core.CostModel
	release chan struct{}
	calls   atomic.Int64
}

func newGateModel(grid *calibration.Grid) *gateModel {
	return &gateModel{inner: &core.WhatIfModel{Grid: grid}, release: make(chan struct{})}
}

func (m *gateModel) Name() string { return m.inner.Name() }

func (m *gateModel) Cost(ctx context.Context, w *core.WorkloadSpec, s vm.Shares) (float64, error) {
	m.calls.Add(1)
	select {
	case <-m.release:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	return m.inner.Cost(ctx, w, s)
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

const whatifBody = `{"workloads":[{"query":"Q4","repeat":2},{"query":"Q13","repeat":3}],
	"allocations":[{"cpu":0.5,"memory":0.5,"io":0.5},{"cpu":0.25,"memory":0.75,"io":0.5}]}`

const solveBody = `{"workloads":[{"query":"Q4","repeat":2},{"query":"Q13","repeat":3}],"step":0.25}`

func TestWhatIfValidation(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	cases := []struct {
		name, body string
		wantStatus int
		wantSubstr string
	}{
		{"malformed json", `{`, 400, "malformed"},
		{"unknown field", `{"workload":[]}`, 400, "unknown field"},
		{"no workloads", `{"workloads":[],"allocations":[{"cpu":1,"memory":1,"io":1}]}`, 400, "no workloads"},
		{"no allocations", `{"workloads":[{"query":"Q4"}],"allocations":[]}`, 400, "no allocations"},
		{"unknown query", `{"workloads":[{"query":"Q99"}],"allocations":[{"cpu":1,"memory":1,"io":1}]}`, 400, "unknown query"},
		{"share out of range", `{"workloads":[{"query":"Q4"}],"allocations":[{"cpu":0,"memory":1,"io":1}]}`, 400, "out of range"},
		{"share above one", `{"workloads":[{"query":"Q4"}],"allocations":[{"cpu":1.5,"memory":1,"io":1}]}`, 400, "out of range"},
		{"negative timeout", `{"workloads":[{"query":"Q4"}],"allocations":[{"cpu":1,"memory":1,"io":1}],"timeout_ms":-1}`, 400, "timeout"},
		{"excess repeat", `{"workloads":[{"query":"Q4","repeat":65}],"allocations":[{"cpu":1,"memory":1,"io":1}]}`, 400, "repeat"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, h, "/v1/whatif", tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body)
			}
			var e errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("non-JSON error body: %s", rec.Body)
			}
			if !strings.Contains(e.Error, tc.wantSubstr) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.wantSubstr)
			}
		})
	}

	// Wrong method on a known path.
	if rec := get(t, h, "/v1/whatif"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/whatif: status %d, want 405", rec.Code)
	}
}

func TestWhatIfMatchesDirectCostMatrix(t *testing.T) {
	s := newTestServer(t, nil)
	rec := post(t, s.Handler(), "/v1/whatif", whatifBody)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp WhatIfResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Model == "" || len(resp.Costs) != 2 || len(resp.Costs[0]) != 2 {
		t.Fatalf("unexpected shape: %+v", resp)
	}

	// The same sweep computed directly through the cost model must agree
	// exactly: the server adds routing, not arithmetic.
	env, grid := testEnv(t)
	var specs []*core.WorkloadSpec
	for _, q := range []struct {
		name string
		n    int
	}{{"Q4", 2}, {"Q13", 3}} {
		db, err := env.DB("srv-" + q.name) // the server's own database names
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, &core.WorkloadSpec{
			Name:       fmt.Sprintf("%sx%d", q.name, q.n),
			Statements: workload.Repeat(q.name, workload.Query(q.name), q.n).Statements,
			DB:         db,
		})
	}
	want, err := experiments.CostMatrix(context.Background(), &core.WhatIfModel{Grid: grid}, specs,
		[]vm.Shares{{CPU: 0.5, Memory: 0.5, IO: 0.5}, {CPU: 0.25, Memory: 0.75, IO: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if resp.Costs[i][j] != want[i][j] {
				t.Fatalf("cost[%d][%d] = %g, want %g", i, j, resp.Costs[i][j], want[i][j])
			}
		}
	}
}

func TestGridEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	rec := get(t, h, "/v1/calibration/grid?cpu=0.5&mem=0.5&io=0.5")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp GridResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Exact {
		t.Fatalf("0.5/0.5/0.5 is a lattice point, got exact=false")
	}

	rec = get(t, h, "/v1/calibration/grid?cpu=0.4&mem=0.5&io=0.5")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Exact {
		t.Fatalf("0.4 is off-lattice, got exact=true")
	}

	if rec := get(t, h, "/v1/calibration/grid?cpu=0.5&mem=0.5"); rec.Code != 400 {
		t.Fatalf("missing io: status %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/v1/calibration/grid?cpu=2&mem=0.5&io=0.5"); rec.Code != 400 {
		t.Fatalf("out-of-range cpu: status %d, want 400", rec.Code)
	}
}

// pollJob polls the job endpoint until the job is terminal.
func pollJob(t *testing.T, h http.Handler, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		rec := get(t, h, "/v1/jobs/"+id)
		if rec.Code != 200 {
			t.Fatalf("poll %s: status %d: %s", id, rec.Code, rec.Body)
		}
		var st JobStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case jobDone, jobFailed, jobCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s", id, st.State, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func submitSolve(t *testing.T, h http.Handler, body string) string {
	t.Helper()
	rec := post(t, h, "/v1/solve", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("solve: status %d: %s", rec.Code, rec.Body)
	}
	var acc SolveAccepted
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	if acc.JobID == "" {
		t.Fatal("empty job_id")
	}
	return acc.JobID
}

func TestSolveJobLifecycle(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	id := submitSolve(t, h, solveBody)
	st := pollJob(t, h, id, 30*time.Second)
	if st.State != jobDone {
		t.Fatalf("state %s (error %q), want done", st.State, st.Error)
	}
	if st.Result == nil || st.Result.Algorithm != "dp" || len(st.Result.Allocation) != 2 {
		t.Fatalf("unexpected result: %+v", st.Result)
	}

	// The job's result must equal a direct synchronous solve of the same
	// problem — the daemon's async plumbing may not change answers.
	env, grid := testEnv(t)
	var specs []*core.WorkloadSpec
	for _, q := range []struct {
		name string
		n    int
	}{{"Q4", 2}, {"Q13", 3}} {
		db, err := env.DB("srv-" + q.name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, &core.WorkloadSpec{
			Name:       fmt.Sprintf("%sx%d", q.name, q.n),
			Statements: workload.Repeat(q.name, workload.Query(q.name), q.n).Statements,
			DB:         db,
		})
	}
	want, err := core.SolveDP(context.Background(),
		&core.Problem{Workloads: specs, Resources: []vm.Resource{vm.CPU}, Step: 0.25},
		&core.WhatIfModel{Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(st.Result)
	wantJSON, _ := json.Marshal(solveResult(want))
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("async result diverges from direct solve:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	if rec := get(t, h, "/v1/jobs/nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", rec.Code)
	}
}

func TestSolveValidation(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	for name, body := range map[string]string{
		"one workload":  `{"workloads":[{"query":"Q4"}]}`,
		"bad algo":      `{"workloads":[{"query":"Q4"},{"query":"Q13"}],"algo":"annealing"}`,
		"bad step":      `{"workloads":[{"query":"Q4"},{"query":"Q13"}],"step":0.7}`,
		"bad resource":  `{"workloads":[{"query":"Q4"},{"query":"Q13"}],"resources":["gpu"]}`,
		"unknown query": `{"workloads":[{"query":"Q4"},{"query":"NOPE"}]}`,
	} {
		if rec := post(t, h, "/v1/solve", body); rec.Code != 400 {
			t.Fatalf("%s: status %d, want 400 (%s)", name, rec.Code, rec.Body)
		}
	}
}

func TestJobCancel(t *testing.T) {
	_, grid := testEnv(t)
	gate := newGateModel(grid)
	s := newTestServer(t, func(c *Config) { c.Model = gate; c.JobWorkers = 1 })
	h := s.Handler()

	// First job occupies the single worker at the gate; the second stays
	// queued, so both cancellation paths are exercised.
	running := submitSolve(t, h, solveBody)
	queued := submitSolve(t, h, `{"workloads":[{"query":"Q4","repeat":1},{"query":"Q13","repeat":1}]}`)

	// Wait until the first job is actually running (the model got called).
	for deadline := time.Now().Add(5 * time.Second); gate.calls.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}

	req := httptest.NewRequest(http.MethodDelete, "/v1/jobs/"+queued, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("cancel queued: status %d: %s", rec.Code, rec.Body)
	}
	if st := pollJob(t, h, queued, 5*time.Second); st.State != jobCanceled {
		t.Fatalf("queued job state %s, want canceled", st.State)
	}

	req = httptest.NewRequest(http.MethodDelete, "/v1/jobs/"+running, nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("cancel running: status %d: %s", rec.Code, rec.Body)
	}
	if st := pollJob(t, h, running, 5*time.Second); st.State != jobCanceled {
		t.Fatalf("running job state %s, want canceled", st.State)
	}
	close(gate.release)
}

func TestWhatIfAdmission429(t *testing.T) {
	_, grid := testEnv(t)
	gate := newGateModel(grid)
	s := newTestServer(t, func(c *Config) {
		c.Model = gate
		c.MaxInflight = 1
		c.MaxQueue = 1
		c.RetryAfter = 2 * time.Second
	})
	h := s.Handler()

	// Distinct bodies: identical ones would coalesce instead of queueing.
	body := func(i int) string {
		return fmt.Sprintf(`{"workloads":[{"query":"Q4","repeat":%d}],"allocations":[{"cpu":0.5,"memory":0.5,"io":0.5}]}`, i+1)
	}

	var wg sync.WaitGroup
	statuses := make([]int, 3)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i] = post(t, h, "/v1/whatif", body(i)).Code
		}(i)
	}
	// Wait until the leader is inside the model and the second request is
	// parked in the queue, then the third must bounce.
	deadline := time.Now().Add(5 * time.Second)
	for gate.calls.Load() == 0 || s.lim.pressure.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("saturation never reached (calls=%d pressure=%d)", gate.calls.Load(), s.lim.pressure.Load())
		}
		time.Sleep(time.Millisecond)
	}
	rec := post(t, h, "/v1/whatif", body(2))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", ra)
	}

	close(gate.release)
	wg.Wait()
	for i, code := range statuses[:2] {
		if code != 200 {
			t.Fatalf("request %d: status %d, want 200", i, code)
		}
	}
}

func TestWhatIfDeadline504(t *testing.T) {
	_, grid := testEnv(t)
	gate := newGateModel(grid) // never released: the deadline must fire
	s := newTestServer(t, func(c *Config) { c.Model = gate })
	rec := post(t, s.Handler(), "/v1/whatif",
		`{"workloads":[{"query":"Q4"}],"allocations":[{"cpu":0.5,"memory":0.5,"io":0.5}],"timeout_ms":30}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", rec.Code, rec.Body)
	}
}

func TestCoalesceIdenticalSweeps(t *testing.T) {
	_, grid := testEnv(t)
	gate := newGateModel(grid)
	s := newTestServer(t, func(c *Config) { c.Model = gate })
	h := s.Handler()

	hitsBefore := mCoalesceHits.Value()

	const n = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(t, h, "/v1/whatif", whatifBody)
			codes[i], bodies[i] = rec.Code, rec.Body.Bytes()
		}(i)
	}
	// Let the leader enter the model and the joiners pile onto its entry,
	// then open the gate.
	deadline := time.Now().Add(5 * time.Second)
	for gate.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no leader reached the model")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(gate.release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d: body differs from request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if hits := mCoalesceHits.Value() - hitsBefore; hits < n-1 {
		t.Fatalf("coalesce hits = %d, want >= %d", hits, n-1)
	}
	// One leader computed: 2 workloads x 2 allocations = 4 model calls.
	if calls := gate.calls.Load(); calls != 4 {
		t.Fatalf("model calls = %d, want 4 (one leader sweep)", calls)
	}
}

func TestDrainWithInflightJob(t *testing.T) {
	_, grid := testEnv(t)
	gate := newGateModel(grid)
	s := newTestServer(t, func(c *Config) { c.Model = gate; c.JobWorkers = 1 })
	h := s.Handler()

	id := submitSolve(t, h, solveBody)
	deadline := time.Now().Add(5 * time.Second)
	for gate.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Draining must be observable before the in-flight job finishes.
	deadline = time.Now().Add(5 * time.Second)
	for !s.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set")
		}
		time.Sleep(time.Millisecond)
	}

	// New work is refused...
	if rec := post(t, h, "/v1/solve", solveBody); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain: status %d, want 503", rec.Code)
	}
	if rec := post(t, h, "/v1/whatif", whatifBody); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("whatif during drain: status %d, want 503", rec.Code)
	}
	// ...but polling stays up: an accepted job's result must remain
	// reachable through the whole drain.
	if rec := get(t, h, "/v1/jobs/"+id); rec.Code != 200 {
		t.Fatalf("poll during drain: status %d", rec.Code)
	}
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", rec.Code)
	}

	close(gate.release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The accepted job ran to completion — drain keeps the 202 promise.
	if st := pollJob(t, h, id, 5*time.Second); st.State != jobDone {
		t.Fatalf("job after drain: state %s (error %q), want done", st.State, st.Error)
	}
}

func TestDrainDeadlineCancelsJobs(t *testing.T) {
	_, grid := testEnv(t)
	gate := newGateModel(grid) // never released
	s := newTestServer(t, func(c *Config) { c.Model = gate; c.JobWorkers = 1 })
	h := s.Handler()

	id := submitSolve(t, h, solveBody)
	deadline := time.Now().Add(5 * time.Second)
	for gate.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil despite a stuck job")
	}
	// The stuck job was canceled, not dropped: it is terminal and says so.
	if st := pollJob(t, h, id, 5*time.Second); st.State != jobCanceled {
		t.Fatalf("stuck job state %s, want canceled", st.State)
	}
}

func TestCheckpointGridServing(t *testing.T) {
	if os.Getenv(faults.EnvVar) != "" {
		// Under injected faults a lattice point may exhaust its retries and
		// be neighbor-filled in the returned grid while staying absent from
		// the checkpoint (checkpoints record measured points only) — so the
		// served-checkpoint round trip is defined for fault-free runs.
		t.Skipf("%s is set; checkpoint completeness is only guaranteed fault-free", faults.EnvVar)
	}
	// End-to-end through the satellite API: calibrate a small grid with a
	// checkpoint, then serve /v1/calibration/grid straight from the file.
	env := experiments.NewEnv(workload.TinyScale(), vm.DefaultMachineConfig())
	axes := []float64{0.5, 1.0}
	ck := t.TempDir() + "/grid.ck"
	g1, err := env.Calibrator().CalibrateGridOpts(context.Background(), axes, axes, axes,
		calibration.GridOptions{CheckpointPath: ck})
	if err != nil {
		t.Fatalf("CalibrateGridOpts: %v", err)
	}
	g2, err := calibration.LoadCheckpointGrid(ck)
	if err != nil {
		t.Fatalf("LoadCheckpointGrid: %v", err)
	}
	p1, _ := g1.Lookup(vm.Shares{CPU: 0.5, Memory: 1, IO: 0.5})
	p2, ok := g2.Lookup(vm.Shares{CPU: 0.5, Memory: 1, IO: 0.5})
	if !ok || p1 != p2 {
		t.Fatalf("checkpoint round-trip changed params: %+v vs %+v (exact=%v)", p1, p2, ok)
	}

	s, err := New(Config{Env: env, Grid: g2})
	if err != nil {
		t.Fatal(err)
	}
	rec := get(t, s.Handler(), "/v1/calibration/grid?cpu=0.5&mem=1&io=0.5")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp GridResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Exact || resp.Params != p1 {
		t.Fatalf("served params diverge from calibrated ones: %+v vs %+v", resp.Params, p1)
	}
}
