package server

// The autotune surface: vdtuned's closed-loop mode. When Config.Autotune
// is set, New builds a managed deployment — one VM per configured
// workload on a machine shaped like the environment's — and an
// autotune.Loop that watches those workloads' telemetry tenants (the
// same sketches every what-if request feeds), re-solves through the
// server's shared cost model, and reconfigures the VMs. The HTTP surface
// is deliberately small: status (the decision log), enable/disable, and
// a synchronous trigger that runs one tick and returns its decision —
// the deterministic drive shaft of the e2e soak test.

import (
	"fmt"
	"net/http"
	"time"

	"dbvirt/internal/autotune"
	"dbvirt/internal/core"
	"dbvirt/internal/vm"
)

// AutotuneOptions configures the control loop; zero-valued tuning fields
// inherit the autotune package defaults.
type AutotuneOptions struct {
	// Workloads are the managed tenants, positionally matched to the VMs
	// of the managed deployment. Telemetry tenant identity follows
	// tenantName: an explicit Name, else the canonical QUERYxN form.
	Workloads []WorkloadRef
	// Interval is the background tick period; 0 means no background
	// ticker (ticks only via POST /v1/autotune/trigger).
	Interval time.Duration
	// Resources to search (default cpu).
	Resources []string
	// Step is the solver grid quantum (default 0.25).
	Step float64
	// ResolveEvery re-solves every Nth tick absent a drift alarm.
	ResolveEvery int
	// Decision-layer knobs; see autotune.DeciderConfig.
	MinGain       float64
	ConfirmTicks  int
	CooldownTicks int
	MaxStepDelta  float64
	ChangeCost    float64
	// Enabled starts the loop actuating; disabled loops tick but skip.
	Enabled bool
}

func (o *AutotuneOptions) validate() error {
	if len(o.Workloads) < 2 {
		return fmt.Errorf("autotune: need at least 2 workloads, got %d", len(o.Workloads))
	}
	if len(o.Workloads) > maxWorkloads {
		return fmt.Errorf("autotune: too many workloads (%d > %d)", len(o.Workloads), maxWorkloads)
	}
	seen := make(map[string]bool, len(o.Workloads))
	for i, ref := range o.Workloads {
		if err := validateRef(ref); err != nil {
			return fmt.Errorf("autotune: workload %d: %w", i, err)
		}
		name := tenantName(ref)
		if seen[name] {
			return fmt.Errorf("autotune: duplicate tenant %q (two VMs cannot share one telemetry stream)", name)
		}
		seen[name] = true
	}
	for _, r := range o.Resources {
		if _, err := parseResource(r); err != nil {
			return fmt.Errorf("autotune: %w", err)
		}
	}
	return nil
}

// initAutotune assembles the managed deployment and the loop; called
// from New when Config.Autotune is set.
func (s *Server) initAutotune(opts *AutotuneOptions) error {
	if err := opts.validate(); err != nil {
		return err
	}
	specs, err := s.wl.resolve(opts.Workloads)
	if err != nil {
		return fmt.Errorf("autotune: resolving workloads: %w", err)
	}
	machine, err := vm.NewMachine(s.cfg.Env.Machine)
	if err != nil {
		return fmt.Errorf("autotune: %w", err)
	}
	equal := core.EqualAllocation(len(specs))
	vms := make([]*vm.VM, len(specs))
	tenants := make([]autotune.ManagedTenant, len(specs))
	for i, ref := range opts.Workloads {
		name := tenantName(ref)
		if vms[i], err = machine.NewVM(name, equal[i]); err != nil {
			return fmt.Errorf("autotune: %w", err)
		}
		tenants[i] = autotune.ManagedTenant{
			Name:       name,
			DB:         specs[i].DB,
			Weight:     ref.Weight,
			SLOSeconds: ref.SLOSeconds,
			// The configured definition describes the tenant until its
			// sketch has traffic — and its normalized statements are the
			// same keys recordWhatIf streams, so the handoff is seamless.
			Fallback: specs[i].NormalizedStatements(),
		}
	}
	resources := make([]vm.Resource, len(opts.Resources))
	for i, r := range opts.Resources {
		resources[i], _ = parseResource(r) // validated above
	}
	loop, err := autotune.NewLoop(autotune.Config{
		Hub:       s.cfg.Telemetry,
		Model:     s.cfg.Model,
		VMs:       vms,
		Tenants:   tenants,
		Resources: resources,
		Step:      opts.Step,
		Decider: autotune.DeciderConfig{
			MinGain:       opts.MinGain,
			ConfirmTicks:  opts.ConfirmTicks,
			CooldownTicks: int64(opts.CooldownTicks),
			MaxStepDelta:  opts.MaxStepDelta,
			ChangeCost:    opts.ChangeCost,
		},
		ResolveEvery: opts.ResolveEvery,
		Parallelism:  s.cfg.Parallelism,
		Obs:          s.cfg.Obs,
		StartEnabled: opts.Enabled,
	})
	if err != nil {
		return err
	}
	s.tuner = loop
	return nil
}

// AutotuneToggleResponse answers enable/disable.
type AutotuneToggleResponse struct {
	Enabled bool `json:"enabled"`
}

func (s *Server) handleAutotuneStatus(w http.ResponseWriter, _ *http.Request) {
	if s.tuner == nil {
		writeError(w, http.StatusNotFound, "autotune not configured (start vdtuned with -autotune)")
		return
	}
	writeJSON(w, http.StatusOK, s.tuner.Status())
}

func (s *Server) handleAutotuneEnable(w http.ResponseWriter, _ *http.Request) {
	if s.tuner == nil {
		writeError(w, http.StatusNotFound, "autotune not configured (start vdtuned with -autotune)")
		return
	}
	s.tuner.Enable()
	writeJSON(w, http.StatusOK, AutotuneToggleResponse{Enabled: true})
}

func (s *Server) handleAutotuneDisable(w http.ResponseWriter, _ *http.Request) {
	if s.tuner == nil {
		writeError(w, http.StatusNotFound, "autotune not configured (start vdtuned with -autotune)")
		return
	}
	s.tuner.Disable()
	writeJSON(w, http.StatusOK, AutotuneToggleResponse{Enabled: false})
}

// handleAutotuneTrigger runs one control-loop tick synchronously and
// returns its decision. The decision layer still applies — a trigger is
// a forced evaluation, not a forced actuation — and a tick whose resolve
// failed reports action "error" in the decision rather than an HTTP
// error, because the loop absorbed it.
func (s *Server) handleAutotuneTrigger(w http.ResponseWriter, r *http.Request) {
	if s.tuner == nil {
		writeError(w, http.StatusNotFound, "autotune not configured (start vdtuned with -autotune)")
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	writeJSON(w, http.StatusOK, s.tuner.Trigger(ctx))
}
