package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dbvirt/internal/obs"
)

const placementBody = `{"tenants":[{"query":"Q4","count":6},{"query":"Q13","name":"q13","count":6}]}`

func postPlacement(t *testing.T, h http.Handler, body string) *PlacementResponse {
	t.Helper()
	rec := post(t, h, "/v1/placement", body)
	if rec.Code != 200 {
		t.Fatalf("placement: status %d: %s", rec.Code, rec.Body)
	}
	var resp PlacementResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return &resp
}

func TestPlacementValidation(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()
	cases := []struct {
		name, path, body string
		wantSubstr       string
	}{
		{"malformed json", "/v1/placement", `{`, "malformed"},
		{"unknown field", "/v1/placement", `{"tenant":[]}`, "unknown field"},
		{"no tenants", "/v1/placement", `{"tenants":[]}`, "no tenants"},
		{"unknown query", "/v1/placement", `{"tenants":[{"query":"Q99"}]}`, "unknown query"},
		{"count range", "/v1/placement", `{"tenants":[{"query":"Q4","count":2000}]}`, "count"},
		{"fleet too large", "/v1/placement",
			`{"tenants":[{"query":"Q4","count":1024},{"query":"Q13","count":1024},{"query":"Q6","count":1024},{"query":"Q1","count":1024},{"query":"Q3","count":1024}]}`,
			"too many tenants"},
		{"bad algo", "/v1/placement", `{"tenants":[{"query":"Q4"}],"algo":"annealing"}`, "unknown algo"},
		{"bad resource", "/v1/placement", `{"tenants":[{"query":"Q4"}],"resources":["gpu"]}`, "unknown resource"},
		{"negative timeout", "/v1/placement", `{"tenants":[{"query":"Q4"}],"timeout_ms":-1}`, "timeout"},
		{"bad threshold", "/v1/placement", `{"tenants":[{"query":"Q4"}],"threshold":2}`, "threshold"},
		{"bad step", "/v1/placement", `{"tenants":[{"query":"Q4"}],"step":0.3}`, "step"},
		{"no events", "/v1/placement/events", `{"events":[]}`, "no events"},
		{"unknown event type", "/v1/placement/events", `{"events":[{"type":"migrate"}]}`, "unknown type"},
		{"leave without name", "/v1/placement/events", `{"events":[{"type":"leave"}]}`, "tenant name"},
		{"arrive without tenant", "/v1/placement/events", `{"events":[{"type":"arrive"}]}`, "needs a tenant"},
		{"arrive with count", "/v1/placement/events",
			`{"events":[{"type":"arrive","tenant":{"query":"Q4","count":2}}]}`, "one tenant per event"},
		{"event unknown query", "/v1/placement/events",
			`{"events":[{"type":"arrive","tenant":{"query":"Q99"}}]}`, "unknown query"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, h, tc.path, tc.body)
			if rec.Code != 400 {
				t.Fatalf("status %d, want 400 (body %s)", rec.Code, rec.Body)
			}
			var e errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("non-JSON error body: %s", rec.Body)
			}
			if !strings.Contains(e.Error, tc.wantSubstr) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.wantSubstr)
			}
		})
	}

	// Too many events is checked before anything touches state.
	var evs []string
	for i := 0; i < maxPlacementEvents+1; i++ {
		evs = append(evs, fmt.Sprintf(`{"type":"leave","name":"t%d"}`, i))
	}
	rec := post(t, h, "/v1/placement/events", `{"events":[`+strings.Join(evs, ",")+`]}`)
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), "too many events") {
		t.Fatalf("oversized events: status %d: %s", rec.Code, rec.Body)
	}
}

func TestPlacementSolveAndEvents(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	// Events against an empty server: nothing to apply them to.
	rec := post(t, h, "/v1/placement/events", `{"events":[{"type":"leave","name":"q13-0000"}]}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("events before placement: status %d, want 409 (%s)", rec.Code, rec.Body)
	}

	resp := postPlacement(t, h, placementBody)
	if !resp.Verified {
		t.Fatal("placement response not verified")
	}
	if resp.Stats.Tenants != 12 {
		t.Fatalf("tenants = %d, want 12", resp.Stats.Tenants)
	}
	if resp.TotalCost <= 0 || len(resp.Machines) == 0 || len(resp.Classes) == 0 {
		t.Fatalf("degenerate placement: %+v", resp)
	}
	seats := 0
	for _, m := range resp.Machines {
		seats += len(m.Tenants)
	}
	if seats != 12 {
		t.Fatalf("seated tenants = %d, want 12", seats)
	}
	if st, ok := s.plStats(); !ok || st.Tenants != 12 {
		t.Fatalf("server placement state: %+v ok=%v", st, ok)
	}

	// One arrival, one departure, applied incrementally.
	rec = post(t, h, "/v1/placement/events",
		`{"events":[{"type":"arrive","tenant":{"query":"Q6","name":"newt"}},{"type":"leave","name":"q13-0005"}]}`)
	if rec.Code != 200 {
		t.Fatalf("events: status %d: %s", rec.Code, rec.Body)
	}
	var after PlacementResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.Events != 2 || !after.Verified || after.Stats.Tenants != 12 {
		t.Fatalf("post-events placement: events=%d verified=%v tenants=%d",
			after.Events, after.Verified, after.Stats.Tenants)
	}

	// The incrementally updated placement must be bit-identical to solving
	// the final fleet from scratch: same classes, machines, and fleet cost.
	fresh := postPlacement(t, h,
		`{"tenants":[{"query":"Q4","count":6},{"query":"Q13","name":"q13","count":5},{"query":"Q6","name":"newt"}]}`)
	for _, cmp := range []struct {
		name      string
		got, want any
	}{
		{"classes", after.Classes, fresh.Classes},
		{"machines", after.Machines, fresh.Machines},
		{"total_cost", after.TotalCost, fresh.TotalCost},
		{"order", after.Order, fresh.Order},
	} {
		got, _ := json.Marshal(cmp.got)
		want, _ := json.Marshal(cmp.want)
		if !bytes.Equal(got, want) {
			t.Fatalf("incremental %s diverge from fresh solve:\n got %s\nwant %s", cmp.name, got, want)
		}
	}

	// Caller mistakes in otherwise well-formed events are 400s, and the
	// placement is left untouched.
	rec = post(t, h, "/v1/placement/events", `{"events":[{"type":"leave","name":"nope"}]}`)
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), "unknown tenant") {
		t.Fatalf("leave unknown: status %d: %s", rec.Code, rec.Body)
	}
	rec = post(t, h, "/v1/placement/events",
		`{"events":[{"type":"arrive","tenant":{"query":"Q6","name":"newt"}}]}`)
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), "already present") {
		t.Fatalf("duplicate arrive: status %d: %s", rec.Code, rec.Body)
	}
}

// TestPlacementNormalizeReuse is the end-to-end check that fleet
// placement rides the interned-spec normalization cache: tenants sharing
// a workload are featurized once per spec, every other one counted by
// placement.normalize.reused.
func TestPlacementNormalizeReuse(t *testing.T) {
	s := newTestServer(t, nil)
	reused := obs.Global.Counter("placement.normalize.reused")
	before := reused.Value()
	resp := postPlacement(t, s.Handler(), `{"tenants":[{"query":"Q4","count":8},{"query":"Q13","count":8}]}`)
	if resp.Stats.Tenants != 16 {
		t.Fatalf("tenants = %d, want 16", resp.Stats.Tenants)
	}
	// 16 tenants over 2 interned specs: at least 14 feature derivations
	// must be cache hits, not fresh normalization passes.
	if delta := reused.Value() - before; delta < 14 {
		t.Fatalf("placement.normalize.reused grew by %d, want >= 14", delta)
	}
}

func TestPlacementAdmission429(t *testing.T) {
	_, grid := testEnv(t)
	gate := newGateModel(grid)
	s := newTestServer(t, func(c *Config) {
		c.Model = gate
		c.MaxInflight = 1
		c.MaxQueue = 1
		c.RetryAfter = 2 * time.Second
	})
	h := s.Handler()

	// Distinct seeds: identical bodies would coalesce instead of queueing.
	body := func(i int) string {
		return fmt.Sprintf(`{"tenants":[{"query":"Q4","count":2}],"seed":%d}`, i+1)
	}
	var wg sync.WaitGroup
	statuses := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i] = post(t, h, "/v1/placement", body(i)).Code
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for gate.calls.Load() == 0 || s.lim.pressure.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("saturation never reached (calls=%d pressure=%d)", gate.calls.Load(), s.lim.pressure.Load())
		}
		time.Sleep(time.Millisecond)
	}
	rec := post(t, h, "/v1/placement", body(2))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", ra)
	}

	close(gate.release)
	wg.Wait()
	for i, code := range statuses {
		if code != 200 {
			t.Fatalf("request %d: status %d, want 200", i, code)
		}
	}
}

func TestPlacementCoalesceInflightOnly(t *testing.T) {
	_, grid := testEnv(t)
	gate := newGateModel(grid)
	s := newTestServer(t, func(c *Config) { c.Model = gate })
	h := s.Handler()

	joinsBefore := mCoalesceInflight.Value()
	const n = 4
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(t, h, "/v1/placement", placementBody)
			codes[i], bodies[i] = rec.Code, rec.Body.Bytes()
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for gate.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no leader reached the model")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(gate.release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d: body differs from request 0", i)
		}
	}
	if joins := mCoalesceInflight.Value() - joinsBefore; joins < n-1 {
		t.Fatalf("in-flight joins = %d, want >= %d", joins, n-1)
	}

	// In-flight only: an identical request arriving after completion must
	// recompute (a memoized replay could hand out a placement that later
	// events superseded). Recomputation is visible as fresh model calls.
	calls := gate.calls.Load()
	if rec := post(t, h, "/v1/placement", placementBody); rec.Code != 200 {
		t.Fatalf("follow-up placement: status %d: %s", rec.Code, rec.Body)
	}
	if gate.calls.Load() == calls {
		t.Fatal("follow-up identical placement was served from a memo; want recompute")
	}
}
