// Package server implements vdtuned: a long-running tuning-as-a-service
// daemon over the virtualization design engine. It exposes the what-if
// cost model and the design-search solvers as an HTTP/JSON API, sharing
// one prepared-statement cache and one cross-request cost memo across
// every session, coalescing identical in-flight what-if sweeps, bounding
// concurrency with admission control, and draining gracefully on
// shutdown. The paper casts the design advisor as a tool invoked per
// consolidation decision; this package is the shape that tool takes when
// it must serve many concurrent tuning sessions (see DESIGN.md §10).
package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dbvirt/internal/core"
	"dbvirt/internal/experiments"
	"dbvirt/internal/vm"
	"dbvirt/internal/workload"
)

// Request size bounds: anything beyond these is a malformed or abusive
// request, rejected with 400 before any work is done.
const (
	maxWorkloads   = 16
	maxRepeat      = 64
	maxAllocations = 4096
	maxBodyBytes   = 1 << 20
)

// WorkloadRef names one workload of a request: n repetitions of one of
// the built-in benchmark queries (Q1, Q3, Q4, Q6, Q13, QPOINT) over a
// server-managed database. Workloads with equal query/repeat/weight/SLO
// resolve to the same interned *core.WorkloadSpec, so the shared cost
// memo and prepared-statement cache apply across requests and sessions.
type WorkloadRef struct {
	Name       string  `json:"name,omitempty"`
	Query      string  `json:"query"`
	Repeat     int     `json:"repeat,omitempty"` // default 1
	Weight     float64 `json:"weight,omitempty"`
	SLOSeconds float64 `json:"slo_seconds,omitempty"`
}

// SharesDTO is one allocation column: the fraction of each physical
// resource granted to a workload's VM.
type SharesDTO struct {
	CPU    float64 `json:"cpu"`
	Memory float64 `json:"memory"`
	IO     float64 `json:"io"`
}

func (s SharesDTO) shares() vm.Shares {
	return vm.Shares{CPU: s.CPU, Memory: s.Memory, IO: s.IO}
}

func sharesDTO(s vm.Shares) SharesDTO {
	return SharesDTO{CPU: s.CPU, Memory: s.Memory, IO: s.IO}
}

func (s SharesDTO) validate() error {
	for _, v := range []float64{s.CPU, s.Memory, s.IO} {
		if !(v > 0 && v <= 1) {
			return fmt.Errorf("share %g out of range (0, 1]", v)
		}
	}
	return nil
}

// WhatIfRequest asks for the batch cost matrix of a workload set under
// candidate allocations — one row per workload, one column per
// allocation, exactly the inner loop of the paper's design search.
type WhatIfRequest struct {
	Workloads   []WorkloadRef `json:"workloads"`
	Allocations []SharesDTO   `json:"allocations"`
	// TimeoutMS bounds this request's computation; 0 uses the server
	// default. The deadline is threaded into every cost-model call.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (r *WhatIfRequest) validate() error {
	if len(r.Workloads) == 0 {
		return fmt.Errorf("no workloads")
	}
	if len(r.Workloads) > maxWorkloads {
		return fmt.Errorf("too many workloads (%d > %d)", len(r.Workloads), maxWorkloads)
	}
	if len(r.Allocations) == 0 {
		return fmt.Errorf("no allocations")
	}
	if len(r.Allocations) > maxAllocations {
		return fmt.Errorf("too many allocations (%d > %d)", len(r.Allocations), maxAllocations)
	}
	for i, w := range r.Workloads {
		if err := validateRef(w); err != nil {
			return fmt.Errorf("workload %d: %w", i, err)
		}
	}
	for i, a := range r.Allocations {
		if err := a.validate(); err != nil {
			return fmt.Errorf("allocation %d: %w", i, err)
		}
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("negative timeout_ms")
	}
	return nil
}

// coalesceKey is the canonical identity of a what-if sweep: defaults
// applied, names dropped (they do not affect costs), deterministic field
// order. Two requests with equal keys compute byte-identical responses,
// which is what makes coalescing them sound.
func (r *WhatIfRequest) coalesceKey() string {
	var b strings.Builder
	for _, w := range r.Workloads {
		fmt.Fprintf(&b, "w:%s;", refKey(w))
	}
	for _, a := range r.Allocations {
		fmt.Fprintf(&b, "a:%.9f,%.9f,%.9f;", a.CPU, a.Memory, a.IO)
	}
	return b.String()
}

// WhatIfResponse is the dense cost matrix: Costs[i][j] is the predicted
// seconds of Workloads[i] under Allocations[j].
type WhatIfResponse struct {
	Model string      `json:"model"`
	Costs [][]float64 `json:"costs"`
}

// SolveRequest submits one design problem for asynchronous solving.
type SolveRequest struct {
	Workloads  []WorkloadRef `json:"workloads"`
	Resources  []string      `json:"resources,omitempty"` // default ["cpu"]
	Step       float64       `json:"step,omitempty"`      // default 0.25
	Algo       string        `json:"algo,omitempty"`      // dp (default), greedy, exhaustive
	SLOPenalty float64       `json:"slo_penalty,omitempty"`
	TimeoutMS  int64         `json:"timeout_ms,omitempty"`
}

func (r *SolveRequest) applyDefaults() {
	if r.Step == 0 {
		r.Step = 0.25
	}
	if r.Algo == "" {
		r.Algo = "dp"
	}
	if len(r.Resources) == 0 {
		r.Resources = []string{"cpu"}
	}
}

func (r *SolveRequest) validate() error {
	if len(r.Workloads) < 2 {
		return fmt.Errorf("need at least 2 workloads, got %d", len(r.Workloads))
	}
	if len(r.Workloads) > maxWorkloads {
		return fmt.Errorf("too many workloads (%d > %d)", len(r.Workloads), maxWorkloads)
	}
	for i, w := range r.Workloads {
		if err := validateRef(w); err != nil {
			return fmt.Errorf("workload %d: %w", i, err)
		}
	}
	switch r.Algo {
	case "dp", "greedy", "exhaustive":
	default:
		return fmt.Errorf("unknown algo %q (want dp, greedy, or exhaustive)", r.Algo)
	}
	if !(r.Step > 0 && r.Step <= 0.5) {
		return fmt.Errorf("step %g out of range (0, 0.5]", r.Step)
	}
	for _, res := range r.Resources {
		if _, err := parseResource(res); err != nil {
			return err
		}
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("negative timeout_ms")
	}
	if r.SLOPenalty < 0 {
		return fmt.Errorf("negative slo_penalty")
	}
	return nil
}

func parseResource(s string) (vm.Resource, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "cpu":
		return vm.CPU, nil
	case "memory", "mem":
		return vm.Memory, nil
	case "io":
		return vm.IO, nil
	}
	return 0, fmt.Errorf("unknown resource %q (want cpu, memory, or io)", s)
}

// SolveAccepted acknowledges an accepted solve job.
type SolveAccepted struct {
	JobID string `json:"job_id"`
}

// SolveResult is the deterministic part of a core.Result: everything but
// the wall clock, so the same problem solved twice — serially or under
// load — marshals to byte-identical JSON.
type SolveResult struct {
	Algorithm      string      `json:"algorithm"`
	Allocation     []SharesDTO `json:"allocation"`
	PredictedCosts []float64   `json:"predicted_costs"`
	PredictedTotal float64     `json:"predicted_total"`
	Evaluations    int         `json:"evaluations"`
	CacheHits      int         `json:"cache_hits"`
}

func solveResult(r *core.Result) *SolveResult {
	out := &SolveResult{
		Algorithm:      r.Algorithm,
		PredictedCosts: r.PredictedCosts,
		PredictedTotal: r.PredictedTotal,
		Evaluations:    r.Evaluations,
		CacheHits:      r.CacheHits,
	}
	for _, sh := range r.Allocation {
		out.Allocation = append(out.Allocation, sharesDTO(sh))
	}
	return out
}

// JobStatus is the polled view of one solve job.
type JobStatus struct {
	ID     string       `json:"id"`
	State  string       `json:"state"`
	Result *SolveResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// errorResponse is the uniform error body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func validateRef(w WorkloadRef) error {
	if _, ok := workload.Queries()[strings.ToUpper(strings.TrimSpace(w.Query))]; !ok {
		var names []string
		for k := range workload.Queries() {
			names = append(names, k)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown query %q (have %s)", w.Query, strings.Join(names, ", "))
	}
	if w.Repeat < 0 || w.Repeat > maxRepeat {
		return fmt.Errorf("repeat %d out of range [0, %d]", w.Repeat, maxRepeat)
	}
	if w.Weight < 0 {
		return fmt.Errorf("negative weight")
	}
	if w.SLOSeconds < 0 {
		return fmt.Errorf("negative slo_seconds")
	}
	return nil
}

// refKey canonicalizes a workload reference for interning and cache
// identity. The display name is excluded: it does not affect statements,
// bindings, or costs.
func refKey(w WorkloadRef) string {
	n := w.Repeat
	if n == 0 {
		n = 1
	}
	return fmt.Sprintf("%sx%d|w=%.9f|slo=%.9f", strings.ToUpper(strings.TrimSpace(w.Query)), n, w.Weight, w.SLOSeconds)
}

// workloadSet interns *core.WorkloadSpec values by canonical reference,
// backed by one lazily built database per distinct query. Interning is
// the server's session model: every request naming the same workload gets
// the same spec pointer and the same database, so the prepared-statement
// cache (keyed by database + normalized SQL) and the shared cost memo
// (keyed by spec) concentrate instead of fragmenting per request.
type workloadSet struct {
	env   *experiments.Env
	mu    sync.Mutex
	specs map[string]*core.WorkloadSpec
}

func newWorkloadSet(env *experiments.Env) *workloadSet {
	return &workloadSet{env: env, specs: make(map[string]*core.WorkloadSpec)}
}

// spec resolves one workload reference to its interned spec, building the
// query's database on first use.
func (s *workloadSet) spec(ref WorkloadRef) (*core.WorkloadSpec, error) {
	key := refKey(ref)
	s.mu.Lock()
	sp, ok := s.specs[key]
	s.mu.Unlock()
	if ok {
		return sp, nil
	}
	qname := strings.ToUpper(strings.TrimSpace(ref.Query))
	n := ref.Repeat
	if n == 0 {
		n = 1
	}
	// One database per query: env.DB serializes builds internally, and
	// workloads over the same query share catalog, statistics, and the
	// prepared plan spaces derived from them.
	db, err := s.env.DB("srv-" + qname)
	if err != nil {
		return nil, fmt.Errorf("server: building database for %s: %w", qname, err)
	}
	sp = &core.WorkloadSpec{
		Name:       fmt.Sprintf("%sx%d", qname, n),
		Statements: workload.Repeat(qname, workload.Query(qname), n).Statements,
		DB:         db,
		Weight:     ref.Weight,
		SLOSeconds: ref.SLOSeconds,
	}
	s.mu.Lock()
	if cur, ok := s.specs[key]; ok {
		sp = cur // lost an intern race; keep the winner
	} else {
		s.specs[key] = sp
	}
	s.mu.Unlock()
	return sp, nil
}

// specs resolves a whole request's workload list.
func (s *workloadSet) resolve(refs []WorkloadRef) ([]*core.WorkloadSpec, error) {
	out := make([]*core.WorkloadSpec, len(refs))
	for i, ref := range refs {
		sp, err := s.spec(ref)
		if err != nil {
			return nil, err
		}
		out[i] = sp
	}
	return out, nil
}
