package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// do issues one in-process request without any testing.T plumbing, so it
// is safe to call from load-test worker goroutines.
func do(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

// postRetry drives one POST through deliberate 429s to completion.
func postRetry(h http.Handler, path, body string) (*httptest.ResponseRecorder, error) {
	for attempt := 0; ; attempt++ {
		rec := do(h, http.MethodPost, path, body)
		if rec.Code != http.StatusTooManyRequests {
			return rec, nil
		}
		if attempt > 5000 {
			return nil, fmt.Errorf("POST %s: still 429 after %d attempts", path, attempt)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// pollJobErr polls a job to a terminal state, returning a synthetic
// "poll-timeout" state on deadline instead of failing the test directly.
func pollJobErr(h http.Handler, id string, timeout time.Duration) JobStatus {
	deadline := time.Now().Add(timeout)
	for {
		rec := do(h, http.MethodGet, "/v1/jobs/"+id, "")
		var st JobStatus
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &st); err == nil {
				switch st.State {
				case jobDone, jobFailed, jobCanceled:
					return st
				}
			}
		}
		if time.Now().After(deadline) {
			st.State = "poll-timeout"
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestConcurrentMixedLoad is the serving-scale acceptance test: 512
// mixed requests from 16 goroutines against one daemon must produce zero
// unexpected errors (deliberate 429s retried), responses byte-identical
// to a serial baseline computed on a separate server over the same data,
// a nonzero coalesce-hit count, and a clean drain afterwards. Run with
// -race: the point is that the sharing — prepared statements, the cost
// memo, the coalescer — is free of data races, not just fast.
func TestConcurrentMixedLoad(t *testing.T) {
	env, grid := testEnv(t)

	// Serial baseline on its own server instance: same environment, fresh
	// caches, requests one at a time. Anything the concurrent server
	// returns must match these bytes exactly.
	serial, err := New(Config{Env: env, Grid: grid})
	if err != nil {
		t.Fatal(err)
	}

	// The request mix: 6 distinct what-if sweeps and 2 distinct solve
	// problems. Few distinct keys under many requests is the workload
	// coalescing exists for.
	whatifs := make([]string, 6)
	for i := range whatifs {
		whatifs[i] = fmt.Sprintf(`{"workloads":[{"query":"Q4","repeat":%d},{"query":"Q13","repeat":%d}],`+
			`"allocations":[{"cpu":0.25,"memory":0.5,"io":0.5},{"cpu":0.5,"memory":0.5,"io":0.5},{"cpu":0.75,"memory":0.5,"io":0.5}]}`,
			i%3+1, i/3+2)
	}
	solves := []string{
		`{"workloads":[{"query":"Q4","repeat":2},{"query":"Q13","repeat":3}],"step":0.25}`,
		`{"workloads":[{"query":"Q6","repeat":1},{"query":"Q1","repeat":1}],"algo":"greedy","step":0.25}`,
	}

	wantWhatif := make([][]byte, len(whatifs))
	for i, body := range whatifs {
		rec := do(serial.Handler(), http.MethodPost, "/v1/whatif", body)
		if rec.Code != 200 {
			t.Fatalf("serial whatif %d: status %d: %s", i, rec.Code, rec.Body)
		}
		wantWhatif[i] = append([]byte(nil), rec.Body.Bytes()...)
	}
	wantSolve := make([][]byte, len(solves))
	for i, body := range solves {
		id := submitSolve(t, serial.Handler(), body)
		st := pollJob(t, serial.Handler(), id, 30*time.Second)
		if st.State != jobDone {
			t.Fatalf("serial solve %d: state %s (%s)", i, st.State, st.Error)
		}
		b, err := json.Marshal(st.Result)
		if err != nil {
			t.Fatal(err)
		}
		wantSolve[i] = b
	}

	// The hammered server: limits small enough that admission control
	// genuinely engages, large enough that retries converge fast.
	s := newTestServer(t, func(c *Config) {
		c.MaxInflight = 2
		c.MaxQueue = 4
		c.JobWorkers = 2
		c.JobQueue = 4
		c.RetryAfter = time.Second
	})
	h := s.Handler()
	hitsBefore := mCoalesceHits.Value()
	rejectsBefore := mAdmissionReject.Value() + mJobsRejected.Value()

	const (
		workers = 16
		total   = 512
	)
	errc := make(chan error, total)
	work := make(chan int, total)
	for i := 0; i < total; i++ {
		work <- i
	}
	close(work)

	handle := func(i int) error {
		if i%4 == 3 { // every 4th request is a solve
			si := i % len(solves)
			rec, err := postRetry(h, "/v1/solve", solves[si])
			if err != nil {
				return err
			}
			if rec.Code != http.StatusAccepted {
				return fmt.Errorf("solve %d: status %d: %s", i, rec.Code, rec.Body)
			}
			var acc SolveAccepted
			if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
				return err
			}
			st := pollJobErr(h, acc.JobID, 60*time.Second)
			if st.State != jobDone {
				return fmt.Errorf("solve %d job %s: state %s (%s)", i, acc.JobID, st.State, st.Error)
			}
			got, err := json.Marshal(st.Result)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, wantSolve[si]) {
				return fmt.Errorf("solve %d: result diverges from serial:\n got %s\nwant %s", i, got, wantSolve[si])
			}
			return nil
		}
		wi := i % len(whatifs)
		rec, err := postRetry(h, "/v1/whatif", whatifs[wi])
		if err != nil {
			return err
		}
		if rec.Code != 200 {
			return fmt.Errorf("whatif %d: status %d: %s", i, rec.Code, rec.Body)
		}
		if !bytes.Equal(rec.Body.Bytes(), wantWhatif[wi]) {
			return fmt.Errorf("whatif %d: body diverges from serial:\n got %s\nwant %s", i, rec.Body, wantWhatif[wi])
		}
		return nil
	}

	for w := 0; w < workers; w++ {
		go func() {
			for i := range work {
				errc <- handle(i)
			}
		}()
	}
	for i := 0; i < total; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	if hits := mCoalesceHits.Value() - hitsBefore; hits == 0 {
		t.Fatal("coalesce hits = 0 across 512 requests with 6 distinct sweeps")
	} else {
		t.Logf("coalesce hits: %d; admission rejections retried: %d",
			hits, mAdmissionReject.Value()+mJobsRejected.Value()-rejectsBefore)
	}

	// And the loaded server drains cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain after load: %v", err)
	}
	if rec := do(h, http.MethodPost, "/v1/whatif", whatifs[0]); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain whatif: status %d, want 503", rec.Code)
	}
}
