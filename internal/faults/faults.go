// Package faults is a seeded, deterministic fault injector for the
// simulated measurement path. Calibration measurements are, in a real
// deployment, noisy and occasionally fail outright (§4 of the paper reads
// execution times off a live system); the simulator is perfectly clean, so
// without injection none of the recovery machinery — retries, trimmed
// medians, robust fits, bad-point interpolation — would ever execute. An
// Injector makes every failure mode reproducible: the outcome of a
// measurement is a pure function of (seed, measurement key, attempt), so
// it does not depend on goroutine scheduling, wall-clock time, or how many
// workers share the injector. Two runs with the same seed inject exactly
// the same faults at exactly the same probes, which is what lets the
// checkpoint/resume and parallel-equivalence tests demand bit-identical
// results even with injection enabled.
//
// The injector models four failure classes, each at an independent rate:
//
//   - transient errors (ErrTransient): the measurement fails but a retry
//     may succeed — the retry draws a fresh outcome for attempt+1;
//   - hard errors (ErrHard): the measurement fails on every attempt;
//   - latency spikes: the measurement succeeds but its elapsed time is
//     multiplied by SpikeFactor (an outlier for trimmed aggregation);
//   - multiplicative noise: the elapsed time is scaled by a uniform
//     factor in [1-NoiseSigma, 1+NoiseSigma] (zero-mean jitter).
//
// A Panic rate exists for tests: it makes the measurement path panic so
// worker-pool recover() handling can be exercised.
//
// Injection is enabled for a whole process with the DBVIRT_FAULTS
// environment variable (see Parse for the spec syntax), which is how the
// CI fault-injection job runs the entire test suite under faults, or
// programmatically by handing an Injector to the measuring component.
//
// The package is dependency-free (like internal/obs) so any layer may
// consult it without import cycles.
package faults

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// EnvVar is the environment variable that enables process-wide fault
// injection; its value is a Parse spec.
const EnvVar = "DBVIRT_FAULTS"

// FromEnv builds an injector from the DBVIRT_FAULTS environment variable.
// An unset or empty variable returns nil (no injection); a malformed spec
// returns an error so misconfigured CI jobs fail loudly instead of
// silently testing nothing.
func FromEnv() (*Injector, error) {
	spec := os.Getenv(EnvVar)
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	cfg, err := Parse(spec)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", EnvVar, err)
	}
	return New(cfg), nil
}

// ErrTransient is the injected retryable measurement failure.
var ErrTransient = errors.New("faults: injected transient measurement error")

// ErrHard is the injected permanent measurement failure.
var ErrHard = errors.New("faults: injected hard failure")

// IsTransient reports whether err is (or wraps) a retryable fault.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Config sets the per-measurement probability of each failure class. All
// rates are probabilities in [0, 1] and are evaluated independently per
// (key, attempt); zero disables that class.
type Config struct {
	// Seed selects the deterministic fault stream; runs with equal seeds
	// (and equal rates) inject identical faults.
	Seed int64
	// Transient is the rate of retryable measurement errors.
	Transient float64
	// Hard is the rate of permanent measurement failures.
	Hard float64
	// Spike is the rate of latency spikes; a spiked measurement's elapsed
	// time is multiplied by SpikeFactor.
	Spike float64
	// SpikeFactor is the latency-spike multiplier (default 10).
	SpikeFactor float64
	// Noise is the rate of multiplicative timing noise.
	Noise float64
	// NoiseSigma is the half-width of the uniform noise factor (default
	// 0.05, i.e. ±5%).
	NoiseSigma float64
	// Panic is the rate of injected panics in the measurement path; only
	// tests should set it.
	Panic float64
}

// Validate checks every rate and magnitude is in range.
func (c Config) Validate() error {
	rates := map[string]float64{
		"transient": c.Transient, "hard": c.Hard, "spike": c.Spike,
		"noise": c.Noise, "panic": c.Panic, "noise-sigma": c.NoiseSigma,
	}
	for name, v := range rates {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: %s=%g out of range [0,1]", name, v)
		}
	}
	if c.SpikeFactor < 0 {
		return fmt.Errorf("faults: spike-factor=%g must be non-negative", c.SpikeFactor)
	}
	return nil
}

func (c Config) spikeFactor() float64 {
	if c.SpikeFactor == 0 {
		return 10
	}
	return c.SpikeFactor
}

func (c Config) noiseSigma() float64 {
	if c.NoiseSigma == 0 {
		return 0.05
	}
	return c.NoiseSigma
}

// String renders the config in Parse syntax (deterministic field order).
func (c Config) String() string {
	parts := []string{fmt.Sprintf("seed=%d", c.Seed)}
	add := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("transient", c.Transient)
	add("hard", c.Hard)
	add("spike", c.Spike)
	add("spike-factor", c.SpikeFactor)
	add("noise", c.Noise)
	add("noise-sigma", c.NoiseSigma)
	add("panic", c.Panic)
	return strings.Join(parts, ",")
}

// Parse reads a fault spec of the form
//
//	seed=42,transient=0.1,noise=0.05,noise-sigma=0.05,spike=0.01,hard=0,panic=0
//
// Unknown keys are rejected; omitted keys default to zero (seed defaults
// to 1 so that an all-rates spec is still deterministic).
func Parse(spec string) (Config, error) {
	cfg := Config{Seed: 1}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("faults: bad spec element %q (want key=value)", part)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		if k == "seed" {
			s, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faults: bad seed %q", v)
			}
			cfg.Seed = s
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Config{}, fmt.Errorf("faults: bad value %q for %s", v, k)
		}
		switch k {
		case "transient":
			cfg.Transient = f
		case "hard":
			cfg.Hard = f
		case "spike":
			cfg.Spike = f
		case "spike-factor":
			cfg.SpikeFactor = f
		case "noise":
			cfg.Noise = f
		case "noise-sigma":
			cfg.NoiseSigma = f
		case "panic":
			cfg.Panic = f
		default:
			return Config{}, fmt.Errorf("faults: unknown spec key %q", k)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Injector draws deterministic fault outcomes. The nil *Injector is valid
// and injects nothing, so callers hold one unconditionally and skip the
// configuration branch. An Injector is immutable and safe for concurrent
// use (outcomes are pure functions; no state is consumed).
type Injector struct {
	cfg Config
}

// Disabled is a non-nil injector that injects nothing. Components that
// treat a nil injector as "consult DBVIRT_FAULTS" accept Disabled to
// force fault-free operation even when the environment enables injection
// — e.g. the fault-free baselines in tests running under the CI
// fault-injection job.
var Disabled = &Injector{}

// New creates an injector; a config with all rates zero returns nil (no
// injection), so "no faults configured" and "no injector" are the same
// cheap nil check.
func New(cfg Config) *Injector {
	if cfg.Transient == 0 && cfg.Hard == 0 && cfg.Spike == 0 && cfg.Noise == 0 && cfg.Panic == 0 {
		return nil
	}
	return &Injector{cfg: cfg}
}

// Config returns the injector's configuration (zero for nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Enabled reports whether any fault class is active.
func (in *Injector) Enabled() bool {
	if in == nil {
		return false
	}
	c := in.cfg
	return c.Transient != 0 || c.Hard != 0 || c.Spike != 0 || c.Noise != 0 || c.Panic != 0
}

// Outcome is the injected fate of one measurement attempt.
type Outcome struct {
	// Err, when non-nil, fails the measurement; check Transient to decide
	// whether to retry.
	Err error
	// Transient marks Err as retryable.
	Transient bool
	// Panic instructs the measurement path to panic (tests of recover()).
	Panic bool
	// Scale multiplies the measured elapsed time (1 when clean).
	Scale float64
}

// Measurement returns the outcome for one attempt of the measurement
// identified by key. The key should name the probe uniquely and stably —
// e.g. "query|shares|trial" — and must not encode scheduling artifacts
// (worker IDs, timestamps), or determinism across schedules is lost.
// Attempts of the same key draw independent outcomes, which is what makes
// retrying a transient fault useful.
func (in *Injector) Measurement(key string, attempt int) Outcome {
	if in == nil {
		return Outcome{Scale: 1}
	}
	h := hash64(uint64(in.cfg.Seed), key, uint64(attempt))
	out := Outcome{Scale: 1}
	// Each class draws from an independent substream so the rates do not
	// interact; precedence (panic > hard > transient) only matters when
	// multiple classes fire on the same attempt.
	if in.cfg.Panic > 0 && unit(h, 0) < in.cfg.Panic {
		out.Panic = true
		return out
	}
	if in.cfg.Hard > 0 && unit(h, 1) < in.cfg.Hard {
		out.Err = fmt.Errorf("%w (key %q)", ErrHard, key)
		return out
	}
	if in.cfg.Transient > 0 && unit(h, 2) < in.cfg.Transient {
		out.Err = fmt.Errorf("%w (key %q, attempt %d)", ErrTransient, key, attempt)
		out.Transient = true
		return out
	}
	if in.cfg.Spike > 0 && unit(h, 3) < in.cfg.Spike {
		out.Scale *= in.cfg.spikeFactor()
	}
	if in.cfg.Noise > 0 && unit(h, 4) < in.cfg.Noise {
		// Uniform multiplicative jitter in [1-sigma, 1+sigma]: zero-mean,
		// so trimmed-median aggregation cancels it in expectation.
		out.Scale *= 1 + in.cfg.noiseSigma()*(2*unit(h, 5)-1)
	}
	return out
}

// hash64 mixes the seed, key, and attempt into one 64-bit state
// (FNV-1a over the key, then splitmix64 finalization).
func hash64(seed uint64, key string, attempt uint64) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= attempt * 0x9e3779b97f4a7c15
	return mix(h)
}

// mix is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit derives the n-th uniform [0,1) variate from state h.
func unit(h uint64, n uint64) float64 {
	return float64(mix(h+n*0x632be59bd9b4e019)>>11) / float64(1<<53)
}
