package faults

import (
	"fmt"
	"math"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cfg, err := Parse("seed=42,transient=0.1,noise=0.05,noise-sigma=0.02,spike=0.01,spike-factor=8,hard=0.005,panic=0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.Transient != 0.1 || cfg.Noise != 0.05 ||
		cfg.NoiseSigma != 0.02 || cfg.Spike != 0.01 || cfg.SpikeFactor != 8 || cfg.Hard != 0.005 {
		t.Fatalf("parsed %+v", cfg)
	}
	back, err := Parse(cfg.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", cfg.String(), err)
	}
	if back != cfg {
		t.Fatalf("round trip %+v != %+v", back, cfg)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"transient", "transient=x", "transient=1.5", "bogus=0.1", "seed=abc",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestDeterministicOutcomes(t *testing.T) {
	in := New(Config{Seed: 7, Transient: 0.3, Noise: 0.5, NoiseSigma: 0.05})
	// Outcomes wrap fresh error values, so compare a canonical rendering.
	render := func(o Outcome) string {
		return fmt.Sprintf("err=%v transient=%v panic=%v scale=%.17g", o.Err, o.Transient, o.Panic, o.Scale)
	}
	for i := 0; i < 100; i++ {
		a := render(in.Measurement("probe|trial=3", i))
		b := render(in.Measurement("probe|trial=3", i))
		if a != b {
			t.Fatalf("attempt %d: outcome not deterministic: %s vs %s", i, a, b)
		}
	}
	// Different seeds give different streams.
	other := New(Config{Seed: 8, Transient: 0.3, Noise: 0.5, NoiseSigma: 0.05})
	same := 0
	for i := 0; i < 200; i++ {
		if render(in.Measurement("k", i)) == render(other.Measurement("k", i)) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seeds 7 and 8 produced identical streams")
	}
}

func TestRatesApproximatelyHonored(t *testing.T) {
	in := New(Config{Seed: 1, Transient: 0.1, Noise: 0.2, NoiseSigma: 0.05})
	const n = 20000
	var transients, noisy int
	for i := 0; i < n; i++ {
		out := in.Measurement("rate-probe", i)
		if out.Err != nil {
			if !out.Transient || !IsTransient(out.Err) {
				t.Fatalf("expected transient error, got %+v", out)
			}
			transients++
			continue
		}
		if out.Scale != 1 {
			if math.Abs(out.Scale-1) > 0.05+1e-12 {
				t.Fatalf("noise scale %g exceeds sigma", out.Scale)
			}
			noisy++
		}
	}
	if frac := float64(transients) / n; frac < 0.08 || frac > 0.12 {
		t.Errorf("transient rate %.3f, want ~0.10", frac)
	}
	// Noise only applies to non-erroring draws (~90% of n).
	if frac := float64(noisy) / (0.9 * n); frac < 0.16 || frac > 0.24 {
		t.Errorf("noise rate %.3f, want ~0.20", frac)
	}
}

func TestNilInjectorIsClean(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	out := in.Measurement("anything", 0)
	if out.Err != nil || out.Panic || out.Scale != 1 {
		t.Fatalf("nil injector injected %+v", out)
	}
	if New(Config{Seed: 5}) != nil {
		t.Fatal("all-zero rates should construct a nil injector")
	}
}

func TestHardAndPanicClasses(t *testing.T) {
	in := New(Config{Seed: 3, Hard: 1})
	out := in.Measurement("k", 0)
	if out.Err == nil || out.Transient || IsTransient(out.Err) {
		t.Fatalf("hard=1 gave %+v", out)
	}
	in = New(Config{Seed: 3, Panic: 1})
	if out := in.Measurement("k", 0); !out.Panic {
		t.Fatalf("panic=1 gave %+v", out)
	}
}

func TestSpikeScalesElapsed(t *testing.T) {
	in := New(Config{Seed: 3, Spike: 1, SpikeFactor: 12})
	if out := in.Measurement("k", 0); out.Scale != 12 {
		t.Fatalf("spike=1 factor=12 gave scale %g", out.Scale)
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if in, err := FromEnv(); err != nil || in != nil {
		t.Fatalf("empty env gave (%v, %v)", in, err)
	}
	t.Setenv(EnvVar, "seed=9,transient=0.25")
	in, err := FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if !in.Enabled() || in.Config().Seed != 9 || in.Config().Transient != 0.25 {
		t.Fatalf("env injector %+v", in.Config())
	}
	t.Setenv(EnvVar, "transient=nope")
	if _, err := FromEnv(); err == nil {
		t.Fatal("malformed env spec should error")
	}
}
