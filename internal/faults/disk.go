package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Disk-fault injection for the durability layer. The WAL and snapshot
// writers consult a DiskInjector at every record append, fsync, and read so
// that crash recovery is testable the same way calibration is: every
// failure is a pure function of (seed, operation index), so a crash test
// that kills the log at record 17 kills it at record 17 on every run, on
// every machine, under -race, regardless of scheduling.
//
// The injector models four durable-storage failure classes:
//
//   - crash-at-record-boundary: the device "loses power" immediately after
//     a configured number of appended records; the record at the boundary
//     is fully durable, everything after it is gone (ErrCrash);
//   - torn write: the crash happens mid-record — only a prefix of the
//     final record's bytes reaches the platter, exercising checksum-based
//     tail truncation;
//   - fsync error: Sync fails (as on a dying disk or a full filesystem);
//     the writer must surface the error instead of acking the commit;
//   - partial read: a read returns fewer bytes than requested, exercising
//     the reader's short-read handling.

// ErrCrash is returned by a fault device once its configured crash point
// is reached; every subsequent operation also fails with it. Callers treat
// it as process death: the only valid continuation is to reopen the files
// and run recovery.
var ErrCrash = errors.New("faults: injected crash")

// ErrFsync is the injected fsync failure.
var ErrFsync = errors.New("faults: injected fsync error")

// IsCrash reports whether err is (or wraps) an injected crash.
func IsCrash(err error) bool { return errors.Is(err, ErrCrash) }

// DiskConfig configures deterministic durable-storage faults.
type DiskConfig struct {
	// Seed selects the deterministic outcome stream for the rate-based
	// classes (fsync errors, partial reads).
	Seed int64
	// CrashAfterRecords, when > 0, crashes the device at the boundary
	// after the N-th appended record: record N is durable, later appends
	// fail with ErrCrash.
	CrashAfterRecords int64
	// TornBytes, when > 0 together with CrashAfterRecords, makes the
	// crash tear the following record instead of dropping it cleanly: up
	// to TornBytes bytes of record N+1 reach the device before the crash.
	TornBytes int64
	// FsyncErrRate is the per-fsync probability of an injected ErrFsync.
	FsyncErrRate float64
	// PartialReadRate is the per-read probability that the device returns
	// a short read (at least one byte less than requested).
	PartialReadRate float64
}

// Validate checks rates and magnitudes.
func (c DiskConfig) Validate() error {
	if c.FsyncErrRate < 0 || c.FsyncErrRate > 1 {
		return fmt.Errorf("faults: fsync-err=%g out of range [0,1]", c.FsyncErrRate)
	}
	if c.PartialReadRate < 0 || c.PartialReadRate > 1 {
		return fmt.Errorf("faults: partial-read=%g out of range [0,1]", c.PartialReadRate)
	}
	if c.CrashAfterRecords < 0 {
		return fmt.Errorf("faults: crash-record=%d must be non-negative", c.CrashAfterRecords)
	}
	if c.TornBytes < 0 {
		return fmt.Errorf("faults: torn-bytes=%d must be non-negative", c.TornBytes)
	}
	return nil
}

// String renders the config in ParseDisk syntax.
func (c DiskConfig) String() string {
	parts := []string{fmt.Sprintf("seed=%d", c.Seed)}
	if c.CrashAfterRecords != 0 {
		parts = append(parts, fmt.Sprintf("crash-record=%d", c.CrashAfterRecords))
	}
	if c.TornBytes != 0 {
		parts = append(parts, fmt.Sprintf("torn-bytes=%d", c.TornBytes))
	}
	if c.FsyncErrRate != 0 {
		parts = append(parts, fmt.Sprintf("fsync-err=%g", c.FsyncErrRate))
	}
	if c.PartialReadRate != 0 {
		parts = append(parts, fmt.Sprintf("partial-read=%g", c.PartialReadRate))
	}
	return strings.Join(parts, ",")
}

// ParseDisk reads a disk-fault spec of the form
//
//	seed=7,crash-record=12,torn-bytes=5,fsync-err=0.01,partial-read=0.05
//
// Unknown keys are rejected; omitted keys default to zero (seed defaults
// to 1).
func ParseDisk(spec string) (DiskConfig, error) {
	cfg := DiskConfig{Seed: 1}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return DiskConfig{}, fmt.Errorf("faults: bad disk spec element %q (want key=value)", part)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		switch k {
		case "seed", "crash-record", "torn-bytes":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return DiskConfig{}, fmt.Errorf("faults: bad value %q for %s", v, k)
			}
			switch k {
			case "seed":
				cfg.Seed = n
			case "crash-record":
				cfg.CrashAfterRecords = n
			case "torn-bytes":
				cfg.TornBytes = n
			}
		case "fsync-err", "partial-read":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return DiskConfig{}, fmt.Errorf("faults: bad value %q for %s", v, k)
			}
			if k == "fsync-err" {
				cfg.FsyncErrRate = f
			} else {
				cfg.PartialReadRate = f
			}
		default:
			return DiskConfig{}, fmt.Errorf("faults: unknown disk spec key %q", k)
		}
	}
	if err := cfg.Validate(); err != nil {
		return DiskConfig{}, err
	}
	return cfg, nil
}

// DiskInjector draws deterministic disk-fault outcomes. Unlike Injector it
// is stateful — the crash point is an absolute position in the device's
// append history — but the state advances identically on every run, so the
// outcomes are still reproducible. The nil *DiskInjector injects nothing.
// A DiskInjector must not be shared by concurrent devices; each device
// owns one (matching the single-writer WAL discipline).
type DiskInjector struct {
	cfg     DiskConfig
	records int64 // appended records so far
	reads   int64 // read operations so far
	fsyncs  int64 // fsync operations so far
	crashed bool
}

// NewDisk creates a disk injector; an all-zero config returns nil.
func NewDisk(cfg DiskConfig) *DiskInjector {
	if cfg.CrashAfterRecords == 0 && cfg.FsyncErrRate == 0 && cfg.PartialReadRate == 0 {
		return nil
	}
	return &DiskInjector{cfg: cfg}
}

// Config returns the injector's configuration (zero for nil).
func (d *DiskInjector) Config() DiskConfig {
	if d == nil {
		return DiskConfig{}
	}
	return d.cfg
}

// Crashed reports whether the injected crash point has been reached.
func (d *DiskInjector) Crashed() bool { return d != nil && d.crashed }

// AppendOutcome is the injected fate of one record append.
type AppendOutcome struct {
	// Err, when non-nil, is the injected failure (ErrCrash).
	Err error
	// TornPrefix, when >= 0, instructs the device to persist only the
	// first TornPrefix bytes of the record before failing; -1 means the
	// record is dropped entirely.
	TornPrefix int64
}

// Append returns the outcome for appending one record of the given size.
// Once the crash point is reached every later append fails too.
func (d *DiskInjector) Append(size int64) AppendOutcome {
	if d == nil {
		return AppendOutcome{TornPrefix: -1}
	}
	if d.crashed {
		return AppendOutcome{Err: ErrCrash, TornPrefix: -1}
	}
	d.records++
	if d.cfg.CrashAfterRecords > 0 && d.records > d.cfg.CrashAfterRecords {
		d.crashed = true
		torn := int64(-1)
		if d.cfg.TornBytes > 0 {
			torn = d.cfg.TornBytes
			if torn > size {
				torn = size
			}
		}
		return AppendOutcome{Err: fmt.Errorf("%w (record boundary %d)", ErrCrash, d.cfg.CrashAfterRecords), TornPrefix: torn}
	}
	return AppendOutcome{TornPrefix: -1}
}

// Fsync returns the injected error for one fsync, if any.
func (d *DiskInjector) Fsync() error {
	if d == nil {
		return nil
	}
	if d.crashed {
		return ErrCrash
	}
	d.fsyncs++
	if d.cfg.FsyncErrRate > 0 && unit(hash64(uint64(d.cfg.Seed), "fsync", uint64(d.fsyncs)), 0) < d.cfg.FsyncErrRate {
		return fmt.Errorf("%w (fsync %d)", ErrFsync, d.fsyncs)
	}
	return nil
}

// Read returns the number of bytes the device may return for a read of n
// bytes: n when clean, less on an injected partial read.
func (d *DiskInjector) Read(n int) int {
	if d == nil || n <= 1 {
		return n
	}
	d.reads++
	h := hash64(uint64(d.cfg.Seed), "read", uint64(d.reads))
	if d.cfg.PartialReadRate > 0 && unit(h, 0) < d.cfg.PartialReadRate {
		// Short by at least one byte; the exact cut is seeded too.
		cut := 1 + int(unit(h, 1)*float64(n-1))
		if cut >= n {
			cut = n - 1
		}
		return cut
	}
	return n
}
