package faults

import "testing"

func TestParseDiskRoundTrip(t *testing.T) {
	specs := []string{
		"seed=7,crash-record=12,torn-bytes=5,fsync-err=0.01,partial-read=0.05",
		"seed=1,crash-record=3",
		"seed=42,fsync-err=0.5",
	}
	for _, spec := range specs {
		cfg, err := ParseDisk(spec)
		if err != nil {
			t.Fatalf("ParseDisk(%q): %v", spec, err)
		}
		cfg2, err := ParseDisk(cfg.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", cfg.String(), err)
		}
		if cfg != cfg2 {
			t.Errorf("round trip %q: %+v != %+v", spec, cfg, cfg2)
		}
	}
	for _, bad := range []string{
		"bogus=1",
		"crash-record=x",
		"fsync-err=2",
		"partial-read=-0.5",
		"crash-record=-1",
		"seed",
	} {
		if _, err := ParseDisk(bad); err == nil {
			t.Errorf("ParseDisk(%q) accepted", bad)
		}
	}
}

// diskTrace records every outcome of a fixed operation schedule.
func diskTrace(cfg DiskConfig) []int64 {
	d := NewDisk(cfg)
	var out []int64
	for i := 0; i < 50; i++ {
		o := d.Append(100)
		if o.Err != nil {
			out = append(out, -1, o.TornPrefix)
		} else {
			out = append(out, 0, o.TornPrefix)
		}
		if err := d.Fsync(); err != nil {
			out = append(out, -2)
		} else {
			out = append(out, 0)
		}
		out = append(out, int64(d.Read(4096)))
	}
	return out
}

func TestDiskInjectorDeterminism(t *testing.T) {
	cfg := DiskConfig{Seed: 9, CrashAfterRecords: 17, TornBytes: 7, FsyncErrRate: 0.2, PartialReadRate: 0.3}
	a := diskTrace(cfg)
	b := diskTrace(cfg)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d — outcomes are not a pure function of (seed, index)", i, a[i], b[i])
		}
	}
	// A different seed must change the rate-based outcomes.
	cfg.Seed = 10
	c := diskTrace(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change did not change the outcome stream")
	}
}

func TestDiskInjectorCrashSchedule(t *testing.T) {
	d := NewDisk(DiskConfig{Seed: 1, CrashAfterRecords: 3})
	for i := 0; i < 3; i++ {
		if o := d.Append(10); o.Err != nil {
			t.Fatalf("append %d failed early: %v", i, o.Err)
		}
	}
	o := d.Append(10)
	if !IsCrash(o.Err) {
		t.Fatalf("append 4: err=%v, want crash", o.Err)
	}
	if o.TornPrefix != -1 {
		t.Fatalf("clean crash has torn prefix %d", o.TornPrefix)
	}
	if !d.Crashed() {
		t.Fatal("Crashed() false after crash point")
	}
	if err := d.Fsync(); !IsCrash(err) {
		t.Fatalf("post-crash fsync: %v", err)
	}
}

func TestDiskInjectorTornClamp(t *testing.T) {
	d := NewDisk(DiskConfig{Seed: 1, CrashAfterRecords: 1, TornBytes: 1000})
	d.Append(10)
	o := d.Append(10)
	if !IsCrash(o.Err) || o.TornPrefix != 10 {
		t.Fatalf("got err=%v torn=%d, want crash with torn clamped to 10", o.Err, o.TornPrefix)
	}
}

func TestDiskInjectorNil(t *testing.T) {
	if d := NewDisk(DiskConfig{Seed: 5}); d != nil {
		t.Fatal("all-zero config should return nil injector")
	}
	var d *DiskInjector
	if o := d.Append(10); o.Err != nil || o.TornPrefix != -1 {
		t.Fatalf("nil injector append: %+v", o)
	}
	if err := d.Fsync(); err != nil {
		t.Fatal(err)
	}
	if n := d.Read(100); n != 100 {
		t.Fatalf("nil injector read: %d", n)
	}
	if d.Crashed() {
		t.Fatal("nil injector crashed")
	}
}
