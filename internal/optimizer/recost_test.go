package optimizer

import (
	"sync"
	"testing"

	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
)

// recostQueries spans every enumeration path the re-costing fast path
// must replay faithfully: access-path choices, DP join ordering with
// method and build-side choices, the fixed-tree outer-join planner, the
// post-join pipeline, and (non-replayable) derived tables.
var recostQueries = []struct {
	name string
	src  string
}{
	{"point", `SELECT o_total FROM orders WHERE o_orderkey = 42`},
	{"range", `SELECT o_total FROM orders WHERE o_orderkey >= 100 AND o_orderkey < 2000`},
	{"join2", `SELECT c_name, o_total FROM customer, orders
		WHERE c_custkey = o_custkey AND o_total > 500`},
	{"join3", `SELECT c_mktsegment, count(*) FROM customer, orders, lineitem
		WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND l_quantity > 25
		GROUP BY c_mktsegment ORDER BY 1`},
	{"outer", `SELECT c_custkey, count(o_orderkey) FROM customer
		LEFT OUTER JOIN orders ON c_custkey = o_custkey
		GROUP BY c_custkey`},
	{"toplimit", `SELECT o_orderkey, o_total FROM orders
		WHERE o_custkey < 100 ORDER BY o_total LIMIT 10`},
	{"derived", `SELECT c_count, count(*) FROM
		(SELECT o_custkey, count(*) AS c_count FROM orders GROUP BY o_custkey) oc
		GROUP BY c_count`},
}

// recostLattice is a parameter lattice wide enough to flip access paths
// (random-page cost, cache size), join methods and build sides (CPU
// costs, work_mem), and the seconds conversion (time-per-page, overlap).
func recostLattice() []Params {
	var out []Params
	for _, rpc := range []float64{1.05, 4, 40} {
		for _, cpuScale := range []float64{0.2, 1, 8} {
			for _, cache := range []int64{64, 4096, 1 << 20} {
				for _, workMem := range []int64{32 << 10, 4 << 20} {
					for _, tpp := range []struct{ t, ov float64 }{{0, 0}, {2e-4, 0.7}} {
						p := DefaultParams()
						p.RandomPageCost = rpc
						p.CPUTupleCost *= cpuScale
						p.CPUIndexTupleCost *= cpuScale
						p.CPUOperatorCost *= cpuScale
						p.EffectiveCacheSizePages = cache
						p.WorkMemBytes = workMem
						p.TimePerSeqPage = tpp.t
						p.Overlap = tpp.ov
						out = append(out, p)
					}
				}
			}
		}
	}
	return out
}

func prepareFor(t testing.TB, src string) *PreparedQuery {
	t.Helper()
	cat := fixture(t)
	sel, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := plan.Bind(sel, cat)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	return Prepare(q)
}

// TestRecostMatchesOptimize is the correctness bar of the fast path:
// for every query and every lattice point, the prepared query's plan
// must match a from-scratch enumeration bit for bit — same total cost,
// same estimated seconds, same Explain text.
func TestRecostMatchesOptimize(t *testing.T) {
	lattice := recostLattice()
	for _, tc := range recostQueries {
		t.Run(tc.name, func(t *testing.T) {
			pq := prepareFor(t, tc.src)
			fastBefore, fullBefore := mRecostFast.Value(), mRecostFull.Value()
			for i, p := range lattice {
				cold, err := Optimize(pq.Query(), p)
				if err != nil {
					t.Fatalf("optimize [%d]: %v", i, err)
				}
				fast, err := pq.Optimize(p)
				if err != nil {
					t.Fatalf("recost [%d]: %v", i, err)
				}
				if got, want := fast.TotalCost(), cold.TotalCost(); got != want {
					t.Fatalf("lattice[%d]: recost total %v, optimize total %v", i, got, want)
				}
				if got, want := fast.EstimatedSeconds(), cold.EstimatedSeconds(); got != want {
					t.Fatalf("lattice[%d]: recost seconds %v, optimize seconds %v", i, got, want)
				}
				if got, want := fast.Explain(), cold.Explain(); got != want {
					t.Fatalf("lattice[%d]: plans diverge:\nrecost:\n%s\noptimize:\n%s", i, got, want)
				}
			}
			fast := mRecostFast.Value() - fastBefore
			full := mRecostFull.Value() - fullBefore
			if fast+full != int64(len(lattice)) {
				t.Errorf("counters: fast %d + full %d != %d prepared optimizations", fast, full, len(lattice))
			}
			if tc.name == "derived" {
				if fast != 0 {
					t.Errorf("derived-table query took the fast path %d times; must always re-enumerate", fast)
				}
			} else if fast == 0 {
				t.Errorf("no lattice point took the fast path (full=%d); replay never engaged", full)
			}
		})
	}
}

// TestRecostRepeatedParams exercises the tier-1 shortcut: identical
// plan-shape parameters must reuse the recorded tree outright, and a
// seconds-only change (TimePerSeqPage/Overlap) must too.
func TestRecostRepeatedParams(t *testing.T) {
	pq := prepareFor(t, recostQueries[3].src) // join3
	p := DefaultParams()
	if _, err := pq.Optimize(p); err != nil {
		t.Fatal(err)
	}
	before := mRecostFast.Value()
	for i := 0; i < 3; i++ {
		if _, err := pq.Optimize(p); err != nil {
			t.Fatal(err)
		}
	}
	secondsOnly := p
	secondsOnly.TimePerSeqPage = 5e-4
	secondsOnly.Overlap = 0.9
	cold, err := Optimize(pq.Query(), secondsOnly)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := pq.Optimize(secondsOnly)
	if err != nil {
		t.Fatal(err)
	}
	if fast.EstimatedSeconds() != cold.EstimatedSeconds() {
		t.Errorf("seconds-only change: recost %v, optimize %v", fast.EstimatedSeconds(), cold.EstimatedSeconds())
	}
	if got := mRecostFast.Value() - before; got != 4 {
		t.Errorf("tier-1 shortcut: want 4 fast re-costs, got %d", got)
	}
}

// TestPlanRecost covers the Plan-level entry point: a plan from a
// PreparedQuery re-costs through the shared memo; a plan from the plain
// Optimize entry point falls back to a full optimization — both must
// agree with from-scratch enumeration.
func TestPlanRecost(t *testing.T) {
	pq := prepareFor(t, recostQueries[2].src) // join2
	p1 := DefaultParams()
	p2 := DefaultParams()
	p2.RandomPageCost = 1.05
	p2.EffectiveCacheSizePages = 1 << 20

	prepared, err := pq.Optimize(p1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Optimize(pq.Query(), p1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Optimize(pq.Query(), p2)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range []*Plan{prepared, plain} {
		re, err := pl.Recost(p2)
		if err != nil {
			t.Fatal(err)
		}
		if re.TotalCost() != want.TotalCost() || re.Explain() != want.Explain() {
			t.Errorf("Recost diverges from Optimize:\n%s\nvs\n%s", re.Explain(), want.Explain())
		}
	}
}

// TestRecostParallel hammers one shared PreparedQuery from many
// goroutines, each walking the lattice from a different offset, and
// checks every result against a serially computed expectation. Run with
// -race this doubles as the concurrency-safety proof for the shared
// plan-space memo and the atomic enumeration snapshot.
func TestRecostParallel(t *testing.T) {
	pq := prepareFor(t, recostQueries[3].src) // join3
	lattice := recostLattice()
	want := make([]float64, len(lattice))
	for i, p := range lattice {
		cold, err := Optimize(pq.Query(), p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = cold.TotalCost()
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := range lattice {
				i := (k + w*len(lattice)/workers) % len(lattice)
				pl, err := pq.Optimize(lattice[i])
				if err != nil {
					errs[w] = err
					return
				}
				if pl.TotalCost() != want[i] {
					t.Errorf("worker %d lattice[%d]: got %v, want %v", w, i, pl.TotalCost(), want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecostAllocs pins down the perf win structurally: re-costing a
// prepared query must allocate far less than what the pre-memoization
// model paid per what-if call — parse, bind, and full enumeration.
// Alternating two plan-shape-different parameter vectors forces the
// tier-2 replay (never the tier-1 pointer reuse) on every iteration.
func TestRecostAllocs(t *testing.T) {
	cat := fixture(t)
	src := recostQueries[3].src // join3
	sel, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := plan.Bind(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	pq := Prepare(q)
	p1 := DefaultParams()
	p2 := DefaultParams()
	p2.RandomPageCost = 1.05
	for _, p := range []Params{p1, p2} {
		if _, err := pq.Optimize(p); err != nil {
			t.Fatal(err)
		}
	}
	flip := false
	replayAllocs := testing.AllocsPerRun(50, func() {
		flip = !flip
		p := p1
		if flip {
			p = p2
		}
		if _, err := pq.Optimize(p); err != nil {
			panic(err)
		}
	})
	flip = false
	coldAllocs := testing.AllocsPerRun(50, func() {
		flip = !flip
		p := p1
		if flip {
			p = p2
		}
		sel, err := sql.ParseSelect(src)
		if err != nil {
			panic(err)
		}
		q, err := plan.Bind(sel, cat)
		if err != nil {
			panic(err)
		}
		if _, err := Optimize(q, p); err != nil {
			panic(err)
		}
	})
	if replayAllocs >= coldAllocs/2 {
		t.Errorf("replay allocates %.0f allocs/op vs cold %.0f (parse+bind+enumerate); want < half", replayAllocs, coldAllocs)
	}
	// Tier 1 — re-costing under the very same plan-shape parameters —
	// reuses the recorded tree and allocates O(1).
	tier1Allocs := testing.AllocsPerRun(50, func() {
		if _, err := pq.Optimize(p1); err != nil {
			panic(err)
		}
	})
	if tier1Allocs > 4 {
		t.Errorf("tier-1 re-cost allocates %.0f allocs/op; want O(1)", tier1Allocs)
	}
}
