package optimizer

import (
	"fmt"

	"dbvirt/internal/plan"
)

// Plan is an optimized physical plan together with the query and parameter
// vector it was planned under.
type Plan struct {
	Root   Node
	Query  *plan.Query
	Params Params
}

// TotalCost returns the plan cost in seq-page units (additive, as used
// for plan ranking).
func (p *Plan) TotalCost() float64 { return p.Root.Cost().Total }

// EstimatedSeconds converts the plan cost to estimated execution seconds
// under the calibrated resource allocation, blending the CPU and I/O cost
// components with the machine's calibrated overlap factor.
func (p *Plan) EstimatedSeconds() float64 { return p.Params.EstimateSeconds(p.Root.Cost()) }

// Optimize plans a bound query under the given parameter vector. This is
// the virtualization-aware what-if entry point: nothing is executed, and
// the same query can be re-planned under the calibrated P(R) of any
// candidate resource allocation.
func Optimize(q *plan.Query, p Params) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var root Node
	var err error
	if q.OuterTree != nil {
		root, err = optimizeFixed(q, p)
	} else {
		root, err = optimizeJoins(q, p)
	}
	if err != nil {
		return nil, err
	}

	if q.Grouped {
		root = newHashAgg(root, q.GroupBy, q.Aggs, q, p)
		if q.Having != nil {
			root = newFilter(root, []plan.Conjunct{{E: q.Having, Rels: plan.RelsOf(q.Having)}}, q, p)
		}
	}

	root = newProject(root, q.Select, q, p)

	if q.Distinct {
		visible := 0
		for _, c := range q.Select {
			if !c.Hidden {
				visible++
			}
		}
		if visible < len(q.Select) {
			return nil, fmt.Errorf("optimizer: DISTINCT with ORDER BY keys outside the select list is not supported")
		}
		root = newDistinct(root, visible, p)
	}

	if len(q.OrderBy) > 0 {
		keys := make([]SortKey, len(q.OrderBy))
		for i, ok := range q.OrderBy {
			keys[i] = SortKey{Col: ok.Col, Desc: ok.Desc}
		}
		root = newSort(root, keys, p)
	}

	if q.Limit != nil {
		root = newLimit(root, *q.Limit, p)
	}

	return &Plan{Root: root, Query: q, Params: p}, nil
}
