package optimizer

import (
	"fmt"

	"dbvirt/internal/obs"
	"dbvirt/internal/plan"
)

// mOptimizeCalls counts every what-if planning invocation process-wide;
// together with core.whatif.cost_calls it shows how many plans each
// cost-model call amortizes over.
var mOptimizeCalls = obs.Global.Counter("optimizer.optimize.calls")

// Plan is an optimized physical plan together with the query and parameter
// vector it was planned under.
type Plan struct {
	Root   Node
	Query  *plan.Query
	Params Params
	// prep links back to the PreparedQuery that produced this plan, when
	// any, so Recost can reuse its memoized plan space.
	prep *PreparedQuery
}

// TotalCost returns the plan cost in seq-page units (additive, as used
// for plan ranking).
func (p *Plan) TotalCost() float64 { return p.Root.Cost().Total }

// EstimatedSeconds converts the plan cost to estimated execution seconds
// under the calibrated resource allocation, blending the CPU and I/O cost
// components with the machine's calibrated overlap factor.
func (p *Plan) EstimatedSeconds() float64 { return p.Params.EstimateSeconds(p.Root.Cost()) }

// NodeCost is one operator's entry in a Plan.CostBreakdown, in preorder.
type NodeCost struct {
	Name  string
	Depth int      // 0 = plan root
	Rows  float64  // estimated output cardinality
	Cost  Cost     // inclusive: children's costs are part of Total
	Self  float64  // Total minus the children's Totals (this operator's own work)
	Extra []string // operator detail (relation, predicates, keys)
}

// CostBreakdown decomposes the plan cost operator by operator: each node's
// inclusive cost plus the self cost obtained by subtracting its children.
// Self costs sum to the root's Total, so the breakdown shows where the
// optimizer thinks the time goes — the estimated counterpart of EXPLAIN
// ANALYZE's measured per-node usage.
func (p *Plan) CostBreakdown() []NodeCost {
	var out []NodeCost
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		c := n.Cost()
		self := c.Total
		for _, ch := range n.children() {
			self -= ch.Cost().Total
		}
		if self < 0 {
			self = 0
		}
		out = append(out, NodeCost{
			Name:  n.name(),
			Depth: depth,
			Rows:  n.Rows(),
			Cost:  c,
			Self:  self,
			Extra: n.detail(),
		})
		for _, ch := range n.children() {
			walk(ch, depth+1)
		}
	}
	walk(p.Root, 0)
	return out
}

// Optimize plans a bound query under the given parameter vector. This is
// the virtualization-aware what-if entry point: nothing is executed, and
// the same query can be re-planned under the calibrated P(R) of any
// candidate resource allocation.
func Optimize(q *plan.Query, p Params) (*Plan, error) {
	mOptimizeCalls.Inc()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return optimizeInto(&planCtx{q: q}, p, nil)
}

// optimizeInto runs the full enumeration under a plan context (with or
// without shared memos) and an optional choice recorder.
func optimizeInto(pc *planCtx, p Params, rec *recorder) (*Plan, error) {
	q := pc.q
	var root Node
	var err error
	if q.OuterTree != nil {
		root, err = optimizeFixed(pc, p, rec)
	} else {
		root, err = optimizeJoins(pc, p, rec)
	}
	if err != nil {
		return nil, err
	}

	if q.Grouped {
		root = newHashAgg(root, q.GroupBy, q.Aggs, pc, p)
		if q.Having != nil {
			root = newFilter(root, []plan.Conjunct{{E: q.Having, Rels: plan.RelsOf(q.Having)}}, pc, p)
		}
	}

	root = newProject(root, q.Select, pc, p)

	if q.Distinct {
		visible := 0
		for _, c := range q.Select {
			if !c.Hidden {
				visible++
			}
		}
		if visible < len(q.Select) {
			return nil, fmt.Errorf("optimizer: DISTINCT with ORDER BY keys outside the select list is not supported")
		}
		root = newDistinct(root, visible, p)
	}

	if len(q.OrderBy) > 0 {
		keys := make([]SortKey, len(q.OrderBy))
		for i, ok := range q.OrderBy {
			keys[i] = SortKey{Col: ok.Col, Desc: ok.Desc}
		}
		root = newSort(root, keys, p)
	}

	if q.Limit != nil {
		root = newLimit(root, *q.Limit, p)
	}

	return &Plan{Root: root, Query: q, Params: p}, nil
}
