package optimizer

import (
	"math"

	"dbvirt/internal/catalog"
	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
	"dbvirt/internal/storage"
	"dbvirt/internal/types"
)

// fallbackBytesPerValue sizes rows when no table statistics exist.
const fallbackBytesPerValue = 16

// rowBytesOf estimates the byte width of a node's rows for sort/hash
// memory planning.
type sized interface{ bytes() float64 }

func (c *common) bytes() float64 { return c.rowBytes }

// exprOps estimates the operator units (cpu_operator_cost multiples) of
// one expression. Unlike a flat node count it consults column statistics
// for LIKE predicates, whose true cost grows with the average string
// width — the effect that makes TPC-H Q13 CPU-bound.
func exprOps(e plan.Expr, q *plan.Query) float64 {
	switch x := e.(type) {
	case *plan.Like:
		width := 32.0 // default assumed string width
		if col, ok := x.E.(*plan.ColRef); ok && col.Rel >= 0 && col.Rel < len(q.Rels) {
			st := statsFor(q.Rels[col.Rel])
			if col.Col < len(st.Cols) && st.Cols[col.Col].AvgWidth > 0 {
				width = st.Cols[col.Col].AvgWidth
			}
		}
		return types.LikeCostOps(int(width))/plan.OpsPerOperator + exprOps(x.E, q)
	case *plan.Bin:
		return 1 + exprOps(x.L, q) + exprOps(x.R, q)
	case *plan.Not:
		return 1 + exprOps(x.E, q)
	case *plan.Neg:
		return 1 + exprOps(x.E, q)
	case *plan.Between:
		return 2 + exprOps(x.E, q) + exprOps(x.Lo, q) + exprOps(x.Hi, q)
	case *plan.In:
		n := float64(len(x.List)) + exprOps(x.E, q)
		for _, l := range x.List {
			n += exprOps(l, q)
		}
		return n
	case *plan.IsNull:
		return 1 + exprOps(x.E, q)
	default:
		return 0
	}
}

// mergeLayouts builds a join layout: left's layout plus right's shifted by
// left's width.
func mergeLayouts(left, right Node) plan.Layout {
	lay := plan.NewLayout()
	for rel, off := range left.Layout().Base {
		lay.Base[rel] = off
	}
	for rel, off := range right.Layout().Base {
		lay.Base[rel] = off + left.Width()
	}
	return lay
}

// pagesFetched estimates the page reads needed to fetch t tuples spread
// over a relation of n pages, given an effective cache of ecs pages. The
// expected number of distinct pages touched is n(1-(1-1/n)^t); when the
// relation does not fit in the cache, a fraction of repeat visits miss and
// must be re-read.
func pagesFetched(t, n float64, ecs int64) float64 {
	if t <= 0 || n <= 0 {
		return 0
	}
	if n == 1 {
		return 1
	}
	distinct := n * (1 - math.Pow(1-1/n, t))
	if distinct > t {
		distinct = t
	}
	if float64(ecs) >= n {
		return distinct
	}
	// Repeat visits: (t - distinct) of them; hit probability ecs/n.
	missFrac := 1 - float64(ecs)/n
	return distinct + (t-distinct)*missFrac
}

// seqMissFrac is the steady-state fraction of a sequential scan's pages
// that miss the cache. A relation that fits in the effective cache stays
// resident across the repeated executions of a design-time workload (a
// small residual accounts for churn); one that exceeds the cache — even
// slightly — suffers sequential flooding under clock/LRU replacement and
// misses on every page. This cache-awareness is what lets the what-if
// model see that Q13's hot orders relation costs almost no I/O while Q4's
// lineitem pays for every page, and why an extra memory share can flip a
// relation from fully-missing to fully-resident.
func seqMissFrac(pages float64, ecs int64) float64 {
	if ecs <= 0 || pages <= 0 || pages > float64(ecs) {
		return 1
	}
	return 0.1
}

// newSeqScan builds a sequential scan with pushed-down filters.
func newSeqScan(rel *plan.Rel, filter []plan.Conjunct, pc *planCtx, p Params) *SeqScan {
	st := statsFor(rel)
	rows := float64(st.NumRows)
	sel := pc.conjSel(filter)
	pages := float64(st.NumPages)
	io := pages * seqMissFrac(pages, p.EffectiveCacheSizePages) * p.SeqPageCost
	cpu := rows*p.CPUTupleCost + rows*pc.predOps(filter)*p.CPUOperatorCost
	s := &SeqScan{Rel: rel, Filter: filter}
	s.rows = math.Max(rows*sel, 0)
	s.cost = Cost{Startup: 0, Total: io + cpu, CPU: cpu}
	s.layout = pc.relLayout(rel.Idx)
	s.width = len(rel.Table.Schema.Cols)
	s.rowBytes = rowBytesFromStats(st, s.width)
	return s
}

func rowBytesFromStats(st *catalog.TableStats, width int) float64 {
	if st.AvgTupleBytes > 0 {
		return st.AvgTupleBytes
	}
	return float64(width * fallbackBytesPerValue)
}

// correlationThreshold above which heap fetches of an index scan are
// treated as sequential.
const correlationThreshold = 0.8

// newIndexScan builds an index scan over [lo, hi] with residual filters.
// rangeSel is the selectivity of the key range itself.
func newIndexScan(rel *plan.Rel, ix *catalog.Index, lo, hi *Bound, rangeSel float64, residual []plan.Conjunct, pc *planCtx, p Params) *IndexScan {
	st := statsFor(rel)
	rows := float64(st.NumRows)
	matched := rows * rangeSel

	var idxPages, height float64 = defaultPages, 2
	corr := 0.0
	if ix.Stats != nil {
		idxPages = float64(ix.Stats.NumPages)
		height = float64(ix.Stats.Height)
		corr = ix.Stats.Correlation
	}
	// Index traversal: descent (random) plus the fraction of leaf pages in
	// range (chained, so sequential beyond the first).
	descent := height * p.RandomPageCost
	leafPages := math.Max(idxPages-height, 1)
	leafIO := leafPages * rangeSel * p.SeqPageCost

	// Heap I/O: interpolate between perfectly correlated (sequential run)
	// and uncorrelated (random distinct pages) using corr², as PostgreSQL
	// does in cost_index.
	n := float64(st.NumPages)
	maxIO := pagesFetched(matched, n, p.EffectiveCacheSizePages) * p.RandomPageCost
	minIO := math.Ceil(rangeSel*n) * p.SeqPageCost
	c2 := corr * corr
	heapIO := maxIO + c2*(minIO-maxIO)
	if heapIO < 0 {
		heapIO = 0
	}

	cpu := matched*(p.CPUIndexTupleCost+p.CPUTupleCost) +
		matched*pc.predOps(residual)*p.CPUOperatorCost

	s := &IndexScan{
		Rel: rel, Index: ix, Lo: lo, Hi: hi, Filter: residual,
		Correlated: math.Abs(corr) >= correlationThreshold,
		rangeSel:   rangeSel,
	}
	s.rows = math.Max(matched*pc.conjSel(residual), 0)
	s.cost = Cost{Startup: descent, Total: descent + leafIO + heapIO + cpu, CPU: cpu}
	s.layout = pc.relLayout(rel.Idx)
	s.width = len(rel.Table.Schema.Cols)
	s.rowBytes = rowBytesFromStats(st, s.width)
	return s
}

// newSubqueryScan wraps an optimized inner plan as a relation scan.
func newSubqueryScan(rel *plan.Rel, inner *Plan, p Params) *SubqueryScan {
	var visible []int
	for i, oc := range inner.Query.Select {
		if !oc.Hidden {
			visible = append(visible, i)
		}
	}
	s := &SubqueryScan{Rel: rel, Input: inner.Root, Visible: visible}
	extra := inner.Root.Rows() * p.CPUTupleCost
	ic := inner.Root.Cost()
	s.rows = inner.Root.Rows()
	s.cost = Cost{Startup: ic.Startup, Total: ic.Total + extra, CPU: ic.CPU + extra}
	s.layout = plan.SingleRel(rel.Idx)
	s.width = len(visible)
	s.rowBytes = float64(len(visible) * fallbackBytesPerValue)
	return s
}

// newFilter wraps input with extra predicates.
func newFilter(input Node, conds []plan.Conjunct, pc *planCtx, p Params) *FilterNode {
	f := &FilterNode{Input: input, Conds: conds}
	f.rows = input.Rows() * pc.conjSel(conds)
	extra := input.Rows() * pc.predOps(conds) * p.CPUOperatorCost
	ic := input.Cost()
	f.cost = Cost{Startup: ic.Startup, Total: ic.Total + extra, CPU: ic.CPU + extra}
	f.layout = input.Layout()
	f.width = input.Width()
	f.rowBytes = nodeBytes(input)
	return f
}

func nodeBytes(n Node) float64 {
	if s, ok := n.(sized); ok && s.bytes() > 0 {
		return s.bytes()
	}
	return float64(n.Width() * fallbackBytesPerValue)
}

// joinRows computes the output cardinality of a join given both input
// cardinalities and the predicate selectivity; LEFT joins emit at least
// one row per outer row.
func joinRows(jt sql.JoinType, outerRows, innerRows, sel float64) float64 {
	rows := outerRows * innerRows * sel
	if jt == sql.LeftJoin && rows < outerRows {
		rows = outerRows
	}
	if rows < 0 {
		rows = 0
	}
	return rows
}

// newNLJoin builds a nested-loops join; the inner side is materialized in
// memory once and rescanned per outer row.
func newNLJoin(jt sql.JoinType, outer, inner Node, on []plan.Conjunct, rows float64, pc *planCtx, p Params) *NLJoin {
	j := &NLJoin{Type: jt, Outer: outer, Inner: inner, On: on}
	if rows < 0 {
		rows = joinRows(jt, outer.Rows(), inner.Rows(), pc.conjSel(on))
	}
	pairs := outer.Rows() * inner.Rows()
	ops := pc.predOps(on)
	if ops < 1 {
		ops = 1
	}
	cpu := inner.Rows()*p.CPUTupleCost + // materialization
		pairs*ops*p.CPUOperatorCost +
		rows*p.CPUTupleCost
	oc, ic := outer.Cost(), inner.Cost()
	j.rows = rows
	j.cost = Cost{
		Startup: oc.Startup + ic.Total,
		Total:   oc.Total + ic.Total + cpu,
		CPU:     oc.CPU + ic.CPU + cpu,
	}
	j.layout = pc.joinLayout(outer, inner)
	j.width = outer.Width() + inner.Width()
	j.rowBytes = nodeBytes(outer) + nodeBytes(inner)
	return j
}

// newHashJoin builds a hash join. Normally the hash table is built on the
// right (inner) side and probed from the left; with buildOuter=true the
// roles are reversed (PostgreSQL's Hash Right Join), which is profitable
// for LEFT joins whose outer side is much smaller.
func newHashJoin(jt sql.JoinType, left, right Node, leftKeys, rightKeys []plan.Expr, residual []plan.Conjunct, rows float64, buildOuter bool, pc *planCtx, p Params) *HashJoin {
	j := &HashJoin{
		Type: jt, Left: left, Right: right,
		LeftKeys: leftKeys, RightKeys: rightKeys, Residual: residual,
		BuildOuter: buildOuter,
	}
	buildSide, probeSide := right, left
	if buildOuter {
		buildSide, probeSide = left, right
	}
	buildRows := buildSide.Rows()
	probeRows := probeSide.Rows()
	buildBytes := buildRows * nodeBytes(buildSide) * 1.5 // hash table overhead
	batches := 1
	if buildBytes > float64(p.WorkMemBytes) {
		batches = int(math.Ceil(buildBytes / float64(p.WorkMemBytes)))
	}
	j.Batches = batches

	nk := float64(len(leftKeys))
	cpu := buildRows*(nk*p.CPUOperatorCost+p.CPUTupleCost) +
		probeRows*nk*p.CPUOperatorCost +
		rows*p.CPUTupleCost +
		rows*pc.predOps(residual)*p.CPUOperatorCost
	var spill float64
	if batches > 1 {
		spillBytes := buildBytes + probeRows*nodeBytes(probeSide)
		spill = 2 * spillBytes / storage.PageSize * p.SeqPageCost
	}
	bc, prc := buildSide.Cost(), probeSide.Cost()
	startup := bc.Total + buildRows*(nk*p.CPUOperatorCost+p.CPUTupleCost)
	j.rows = rows
	j.cost = Cost{
		Startup: startup + prc.Startup,
		Total:   bc.Total + prc.Total + cpu + spill,
		CPU:     bc.CPU + prc.CPU + cpu,
	}
	j.layout = pc.joinLayout(left, right)
	j.width = left.Width() + right.Width()
	j.rowBytes = nodeBytes(left) + nodeBytes(right)
	return j
}

// newIndexNLJoin builds an index nested-loops join: per outer row, probe
// the inner relation's index with a key from the outer row.
func newIndexNLJoin(jt sql.JoinType, outer Node, innerRel *plan.Rel, ix *catalog.Index, outerKey plan.Expr, innerFilter, residual []plan.Conjunct, rows float64, pc *planCtx, p Params) *IndexNLJoin {
	j := &IndexNLJoin{
		Type: jt, Outer: outer, InnerRel: innerRel, Index: ix,
		OuterKey: outerKey, InnerFilter: innerFilter, Residual: residual,
	}
	st := statsFor(innerRel)
	innerRows := float64(st.NumRows)
	cs := st.Cols[ix.Col]
	nd := cs.NDistinct
	if nd <= 0 {
		nd = innerRows * defaultEqSel
		if nd < 1 {
			nd = 1
		}
	}
	matchedPerProbe := innerRows / nd

	probes := outer.Rows()
	totalMatched := probes * matchedPerProbe

	var idxPages, height float64 = defaultPages, 2
	if ix.Stats != nil {
		idxPages = float64(ix.Stats.NumPages)
		height = float64(ix.Stats.Height)
	}
	// Index pages are hot after the first probes; heap pages follow the
	// cache-aware fetch model.
	idxIO := pagesFetched(probes*height, idxPages, p.EffectiveCacheSizePages) * p.RandomPageCost
	heapIO := pagesFetched(totalMatched, float64(st.NumPages), p.EffectiveCacheSizePages) * p.RandomPageCost

	cpu := totalMatched*(p.CPUIndexTupleCost+p.CPUTupleCost) +
		probes*p.CPUOperatorCost +
		totalMatched*pc.predOps(innerFilter)*p.CPUOperatorCost +
		rows*pc.predOps(residual)*p.CPUOperatorCost +
		rows*p.CPUTupleCost

	oc := outer.Cost()
	j.rows = rows
	j.cost = Cost{
		Startup: oc.Startup,
		Total:   oc.Total + idxIO + heapIO + cpu,
		CPU:     oc.CPU + cpu,
	}
	if lay, ok := pc.takeLayout(); ok {
		j.layout = lay
	} else {
		lay := plan.NewLayout()
		for rel, off := range outer.Layout().Base {
			lay.Base[rel] = off
		}
		lay.Base[innerRel.Idx] = outer.Width()
		j.layout = lay
	}
	j.width = outer.Width() + len(innerRel.Table.Schema.Cols)
	j.rowBytes = nodeBytes(outer) + rowBytesFromStats(st, len(innerRel.Table.Schema.Cols))
	return j
}

// newMergeJoin builds a merge join over inputs already sorted by their
// key columns.
func newMergeJoin(jt sql.JoinType, left, right Node, leftCols, rightCols []int, residual []plan.Conjunct, rows float64, pc *planCtx, p Params) *MergeJoin {
	j := &MergeJoin{
		Type: jt, Left: left, Right: right,
		LeftCols: leftCols, RightCols: rightCols, Residual: residual,
	}
	nk := float64(len(leftCols))
	cpu := (left.Rows()+right.Rows())*nk*p.CPUOperatorCost + // merge comparisons
		rows*p.CPUTupleCost +
		rows*pc.predOps(residual)*p.CPUOperatorCost
	lc, rc := left.Cost(), right.Cost()
	j.rows = rows
	j.cost = Cost{
		Startup: lc.Startup + rc.Startup,
		Total:   lc.Total + rc.Total + cpu,
		CPU:     lc.CPU + rc.CPU + cpu,
	}
	j.layout = pc.joinLayout(left, right)
	j.width = left.Width() + right.Width()
	j.rowBytes = nodeBytes(left) + nodeBytes(right)
	return j
}

// newSort builds a sort over the input's output columns.
func newSort(input Node, keys []SortKey, p Params) *Sort {
	s := &Sort{Input: input, Keys: keys}
	n := math.Max(input.Rows(), 1)
	comparisons := 2 * n * math.Log2(n+1) * p.CPUOperatorCost
	bytes := n * nodeBytes(input)
	var io float64
	if bytes > float64(p.WorkMemBytes) {
		s.SpillPages = bytes / storage.PageSize
		io = 2 * s.SpillPages * p.SeqPageCost
	}
	ic := input.Cost()
	emit := n * p.CPUOperatorCost
	startup := ic.Total + comparisons + io
	s.rows = input.Rows()
	s.cost = Cost{
		Startup: startup,
		Total:   startup + emit,
		CPU:     ic.CPU + comparisons + emit,
	}
	s.layout = input.Layout()
	s.width = input.Width()
	s.rowBytes = nodeBytes(input)
	return s
}

// newHashAgg builds a hash aggregation.
func newHashAgg(input Node, groupBy []plan.Expr, aggs []plan.AggSpec, pc *planCtx, p Params) *HashAgg {
	a := &HashAgg{Input: input, GroupBy: groupBy, Aggs: aggs}
	groups := groupCountEstimate(groupBy, input.Rows(), pc.q)
	transitions := input.Rows() * float64(len(groupBy)+len(aggs)) * p.CPUOperatorCost
	emit := groups * p.CPUTupleCost
	ic := input.Cost()
	startup := ic.Total + transitions
	a.rows = groups
	a.cost = Cost{
		Startup: startup,
		Total:   startup + emit,
		CPU:     ic.CPU + transitions + emit,
	}
	if lay, ok := pc.takeLayout(); ok {
		a.layout = lay
	} else {
		a.layout = plan.PostAgg(len(groupBy))
	}
	a.width = len(groupBy) + len(aggs)
	a.rowBytes = float64(a.width * fallbackBytesPerValue)
	return a
}

// newProject builds the output projection.
func newProject(input Node, cols []plan.OutputCol, pc *planCtx, p Params) *Project {
	pr := &Project{Input: input, Cols: cols}
	extra := input.Rows() * pc.outputOps(cols) * p.CPUOperatorCost
	ic := input.Cost()
	pr.rows = input.Rows()
	pr.cost = Cost{Startup: ic.Startup, Total: ic.Total + extra, CPU: ic.CPU + extra}
	if lay, ok := pc.takeLayout(); ok {
		pr.layout = lay // positional output; no relation layout
	} else {
		pr.layout = plan.NewLayout()
	}
	pr.width = len(cols)
	pr.rowBytes = float64(len(cols) * fallbackBytesPerValue)
	return pr
}

// newDistinct builds duplicate elimination over visible columns.
func newDistinct(input Node, visibleCols int, p Params) *Distinct {
	d := &Distinct{Input: input, VisibleCols: visibleCols}
	hashCost := input.Rows() * float64(visibleCols) * p.CPUOperatorCost
	ic := input.Cost()
	d.rows = input.Rows() // upper bound without duplicate statistics
	d.cost = Cost{Startup: ic.Startup, Total: ic.Total + hashCost, CPU: ic.CPU + hashCost}
	d.layout = input.Layout()
	d.width = input.Width()
	d.rowBytes = nodeBytes(input)
	return d
}

// newLimit truncates to n rows, discounting the input's run cost.
func newLimit(input Node, n int64, p Params) *Limit {
	l := &Limit{Input: input, N: n}
	inRows := input.Rows()
	outRows := float64(n)
	if outRows > inRows {
		outRows = inRows
	}
	frac := 1.0
	if inRows > 0 {
		frac = outRows / inRows
	}
	ic := input.Cost()
	total := ic.Startup + (ic.Total-ic.Startup)*frac
	cpu := ic.CPU
	if ic.Total > 0 {
		cpu = ic.CPU * total / ic.Total
	}
	l.rows = outRows
	l.cost = Cost{Startup: ic.Startup, Total: total, CPU: cpu}
	l.layout = input.Layout()
	l.width = input.Width()
	l.rowBytes = nodeBytes(input)
	return l
}
