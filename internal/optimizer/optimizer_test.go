package optimizer

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dbvirt/internal/catalog"
	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
	"dbvirt/internal/storage"
	"dbvirt/internal/types"
)

// fixture builds and analyzes a small customer/orders/lineitem database.
func fixture(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	rng := rand.New(rand.NewSource(11))

	cust, err := cat.CreateTable(d, "customer", catalog.Schema{Cols: []catalog.Column{
		{Name: "c_custkey", Kind: types.KindInt},
		{Name: "c_name", Kind: types.KindString},
		{Name: "c_mktsegment", Kind: types.KindString},
	}})
	if err != nil {
		t.Fatal(err)
	}
	segments := []string{"BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"}
	const nCust = 500
	for i := 0; i < nCust; i++ {
		cust.Heap.Insert(pg, storage.Tuple{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("Customer#%06d", i)),
			types.NewString(segments[rng.Intn(len(segments))]),
		})
	}

	orders, err := cat.CreateTable(d, "orders", catalog.Schema{Cols: []catalog.Column{
		{Name: "o_orderkey", Kind: types.KindInt},
		{Name: "o_custkey", Kind: types.KindInt},
		{Name: "o_orderdate", Kind: types.KindDate},
		{Name: "o_total", Kind: types.KindFloat},
		{Name: "o_comment", Kind: types.KindString},
	}})
	if err != nil {
		t.Fatal(err)
	}
	const nOrders = 5000
	baseDate := types.MustDate("1993-01-01").I
	for i := 0; i < nOrders; i++ {
		orders.Heap.Insert(pg, storage.Tuple{
			types.NewInt(int64(i)),
			types.NewInt(int64(rng.Intn(nCust))),
			types.NewDate(baseDate + int64(i)/4), // correlated with insertion order
			types.NewFloat(rng.Float64() * 1000),
			types.NewString("comment " + strings.Repeat("x", rng.Intn(40))),
		})
	}
	if _, err := cat.CreateIndex(d, pg, "orders_okey", "orders", "o_orderkey"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex(d, pg, "orders_odate", "orders", "o_orderdate"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateIndex(d, pg, "orders_ckey", "orders", "o_custkey"); err != nil {
		t.Fatal(err)
	}

	line, err := cat.CreateTable(d, "lineitem", catalog.Schema{Cols: []catalog.Column{
		{Name: "l_orderkey", Kind: types.KindInt},
		{Name: "l_quantity", Kind: types.KindFloat},
		{Name: "l_shipdate", Kind: types.KindDate},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*nOrders; i++ {
		line.Heap.Insert(pg, storage.Tuple{
			types.NewInt(int64(i / 3)),
			types.NewFloat(float64(1 + rng.Intn(50))),
			types.NewDate(baseDate + int64(rng.Intn(1500))),
		})
	}
	if _, err := cat.CreateIndex(d, pg, "line_okey", "lineitem", "l_orderkey"); err != nil {
		t.Fatal(err)
	}

	for _, tbl := range cat.Tables() {
		if err := catalog.Analyze(pg, tbl); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func planFor(t testing.TB, cat *catalog.Catalog, src string, p Params) *Plan {
	t.Helper()
	sel, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := plan.Bind(sel, cat)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	pl, err := Optimize(q, p)
	if err != nil {
		t.Fatalf("optimize %q: %v", src, err)
	}
	return pl
}

// findNode returns the first node of type T in the tree.
func findNode[T Node](n Node) (T, bool) {
	if t, ok := n.(T); ok {
		return t, true
	}
	for _, c := range n.children() {
		if t, ok := findNode[T](c); ok {
			return t, true
		}
	}
	var zero T
	return zero, false
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.SeqPageCost = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero SeqPageCost should fail")
	}
	bad = DefaultParams()
	bad.WorkMemBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero WorkMemBytes should fail")
	}
}

func TestSeqScanForUnindexedFilter(t *testing.T) {
	cat := fixture(t)
	pl := planFor(t, cat, "SELECT c_name FROM customer WHERE c_mktsegment = 'BUILDING'", DefaultParams())
	if _, ok := findNode[*SeqScan](pl.Root); !ok {
		t.Fatalf("expected SeqScan:\n%s", pl.Explain())
	}
	scan, _ := findNode[*SeqScan](pl.Root)
	// ~1/5 of 500 customers.
	if scan.Rows() < 50 || scan.Rows() > 200 {
		t.Errorf("segment filter rows = %.0f, want ~100", scan.Rows())
	}
}

func TestIndexScanForSelectivePredicate(t *testing.T) {
	cat := fixture(t)
	pl := planFor(t, cat, "SELECT o_total FROM orders WHERE o_orderkey = 42", DefaultParams())
	scan, ok := findNode[*IndexScan](pl.Root)
	if !ok {
		t.Fatalf("point lookup should use the index:\n%s", pl.Explain())
	}
	if scan.Lo == nil || scan.Hi == nil || scan.Lo.Key != 42 || scan.Hi.Key != 42 {
		t.Errorf("bounds = %+v %+v", scan.Lo, scan.Hi)
	}
	if scan.Rows() < 0.5 || scan.Rows() > 2 {
		t.Errorf("unique key lookup rows = %g, want ~1", scan.Rows())
	}
}

func TestSeqScanForWideRange(t *testing.T) {
	cat := fixture(t)
	// A range covering nearly everything should prefer the seq scan.
	pl := planFor(t, cat, "SELECT o_total FROM orders WHERE o_orderkey >= 0", DefaultParams())
	if _, ok := findNode[*IndexScan](pl.Root); ok {
		t.Errorf("full-range predicate should not use index:\n%s", pl.Explain())
	}
}

func TestIndexScanDateRange(t *testing.T) {
	cat := fixture(t)
	pl := planFor(t, cat, `SELECT o_total FROM orders
		WHERE o_orderdate >= date '1993-02-01' AND o_orderdate < date '1993-02-10'`, DefaultParams())
	scan, ok := findNode[*IndexScan](pl.Root)
	if !ok {
		t.Fatalf("narrow date range should use index:\n%s", pl.Explain())
	}
	if !scan.Correlated {
		t.Error("o_orderdate is loaded in order; scan should be marked correlated")
	}
	// 9 days of ~4 orders/day.
	if scan.Rows() < 5 || scan.Rows() > 200 {
		t.Errorf("date range rows = %.0f, want ~36", scan.Rows())
	}
}

func TestHashJoinForEquiJoin(t *testing.T) {
	cat := fixture(t)
	pl := planFor(t, cat, `SELECT count(*) FROM customer, orders WHERE c_custkey = o_custkey`, DefaultParams())
	if _, ok := findNode[*HashJoin](pl.Root); !ok {
		// An index nested loop is also acceptable for this shape.
		if _, ok2 := findNode[*IndexNLJoin](pl.Root); !ok2 {
			t.Fatalf("equi join should use hash or index-NL join:\n%s", pl.Explain())
		}
	}
	// Cardinality: each order matches exactly one customer => ~5000.
	join := pl.Root
	for {
		kids := join.children()
		if len(kids) == 0 {
			break
		}
		if _, isJ := join.(*HashJoin); isJ {
			break
		}
		if _, isJ := join.(*IndexNLJoin); isJ {
			break
		}
		join = kids[0]
	}
	if join.Rows() < 2000 || join.Rows() > 10000 {
		t.Errorf("join cardinality = %.0f, want ~5000", join.Rows())
	}
}

func TestThreeWayJoinOrdersBySelectivity(t *testing.T) {
	cat := fixture(t)
	pl := planFor(t, cat, `SELECT count(*) FROM customer, orders, lineitem
		WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		  AND c_mktsegment = 'BUILDING'`, DefaultParams())
	// Just verify it plans and has two joins.
	joins := countJoins(pl.Root)
	if joins != 2 {
		t.Errorf("three-way join should have 2 join nodes, got %d:\n%s", joins, pl.Explain())
	}
}

func countJoins(n Node) int {
	c := 0
	switch n.(type) {
	case *HashJoin, *NLJoin, *IndexNLJoin, *MergeJoin:
		c = 1
	}
	for _, k := range n.children() {
		c += countJoins(k)
	}
	return c
}

func TestCrossJoinAllowedWithoutPredicate(t *testing.T) {
	cat := fixture(t)
	pl := planFor(t, cat, `SELECT count(*) FROM customer, lineitem`, DefaultParams())
	if countJoins(pl.Root) != 1 {
		t.Fatalf("cross join should plan:\n%s", pl.Explain())
	}
}

func TestOuterJoinFixedShape(t *testing.T) {
	cat := fixture(t)
	pl := planFor(t, cat, `SELECT c_custkey, count(o_orderkey) FROM customer
		LEFT OUTER JOIN orders ON c_custkey = o_custkey AND o_comment NOT LIKE '%special%'
		GROUP BY c_custkey`, DefaultParams())
	hj, ok := findNode[*HashJoin](pl.Root)
	if !ok {
		t.Fatalf("left equi join should be a hash join:\n%s", pl.Explain())
	}
	if hj.Type != sql.LeftJoin {
		t.Error("join type should be LEFT")
	}
	// LEFT join cardinality >= outer side.
	if hj.Rows() < 500 {
		t.Errorf("left join rows = %.0f, want >= 500", hj.Rows())
	}
	// The LIKE ON-predicate is right-side-only: it must be pushed into the
	// build side, not kept as a residual.
	if len(hj.Residual) != 0 {
		t.Errorf("right-only ON conjunct should be pushed down, residual = %v", hj.Residual)
	}
	if _, ok := findNode[*HashAgg](pl.Root); !ok {
		t.Error("grouped query should have HashAggregate")
	}
}

func TestWherePushdownBlockedByOuterJoin(t *testing.T) {
	cat := fixture(t)
	// WHERE on the nullable side must not be pushed below the LEFT join.
	pl := planFor(t, cat, `SELECT count(*) FROM customer
		LEFT JOIN orders ON c_custkey = o_custkey
		WHERE o_total > 500 OR o_total IS NULL`, DefaultParams())
	f, ok := findNode[*FilterNode](pl.Root)
	if !ok {
		t.Fatalf("WHERE over nullable side should stay above the join:\n%s", pl.Explain())
	}
	if _, isJoin := f.Input.(*HashJoin); !isJoin {
		t.Errorf("filter should sit on the join, got %T", f.Input)
	}
}

func TestAggregationSortLimitPipeline(t *testing.T) {
	cat := fixture(t)
	pl := planFor(t, cat, `SELECT c_mktsegment, count(*) FROM customer
		GROUP BY c_mktsegment HAVING count(*) > 10 ORDER BY 2 DESC LIMIT 3`, DefaultParams())
	if _, ok := pl.Root.(*Limit); !ok {
		t.Fatalf("top should be Limit:\n%s", pl.Explain())
	}
	if _, ok := findNode[*Sort](pl.Root); !ok {
		t.Error("missing Sort")
	}
	if _, ok := findNode[*HashAgg](pl.Root); !ok {
		t.Error("missing HashAggregate")
	}
	agg, _ := findNode[*HashAgg](pl.Root)
	if agg.Rows() < 2 || agg.Rows() > 10 {
		t.Errorf("group estimate = %.0f, want ~5", agg.Rows())
	}
}

func TestWhatIfCostRespondsToParams(t *testing.T) {
	cat := fixture(t)
	src := `SELECT count(*) FROM orders WHERE o_comment LIKE '%xxxxx%'`

	base := DefaultParams()
	basePlan := planFor(t, cat, src, base)

	// Doubling CPU costs (a VM with less CPU) must increase the cost of
	// this CPU-heavy query.
	slowCPU := base
	slowCPU.CPUTupleCost *= 2
	slowCPU.CPUOperatorCost *= 2
	slowPlan := planFor(t, cat, src, slowCPU)
	if slowPlan.TotalCost() <= basePlan.TotalCost() {
		t.Errorf("higher CPU costs should raise plan cost: %.1f vs %.1f",
			slowPlan.TotalCost(), basePlan.TotalCost())
	}

	// And TimePerSeqPage converts to seconds linearly.
	timed := base
	timed.TimePerSeqPage = 0.001
	tp := planFor(t, cat, src, timed)
	wantSec := tp.TotalCost() * 0.001
	if got := tp.EstimatedSeconds(); got != wantSec {
		t.Errorf("EstimatedSeconds = %g, want %g", got, wantSec)
	}
}

func TestIndexScanCostGrowsWithRandomPageCost(t *testing.T) {
	cat := fixture(t)
	tbl, _ := cat.Table("orders")
	rel := &plan.Rel{Idx: 0, Name: "orders", Table: tbl}
	q := &plan.Query{Rels: []*plan.Rel{rel}}
	ix := tbl.Indexes[2] // o_custkey: uncorrelated

	cheap := DefaultParams()
	expensive := DefaultParams()
	expensive.RandomPageCost = 40

	lo, hi := &Bound{Key: 10}, &Bound{Key: 20}
	pc := &planCtx{q: q}
	c1 := newIndexScan(rel, ix, lo, hi, 0.02, nil, pc, cheap)
	c2 := newIndexScan(rel, ix, lo, hi, 0.02, nil, pc, expensive)
	if c2.Cost().Total <= c1.Cost().Total {
		t.Errorf("random page cost should raise uncorrelated index scan cost: %v vs %v",
			c2.Cost(), c1.Cost())
	}
}

func TestHashJoinSpillsWithTinyWorkMem(t *testing.T) {
	cat := fixture(t)
	p := DefaultParams()
	p.WorkMemBytes = 4096 // force batching
	pl := planFor(t, cat, `SELECT count(*) FROM customer, orders WHERE c_custkey = o_custkey`, p)
	if hj, ok := findNode[*HashJoin](pl.Root); ok {
		if hj.Batches <= 1 {
			t.Errorf("tiny work_mem should batch the hash join, batches = %d", hj.Batches)
		}
	}
}

func TestSortSpillEstimate(t *testing.T) {
	cat := fixture(t)
	p := DefaultParams()
	p.WorkMemBytes = 4096
	pl := planFor(t, cat, `SELECT o_total FROM orders ORDER BY o_total`, p)
	srt, ok := findNode[*Sort](pl.Root)
	if !ok {
		t.Fatal("missing sort")
	}
	if srt.SpillPages <= 0 {
		t.Error("5000 rows in 4KB work_mem should spill")
	}
	big := DefaultParams()
	pl2 := planFor(t, cat, `SELECT o_total FROM orders ORDER BY o_total`, big)
	srt2, _ := findNode[*Sort](pl2.Root)
	if srt2.SpillPages > 0 {
		t.Error("4MB work_mem should hold 5000 narrow rows")
	}
}

func TestSelectivityEstimates(t *testing.T) {
	cat := fixture(t)
	cases := []struct {
		src      string
		min, max float64
	}{
		// Point on unique key: ~1 row of 5000.
		{"SELECT o_total FROM orders WHERE o_orderkey = 7", 0.5, 3},
		// Half range.
		{"SELECT o_total FROM orders WHERE o_orderkey < 2500", 1500, 3500},
		// Conjunction multiplies.
		{"SELECT o_total FROM orders WHERE o_orderkey < 2500 AND o_total < 500", 700, 1800},
		// IS NULL on a non-null column: ~0.
		{"SELECT o_total FROM orders WHERE o_total IS NULL", 0, 10},
		// Negation.
		{"SELECT o_total FROM orders WHERE o_orderkey >= 2500", 1500, 3500},
	}
	for _, c := range cases {
		pl := planFor(t, cat, c.src, DefaultParams())
		// The row estimate below the Project.
		rows := pl.Root.(*Project).Input.Rows()
		if rows < c.min || rows > c.max {
			t.Errorf("%s: rows = %.1f, want [%g, %g]", c.src, rows, c.min, c.max)
		}
	}
}

func TestExplainOutput(t *testing.T) {
	cat := fixture(t)
	p := DefaultParams()
	p.TimePerSeqPage = 0.0001
	pl := planFor(t, cat, `SELECT c_mktsegment, count(*) FROM customer, orders
		WHERE c_custkey = o_custkey GROUP BY c_mktsegment ORDER BY 1`, p)
	out := pl.Explain()
	for _, want := range []string{"Project", "HashAggregate", "Sort", "cost=", "rows=", "estimated time"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestPagesFetched(t *testing.T) {
	// Fetching 0 tuples costs nothing.
	if pagesFetched(0, 100, 1000) != 0 {
		t.Error("zero tuples")
	}
	// Fetching many tuples from few pages is bounded by distinct pages
	// when cached.
	if got := pagesFetched(10000, 100, 1000); got > 101 {
		t.Errorf("cached fetch = %g, want <= 100", got)
	}
	// Without cache, repeats cost more.
	withCache := pagesFetched(10000, 100, 1000)
	noCache := pagesFetched(10000, 100, 10)
	if noCache <= withCache {
		t.Errorf("cache should reduce fetches: %g vs %g", noCache, withCache)
	}
	// Few tuples over many pages ~ one page each.
	if got := pagesFetched(5, 100000, 0); got < 4.9 || got > 5 {
		t.Errorf("sparse fetch = %g, want ~5", got)
	}
}

func TestImpossibleIndexRange(t *testing.T) {
	cat := fixture(t)
	pl := planFor(t, cat, "SELECT o_total FROM orders WHERE o_orderkey = 10 AND o_orderkey = 20", DefaultParams())
	inner := pl.Root.(*Project).Input
	if inner.Rows() > 1 {
		t.Errorf("contradictory equalities should estimate ~0 rows, got %g", inner.Rows())
	}
}

func TestDistinctPlanning(t *testing.T) {
	cat := fixture(t)
	pl := planFor(t, cat, "SELECT DISTINCT c_mktsegment FROM customer", DefaultParams())
	if _, ok := findNode[*Distinct](pl.Root); !ok {
		t.Fatalf("missing Distinct:\n%s", pl.Explain())
	}
}

func TestLimitReducesCost(t *testing.T) {
	cat := fixture(t)
	full := planFor(t, cat, "SELECT o_total FROM orders", DefaultParams())
	limited := planFor(t, cat, "SELECT o_total FROM orders LIMIT 10", DefaultParams())
	if limited.TotalCost() >= full.TotalCost() {
		t.Errorf("LIMIT should reduce cost: %g vs %g", limited.TotalCost(), full.TotalCost())
	}
}

func TestUnanalyzedTableUsesDefaults(t *testing.T) {
	cat := catalog.New()
	d := storage.NewDiskManager()
	if _, err := cat.CreateTable(d, "t", catalog.Schema{Cols: []catalog.Column{
		{Name: "a", Kind: types.KindInt},
	}}); err != nil {
		t.Fatal(err)
	}
	pl := planFor(t, cat, "SELECT a FROM t WHERE a > 5", DefaultParams())
	if pl.Root.Rows() <= 0 {
		t.Error("default stats should give positive row estimate")
	}
}

func TestCostCPUDecomposition(t *testing.T) {
	cat := fixture(t)
	pl := planFor(t, cat, "SELECT count(*) FROM orders WHERE o_comment LIKE '%xy%'", DefaultParams())
	c := pl.Root.Cost()
	if c.CPU <= 0 {
		t.Fatal("plan should have CPU cost")
	}
	if c.CPU > c.Total {
		t.Fatalf("CPU component %g exceeds total %g", c.CPU, c.Total)
	}
	// A LIKE-heavy scan is mostly CPU in this fixture (orders is cached).
	if c.CPU < 0.5*c.Total {
		t.Errorf("LIKE scan should be CPU-dominated: cpu=%g total=%g", c.CPU, c.Total)
	}
}

func TestEstimateSecondsOverlapBlending(t *testing.T) {
	p := DefaultParams()
	p.TimePerSeqPage = 0.001

	// Pure CPU cost: overlap has nothing to hide.
	cpuOnly := Cost{Total: 100, CPU: 100}
	p.Overlap = 0
	serial := p.EstimateSeconds(cpuOnly)
	p.Overlap = 1
	overlapped := p.EstimateSeconds(cpuOnly)
	if serial != overlapped || serial != 0.1 {
		t.Errorf("pure CPU: serial=%g overlapped=%g, want 0.1", serial, overlapped)
	}

	// Mixed cost: full overlap hides the smaller component.
	mixed := Cost{Total: 100, CPU: 30} // io = 70
	p.Overlap = 0
	if got := p.EstimateSeconds(mixed); !approxEq(got, 0.1) {
		t.Errorf("serial mixed = %g, want 0.1", got)
	}
	p.Overlap = 1
	if got := p.EstimateSeconds(mixed); !approxEq(got, 0.07) {
		t.Errorf("overlapped mixed = %g, want 0.07 (max of components)", got)
	}
	p.Overlap = 0.5
	if got := p.EstimateSeconds(mixed); !approxEq(got, 0.085) {
		t.Errorf("half overlap = %g, want 0.085", got)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func TestSeqScanCacheAwareness(t *testing.T) {
	cat := fixture(t)
	tbl, _ := cat.Table("orders")
	rel := &plan.Rel{Idx: 0, Name: "orders", Table: tbl}
	q := &plan.Query{Rels: []*plan.Rel{rel}}

	big := DefaultParams()
	big.EffectiveCacheSizePages = 1 << 20 // everything cached
	small := DefaultParams()
	small.EffectiveCacheSizePages = 1 // nothing cached

	pc := &planCtx{q: q}
	cached := newSeqScan(rel, nil, pc, big)
	cold := newSeqScan(rel, nil, pc, small)
	if cached.Cost().Total >= cold.Cost().Total {
		t.Errorf("cached scan should be cheaper: %v vs %v", cached.Cost(), cold.Cost())
	}
	// The CPU component is identical; only I/O changes.
	if !approxEq(cached.Cost().CPU, cold.Cost().CPU) {
		t.Errorf("CPU should not depend on cache: %g vs %g", cached.Cost().CPU, cold.Cost().CPU)
	}
}

func TestMergeJoinCandidateChosenForSortedInputs(t *testing.T) {
	// Covered end-to-end in the engine tests; here just verify the
	// constructor's cost composition.
	cat := fixture(t)
	tbl, _ := cat.Table("orders")
	rel := &plan.Rel{Idx: 0, Name: "o1", Table: tbl}
	rel2 := &plan.Rel{Idx: 1, Name: "o2", Table: tbl}
	q := &plan.Query{Rels: []*plan.Rel{rel, rel2}}
	p := DefaultParams()
	pc := &planCtx{q: q}
	l := newSeqScan(rel, nil, pc, p)
	r := newSeqScan(rel2, nil, pc, p)
	ls := newSort(l, []SortKey{{Col: 0}}, p)
	rs := newSort(r, []SortKey{{Col: 0}}, p)
	mj := newMergeJoin(sql.InnerJoin, ls, rs, []int{0}, []int{0}, nil, 5000, pc, p)
	if mj.Cost().Total <= ls.Cost().Total+rs.Cost().Total {
		t.Error("merge join must cost more than its inputs")
	}
	if mj.Rows() != 5000 {
		t.Errorf("rows = %g", mj.Rows())
	}
	if mj.Width() != l.Width()+r.Width() {
		t.Errorf("width = %d", mj.Width())
	}
}

// TestCostBreakdown checks the per-node cost decomposition: preorder
// layout, inclusive costs matching the nodes, and self costs summing
// back to the plan total.
func TestCostBreakdown(t *testing.T) {
	cat := fixture(t)
	pl := planFor(t, cat,
		"SELECT c_name, o_total FROM customer, orders WHERE c_custkey = o_custkey AND o_total > 500",
		DefaultParams())
	bd := pl.CostBreakdown()
	if len(bd) < 4 { // project + join + two inputs at minimum
		t.Fatalf("breakdown has %d nodes:\n%s", len(bd), pl.Explain())
	}
	if bd[0].Depth != 0 || bd[0].Cost.Total != pl.TotalCost() {
		t.Fatalf("root entry = %+v, want depth 0 with total %g", bd[0], pl.TotalCost())
	}
	var selfSum float64
	for i, nc := range bd {
		if nc.Self < 0 {
			t.Errorf("node %d (%s): negative self cost %g", i, nc.Name, nc.Self)
		}
		if nc.Self > nc.Cost.Total+1e-9 {
			t.Errorf("node %d (%s): self %g exceeds inclusive %g", i, nc.Name, nc.Self, nc.Cost.Total)
		}
		if i > 0 && nc.Depth < 1 {
			t.Errorf("node %d (%s): preorder depth %d, want >= 1", i, nc.Name, nc.Depth)
		}
		selfSum += nc.Self
	}
	if !approxEq(selfSum, pl.TotalCost()) {
		t.Errorf("self costs sum to %g, want plan total %g", selfSum, pl.TotalCost())
	}
}
