package optimizer

import (
	"fmt"
	"math"

	"dbvirt/internal/catalog"
	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
	"dbvirt/internal/types"
)

// keyRange is an int64 interval extracted from predicates on an indexed
// column, together with which conjuncts it absorbed.
type keyRange struct {
	lo, hi     *Bound
	used       map[int]bool // conjunct list indexes absorbed by the range
	impossible bool         // contradictory (e.g. col = 2.5 on an int column)
}

func (r *keyRange) tightenLo(k int64) {
	if r.lo == nil || k > r.lo.Key {
		r.lo = &Bound{Key: k}
	}
}

func (r *keyRange) tightenHi(k int64) {
	if r.hi == nil || k < r.hi.Key {
		r.hi = &Bound{Key: k}
	}
}

func (r *keyRange) bounded() bool { return r.lo != nil || r.hi != nil }

// extractRange inspects the conjuncts for bounds on the index column of
// rel's index ix.
func extractRange(rel *plan.Rel, ix *catalog.Index, conjs []plan.Conjunct) keyRange {
	r := keyRange{used: make(map[int]bool)}
	for i, c := range conjs {
		if absorb(&r, rel, ix, c.E) {
			r.used[i] = true
		}
	}
	return r
}

// absorb updates r if e is a usable bound on the index column, reporting
// whether e was fully absorbed.
func absorb(r *keyRange, rel *plan.Rel, ix *catalog.Index, e plan.Expr) bool {
	onIndexCol := func(ex plan.Expr) bool {
		col, ok := ex.(*plan.ColRef)
		return ok && col.Rel == rel.Idx && col.Col == ix.Col
	}
	switch x := e.(type) {
	case *plan.Bin:
		if !x.Op.Comparison() || x.Op == sql.OpNe {
			return false
		}
		if onIndexCol(x.L) {
			if v, ok := constNumeric(x.R); ok {
				absorbOp(r, x.Op, v)
				return true
			}
			return false
		}
		if onIndexCol(x.R) {
			if v, ok := constNumeric(x.L); ok {
				absorbOp(r, flipOp(x.Op), v)
				return true
			}
		}
		return false
	case *plan.Between:
		if x.NotB || !onIndexCol(x.E) {
			return false
		}
		lo, okLo := constNumeric(x.Lo)
		hi, okHi := constNumeric(x.Hi)
		if !okLo || !okHi {
			return false
		}
		r.tightenLo(ceilToInt(lo))
		r.tightenHi(floorToInt(hi))
		return true
	default:
		return false
	}
}

func constNumeric(e plan.Expr) (float64, bool) {
	c, ok := e.(*plan.Const)
	if !ok || c.Val.IsNull() {
		return 0, false
	}
	switch c.Val.Kind {
	case types.KindInt, types.KindDate, types.KindFloat:
		f, _ := c.Val.AsFloat()
		return f, true
	default:
		return 0, false
	}
}

func floorToInt(v float64) int64 { return int64(math.Floor(v)) }
func ceilToInt(v float64) int64  { return int64(math.Ceil(v)) }

// absorbOp applies "col op v" with the column on the left.
func absorbOp(r *keyRange, op sql.BinaryOp, v float64) {
	switch op {
	case sql.OpEq:
		if v != math.Trunc(v) {
			r.impossible = true
			return
		}
		k := int64(v)
		r.tightenLo(k)
		r.tightenHi(k)
	case sql.OpLt:
		r.tightenHi(ceilToInt(v) - 1)
	case sql.OpLe:
		r.tightenHi(floorToInt(v))
	case sql.OpGt:
		r.tightenLo(floorToInt(v) + 1)
	case sql.OpGe:
		r.tightenLo(ceilToInt(v))
	}
}

// rangeSelectivity estimates the fraction of rows inside the key range
// using the column's statistics.
func rangeSelectivity(rel *plan.Rel, ix *catalog.Index, r keyRange, q *plan.Query) float64 {
	if r.impossible {
		return 0
	}
	if r.lo != nil && r.hi != nil && r.lo.Key > r.hi.Key {
		return 0
	}
	cs := statsFor(rel).Cols[ix.Col]
	// Point lookup: use equality selectivity (a histogram interval of
	// zero width would otherwise estimate zero rows).
	if r.lo != nil && r.hi != nil && r.lo.Key == r.hi.Key {
		return eqSelectivity(cs, float64(r.lo.Key))
	}
	sel := 1.0
	if r.hi != nil {
		sel = ltSelectivity(cs, float64(r.hi.Key), true)
	} else {
		sel = clampSel(1 - cs.NullFrac)
	}
	if r.lo != nil {
		sel -= ltSelectivity(cs, float64(r.lo.Key), false)
	}
	return clampSel(sel)
}

// bestAccessPath chooses the cheapest way to read rel under the given
// single-relation conjuncts: a filtered sequential scan, an index scan
// for any index whose column has usable bounds, or — for derived tables —
// a scan over the independently optimized subquery.
func bestAccessPath(rel *plan.Rel, conjs []plan.Conjunct, pc *planCtx, p Params, rec *recorder) (Node, error) {
	if rel.Sub != nil {
		// The derived table's inner plan is optimized independently under
		// p, so its shape — and therefore this leaf's candidate set — is
		// parameter-dependent: the enumeration cannot be replayed.
		if rec != nil {
			rec.replayable = false
		}
		inner, err := Optimize(rel.Sub, p)
		if err != nil {
			return nil, fmt.Errorf("optimizer: derived table %q: %w", rel.Name, err)
		}
		var node Node = newSubqueryScan(rel, inner, p)
		if len(conjs) > 0 {
			node = newFilter(node, conjs, pc, p)
		}
		return node, nil
	}
	ch := startChoice(rec)
	ch.consider(newSeqScan(rel, conjs, pc, p))
	for _, ix := range rel.Table.Indexes {
		r := extractRange(rel, ix, conjs)
		if !r.bounded() && !r.impossible {
			continue
		}
		var residual []plan.Conjunct
		for i, c := range conjs {
			if !r.used[i] {
				residual = append(residual, c)
			}
		}
		sel := rangeSelectivity(rel, ix, r, pc.q)
		ch.consider(newIndexScan(rel, ix, r.lo, r.hi, sel, residual, pc, p))
	}
	return ch.done(), nil
}
