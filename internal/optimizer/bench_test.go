package optimizer

import (
	"testing"

	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
)

func benchPlan(b *testing.B, src string) {
	b.Helper()
	cat := fixture(b)
	sel, err := sql.ParseSelect(src)
	if err != nil {
		b.Fatal(err)
	}
	q, err := plan.Bind(sel, cat)
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(q, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizePointLookup(b *testing.B) {
	benchPlan(b, "SELECT o_total FROM orders WHERE o_orderkey = 42")
}

func BenchmarkOptimizeThreeWayJoin(b *testing.B) {
	benchPlan(b, `SELECT count(*) FROM customer, orders, lineitem
		WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		  AND c_mktsegment = 'BUILDING' AND o_orderdate < date '1995-01-01'`)
}

func BenchmarkOptimizeAggregation(b *testing.B) {
	benchPlan(b, `SELECT c_mktsegment, count(*), sum(o_total)
		FROM customer, orders WHERE c_custkey = o_custkey
		GROUP BY c_mktsegment ORDER BY 2 DESC LIMIT 3`)
}

func BenchmarkSelectivityEstimation(b *testing.B) {
	cat := fixture(b)
	sel, err := sql.ParseSelect(
		`SELECT o_total FROM orders WHERE o_orderkey < 2500 AND o_total BETWEEN 10 AND 500 AND o_comment LIKE 'c%'`)
	if err != nil {
		b.Fatal(err)
	}
	q, err := plan.Bind(sel, cat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range q.Where {
			selectivity(c.E, q)
		}
	}
}
