package optimizer

import (
	"sync/atomic"

	"dbvirt/internal/obs"
	"dbvirt/internal/plan"
)

// Counters exposing the what-if re-costing hit rate: fast counts plans
// re-priced from the recorded plan space (O(nodes) work), full counts
// complete enumerations. A healthy grid sweep or design search should be
// dominated by fast.
var (
	mRecostFast = obs.Global.Counter("whatif.recost.fast")
	mRecostFull = obs.Global.Counter("whatif.recost.full")
)

// PreparedQuery is a bound query plus its memoized plan space. Preparing
// once and calling Optimize per candidate parameter vector is the cheap
// way to sweep allocations: the first call enumerates and records the
// search; later calls only re-price. A PreparedQuery is safe for
// concurrent use by parallel solver workers.
type PreparedQuery struct {
	q   *plan.Query
	ps  *planSpace
	rec atomic.Pointer[enumRecord]
}

// Prepare wraps a bound query for repeated what-if optimization.
func Prepare(q *plan.Query) *PreparedQuery {
	return &PreparedQuery{q: q, ps: newPlanSpace(q)}
}

// Query returns the bound query.
func (pq *PreparedQuery) Query() *plan.Query { return pq.q }

// enumRecord is an immutable snapshot of one enumeration outcome: the
// parameter vector it is priced under, every argmin the original search
// resolved (in bottom-up order), and the winning plan tree. Snapshots
// are swapped atomically so concurrent readers always see a consistent
// record. choices and origRoot always come from the one full
// enumeration and are shared unchanged by every record a replay
// derives, keeping their node pointers aligned (replay memoizes rebuilt
// subtrees by the original pointers); root is the tree priced under
// params — identical to origRoot in a full-enumeration record, a
// rebuilt copy in a replayed one.
type enumRecord struct {
	params     Params
	choices    []choicePoint
	origRoot   Node
	root       Node
	replayable bool
}

// choicePoint is one argmin the enumerator resolved: the candidate nodes
// in comparison order and the index that won. The candidate *set* is
// parameter-independent given that all earlier (lower) choice points
// resolved the same way — which is exactly what replay verifies.
type choicePoint struct {
	cands  []Node
	winner int
}

// recorder accumulates choice points during a full enumeration.
type recorder struct {
	choices    []choicePoint
	replayable bool
}

// chooser folds the optimizer's standard argmin — strict <, first
// candidate wins ties — over a candidate list, recording the list when a
// recorder is attached. All plan-choice sites route through it so the
// recorded comparison order matches enumeration exactly.
type chooser struct {
	rec     *recorder
	cands   []Node
	best    Node
	bestIdx int
	n       int
}

func startChoice(rec *recorder) chooser { return chooser{rec: rec, bestIdx: -1} }

func (c *chooser) consider(n Node) {
	if c.best == nil || n.Cost().Total < c.best.Cost().Total {
		c.best, c.bestIdx = n, c.n
	}
	c.n++
	if c.rec != nil {
		c.cands = append(c.cands, n)
	}
}

func (c *chooser) done() Node {
	if c.rec != nil && c.n > 0 {
		c.rec.choices = append(c.rec.choices, choicePoint{cands: c.cands, winner: c.bestIdx})
	}
	return c.best
}

// Optimize plans the prepared query under p via the two-tier fast path:
//
//	tier 1: p agrees with the recorded vector on every plan-shaping field
//	        (only the seconds conversion differs) — reuse the recorded
//	        tree outright.
//	tier 2: re-price each recorded choice point's candidates under p and
//	        verify the same candidate still dominates; all winners
//	        unchanged means the recorded shape is provably the optimum
//	        under p, so only the O(nodes) re-pricing was paid.
//
// Any flipped winner — or a query with derived tables, whose inner plans
// must be re-optimized — falls back to full enumeration and records a
// fresh snapshot.
func (pq *PreparedQuery) Optimize(p Params) (*Plan, error) {
	mOptimizeCalls.Inc()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pc := &planCtx{q: pq.q, ps: pq.ps}
	if rec := pq.rec.Load(); rec != nil && rec.replayable {
		if p.planShapeEqual(rec.params) {
			mRecostFast.Inc()
			return &Plan{Root: rec.root, Query: pq.q, Params: p, prep: pq}, nil
		}
		if next, ok := replay(rec, pc, p); ok {
			mRecostFast.Inc()
			pq.rec.Store(next)
			return &Plan{Root: next.root, Query: pq.q, Params: p, prep: pq}, nil
		}
	}
	mRecostFull.Inc()
	rec := &recorder{replayable: true}
	pl, err := optimizeInto(pc, p, rec)
	if err != nil {
		return nil, err
	}
	pl.prep = pq
	pq.rec.Store(&enumRecord{params: p, choices: rec.choices, origRoot: pl.Root, root: pl.Root, replayable: rec.replayable})
	return pl, nil
}

// Recost re-prices the plan's query under a new parameter vector,
// returning a plan identical to Optimize(pl.Query, p) but usually without
// re-running join enumeration. Plans produced by a PreparedQuery keep
// their plan-space memo; plans from the plain Optimize entry point fall
// back to a full optimization.
func (pl *Plan) Recost(p Params) (*Plan, error) {
	if pl.prep != nil {
		return pl.prep.Optimize(p)
	}
	mRecostFull.Inc()
	return Optimize(pl.Query, p)
}

// replay re-resolves every recorded choice point under new parameters.
// Candidates are rebuilt bottom-up (children of later candidates are the
// already-verified winners of earlier choice points), so a full pass with
// no flipped winner reconstructs, node for node, what a from-scratch
// enumeration under p would have built — at O(total candidates) instead
// of O(3^n) subset splits.
// A successful replay returns a fresh record under p — the same choice
// points (candidate structure and winners are parameter-independent)
// with the re-priced root — which the caller publishes so subsequent
// re-costs under the same plan-shape parameters take the tier-1
// pointer-reuse path instead of replaying again (the common case when a
// workload repeats a statement).
func replay(rec *enumRecord, pc *planCtx, p Params) (*enumRecord, bool) {
	r := &replayer{memo: make(map[Node]Node, 2*len(rec.choices)), pc: pc, p: p}
	for _, cp := range rec.choices {
		best := -1
		var bestTotal float64
		for i, cand := range cp.cands {
			nc := r.rebuild(cand)
			if nc == nil {
				return nil, false
			}
			if best < 0 || nc.Cost().Total < bestTotal {
				best, bestTotal = i, nc.Cost().Total
			}
		}
		if best != cp.winner {
			return nil, false
		}
	}
	root := r.rebuild(rec.origRoot)
	if root == nil {
		return nil, false
	}
	return &enumRecord{params: p, choices: rec.choices, origRoot: rec.origRoot, root: root, replayable: true}, true
}

// replayer rebuilds recorded nodes under new parameters, memoizing by the
// old node's pointer identity so shared subtrees are re-priced once.
type replayer struct {
	memo map[Node]Node
	pc   *planCtx
	p    Params
}

func (r *replayer) rebuild(n Node) Node {
	if nn, ok := r.memo[n]; ok {
		return nn
	}
	nn := r.rebuildNode(n)
	if nn != nil {
		r.memo[n] = nn
	}
	return nn
}

// rebuildNode re-runs the original node constructor with the old node's
// structural fields and the new parameter vector, producing exactly the
// node a fresh enumeration would. Children are accessed directly per
// kind (no children() slice), and the old node's layout is lent to the
// constructor: both are parameter-independent, as are the join rows
// passed through from the old node (derived tables, the exception, are
// never replayed). A nil return means the node kind cannot be replayed
// and the caller must fall back to enumeration.
func (r *replayer) rebuildNode(old Node) Node {
	pc, p := r.pc, r.p
	switch n := old.(type) {
	case *SeqScan:
		pc.lendLayout(n.layout)
		return newSeqScan(n.Rel, n.Filter, pc, p)
	case *IndexScan:
		pc.lendLayout(n.layout)
		return newIndexScan(n.Rel, n.Index, n.Lo, n.Hi, n.rangeSel, n.Filter, pc, p)
	case *FilterNode:
		in := r.rebuild(n.Input)
		if in == nil {
			return nil
		}
		return newFilter(in, n.Conds, pc, p)
	case *NLJoin:
		outer, inner := r.rebuild(n.Outer), r.rebuild(n.Inner)
		if outer == nil || inner == nil {
			return nil
		}
		pc.lendLayout(n.layout)
		return newNLJoin(n.Type, outer, inner, n.On, n.Rows(), pc, p)
	case *HashJoin:
		left, right := r.rebuild(n.Left), r.rebuild(n.Right)
		if left == nil || right == nil {
			return nil
		}
		pc.lendLayout(n.layout)
		return newHashJoin(n.Type, left, right, n.LeftKeys, n.RightKeys, n.Residual, n.Rows(), n.BuildOuter, pc, p)
	case *MergeJoin:
		left, right := r.rebuild(n.Left), r.rebuild(n.Right)
		if left == nil || right == nil {
			return nil
		}
		pc.lendLayout(n.layout)
		return newMergeJoin(n.Type, left, right, n.LeftCols, n.RightCols, n.Residual, n.Rows(), pc, p)
	case *IndexNLJoin:
		outer := r.rebuild(n.Outer)
		if outer == nil {
			return nil
		}
		pc.lendLayout(n.layout)
		return newIndexNLJoin(n.Type, outer, n.InnerRel, n.Index, n.OuterKey, n.InnerFilter, n.Residual, n.Rows(), pc, p)
	case *Sort:
		in := r.rebuild(n.Input)
		if in == nil {
			return nil
		}
		return newSort(in, n.Keys, p)
	case *HashAgg:
		in := r.rebuild(n.Input)
		if in == nil {
			return nil
		}
		pc.lendLayout(n.layout)
		return newHashAgg(in, n.GroupBy, n.Aggs, pc, p)
	case *Project:
		in := r.rebuild(n.Input)
		if in == nil {
			return nil
		}
		pc.lendLayout(n.layout)
		return newProject(in, n.Cols, pc, p)
	case *Distinct:
		in := r.rebuild(n.Input)
		if in == nil {
			return nil
		}
		return newDistinct(in, n.VisibleCols, p)
	case *Limit:
		in := r.rebuild(n.Input)
		if in == nil {
			return nil
		}
		return newLimit(in, n.N, p)
	default:
		// SubqueryScan (derived tables) and anything future: not replayable.
		return nil
	}
}
