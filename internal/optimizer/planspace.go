package optimizer

import (
	"math"
	"sync"

	"dbvirt/internal/plan"
)

// planSpace holds the parameter-independent artifacts of one bound query —
// the "plan-space phase" of the what-if split (DESIGN.md §9). Everything
// here depends only on the query text and the catalog statistics, never on
// the cost parameter vector P, so it is computed once per PreparedQuery
// and shared by every Optimize/Recost under any candidate allocation,
// including concurrent calls from parallel solver workers.
type planSpace struct {
	mu  sync.RWMutex
	sel map[plan.Expr]float64 // selectivity per predicate tree
	ops map[plan.Expr]float64 // operator-unit estimate per expression

	// shareRows guards the cross-call cardinality memo. Derived tables
	// estimate their leaf cardinality from the optimized inner plan, whose
	// shape may change with P, so only subquery-free queries share rows.
	shareRows bool
	rowsDense []float64               // indexed by RelSet mask when n <= dpRelLimit
	rowsMap   map[plan.RelSet]float64 // beyond the DP limit (greedy queries)
}

func newPlanSpace(q *plan.Query) *planSpace {
	ps := &planSpace{
		sel:       make(map[plan.Expr]float64),
		ops:       make(map[plan.Expr]float64),
		shareRows: true,
	}
	for _, rel := range q.Rels {
		if rel.Sub != nil {
			ps.shareRows = false
		}
	}
	if ps.shareRows {
		if n := len(q.Rels); n <= dpRelLimit {
			ps.rowsDense = make([]float64, 1<<uint(n))
			for i := range ps.rowsDense {
				ps.rowsDense[i] = math.NaN()
			}
		} else {
			ps.rowsMap = make(map[plan.RelSet]float64)
		}
	}
	return ps
}

func (ps *planSpace) rowsGet(s plan.RelSet) (float64, bool) {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	if ps.rowsDense != nil {
		v := ps.rowsDense[s]
		return v, !math.IsNaN(v)
	}
	v, ok := ps.rowsMap[s]
	return v, ok
}

func (ps *planSpace) rowsPut(s plan.RelSet, v float64) {
	ps.mu.Lock()
	if ps.rowsDense != nil {
		ps.rowsDense[s] = v
	} else {
		ps.rowsMap[s] = v
	}
	ps.mu.Unlock()
}

// planCtx bundles a bound query with its optional shared plan-space memos.
// With ps == nil (the plain Optimize path) every estimate is computed
// directly, keeping the one-shot path bit-identical to — and as lean as —
// the pre-memoization optimizer.
type planCtx struct {
	q  *plan.Query
	ps *planSpace

	// reuseLayout/haveLayout carry a layout the replayer lends to the next
	// node constructor. A replayed node has exactly the structure of the
	// node it rebuilds, so its derived layout is identical; sharing the old
	// node's (immutable) layout skips re-deriving the map. planCtx is
	// per-Optimize-call state, so the hand-off is single-threaded.
	reuseLayout plan.Layout
	haveLayout  bool
}

// lendLayout offers a layout to the next constructor that builds one.
func (pc *planCtx) lendLayout(l plan.Layout) { pc.reuseLayout, pc.haveLayout = l, true }

// takeLayout consumes a lent layout, if any.
func (pc *planCtx) takeLayout() (plan.Layout, bool) {
	if !pc.haveLayout {
		return plan.Layout{}, false
	}
	l := pc.reuseLayout
	pc.reuseLayout, pc.haveLayout = plan.Layout{}, false
	return l, true
}

// relLayout is a single-relation leaf layout, honoring a lent one.
func (pc *planCtx) relLayout(idx int) plan.Layout {
	if l, ok := pc.takeLayout(); ok {
		return l
	}
	return plan.SingleRel(idx)
}

// joinLayout is a merged join layout, honoring a lent one.
func (pc *planCtx) joinLayout(left, right Node) plan.Layout {
	if l, ok := pc.takeLayout(); ok {
		return l
	}
	return mergeLayouts(left, right)
}

// selectivity is the (optionally memoized) counterpart of the package
// function of the same name. Keys are expression pointers: bound queries
// are immutable, so pointer identity is expression identity.
func (pc *planCtx) selectivity(e plan.Expr) float64 {
	ps := pc.ps
	if ps == nil {
		return selectivity(e, pc.q)
	}
	ps.mu.RLock()
	v, ok := ps.sel[e]
	ps.mu.RUnlock()
	if ok {
		return v
	}
	v = selectivity(e, pc.q)
	ps.mu.Lock()
	ps.sel[e] = v
	ps.mu.Unlock()
	return v
}

// exprOps is the memoized counterpart of exprOps.
func (pc *planCtx) exprOps(e plan.Expr) float64 {
	ps := pc.ps
	if ps == nil {
		return exprOps(e, pc.q)
	}
	ps.mu.RLock()
	v, ok := ps.ops[e]
	ps.mu.RUnlock()
	if ok {
		return v
	}
	v = exprOps(e, pc.q)
	ps.mu.Lock()
	ps.ops[e] = v
	ps.mu.Unlock()
	return v
}

// predOps sums per-conjunct operator estimates (memoized per conjunct).
func (pc *planCtx) predOps(conjs []plan.Conjunct) float64 {
	var total float64
	for _, c := range conjs {
		total += pc.exprOps(c.E)
	}
	return total
}

// conjSel multiplies per-conjunct selectivities, clamped to [0, 1].
func (pc *planCtx) conjSel(conjs []plan.Conjunct) float64 {
	s := 1.0
	for _, c := range conjs {
		s *= pc.selectivity(c.E)
	}
	return clampSel(s)
}

// outputOps sums the operator estimates of the projection expressions.
func (pc *planCtx) outputOps(cols []plan.OutputCol) float64 {
	var total float64
	for _, c := range cols {
		total += pc.exprOps(c.E)
	}
	return total
}
