package optimizer

import (
	"fmt"

	"strconv"

	"dbvirt/internal/catalog"
	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
)

// Node is a physical plan operator. Nodes are immutable once built; the
// executor walks the tree and instantiates iterators.
type Node interface {
	// Rows is the estimated output cardinality.
	Rows() float64
	// Cost is the estimated cost in seq-page units.
	Cost() Cost
	// Layout maps relation indexes to offsets in this node's output rows.
	Layout() plan.Layout
	// Width is the number of values per output row.
	Width() int
	// name is the operator name for EXPLAIN.
	name() string
	// children returns the input nodes for EXPLAIN.
	children() []Node
	// detail is extra EXPLAIN text (predicates, keys).
	detail() []string
}

// common holds the fields shared by every node.
type common struct {
	rows     float64
	cost     Cost
	layout   plan.Layout
	width    int
	rowBytes float64 // estimated bytes per output row
}

func (c *common) Rows() float64       { return c.rows }
func (c *common) Cost() Cost          { return c.cost }
func (c *common) Layout() plan.Layout { return c.layout }
func (c *common) Width() int          { return c.width }

// SeqScan reads a base table sequentially, applying pushed-down filters.
type SeqScan struct {
	common
	Rel    *plan.Rel
	Filter []plan.Conjunct
}

func (*SeqScan) name() string     { return "SeqScan" }
func (*SeqScan) children() []Node { return nil }
func (s *SeqScan) detail() []string {
	d := []string{"on " + s.Rel.Name}
	if len(s.Filter) > 0 {
		d = append(d, "filter: "+conjString(s.Filter))
	}
	return d
}

// Bound is one end of an index key range. Inclusive int64 bound; nil means
// unbounded.
type Bound struct {
	Key int64
}

// IndexScan probes a B+-tree for keys in [Lo, Hi] and fetches matching
// heap tuples, applying residual filters.
type IndexScan struct {
	common
	Rel    *plan.Rel
	Index  *catalog.Index
	Lo, Hi *Bound // nil = open end
	Filter []plan.Conjunct
	// Correlated is true when the index correlation is high enough that
	// heap fetches are charged (and hinted) as sequential.
	Correlated bool
	// rangeSel is the selectivity of the key range alone, kept so the scan
	// can be re-costed under new parameters without re-deriving the range.
	rangeSel float64
}

func (*IndexScan) name() string     { return "IndexScan" }
func (*IndexScan) children() []Node { return nil }
func (s *IndexScan) detail() []string {
	d := []string{"on " + s.Rel.Name + " using " + s.Index.Name + rangeString(s.Lo, s.Hi)}
	if len(s.Filter) > 0 {
		d = append(d, "filter: "+conjString(s.Filter))
	}
	return d
}

// SubqueryScan evaluates a derived table (FROM subquery): its input is
// the independently optimized inner plan, and its output rows are the
// inner query's visible columns, addressed as the relation Rel.
type SubqueryScan struct {
	common
	Rel   *plan.Rel
	Input Node
	// Visible maps output columns to positions in the inner plan's rows
	// (the inner projection includes hidden ORDER BY columns).
	Visible []int
}

func (*SubqueryScan) name() string       { return "SubqueryScan" }
func (s *SubqueryScan) children() []Node { return []Node{s.Input} }
func (s *SubqueryScan) detail() []string { return []string{"as " + s.Rel.Name} }

// FilterNode applies predicates above its input.
type FilterNode struct {
	common
	Input Node
	Conds []plan.Conjunct
}

func (*FilterNode) name() string       { return "Filter" }
func (f *FilterNode) children() []Node { return []Node{f.Input} }
func (f *FilterNode) detail() []string { return []string{"cond: " + conjString(f.Conds)} }

// NLJoin is a nested-loops join with the inner side materialized in
// memory and rescanned per outer row.
type NLJoin struct {
	common
	Type  sql.JoinType
	Outer Node
	Inner Node
	On    []plan.Conjunct // evaluated over the concatenated row
}

func (*NLJoin) name() string       { return "NestLoop" }
func (j *NLJoin) children() []Node { return []Node{j.Outer, j.Inner} }
func (j *NLJoin) detail() []string {
	d := []string{j.Type.String()}
	if len(j.On) > 0 {
		d = append(d, "on: "+conjString(j.On))
	}
	return d
}

// HashJoin builds a hash table on the inner (right) side keyed by
// RightKeys and probes it with LeftKeys. For LEFT joins, unmatched outer
// rows are emitted null-extended.
type HashJoin struct {
	common
	Type      sql.JoinType
	Left      Node // probe side (outer)
	Right     Node // build side (inner)
	LeftKeys  []plan.Expr
	RightKeys []plan.Expr
	Residual  []plan.Conjunct
	// Batches > 1 indicates the planner expects the build side to exceed
	// work_mem and be partitioned to disk (Grace hash join).
	Batches int
	// BuildOuter executes the join "in reverse" (PostgreSQL's Hash Right
	// Join): the hash table is built on the outer (left) side and probed
	// with inner rows, with unmatched outer rows emitted at the end. The
	// result is identical; it is chosen when the outer side is smaller.
	BuildOuter bool
}

func (*HashJoin) name() string       { return "HashJoin" }
func (j *HashJoin) children() []Node { return []Node{j.Left, j.Right} }
func (j *HashJoin) detail() []string {
	d := []string{j.Type.String(), "keys: " + exprList(j.LeftKeys) + " = " + exprList(j.RightKeys)}
	if len(j.Residual) > 0 {
		d = append(d, "residual: "+conjString(j.Residual))
	}
	if j.Batches > 1 {
		d = append(d, "batches: "+strconv.Itoa(j.Batches))
	}
	if j.BuildOuter {
		d = append(d, "build=outer")
	}
	return d
}

// IndexNLJoin probes an index on the inner relation once per outer row
// with a key computed from the outer row (equi-join only).
type IndexNLJoin struct {
	common
	Type     sql.JoinType
	Outer    Node
	InnerRel *plan.Rel
	Index    *catalog.Index
	// OuterKey yields the probe key from the outer row.
	OuterKey plan.Expr
	// InnerFilter applies to inner tuples before joining.
	InnerFilter []plan.Conjunct
	// Residual applies to the concatenated row.
	Residual []plan.Conjunct
}

func (*IndexNLJoin) name() string       { return "IndexNestLoop" }
func (j *IndexNLJoin) children() []Node { return []Node{j.Outer} }
func (j *IndexNLJoin) detail() []string {
	d := []string{
		j.Type.String(),
		"inner: " + j.InnerRel.Name + " using " + j.Index.Name,
		"key: " + j.OuterKey.String(),
	}
	if len(j.InnerFilter) > 0 {
		d = append(d, "inner filter: "+conjString(j.InnerFilter))
	}
	if len(j.Residual) > 0 {
		d = append(d, "residual: "+conjString(j.Residual))
	}
	return d
}

// MergeJoin joins two inputs sorted ascending by their key columns
// (bare-column equi-keys only; inner joins only). The planner feeds it
// index scans that already produce key order, or inserts explicit Sorts.
type MergeJoin struct {
	common
	Type        sql.JoinType
	Left, Right Node
	// LeftCols/RightCols are the key column offsets in each child's rows.
	LeftCols, RightCols []int
	Residual            []plan.Conjunct
}

func (*MergeJoin) name() string       { return "MergeJoin" }
func (j *MergeJoin) children() []Node { return []Node{j.Left, j.Right} }
func (j *MergeJoin) detail() []string {
	var keys []string
	for i := range j.LeftCols {
		keys = append(keys, fmt.Sprintf("l%d = r%d", j.LeftCols[i], j.RightCols[i]))
	}
	d := []string{j.Type.String(), "keys: " + join(keys, ", ")}
	if len(j.Residual) > 0 {
		d = append(d, "residual: "+conjString(j.Residual))
	}
	return d
}

// SortKey orders by a column offset of the input row.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort materializes and sorts its input, spilling to simulated disk when
// the data exceeds work_mem (external merge sort).
type Sort struct {
	common
	Input Node
	Keys  []SortKey
	// SpillPages is the planner's estimate of pages written+read if the
	// sort exceeds work_mem (0 = in-memory).
	SpillPages float64
}

func (*Sort) name() string       { return "Sort" }
func (s *Sort) children() []Node { return []Node{s.Input} }
func (s *Sort) detail() []string {
	var keys []string
	for _, k := range s.Keys {
		kk := "col" + strconv.Itoa(k.Col)
		if k.Desc {
			kk += " DESC"
		}
		keys = append(keys, kk)
	}
	d := []string{"keys: " + join(keys, ", ")}
	if s.SpillPages > 0 {
		d = append(d, "external")
	}
	return d
}

// HashAgg groups its input by the GroupBy expressions (over the input
// layout) and computes the aggregates. Output rows are group keys followed
// by aggregate values (plan.PostAgg layout).
type HashAgg struct {
	common
	Input   Node
	GroupBy []plan.Expr
	Aggs    []plan.AggSpec
}

func (*HashAgg) name() string       { return "HashAggregate" }
func (a *HashAgg) children() []Node { return []Node{a.Input} }
func (a *HashAgg) detail() []string {
	var d []string
	if len(a.GroupBy) > 0 {
		d = append(d, "group by: "+exprList(a.GroupBy))
	}
	var aggs []string
	for _, s := range a.Aggs {
		aggs = append(aggs, s.Name)
	}
	return append(d, "aggs: "+join(aggs, ", "))
}

// Project evaluates the output expressions.
type Project struct {
	common
	Input Node
	Cols  []plan.OutputCol
}

func (*Project) name() string       { return "Project" }
func (p *Project) children() []Node { return []Node{p.Input} }
func (p *Project) detail() []string {
	var cols []string
	for _, c := range p.Cols {
		n := c.Name
		if c.Hidden {
			n += " (hidden)"
		}
		cols = append(cols, n)
	}
	return []string{join(cols, ", ")}
}

// Distinct removes duplicate visible rows by hashing.
type Distinct struct {
	common
	Input Node
	// VisibleCols is the number of leading row values that participate in
	// the duplicate check (hidden ORDER BY columns are excluded).
	VisibleCols int
}

func (*Distinct) name() string       { return "Distinct" }
func (d *Distinct) children() []Node { return []Node{d.Input} }
func (*Distinct) detail() []string   { return nil }

// Limit truncates the input to N rows.
type Limit struct {
	common
	Input Node
	N     int64
}

func (*Limit) name() string       { return "Limit" }
func (l *Limit) children() []Node { return []Node{l.Input} }
func (l *Limit) detail() []string { return []string{strconv.FormatInt(l.N, 10)} }
