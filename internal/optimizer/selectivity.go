package optimizer

import (
	"math"

	"dbvirt/internal/catalog"
	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
	"dbvirt/internal/types"
)

// Default selectivities when statistics cannot decide, following
// PostgreSQL's conventions.
const (
	defaultEqSel    = 0.005
	defaultRangeSel = 1.0 / 3.0
	defaultLikeSel  = 0.005
	defaultBoolSel  = 0.5
	// defaultRows is assumed for tables that were never analyzed.
	defaultRows  = 1000
	defaultPages = 10
)

// statsFor returns table statistics, synthesizing defaults for unanalyzed
// tables.
func statsFor(rel *plan.Rel) *catalog.TableStats {
	if rel.Table.Stats != nil {
		return rel.Table.Stats
	}
	return &catalog.TableStats{
		NumRows:  defaultRows,
		NumPages: defaultPages,
		Cols:     make([]catalog.ColumnStats, len(rel.Table.Schema.Cols)),
	}
}

// clampSel keeps a selectivity in [0, 1].
func clampSel(s float64) float64 {
	switch {
	case s < 0:
		return 0
	case s > 1:
		return 1
	case math.IsNaN(s):
		return defaultBoolSel
	default:
		return s
	}
}

// selectivity estimates the fraction of input rows satisfying e. rels maps
// a relation index to its statistics (so join-level estimation can reach
// all inputs).
func selectivity(e plan.Expr, q *plan.Query) float64 {
	switch x := e.(type) {
	case *plan.Const:
		if x.Val.Kind == types.KindBool {
			if x.Val.Bool() {
				return 1
			}
			return 0
		}
		return defaultBoolSel

	case *plan.Bin:
		switch x.Op {
		case sql.OpAnd:
			return clampSel(selectivity(x.L, q) * selectivity(x.R, q))
		case sql.OpOr:
			l, r := selectivity(x.L, q), selectivity(x.R, q)
			return clampSel(l + r - l*r)
		}
		if !x.Op.Comparison() {
			return defaultBoolSel
		}
		// col op col (different relations) => join selectivity.
		lc, lIsCol := x.L.(*plan.ColRef)
		rc, rIsCol := x.R.(*plan.ColRef)
		if lIsCol && rIsCol && lc.Rel >= 0 && rc.Rel >= 0 && lc.Rel != rc.Rel {
			return joinSelectivity(x.Op, lc, rc, q)
		}
		// col op const (either side).
		if lIsCol && lc.Rel >= 0 {
			if v, ok := constValue(x.R); ok {
				return scalarSelectivity(x.Op, lc, v, q)
			}
		}
		if rIsCol && rc.Rel >= 0 {
			if v, ok := constValue(x.L); ok {
				return scalarSelectivity(flipOp(x.Op), rc, v, q)
			}
		}
		// col op col same relation (e.g. l_commitdate < l_receiptdate).
		if lIsCol && rIsCol {
			if x.Op == sql.OpEq {
				return defaultEqSel
			}
			return defaultRangeSel
		}
		if x.Op == sql.OpEq {
			return defaultEqSel
		}
		return defaultRangeSel

	case *plan.Not:
		return clampSel(1 - selectivity(x.E, q))

	case *plan.Between:
		s := rangeBetween(x, q)
		if x.NotB {
			return clampSel(1 - s)
		}
		return s

	case *plan.In:
		col, isCol := x.E.(*plan.ColRef)
		var s float64
		if isCol && col.Rel >= 0 {
			for _, item := range x.List {
				if v, ok := constValue(item); ok {
					s += scalarSelectivity(sql.OpEq, col, v, q)
				} else {
					s += defaultEqSel
				}
			}
		} else {
			s = defaultEqSel * float64(len(x.List))
		}
		s = clampSel(s)
		if x.NotI {
			return clampSel(1 - s)
		}
		return s

	case *plan.Like:
		s := likeSelectivity(x.Pattern)
		if x.NotL {
			return clampSel(1 - s)
		}
		return s

	case *plan.IsNull:
		col, isCol := x.E.(*plan.ColRef)
		s := defaultEqSel
		if isCol && col.Rel >= 0 {
			s = statsFor(q.Rels[col.Rel]).Cols[col.Col].NullFrac
		}
		if x.NotN {
			return clampSel(1 - s)
		}
		return clampSel(s)

	case *plan.ColRef:
		if x.Kind == types.KindBool {
			return defaultBoolSel
		}
		return defaultBoolSel

	default:
		return defaultBoolSel
	}
}

// constValue extracts a constant's sort key if e is a literal.
func constValue(e plan.Expr) (float64, bool) {
	c, ok := e.(*plan.Const)
	if !ok || c.Val.IsNull() {
		return 0, false
	}
	return c.Val.ToSortKey()
}

func flipOp(op sql.BinaryOp) sql.BinaryOp {
	switch op {
	case sql.OpLt:
		return sql.OpGt
	case sql.OpLe:
		return sql.OpGe
	case sql.OpGt:
		return sql.OpLt
	case sql.OpGe:
		return sql.OpLe
	default:
		return op
	}
}

// scalarSelectivity estimates col op const using the column's statistics.
func scalarSelectivity(op sql.BinaryOp, col *plan.ColRef, v float64, q *plan.Query) float64 {
	cs := statsFor(q.Rels[col.Rel]).Cols[col.Col]
	switch op {
	case sql.OpEq:
		return eqSelectivity(cs, v)
	case sql.OpNe:
		return clampSel(1 - eqSelectivity(cs, v) - cs.NullFrac)
	case sql.OpLt, sql.OpLe:
		return clampSel(ltSelectivity(cs, v, op == sql.OpLe))
	case sql.OpGt, sql.OpGe:
		lt := ltSelectivity(cs, v, op == sql.OpGt) // complement of <= for >, of < for >=
		return clampSel(1 - lt - cs.NullFrac)
	default:
		return defaultBoolSel
	}
}

// eqSelectivity is the PostgreSQL eqsel logic: exact MCV match if present,
// otherwise spread the non-MCV mass over the remaining distinct values.
func eqSelectivity(cs catalog.ColumnStats, v float64) float64 {
	for _, m := range cs.MCVs {
		if m.Key == v {
			return clampSel(m.Freq)
		}
	}
	if cs.NDistinct <= 0 {
		return defaultEqSel
	}
	remaining := cs.NDistinct - float64(len(cs.MCVs))
	if remaining < 1 {
		remaining = 1
	}
	otherMass := 1 - cs.MCVFreqTotal() - cs.NullFrac
	if otherMass < 0 {
		otherMass = 0
	}
	return clampSel(otherMass / remaining)
}

// ltSelectivity estimates Pr[col < v] (or <= v) from the histogram and
// MCVs, excluding NULLs.
func ltSelectivity(cs catalog.ColumnStats, v float64, orEqual bool) float64 {
	if !cs.HasRange {
		return defaultRangeSel
	}
	if v < cs.Min {
		return 0
	}
	if v > cs.Max {
		return clampSel(1 - cs.NullFrac)
	}
	// Mass from MCVs below v.
	var mcvBelow float64
	for _, m := range cs.MCVs {
		if m.Key < v || (orEqual && m.Key == v) {
			mcvBelow += m.Freq
		}
	}
	// Mass from histogram (covers the non-MCV, non-NULL fraction).
	histMass := 1 - cs.MCVFreqTotal() - cs.NullFrac
	if histMass < 0 {
		histMass = 0
	}
	frac := histFraction(cs.Histogram, v)
	return clampSel(mcvBelow + histMass*frac)
}

// histFraction returns the fraction of histogram mass strictly below v,
// with linear interpolation within a bucket.
func histFraction(hist []float64, v float64) float64 {
	if len(hist) < 2 {
		return defaultRangeSel
	}
	if v <= hist[0] {
		return 0
	}
	n := len(hist) - 1 // buckets
	if v >= hist[n] {
		return 1
	}
	for i := 0; i < n; i++ {
		lo, hi := hist[i], hist[i+1]
		if v < hi || (v == hi && i == n-1) {
			within := 0.5
			if hi > lo {
				within = (v - lo) / (hi - lo)
			}
			return (float64(i) + within) / float64(n)
		}
	}
	return 1
}

// rangeBetween estimates a BETWEEN as the difference of two boundary
// selectivities.
func rangeBetween(x *plan.Between, q *plan.Query) float64 {
	col, isCol := x.E.(*plan.ColRef)
	lo, okLo := constValue(x.Lo)
	hi, okHi := constValue(x.Hi)
	if !isCol || col.Rel < 0 || !okLo || !okHi {
		return defaultRangeSel * defaultRangeSel
	}
	cs := statsFor(q.Rels[col.Rel]).Cols[col.Col]
	below := ltSelectivity(cs, lo, false)
	upTo := ltSelectivity(cs, hi, true)
	return clampSel(upTo - below)
}

// likeSelectivity mirrors PostgreSQL's pattern heuristics: a leading
// wildcard gives the default match selectivity; an anchored prefix is more
// selective per fixed character.
func likeSelectivity(pattern string) float64 {
	if pattern == "" {
		return defaultEqSel
	}
	if pattern[0] == '%' || pattern[0] == '_' {
		return defaultLikeSel
	}
	// Anchored: each fixed leading character divides by alphabet-ish factor.
	sel := 1.0
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		if c == '%' || c == '_' {
			break
		}
		sel *= 0.2
		if sel < defaultLikeSel {
			return defaultLikeSel
		}
	}
	return clampSel(sel)
}

// joinSelectivity estimates col1 op col2 across relations; for equality it
// is 1/max(nd1, nd2) discounted by null fractions (PostgreSQL's eqjoinsel).
func joinSelectivity(op sql.BinaryOp, a, b *plan.ColRef, q *plan.Query) float64 {
	if op != sql.OpEq {
		return defaultRangeSel
	}
	ca := statsFor(q.Rels[a.Rel]).Cols[a.Col]
	cb := statsFor(q.Rels[b.Rel]).Cols[b.Col]
	nda, ndb := ca.NDistinct, cb.NDistinct
	if nda <= 0 {
		nda = defaultRows * defaultEqSel
	}
	if ndb <= 0 {
		ndb = defaultRows * defaultEqSel
	}
	sel := 1 / math.Max(nda, ndb)
	sel *= (1 - ca.NullFrac) * (1 - cb.NullFrac)
	return clampSel(sel)
}

// groupCountEstimate estimates the number of distinct groups produced by
// grouping inputRows rows on the given keys.
func groupCountEstimate(groupBy []plan.Expr, inputRows float64, q *plan.Query) float64 {
	if len(groupBy) == 0 {
		return 1
	}
	groups := 1.0
	for _, g := range groupBy {
		nd := defaultRows * defaultEqSel
		if col, ok := g.(*plan.ColRef); ok && col.Rel >= 0 {
			if d := statsFor(q.Rels[col.Rel]).Cols[col.Col].NDistinct; d > 0 {
				nd = d
			}
		}
		groups *= nd
	}
	if groups > inputRows {
		groups = inputRows
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}
