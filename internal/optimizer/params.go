// Package optimizer implements a System-R style cost-based query optimizer
// whose cost model mirrors PostgreSQL's: plan costs are expressed in units
// of one sequential page fetch and are parameterized by an environment
// vector P (random_page_cost, cpu_tuple_cost, cpu_index_tuple_cost,
// cpu_operator_cost, effective_cache_size, work_mem).
//
// The paper's key idea — the virtualization-aware what-if mode — is the
// Optimize entry point: it takes the parameter vector P explicitly, so the
// same query can be costed under the calibrated P(R) of any candidate
// resource allocation R without executing anything. TimePerSeqPage converts
// optimizer cost units into estimated seconds under that allocation.
package optimizer

import "fmt"

// Params is the optimizer's model of the physical environment — the set P
// of Section 4 of the paper. Costs of all plans are linear in these
// parameters, which is what makes calibration by solving linear systems
// possible.
type Params struct {
	// SeqPageCost is the cost of one sequential page fetch; by convention
	// it is the unit (1.0) and the other costs are relative to it.
	SeqPageCost float64
	// RandomPageCost is the cost of a non-sequential page fetch.
	RandomPageCost float64
	// CPUTupleCost is the CPU cost of processing one tuple.
	CPUTupleCost float64
	// CPUIndexTupleCost is the CPU cost of processing one index entry.
	CPUIndexTupleCost float64
	// CPUOperatorCost is the CPU cost of one operator or function call.
	CPUOperatorCost float64
	// EffectiveCacheSizePages is the planner's assumption about how many
	// pages of the workload stay cached (buffer pool) for repeated access.
	EffectiveCacheSizePages int64
	// WorkMemBytes bounds the memory of one sort or hash operation before
	// it spills.
	WorkMemBytes int64
	// TimePerSeqPage converts cost units to seconds: the measured wall
	// time of one sequential page fetch under the target resource
	// allocation. Zero means "unknown" (EstimateSeconds returns cost
	// units unchanged).
	TimePerSeqPage float64
	// Overlap in [0,1] is the calibrated fraction of CPU and I/O work
	// that proceeds concurrently on this machine (prefetching,
	// asynchronous I/O). It refines the what-if time estimate: an
	// I/O-bound plan's CPU cost is largely hidden under its I/O, so its
	// estimated time barely responds to the CPU share — which is what the
	// paper measures for TPC-H Q4. Zero reproduces the plain additive
	// PostgreSQL model.
	Overlap float64
	// TimePerLogFlush is the measured wall time of one WAL group fsync
	// under the target allocation, in seconds. It is the dominant cost of
	// a small committed write transaction, and — like TimePerSeqPage — it
	// scales with the inverse of the I/O share, which is what makes
	// write-bound tenants allocation-sensitive in a different regime than
	// read-bound ones. Zero means "unknown" (write-path estimates omit
	// the flush term).
	TimePerLogFlush float64
	// WriteAmp is the calibrated write amplification of the log path:
	// durable bytes written per logical tuple byte (log framing, torn-page
	// padding, deferred page rewrites). Used by write-path what-if
	// estimates; zero means "unknown".
	WriteAmp float64
}

// DefaultParams returns PostgreSQL's default cost parameters, a 4096-page
// (32 MiB) cache assumption, and 4 MiB work_mem.
func DefaultParams() Params {
	return Params{
		SeqPageCost:             1.0,
		RandomPageCost:          4.0,
		CPUTupleCost:            0.01,
		CPUIndexTupleCost:       0.005,
		CPUOperatorCost:         0.0025,
		EffectiveCacheSizePages: 4096,
		WorkMemBytes:            4 << 20,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.SeqPageCost <= 0:
		return fmt.Errorf("optimizer: SeqPageCost must be positive")
	case p.RandomPageCost <= 0:
		return fmt.Errorf("optimizer: RandomPageCost must be positive")
	case p.CPUTupleCost < 0 || p.CPUIndexTupleCost < 0 || p.CPUOperatorCost < 0:
		return fmt.Errorf("optimizer: CPU costs must be non-negative")
	case p.EffectiveCacheSizePages < 0:
		return fmt.Errorf("optimizer: EffectiveCacheSizePages must be non-negative")
	case p.WorkMemBytes <= 0:
		return fmt.Errorf("optimizer: WorkMemBytes must be positive")
	case p.TimePerSeqPage < 0:
		return fmt.Errorf("optimizer: TimePerSeqPage must be non-negative")
	case p.Overlap < 0 || p.Overlap > 1:
		return fmt.Errorf("optimizer: Overlap must be in [0,1]")
	case p.TimePerLogFlush < 0:
		return fmt.Errorf("optimizer: TimePerLogFlush must be non-negative")
	case p.WriteAmp < 0:
		return fmt.Errorf("optimizer: WriteAmp must be non-negative")
	}
	return nil
}

// EstimateWriteSeconds estimates the time of a write transaction that
// appends logBytes of tuple images and commits with flushes group fsyncs
// (typically 1) under this parameter vector. The log-byte term converts
// amplified bytes to sequential page time; the flush term is the measured
// commit latency. Requires Calibrated; returns 0 otherwise.
func (p Params) EstimateWriteSeconds(logBytes int64, flushes int) float64 {
	if !p.Calibrated() {
		return 0
	}
	amp := p.WriteAmp
	if amp <= 0 {
		amp = 1
	}
	pages := float64(logBytes) * amp / 8192
	return pages*p.TimePerSeqPage + float64(flushes)*p.TimePerLogFlush
}

// planShapeEqual reports whether two parameter vectors yield identical
// plan costs in cost units: every field except TimePerSeqPage and Overlap,
// which only affect the seconds conversion, never plan choice. When true,
// a plan tree optimized under one vector is verbatim optimal under the
// other — the tier-1 re-costing shortcut.
func (p Params) planShapeEqual(o Params) bool {
	return p.SeqPageCost == o.SeqPageCost &&
		p.RandomPageCost == o.RandomPageCost &&
		p.CPUTupleCost == o.CPUTupleCost &&
		p.CPUIndexTupleCost == o.CPUIndexTupleCost &&
		p.CPUOperatorCost == o.CPUOperatorCost &&
		p.EffectiveCacheSizePages == o.EffectiveCacheSizePages &&
		p.WorkMemBytes == o.WorkMemBytes
}

// Calibrated reports whether the seconds conversion is active: a vector
// without a measured TimePerSeqPage estimates in abstract cost units,
// not seconds, so estimate-vs-actual residuals are only meaningful when
// Calibrated is true.
func (p Params) Calibrated() bool { return p.TimePerSeqPage > 0 }

// EstimateSeconds converts a plan cost (in seq-page units) to estimated
// seconds using the calibrated time of one sequential page fetch. The
// cost's CPU component overlaps its I/O component by the calibrated
// Overlap factor, as on the real machine.
func (p Params) EstimateSeconds(cost Cost) float64 {
	cpu := cost.CPU
	io := cost.Total - cost.CPU
	if io < 0 {
		io = 0
	}
	lo := cpu
	if io < lo {
		lo = io
	}
	blended := cpu + io - p.Overlap*lo
	if p.TimePerSeqPage <= 0 {
		return blended
	}
	return blended * p.TimePerSeqPage
}

// Cost is a plan cost: Startup is paid before the first row is produced,
// Total is the cost of producing all rows. CPU is the portion of Total
// attributable to CPU work (the rest is I/O); the decomposition feeds the
// overlap-aware time estimate.
type Cost struct {
	Startup float64
	Total   float64
	CPU     float64
}

// Add returns c shifted by a flat amount on both components.
func (c Cost) Add(extra float64) Cost {
	return Cost{Startup: c.Startup + extra, Total: c.Total + extra, CPU: c.CPU}
}

// String formats the cost like PostgreSQL's EXPLAIN.
func (c Cost) String() string { return fmt.Sprintf("%.2f..%.2f", c.Startup, c.Total) }
