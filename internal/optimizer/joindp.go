package optimizer

import (
	"fmt"
	"math"
	"sync"

	"dbvirt/internal/plan"
	"dbvirt/internal/sql"
)

// dpRelLimit is the largest relation count optimized by exhaustive
// dynamic programming; larger queries fall back to a greedy heuristic.
const dpRelLimit = 13

// joinOptimizer carries state for one enumeration.
type joinOptimizer struct {
	q   *plan.Query
	p   Params
	pc  *planCtx
	rec *recorder

	singleConjs [][]plan.Conjunct // per relation
	singleSel   []float64         // per relation: product selectivity of its conjuncts
	multiConjs  []plan.Conjunct   // spanning >= 2 relations
	zeroConjs   []plan.Conjunct   // constant predicates, applied at the top

	// Cardinality memo. When the plan context carries a shareable memo the
	// shared one is used; otherwise a call-local dense slice (within
	// dpRelLimit) or map serves, backed by pooled scratch.
	sharedRows bool
	rowsDense  []float64 // indexed by RelSet mask; NaN = unset
	rowsMap    map[plan.RelSet]float64

	leaves []Node // best access path per relation, shared by dp and greedy

	// Pooled scratch buffers, reused across enumerations.
	rowsBuf []float64
	bestBuf []Node
}

// joPool recycles joinOptimizer values so repeated enumeration — the inner
// loop of grid calibration and design search — does not reallocate its
// dense DP and cardinality tables every call. Only the scratch buffers
// survive between uses; everything plan-visible is freshly allocated.
var joPool = sync.Pool{New: func() any { return new(joinOptimizer) }}

func getJoinOptimizer(pc *planCtx, p Params, rec *recorder) *joinOptimizer {
	jo := joPool.Get().(*joinOptimizer)
	rowsBuf, bestBuf := jo.rowsBuf, jo.bestBuf
	*jo = joinOptimizer{q: pc.q, p: p, pc: pc, rec: rec, rowsBuf: rowsBuf, bestBuf: bestBuf}
	return jo
}

func (jo *joinOptimizer) release() {
	// Drop references to plan nodes held in the pooled DP table so the
	// pool does not pin whole plan trees between enumerations.
	for i := range jo.bestBuf {
		jo.bestBuf[i] = nil
	}
	joPool.Put(jo)
}

// optimizeJoins produces the cheapest join tree for an inner-join query.
func optimizeJoins(pc *planCtx, p Params, rec *recorder) (Node, error) {
	q := pc.q
	jo := getJoinOptimizer(pc, p, rec)
	defer jo.release()
	jo.singleConjs = make([][]plan.Conjunct, len(q.Rels))
	for _, c := range q.Where {
		switch c.Rels.Count() {
		case 0:
			jo.zeroConjs = append(jo.zeroConjs, c)
		case 1:
			for i := range q.Rels {
				if c.Rels.Has(i) {
					jo.singleConjs[i] = append(jo.singleConjs[i], c)
				}
			}
		default:
			jo.multiConjs = append(jo.multiConjs, c)
		}
	}
	jo.singleSel = make([]float64, len(q.Rels))
	for i := range jo.singleSel {
		jo.singleSel[i] = pc.conjSel(jo.singleConjs[i])
	}
	jo.initRowsMemo(len(q.Rels))

	jo.leaves = make([]Node, len(q.Rels))
	for i, rel := range q.Rels {
		node, err := bestAccessPath(rel, jo.singleConjs[i], pc, p, rec)
		if err != nil {
			return nil, err
		}
		jo.leaves[i] = node
	}

	var root Node
	var err error
	if len(q.Rels) <= dpRelLimit {
		root, err = jo.dp()
	} else {
		root, err = jo.greedy()
	}
	if err != nil {
		return nil, err
	}
	if len(jo.zeroConjs) > 0 {
		root = newFilter(root, jo.zeroConjs, pc, p)
	}
	return root, nil
}

// initRowsMemo selects the cardinality memo for this enumeration: the
// shared cross-call memo when available, else pooled dense scratch within
// the DP limit, else a map.
func (jo *joinOptimizer) initRowsMemo(n int) {
	if jo.pc.ps != nil && jo.pc.ps.shareRows {
		jo.sharedRows = true
		return
	}
	if n <= dpRelLimit {
		size := 1 << uint(n)
		if cap(jo.rowsBuf) < size {
			jo.rowsBuf = make([]float64, size)
		}
		jo.rowsDense = jo.rowsBuf[:size]
		for i := range jo.rowsDense {
			jo.rowsDense[i] = math.NaN()
		}
		return
	}
	jo.rowsMap = make(map[plan.RelSet]float64)
}

// rows returns the plan-independent cardinality estimate for a subset.
func (jo *joinOptimizer) rows(s plan.RelSet) float64 {
	if jo.sharedRows {
		if v, ok := jo.pc.ps.rowsGet(s); ok {
			return v
		}
		v := jo.computeRows(s)
		jo.pc.ps.rowsPut(s, v)
		return v
	}
	if jo.rowsDense != nil {
		if v := jo.rowsDense[s]; !math.IsNaN(v) {
			return v
		}
		v := jo.computeRows(s)
		jo.rowsDense[s] = v
		return v
	}
	if v, ok := jo.rowsMap[s]; ok {
		return v
	}
	v := jo.computeRows(s)
	jo.rowsMap[s] = v
	return v
}

func (jo *joinOptimizer) computeRows(s plan.RelSet) float64 {
	rows := 1.0
	for i := range jo.q.Rels {
		if !s.Has(i) {
			continue
		}
		if jo.q.Rels[i].Sub != nil && jo.leaves != nil {
			// Derived tables: the leaf node's estimate already includes
			// pushed-down filters.
			rows *= jo.leaves[i].Rows()
			continue
		}
		base := float64(statsFor(jo.q.Rels[i]).NumRows)
		rows *= base * jo.singleSel[i]
	}
	for _, c := range jo.multiConjs {
		if c.Rels.SubsetOf(s) {
			rows *= jo.pc.selectivity(c.E)
		}
	}
	if rows < 0 {
		rows = 0
	}
	return rows
}

// newConjuncts returns the multi-relation conjuncts first applicable when
// joining a and b (subset of a∪b but of neither side alone).
func (jo *joinOptimizer) newConjuncts(a, b plan.RelSet) []plan.Conjunct {
	var out []plan.Conjunct
	s := a | b
	for _, c := range jo.multiConjs {
		if c.Rels.SubsetOf(s) && !c.Rels.SubsetOf(a) && !c.Rels.SubsetOf(b) {
			out = append(out, c)
		}
	}
	return out
}

// equiKey describes one hash-joinable equality conjunct between the two
// sides.
type equiKey struct {
	leftE, rightE plan.Expr
	conjIdx       int
	rightCol      *plan.ColRef // set when the right side is a bare column
}

// splitEquiKeys partitions conjuncts into hash keys (left side over a,
// right side over b) and residual predicates.
func splitEquiKeys(conjs []plan.Conjunct, a, b plan.RelSet) (keys []equiKey, residual []plan.Conjunct) {
	for i, c := range conjs {
		bin, ok := c.E.(*plan.Bin)
		if !ok || bin.Op != sql.OpEq {
			residual = append(residual, c)
			continue
		}
		lRels, rRels := plan.RelsOf(bin.L), plan.RelsOf(bin.R)
		switch {
		case lRels != 0 && rRels != 0 && lRels.SubsetOf(a) && rRels.SubsetOf(b):
			k := equiKey{leftE: bin.L, rightE: bin.R, conjIdx: i}
			if col, isCol := bin.R.(*plan.ColRef); isCol {
				k.rightCol = col
			}
			keys = append(keys, k)
		case lRels != 0 && rRels != 0 && rRels.SubsetOf(a) && lRels.SubsetOf(b):
			k := equiKey{leftE: bin.R, rightE: bin.L, conjIdx: i}
			if col, isCol := bin.L.(*plan.ColRef); isCol {
				k.rightCol = col
			}
			keys = append(keys, k)
		default:
			residual = append(residual, c)
		}
	}
	return keys, residual
}

// candidateJoins builds every physical join of outer (over set a) with
// inner (over set b) and returns the cheapest.
func (jo *joinOptimizer) bestJoin(outer Node, a plan.RelSet, inner Node, b plan.RelSet) Node {
	conjs := jo.newConjuncts(a, b)
	rows := jo.rows(a | b)
	keys, residual := splitEquiKeys(conjs, a, b)

	ch := startChoice(jo.rec)
	ch.consider(newNLJoin(sql.InnerJoin, outer, inner, conjs, rows, jo.pc, jo.p))

	if len(keys) > 0 {
		var lks, rks []plan.Expr
		for _, k := range keys {
			lks = append(lks, k.leftE)
			rks = append(rks, k.rightE)
		}
		ch.consider(newHashJoin(sql.InnerJoin, outer, inner, lks, rks, residual, rows, false, jo.pc, jo.p))

		// Merge join: all keys must be bare columns. Children that are
		// index scans over a single join-key column already stream in key
		// order; anything else gets an explicit sort.
		if mj := jo.tryMergeJoin(outer, inner, keys, residual, rows); mj != nil {
			ch.consider(mj)
		}
	}

	// Index nested loops: inner side must be a single base relation with
	// an index on one equi-key column.
	if b.Count() == 1 {
		var innerRel *plan.Rel
		for i := range jo.q.Rels {
			if b.Has(i) {
				innerRel = jo.q.Rels[i]
			}
		}
		for ki, k := range keys {
			if k.rightCol == nil || k.rightCol.Rel != innerRel.Idx {
				continue
			}
			ix := innerRel.Table.IndexOn(k.rightCol.Col)
			if ix == nil {
				continue
			}
			// Residual: everything except this key.
			var resid []plan.Conjunct
			resid = append(resid, residual...)
			for kj, other := range keys {
				if kj != ki {
					resid = append(resid, conjs[other.conjIdx])
				}
			}
			ch.consider(newIndexNLJoin(sql.InnerJoin, outer, innerRel, ix, k.leftE,
				jo.singleConjs[innerRel.Idx], resid, rows, jo.pc, jo.p))
		}
	}
	return ch.done()
}

// tryMergeJoin builds a merge-join candidate if every equi key is a bare
// column reference, or nil otherwise.
func (jo *joinOptimizer) tryMergeJoin(outer, inner Node, keys []equiKey, residual []plan.Conjunct, rows float64) Node {
	leftCols := make([]int, 0, len(keys))
	rightCols := make([]int, 0, len(keys))
	for _, k := range keys {
		lc, lok := k.leftE.(*plan.ColRef)
		rc, rok := k.rightE.(*plan.ColRef)
		if !lok || !rok {
			return nil
		}
		lo, err := outer.Layout().Offset(lc)
		if err != nil {
			return nil
		}
		ro, err := inner.Layout().Offset(rc)
		if err != nil {
			return nil
		}
		leftCols = append(leftCols, lo)
		rightCols = append(rightCols, ro)
	}
	left := ensureSorted(outer, leftCols, jo.p)
	right := ensureSorted(inner, rightCols, jo.p)
	return newMergeJoin(sql.InnerJoin, left, right, leftCols, rightCols, residual, rows, jo.pc, jo.p)
}

// ensureSorted returns the node unchanged when it already streams in the
// required key order (an index scan over the single key column), and
// wraps it in a Sort otherwise.
func ensureSorted(n Node, cols []int, p Params) Node {
	if len(cols) == 1 {
		if is, ok := n.(*IndexScan); ok && is.Index.Col == cols[0] {
			return n // B+-tree range scans deliver ascending key order
		}
	}
	keys := make([]SortKey, len(cols))
	for i, c := range cols {
		keys[i] = SortKey{Col: c}
	}
	return newSort(n, keys, p)
}

// dp runs System-R style dynamic programming over relation subsets. The
// table is a dense slice indexed by the subset mask (n <= dpRelLimit by
// construction), drawn from the pooled scratch buffer.
func (jo *joinOptimizer) dp() (Node, error) {
	n := len(jo.q.Rels)
	full := plan.RelSet(1)<<uint(n) - 1
	tableSize := 1 << uint(n)
	if cap(jo.bestBuf) < tableSize {
		jo.bestBuf = make([]Node, tableSize)
	}
	best := jo.bestBuf[:tableSize]
	for i := range best {
		best[i] = nil
	}

	for i := 0; i < n; i++ {
		best[plan.NewRelSet(i)] = jo.leaves[i]
	}

	for size := 2; size <= n; size++ {
		for s := plan.RelSet(1); s <= full; s++ {
			if s.Count() != size {
				continue
			}
			ch := startChoice(jo.rec)
			connected := false
			// First pass: connected splits only.
			for _, crossOK := range []bool{false, true} {
				if crossOK && connected {
					break
				}
				for sub := (s - 1) & s; sub > 0; sub = (sub - 1) & s {
					rest := s &^ sub
					lp, rp := best[sub], best[rest]
					if lp == nil || rp == nil {
						continue
					}
					if !crossOK && len(jo.newConjuncts(sub, rest)) == 0 {
						continue
					}
					connected = connected || !crossOK
					ch.consider(jo.bestJoin(lp, sub, rp, rest))
				}
			}
			if cheapest := ch.done(); cheapest != nil {
				best[s] = cheapest
			}
		}
	}
	root := best[full]
	if root == nil {
		return nil, fmt.Errorf("optimizer: no plan found for %d relations", n)
	}
	return root, nil
}

// greedy joins the pair with the smallest estimated result until one tree
// remains; used beyond the DP relation limit.
func (jo *joinOptimizer) greedy() (Node, error) {
	type entry struct {
		node Node
		set  plan.RelSet
	}
	var items []entry
	for i := range jo.q.Rels {
		items = append(items, entry{
			node: jo.leaves[i],
			set:  plan.NewRelSet(i),
		})
	}
	for len(items) > 1 {
		ch := startChoice(jo.rec)
		var pairs [][2]int // candidate index -> (i, j) of the joined pair
		for _, connectedOnly := range []bool{true, false} {
			for i := 0; i < len(items); i++ {
				for j := 0; j < len(items); j++ {
					if i == j {
						continue
					}
					if connectedOnly && len(jo.newConjuncts(items[i].set, items[j].set)) == 0 {
						continue
					}
					ch.consider(jo.bestJoin(items[i].node, items[i].set, items[j].node, items[j].set))
					pairs = append(pairs, [2]int{i, j})
				}
			}
			if ch.n > 0 {
				break
			}
		}
		bestNode := ch.done()
		if bestNode == nil {
			return nil, fmt.Errorf("optimizer: greedy join failed")
		}
		bi, bj := pairs[ch.bestIdx][0], pairs[ch.bestIdx][1]
		merged := entry{node: bestNode, set: items[bi].set | items[bj].set}
		var next []entry
		for k, it := range items {
			if k != bi && k != bj {
				next = append(next, it)
			}
		}
		items = append(next, merged)
	}
	return items[0].node, nil
}

// --- fixed join trees (outer joins) ---

// buildFixedTree builds the physical plan for a query whose join shape is
// fixed by outer joins. pushed carries predicates from above that may be
// pushed toward the leaves when semantics allow.
func (jo *joinOptimizer) buildFixedTree(t *plan.JoinTree, pushed []plan.Conjunct) (Node, error) {
	if t.Rel != nil {
		var mine, above []plan.Conjunct
		leafSet := plan.NewRelSet(t.Rel.Idx)
		for _, c := range pushed {
			if c.Rels.SubsetOf(leafSet) {
				mine = append(mine, c)
			} else {
				above = append(above, c)
			}
		}
		node, err := bestAccessPath(t.Rel, mine, jo.pc, jo.p, jo.rec)
		if err != nil {
			return nil, err
		}
		if len(above) > 0 {
			return nil, fmt.Errorf("optimizer: internal error: unpushable conjunct at leaf")
		}
		return node, nil
	}

	leftSet, rightSet := t.Left.Rels(), t.Right.Rels()
	var pushLeft, pushRight, stay []plan.Conjunct

	// ON conjuncts: for INNER joins single-side conjuncts may be pushed;
	// for LEFT joins only right-side (nullable-side) ON conjuncts may be
	// pushed — left-only ON conjuncts decide matching, not filtering.
	for _, c := range t.On {
		switch {
		case c.Rels.SubsetOf(rightSet):
			pushRight = append(pushRight, c)
		case t.Type == sql.InnerJoin && c.Rels.SubsetOf(leftSet):
			pushLeft = append(pushLeft, c)
		default:
			stay = append(stay, c)
		}
	}
	// Pushed predicates from above (WHERE): pushing into the left side is
	// always safe; pushing into the nullable right side of a LEFT join is
	// not.
	var applyHere []plan.Conjunct
	for _, c := range pushed {
		switch {
		case c.Rels.SubsetOf(leftSet):
			pushLeft = append(pushLeft, c)
		case t.Type == sql.InnerJoin && c.Rels.SubsetOf(rightSet):
			pushRight = append(pushRight, c)
		default:
			applyHere = append(applyHere, c)
		}
	}

	left, err := jo.buildFixedTree(t.Left, pushLeft)
	if err != nil {
		return nil, err
	}
	right, err := jo.buildFixedTree(t.Right, pushRight)
	if err != nil {
		return nil, err
	}

	keys, residual := splitEquiKeys(stay, leftSet, rightSet)
	sel := jo.pc.conjSel(stay)
	rows := joinRows(t.Type, left.Rows(), right.Rows(), sel)

	var node Node
	if len(keys) > 0 {
		var lks, rks []plan.Expr
		for _, k := range keys {
			lks = append(lks, k.leftE)
			rks = append(rks, k.rightE)
		}
		// Try both build sides and keep the cheaper (for LEFT joins the
		// reversed build is PostgreSQL's Hash Right Join).
		ch := startChoice(jo.rec)
		ch.consider(newHashJoin(t.Type, left, right, lks, rks, residual, rows, false, jo.pc, jo.p))
		ch.consider(newHashJoin(t.Type, left, right, lks, rks, residual, rows, true, jo.pc, jo.p))
		node = ch.done()
	} else {
		node = newNLJoin(t.Type, left, right, stay, rows, jo.pc, jo.p)
	}
	if len(applyHere) > 0 {
		node = newFilter(node, applyHere, jo.pc, jo.p)
	}
	return node, nil
}

// optimizeFixed plans a query with outer joins: the tree shape is kept,
// WHERE predicates are pushed as deep as semantics allow.
func optimizeFixed(pc *planCtx, p Params, rec *recorder) (Node, error) {
	jo := getJoinOptimizer(pc, p, rec)
	defer jo.release()
	jo.singleConjs = make([][]plan.Conjunct, len(pc.q.Rels))
	root, err := jo.buildFixedTree(pc.q.OuterTree, pc.q.Where)
	if err != nil {
		return nil, err
	}
	return root, nil
}
