package optimizer

import (
	"fmt"
	"strings"

	"dbvirt/internal/plan"
)

// Explain renders the plan tree in a PostgreSQL-like format, with
// estimated cost (in seq-page units) and row counts per node.
// explainBytesPerNode sizes the output builder: a line per node plus its
// detail brackets rarely exceeds this.
const explainBytesPerNode = 96

func countNodes(n Node) int {
	c := 1
	for _, ch := range n.children() {
		c += countNodes(ch)
	}
	return c
}

func (p *Plan) Explain() string {
	var sb strings.Builder
	sb.Grow(explainBytesPerNode*countNodes(p.Root) + 64)
	explainNode(&sb, p.Root, 0)
	if p.Params.TimePerSeqPage > 0 {
		fmt.Fprintf(&sb, "estimated time: %.4fs (time/seq-page %.3gs)\n",
			p.EstimatedSeconds(), p.Params.TimePerSeqPage)
	}
	return sb.String()
}

func explainNode(sb *strings.Builder, n Node, depth int) {
	explainNodeAnnotated(sb, n, depth, nil)
}

// ExplainAnnotated renders the plan tree with extra per-node text from the
// annotate callback — used by EXPLAIN ANALYZE to attach actual row counts.
func (p *Plan) ExplainAnnotated(annotate func(Node) string) string {
	var sb strings.Builder
	sb.Grow(explainBytesPerNode * countNodes(p.Root))
	explainNodeAnnotated(&sb, p.Root, 0, annotate)
	return sb.String()
}

func explainNodeAnnotated(sb *strings.Builder, n Node, depth int, annotate func(Node) string) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(sb, "%s-> %s (cost=%s rows=%.0f)", indent, n.name(), n.Cost(), n.Rows())
	for _, d := range n.detail() {
		fmt.Fprintf(sb, " [%s]", d)
	}
	if annotate != nil {
		if extra := annotate(n); extra != "" {
			fmt.Fprintf(sb, " (%s)", extra)
		}
	}
	sb.WriteByte('\n')
	for _, c := range n.children() {
		explainNodeAnnotated(sb, c, depth+1, annotate)
	}
}

// conjString renders a conjunct list.
func conjString(conjs []plan.Conjunct) string {
	var parts []string
	for _, c := range conjs {
		parts = append(parts, c.E.String())
	}
	return strings.Join(parts, " AND ")
}

// exprList renders an expression list.
func exprList(exprs []plan.Expr) string {
	var parts []string
	for _, e := range exprs {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, ", ")
}

// rangeString renders index scan bounds.
func rangeString(lo, hi *Bound) string {
	switch {
	case lo != nil && hi != nil && lo.Key == hi.Key:
		return fmt.Sprintf(" key=%d", lo.Key)
	case lo != nil && hi != nil:
		return fmt.Sprintf(" key in [%d, %d]", lo.Key, hi.Key)
	case lo != nil:
		return fmt.Sprintf(" key >= %d", lo.Key)
	case hi != nil:
		return fmt.Sprintf(" key <= %d", hi.Key)
	default:
		return ""
	}
}

func join(parts []string, sep string) string { return strings.Join(parts, sep) }
