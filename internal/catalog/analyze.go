package catalog

import (
	"math"
	"sort"

	"dbvirt/internal/storage"
	"dbvirt/internal/types"
)

const (
	histogramBuckets = 50
	maxMCVs          = 10
	// maxSampleKeys bounds per-column memory during Analyze; beyond it,
	// systematic sampling keeps every k-th key.
	maxSampleKeys = 200000
)

// Analyze scans the table and computes optimizer statistics for the table,
// every column, and every index, storing them on the catalog objects. It
// is the engine's ANALYZE command.
func Analyze(pg storage.Pager, t *Table) error {
	nCols := len(t.Schema.Cols)
	type colAcc struct {
		nulls   int64
		keys    []float64 // sort keys of non-null values, in physical order
		width   float64
		stride  int64
		counter int64
	}
	accs := make([]colAcc, nCols)
	for i := range accs {
		accs[i].stride = 1
	}
	var rows int64
	var totalBytes int64

	err := t.Heap.Scan(pg, func(_ storage.TID, tup storage.Tuple) error {
		rows++
		totalBytes += int64(len(storage.EncodeTuple(tup)))
		for i := 0; i < nCols && i < len(tup); i++ {
			a := &accs[i]
			v := tup[i]
			if v.IsNull() {
				a.nulls++
				continue
			}
			if v.Kind == types.KindString {
				a.width += float64(len(v.S))
			} else {
				a.width += 8
			}
			a.counter++
			if a.counter%a.stride != 0 {
				continue
			}
			if k, ok := v.ToSortKey(); ok {
				a.keys = append(a.keys, k)
				if len(a.keys) >= 2*maxSampleKeys {
					// Decimate: keep every other key, double the stride.
					kept := a.keys[:0]
					for j := 0; j < len(a.keys); j += 2 {
						kept = append(kept, a.keys[j])
					}
					a.keys = kept
					a.stride *= 2
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	stats := &TableStats{
		NumRows:  rows,
		NumPages: int64(pg.NumPages(t.Heap.FileID())),
		Cols:     make([]ColumnStats, nCols),
	}
	if rows > 0 {
		stats.AvgTupleBytes = float64(totalBytes) / float64(rows)
	}
	for i := range accs {
		a := &accs[i]
		cs := &stats.Cols[i]
		if rows > 0 {
			cs.NullFrac = float64(a.nulls) / float64(rows)
		}
		nonNull := rows - a.nulls
		if nonNull > 0 {
			cs.AvgWidth = a.width / float64(nonNull)
		}
		buildDistribution(cs, a.keys, nonNull)
	}
	t.Stats = stats

	for _, ix := range t.Indexes {
		if err := analyzeIndex(pg, ix, accs[ix.Col].keys); err != nil {
			return err
		}
	}
	return nil
}

// buildDistribution fills NDistinct, Min/Max, MCVs, and the histogram from
// the sampled sort keys. keys arrive in physical row order; nonNull is the
// true (unsampled) non-null row count.
func buildDistribution(cs *ColumnStats, keys []float64, nonNull int64) {
	if len(keys) == 0 {
		return
	}
	sorted := append([]float64(nil), keys...)
	sort.Float64s(sorted)
	cs.HasRange = true
	cs.Min = sorted[0]
	cs.Max = sorted[len(sorted)-1]

	// Count distinct values and frequencies in one pass over sorted keys.
	type vf struct {
		key   float64
		count int64
	}
	var freqs []vf
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		freqs = append(freqs, vf{key: sorted[i], count: int64(j - i)})
		i = j
	}
	cs.NDistinct = float64(len(freqs))

	// MCVs: values noticeably more frequent than average.
	sort.Slice(freqs, func(i, j int) bool { return freqs[i].count > freqs[j].count })
	avg := float64(len(keys)) / float64(len(freqs))
	sample := float64(len(keys))
	for i := 0; i < len(freqs) && i < maxMCVs; i++ {
		if float64(freqs[i].count) <= 1.25*avg || freqs[i].count < 2 {
			break
		}
		cs.MCVs = append(cs.MCVs, MCV{
			Key:  freqs[i].key,
			Freq: float64(freqs[i].count) / sample * (1 - cs.NullFrac),
		})
	}

	// Histogram over values outside the MCV list (PostgreSQL-style).
	mcvSet := map[float64]bool{}
	for _, m := range cs.MCVs {
		mcvSet[m.Key] = true
	}
	rest := sorted[:0:0]
	for _, k := range sorted {
		if !mcvSet[k] {
			rest = append(rest, k)
		}
	}
	if len(rest) >= 2 {
		b := histogramBuckets
		if b > len(rest)-1 {
			b = len(rest) - 1
		}
		bounds := make([]float64, b+1)
		for i := 0; i <= b; i++ {
			idx := i * (len(rest) - 1) / b
			bounds[i] = rest[idx]
		}
		cs.Histogram = bounds
	}
	_ = nonNull
}

// analyzeIndex computes the index's page statistics and its physical
// correlation: the Pearson correlation between key values in physical heap
// order and the row position, which the optimizer uses to interpolate
// between random and sequential heap access costs for index scans.
func analyzeIndex(pg storage.Pager, ix *Index, keysInPhysicalOrder []float64) error {
	entries, err := ix.Tree.NumEntries(pg)
	if err != nil {
		return err
	}
	height, err := ix.Tree.Height(pg)
	if err != nil {
		return err
	}
	ix.Stats = &IndexStats{
		NumPages:    int64(pg.NumPages(ix.Tree.FileID())),
		Height:      height,
		NumEntries:  entries,
		Correlation: correlation(keysInPhysicalOrder),
	}
	return nil
}

// correlation returns the Pearson correlation between the values and their
// positions 0..n-1.
func correlation(vals []float64) float64 {
	n := float64(len(vals))
	if n < 2 {
		return 1
	}
	var sumX, sumY, sumXY, sumXX, sumYY float64
	for i, v := range vals {
		x := float64(i)
		sumX += x
		sumY += v
		sumXY += x * v
		sumXX += x * x
		sumYY += v * v
	}
	cov := sumXY - sumX*sumY/n
	varX := sumXX - sumX*sumX/n
	varY := sumYY - sumY*sumY/n
	if varX <= 0 || varY <= 0 {
		return 1 // constant sequence: physically perfectly clustered
	}
	r := cov / math.Sqrt(varX*varY)
	switch {
	case r > 1:
		return 1
	case r < -1:
		return -1
	default:
		return r
	}
}
