package catalog

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dbvirt/internal/storage"
	"dbvirt/internal/types"
)

func testSchema() Schema {
	return Schema{Cols: []Column{
		{Name: "id", Kind: types.KindInt},
		{Name: "price", Kind: types.KindFloat},
		{Name: "name", Kind: types.KindString},
		{Name: "shipdate", Kind: types.KindDate},
	}}
}

func TestCreateAndLookupTable(t *testing.T) {
	c := New()
	d := storage.NewDiskManager()
	tbl, err := c.CreateTable(d, "orders", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Table("ORDERS") // case-insensitive
	if err != nil || got != tbl {
		t.Fatalf("Table lookup: %v, %v", got, err)
	}
	if _, err := c.Table("nope"); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := c.CreateTable(d, "Orders", testSchema()); err == nil {
		t.Error("duplicate table should error")
	}
	if _, err := c.CreateTable(d, "empty", Schema{}); err == nil {
		t.Error("empty schema should error")
	}
	dup := Schema{Cols: []Column{{Name: "a", Kind: types.KindInt}, {Name: "A", Kind: types.KindInt}}}
	if _, err := c.CreateTable(d, "dup", dup); err == nil {
		t.Error("duplicate column should error")
	}
}

func TestTablesSorted(t *testing.T) {
	c := New()
	d := storage.NewDiskManager()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.CreateTable(d, n, testSchema()); err != nil {
			t.Fatal(err)
		}
	}
	ts := c.Tables()
	if len(ts) != 3 || ts[0].Name != "alpha" || ts[1].Name != "mid" || ts[2].Name != "zeta" {
		t.Errorf("Tables() order wrong: %v", names(ts))
	}
}

func names(ts []*Table) []string {
	var out []string
	for _, t := range ts {
		out = append(out, t.Name)
	}
	return out
}

func TestSchemaColIndex(t *testing.T) {
	s := testSchema()
	if s.ColIndex("PRICE") != 1 {
		t.Error("case-insensitive lookup failed")
	}
	if s.ColIndex("missing") != -1 {
		t.Error("missing column should be -1")
	}
}

func loadRows(t *testing.T, pg storage.Pager, tbl *Table, n int, rng *rand.Rand) {
	t.Helper()
	for i := 0; i < n; i++ {
		tup := storage.Tuple{
			types.NewInt(int64(i)),
			types.NewFloat(rng.Float64() * 100),
			types.NewString(fmt.Sprintf("name-%d", i%10)),
			types.NewDate(int64(9000 + rng.Intn(1000))),
		}
		if i%17 == 0 {
			tup[1] = types.Null
		}
		if _, err := tbl.Heap.Insert(pg, tup); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCreateIndexAndSearch(t *testing.T) {
	c := New()
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	tbl, _ := c.CreateTable(d, "t", testSchema())
	loadRows(t, pg, tbl, 500, rand.New(rand.NewSource(1)))

	ix, err := c.CreateIndex(d, pg, "t_id", "t", "id")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.IndexOn(0) != ix {
		t.Error("IndexOn(0) should find the index")
	}
	if tbl.IndexOn(1) != nil {
		t.Error("IndexOn(1) should be nil")
	}
	tids, err := ix.Tree.Search(pg, 123)
	if err != nil || len(tids) != 1 {
		t.Fatalf("index search: %v, %v", tids, err)
	}
	tup, err := tbl.Heap.Get(pg, tids[0])
	if err != nil || tup[0].I != 123 {
		t.Fatalf("heap fetch through index: %v, %v", tup, err)
	}

	if _, err := c.CreateIndex(d, pg, "t_id", "t", "id"); err == nil {
		t.Error("duplicate index name should error")
	}
	if _, err := c.CreateIndex(d, pg, "x", "t", "name"); err == nil {
		t.Error("string index should be rejected")
	}
	if _, err := c.CreateIndex(d, pg, "x", "t", "missing"); err == nil {
		t.Error("missing column should error")
	}
	if _, err := c.CreateIndex(d, pg, "x", "nope", "id"); err == nil {
		t.Error("missing table should error")
	}
	if _, err := c.CreateIndex(d, pg, "t_date", "t", "shipdate"); err != nil {
		t.Errorf("date index should be allowed: %v", err)
	}
	if pg.PinnedCount() != 0 {
		t.Errorf("%d pages pinned", pg.PinnedCount())
	}
}

func TestAnalyzeBasicStats(t *testing.T) {
	c := New()
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	tbl, _ := c.CreateTable(d, "t", testSchema())
	const n = 1000
	loadRows(t, pg, tbl, n, rand.New(rand.NewSource(2)))
	if _, err := c.CreateIndex(d, pg, "t_id", "t", "id"); err != nil {
		t.Fatal(err)
	}

	if err := Analyze(pg, tbl); err != nil {
		t.Fatal(err)
	}
	st := tbl.Stats
	if st == nil {
		t.Fatal("stats not set")
	}
	if st.NumRows != n {
		t.Errorf("NumRows = %d, want %d", st.NumRows, n)
	}
	if st.NumPages < 1 {
		t.Error("NumPages should be positive")
	}
	if st.AvgTupleBytes <= 0 {
		t.Error("AvgTupleBytes should be positive")
	}

	id := st.Cols[0]
	if id.NullFrac != 0 {
		t.Errorf("id null frac = %g", id.NullFrac)
	}
	if id.NDistinct != n {
		t.Errorf("id ndistinct = %g, want %d", id.NDistinct, n)
	}
	if !id.HasRange || id.Min != 0 || id.Max != n-1 {
		t.Errorf("id range = [%g, %g]", id.Min, id.Max)
	}
	if len(id.MCVs) != 0 {
		t.Errorf("unique column should have no MCVs, got %d", len(id.MCVs))
	}
	if len(id.Histogram) < 2 {
		t.Error("id should have a histogram")
	}

	price := st.Cols[1]
	wantNullFrac := float64((n+16)/17) / n
	if math.Abs(price.NullFrac-wantNullFrac) > 0.001 {
		t.Errorf("price null frac = %g, want %g", price.NullFrac, wantNullFrac)
	}

	name := st.Cols[2]
	if name.NDistinct != 10 {
		t.Errorf("name ndistinct = %g, want 10", name.NDistinct)
	}
	if len(name.MCVs) == 0 {
		// 10 values each at 10% frequency: all qualify as common.
		t.Log("no MCVs for uniform low-cardinality column (acceptable)")
	}
	if name.AvgWidth < 5 || name.AvgWidth > 10 {
		t.Errorf("name avg width = %g", name.AvgWidth)
	}

	ix := tbl.Indexes[0]
	if ix.Stats == nil {
		t.Fatal("index stats not set")
	}
	if ix.Stats.NumEntries != n {
		t.Errorf("index entries = %d, want %d", ix.Stats.NumEntries, n)
	}
	// id column was loaded in ascending order: perfectly correlated.
	if ix.Stats.Correlation < 0.999 {
		t.Errorf("id correlation = %g, want ~1", ix.Stats.Correlation)
	}
	if pg.PinnedCount() != 0 {
		t.Errorf("%d pages pinned", pg.PinnedCount())
	}
}

func TestAnalyzeEmptyTable(t *testing.T) {
	c := New()
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	tbl, _ := c.CreateTable(d, "t", testSchema())
	if err := Analyze(pg, tbl); err != nil {
		t.Fatal(err)
	}
	if tbl.Stats.NumRows != 0 {
		t.Error("empty table should report 0 rows")
	}
	if tbl.Stats.Cols[0].HasRange {
		t.Error("empty column should have no range")
	}
}

func TestAnalyzeSkewedColumnGetsMCVs(t *testing.T) {
	c := New()
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	tbl, _ := c.CreateTable(d, "t", Schema{Cols: []Column{{Name: "v", Kind: types.KindInt}}})
	// 50% of rows are value 7; the rest unique.
	for i := 0; i < 1000; i++ {
		v := int64(7)
		if i%2 == 0 {
			v = int64(1000 + i)
		}
		tbl.Heap.Insert(pg, storage.Tuple{types.NewInt(v)})
	}
	if err := Analyze(pg, tbl); err != nil {
		t.Fatal(err)
	}
	cs := tbl.Stats.Cols[0]
	if len(cs.MCVs) == 0 {
		t.Fatal("skewed column should have MCVs")
	}
	if cs.MCVs[0].Key != 7 {
		t.Errorf("top MCV = %g, want 7", cs.MCVs[0].Key)
	}
	if math.Abs(cs.MCVs[0].Freq-0.5) > 0.02 {
		t.Errorf("top MCV freq = %g, want ~0.5", cs.MCVs[0].Freq)
	}
}

func TestAnalyzeReverseOrderCorrelation(t *testing.T) {
	c := New()
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	tbl, _ := c.CreateTable(d, "t", Schema{Cols: []Column{{Name: "v", Kind: types.KindInt}}})
	for i := 999; i >= 0; i-- {
		tbl.Heap.Insert(pg, storage.Tuple{types.NewInt(int64(i))})
	}
	if _, err := c.CreateIndex(d, pg, "ix", "t", "v"); err != nil {
		t.Fatal(err)
	}
	if err := Analyze(pg, tbl); err != nil {
		t.Fatal(err)
	}
	if corr := tbl.Indexes[0].Stats.Correlation; corr > -0.999 {
		t.Errorf("reverse-loaded correlation = %g, want ~-1", corr)
	}
}

func TestAnalyzeRandomOrderLowCorrelation(t *testing.T) {
	c := New()
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	tbl, _ := c.CreateTable(d, "t", Schema{Cols: []Column{{Name: "v", Kind: types.KindInt}}})
	rng := rand.New(rand.NewSource(3))
	for _, v := range rng.Perm(2000) {
		tbl.Heap.Insert(pg, storage.Tuple{types.NewInt(int64(v))})
	}
	if _, err := c.CreateIndex(d, pg, "ix", "t", "v"); err != nil {
		t.Fatal(err)
	}
	if err := Analyze(pg, tbl); err != nil {
		t.Fatal(err)
	}
	if corr := math.Abs(tbl.Indexes[0].Stats.Correlation); corr > 0.1 {
		t.Errorf("random-order correlation = %g, want ~0", corr)
	}
}

func TestHistogramIsMonotonic(t *testing.T) {
	c := New()
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	tbl, _ := c.CreateTable(d, "t", Schema{Cols: []Column{{Name: "v", Kind: types.KindFloat}}})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		tbl.Heap.Insert(pg, storage.Tuple{types.NewFloat(rng.NormFloat64())})
	}
	if err := Analyze(pg, tbl); err != nil {
		t.Fatal(err)
	}
	h := tbl.Stats.Cols[0].Histogram
	if len(h) < 10 {
		t.Fatalf("histogram too small: %d bounds", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i] < h[i-1] {
			t.Fatalf("histogram bounds not sorted at %d", i)
		}
	}
	if h[0] != tbl.Stats.Cols[0].Min || h[len(h)-1] != tbl.Stats.Cols[0].Max {
		t.Error("histogram should span [min, max]")
	}
}

func TestCorrelationHelper(t *testing.T) {
	if c := correlation([]float64{1, 2, 3, 4}); c != 1 {
		t.Errorf("ascending correlation = %g", c)
	}
	if c := correlation([]float64{4, 3, 2, 1}); c != -1 {
		t.Errorf("descending correlation = %g", c)
	}
	if c := correlation([]float64{5, 5, 5}); c != 1 {
		t.Errorf("constant correlation = %g (defined as clustered)", c)
	}
	if c := correlation([]float64{1}); c != 1 {
		t.Errorf("single value correlation = %g", c)
	}
}
