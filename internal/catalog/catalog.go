// Package catalog holds the engine's metadata: table schemas, heap and
// index handles, and the per-column statistics (histograms, distinct
// counts, most-common values, index correlation) that the query optimizer
// uses for cardinality estimation, in the style of PostgreSQL's pg_statistic.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dbvirt/internal/index"
	"dbvirt/internal/storage"
	"dbvirt/internal/types"
)

// Column describes one table column.
type Column struct {
	Name string
	Kind types.Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Table is a base relation: schema plus storage handles and statistics.
type Table struct {
	Name    string
	Schema  Schema
	Heap    *storage.HeapFile
	Indexes []*Index
	Stats   *TableStats // nil until Analyze
	// Blocks caches the columnar (zone-mapped) form of heap pages for
	// vectorized scans. Cleared on every catalog invalidation. May be nil
	// on hand-built tables; scans then decode pages without caching.
	Blocks *storage.BlockCache
}

// IndexOn returns the index whose key is the given column, or nil.
func (t *Table) IndexOn(col int) *Index {
	for _, ix := range t.Indexes {
		if ix.Col == col {
			return ix
		}
	}
	return nil
}

// Index is a secondary B+-tree index over one int64-sortable column.
type Index struct {
	Name  string
	Table *Table
	Col   int // column position in the table schema
	Tree  *index.BTree
	Stats *IndexStats // nil until Analyze
}

// TableStats are optimizer statistics for a table.
type TableStats struct {
	NumRows       int64
	NumPages      int64
	AvgTupleBytes float64
	Cols          []ColumnStats
}

// ColumnStats are optimizer statistics for one column. Values are mapped
// to the real line with Value.ToSortKey, mirroring PostgreSQL's
// convert_to_scalar.
type ColumnStats struct {
	NullFrac  float64
	NDistinct float64
	HasRange  bool
	Min, Max  float64
	// Histogram holds B+1 equi-depth bucket bounds over non-MCV values.
	Histogram []float64
	// MCVs are the most common values with their frequency (fraction of
	// all rows), sorted by descending frequency.
	MCVs []MCV
	// AvgWidth is the average encoded width of the column in bytes, used
	// for LIKE cost estimation on strings.
	AvgWidth float64
}

// MCV is one most-common-value entry.
type MCV struct {
	Key  float64
	Freq float64
}

// MCVFreqTotal returns the total frequency captured by the MCV list.
func (c ColumnStats) MCVFreqTotal() float64 {
	var s float64
	for _, m := range c.MCVs {
		s += m.Freq
	}
	return s
}

// IndexStats are optimizer statistics for an index.
type IndexStats struct {
	NumPages    int64
	Height      int
	NumEntries  int64
	Correlation float64 // [-1, 1]: physical order vs key order
}

// Catalog is the set of tables in one database.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	version atomic.Uint64
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Version is a monotonic counter bumped whenever anything a query plan
// depends on changes: table and index DDL, restored tables, refreshed
// statistics, or data modifications. Callers caching bound queries or
// plans key them by this version and rebuild on mismatch.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// Invalidate bumps the catalog version and drops cached columnar blocks,
// whose contents may be stale after data changes. DDL entry points call it
// internally; the engine calls it after ANALYZE and DML.
func (c *Catalog) Invalidate() {
	c.version.Add(1)
	c.mu.RLock()
	for _, t := range c.tables {
		t.Blocks.Clear()
	}
	c.mu.RUnlock()
}

// CreateTable registers a new table backed by a fresh heap file.
func (c *Catalog) CreateTable(disk *storage.DiskManager, name string, schema Schema) (*Table, error) {
	if len(schema.Cols) == 0 {
		return nil, fmt.Errorf("catalog: table %q needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, col := range schema.Cols {
		lower := strings.ToLower(col.Name)
		if seen[lower] {
			return nil, fmt.Errorf("catalog: duplicate column %q in table %q", col.Name, name)
		}
		seen[lower] = true
	}
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &Table{
		Name:   name,
		Schema: schema,
		Heap:   storage.NewHeapFile(disk.CreateFile()),
		Blocks: storage.NewBlockCache(),
	}
	c.tables[key] = t
	c.version.Add(1)
	return t, nil
}

// RestoreTable registers a table whose heap file already exists on disk,
// used when loading a database image.
func (c *Catalog) RestoreTable(name string, schema Schema, heapFID storage.FileID) (*Table, error) {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &Table{Name: name, Schema: schema, Heap: storage.NewHeapFile(heapFID), Blocks: storage.NewBlockCache()}
	c.tables[key] = t
	c.version.Add(1)
	return t, nil
}

// Table returns the named table, or an error.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	return t, nil
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreateIndex builds a B+-tree index over the given column of the table by
// scanning the heap. The column must have an int64-sortable kind (INT or
// DATE).
func (c *Catalog) CreateIndex(disk *storage.DiskManager, pg storage.Pager, name, tableName, colName string) (*Index, error) {
	t, err := c.Table(tableName)
	if err != nil {
		return nil, err
	}
	col := t.Schema.ColIndex(colName)
	if col < 0 {
		return nil, fmt.Errorf("catalog: table %q has no column %q", tableName, colName)
	}
	kind := t.Schema.Cols[col].Kind
	if kind != types.KindInt && kind != types.KindDate {
		return nil, fmt.Errorf("catalog: cannot index %s column %q (only INT and DATE keys)", kind, colName)
	}
	for _, ix := range t.Indexes {
		if strings.EqualFold(ix.Name, name) {
			return nil, fmt.Errorf("catalog: index %q already exists", name)
		}
	}
	tree, err := index.Create(pg, disk.CreateFile())
	if err != nil {
		return nil, err
	}
	err = t.Heap.Scan(pg, func(tid storage.TID, tup storage.Tuple) error {
		v := tup[col]
		if v.IsNull() {
			return nil // NULLs are not indexed
		}
		return tree.Insert(pg, v.I, tid)
	})
	if err != nil {
		return nil, fmt.Errorf("catalog: building index %q: %w", name, err)
	}
	ix := &Index{Name: name, Table: t, Col: col, Tree: tree}
	c.mu.Lock()
	t.Indexes = append(t.Indexes, ix)
	c.mu.Unlock()
	c.version.Add(1)
	return ix, nil
}
