package linalg

import (
	"fmt"
	"math"
	"sort"
)

// This file adds the robust-estimation routines the fault-tolerant
// calibration path needs: an outlier-rejecting iteratively reweighted
// least squares (IRLS) solver for fits whose residuals betray corrupted
// measurements, and a condition-number estimate used to annotate singular
// systems with a diagnosis instead of a bare ErrSingular.

// huberK is the standard Huber tuning constant: residuals beyond huberK
// robust standard deviations are down-weighted, giving 95% efficiency on
// clean Gaussian data while bounding the influence of outliers.
const huberK = 1.345

// RobustLeastSquares solves min_x ||a*x - b|| with Huber-weighted IRLS:
// an ordinary least-squares fit is refined by re-solving with per-row
// weights that shrink as 1/|residual| beyond a robust scale estimate
// (1.4826 * MAD), so a latency spike or corrupted probe pulls the fit far
// less than it pulls plain least squares. On clean data the weights stay
// at 1 and the result equals LeastSquares. iters bounds the reweighting
// rounds; 0 uses a default suitable for the calibration systems.
func RobustLeastSquares(a *Matrix, b []float64, iters int) ([]float64, error) {
	if iters <= 0 {
		iters = 8
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		return nil, err
	}
	w := make([]float64, a.Rows)
	wa := NewMatrix(a.Rows, a.Cols)
	wb := make([]float64, a.Rows)
	for it := 0; it < iters; it++ {
		r := Residual(a, x, b)
		scale := madScale(r)
		if scale <= 0 {
			// Exact (or half-exact) fit: nothing left to down-weight.
			return x, nil
		}
		changed := false
		for i, ri := range r {
			wi := 1.0
			if ar := math.Abs(ri); ar > huberK*scale {
				wi = huberK * scale / ar
			}
			if math.Abs(wi-w[i]) > 1e-12 {
				changed = true
			}
			w[i] = wi
		}
		if !changed && it > 0 {
			return x, nil
		}
		// Weighted normal equations: scale each row (and rhs) by sqrt(w).
		for i := 0; i < a.Rows; i++ {
			s := math.Sqrt(w[i])
			for j := 0; j < a.Cols; j++ {
				wa.Set(i, j, s*a.At(i, j))
			}
			wb[i] = s * b[i]
		}
		next, err := LeastSquares(wa, wb)
		if err != nil {
			// Down-weighting made the system rank-deficient; keep the last
			// good solution rather than failing a fit that exists.
			return x, nil
		}
		x = next
	}
	return x, nil
}

// madScale is the robust scale estimate 1.4826 * median(|r - median(r)|),
// the consistency-corrected median absolute deviation.
func madScale(r []float64) float64 {
	m := median(append([]float64(nil), r...))
	dev := make([]float64, len(r))
	for i, v := range r {
		dev[i] = math.Abs(v - m)
	}
	return 1.4826 * median(dev)
}

// median returns the median of v; v is sorted in place.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return 0.5 * (v[n/2-1] + v[n/2])
}

// Cond1 estimates the 1-norm condition number ||A||₁ · ||A⁻¹||₁ of a
// square matrix by explicit inversion (the matrices diagnosed here are at
// most a few columns wide, so brute force is exact and cheap). A singular
// matrix reports +Inf.
func Cond1(a *Matrix) float64 {
	n := a.Rows
	if a.Cols != n {
		return math.NaN()
	}
	normA := norm1(a)
	// Build A⁻¹ column by column: A · col_j = e_j.
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := Solve(a, e)
		if err != nil {
			return math.Inf(1)
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return normA * norm1(inv)
}

// NormalCond1 estimates the condition number of the normal-equations
// matrix AᵀA of a (possibly rectangular) design matrix — the quantity
// that actually collapses when calibration probes are degenerate. It is
// the diagnostic attached to wrapped ErrSingular failures.
func NormalCond1(a *Matrix) float64 {
	n := a.Cols
	ata := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s float64
			for r := 0; r < a.Rows; r++ {
				s += a.At(r, i) * a.At(r, j)
			}
			ata.Set(i, j, s)
			ata.Set(j, i, s)
		}
	}
	return Cond1(ata)
}

// norm1 is the maximum absolute column sum.
func norm1(a *Matrix) float64 {
	var max float64
	for j := 0; j < a.Cols; j++ {
		var s float64
		for i := 0; i < a.Rows; i++ {
			s += math.Abs(a.At(i, j))
		}
		if s > max {
			max = s
		}
	}
	return max
}

// DescribeSystem renders a compact diagnostic of a linear system — its
// shape and normal-equation conditioning — for error wrapping.
func DescribeSystem(a *Matrix) string {
	return fmt.Sprintf("%dx%d system, cond(AᵀA)≈%.3g", a.Rows, a.Cols, NormalCond1(a))
}
