package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})
	b := []float64{3, -1, 7}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if !approx(x[i], b[i], 1e-12) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], b[i])
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1  ->  x = 2, y = 1
	a := FromRows([][]float64{{2, 1}, {1, -1}})
	x, err := Solve(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 2, 1e-12) || !approx(x[1], 1, 1e-12) {
		t.Errorf("got %v, want [2 1]", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 3, 1e-12) || !approx(x[1], 2, 1e-12) {
		t.Errorf("got %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("expected non-square error")
	}
	sq := FromRows([][]float64{{1, 0}, {0, 1}})
	if _, err := Solve(sq, []float64{1}); err == nil {
		t.Error("expected rhs-length error")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	aCopy := append([]float64(nil), a.Data...)
	bCopy := append([]float64(nil), b...)
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range aCopy {
		if a.Data[i] != aCopy[i] {
			t.Fatal("Solve mutated a")
		}
	}
	for i := range bCopy {
		if b[i] != bCopy[i] {
			t.Fatal("Solve mutated b")
		}
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square, consistent system should reduce to the exact solution.
	a := FromRows([][]float64{{2, 0}, {0, 3}})
	x, err := LeastSquares(a, []float64{4, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 2, 1e-9) || !approx(x[1], 3, 1e-9) {
		t.Errorf("got %v, want [2 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2t + 1 through noisy-free points: exact fit expected.
	ts := []float64{0, 1, 2, 3, 4}
	rows := make([][]float64, len(ts))
	b := make([]float64, len(ts))
	for i, tt := range ts {
		rows[i] = []float64{tt, 1}
		b[i] = 2*tt + 1
	}
	x, err := LeastSquares(FromRows(rows), b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 2, 1e-9) || !approx(x[1], 1, 1e-9) {
		t.Errorf("fit = %v, want [2 1]", x)
	}
}

func TestLeastSquaresMinimizesResidual(t *testing.T) {
	// Inconsistent system: check the solution beats nearby perturbations.
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	b := []float64{1, 1, 0}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	base := Norm2(Residual(a, x, b))
	for _, d := range [][]float64{{0.01, 0}, {-0.01, 0}, {0, 0.01}, {0, -0.01}} {
		y := []float64{x[0] + d[0], x[1] + d[1]}
		if Norm2(Residual(a, y, b)) < base-1e-12 {
			t.Errorf("perturbation %v has smaller residual than LS solution", d)
		}
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}})
	if _, err := LeastSquares(a, []float64{1}); err == nil {
		t.Error("expected under-determined error")
	}
	if _, err := LeastSquares(a, []float64{1, 2}); err == nil {
		t.Error("expected rhs-length error")
	}
}

func TestMulVecAndResidual(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	y := a.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", y)
	}
	r := Residual(a, []float64{1, 1}, []float64{3, 7})
	if Norm2(r) != 0 {
		t.Errorf("residual = %v, want zero", r)
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("Set/At roundtrip failed")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone shares storage")
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {1}})
}

// Property: for random well-conditioned systems, Solve returns x with
// a*x ~= b.
func TestSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 1 + r.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if !approx(got[i], want[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
