// Package linalg provides the small dense linear-algebra routines needed by
// the optimizer-calibration process: solving square systems by Gaussian
// elimination with partial pivoting, and over-determined systems by least
// squares via the normal equations.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a system has no unique solution.
var ErrSingular = errors.New("linalg: matrix is singular or ill-conditioned")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: empty matrix")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: len %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m * x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %d cols vs %d", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Solve solves the square system a*x = b using Gaussian elimination with
// partial pivoting. a and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Solve requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d != %d", len(b), n)
	}
	// Augmented working copy.
	m := a.Clone()
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at or below the diagonal.
		pivot := col
		maxAbs := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[pivot*n+j] = m.Data[pivot*n+j], m.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		// Eliminate below.
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Data[r*n+j] -= f * m.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrSingular
		}
	}
	return x, nil
}

// LeastSquares solves min_x ||a*x - b||_2 for an over-determined system
// (Rows >= Cols) via the normal equations aᵀa x = aᵀb. The calibration
// systems are tiny and well-scaled, so the normal equations are adequate.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: rhs length %d != %d rows", len(b), a.Rows)
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: under-determined system %dx%d", a.Rows, a.Cols)
	}
	n := a.Cols
	ata := NewMatrix(n, n)
	atb := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s float64
			for r := 0; r < a.Rows; r++ {
				s += a.At(r, i) * a.At(r, j)
			}
			ata.Set(i, j, s)
			ata.Set(j, i, s)
		}
		var s float64
		for r := 0; r < a.Rows; r++ {
			s += a.At(r, i) * b[r]
		}
		atb[i] = s
	}
	return Solve(ata, atb)
}

// Residual returns the vector a*x - b.
func Residual(a *Matrix, x, b []float64) []float64 {
	y := a.MulVec(x)
	for i := range y {
		y[i] -= b[i]
	}
	return y
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
