package linalg

import (
	"math"
	"strings"
	"testing"
)

// TestRobustMatchesLSOnCleanData: with no outliers the IRLS weights stay
// at 1 and the robust fit must equal the plain fit.
func TestRobustMatchesLSOnCleanData(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}})
	b := []float64{1.0, 2.0, 3.0, 4.0}
	ls, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	rob, err := RobustLeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ls {
		if math.Abs(ls[i]-rob[i]) > 1e-9 {
			t.Fatalf("clean data: robust %v != LS %v", rob, ls)
		}
	}
}

// TestRobustRejectsOutlier: one wildly corrupted observation should barely
// move the robust fit while badly skewing plain least squares.
func TestRobustRejectsOutlier(t *testing.T) {
	// y = 2x + 1 sampled at x = 1..8, with y[5] corrupted by 50x.
	rows := make([][]float64, 8)
	b := make([]float64, 8)
	for i := range rows {
		x := float64(i + 1)
		rows[i] = []float64{x, 1}
		b[i] = 2*x + 1
	}
	b[5] *= 50
	a := FromRows(rows)
	ls, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	rob, err := RobustLeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	lsErr := math.Abs(ls[0]-2) + math.Abs(ls[1]-1)
	robErr := math.Abs(rob[0]-2) + math.Abs(rob[1]-1)
	if robErr > lsErr/10 {
		t.Fatalf("robust fit %v (err %g) not much better than LS %v (err %g)", rob, robErr, ls, lsErr)
	}
	if robErr > 0.2 {
		t.Fatalf("robust fit %v too far from truth (2, 1)", rob)
	}
}

func TestCond1(t *testing.T) {
	ident := FromRows([][]float64{{1, 0}, {0, 1}})
	if c := Cond1(ident); math.Abs(c-1) > 1e-9 {
		t.Fatalf("cond(I) = %g, want 1", c)
	}
	// Nearly dependent columns: condition number should be large.
	ill := FromRows([][]float64{{1, 1}, {1, 1 + 1e-9}})
	if c := Cond1(ill); c < 1e6 {
		t.Fatalf("cond of near-singular matrix = %g, want large", c)
	}
	sing := FromRows([][]float64{{1, 1}, {1, 1}})
	if c := Cond1(sing); !math.IsInf(c, 1) {
		t.Fatalf("cond of singular matrix = %g, want +Inf", c)
	}
}

func TestDescribeSystem(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}})
	d := DescribeSystem(a)
	if !strings.Contains(d, "3x2") || !strings.Contains(d, "cond") {
		t.Fatalf("DescribeSystem = %q", d)
	}
}

func TestMedianAndMAD(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd = %g", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("median even = %g", m)
	}
	if s := madScale([]float64{1, 1, 1, 1}); s != 0 {
		t.Fatalf("madScale of constants = %g, want 0", s)
	}
}
