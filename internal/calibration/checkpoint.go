package calibration

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"

	"dbvirt/internal/optimizer"
)

// Grid calibration is the longest-running operation in the system — the
// paper's §7 remedy for calibration cost is precisely to amortize one
// expensive lattice sweep across every later tuning problem — so a crash
// or cancellation near the end must not forfeit the finished points. A
// checkpoint is a versioned JSON snapshot of the completed lattice points
// plus a checksum (detecting torn or hand-edited files) and a config
// signature (detecting resumption under a different machine, engine,
// fault, or axis configuration, any of which would change the measured
// values). Files are written to a temp path and renamed into place, so a
// reader never observes a partial write. Because measurements — even
// fault-injected ones — are deterministic functions of the calibration
// config, a resumed run reproduces bit-for-bit the grid an uninterrupted
// run would have produced.

// checkpointVersion is bumped whenever the on-disk format changes.
const checkpointVersion = 1

type checkpointJSON struct {
	Version   int               `json:"version"`
	Checksum  string            `json:"checksum"`
	ConfigSig string            `json:"config_sig"`
	CPUs      []float64         `json:"cpus"`
	Mems      []float64         `json:"mems"`
	IOs       []float64         `json:"ios"`
	Points    []checkpointPoint `json:"points"`
}

// checkpointPoint stores one completed lattice point by dense index (see
// Grid.index). Go marshals float64 with the shortest representation that
// round-trips, so restored parameters are bit-identical to measured ones.
type checkpointPoint struct {
	Idx    int              `json:"idx"`
	Params optimizer.Params `json:"params"`
}

// signature fingerprints everything that determines measured parameter
// values: the machine and engine models, table sizes, seeds, the fault
// configuration (injected faults perturb measurements deterministically),
// the trial count, and the lattice axes. Two runs with equal signatures
// measure identical grids, which is what makes resuming sound.
func (c Config) signature(cpus, mems, ios []float64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "machine=%+v|engine=%+v|narrow=%d|big=%d|rand=%d|seed=%d|faults=%s|trials=%d|cpus=%v|mems=%v|ios=%v",
		c.Machine, c.Engine, c.NarrowRows, c.BigRows, c.RandProbeRows, c.Seed,
		c.Faults.Config().String(), c.trials(), cpus, mems, ios)
	return fmt.Sprintf("%016x", h.Sum64())
}

// checksum hashes the checkpoint's canonical JSON form with the Checksum
// field cleared.
func (ck checkpointJSON) checksum() (string, error) {
	ck.Checksum = ""
	b, err := json.Marshal(ck)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// writeCheckpoint atomically persists the completed lattice points.
func writeCheckpoint(path, sig string, g *Grid, completed []bool) error {
	ck := checkpointJSON{
		Version:   checkpointVersion,
		ConfigSig: sig,
		CPUs:      g.cpus,
		Mems:      g.mems,
		IOs:       g.ios,
	}
	for idx, done := range completed { // index order: deterministic output
		if done {
			ck.Points = append(ck.Points, checkpointPoint{Idx: idx, Params: g.points[idx]})
		}
	}
	sum, err := ck.checksum()
	if err != nil {
		return err
	}
	ck.Checksum = sum
	b, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadCheckpoint restores completed points from path into g, marking them
// in completed, and returns how many points were restored. A missing file
// is not an error (the run simply starts fresh); a corrupt, incompatible,
// or differently-configured checkpoint is.
func loadCheckpoint(path, sig string, g *Grid, completed []bool) (int, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var ck checkpointJSON
	if err := json.Unmarshal(b, &ck); err != nil {
		return 0, fmt.Errorf("decoding checkpoint: %w", err)
	}
	if ck.Version != checkpointVersion {
		return 0, fmt.Errorf("checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	want, err := ck.checksum()
	if err != nil {
		return 0, err
	}
	if ck.Checksum != want {
		return 0, fmt.Errorf("checkpoint checksum mismatch (file corrupt or edited): have %s, want %s", ck.Checksum, want)
	}
	if ck.ConfigSig != sig {
		return 0, fmt.Errorf("checkpoint was taken under a different calibration config or axes (signature %s, this run %s)", ck.ConfigSig, sig)
	}
	if !equalAxis(ck.CPUs, g.cpus) || !equalAxis(ck.Mems, g.mems) || !equalAxis(ck.IOs, g.ios) {
		return 0, fmt.Errorf("checkpoint axes do not match this run")
	}
	count := 0
	for _, pt := range ck.Points {
		if pt.Idx < 0 || pt.Idx >= len(g.points) {
			return 0, fmt.Errorf("checkpoint point index %d out of range", pt.Idx)
		}
		p := pt.Params
		if err := p.Validate(); err != nil {
			return 0, fmt.Errorf("checkpoint point %d: %w", pt.Idx, err)
		}
		if !completed[pt.Idx] {
			completed[pt.Idx] = true
			count++
		}
		g.points[pt.Idx] = p
	}
	return count, nil
}

// LoadCheckpointGrid reads a grid-calibration checkpoint written by
// CalibrateGridOpts and returns the complete Grid it describes, for
// serving: the daemon's /v1/calibration/grid endpoint answers lookups and
// interpolations straight from a checkpoint without re-running any
// calibration. The version and checksum are verified (a torn or edited
// file is rejected), but — unlike resumption — no config signature is
// required: serving only reads the measured values, so there is no risk
// of mixing measurements from incompatible configurations. Every lattice
// point must be present; a checkpoint from an interrupted run is an error
// naming how many points are missing.
func LoadCheckpointGrid(path string) (*Grid, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck checkpointJSON
	if err := json.Unmarshal(b, &ck); err != nil {
		return nil, fmt.Errorf("calibration: decoding checkpoint: %w", err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("calibration: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	want, err := ck.checksum()
	if err != nil {
		return nil, err
	}
	if ck.Checksum != want {
		return nil, fmt.Errorf("calibration: checkpoint checksum mismatch (file corrupt or edited): have %s, want %s", ck.Checksum, want)
	}
	if len(ck.CPUs) == 0 || len(ck.Mems) == 0 || len(ck.IOs) == 0 {
		return nil, fmt.Errorf("calibration: checkpoint has empty axes")
	}
	g := newGrid(ck.CPUs, ck.Mems, ck.IOs)
	have := 0
	seen := make([]bool, len(g.points))
	for _, pt := range ck.Points {
		if pt.Idx < 0 || pt.Idx >= len(g.points) {
			return nil, fmt.Errorf("calibration: checkpoint point index %d out of range", pt.Idx)
		}
		if err := pt.Params.Validate(); err != nil {
			return nil, fmt.Errorf("calibration: checkpoint point %d: %w", pt.Idx, err)
		}
		if !seen[pt.Idx] {
			seen[pt.Idx] = true
			have++
		}
		g.points[pt.Idx] = pt.Params
	}
	if have != len(g.points) {
		return nil, fmt.Errorf("calibration: checkpoint is incomplete: %d of %d lattice points (resume the calibration before serving it)",
			have, len(g.points))
	}
	return g, nil
}

func equalAxis(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
