package calibration

import (
	"fmt"
	"sort"

	"dbvirt/internal/optimizer"
	"dbvirt/internal/vm"
)

// Grid holds calibrated parameters on a lattice of resource allocations
// and interpolates between them. Grid calibration plus interpolation is
// the paper's proposed way to keep the number of calibration experiments
// manageable (Section 7): calibrate a coarse lattice offline, answer any
// allocation online.
type Grid struct {
	cpus, mems, ios []float64
	points          map[[3]int]optimizer.Params
}

// CalibrateGrid measures every lattice point (the cross product of the
// three axes) and returns the grid. Axis values must be valid shares.
func (c *Calibrator) CalibrateGrid(cpus, mems, ios []float64) (*Grid, error) {
	for _, axis := range [][]float64{cpus, mems, ios} {
		if len(axis) == 0 {
			return nil, fmt.Errorf("calibration: empty grid axis")
		}
		if !sort.Float64sAreSorted(axis) {
			return nil, fmt.Errorf("calibration: grid axis must be sorted")
		}
	}
	g := &Grid{
		cpus:   append([]float64(nil), cpus...),
		mems:   append([]float64(nil), mems...),
		ios:    append([]float64(nil), ios...),
		points: make(map[[3]int]optimizer.Params),
	}
	for ic, cpu := range cpus {
		for im, mem := range mems {
			for ii, io := range ios {
				p, err := c.Calibrate(vm.Shares{CPU: cpu, Memory: mem, IO: io})
				if err != nil {
					return nil, fmt.Errorf("calibration: grid point (%g,%g,%g): %w", cpu, mem, io, err)
				}
				g.points[[3]int{ic, im, ii}] = p
			}
		}
	}
	return g, nil
}

// Lookup returns the parameters at an exact lattice point.
func (g *Grid) Lookup(shares vm.Shares) (optimizer.Params, bool) {
	ic, okC := indexOf(g.cpus, shares.CPU)
	im, okM := indexOf(g.mems, shares.Memory)
	ii, okI := indexOf(g.ios, shares.IO)
	if !okC || !okM || !okI {
		return optimizer.Params{}, false
	}
	p, ok := g.points[[3]int{ic, im, ii}]
	return p, ok
}

func indexOf(axis []float64, v float64) (int, bool) {
	for i, a := range axis {
		if approxEq(a, v) {
			return i, true
		}
	}
	return 0, false
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// Interpolate returns parameters for an arbitrary allocation by trilinear
// interpolation over the lattice (clamped to the lattice's bounding box).
func (g *Grid) Interpolate(shares vm.Shares) optimizer.Params {
	c0, c1, cf := bracket(g.cpus, shares.CPU)
	m0, m1, mf := bracket(g.mems, shares.Memory)
	i0, i1, fi := bracket(g.ios, shares.IO)

	get := func(ic, im, ii int) optimizer.Params { return g.points[[3]int{ic, im, ii}] }
	// Interpolate along I/O, then memory, then CPU.
	lerpIO := func(ic, im int) optimizer.Params {
		return lerpParams(get(ic, im, i0), get(ic, im, i1), fi)
	}
	lerpMem := func(ic int) optimizer.Params {
		return lerpParams(lerpIO(ic, m0), lerpIO(ic, m1), mf)
	}
	return lerpParams(lerpMem(c0), lerpMem(c1), cf)
}

// bracket finds the axis cell containing v and the interpolation fraction.
func bracket(axis []float64, v float64) (lo, hi int, frac float64) {
	if v <= axis[0] {
		return 0, 0, 0
	}
	last := len(axis) - 1
	if v >= axis[last] {
		return last, last, 0
	}
	for i := 0; i < last; i++ {
		if v >= axis[i] && v <= axis[i+1] {
			span := axis[i+1] - axis[i]
			if span <= 0 {
				return i, i, 0
			}
			return i, i + 1, (v - axis[i]) / span
		}
	}
	return last, last, 0
}

// lerpParams interpolates every continuous parameter field; integer-like
// fields (cache pages, work_mem) interpolate linearly and round.
func lerpParams(a, b optimizer.Params, f float64) optimizer.Params {
	l := func(x, y float64) float64 { return x + (y-x)*f }
	return optimizer.Params{
		SeqPageCost:             l(a.SeqPageCost, b.SeqPageCost),
		RandomPageCost:          l(a.RandomPageCost, b.RandomPageCost),
		CPUTupleCost:            l(a.CPUTupleCost, b.CPUTupleCost),
		CPUIndexTupleCost:       l(a.CPUIndexTupleCost, b.CPUIndexTupleCost),
		CPUOperatorCost:         l(a.CPUOperatorCost, b.CPUOperatorCost),
		EffectiveCacheSizePages: int64(l(float64(a.EffectiveCacheSizePages), float64(b.EffectiveCacheSizePages)) + 0.5),
		WorkMemBytes:            int64(l(float64(a.WorkMemBytes), float64(b.WorkMemBytes)) + 0.5),
		TimePerSeqPage:          l(a.TimePerSeqPage, b.TimePerSeqPage),
	}
}
