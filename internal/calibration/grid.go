package calibration

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dbvirt/internal/optimizer"
	"dbvirt/internal/vm"
)

// Grid holds calibrated parameters on a lattice of resource allocations
// and interpolates between them. Grid calibration plus interpolation is
// the paper's proposed way to keep the number of calibration experiments
// manageable (Section 7): calibrate a coarse lattice offline, answer any
// allocation online. Points are stored in a dense slice (CPU-major,
// memory, then I/O) and axes are searched with binary search, so lookups
// are O(log axis) with no per-point map overhead. A populated Grid is
// immutable and safe for concurrent use.
type Grid struct {
	cpus, mems, ios []float64
	points          []optimizer.Params // dense; see Grid.index
}

// index flattens lattice coordinates into the dense points slice.
func (g *Grid) index(ic, im, ii int) int {
	return (ic*len(g.mems)+im)*len(g.ios) + ii
}

// newGrid allocates an empty grid over copies of the given axes.
func newGrid(cpus, mems, ios []float64) *Grid {
	g := &Grid{
		cpus: append([]float64(nil), cpus...),
		mems: append([]float64(nil), mems...),
		ios:  append([]float64(nil), ios...),
	}
	g.points = make([]optimizer.Params, len(g.cpus)*len(g.mems)*len(g.ios))
	return g
}

// latticeShares returns the allocation at lattice coordinates (ic, im, ii).
func (g *Grid) latticeShares(ic, im, ii int) vm.Shares {
	return vm.Shares{CPU: g.cpus[ic], Memory: g.mems[im], IO: g.ios[ii]}
}

// CalibrateGrid measures every lattice point (the cross product of the
// three axes) and returns the grid. Axis values must be valid shares.
//
// Lattice points are distributed over a bounded worker pool sized by
// Config.Parallelism. Every worker owns a private Calibrator — its own
// synthetic database, machines, and VMs — so no simulated clock is ever
// shared between goroutines; because the calibration database is built
// deterministically from the seeded Config and each measurement runs on a
// fresh machine, every worker measures bit-for-bit the same parameters a
// serial run would, and workers write into pre-indexed lattice slots, so
// the resulting grid is byte-identical regardless of scheduling. All
// measured points are also handed back to this calibrator's cache.
func (c *Calibrator) CalibrateGrid(cpus, mems, ios []float64) (*Grid, error) {
	for _, axis := range [][]float64{cpus, mems, ios} {
		if len(axis) == 0 {
			return nil, fmt.Errorf("calibration: empty grid axis")
		}
		if !sort.Float64sAreSorted(axis) {
			return nil, fmt.Errorf("calibration: grid axis must be sorted")
		}
	}
	g := newGrid(cpus, mems, ios)
	n := len(g.points)
	workers := c.cfg.workers()
	if workers > n {
		workers = n
	}
	sp := c.cfg.Obs.Span("calibrate.grid")
	sp.SetArg("points", n)
	sp.SetArg("workers", workers)
	defer sp.End()

	// Per-worker calibrators: worker 0 reuses this calibrator (and its
	// warm cache); extra workers get fresh instances built from the same
	// deterministic config.
	cals := make([]*Calibrator, workers)
	for w := range cals {
		if w == 0 {
			cals[w] = c
		} else {
			cals[w] = New(c.cfg)
		}
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	var next atomic.Int64
	work := func(w int) {
		cal := cals[w]
		for {
			idx := int(next.Add(1)) - 1
			if idx >= n {
				return
			}
			ii := idx % len(g.ios)
			im := (idx / len(g.ios)) % len(g.mems)
			ic := idx / (len(g.ios) * len(g.mems))
			p, err := cal.Calibrate(g.latticeShares(ic, im, ii))
			if err != nil {
				errs[idx] = err
				continue
			}
			g.points[idx] = p
		}
	}
	if workers <= 1 {
		work(0)
	} else {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				work(w)
			}(w)
		}
		wg.Wait()
	}

	for idx, err := range errs { // first failing lattice point, in order
		if err != nil {
			ii := idx % len(g.ios)
			im := (idx / len(g.ios)) % len(g.mems)
			ic := idx / (len(g.ios) * len(g.mems))
			sh := g.latticeShares(ic, im, ii)
			return nil, fmt.Errorf("calibration: grid point (%g,%g,%g): %w", sh.CPU, sh.Memory, sh.IO, err)
		}
	}

	// Hand every point back to the shared calibrator's cache so later
	// direct Calibrate calls hit instead of re-measuring.
	for ic := range g.cpus {
		for im := range g.mems {
			for ii := range g.ios {
				c.prime(g.latticeShares(ic, im, ii), g.points[g.index(ic, im, ii)])
			}
		}
	}
	c.cfg.Obs.Info("grid calibrated", "points", n, "workers", workers,
		"cpu_axis", len(g.cpus), "mem_axis", len(g.mems), "io_axis", len(g.ios))
	return g, nil
}

// Lookup returns the parameters at an exact lattice point.
func (g *Grid) Lookup(shares vm.Shares) (optimizer.Params, bool) {
	ic, okC := indexOf(g.cpus, shares.CPU)
	im, okM := indexOf(g.mems, shares.Memory)
	ii, okI := indexOf(g.ios, shares.IO)
	if !okC || !okM || !okI {
		return optimizer.Params{}, false
	}
	return g.points[g.index(ic, im, ii)], true
}

// indexOf finds v on a sorted axis by binary search, within the usual
// floating-point tolerance.
func indexOf(axis []float64, v float64) (int, bool) {
	i := sort.SearchFloat64s(axis, v-1e-9)
	if i < len(axis) && approxEq(axis[i], v) {
		return i, true
	}
	return 0, false
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// Interpolate returns parameters for an arbitrary allocation by trilinear
// interpolation over the lattice (clamped to the lattice's bounding box).
func (g *Grid) Interpolate(shares vm.Shares) optimizer.Params {
	c0, c1, cf := bracket(g.cpus, shares.CPU)
	m0, m1, mf := bracket(g.mems, shares.Memory)
	i0, i1, fi := bracket(g.ios, shares.IO)

	get := func(ic, im, ii int) optimizer.Params { return g.points[g.index(ic, im, ii)] }
	// Interpolate along I/O, then memory, then CPU.
	lerpIO := func(ic, im int) optimizer.Params {
		return lerpParams(get(ic, im, i0), get(ic, im, i1), fi)
	}
	lerpMem := func(ic int) optimizer.Params {
		return lerpParams(lerpIO(ic, m0), lerpIO(ic, m1), mf)
	}
	return lerpParams(lerpMem(c0), lerpMem(c1), cf)
}

// bracket finds the axis cell containing v and the interpolation fraction
// by binary search on the sorted axis.
func bracket(axis []float64, v float64) (lo, hi int, frac float64) {
	last := len(axis) - 1
	if v <= axis[0] {
		return 0, 0, 0
	}
	if v >= axis[last] {
		return last, last, 0
	}
	// First index with axis[hi] >= v; v is strictly inside the axis range,
	// so 1 <= hi <= last.
	hi = sort.SearchFloat64s(axis, v)
	lo = hi - 1
	span := axis[hi] - axis[lo]
	if span <= 0 {
		return lo, lo, 0
	}
	return lo, hi, (v - axis[lo]) / span
}

// lerpParams interpolates every continuous parameter field; integer-like
// fields (cache pages, work_mem) interpolate linearly and round.
func lerpParams(a, b optimizer.Params, f float64) optimizer.Params {
	l := func(x, y float64) float64 { return x + (y-x)*f }
	return optimizer.Params{
		SeqPageCost:             l(a.SeqPageCost, b.SeqPageCost),
		RandomPageCost:          l(a.RandomPageCost, b.RandomPageCost),
		CPUTupleCost:            l(a.CPUTupleCost, b.CPUTupleCost),
		CPUIndexTupleCost:       l(a.CPUIndexTupleCost, b.CPUIndexTupleCost),
		CPUOperatorCost:         l(a.CPUOperatorCost, b.CPUOperatorCost),
		EffectiveCacheSizePages: int64(l(float64(a.EffectiveCacheSizePages), float64(b.EffectiveCacheSizePages)) + 0.5),
		WorkMemBytes:            int64(l(float64(a.WorkMemBytes), float64(b.WorkMemBytes)) + 0.5),
		TimePerSeqPage:          l(a.TimePerSeqPage, b.TimePerSeqPage),
	}
}
