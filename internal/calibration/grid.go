package calibration

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dbvirt/internal/obs"
	"dbvirt/internal/optimizer"
	"dbvirt/internal/vm"
)

// Grid holds calibrated parameters on a lattice of resource allocations
// and interpolates between them. Grid calibration plus interpolation is
// the paper's proposed way to keep the number of calibration experiments
// manageable (Section 7): calibrate a coarse lattice offline, answer any
// allocation online. Points are stored in a dense slice (CPU-major,
// memory, then I/O) and axes are searched with binary search, so lookups
// are O(log axis) with no per-point map overhead. A populated Grid is
// immutable and safe for concurrent use.
type Grid struct {
	cpus, mems, ios []float64
	points          []optimizer.Params // dense; see Grid.index
}

// index flattens lattice coordinates into the dense points slice.
func (g *Grid) index(ic, im, ii int) int {
	return (ic*len(g.mems)+im)*len(g.ios) + ii
}

// coords is the inverse of index.
func (g *Grid) coords(idx int) (ic, im, ii int) {
	ii = idx % len(g.ios)
	im = (idx / len(g.ios)) % len(g.mems)
	ic = idx / (len(g.ios) * len(g.mems))
	return
}

// newGrid allocates an empty grid over copies of the given axes.
func newGrid(cpus, mems, ios []float64) *Grid {
	g := &Grid{
		cpus: append([]float64(nil), cpus...),
		mems: append([]float64(nil), mems...),
		ios:  append([]float64(nil), ios...),
	}
	g.points = make([]optimizer.Params, len(g.cpus)*len(g.mems)*len(g.ios))
	return g
}

// latticeShares returns the allocation at lattice coordinates (ic, im, ii).
func (g *Grid) latticeShares(ic, im, ii int) vm.Shares {
	return vm.Shares{CPU: g.cpus[ic], Memory: g.mems[im], IO: g.ios[ii]}
}

// NewGrid builds a grid directly from axes and pre-computed parameter
// points, without running calibration experiments. Points are given in
// the grid's dense order — CPU-major, then memory, then I/O, matching
// Allocations — and their length must be the product of the axis
// lengths. Axes must be non-empty and sorted ascending, and every
// parameter vector must validate. Synthetic grids built this way drive
// deterministic what-if benchmarks and tests that must not depend on
// calibration measurements.
func NewGrid(cpus, mems, ios []float64, points []optimizer.Params) (*Grid, error) {
	for _, axis := range [][]float64{cpus, mems, ios} {
		if len(axis) == 0 {
			return nil, fmt.Errorf("calibration: empty grid axis")
		}
		if !sort.Float64sAreSorted(axis) {
			return nil, fmt.Errorf("calibration: grid axis must be sorted")
		}
	}
	g := newGrid(cpus, mems, ios)
	if len(points) != len(g.points) {
		return nil, fmt.Errorf("calibration: grid wants %d points (%d cpu x %d mem x %d io), got %d",
			len(g.points), len(cpus), len(mems), len(ios), len(points))
	}
	for idx, p := range points {
		if err := p.Validate(); err != nil {
			ic, im, ii := g.coords(idx)
			sh := g.latticeShares(ic, im, ii)
			return nil, fmt.Errorf("calibration: grid point (%g,%g,%g): %w", sh.CPU, sh.Memory, sh.IO, err)
		}
	}
	copy(g.points, points)
	return g, nil
}

// Allocations returns every lattice point's allocation in the grid's
// dense order (CPU-major, then memory, then I/O) — the order NewGrid
// expects its points in. The slice is freshly allocated.
func (g *Grid) Allocations() []vm.Shares {
	out := make([]vm.Shares, 0, len(g.points))
	for ic := range g.cpus {
		for im := range g.mems {
			for ii := range g.ios {
				out = append(out, g.latticeShares(ic, im, ii))
			}
		}
	}
	return out
}

// GridOptions controls fault tolerance and persistence of a grid
// calibration run; the zero value matches plain CalibrateGrid.
type GridOptions struct {
	// CheckpointPath, when non-empty, persists completed lattice points to
	// a versioned, checksummed JSON file (written atomically via rename)
	// as the calibration progresses, so a crashed or cancelled run can be
	// resumed without repeating finished measurements.
	CheckpointPath string
	// Resume loads CheckpointPath (if it exists) before measuring and
	// skips every lattice point it restores. The checkpoint must match
	// this run's axes and calibration config, or resumption fails rather
	// than silently mixing incompatible measurements.
	Resume bool
	// CheckpointEvery writes the checkpoint after every n completed
	// points; 0 means after every point.
	CheckpointEvery int
	// MaxBadPointFrac is the largest fraction of lattice points allowed to
	// fail measurement before the whole grid run is abandoned; failed
	// points under the limit are filled from their neighbors. 0 means 0.5.
	MaxBadPointFrac float64
}

func (o GridOptions) every() int {
	if o.CheckpointEvery <= 0 {
		return 1
	}
	return o.CheckpointEvery
}

func (o GridOptions) maxBadFrac() float64 {
	if o.MaxBadPointFrac <= 0 {
		return 0.5
	}
	return o.MaxBadPointFrac
}

// CalibrateGrid measures every lattice point (the cross product of the
// three axes) and returns the grid. Axis values must be valid shares. It
// is CalibrateGridOpts with default options (no checkpointing).
func (c *Calibrator) CalibrateGrid(ctx context.Context, cpus, mems, ios []float64) (*Grid, error) {
	return c.CalibrateGridOpts(ctx, cpus, mems, ios, GridOptions{})
}

// CalibrateGridOpts measures every lattice point, with checkpoint/resume
// and bad-point recovery per opts.
//
// Lattice points are distributed over a bounded worker pool sized by
// Config.Parallelism. Every worker owns a private Calibrator — its own
// synthetic database, machines, and VMs — so no simulated clock is ever
// shared between goroutines; because the calibration database is built
// deterministically from the seeded Config and each measurement runs on a
// fresh machine, every worker measures bit-for-bit the same parameters a
// serial run would, and workers write into pre-indexed lattice slots, so
// the resulting grid is byte-identical regardless of scheduling. All
// measured points are also handed back to this calibrator's cache.
//
// Failure handling distinguishes two classes. A fatal error — the context
// being cancelled, or a worker failing to build its calibration database —
// cancels all workers promptly (dispatch stops and in-flight measurements
// abort at the next probe boundary) and fails the run. A per-point
// measurement error is degradable: the point is marked bad, the run
// continues, and bad points are afterwards filled with the average of
// their good lattice neighbors — unless more than opts.MaxBadPointFrac of
// the lattice failed, which fails the run with the first bad point's
// error.
func (c *Calibrator) CalibrateGridOpts(ctx context.Context, cpus, mems, ios []float64, opts GridOptions) (*Grid, error) {
	if c.envErr != nil {
		return nil, c.envErr
	}
	for _, axis := range [][]float64{cpus, mems, ios} {
		if len(axis) == 0 {
			return nil, fmt.Errorf("calibration: empty grid axis")
		}
		if !sort.Float64sAreSorted(axis) {
			return nil, fmt.Errorf("calibration: grid axis must be sorted")
		}
	}
	g := newGrid(cpus, mems, ios)
	n := len(g.points)
	completed := make([]bool, n)
	sig := c.cfg.signature(g.cpus, g.mems, g.ios)
	resumed := 0
	if opts.Resume && opts.CheckpointPath != "" {
		var err error
		resumed, err = loadCheckpoint(opts.CheckpointPath, sig, g, completed)
		if err != nil {
			return nil, fmt.Errorf("calibration: resuming from %s: %w", opts.CheckpointPath, err)
		}
		if resumed > 0 {
			mCalCkptResume.Add(int64(resumed))
			c.cfg.Obs.Info("grid calibration resumed",
				"checkpoint", opts.CheckpointPath, "restored_points", resumed, "total_points", n)
		}
	}
	workers := c.cfg.workers()
	if workers > n {
		workers = n
	}
	sp := c.cfg.Obs.Span("calibrate.grid")
	sp.SetArg("points", n)
	sp.SetArg("workers", workers)
	sp.SetArg("resumed", resumed)
	defer sp.End()

	// Per-worker calibrators: worker 0 reuses this calibrator (and its
	// warm cache); extra workers get fresh instances built from the same
	// deterministic config.
	cals := make([]*Calibrator, workers)
	for w := range cals {
		if w == 0 {
			cals[w] = c
		} else {
			cals[w] = New(c.cfg)
		}
	}

	// Fatal errors (context cancellation, database build failures) cancel
	// the derived context so every worker stops dispatching immediately
	// and in-flight measurements abort at their next probe boundary.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var fatalMu sync.Mutex
	var fatal error
	setFatal := func(err error) {
		fatalMu.Lock()
		if fatal == nil {
			fatal = err
		}
		fatalMu.Unlock()
		cancel()
	}

	// ckptMu orders completed[] updates and checkpoint writes; holding it
	// while writing also publishes the g.points entries the written file
	// references.
	var ckptMu sync.Mutex
	pending := 0

	errs := make([]error, n)
	var wg sync.WaitGroup
	var next atomic.Int64
	work := func(w int) {
		cal := cals[w]
		if err := cal.buildDB(); err != nil {
			setFatal(fmt.Errorf("calibration: building calibration database: %w", err))
			return
		}
		for {
			if ctx.Err() != nil {
				return
			}
			idx := int(next.Add(1)) - 1
			if idx >= n {
				return
			}
			if completed[idx] { // restored from a checkpoint
				continue
			}
			ic, im, ii := g.coords(idx)
			sh := g.latticeShares(ic, im, ii)
			p, err := cal.Calibrate(ctx, sh)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				// Degradable: mark the lattice point bad and move on; it is
				// filled from its neighbors after the sweep.
				errs[idx] = err
				mCalBadPoint.Inc()
				c.cfg.Obs.Warn("grid point measurement failed",
					"cpu", sh.CPU, "mem", sh.Memory, "io", sh.IO, "err", err.Error())
				continue
			}
			g.points[idx] = p
			ckptMu.Lock()
			completed[idx] = true
			if opts.CheckpointPath != "" {
				pending++
				if pending >= opts.every() {
					if werr := writeCheckpoint(opts.CheckpointPath, sig, g, completed); werr != nil {
						c.cfg.Obs.Warn("checkpoint write failed",
							"path", opts.CheckpointPath, "err", werr.Error())
					} else {
						mCalCkptWrite.Inc()
					}
					pending = 0
				}
			}
			ckptMu.Unlock()
		}
	}
	if workers <= 1 {
		work(0)
	} else {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				work(w)
			}(w)
		}
		wg.Wait()
	}

	if fatal != nil {
		return nil, fatal
	}
	if err := ctx.Err(); err != nil {
		// The derived context is only ever cancelled by setFatal (handled
		// above) or by the caller's context.
		return nil, err
	}

	var bad []int
	for idx := range errs {
		if errs[idx] != nil {
			bad = append(bad, idx)
		}
	}
	if len(bad) > 0 {
		// A fill needs at least one good point; an entirely-bad lattice is
		// unfixable no matter what fraction the caller tolerates.
		frac := float64(len(bad)) / float64(n)
		if len(bad) == n || frac > opts.maxBadFrac() {
			ic, im, ii := g.coords(bad[0])
			sh := g.latticeShares(ic, im, ii)
			return nil, fmt.Errorf("calibration: %d of %d grid points failed (above the %.0f%% limit); first failure at (%g,%g,%g): %w",
				len(bad), n, opts.maxBadFrac()*100, sh.CPU, sh.Memory, sh.IO, errs[bad[0]])
		}
		g.fillBadPoints(bad, errs, c.cfg.Obs)
	}

	// Flush a final checkpoint so the file reflects every completed point.
	if opts.CheckpointPath != "" && pending > 0 {
		if werr := writeCheckpoint(opts.CheckpointPath, sig, g, completed); werr != nil {
			c.cfg.Obs.Warn("checkpoint write failed", "path", opts.CheckpointPath, "err", werr.Error())
		} else {
			mCalCkptWrite.Inc()
		}
	}

	// Hand every point back to the shared calibrator's cache so later
	// direct Calibrate calls hit instead of re-measuring.
	for ic := range g.cpus {
		for im := range g.mems {
			for ii := range g.ios {
				c.prime(g.latticeShares(ic, im, ii), g.points[g.index(ic, im, ii)])
			}
		}
	}
	c.cfg.Obs.Info("grid calibrated", "points", n, "workers", workers,
		"cpu_axis", len(g.cpus), "mem_axis", len(g.mems), "io_axis", len(g.ios),
		"resumed", resumed, "bad_points", len(bad))
	return g, nil
}

// fillBadPoints replaces lattice points whose measurement failed with the
// component-wise average of their good orthogonal neighbors, falling back
// to the nearest good point by lattice Manhattan distance (smallest index
// wins ties). Fills always read the original good mask — never other
// fills — so the result is independent of fill order.
func (g *Grid) fillBadPoints(bad []int, errs []error, tel *obs.Telemetry) {
	nc, nm, ni := len(g.cpus), len(g.mems), len(g.ios)
	good := func(idx int) bool { return errs[idx] == nil }
	for _, idx := range bad {
		ic, im, ii := g.coords(idx)
		var neigh []optimizer.Params
		for _, d := range [][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}} {
			jc, jm, ji := ic+d[0], im+d[1], ii+d[2]
			if jc < 0 || jc >= nc || jm < 0 || jm >= nm || ji < 0 || ji >= ni {
				continue
			}
			if j := g.index(jc, jm, ji); good(j) {
				neigh = append(neigh, g.points[j])
			}
		}
		if len(neigh) == 0 {
			best, bestD := -1, int(^uint(0)>>1)
			for j := range g.points {
				if !good(j) {
					continue
				}
				jc, jm, ji := g.coords(j)
				d := absInt(jc-ic) + absInt(jm-im) + absInt(ji-ii)
				if d < bestD {
					best, bestD = j, d
				}
			}
			neigh = append(neigh, g.points[best])
		}
		g.points[idx] = avgParams(neigh)
		sh := g.latticeShares(ic, im, ii)
		tel.Warn("grid point filled from neighbors",
			"cpu", sh.CPU, "mem", sh.Memory, "io", sh.IO, "neighbors", len(neigh))
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// avgParams is the component-wise mean of a set of parameter vectors.
func avgParams(ps []optimizer.Params) optimizer.Params {
	inv := 1 / float64(len(ps))
	var out optimizer.Params
	var cache, workMem float64
	for _, p := range ps {
		out.SeqPageCost += p.SeqPageCost * inv
		out.RandomPageCost += p.RandomPageCost * inv
		out.CPUTupleCost += p.CPUTupleCost * inv
		out.CPUIndexTupleCost += p.CPUIndexTupleCost * inv
		out.CPUOperatorCost += p.CPUOperatorCost * inv
		cache += float64(p.EffectiveCacheSizePages) * inv
		workMem += float64(p.WorkMemBytes) * inv
		out.TimePerSeqPage += p.TimePerSeqPage * inv
		out.Overlap += p.Overlap * inv
		out.TimePerLogFlush += p.TimePerLogFlush * inv
		out.WriteAmp += p.WriteAmp * inv
	}
	out.EffectiveCacheSizePages = int64(cache + 0.5)
	out.WorkMemBytes = int64(workMem + 0.5)
	return out
}

// Lookup returns the parameters at an exact lattice point.
func (g *Grid) Lookup(shares vm.Shares) (optimizer.Params, bool) {
	ic, okC := indexOf(g.cpus, shares.CPU)
	im, okM := indexOf(g.mems, shares.Memory)
	ii, okI := indexOf(g.ios, shares.IO)
	if !okC || !okM || !okI {
		return optimizer.Params{}, false
	}
	return g.points[g.index(ic, im, ii)], true
}

// indexOf finds v on a sorted axis by binary search, within the usual
// floating-point tolerance.
func indexOf(axis []float64, v float64) (int, bool) {
	i := sort.SearchFloat64s(axis, v-1e-9)
	if i < len(axis) && approxEq(axis[i], v) {
		return i, true
	}
	return 0, false
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// Interpolate returns parameters for an arbitrary allocation by trilinear
// interpolation over the lattice (clamped to the lattice's bounding box).
func (g *Grid) Interpolate(shares vm.Shares) optimizer.Params {
	c0, c1, cf := bracket(g.cpus, shares.CPU)
	m0, m1, mf := bracket(g.mems, shares.Memory)
	i0, i1, fi := bracket(g.ios, shares.IO)

	get := func(ic, im, ii int) optimizer.Params { return g.points[g.index(ic, im, ii)] }
	// Interpolate along I/O, then memory, then CPU.
	lerpIO := func(ic, im int) optimizer.Params {
		return lerpParams(get(ic, im, i0), get(ic, im, i1), fi)
	}
	lerpMem := func(ic int) optimizer.Params {
		return lerpParams(lerpIO(ic, m0), lerpIO(ic, m1), mf)
	}
	return lerpParams(lerpMem(c0), lerpMem(c1), cf)
}

// bracket finds the axis cell containing v and the interpolation fraction
// by binary search on the sorted axis.
func bracket(axis []float64, v float64) (lo, hi int, frac float64) {
	last := len(axis) - 1
	if v <= axis[0] {
		return 0, 0, 0
	}
	if v >= axis[last] {
		return last, last, 0
	}
	// First index with axis[hi] >= v; v is strictly inside the axis range,
	// so 1 <= hi <= last.
	hi = sort.SearchFloat64s(axis, v)
	lo = hi - 1
	span := axis[hi] - axis[lo]
	if span <= 0 {
		return lo, lo, 0
	}
	return lo, hi, (v - axis[lo]) / span
}

// lerpParams interpolates every continuous parameter field; integer-like
// fields (cache pages, work_mem) interpolate linearly and round.
func lerpParams(a, b optimizer.Params, f float64) optimizer.Params {
	l := func(x, y float64) float64 { return x + (y-x)*f }
	return optimizer.Params{
		SeqPageCost:             l(a.SeqPageCost, b.SeqPageCost),
		RandomPageCost:          l(a.RandomPageCost, b.RandomPageCost),
		CPUTupleCost:            l(a.CPUTupleCost, b.CPUTupleCost),
		CPUIndexTupleCost:       l(a.CPUIndexTupleCost, b.CPUIndexTupleCost),
		CPUOperatorCost:         l(a.CPUOperatorCost, b.CPUOperatorCost),
		EffectiveCacheSizePages: int64(l(float64(a.EffectiveCacheSizePages), float64(b.EffectiveCacheSizePages)) + 0.5),
		WorkMemBytes:            int64(l(float64(a.WorkMemBytes), float64(b.WorkMemBytes)) + 0.5),
		TimePerSeqPage:          l(a.TimePerSeqPage, b.TimePerSeqPage),
		Overlap:                 l(a.Overlap, b.Overlap),
		TimePerLogFlush:         l(a.TimePerLogFlush, b.TimePerLogFlush),
		WriteAmp:                l(a.WriteAmp, b.WriteAmp),
	}
}
