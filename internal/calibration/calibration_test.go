package calibration

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"dbvirt/internal/vm"
)

// testConfig shrinks the synthetic database so tests stay fast while
// preserving the regimes (narrow table cached, big table uncached).
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Machine.MemBytes = 8 << 20 // pool@50% mem = 384 pages
	cfg.NarrowRows = 4000          // ~30 pages
	cfg.BigRows = 20000            // ~1250 pages > pool even at full memory
	cfg.RandProbeRows = 100
	return cfg
}

func half() vm.Shares { return vm.Shares{CPU: 0.5, Memory: 0.5, IO: 0.5} }

func TestCalibrateProducesSaneParams(t *testing.T) {
	c := New(testConfig())
	p, err := c.Calibrate(context.Background(), half())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("calibrated params invalid: %v (%+v)", err, p)
	}
	if p.TimePerSeqPage <= 0 {
		t.Error("TimePerSeqPage must be positive")
	}
	// With the default machine at 50% I/O share one sequential page takes
	// 1/(2560*0.5) ≈ 0.78ms (plus hypervisor CPU).
	wantSeq := 1 / (testConfig().Machine.SeqPagesPerSec * 0.5)
	if p.TimePerSeqPage < wantSeq*0.8 || p.TimePerSeqPage > wantSeq*2 {
		t.Errorf("TimePerSeqPage = %g, want ~%g", p.TimePerSeqPage, wantSeq)
	}
	// Random reads are slower than sequential ones.
	if p.RandomPageCost < 1 {
		t.Errorf("RandomPageCost = %g, want >= 1", p.RandomPageCost)
	}
	// CPU cost ordering: tuple > index tuple > operator is the engine's
	// built-in cost structure (300 > 150 > 100 ops).
	if p.CPUTupleCost <= p.CPUIndexTupleCost || p.CPUIndexTupleCost <= p.CPUOperatorCost {
		t.Errorf("CPU cost ordering violated: %+v", p)
	}
}

func TestCalibrationRecoversEngineConstants(t *testing.T) {
	// At full allocation with no scheduler overhead the true parameter
	// values are known in closed form: tTup = 300 ops / 1e9 ops/s = 0.3µs,
	// tSeq = 1/2560 s + hypervisor CPU. Calibration should land near them.
	cfg := testConfig()
	cfg.Machine.SchedOverhead = 0
	cfg.Machine.HypervisorIOOps = 0
	c := New(cfg)
	p, err := c.Calibrate(context.Background(), vm.Shares{CPU: 1, Memory: 1, IO: 1})
	if err != nil {
		t.Fatal(err)
	}
	tSeqTrue := 1 / cfg.Machine.SeqPagesPerSec
	if math.Abs(p.TimePerSeqPage-tSeqTrue)/tSeqTrue > 0.15 {
		t.Errorf("tSeq = %g, want ~%g", p.TimePerSeqPage, tSeqTrue)
	}
	tTupTrue := 300 / cfg.Machine.CPUOpsPerSec
	gotTTup := p.CPUTupleCost * p.TimePerSeqPage
	if math.Abs(gotTTup-tTupTrue)/tTupTrue > 0.25 {
		t.Errorf("tTup = %g, want ~%g", gotTTup, tTupTrue)
	}
	tOpTrue := 100 / cfg.Machine.CPUOpsPerSec
	gotTOp := p.CPUOperatorCost * p.TimePerSeqPage
	if math.Abs(gotTOp-tOpTrue)/tOpTrue > 0.25 {
		t.Errorf("tOp = %g, want ~%g", gotTOp, tOpTrue)
	}
}

func TestCPUTupleCostRisesAsCPUShareFalls(t *testing.T) {
	// The paper's Figure 3: cpu_tuple_cost is sensitive to the CPU share.
	c := New(testConfig())
	p25, err := c.Calibrate(context.Background(), vm.Shares{CPU: 0.25, Memory: 0.5, IO: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	p75, err := c.Calibrate(context.Background(), vm.Shares{CPU: 0.75, Memory: 0.5, IO: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if p25.CPUTupleCost <= p75.CPUTupleCost {
		t.Errorf("cpu_tuple_cost should fall as CPU share rises: 25%%=%g 75%%=%g",
			p25.CPUTupleCost, p75.CPUTupleCost)
	}
	// With SchedOverhead the ratio should exceed the linear 3x.
	ratio := p25.CPUTupleCost / p75.CPUTupleCost
	if ratio < 2 {
		t.Errorf("cpu_tuple_cost ratio 25%%/75%% = %g, want > 2", ratio)
	}
}

func TestTimePerSeqPageScalesWithIOShare(t *testing.T) {
	c := New(testConfig())
	pLow, err := c.Calibrate(context.Background(), vm.Shares{CPU: 0.5, Memory: 0.5, IO: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	pHigh, err := c.Calibrate(context.Background(), vm.Shares{CPU: 0.5, Memory: 0.5, IO: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	ratio := pLow.TimePerSeqPage / pHigh.TimePerSeqPage
	if ratio < 2 || ratio > 4 {
		t.Errorf("tSeq ratio io25/io75 = %g, want ~3", ratio)
	}
}

func TestCalibrateCaches(t *testing.T) {
	c := New(testConfig())
	p1, err := c.Calibrate(context.Background(), half())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Calibrate(context.Background(), half())
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("cached calibration should be identical")
	}
}

func TestCalibrateRejectsInvalidShares(t *testing.T) {
	c := New(testConfig())
	if _, err := c.Calibrate(context.Background(), vm.Shares{CPU: 0, Memory: 0.5, IO: 0.5}); err == nil {
		t.Error("invalid shares should fail")
	}
}

func TestEffectiveCacheTracksMemoryShare(t *testing.T) {
	c := New(testConfig())
	pSmall, err := c.Calibrate(context.Background(), vm.Shares{CPU: 0.5, Memory: 0.25, IO: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pBig, err := c.Calibrate(context.Background(), vm.Shares{CPU: 0.5, Memory: 0.75, IO: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if pBig.EffectiveCacheSizePages <= pSmall.EffectiveCacheSizePages {
		t.Error("effective cache should grow with memory share")
	}
	if pBig.WorkMemBytes <= pSmall.WorkMemBytes {
		t.Error("work_mem should grow with memory share")
	}
}

func TestGridCalibrationAndLookup(t *testing.T) {
	c := New(testConfig())
	axis := []float64{0.25, 0.75}
	g, err := c.CalibrateGrid(context.Background(), axis, []float64{0.5}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := g.Lookup(vm.Shares{CPU: 0.25, Memory: 0.5, IO: 0.5})
	if !ok {
		t.Fatal("lattice point should be found")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Lookup(vm.Shares{CPU: 0.6, Memory: 0.5, IO: 0.5}); ok {
		t.Error("off-lattice lookup should miss")
	}
}

func TestGridInterpolation(t *testing.T) {
	c := New(testConfig())
	g, err := c.CalibrateGrid(context.Background(), []float64{0.25, 0.75}, []float64{0.5}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := g.Lookup(vm.Shares{CPU: 0.25, Memory: 0.5, IO: 0.5})
	hi, _ := g.Lookup(vm.Shares{CPU: 0.75, Memory: 0.5, IO: 0.5})
	mid := g.Interpolate(vm.Shares{CPU: 0.5, Memory: 0.5, IO: 0.5})
	// Interpolated cpu_tuple_cost lies between the endpoints.
	if mid.CPUTupleCost < hi.CPUTupleCost || mid.CPUTupleCost > lo.CPUTupleCost {
		t.Errorf("interpolated cpu_tuple_cost %g outside [%g, %g]",
			mid.CPUTupleCost, hi.CPUTupleCost, lo.CPUTupleCost)
	}
	// Exactly at an endpoint it matches the lattice.
	end := g.Interpolate(vm.Shares{CPU: 0.25, Memory: 0.5, IO: 0.5})
	if math.Abs(end.CPUTupleCost-lo.CPUTupleCost) > 1e-12 {
		t.Error("endpoint interpolation should match lattice point")
	}
	// Clamping outside the lattice.
	out := g.Interpolate(vm.Shares{CPU: 0.1, Memory: 0.5, IO: 0.5})
	if math.Abs(out.CPUTupleCost-lo.CPUTupleCost) > 1e-12 {
		t.Error("out-of-range interpolation should clamp")
	}
}

func TestGridValidation(t *testing.T) {
	c := New(testConfig())
	if _, err := c.CalibrateGrid(context.Background(), nil, []float64{0.5}, []float64{0.5}); err == nil {
		t.Error("empty axis should fail")
	}
	if _, err := c.CalibrateGrid(context.Background(), []float64{0.75, 0.25}, []float64{0.5}, []float64{0.5}); err == nil {
		t.Error("unsorted axis should fail")
	}
}

func TestFinerGridReducesInterpolationError(t *testing.T) {
	if testing.Short() {
		t.Skip("grid accuracy check is slow")
	}
	// cpu_tuple_cost(share) ~ 1/share is convex, so a coarse linear
	// interpolant overestimates; refining the lattice must shrink the
	// error. (This is the paper's §7 trade-off between calibration cost
	// and model accuracy; the ablation bench quantifies it.)
	c := New(testConfig())
	target := vm.Shares{CPU: 0.5, Memory: 0.5, IO: 0.5}
	direct, err := c.Calibrate(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	relErr := func(axis []float64) float64 {
		g, err := c.CalibrateGrid(context.Background(), axis, []float64{0.5}, []float64{0.5})
		if err != nil {
			t.Fatal(err)
		}
		interp := g.Interpolate(target)
		return math.Abs(interp.CPUTupleCost-direct.CPUTupleCost) / direct.CPUTupleCost
	}
	coarse := relErr([]float64{0.25, 0.75})
	fine := relErr([]float64{0.25, 0.4, 0.6, 0.75})
	if fine >= coarse {
		t.Errorf("finer grid should reduce error: coarse=%.0f%% fine=%.0f%%", coarse*100, fine*100)
	}
	if fine > 0.25 {
		t.Errorf("fine-grid error = %.0f%%, want < 25%%", fine*100)
	}
}

func TestGridSaveLoadRoundTrip(t *testing.T) {
	c := New(testConfig())
	g, err := c.CalibrateGrid(context.Background(), []float64{0.25, 0.75}, []float64{0.5}, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGrid(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Lattice lookups and interpolations agree exactly.
	for _, cpu := range []float64{0.25, 0.75} {
		sh := vm.Shares{CPU: cpu, Memory: 0.5, IO: 0.25}
		a, ok1 := g.Lookup(sh)
		b, ok2 := loaded.Lookup(sh)
		if !ok1 || !ok2 || a != b {
			t.Errorf("lookup mismatch at %v: %v vs %v", sh, a, b)
		}
	}
	mid := vm.Shares{CPU: 0.5, Memory: 0.5, IO: 0.5}
	if g.Interpolate(mid) != loaded.Interpolate(mid) {
		t.Error("interpolation mismatch after round trip")
	}
}

func TestLoadGridRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"version": 2, "cpus": [0.5], "mems": [0.5], "ios": [0.5], "points": []}`,
		`{"version": 1, "cpus": [], "mems": [0.5], "ios": [0.5], "points": []}`,
		// Missing lattice points.
		`{"version": 1, "cpus": [0.25, 0.75], "mems": [0.5], "ios": [0.5], "points": []}`,
		// Out-of-range index.
		`{"version": 1, "cpus": [0.5], "mems": [0.5], "ios": [0.5],
		  "points": [{"cpu_idx": 3, "mem_idx": 0, "io_idx": 0,
		    "params": {"SeqPageCost": 1, "RandomPageCost": 4, "WorkMemBytes": 1024}}]}`,
	}
	for i, c := range cases {
		if _, err := LoadGrid(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
