package calibration

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dbvirt/internal/vm"
)

// TestCalibrateConcurrentSingleflight fires many goroutines at the same
// two allocations and checks that each allocation is measured exactly
// once (concurrent callers for an in-flight key wait and share the
// result) and that all callers see identical parameters.
func TestCalibrateConcurrentSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow in -short mode")
	}
	c := New(testConfig())
	points := []vm.Shares{
		{CPU: 0.5, Memory: 0.5, IO: 0.5},
		{CPU: 0.75, Memory: 0.5, IO: 0.5},
	}

	const goroutines = 16
	var wg sync.WaitGroup
	got := make([][]float64, goroutines) // CPUTupleCost observed per call
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				p, err := c.Calibrate(context.Background(), points[(g+i)%len(points)])
				if err != nil {
					t.Errorf("Calibrate: %v", err)
					return
				}
				got[g] = append(got[g], p.CPUTupleCost)
			}
		}(g)
	}
	wg.Wait()

	if n := c.Measurements(); n != int64(len(points)) {
		t.Fatalf("Measurements() = %d, want %d (one per unique allocation)", n, len(points))
	}
	// All observations of the same point must agree.
	want := make([]float64, len(points))
	for i, sh := range points {
		p, err := c.Calibrate(context.Background(), sh)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p.CPUTupleCost
	}
	for g := range got {
		for i, v := range got[g] {
			if v != want[(g+i)%len(points)] {
				t.Fatalf("goroutine %d call %d: CPUTupleCost %v, want %v", g, i, v, want[(g+i)%len(points)])
			}
		}
	}
}

// TestCalibrateGridParallelMatchesSerial calibrates the same small
// lattice serially and with four workers and requires the resulting
// parameter grids to be exactly equal: per-worker calibrators build
// their databases from the same seeded config, so every lattice point is
// bit-for-bit reproducible no matter which worker measures it.
func TestCalibrateGridParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow in -short mode")
	}
	cpuAxis := []float64{0.25, 0.75}
	memAxis := []float64{0.5}
	ioAxis := []float64{0.5, 1.0}

	serialCfg := testConfig()
	serialCfg.Parallelism = 1
	serial, err := New(serialCfg).CalibrateGrid(context.Background(), cpuAxis, memAxis, ioAxis)
	if err != nil {
		t.Fatal(err)
	}

	parCfg := testConfig()
	parCfg.Parallelism = 4
	par, err := New(parCfg).CalibrateGrid(context.Background(), cpuAxis, memAxis, ioAxis)
	if err != nil {
		t.Fatal(err)
	}

	for ic := range cpuAxis {
		for im := range memAxis {
			for ii := range ioAxis {
				sh := vm.Shares{CPU: cpuAxis[ic], Memory: memAxis[im], IO: ioAxis[ii]}
				sp, ok := serial.Lookup(sh)
				if !ok {
					t.Fatalf("serial grid missing %v", sh)
				}
				pp, ok := par.Lookup(sh)
				if !ok {
					t.Fatalf("parallel grid missing %v", sh)
				}
				if sp != pp {
					t.Fatalf("lattice point %v differs:\n  serial:   %+v\n  parallel: %+v", sh, sp, pp)
				}
			}
		}
	}
}

// BenchmarkCalibrateGrid measures a 5x5x5 lattice calibration end to end
// at worker counts 1 and 4. Each iteration uses a fresh calibrator so
// every lattice point is actually measured (no cache hits). On a
// multi-core host j=4 should be ~4x faster; results are identical.
func BenchmarkCalibrateGrid(b *testing.B) {
	axis := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			cfg := testConfig()
			cfg.Parallelism = j
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := New(cfg).CalibrateGrid(context.Background(), axis, axis, axis); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
