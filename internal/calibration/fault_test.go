package calibration

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"dbvirt/internal/faults"
	"dbvirt/internal/optimizer"
	"dbvirt/internal/vm"
)

// faultFreeConfig is testConfig with injection explicitly disabled, so
// baselines stay clean even when the suite itself runs under
// DBVIRT_FAULTS (the CI fault-injection job does exactly that).
func faultFreeConfig() Config {
	cfg := testConfig()
	cfg.Faults = faults.Disabled
	return cfg
}

// TestCalibrateRetriesTransientFaults runs one calibration under the CI
// fault mix (10% transient errors, 5% noise) and checks that transient
// failures were retried rather than surfaced, and that the trimmed-median
// aggregation keeps the fitted parameters within 5% of a fault-free run.
func TestCalibrateRetriesTransientFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow in -short mode")
	}
	base, err := New(faultFreeConfig()).Calibrate(context.Background(), half())
	if err != nil {
		t.Fatalf("fault-free Calibrate: %v", err)
	}

	cfg := testConfig()
	cfg.Faults = faults.New(faults.Config{Seed: 7, Transient: 0.1, Noise: 0.05})
	cfg.RetryBackoff = -1 // keep the test fast: retry without sleeping
	c := New(cfg)
	p, err := c.Calibrate(context.Background(), half())
	if err != nil {
		t.Fatalf("Calibrate under faults: %v", err)
	}
	if c.Retries() == 0 {
		t.Fatal("no transient retries recorded; the injector should have fired at 10% transient rate")
	}

	within := func(name string, got, want float64) {
		t.Helper()
		if want == 0 {
			if math.Abs(got) > 0.05 {
				t.Errorf("%s = %g, want ~0", name, got)
			}
			return
		}
		if rel := math.Abs(got-want) / math.Abs(want); rel > 0.05 {
			t.Errorf("%s = %g, fault-free %g (rel diff %.3f > 0.05)", name, got, want, rel)
		}
	}
	within("CPUTupleCost", p.CPUTupleCost, base.CPUTupleCost)
	within("CPUOperatorCost", p.CPUOperatorCost, base.CPUOperatorCost)
	within("CPUIndexTupleCost", p.CPUIndexTupleCost, base.CPUIndexTupleCost)
	within("RandomPageCost", p.RandomPageCost, base.RandomPageCost)
	within("TimePerSeqPage", p.TimePerSeqPage, base.TimePerSeqPage)
}

// TestCalibratePanicRecovered checks that an injected panic in the
// measurement path is converted into a per-point error instead of
// killing the process.
func TestCalibratePanicRecovered(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow in -short mode")
	}
	before := mCalPanic.Value()
	cfg := testConfig()
	cfg.Faults = faults.New(faults.Config{Seed: 3, Panic: 1})
	cfg.RetryBackoff = -1
	_, err := New(cfg).Calibrate(context.Background(), half())
	if err == nil {
		t.Fatal("Calibrate succeeded; want an error from the injected panic")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error %q does not mention the recovered panic", err)
	}
	if mCalPanic.Value() == before {
		t.Fatal("calibration.panic.recovered counter did not move")
	}
}

// TestCalibrateGridCancellation cancels a grid calibration mid-sweep and
// requires a prompt context.Canceled return with every worker goroutine
// joined (run under -race this also exercises the shutdown paths).
func TestCalibrateGridCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow in -short mode")
	}
	cfg := faultFreeConfig()
	cfg.Parallelism = 2
	c := New(cfg)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	cpus := []float64{0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6, 0.65, 0.7}
	go func() {
		_, err := c.CalibrateGrid(ctx, cpus, []float64{0.5}, []float64{0.5, 1})
		done <- err
	}()

	// Cancel once at least one point has completed, so the sweep is
	// genuinely mid-flight (neither untouched nor finished).
	waitUntil := time.Now().Add(30 * time.Second)
	for c.Measurements() == 0 && time.Now().Before(waitUntil) {
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("CalibrateGrid error = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("CalibrateGrid did not return after cancellation")
	}

	// All worker goroutines must wind down; poll briefly since the last
	// ones may still be between their final instructions and exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, g)
	}
}

// TestFillBadPointsAveragesNeighbors unit-tests the bad-point fill: a
// failed lattice point takes the component-wise average of its good
// orthogonal neighbors, and fills never read other fills.
func TestFillBadPointsAveragesNeighbors(t *testing.T) {
	mk := func(v float64) optimizer.Params {
		return optimizer.Params{
			SeqPageCost: 1, RandomPageCost: v, CPUTupleCost: v / 100,
			CPUIndexTupleCost: v / 200, CPUOperatorCost: v / 400,
			EffectiveCacheSizePages: int64(v * 10), WorkMemBytes: int64(v * 1000),
			TimePerSeqPage: v * 1e-4, Overlap: 0.5,
		}
	}
	g := newGrid([]float64{0.25, 0.5, 0.75}, []float64{0.5}, []float64{0.5})
	g.points[0] = mk(2)
	g.points[2] = mk(4)
	errs := []error{nil, errors.New("boom"), nil}
	g.fillBadPoints([]int{1}, errs, nil)
	want := mk(3)
	if g.points[1] != want {
		t.Fatalf("filled point = %+v, want neighbor average %+v", g.points[1], want)
	}

	// Two adjacent bad points: each must fill from the single good point,
	// not from the other's fill (order independence).
	g2 := newGrid([]float64{0.25, 0.5, 0.75}, []float64{0.5}, []float64{0.5})
	g2.points[0] = mk(2)
	errs2 := []error{nil, errors.New("b1"), errors.New("b2")}
	g2.fillBadPoints([]int{1, 2}, errs2, nil)
	if g2.points[1] != mk(2) || g2.points[2] != mk(2) {
		t.Fatalf("adjacent bad points filled to %+v / %+v, want both %+v (the only good point)",
			g2.points[1], g2.points[2], mk(2))
	}
}

// TestCalibrateGridTooManyBadPointsFails injects hard failures at rate 1
// (every lattice point fails) and requires the grid run to abort with a
// diagnostic instead of returning a grid fabricated entirely from fills.
func TestCalibrateGridTooManyBadPointsFails(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = faults.New(faults.Config{Seed: 1, Hard: 1})
	cfg.RetryBackoff = -1
	cfg.Parallelism = 1
	_, err := New(cfg).CalibrateGrid(context.Background(), []float64{0.5}, []float64{0.5}, []float64{0.5, 1})
	if err == nil {
		t.Fatal("CalibrateGrid succeeded with every point failing")
	}
	if !strings.Contains(err.Error(), "grid points failed") {
		t.Fatalf("error %q does not describe the failed points", err)
	}
	if !errors.Is(err, faults.ErrHard) {
		t.Fatalf("error %q does not wrap the first point's failure", err)
	}
}

// TestCalibrateGridFillsBadPoints injects hard failures at a rate (and
// deterministic seed) that fails exactly one of four lattice points; the
// sweep must complete, count the bad point, and fill it with valid
// parameters from its neighbors.
func TestCalibrateGridFillsBadPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow in -short mode")
	}
	cfg := testConfig()
	// Seed 1 at this rate deterministically fails one point of this axis
	// (the injector is a pure function of seed and probe key).
	cfg.Faults = faults.New(faults.Config{Seed: 1, Hard: 0.007})
	cfg.RetryBackoff = -1
	cfg.Parallelism = 1
	cpus := []float64{0.25, 0.5, 0.75, 1}
	before := mCalBadPoint.Value()
	g, err := New(cfg).CalibrateGrid(context.Background(), cpus, []float64{0.5}, []float64{0.5})
	if err != nil {
		t.Fatalf("CalibrateGrid: %v", err)
	}
	if got := mCalBadPoint.Value() - before; got != 1 {
		t.Fatalf("bad-point counter moved by %d, want 1 (did the probe suite change? re-hunt the seed)", got)
	}
	for _, cpu := range cpus {
		p, ok := g.Lookup(vm.Shares{CPU: cpu, Memory: 0.5, IO: 0.5})
		if !ok {
			t.Fatalf("lattice point cpu=%g missing", cpu)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("lattice point cpu=%g invalid after fill: %v", cpu, err)
		}
	}
}

// TestCalibrateGridCheckpointResume interrupts a checkpointed grid run
// mid-sweep, resumes it, and requires the resumed grid to be
// bit-identical to an uninterrupted run while re-measuring only the
// missing points.
func TestCalibrateGridCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow in -short mode")
	}
	cfg := faultFreeConfig()
	cfg.Parallelism = 1
	cpus := []float64{0.25, 0.5, 0.75, 1}
	mems := []float64{0.5}
	ios := []float64{0.5}

	ref, err := New(cfg).CalibrateGrid(context.Background(), cpus, mems, ios)
	if err != nil {
		t.Fatalf("reference CalibrateGrid: %v", err)
	}

	// Interrupted run: cancel as soon as the first checkpoint lands.
	path := filepath.Join(t.TempDir(), "grid.ckpt.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for {
			if _, err := os.Stat(path); err == nil {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	_, err = New(cfg).CalibrateGridOpts(ctx, cpus, mems, ios, GridOptions{CheckpointPath: path})
	cancel()
	<-watcherDone
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted CalibrateGridOpts: %v", err)
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Fatalf("no checkpoint was written: %v", statErr)
	}

	// Resumed run: restores the checkpointed points, measures the rest.
	c := New(cfg)
	g, err := c.CalibrateGridOpts(context.Background(), cpus, mems, ios, GridOptions{
		CheckpointPath: path,
		Resume:         true,
	})
	if err != nil {
		t.Fatalf("resumed CalibrateGridOpts: %v", err)
	}
	if got := c.Measurements(); got >= int64(len(cpus)) {
		t.Fatalf("resumed run measured %d points; want fewer than %d (the checkpoint held at least one)", got, len(cpus))
	}

	var wantJSON, gotJSON bytes.Buffer
	if err := ref.SaveJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := g.SaveJSON(&gotJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
		t.Fatalf("resumed grid differs from uninterrupted run:\nresumed: %s\nreference: %s", gotJSON.String(), wantJSON.String())
	}
}

// TestCheckpointRejectsTamperingAndConfigDrift corrupts a checkpoint and
// changes the calibration config, and requires resumption to fail loudly
// in both cases rather than silently mixing incompatible measurements.
func TestCheckpointRejectsTamperingAndConfigDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow in -short mode")
	}
	cfg := faultFreeConfig()
	cfg.Parallelism = 1
	path := filepath.Join(t.TempDir(), "grid.ckpt.json")
	axis := []float64{0.5}
	if _, err := New(cfg).CalibrateGridOpts(context.Background(), axis, axis, axis,
		GridOptions{CheckpointPath: path}); err != nil {
		t.Fatalf("CalibrateGridOpts: %v", err)
	}

	// Tamper with a stored parameter value; the checksum must catch it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	pt := doc["points"].([]any)[0].(map[string]any)["params"].(map[string]any)
	for k, v := range pt {
		if f, ok := v.(float64); ok && f != 0 {
			pt[k] = f * 2
			break
		}
	}
	tampered, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg).CalibrateGridOpts(context.Background(), axis, axis, axis,
		GridOptions{CheckpointPath: path, Resume: true}); err == nil {
		t.Fatal("resume accepted a tampered checkpoint")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered checkpoint error %q does not mention the checksum", err)
	}

	// Restore the valid checkpoint, then resume under a different config;
	// the signature must catch it.
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	drifted := cfg
	drifted.Seed++
	if _, err := New(drifted).CalibrateGridOpts(context.Background(), axis, axis, axis,
		GridOptions{CheckpointPath: path, Resume: true}); err == nil {
		t.Fatal("resume accepted a checkpoint from a different calibration config")
	} else if !strings.Contains(err.Error(), "different calibration config") {
		t.Fatalf("config-drift error %q does not mention the config signature", err)
	}
}
