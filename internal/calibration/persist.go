package calibration

import (
	"encoding/json"
	"fmt"
	"io"

	"dbvirt/internal/optimizer"
)

// The paper's calibration is expensive and meant to be run once, offline,
// per physical machine ("we can obtain P for different R's off-line, and
// then use the different P values for all virtualization design
// problems"). Grid persistence makes that concrete: CalibrateGrid once,
// SaveJSON the lattice, and LoadGrid it in every later tuning session —
// no database or workload knowledge is embedded, exactly as §4 observes.

// gridJSON is the serialized form of a Grid.
type gridJSON struct {
	Version int             `json:"version"`
	CPUs    []float64       `json:"cpus"`
	Mems    []float64       `json:"mems"`
	IOs     []float64       `json:"ios"`
	Points  []gridPointJSON `json:"points"`
}

type gridPointJSON struct {
	CPU    int              `json:"cpu_idx"`
	Mem    int              `json:"mem_idx"`
	IO     int              `json:"io_idx"`
	Params optimizer.Params `json:"params"`
}

// SaveJSON writes the grid as JSON. Points are emitted in lattice order
// (CPU-major), so the output is deterministic.
func (g *Grid) SaveJSON(w io.Writer) error {
	out := gridJSON{Version: 1, CPUs: g.cpus, Mems: g.mems, IOs: g.ios}
	for ic := range g.cpus {
		for im := range g.mems {
			for ii := range g.ios {
				out.Points = append(out.Points, gridPointJSON{
					CPU: ic, Mem: im, IO: ii,
					Params: g.points[g.index(ic, im, ii)],
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadGrid reads a grid saved by SaveJSON.
func LoadGrid(r io.Reader) (*Grid, error) {
	var in gridJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("calibration: decoding grid: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("calibration: unsupported grid version %d", in.Version)
	}
	if len(in.CPUs) == 0 || len(in.Mems) == 0 || len(in.IOs) == 0 {
		return nil, fmt.Errorf("calibration: grid has empty axes")
	}
	g := newGrid(in.CPUs, in.Mems, in.IOs)
	want := len(g.points)
	seen := make([]bool, want)
	var have int
	for _, pt := range in.Points {
		if pt.CPU < 0 || pt.CPU >= len(in.CPUs) ||
			pt.Mem < 0 || pt.Mem >= len(in.Mems) ||
			pt.IO < 0 || pt.IO >= len(in.IOs) {
			return nil, fmt.Errorf("calibration: grid point index out of range")
		}
		if err := pt.Params.Validate(); err != nil {
			return nil, fmt.Errorf("calibration: invalid grid point: %w", err)
		}
		idx := g.index(pt.CPU, pt.Mem, pt.IO)
		if !seen[idx] {
			seen[idx] = true
			have++
		}
		g.points[idx] = pt.Params
	}
	if have != want {
		return nil, fmt.Errorf("calibration: grid has %d of %d lattice points", have, want)
	}
	return g, nil
}
