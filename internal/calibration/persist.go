package calibration

import (
	"encoding/json"
	"fmt"
	"io"

	"dbvirt/internal/optimizer"
)

// The paper's calibration is expensive and meant to be run once, offline,
// per physical machine ("we can obtain P for different R's off-line, and
// then use the different P values for all virtualization design
// problems"). Grid persistence makes that concrete: CalibrateGrid once,
// SaveJSON the lattice, and LoadGrid it in every later tuning session —
// no database or workload knowledge is embedded, exactly as §4 observes.

// gridJSON is the serialized form of a Grid.
type gridJSON struct {
	Version int             `json:"version"`
	CPUs    []float64       `json:"cpus"`
	Mems    []float64       `json:"mems"`
	IOs     []float64       `json:"ios"`
	Points  []gridPointJSON `json:"points"`
}

type gridPointJSON struct {
	CPU    int              `json:"cpu_idx"`
	Mem    int              `json:"mem_idx"`
	IO     int              `json:"io_idx"`
	Params optimizer.Params `json:"params"`
}

// SaveJSON writes the grid as JSON.
func (g *Grid) SaveJSON(w io.Writer) error {
	out := gridJSON{Version: 1, CPUs: g.cpus, Mems: g.mems, IOs: g.ios}
	for key, p := range g.points {
		out.Points = append(out.Points, gridPointJSON{CPU: key[0], Mem: key[1], IO: key[2], Params: p})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadGrid reads a grid saved by SaveJSON.
func LoadGrid(r io.Reader) (*Grid, error) {
	var in gridJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("calibration: decoding grid: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("calibration: unsupported grid version %d", in.Version)
	}
	if len(in.CPUs) == 0 || len(in.Mems) == 0 || len(in.IOs) == 0 {
		return nil, fmt.Errorf("calibration: grid has empty axes")
	}
	g := &Grid{
		cpus:   in.CPUs,
		mems:   in.Mems,
		ios:    in.IOs,
		points: make(map[[3]int]optimizer.Params, len(in.Points)),
	}
	want := len(in.CPUs) * len(in.Mems) * len(in.IOs)
	for _, pt := range in.Points {
		if pt.CPU < 0 || pt.CPU >= len(in.CPUs) ||
			pt.Mem < 0 || pt.Mem >= len(in.Mems) ||
			pt.IO < 0 || pt.IO >= len(in.IOs) {
			return nil, fmt.Errorf("calibration: grid point index out of range")
		}
		if err := pt.Params.Validate(); err != nil {
			return nil, fmt.Errorf("calibration: invalid grid point: %w", err)
		}
		g.points[[3]int{pt.CPU, pt.Mem, pt.IO}] = pt.Params
	}
	if len(g.points) != want {
		return nil, fmt.Errorf("calibration: grid has %d of %d lattice points", len(g.points), want)
	}
	return g, nil
}
