package calibration

import (
	"strings"
	"testing"

	"dbvirt/internal/optimizer"
	"dbvirt/internal/vm"
)

func syntheticPoint(f float64) optimizer.Params {
	p := optimizer.DefaultParams()
	p.RandomPageCost = 1 + f
	p.TimePerSeqPage = 1e-4 * (1 + f)
	return p
}

func TestNewGridRoundTrip(t *testing.T) {
	cpus := []float64{0.25, 0.5, 1.0}
	mems := []float64{0.5, 1.0}
	ios := []float64{0.25, 1.0}
	n := len(cpus) * len(mems) * len(ios)
	points := make([]optimizer.Params, n)
	for i := range points {
		points[i] = syntheticPoint(float64(i))
	}
	g, err := NewGrid(cpus, mems, ios, points)
	if err != nil {
		t.Fatal(err)
	}

	allocs := g.Allocations()
	if len(allocs) != n {
		t.Fatalf("Allocations returned %d entries, want %d", len(allocs), n)
	}
	// Allocations enumerates in the dense order NewGrid consumed the
	// points in, so zipping them must reproduce every lattice value.
	for i, sh := range allocs {
		got, ok := g.Lookup(sh)
		if !ok {
			t.Fatalf("Lookup missed lattice point %v", sh)
		}
		if got != points[i] {
			t.Errorf("point %d (%v): Lookup = %+v, want %+v", i, sh, got, points[i])
		}
	}
	// First axis is CPU-major: the first len(mems)*len(ios) allocations
	// all carry the lowest CPU share.
	for i := 0; i < len(mems)*len(ios); i++ {
		if allocs[i].CPU != cpus[0] {
			t.Fatalf("alloc %d CPU = %v, want %v (CPU-major order)", i, allocs[i].CPU, cpus[0])
		}
	}

	// Interpolation between two lattice points stays between their values.
	mid := g.Interpolate(vm.Shares{CPU: 0.375, Memory: 0.5, IO: 0.25})
	lo, _ := g.Lookup(vm.Shares{CPU: 0.25, Memory: 0.5, IO: 0.25})
	hi, _ := g.Lookup(vm.Shares{CPU: 0.5, Memory: 0.5, IO: 0.25})
	if mid.RandomPageCost <= lo.RandomPageCost || mid.RandomPageCost >= hi.RandomPageCost {
		t.Errorf("interpolated RandomPageCost %v not between %v and %v",
			mid.RandomPageCost, lo.RandomPageCost, hi.RandomPageCost)
	}
}

func TestNewGridValidation(t *testing.T) {
	axis := []float64{0.5, 1.0}
	good := make([]optimizer.Params, 8)
	for i := range good {
		good[i] = syntheticPoint(float64(i))
	}
	cases := []struct {
		name string
		do   func() error
		want string
	}{
		{"empty axis", func() error {
			_, err := NewGrid(nil, axis, axis, nil)
			return err
		}, "empty grid axis"},
		{"unsorted axis", func() error {
			_, err := NewGrid([]float64{1.0, 0.5}, axis, axis, good)
			return err
		}, "must be sorted"},
		{"wrong point count", func() error {
			_, err := NewGrid(axis, axis, axis, good[:5])
			return err
		}, "got 5"},
		{"invalid params", func() error {
			bad := append([]optimizer.Params(nil), good...)
			bad[3].SeqPageCost = 0
			_, err := NewGrid(axis, axis, axis, bad)
			return err
		}, "SeqPageCost"},
	}
	for _, tc := range cases {
		err := tc.do()
		if err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
