// Package calibration implements Section 5 of the paper: obtaining the
// optimizer parameter vector P for a resource allocation R by running
// designed synthetic queries on a synthetic database inside a virtual
// machine configured with allocation R, measuring their (simulated)
// execution times, and solving the resulting linear systems for the
// parameters.
//
// The calibration is staged so that each unknown is measured in a regime
// where it dominates:
//
//  1. CPU parameters (cpu_tuple_cost, cpu_operator_cost,
//     cpu_index_tuple_cost) come from warm-cache probes on a small table:
//     with no I/O, elapsed time is pure CPU and the probe times form a
//     least-squares system in the per-tuple/per-operator/per-index-entry
//     times.
//  2. The sequential page time (the paper's unit cost and our
//     TimePerSeqPage) comes from cold scans of a large table, where the
//     CPU contribution — predicted from stage 1 — is subtracted after
//     fitting an unknown CPU/I-O overlap factor.
//  3. The random page time comes from a cold, uncorrelated index probe.
//
// The resulting parameters are expressed as ratios to the sequential page
// time, exactly like PostgreSQL's seq_page_cost=1 convention, and cached
// per allocation. A Grid calibrates a lattice of allocations and
// interpolates between them — the paper's proposed remedy for the cost of
// calibration experiments.
//
// Because real calibration measurements are noisy and occasionally fail,
// the measurement path is fault-tolerant: every probe runs as a set of
// trials aggregated by trimmed median, transient measurement errors are
// retried with exponential backoff, least-squares fits whose residual
// exceeds a threshold fall back to an outlier-rejecting IRLS fit, panics
// in the measurement path are converted into per-point errors, and the
// whole pipeline accepts a context.Context for cancellation and
// deadlines. Faults are injected deterministically through
// internal/faults (the DBVIRT_FAULTS environment variable, or
// Config.Faults) so every recovery path is exercisable in tests and CI.
package calibration

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dbvirt/internal/engine"
	"dbvirt/internal/faults"
	"dbvirt/internal/linalg"
	"dbvirt/internal/obs"
	"dbvirt/internal/optimizer"
	"dbvirt/internal/storage"
	"dbvirt/internal/types"
	"dbvirt/internal/vm"
	"dbvirt/internal/wal"
)

// Always-on calibration metrics (see internal/obs). A "hit" is a cache
// lookup answered from the per-allocation cache; a "join" piggybacks on a
// measurement already in flight; together they are the dedup savings over
// measures, which counts full probe suites actually run. The fault plane
// counts injected faults, transient-retry attempts (with their backoff
// latency), robust-fit fallbacks, and lattice points abandoned as bad.
var (
	mCalHit          = obs.Global.Counter("calibration.cache.hit")
	mCalJoin         = obs.Global.Counter("calibration.cache.inflight_join")
	mCalMeasure      = obs.Global.Counter("calibration.measure.count")
	mCalRetry        = obs.Global.Counter("calibration.retry.count")
	mCalFault        = obs.Global.Counter("calibration.fault.injected")
	mCalPanic        = obs.Global.Counter("calibration.panic.recovered")
	mCalRobustFit    = obs.Global.Counter("calibration.fit.robust")
	mCalBadPoint     = obs.Global.Counter("calibration.grid.bad_points")
	mCalCkptWrite    = obs.Global.Counter("calibration.checkpoint.writes")
	mCalCkptResume   = obs.Global.Counter("calibration.checkpoint.resumed_points")
	hMeasureSeconds  = obs.Global.Histogram("calibration.measure.seconds")
	hRetryBackoff    = obs.Global.Histogram("calibration.retry.backoff_seconds")
	gResidualCPU     = obs.Global.Gauge("calibration.residual.cpu")
	gResidualSeqScan = obs.Global.Gauge("calibration.residual.seq")
)

// Config controls the calibration environment.
type Config struct {
	// Machine is the physical machine model to calibrate against.
	Machine vm.MachineConfig
	// Engine is the session configuration (buffer/work-mem split); it must
	// match the configuration of the sessions the calibrated parameters
	// will plan for.
	Engine engine.Config
	// NarrowRows sizes the warm-probe table (must fit the pool at every
	// calibrated memory share).
	NarrowRows int
	// BigRows sizes the cold-probe table (must exceed the pool at every
	// calibrated memory share).
	BigRows int
	// RandProbeRows is the target number of rows fetched by the random-I/O
	// probe.
	RandProbeRows int
	// Seed makes the synthetic database deterministic.
	Seed int64
	// Parallelism bounds the number of worker goroutines CalibrateGrid
	// fans lattice points out over; 0 (the default) means
	// runtime.GOMAXPROCS(0), 1 forces serial calibration. Each worker owns
	// its own calibration database and engine instances, so the simulated
	// VM clocks never interleave and results are byte-identical to a
	// serial run.
	Parallelism int
	// Faults injects deterministic measurement faults (see
	// internal/faults). nil consults the DBVIRT_FAULTS environment
	// variable; a process with neither runs fault-free.
	Faults *faults.Injector
	// Trials is the number of timed trials per probe, aggregated by
	// trimmed median; 0 means 1 when fault-free and 5 under injection
	// (the median then rejects injected noise and spikes).
	Trials int
	// MaxAttempts bounds the retries of one trial on transient
	// measurement errors (default 4, i.e. up to 3 retries).
	MaxAttempts int
	// RetryBackoff is the initial backoff before a transient retry; it
	// doubles per attempt (default 5ms). Tests may set it negative for no
	// sleep.
	RetryBackoff time.Duration
	// RobustResidualThreshold is the relative fit residual above which a
	// stage falls back to the outlier-rejecting IRLS fit (default 0.05).
	RobustResidualThreshold float64
	// Obs receives per-lattice-point trace spans and residual/debug
	// events; nil disables both. Metrics (cache hits, measurement counts,
	// fit residuals) always go to the process-global obs registry.
	Obs *obs.Telemetry
}

// workers resolves the configured parallelism to a worker count.
func (c Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// trials resolves the per-probe trial count.
func (c Config) trials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Faults.Enabled() {
		return 5
	}
	return 1
}

// maxAttempts resolves the per-trial attempt bound.
func (c Config) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 4
}

// retryBackoff resolves the initial transient-retry backoff.
func (c Config) retryBackoff() time.Duration {
	if c.RetryBackoff != 0 {
		if c.RetryBackoff < 0 {
			return 0
		}
		return c.RetryBackoff
	}
	return 5 * time.Millisecond
}

// robustThreshold resolves the IRLS-fallback residual threshold.
func (c Config) robustThreshold() float64 {
	if c.RobustResidualThreshold > 0 {
		return c.RobustResidualThreshold
	}
	return 0.05
}

// DefaultConfig calibrates the default machine.
func DefaultConfig() Config {
	return Config{
		Machine:       vm.DefaultMachineConfig(),
		Engine:        engine.DefaultConfig(),
		NarrowRows:    20000,
		BigRows:       130000,
		RandProbeRows: 200,
		Seed:          1,
	}
}

// Calibrator owns the synthetic calibration database and a parameter
// cache. It is safe for concurrent use: the database is built once and is
// read-only afterwards (every measurement session gets its own machine,
// VM, and buffer pool), the cache is mutex-guarded, and concurrent
// Calibrate calls for the same allocation join one in-flight measurement
// (singleflight) instead of repeating it.
type Calibrator struct {
	cfg Config
	// envErr records a malformed DBVIRT_FAULTS spec; surfacing it from
	// Calibrate (rather than panicking in New) keeps construction
	// infallible while still failing misconfigured runs loudly.
	envErr error

	buildOnce      sync.Once
	buildErr       error
	db             *engine.Database
	bigPages       float64
	bigRows        float64
	narrowRows     float64
	randLo, randHi int64   // key range of the random probe
	randK          float64 // exact rows matched by the probe

	measures atomic.Int64 // completed measure() runs, for tests/reporting
	retries  atomic.Int64 // transient-fault retries, for tests/reporting

	mu       sync.Mutex
	cache    map[[3]int64]optimizer.Params
	inflight map[[3]int64]*calCall
}

// calCall is one in-flight calibration; done is closed when p/err are set.
type calCall struct {
	done chan struct{}
	p    optimizer.Params
	err  error
}

// New creates a calibrator for the given configuration. A nil cfg.Faults
// is resolved from the DBVIRT_FAULTS environment variable.
func New(cfg Config) *Calibrator {
	c := &Calibrator{
		cfg:      cfg,
		cache:    make(map[[3]int64]optimizer.Params),
		inflight: make(map[[3]int64]*calCall),
	}
	if cfg.Faults == nil {
		inj, err := faults.FromEnv()
		if err != nil {
			c.envErr = err
		} else {
			c.cfg.Faults = inj
		}
	}
	return c
}

// Measurements returns how many full probe suites this calibrator has run
// (cache hits and joined duplicate requests do not count).
func (c *Calibrator) Measurements() int64 { return c.measures.Load() }

// Retries returns how many transient-fault retries this calibrator has
// performed across all measurements.
func (c *Calibrator) Retries() int64 { return c.retries.Load() }

// Config returns the calibrator's configuration.
func (c *Calibrator) Config() Config { return c.cfg }

const padLen = 420 // big-table padding: ~16 rows per 8 KiB page

// buildDB constructs the synthetic calibration database once.
func (c *Calibrator) buildDB() error {
	c.buildOnce.Do(func() { c.buildErr = c.doBuild() })
	return c.buildErr
}

func (c *Calibrator) doBuild() error {
	m, err := vm.NewMachine(c.cfg.Machine)
	if err != nil {
		return err
	}
	loaderVM, err := m.NewVM("cal-loader", vm.Shares{CPU: 1, Memory: 1, IO: 1})
	if err != nil {
		return err
	}
	db := engine.NewDatabase()
	s, err := engine.NewSession(db, loaderVM, c.cfg.Engine)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(c.cfg.Seed))

	if _, err := s.Exec(`CREATE TABLE cal_narrow (a INT, b INT, c INT)`); err != nil {
		return err
	}
	narrow, err := db.Catalog.Table("cal_narrow")
	if err != nil {
		return err
	}
	for i := 0; i < c.cfg.NarrowRows; i++ {
		tup := storage.Tuple{
			types.NewInt(int64(i)),
			types.NewInt(int64(rng.Intn(1000))),
			types.NewInt(int64(1000 + rng.Intn(1000))),
		}
		if err := s.InsertTuple(narrow, tup); err != nil {
			return err
		}
	}
	if _, err := s.Exec(`CREATE INDEX cal_narrow_a ON cal_narrow (a)`); err != nil {
		return err
	}

	if _, err := s.Exec(`CREATE TABLE cal_big (a INT, b INT, c INT, r INT, pad TEXT)`); err != nil {
		return err
	}
	big, err := db.Catalog.Table("cal_big")
	if err != nil {
		return err
	}
	pad := make([]byte, padLen)
	for i := range pad {
		pad[i] = 'x'
	}
	var randK int64
	// The random probe selects r in [randLo, randHi]; r is uniform over
	// [0, BigRows), so a window of RandProbeRows keys matches ~that many
	// rows, scattered uniformly over the heap.
	c.randLo = int64(c.cfg.BigRows / 2)
	c.randHi = c.randLo + int64(c.cfg.RandProbeRows) - 1
	for i := 0; i < c.cfg.BigRows; i++ {
		r := int64(rng.Intn(c.cfg.BigRows))
		if r >= c.randLo && r <= c.randHi {
			randK++
		}
		tup := storage.Tuple{
			types.NewInt(int64(i)),
			types.NewInt(int64(rng.Intn(1000))),
			types.NewInt(int64(1000 + rng.Intn(1000))),
			types.NewInt(r),
			types.NewString(string(pad)),
		}
		if err := s.InsertTuple(big, tup); err != nil {
			return err
		}
	}
	if _, err := s.Exec(`CREATE INDEX cal_big_r ON cal_big (r)`); err != nil {
		return err
	}
	if _, err := s.Exec("ANALYZE"); err != nil {
		return err
	}
	if err := s.Pool.FlushAll(); err != nil {
		return err
	}

	c.db = db
	c.bigPages = float64(db.Disk.NumPages(big.Heap.FileID()))
	c.bigRows = float64(c.cfg.BigRows)
	c.narrowRows = float64(c.cfg.NarrowRows)
	c.randK = float64(randK)

	// The cold-probe table must exceed the buffer pool even at a full
	// memory share, or the stage B/C probes would not be I/O-bound and the
	// fitted page times would be meaningless.
	maxPool := float64(c.cfg.Machine.MemBytes) * c.cfg.Engine.BufferFrac / storage.PageSize
	if c.bigPages <= 1.2*maxPool {
		return fmt.Errorf("calibration: big table (%d pages) must exceed the largest possible buffer pool (%d pages) by 20%%; increase BigRows or shrink the machine memory",
			int(c.bigPages), int(maxPool))
	}
	narrowTable, err := db.Catalog.Table("cal_narrow")
	if err != nil {
		return err
	}
	narrowPages := float64(db.Disk.NumPages(narrowTable.Heap.FileID()))
	if narrowPages > 0.5*maxPool*minMemShare {
		return fmt.Errorf("calibration: narrow table (%d pages) must fit the smallest calibrated pool; decrease NarrowRows",
			int(narrowPages))
	}
	return nil
}

// minMemShare is the smallest memory share the calibrator supports; the
// narrow table must stay cached down to this share.
const minMemShare = 0.2

// newMeasureSession creates a fresh session (cold buffer pool) on a fresh
// machine with the given shares.
func (c *Calibrator) newMeasureSession(shares vm.Shares) (*engine.Session, error) {
	m, err := vm.NewMachine(c.cfg.Machine)
	if err != nil {
		return nil, err
	}
	v, err := m.NewVM("cal", shares)
	if err != nil {
		return nil, err
	}
	return engine.NewSession(c.db, v, c.cfg.Engine)
}

// timeQuery runs a query and returns its simulated elapsed seconds.
func timeQuery(s *engine.Session, query string) (float64, error) {
	start := s.VM.Snapshot()
	if _, err := s.RunStatement(query); err != nil {
		return 0, err
	}
	return s.VM.ElapsedSince(start), nil
}

// sleepCtx sleeps for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// probeKey names one probe measurement stably for the fault injector:
// stage, query, and allocation — never scheduling artifacts, so injected
// faults are identical across worker counts and resumed runs.
func probeKey(stage, query string, shares vm.Shares) string {
	return fmt.Sprintf("%s|%s|cpu=%.6f,mem=%.6f,io=%.6f", stage, query, shares.CPU, shares.Memory, shares.IO)
}

// runTrial executes one timed trial, consulting the fault injector and
// retrying transient failures with exponential backoff. It returns the
// (possibly noise-scaled) elapsed seconds and the number of attempts.
func (c *Calibrator) runTrial(ctx context.Context, key string, run func() (float64, error)) (float64, int, error) {
	backoff := c.cfg.retryBackoff()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, attempt, err
		}
		out := c.cfg.Faults.Measurement(key, attempt)
		if out.Panic {
			panic(fmt.Sprintf("calibration: injected panic (key %q, attempt %d)", key, attempt))
		}
		if out.Err != nil {
			mCalFault.Inc()
			if out.Transient && attempt+1 < c.cfg.maxAttempts() {
				mCalRetry.Inc()
				c.retries.Add(1)
				hRetryBackoff.Observe(backoff.Seconds())
				c.cfg.Obs.Debug("calibration transient fault, retrying",
					"key", key, "attempt", attempt, "backoff", backoff.String())
				if err := sleepCtx(ctx, backoff); err != nil {
					return 0, attempt + 1, err
				}
				backoff *= 2
				continue
			}
			return 0, attempt + 1, fmt.Errorf("calibration: measurement %q failed after %d attempts: %w", key, attempt+1, out.Err)
		}
		el, err := run()
		if err != nil {
			// Engine-level failures are bugs in the probe suite, not
			// transient measurement noise; they are never retried.
			return 0, attempt + 1, err
		}
		return el * out.Scale, attempt + 1, nil
	}
}

// measureProbe runs the configured number of trials of one probe and
// aggregates them by trimmed median. run must produce a fresh, equivalent
// measurement each call (warm probes rerun on the warmed session; cold
// probes build a fresh session per trial). attempts accumulates the total
// trial attempts into the caller's per-point counter.
func (c *Calibrator) measureProbe(ctx context.Context, keyBase string, attempts *int, run func() (float64, error)) (float64, error) {
	k := c.cfg.trials()
	vals := make([]float64, 0, k)
	for t := 0; t < k; t++ {
		v, a, err := c.runTrial(ctx, fmt.Sprintf("%s|trial=%d", keyBase, t), run)
		*attempts += a
		if err != nil {
			return 0, err
		}
		vals = append(vals, v)
	}
	return trimmedMedian(vals), nil
}

// trimmedMedian aggregates trial measurements: with five or more trials
// the extremes are dropped first (rejecting latency spikes outright), and
// the median of what remains is returned. One trial returns itself, so
// the fault-free single-trial path is bit-identical to a direct
// measurement.
func trimmedMedian(v []float64) float64 {
	sort.Float64s(v)
	if len(v) >= 5 {
		v = v[1 : len(v)-1]
	}
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return 0.5 * (v[n/2-1] + v[n/2])
}

// requirePlanNode verifies the session would execute the probe with the
// expected access method; a degenerate probe plan would invalidate the
// linear model behind the calibration equations.
func requirePlanNode(s *engine.Session, query, nodeName string) error {
	expl, err := s.Explain(query)
	if err != nil {
		return err
	}
	if !strings.Contains(expl, nodeName) {
		return fmt.Errorf("calibration: probe %q did not plan as %s:\n%s", query, nodeName, expl)
	}
	return nil
}

func cacheKey(shares vm.Shares) [3]int64 {
	q := func(f float64) int64 { return int64(math.Round(f * 1e6)) }
	return [3]int64{q(shares.CPU), q(shares.Memory), q(shares.IO)}
}

// Calibrate measures and returns the optimizer parameters P for the given
// resource allocation R. Results are cached per allocation; concurrent
// calls for the same allocation share one measurement. The context
// cancels a measurement between probes (and during retry backoff); a
// joiner whose context is cancelled stops waiting without disturbing the
// in-flight measurement it joined.
func (c *Calibrator) Calibrate(ctx context.Context, shares vm.Shares) (optimizer.Params, error) {
	if c.envErr != nil {
		return optimizer.Params{}, c.envErr
	}
	if !shares.Valid() {
		return optimizer.Params{}, fmt.Errorf("calibration: invalid shares %v", shares)
	}
	if err := ctx.Err(); err != nil {
		return optimizer.Params{}, err
	}
	key := cacheKey(shares)
	c.mu.Lock()
	if p, ok := c.cache[key]; ok {
		c.mu.Unlock()
		mCalHit.Inc()
		return p, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		mCalJoin.Inc()
		select {
		case <-call.done:
			return call.p, call.err
		case <-ctx.Done():
			return optimizer.Params{}, ctx.Err()
		}
	}
	call := &calCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	sp := c.cfg.Obs.Span("calibrate.point")
	sp.SetArg("cpu", shares.CPU)
	sp.SetArg("mem", shares.Memory)
	sp.SetArg("io", shares.IO)
	start := time.Now()
	if call.err = c.buildDB(); call.err == nil {
		call.p, call.err = c.measureSafe(ctx, shares, sp)
	}
	if call.err == nil {
		mCalMeasure.Inc()
		hMeasureSeconds.ObserveSince(start)
	}
	sp.End()
	c.mu.Lock()
	if call.err == nil {
		c.cache[key] = call.p
	}
	delete(c.inflight, key) // errors are not cached; a later call retries
	c.mu.Unlock()
	close(call.done)
	return call.p, call.err
}

// prime inserts an already-measured parameter vector into the cache; used
// when grid workers hand their lattice points back to the shared
// calibrator.
func (c *Calibrator) prime(shares vm.Shares, p optimizer.Params) {
	key := cacheKey(shares)
	c.mu.Lock()
	c.cache[key] = p
	c.mu.Unlock()
}

// measureSafe runs measure under recover(), converting a panic in the
// measurement path into a per-point error instead of process death.
func (c *Calibrator) measureSafe(ctx context.Context, shares vm.Shares, sp *obs.Span) (p optimizer.Params, err error) {
	defer func() {
		if r := recover(); r != nil {
			mCalPanic.Inc()
			c.cfg.Obs.Error("calibration measurement panicked",
				"cpu", shares.CPU, "mem", shares.Memory, "io", shares.IO, "panic", fmt.Sprint(r))
			p = optimizer.Params{}
			err = fmt.Errorf("calibration: measurement at %v panicked: %v", shares, r)
		}
	}()
	return c.measure(ctx, shares, sp)
}

// fitStage solves one calibration stage's least-squares system. When the
// relative residual exceeds the robust threshold — the signature of a
// corrupted measurement surviving the trimmed median — it falls back to
// the outlier-rejecting IRLS fit. Singular systems are wrapped with the
// stage, the allocation being calibrated, and the conditioning of the
// normal equations, so the failing fit is identifiable from the error
// alone.
func (c *Calibrator) fitStage(stage string, rows [][]float64, rhs []float64, shares vm.Shares) ([]float64, float64, error) {
	a := linalg.FromRows(rows)
	sol, err := linalg.LeastSquares(a, rhs)
	if err != nil {
		return nil, 0, fmt.Errorf("calibration: %s stage fit at shares %v (%s): %w",
			stage, shares, linalg.DescribeSystem(a), err)
	}
	res := relResidual(rows, sol, rhs)
	if res > c.cfg.robustThreshold() {
		rob, rerr := linalg.RobustLeastSquares(a, rhs, 0)
		if rerr == nil {
			mCalRobustFit.Inc()
			robRes := relResidual(rows, rob, rhs)
			c.cfg.Obs.Warn("calibration fit residual above threshold; using robust IRLS fit",
				"stage", stage, "cpu", shares.CPU, "mem", shares.Memory, "io", shares.IO,
				"residual", res, "robust_residual", robRes)
			return rob, robRes, nil
		}
	}
	return sol, res, nil
}

// measure runs the full probe suite at one allocation. sp is the
// enclosing per-point trace span (nil-safe); each stage gets a child and
// the point span is annotated with the total trial attempts (retries
// included).
func (c *Calibrator) measure(ctx context.Context, shares vm.Shares, sp *obs.Span) (optimizer.Params, error) {
	attempts := 0
	defer func() { sp.SetArg("attempts", attempts) }()

	// --- Stage A: warm CPU probes on the narrow table ---
	spA := sp.Child("calibrate.stage_a.cpu")
	warm, err := c.newMeasureSession(shares)
	if err != nil {
		return optimizer.Params{}, err
	}
	T := c.narrowRows
	K := math.Floor(T / 20) // index probe range size
	cpuProbes := []struct {
		query string
		coef  []float64 // [tTup, tOp, tIdxTup]
	}{
		// max(a): per row 1 tuple + 1 aggregate transition.
		{"SELECT max(a) FROM cal_narrow", []float64{T, T, 0}},
		// Two always-true filter operators on top.
		{"SELECT max(a) FROM cal_narrow WHERE b < c AND c < 999999", []float64{T, 3 * T, 0}},
		// Three filter operators.
		{"SELECT max(a) FROM cal_narrow WHERE b < c AND c < 999999 AND b < 888888", []float64{T, 4 * T, 0}},
		// Correlated index range: K index entries + K tuples + K agg ops.
		{fmt.Sprintf("SELECT max(a) FROM cal_narrow WHERE a BETWEEN 0 AND %d", int64(K)-1), []float64{K, K, K}},
	}
	var rows [][]float64
	var rhs []float64
	for _, pr := range cpuProbes {
		// First run warms the cache; the trials measure the steady state.
		if _, err := timeQuery(warm, pr.query); err != nil {
			return optimizer.Params{}, fmt.Errorf("calibration: probe %q: %w", pr.query, err)
		}
		pq := pr.query
		el, err := c.measureProbe(ctx, probeKey("stage_a", pq, shares), &attempts, func() (float64, error) {
			return timeQuery(warm, pq)
		})
		if err != nil {
			return optimizer.Params{}, fmt.Errorf("calibration: probe %q: %w", pq, err)
		}
		rows = append(rows, pr.coef)
		rhs = append(rhs, el)
	}
	cpuSol, resA, err := c.fitStage("cpu", rows, rhs, shares)
	if err != nil {
		return optimizer.Params{}, err
	}
	tTup, tOp, tIdxTup := cpuSol[0], cpuSol[1], cpuSol[2]
	if tTup <= 0 || tOp <= 0 || tIdxTup <= 0 {
		return optimizer.Params{}, fmt.Errorf("calibration: CPU stage at shares %v: non-positive CPU parameters %v", shares, cpuSol)
	}
	gResidualCPU.Set(resA)
	spA.SetArg("residual", resA)
	spA.End()
	c.cfg.Obs.Debug("calibration CPU fit",
		"cpu", shares.CPU, "mem", shares.Memory, "io", shares.IO,
		"t_tuple", tTup, "t_op", tOp, "t_idx_tuple", tIdxTup, "residual", resA)

	// --- Stage B: cold sequential scans of the big table ---
	spB := sp.Child("calibrate.stage_b.seq")
	// elapsed = pages*tSeq + gamma*cpu, with cpu predicted from stage A
	// and gamma the effective (1 - overlap) factor.
	R := c.bigRows
	S := c.bigPages
	bigProbes := []struct {
		query string
		cpu   float64
	}{
		{"SELECT max(a) FROM cal_big", R * (tTup + tOp)},
		{"SELECT max(a) FROM cal_big WHERE b < c AND c < 999999", R * (tTup + 3*tOp)},
		{"SELECT max(a) FROM cal_big WHERE b < c AND c < 999999 AND b < 888888 AND b < 777777", R * (tTup + 5*tOp)},
	}
	rows = rows[:0]
	rhs = rhs[:0]
	for _, pr := range bigProbes {
		planCheck, err := c.newMeasureSession(shares)
		if err != nil {
			return optimizer.Params{}, err
		}
		if err := requirePlanNode(planCheck, pr.query, "SeqScan"); err != nil {
			return optimizer.Params{}, err
		}
		pq := pr.query
		el, err := c.measureProbe(ctx, probeKey("stage_b", pq, shares), &attempts, func() (float64, error) {
			cold, err := c.newMeasureSession(shares)
			if err != nil {
				return 0, err
			}
			return timeQuery(cold, pq)
		})
		if err != nil {
			return optimizer.Params{}, fmt.Errorf("calibration: probe %q: %w", pq, err)
		}
		rows = append(rows, []float64{S, pr.cpu})
		rhs = append(rhs, el)
	}
	seqSol, resB, err := c.fitStage("seq", rows, rhs, shares)
	if err != nil {
		return optimizer.Params{}, err
	}
	tSeq, gamma := seqSol[0], seqSol[1]
	if tSeq <= 0 {
		return optimizer.Params{}, fmt.Errorf("calibration: seq stage at shares %v: non-positive tSeq %g", shares, tSeq)
	}
	if gamma < 0 {
		gamma = 0
	}
	gResidualSeqScan.Set(resB)
	spB.SetArg("residual", resB)
	spB.End()
	c.cfg.Obs.Debug("calibration seq fit",
		"cpu", shares.CPU, "mem", shares.Memory, "io", shares.IO,
		"t_seq", tSeq, "gamma", gamma, "residual", resB)

	// --- Stage C: cold random index probe ---
	spC := sp.Child("calibrate.stage_c.rand")
	planCheck, err := c.newMeasureSession(shares)
	if err != nil {
		return optimizer.Params{}, err
	}
	probe := fmt.Sprintf("SELECT count(*) FROM cal_big WHERE r BETWEEN %d AND %d", c.randLo, c.randHi)
	if err := requirePlanNode(planCheck, probe, "IndexScan"); err != nil {
		return optimizer.Params{}, err
	}
	el, err := c.measureProbe(ctx, probeKey("stage_c", probe, shares), &attempts, func() (float64, error) {
		cold, err := c.newMeasureSession(shares)
		if err != nil {
			return 0, err
		}
		return timeQuery(cold, probe)
	})
	if err != nil {
		return optimizer.Params{}, fmt.Errorf("calibration: random probe: %w", err)
	}
	kk := c.randK
	cpuC := kk * (tIdxTup + tTup + tOp)
	// K heap pages (scattered) plus tree descent and a few leaf pages.
	denom := kk + 4
	tRand := (el - gamma*cpuC) / denom
	if tRand <= tSeq {
		// A degenerate measurement (e.g. everything cached); random reads
		// are never cheaper than sequential ones.
		tRand = tSeq
	}
	spC.SetArg("t_rand", tRand)
	spC.End()

	// --- Stage D: write-path probes ---
	// Two insert workloads with identical logical work: wRows autocommit
	// single-row transactions (wRows log flushes) against one explicit
	// transaction of wRows inserts (one flush). The elapsed difference per
	// extra flush is the marginal commit latency — TimePerLogFlush, the
	// group-commit saving write-bound tenants are sensitive to. The batch
	// run also reports durable log bytes per logical tuple byte: WriteAmp.
	spD := sp.Child("calibrate.stage_d.write")
	const wRows = 64
	var logicalBytes, logBytes int64
	runWrite := func(batch bool) (float64, error) {
		m, err := vm.NewMachine(c.cfg.Machine)
		if err != nil {
			return 0, err
		}
		v, err := m.NewVM("cal-write", shares)
		if err != nil {
			return 0, err
		}
		wdb := engine.NewDatabase()
		if err := wdb.EnableLogging(wal.NewMemDevice(), 1); err != nil {
			return 0, err
		}
		ws, err := engine.NewSession(wdb, v, c.cfg.Engine)
		if err != nil {
			return 0, err
		}
		if _, err := ws.Exec(`CREATE TABLE cal_write (a INT, b INT)`); err != nil {
			return 0, err
		}
		_, bytesBefore := wdb.LogStats()
		start := v.Snapshot()
		if batch {
			if _, err := ws.Exec("BEGIN"); err != nil {
				return 0, err
			}
		}
		var lb int64
		for i := 0; i < wRows; i++ {
			if _, err := ws.Exec(fmt.Sprintf("INSERT INTO cal_write VALUES (%d, %d)", i, i*7)); err != nil {
				return 0, err
			}
			lb += int64(len(storage.EncodeTuple(storage.Tuple{
				types.NewInt(int64(i)), types.NewInt(int64(i * 7)),
			})))
		}
		if batch {
			if _, err := ws.Exec("COMMIT"); err != nil {
				return 0, err
			}
		}
		el := v.ElapsedSince(start)
		if batch {
			_, bytesAfter := wdb.LogStats()
			logicalBytes, logBytes = lb, bytesAfter-bytesBefore
		}
		return el, nil
	}
	elSingle, err := c.measureProbe(ctx, probeKey("stage_d", "write-autocommit", shares), &attempts, func() (float64, error) {
		return runWrite(false)
	})
	if err != nil {
		return optimizer.Params{}, fmt.Errorf("calibration: write probe (autocommit): %w", err)
	}
	elBatch, err := c.measureProbe(ctx, probeKey("stage_d", "write-batch", shares), &attempts, func() (float64, error) {
		return runWrite(true)
	})
	if err != nil {
		return optimizer.Params{}, fmt.Errorf("calibration: write probe (batch): %w", err)
	}
	tFlush := (elSingle - elBatch) / (wRows - 1)
	if tFlush < 0 {
		tFlush = 0
	}
	writeAmp := 1.0
	if logicalBytes > 0 && logBytes > logicalBytes {
		writeAmp = float64(logBytes) / float64(logicalBytes)
	}
	spD.SetArg("t_flush", tFlush)
	spD.SetArg("write_amp", writeAmp)
	spD.End()
	c.cfg.Obs.Debug("calibration write fit",
		"cpu", shares.CPU, "mem", shares.Memory, "io", shares.IO,
		"t_flush", tFlush, "write_amp", writeAmp)

	// --- Assemble P(R) ---
	sess, err := c.newMeasureSession(shares)
	if err != nil {
		return optimizer.Params{}, err
	}
	overlap := 1 - gamma
	if overlap < 0 {
		overlap = 0
	}
	if overlap > 1 {
		overlap = 1
	}
	p := optimizer.Params{
		SeqPageCost:             1,
		RandomPageCost:          tRand / tSeq,
		CPUTupleCost:            tTup / tSeq,
		CPUIndexTupleCost:       tIdxTup / tSeq,
		CPUOperatorCost:         tOp / tSeq,
		EffectiveCacheSizePages: sess.Params.EffectiveCacheSizePages,
		WorkMemBytes:            sess.Params.WorkMemBytes,
		TimePerSeqPage:          tSeq,
		Overlap:                 overlap,
		TimePerLogFlush:         tFlush,
		WriteAmp:                writeAmp,
	}
	if err := p.Validate(); err != nil {
		return optimizer.Params{}, fmt.Errorf("calibration: %w", err)
	}
	c.measures.Add(1)
	return p, nil
}

// relResidual is the relative RMS residual ‖A·x − b‖/‖b‖ of a
// least-squares fit — the calibration's per-stage goodness-of-fit number
// exported as a gauge and logged per lattice point.
func relResidual(rows [][]float64, x, b []float64) float64 {
	var num, den float64
	for i, row := range rows {
		pred := 0.0
		for j, a := range row {
			pred += a * x[j]
		}
		d := pred - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}
