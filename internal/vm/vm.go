// Package vm simulates a virtual machine monitor (hypervisor) that
// partitions one physical machine's CPU, memory, and I/O bandwidth among
// virtual machines according to configurable shares.
//
// The simulator is deterministic: instead of consuming real wall-clock
// time, workloads charge abstract work units (CPU operations, page reads,
// page writes) to their VM, and the VM converts those units into simulated
// seconds using the machine's capacity scaled by the VM's resource shares.
// This mirrors the mechanisms of a share-based hypervisor scheduler such as
// Xen's credit scheduler: a VM with a 25% CPU share executes CPU work at a
// quarter of the machine rate, a VM with a 50% I/O share moves pages at
// half the disk rate, and a VM's memory share bounds how much RAM (buffer
// pool) it may use.
//
// Accounting is counter-based: Account* calls only accumulate exact work
// counters (ops, pages), and simulated seconds are derived lazily at
// Snapshot time by dividing each counter by the effective rate of the
// current share epoch. SetShares folds the seconds of the finished epoch
// into a running total and marks a new epoch. Because every charge in the
// engine is integer-valued, the counters are exact regardless of how work
// is grouped into Account* calls — charging 300 ops once per tuple or
// 300×n once per batch yields bit-identical derived seconds, which is what
// lets the vectorized executor keep costs bit-identical to tuple-at-a-time
// execution.
//
// Two second-order effects of real hypervisors are modeled because the
// paper's measurements depend on them:
//
//   - Scheduling overhead: when a VM holds less than the whole CPU, domain
//     switches, cache pollution, and dispatch latency waste a fraction of
//     its nominal share. This is the SchedOverhead knob; it makes observed
//     CPU slowdowns super-linear in 1/share, as in the paper's Figure 4
//     where TPC-H Q13 doubles its speed going from a 50% to a 75% share.
//   - Virtualized I/O cost: each I/O request costs extra CPU operations in
//     the VM (hypercall/domain-crossing overhead), the HypervisorIOOps knob.
package vm

import (
	"fmt"
	"math"
	"sync"
)

// Resource identifies one of the physical resources whose share a VM holds.
type Resource int

// The resources controlled by the virtual machine monitor.
const (
	CPU Resource = iota
	Memory
	IO
	NumResources // number of controllable resources
)

// String returns the conventional lower-case name of the resource.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case IO:
		return "io"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// Shares is one VM's fraction of each physical resource. Each component is
// in (0, 1]. Shares of all VMs on a machine should sum to at most 1 per
// resource; see Machine.ValidateShares.
type Shares struct {
	CPU    float64
	Memory float64
	IO     float64
}

// Equal splits every resource evenly across n virtual machines.
func Equal(n int) Shares {
	f := 1.0 / float64(n)
	return Shares{CPU: f, Memory: f, IO: f}
}

// Get returns the share of the given resource.
func (s Shares) Get(r Resource) float64 {
	switch r {
	case CPU:
		return s.CPU
	case Memory:
		return s.Memory
	case IO:
		return s.IO
	default:
		panic("vm: unknown resource " + r.String())
	}
}

// With returns a copy of s with the share of resource r replaced by v.
func (s Shares) With(r Resource, v float64) Shares {
	switch r {
	case CPU:
		s.CPU = v
	case Memory:
		s.Memory = v
	case IO:
		s.IO = v
	default:
		panic("vm: unknown resource " + r.String())
	}
	return s
}

// Valid reports whether every share is in (0, 1].
func (s Shares) Valid() bool {
	for r := Resource(0); r < NumResources; r++ {
		v := s.Get(r)
		if v <= 0 || v > 1 || math.IsNaN(v) {
			return false
		}
	}
	return true
}

// String formats the shares as percentages.
func (s Shares) String() string {
	return fmt.Sprintf("cpu=%.0f%% mem=%.0f%% io=%.0f%%", s.CPU*100, s.Memory*100, s.IO*100)
}

// MachineConfig describes the capacity of the physical machine underneath
// the hypervisor. The defaults are loosely modeled on the paper's testbed
// (dual 2.8 GHz Xeon, 4 GB RAM, a single commodity disk), except that the
// memory size is an experiment parameter: the interesting regimes occur
// when some relations exceed the buffer pool.
type MachineConfig struct {
	// CPUOpsPerSec is the abstract CPU capacity of the whole machine.
	CPUOpsPerSec float64
	// SeqPagesPerSec is the sequential page-read rate of the disk.
	SeqPagesPerSec float64
	// RandPagesPerSec is the random page-read rate of the disk.
	RandPagesPerSec float64
	// WritePagesPerSec is the page-write rate of the disk.
	WritePagesPerSec float64
	// LogFlushSeconds is the latency of one write-ahead-log fsync
	// (command queuing, controller cache flush, rotational settle). It is
	// charged per commit flush, scaled by the VM's I/O share, and is what
	// makes commit-heavy OLTP tenants sensitive to the I/O allocation.
	LogFlushSeconds float64
	// MemBytes is the physical RAM available to be divided among VMs.
	MemBytes int64
	// HypervisorIOOps is the CPU-operation cost charged to a VM for every
	// I/O request, modeling hypercall and domain-crossing overhead.
	HypervisorIOOps float64
	// SchedOverhead in [0,1) models scheduler inefficiency at partial CPU
	// shares: the effective CPU rate of a VM with share s is
	// CPUOpsPerSec * s * (1 - SchedOverhead*(1-s)). At s=1 there is no
	// penalty. Larger values make CPU-bound slowdowns super-linear in
	// 1/s, as observed on real hypervisors.
	SchedOverhead float64
	// Overlap in [0,1] is the fraction of CPU and I/O time that can
	// proceed concurrently (prefetching, asynchronous I/O). 0 means fully
	// serial execution (elapsed = cpu + io); 1 means perfect overlap
	// (elapsed = max(cpu, io)).
	Overlap float64
}

// DefaultMachineConfig returns the configuration used throughout the
// experiments: 1e9 abstract ops/s, a 20 MB/s sequential disk (2560 8 KiB
// pages/s — commodity 2006 hardware under a hypervisor), 120 random
// pages/s, and 64 MiB of RAM. Memory is scaled down together with the
// workload data: what matters for the experiments is the ratio between
// relation sizes and the buffer pool, chosen so the TPC-H-like lineitem
// relation exceeds a half-machine buffer pool while orders+customer fit,
// just as the paper's 4 GB database related to its 2 GB VM.
func DefaultMachineConfig() MachineConfig {
	return MachineConfig{
		CPUOpsPerSec:     1e9,
		SeqPagesPerSec:   2560,
		RandPagesPerSec:  120,
		WritePagesPerSec: 2560,
		LogFlushSeconds:  0.004,
		MemBytes:         64 << 20,
		HypervisorIOOps:  2000,
		SchedOverhead:    0.65,
		Overlap:          0.75,
	}
}

// Validate reports whether the configuration is usable.
func (c MachineConfig) Validate() error {
	switch {
	case c.CPUOpsPerSec <= 0:
		return fmt.Errorf("vm: CPUOpsPerSec must be positive, got %g", c.CPUOpsPerSec)
	case c.SeqPagesPerSec <= 0:
		return fmt.Errorf("vm: SeqPagesPerSec must be positive, got %g", c.SeqPagesPerSec)
	case c.RandPagesPerSec <= 0:
		return fmt.Errorf("vm: RandPagesPerSec must be positive, got %g", c.RandPagesPerSec)
	case c.WritePagesPerSec <= 0:
		return fmt.Errorf("vm: WritePagesPerSec must be positive, got %g", c.WritePagesPerSec)
	case c.LogFlushSeconds < 0:
		return fmt.Errorf("vm: LogFlushSeconds must be non-negative, got %g", c.LogFlushSeconds)
	case c.MemBytes <= 0:
		return fmt.Errorf("vm: MemBytes must be positive, got %d", c.MemBytes)
	case c.HypervisorIOOps < 0:
		return fmt.Errorf("vm: HypervisorIOOps must be non-negative, got %g", c.HypervisorIOOps)
	case c.SchedOverhead < 0 || c.SchedOverhead >= 1:
		return fmt.Errorf("vm: SchedOverhead must be in [0,1), got %g", c.SchedOverhead)
	case c.Overlap < 0 || c.Overlap > 1:
		return fmt.Errorf("vm: Overlap must be in [0,1], got %g", c.Overlap)
	}
	return nil
}

// Machine is the simulated physical machine. VMs are created on it with
// NewVM; the machine tracks them so that over-commitment of shares can be
// detected.
type Machine struct {
	cfg MachineConfig

	mu  sync.Mutex
	vms []*VM
}

// NewMachine creates a machine with the given configuration.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg}, nil
}

// MustMachine is NewMachine that panics on configuration errors; intended
// for tests and examples with literal configs.
func MustMachine(cfg MachineConfig) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() MachineConfig { return m.cfg }

// VMs returns the virtual machines created on this machine.
func (m *Machine) VMs() []*VM {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*VM(nil), m.vms...)
}

// ValidateShares reports an error if adding a VM with shares s would
// over-commit any resource, taking the existing VMs into account.
func (m *Machine) ValidateShares(s Shares) error {
	if !s.Valid() {
		return fmt.Errorf("vm: invalid shares %v", s)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.validateSharesLocked(s, nil)
}

// validateSharesLocked checks total shares with exclude's current shares
// ignored (used when reconfiguring an existing VM).
func (m *Machine) validateSharesLocked(s Shares, exclude *VM) error {
	const eps = 1e-9
	for r := Resource(0); r < NumResources; r++ {
		total := s.Get(r)
		for _, v := range m.vms {
			if v == exclude {
				continue
			}
			total += v.Shares().Get(r)
		}
		if total > 1+eps {
			return fmt.Errorf("vm: resource %s over-committed: total share %.3f > 1", r, total)
		}
	}
	return nil
}

// NewVM creates a virtual machine with the given name and resource shares.
// It fails if the shares are invalid or would over-commit the machine.
func (m *Machine) NewVM(name string, s Shares) (*VM, error) {
	if !s.Valid() {
		return nil, fmt.Errorf("vm: invalid shares %v for %q", s, name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.validateSharesLocked(s, nil); err != nil {
		return nil, fmt.Errorf("vm: cannot create %q: %w", name, err)
	}
	v := &VM{name: name, machine: m, shares: s}
	m.vms = append(m.vms, v)
	return v, nil
}

// Usage is a point-in-time snapshot of a VM's accumulated work, used to
// measure intervals: take a snapshot, run a workload, and subtract.
type Usage struct {
	CPUSeconds float64 // simulated seconds of CPU time
	IOSeconds  float64 // simulated seconds of I/O time
	CPUOps     float64 // raw CPU operations charged
	SeqReads   int64   // sequential page reads
	RandReads  int64   // random page reads
	Writes     int64   // page writes
	LogFlushes int64   // write-ahead-log fsyncs
}

// Elapsed returns the simulated wall-clock seconds corresponding to this
// usage under the machine's CPU/I-O overlap model.
func (u Usage) Elapsed(overlap float64) float64 {
	lo := math.Min(u.CPUSeconds, u.IOSeconds)
	return u.CPUSeconds + u.IOSeconds - overlap*lo
}

// Sub returns the usage accumulated between snapshot o (earlier) and u.
func (u Usage) Sub(o Usage) Usage {
	return Usage{
		CPUSeconds: u.CPUSeconds - o.CPUSeconds,
		IOSeconds:  u.IOSeconds - o.IOSeconds,
		CPUOps:     u.CPUOps - o.CPUOps,
		SeqReads:   u.SeqReads - o.SeqReads,
		RandReads:  u.RandReads - o.RandReads,
		Writes:     u.Writes - o.Writes,
		LogFlushes: u.LogFlushes - o.LogFlushes,
	}
}

// Add returns the component-wise sum of u and o; used to accumulate
// per-interval deltas (e.g. EXPLAIN ANALYZE's per-operator usage).
func (u Usage) Add(o Usage) Usage {
	return Usage{
		CPUSeconds: u.CPUSeconds + o.CPUSeconds,
		IOSeconds:  u.IOSeconds + o.IOSeconds,
		CPUOps:     u.CPUOps + o.CPUOps,
		SeqReads:   u.SeqReads + o.SeqReads,
		RandReads:  u.RandReads + o.RandReads,
		Writes:     u.Writes + o.Writes,
		LogFlushes: u.LogFlushes + o.LogFlushes,
	}
}

// VM is a virtual machine: a set of resource shares plus a simulated clock
// that accumulates the cost of work charged to it. A VM is not safe for
// concurrent use by multiple goroutines; each simulated workload drives its
// VM from one goroutine (distinct VMs may run in parallel).
//
// Work is recorded as exact counters; seconds are derived on Snapshot from
// the counters accumulated in the current share epoch, plus the folded
// seconds of earlier epochs (see SetShares).
type VM struct {
	name    string
	machine *Machine

	mu     sync.RWMutex // guards shares (reconfigurable at runtime)
	shares Shares

	// Work counters. Every charge in the engine is integer-valued, so
	// these sums are exact and independent of charge granularity.
	cpuOps     float64
	seqReads   int64
	randReads  int64
	writes     int64
	logFlushes int64

	// foldedCPU/foldedIO are the derived seconds of completed share
	// epochs; the *Mark fields are the counter values at the start of the
	// current epoch.
	foldedCPU float64
	foldedIO  float64
	cpuMark   float64
	seqMark   int64
	randMark  int64
	writeMark int64
	flushMark int64
}

// Name returns the VM's name.
func (v *VM) Name() string { return v.name }

// Machine returns the physical machine hosting this VM.
func (v *VM) Machine() *Machine { return v.machine }

// Shares returns the VM's current resource shares.
func (v *VM) Shares() Shares {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.shares
}

// SetShares reconfigures the VM's resource shares at runtime (the dynamic
// reallocation mechanism of the paper's Section 7). It fails if the new
// shares would over-commit the machine. The seconds of the finished share
// epoch are folded into the VM's running totals before the new shares take
// effect, so work charged before the change is priced at the old rates.
func (v *VM) SetShares(s Shares) error {
	if !s.Valid() {
		return fmt.Errorf("vm: invalid shares %v for %q", s, v.name)
	}
	v.machine.mu.Lock()
	defer v.machine.mu.Unlock()
	if err := v.machine.validateSharesLocked(s, v); err != nil {
		return fmt.Errorf("vm: cannot reconfigure %q: %w", v.name, err)
	}
	v.mu.Lock()
	cpu, io := v.pendingLocked()
	v.foldedCPU += cpu
	v.foldedIO += io
	v.cpuMark = v.cpuOps
	v.seqMark = v.seqReads
	v.randMark = v.randReads
	v.writeMark = v.writes
	v.flushMark = v.logFlushes
	v.shares = s
	v.mu.Unlock()
	return nil
}

// MemBytes returns the RAM available to this VM: its memory share of the
// machine's physical memory.
func (v *VM) MemBytes() int64 {
	return int64(float64(v.machine.cfg.MemBytes) * v.Shares().Memory)
}

// effCPURateFor is the effective CPU rate in ops/s at share s, including
// the scheduler-overhead penalty for partial shares.
func effCPURateFor(cfg MachineConfig, s float64) float64 {
	return cfg.CPUOpsPerSec * s * (1 - cfg.SchedOverhead*(1-s))
}

// effCPURate returns the VM's effective CPU rate in ops/s under its
// current shares.
func (v *VM) effCPURate() float64 {
	return effCPURateFor(v.machine.cfg, v.Shares().CPU)
}

// pendingLocked derives the CPU and I/O seconds of the work charged in the
// current share epoch. Caller holds v.mu (read or write).
func (v *VM) pendingLocked() (cpuSec, ioSec float64) {
	cfg := v.machine.cfg
	cpuSec = (v.cpuOps - v.cpuMark) / effCPURateFor(cfg, v.shares.CPU)
	ioShare := v.shares.IO
	ioSec = float64(v.seqReads-v.seqMark)/(cfg.SeqPagesPerSec*ioShare) +
		float64(v.randReads-v.randMark)/(cfg.RandPagesPerSec*ioShare) +
		float64(v.writes-v.writeMark)/(cfg.WritePagesPerSec*ioShare) +
		float64(v.logFlushes-v.flushMark)*cfg.LogFlushSeconds/ioShare
	return cpuSec, ioSec
}

// AccountCPU charges n abstract CPU operations to the VM.
func (v *VM) AccountCPU(ops float64) {
	if ops <= 0 {
		return
	}
	v.cpuOps += ops
}

// AccountSeqRead charges sequential page reads (plus the hypervisor's
// per-request CPU overhead).
func (v *VM) AccountSeqRead(pages int) {
	if pages <= 0 {
		return
	}
	v.seqReads += int64(pages)
	v.cpuOps += v.machine.cfg.HypervisorIOOps * float64(pages)
}

// AccountRandRead charges random page reads.
func (v *VM) AccountRandRead(pages int) {
	if pages <= 0 {
		return
	}
	v.randReads += int64(pages)
	v.cpuOps += v.machine.cfg.HypervisorIOOps * float64(pages)
}

// AccountWrite charges page writes.
func (v *VM) AccountWrite(pages int) {
	if pages <= 0 {
		return
	}
	v.writes += int64(pages)
	v.cpuOps += v.machine.cfg.HypervisorIOOps * float64(pages)
}

// AccountLogFlush charges write-ahead-log fsyncs (plus the hypervisor's
// per-request CPU overhead).
func (v *VM) AccountLogFlush(flushes int) {
	if flushes <= 0 {
		return
	}
	v.logFlushes += int64(flushes)
	v.cpuOps += v.machine.cfg.HypervisorIOOps * float64(flushes)
}

// Snapshot returns the VM's accumulated usage so far, deriving seconds
// from the work counters.
func (v *VM) Snapshot() Usage {
	v.mu.RLock()
	defer v.mu.RUnlock()
	cpu, io := v.pendingLocked()
	return Usage{
		CPUSeconds: v.foldedCPU + cpu,
		IOSeconds:  v.foldedIO + io,
		CPUOps:     v.cpuOps,
		SeqReads:   v.seqReads,
		RandReads:  v.randReads,
		Writes:     v.writes,
		LogFlushes: v.logFlushes,
	}
}

// Since returns the usage accumulated since the given snapshot.
func (v *VM) Since(start Usage) Usage { return v.Snapshot().Sub(start) }

// Elapsed returns the total simulated wall-clock seconds of the VM under
// the machine's overlap model.
func (v *VM) Elapsed() float64 { return v.Snapshot().Elapsed(v.machine.cfg.Overlap) }

// ElapsedSince returns the simulated wall-clock seconds between the given
// snapshot and now.
func (v *VM) ElapsedSince(start Usage) float64 {
	return v.Snapshot().Sub(start).Elapsed(v.machine.cfg.Overlap)
}

// Rates describes the effective resource rates a VM sees under its current
// shares; used by the calibration analysis and by tests.
type Rates struct {
	CPUOpsPerSec     float64
	SeqPagesPerSec   float64
	RandPagesPerSec  float64
	WritePagesPerSec float64
}

// EffectiveRates returns the VM's effective rates under its current shares.
func (v *VM) EffectiveRates() Rates {
	cfg := v.machine.cfg
	s := v.Shares()
	return Rates{
		CPUOpsPerSec:     v.effCPURate(),
		SeqPagesPerSec:   cfg.SeqPagesPerSec * s.IO,
		RandPagesPerSec:  cfg.RandPagesPerSec * s.IO,
		WritePagesPerSec: cfg.WritePagesPerSec * s.IO,
	}
}
