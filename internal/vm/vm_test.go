package vm

import (
	"math"
	"testing"
	"testing/quick"
)

func testConfig() MachineConfig {
	cfg := DefaultMachineConfig()
	cfg.SchedOverhead = 0 // linear sharing unless a test opts in
	cfg.HypervisorIOOps = 0
	cfg.Overlap = 0
	return cfg
}

func TestResourceString(t *testing.T) {
	cases := map[Resource]string{CPU: "cpu", Memory: "memory", IO: "io", Resource(9): "resource(9)"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Resource(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestSharesEqual(t *testing.T) {
	s := Equal(4)
	for r := Resource(0); r < NumResources; r++ {
		if s.Get(r) != 0.25 {
			t.Errorf("Equal(4).Get(%s) = %g, want 0.25", r, s.Get(r))
		}
	}
}

func TestSharesWithAndGet(t *testing.T) {
	s := Equal(2).With(CPU, 0.75).With(IO, 0.1)
	if s.CPU != 0.75 || s.Memory != 0.5 || s.IO != 0.1 {
		t.Errorf("unexpected shares after With: %+v", s)
	}
	if s.Get(CPU) != 0.75 || s.Get(Memory) != 0.5 || s.Get(IO) != 0.1 {
		t.Errorf("Get mismatch: %+v", s)
	}
}

func TestSharesValid(t *testing.T) {
	cases := []struct {
		s    Shares
		want bool
	}{
		{Shares{0.5, 0.5, 0.5}, true},
		{Shares{1, 1, 1}, true},
		{Shares{0, 0.5, 0.5}, false},
		{Shares{0.5, -0.1, 0.5}, false},
		{Shares{0.5, 0.5, 1.01}, false},
		{Shares{math.NaN(), 0.5, 0.5}, false},
	}
	for _, c := range cases {
		if got := c.s.Valid(); got != c.want {
			t.Errorf("Valid(%+v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestMachineConfigValidate(t *testing.T) {
	good := DefaultMachineConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*MachineConfig){
		func(c *MachineConfig) { c.CPUOpsPerSec = 0 },
		func(c *MachineConfig) { c.SeqPagesPerSec = -1 },
		func(c *MachineConfig) { c.RandPagesPerSec = 0 },
		func(c *MachineConfig) { c.WritePagesPerSec = 0 },
		func(c *MachineConfig) { c.MemBytes = 0 },
		func(c *MachineConfig) { c.HypervisorIOOps = -5 },
		func(c *MachineConfig) { c.SchedOverhead = 1 },
		func(c *MachineConfig) { c.Overlap = 1.5 },
	}
	for i, mutate := range bad {
		c := DefaultMachineConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error, got nil", i)
		}
		if _, err := NewMachine(c); err == nil {
			t.Errorf("case %d: NewMachine accepted invalid config", i)
		}
	}
}

func TestNewVMOverCommit(t *testing.T) {
	m := MustMachine(testConfig())
	if _, err := m.NewVM("a", Shares{0.6, 0.5, 0.5}); err != nil {
		t.Fatalf("first VM: %v", err)
	}
	if _, err := m.NewVM("b", Shares{0.5, 0.5, 0.5}); err == nil {
		t.Fatal("expected CPU over-commit error, got nil")
	}
	if _, err := m.NewVM("b", Shares{0.4, 0.5, 0.5}); err != nil {
		t.Fatalf("second VM within capacity: %v", err)
	}
	if got := len(m.VMs()); got != 2 {
		t.Errorf("len(VMs) = %d, want 2", got)
	}
}

func TestNewVMInvalidShares(t *testing.T) {
	m := MustMachine(testConfig())
	if _, err := m.NewVM("a", Shares{0, 0.5, 0.5}); err == nil {
		t.Fatal("expected invalid-share error")
	}
}

func TestValidateShares(t *testing.T) {
	m := MustMachine(testConfig())
	if err := m.ValidateShares(Shares{1, 1, 1}); err != nil {
		t.Fatalf("full machine for first VM should be fine: %v", err)
	}
	if _, err := m.NewVM("a", Equal(2)); err != nil {
		t.Fatal(err)
	}
	if err := m.ValidateShares(Shares{0.6, 0.5, 0.5}); err == nil {
		t.Fatal("expected over-commit error")
	}
	if err := m.ValidateShares(Shares{-1, 0.5, 0.5}); err == nil {
		t.Fatal("expected invalid-share error")
	}
}

func TestCPUAccountingScalesWithShare(t *testing.T) {
	cfg := testConfig()
	m := MustMachine(cfg)
	half, _ := m.NewVM("half", Shares{0.5, 0.5, 0.5})
	quarter, _ := m.NewVM("quarter", Shares{0.25, 0.25, 0.25})

	half.AccountCPU(1e9)
	quarter.AccountCPU(1e9)

	wantHalf := 1e9 / (cfg.CPUOpsPerSec * 0.5)
	wantQuarter := 1e9 / (cfg.CPUOpsPerSec * 0.25)
	if got := half.Snapshot().CPUSeconds; !close(got, wantHalf) {
		t.Errorf("half share cpu seconds = %g, want %g", got, wantHalf)
	}
	if got := quarter.Snapshot().CPUSeconds; !close(got, wantQuarter) {
		t.Errorf("quarter share cpu seconds = %g, want %g", got, wantQuarter)
	}
	if !close(quarter.Snapshot().CPUSeconds/half.Snapshot().CPUSeconds, 2) {
		t.Errorf("quarter share should be 2x slower than half share")
	}
}

func TestSchedOverheadSuperLinear(t *testing.T) {
	cfg := testConfig()
	cfg.SchedOverhead = 0.65
	m := MustMachine(cfg)
	v50, _ := m.NewVM("v50", Shares{0.5, 0.5, 0.5})
	v75, _ := m.NewVM("v75", Shares{0.5, 0.5, 0.5})
	if err := v75.SetShares(Shares{0.5, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	// Measure per-op time at 50% vs 75% CPU share. With SchedOverhead the
	// speedup from 50% -> 75% must exceed the linear ratio of 1.5.
	v50.AccountCPU(1e9)
	if err := v75.SetShares(Shares{0.75, 0.5, 0.5}); err == nil {
		t.Fatal("expected over-commit (v50 already holds 0.5 CPU)")
	}
	// Recreate on a fresh machine to avoid over-commit bookkeeping.
	m2 := MustMachine(cfg)
	w75, _ := m2.NewVM("w75", Shares{0.75, 0.5, 0.5})
	w75.AccountCPU(1e9)
	speedup := v50.Snapshot().CPUSeconds / w75.Snapshot().CPUSeconds
	if speedup <= 1.5 {
		t.Errorf("speedup 50%%->75%% = %.3f, want > 1.5 (super-linear)", speedup)
	}
	if speedup >= 2.5 {
		t.Errorf("speedup 50%%->75%% = %.3f, implausibly large", speedup)
	}
}

func TestIOAccounting(t *testing.T) {
	cfg := testConfig()
	m := MustMachine(cfg)
	v, _ := m.NewVM("v", Shares{0.5, 0.5, 0.5})
	v.AccountSeqRead(1024)
	wantIO := 1024 / (cfg.SeqPagesPerSec * 0.5)
	u := v.Snapshot()
	if !close(u.IOSeconds, wantIO) {
		t.Errorf("io seconds = %g, want %g", u.IOSeconds, wantIO)
	}
	if u.SeqReads != 1024 {
		t.Errorf("seq reads = %d, want 1024", u.SeqReads)
	}
	v.AccountRandRead(16)
	v.AccountWrite(32)
	u = v.Snapshot()
	if u.RandReads != 16 || u.Writes != 32 {
		t.Errorf("rand=%d writes=%d, want 16/32", u.RandReads, u.Writes)
	}
	wantIO += 16/(cfg.RandPagesPerSec*0.5) + 32/(cfg.WritePagesPerSec*0.5)
	if !close(u.IOSeconds, wantIO) {
		t.Errorf("io seconds after rand+write = %g, want %g", u.IOSeconds, wantIO)
	}
}

func TestHypervisorIOOverheadChargesCPU(t *testing.T) {
	cfg := testConfig()
	cfg.HypervisorIOOps = 2000
	m := MustMachine(cfg)
	v, _ := m.NewVM("v", Shares{1, 1, 1})
	v.AccountSeqRead(10)
	u := v.Snapshot()
	if want := 20000.0; u.CPUOps != want {
		t.Errorf("cpu ops from io overhead = %g, want %g", u.CPUOps, want)
	}
	if u.CPUSeconds <= 0 {
		t.Error("expected positive cpu seconds from hypervisor overhead")
	}
}

func TestOverlapModel(t *testing.T) {
	for _, overlap := range []float64{0, 0.5, 1} {
		cfg := testConfig()
		cfg.Overlap = overlap
		m := MustMachine(cfg)
		v, _ := m.NewVM("v", Shares{1, 1, 1})
		v.AccountCPU(cfg.CPUOpsPerSec)                // 1 cpu-second
		v.AccountSeqRead(int(cfg.SeqPagesPerSec) * 3) // 3 io-seconds
		want := 1 + 3 - overlap*1
		if got := v.Elapsed(); !close(got, want) {
			t.Errorf("overlap=%g: elapsed = %g, want %g", overlap, got, want)
		}
	}
}

func TestUsageSubAndElapsedSince(t *testing.T) {
	cfg := testConfig()
	m := MustMachine(cfg)
	v, _ := m.NewVM("v", Shares{1, 1, 1})
	v.AccountCPU(1e6)
	start := v.Snapshot()
	v.AccountCPU(1e6)
	v.AccountSeqRead(100)
	d := v.Since(start)
	if d.CPUOps != 1e6 {
		t.Errorf("interval cpu ops = %g, want 1e6", d.CPUOps)
	}
	if d.SeqReads != 100 {
		t.Errorf("interval seq reads = %d, want 100", d.SeqReads)
	}
	if got, want := v.ElapsedSince(start), d.CPUSeconds+d.IOSeconds; !close(got, want) {
		t.Errorf("ElapsedSince = %g, want %g", got, want)
	}
}

func TestSetSharesDynamic(t *testing.T) {
	cfg := testConfig()
	m := MustMachine(cfg)
	v, _ := m.NewVM("v", Shares{0.5, 0.5, 0.5})
	v.AccountCPU(cfg.CPUOpsPerSec) // 2 seconds at half share
	if err := v.SetShares(Shares{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	before := v.Snapshot().CPUSeconds
	v.AccountCPU(cfg.CPUOpsPerSec) // 1 second at full share
	delta := v.Snapshot().CPUSeconds - before
	if !close(before, 2) || !close(delta, 1) {
		t.Errorf("before=%g delta=%g, want 2 and 1", before, delta)
	}
	if v.MemBytes() != cfg.MemBytes {
		t.Errorf("MemBytes after reconfigure = %d, want %d", v.MemBytes(), cfg.MemBytes)
	}
}

func TestSetSharesRejectsOverCommitAndInvalid(t *testing.T) {
	m := MustMachine(testConfig())
	a, _ := m.NewVM("a", Equal(2))
	if _, err := m.NewVM("b", Equal(2)); err != nil {
		t.Fatal(err)
	}
	if err := a.SetShares(Shares{0.6, 0.5, 0.5}); err == nil {
		t.Fatal("expected over-commit error")
	}
	if err := a.SetShares(Shares{0, 0.5, 0.5}); err == nil {
		t.Fatal("expected invalid-share error")
	}
	if got := a.Shares(); got != Equal(2) {
		t.Errorf("shares changed after failed SetShares: %v", got)
	}
}

func TestMemBytes(t *testing.T) {
	cfg := testConfig()
	cfg.MemBytes = 1 << 30
	m := MustMachine(cfg)
	v, _ := m.NewVM("v", Shares{0.5, 0.25, 0.5})
	if got, want := v.MemBytes(), int64(1<<30)/4; got != want {
		t.Errorf("MemBytes = %d, want %d", got, want)
	}
}

func TestEffectiveRates(t *testing.T) {
	cfg := testConfig()
	m := MustMachine(cfg)
	v, _ := m.NewVM("v", Shares{0.25, 0.5, 0.5})
	r := v.EffectiveRates()
	if !close(r.CPUOpsPerSec, cfg.CPUOpsPerSec*0.25) {
		t.Errorf("cpu rate = %g", r.CPUOpsPerSec)
	}
	if !close(r.SeqPagesPerSec, cfg.SeqPagesPerSec*0.5) {
		t.Errorf("seq rate = %g", r.SeqPagesPerSec)
	}
	if !close(r.RandPagesPerSec, cfg.RandPagesPerSec*0.5) {
		t.Errorf("rand rate = %g", r.RandPagesPerSec)
	}
	if !close(r.WritePagesPerSec, cfg.WritePagesPerSec*0.5) {
		t.Errorf("write rate = %g", r.WritePagesPerSec)
	}
}

func TestZeroOrNegativeChargesIgnored(t *testing.T) {
	m := MustMachine(testConfig())
	v, _ := m.NewVM("v", Shares{1, 1, 1})
	v.AccountCPU(0)
	v.AccountCPU(-10)
	v.AccountSeqRead(0)
	v.AccountRandRead(-1)
	v.AccountWrite(0)
	if u := v.Snapshot(); u != (Usage{}) {
		t.Errorf("usage after no-op charges = %+v, want zero", u)
	}
}

// Property: CPU time is additive and proportional to ops for any valid share.
func TestCPUAccountingProperty(t *testing.T) {
	cfg := testConfig()
	f := func(shareRaw, opsRaw uint32) bool {
		share := 0.01 + 0.99*float64(shareRaw)/float64(math.MaxUint32)
		ops := 1 + float64(opsRaw%1000000)
		m := MustMachine(cfg)
		v, _ := m.NewVM("v", Shares{share, 0.5, 0.5})
		v.AccountCPU(ops)
		v.AccountCPU(ops)
		once := ops / (cfg.CPUOpsPerSec * share)
		return close(v.Snapshot().CPUSeconds, 2*once)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: elapsed time is monotonically non-increasing in every share.
func TestElapsedMonotoneInShares(t *testing.T) {
	cfg := DefaultMachineConfig() // includes sched overhead + overlap
	run := func(s Shares) float64 {
		m := MustMachine(cfg)
		v, _ := m.NewVM("v", s)
		v.AccountCPU(1e8)
		v.AccountSeqRead(1000)
		v.AccountRandRead(50)
		return v.Elapsed()
	}
	f := func(aRaw, bRaw uint32) bool {
		a := 0.05 + 0.95*float64(aRaw)/float64(math.MaxUint32)
		b := 0.05 + 0.95*float64(bRaw)/float64(math.MaxUint32)
		lo, hi := math.Min(a, b), math.Max(a, b)
		if close(lo, hi) {
			return true
		}
		// More CPU share never hurts.
		if run(Shares{lo, 0.5, 0.5}) < run(Shares{hi, 0.5, 0.5})-1e-12 {
			return false
		}
		// More IO share never hurts.
		return run(Shares{0.5, 0.5, lo}) >= run(Shares{0.5, 0.5, hi})-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func close(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
