package plan

import (
	"strings"
	"testing"

	"dbvirt/internal/catalog"
	"dbvirt/internal/sql"
	"dbvirt/internal/storage"
	"dbvirt/internal/types"
)

// testCatalog builds a catalog with customer/orders/lineitem-like schemas.
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	d := storage.NewDiskManager()
	mustTable := func(name string, cols ...catalog.Column) {
		if _, err := cat.CreateTable(d, name, catalog.Schema{Cols: cols}); err != nil {
			t.Fatal(err)
		}
	}
	mustTable("customer",
		catalog.Column{Name: "c_custkey", Kind: types.KindInt},
		catalog.Column{Name: "c_name", Kind: types.KindString},
		catalog.Column{Name: "c_mktsegment", Kind: types.KindString},
	)
	mustTable("orders",
		catalog.Column{Name: "o_orderkey", Kind: types.KindInt},
		catalog.Column{Name: "o_custkey", Kind: types.KindInt},
		catalog.Column{Name: "o_orderdate", Kind: types.KindDate},
		catalog.Column{Name: "o_comment", Kind: types.KindString},
		catalog.Column{Name: "o_total", Kind: types.KindFloat},
	)
	mustTable("lineitem",
		catalog.Column{Name: "l_orderkey", Kind: types.KindInt},
		catalog.Column{Name: "l_quantity", Kind: types.KindFloat},
		catalog.Column{Name: "l_shipdate", Kind: types.KindDate},
	)
	return cat
}

func mustBind(t *testing.T, src string) *Query {
	t.Helper()
	sel, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := Bind(sel, testCatalog(t))
	if err != nil {
		t.Fatalf("bind %q: %v", src, err)
	}
	return q
}

func bindErr(t *testing.T, src string) error {
	t.Helper()
	sel, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Bind(sel, testCatalog(t))
	if err == nil {
		t.Fatalf("expected bind error for %q", src)
	}
	return err
}

func TestBindSimple(t *testing.T) {
	q := mustBind(t, "SELECT c_name FROM customer WHERE c_custkey = 5")
	if len(q.Rels) != 1 || q.Rels[0].Table.Name != "customer" {
		t.Fatalf("rels = %v", q.Rels)
	}
	if len(q.Where) != 1 {
		t.Fatalf("where = %v", q.Where)
	}
	if q.Where[0].Rels != NewRelSet(0) {
		t.Error("conjunct rel set wrong")
	}
	if len(q.Select) != 1 || q.Select[0].Name != "c_name" {
		t.Errorf("select = %+v", q.Select)
	}
}

func TestBindStar(t *testing.T) {
	q := mustBind(t, "SELECT * FROM lineitem")
	if len(q.Select) != 3 {
		t.Errorf("star expanded to %d columns", len(q.Select))
	}
}

func TestBindJoinFlattening(t *testing.T) {
	q := mustBind(t, `SELECT c_name FROM customer JOIN orders ON c_custkey = o_custkey WHERE o_total > 100`)
	if q.OuterTree != nil {
		t.Fatal("inner joins should be flattened, not fixed")
	}
	if len(q.Rels) != 2 {
		t.Fatalf("rels = %d", len(q.Rels))
	}
	if len(q.Where) != 2 {
		t.Fatalf("where conjuncts = %d, want join cond + filter", len(q.Where))
	}
	var joinConj *Conjunct
	for i := range q.Where {
		if q.Where[i].Rels.Count() == 2 {
			joinConj = &q.Where[i]
		}
	}
	if joinConj == nil {
		t.Fatal("no two-relation conjunct found")
	}
}

func TestBindCommaJoin(t *testing.T) {
	q := mustBind(t, `SELECT count(*) FROM customer, orders WHERE c_custkey = o_custkey`)
	if len(q.Rels) != 2 || q.OuterTree != nil {
		t.Fatal("comma join should produce flat rels")
	}
}

func TestBindOuterJoinTree(t *testing.T) {
	q := mustBind(t, `SELECT c_custkey, count(o_orderkey) FROM customer
		LEFT OUTER JOIN orders ON c_custkey = o_custkey AND o_comment NOT LIKE '%x%'
		GROUP BY c_custkey`)
	if q.OuterTree == nil {
		t.Fatal("outer join should set OuterTree")
	}
	if q.OuterTree.Type != sql.LeftJoin {
		t.Error("join type lost")
	}
	if len(q.OuterTree.On) != 2 {
		t.Errorf("ON conjuncts = %d, want 2", len(q.OuterTree.On))
	}
	if q.OuterTree.Left.Rel == nil || q.OuterTree.Left.Rel.Table.Name != "customer" {
		t.Error("left leaf wrong")
	}
	if !q.Grouped || len(q.GroupBy) != 1 || len(q.Aggs) != 1 {
		t.Errorf("grouping: grouped=%v groupby=%d aggs=%d", q.Grouped, len(q.GroupBy), len(q.Aggs))
	}
}

func TestBindOuterJoinMixedWithCommaFails(t *testing.T) {
	bindErr(t, `SELECT c_name FROM lineitem, customer LEFT JOIN orders ON c_custkey = o_custkey`)
}

func TestBindAmbiguousColumn(t *testing.T) {
	// c_custkey appears only in customer; o_custkey only in orders; invent a clash via aliases.
	err := bindErr(t, "SELECT c_custkey FROM customer a, customer b")
	if !strings.Contains(err.Error(), "ambiguous") && !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestBindDuplicateAlias(t *testing.T) {
	err := bindErr(t, "SELECT 1 FROM customer c, orders c")
	if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestBindUnknownColumnAndTable(t *testing.T) {
	bindErr(t, "SELECT nope FROM customer")
	bindErr(t, "SELECT c_name FROM nonexistent")
	bindErr(t, "SELECT x.c_name FROM customer")
	bindErr(t, "SELECT customer.nope FROM customer")
}

func TestBindTypeErrors(t *testing.T) {
	bindErr(t, "SELECT c_name + 1 FROM customer")              // arithmetic on string
	bindErr(t, "SELECT c_name FROM customer WHERE c_name = 1") // string vs int
	bindErr(t, "SELECT c_name FROM customer WHERE c_custkey LIKE '%x%'")
	bindErr(t, "SELECT c_name FROM customer WHERE c_custkey") // non-boolean WHERE
	bindErr(t, "SELECT NOT c_custkey FROM customer")          // NOT on int
	bindErr(t, "SELECT -c_name FROM customer")                // negate string
	bindErr(t, "SELECT c_name FROM customer WHERE c_custkey BETWEEN 'a' AND 'b'")
	bindErr(t, "SELECT c_name FROM customer WHERE c_custkey IN (1, 'x')")
}

func TestBindAggregates(t *testing.T) {
	q := mustBind(t, `SELECT c_mktsegment, count(*), sum(c_custkey), avg(c_custkey)
		FROM customer GROUP BY c_mktsegment`)
	if !q.Grouped || len(q.Aggs) != 3 {
		t.Fatalf("aggs = %d", len(q.Aggs))
	}
	if q.Aggs[0].Func != sql.AggCount || !q.Aggs[0].Star {
		t.Error("count(*) spec wrong")
	}
	if q.Aggs[1].Kind != types.KindInt {
		t.Errorf("sum(int) kind = %v", q.Aggs[1].Kind)
	}
	if q.Aggs[2].Kind != types.KindFloat {
		t.Errorf("avg kind = %v", q.Aggs[2].Kind)
	}
	// First select item references the group key.
	cr, ok := q.Select[0].E.(*ColRef)
	if !ok || cr.Rel != GroupScope || cr.Col != 0 {
		t.Errorf("group key ref = %#v", q.Select[0].E)
	}
	// Second references agg 0.
	cr, ok = q.Select[1].E.(*ColRef)
	if !ok || cr.Rel != AggScope || cr.Col != 0 {
		t.Errorf("agg ref = %#v", q.Select[1].E)
	}
}

func TestBindAggDeduplication(t *testing.T) {
	q := mustBind(t, `SELECT count(*), count(*) + 1 FROM customer`)
	if len(q.Aggs) != 1 {
		t.Errorf("identical aggregates should be shared, got %d", len(q.Aggs))
	}
	if len(q.GroupBy) != 0 || !q.Grouped {
		t.Error("global aggregation should be grouped with no keys")
	}
}

func TestBindGroupByExprMatch(t *testing.T) {
	q := mustBind(t, `SELECT o_total * 2, count(*) FROM orders GROUP BY o_total * 2`)
	cr, ok := q.Select[0].E.(*ColRef)
	if !ok || cr.Rel != GroupScope {
		t.Errorf("matching group expr should become GroupScope ref: %#v", q.Select[0].E)
	}
}

func TestBindNonGroupedColumnRejected(t *testing.T) {
	err := bindErr(t, "SELECT c_name, count(*) FROM customer GROUP BY c_mktsegment")
	if !strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("unexpected error: %v", err)
	}
	bindErr(t, "SELECT c_name FROM customer GROUP BY c_mktsegment")
	bindErr(t, "SELECT * FROM customer GROUP BY c_mktsegment")
}

func TestBindAggregateInWhereRejected(t *testing.T) {
	bindErr(t, "SELECT c_name FROM customer WHERE count(*) > 1")
	bindErr(t, "SELECT c_name FROM customer HAVING c_name LIKE 'a%'") // HAVING without grouping
}

func TestBindHaving(t *testing.T) {
	q := mustBind(t, `SELECT c_mktsegment, count(*) FROM customer
		GROUP BY c_mktsegment HAVING count(*) > 10`)
	if q.Having == nil {
		t.Fatal("having lost")
	}
}

func TestBindOrderBy(t *testing.T) {
	q := mustBind(t, `SELECT c_name, c_custkey FROM customer ORDER BY 2 DESC, c_name`)
	if len(q.OrderBy) != 2 {
		t.Fatal("order keys lost")
	}
	if q.OrderBy[0].Col != 1 || !q.OrderBy[0].Desc {
		t.Errorf("order key 0 = %+v", q.OrderBy[0])
	}
	if q.OrderBy[1].Col != 0 || q.OrderBy[1].Desc {
		t.Errorf("order key 1 = %+v", q.OrderBy[1])
	}
	// ORDER BY column not in select list adds a hidden output.
	q = mustBind(t, `SELECT c_name FROM customer ORDER BY c_custkey`)
	if len(q.Select) != 2 || !q.Select[1].Hidden {
		t.Errorf("hidden order column missing: %+v", q.Select)
	}
	if got := q.OutputNames(); len(got) != 1 || got[0] != "c_name" {
		t.Errorf("visible names = %v", got)
	}
	bindErr(t, "SELECT c_name FROM customer ORDER BY 5")
}

func TestBindOrderByAggregate(t *testing.T) {
	q := mustBind(t, `SELECT c_mktsegment FROM customer GROUP BY c_mktsegment ORDER BY count(*) DESC`)
	if len(q.Aggs) != 1 {
		t.Fatalf("aggs = %d", len(q.Aggs))
	}
	if len(q.Select) != 2 || !q.Select[1].Hidden {
		t.Error("hidden aggregate order column missing")
	}
}

func TestRelSetOps(t *testing.T) {
	s := NewRelSet(0, 3)
	if !s.Has(0) || !s.Has(3) || s.Has(1) {
		t.Error("Has failed")
	}
	if s.Count() != 2 {
		t.Error("Count failed")
	}
	if !NewRelSet(0).SubsetOf(s) || s.SubsetOf(NewRelSet(0)) {
		t.Error("SubsetOf failed")
	}
	if !s.Intersects(NewRelSet(3, 5)) || s.Intersects(NewRelSet(1, 2)) {
		t.Error("Intersects failed")
	}
	if s.Union(NewRelSet(1)) != NewRelSet(0, 1, 3) {
		t.Error("Union failed")
	}
}

func TestNumOperators(t *testing.T) {
	q := mustBind(t, "SELECT c_name FROM customer WHERE c_custkey > 1 AND c_custkey < 10")
	total := 0
	for _, c := range q.Where {
		total += NumOperators(c.E)
	}
	if total != 2 {
		t.Errorf("two comparisons should count 2 operators, got %d", total)
	}
	q = mustBind(t, "SELECT c_name FROM customer WHERE c_name LIKE '%x%'")
	if n := NumOperators(q.Where[0].E); n < 4 {
		t.Errorf("LIKE should count as several operators, got %d", n)
	}
}

func TestExprEqual(t *testing.T) {
	q1 := mustBind(t, "SELECT c_custkey + 1 FROM customer")
	q2 := mustBind(t, "SELECT c_custkey + 1 FROM customer")
	q3 := mustBind(t, "SELECT c_custkey + 2 FROM customer")
	if !Equal(q1.Select[0].E, q2.Select[0].E) {
		t.Error("identical expressions should be equal")
	}
	if Equal(q1.Select[0].E, q3.Select[0].E) {
		t.Error("different constants should differ")
	}
}

// --- evaluation tests ---

func evalOne(t *testing.T, src string, row Row, lay Layout) types.Value {
	t.Helper()
	q := mustBind(t, src)
	ev, err := Compile(q.Select[0].E, lay, NullSink{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ev(row)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func custRow(key int64, name, seg string) Row {
	return Row{types.NewInt(key), types.NewString(name), types.NewString(seg)}
}

func TestEvalArithmetic(t *testing.T) {
	lay := SingleRel(0)
	if v := evalOne(t, "SELECT c_custkey * 2 + 1 FROM customer", custRow(5, "a", "b"), lay); v.I != 11 {
		t.Errorf("5*2+1 = %v", v)
	}
	if v := evalOne(t, "SELECT c_custkey / 2 FROM customer", custRow(7, "a", "b"), lay); v.I != 3 {
		t.Errorf("int division 7/2 = %v", v)
	}
	if v := evalOne(t, "SELECT c_custkey / 2.0 FROM customer", custRow(7, "a", "b"), lay); v.F != 3.5 {
		t.Errorf("float division = %v", v)
	}
	if v := evalOne(t, "SELECT -c_custkey FROM customer", custRow(7, "a", "b"), lay); v.I != -7 {
		t.Errorf("negation = %v", v)
	}
}

func TestEvalDivisionByZero(t *testing.T) {
	q := mustBind(t, "SELECT c_custkey / 0 FROM customer")
	ev, _ := Compile(q.Select[0].E, SingleRel(0), NullSink{})
	if _, err := ev(custRow(1, "a", "b")); err == nil {
		t.Error("division by zero should error")
	}
}

func TestEvalComparisonsAndLogic(t *testing.T) {
	lay := SingleRel(0)
	cases := map[string]bool{
		"SELECT c_custkey = 5 FROM customer":                      true,
		"SELECT c_custkey <> 5 FROM customer":                     false,
		"SELECT c_custkey < 10 AND c_custkey > 1 FROM customer":   true,
		"SELECT c_custkey > 10 OR c_name = 'alice' FROM customer": true,
		"SELECT NOT c_custkey = 5 FROM customer":                  false,
		"SELECT c_custkey BETWEEN 1 AND 10 FROM customer":         true,
		"SELECT c_custkey NOT BETWEEN 1 AND 10 FROM customer":     false,
		"SELECT c_custkey IN (1, 5, 9) FROM customer":             true,
		"SELECT c_custkey NOT IN (1, 5, 9) FROM customer":         false,
		"SELECT c_name LIKE 'al%' FROM customer":                  true,
		"SELECT c_name NOT LIKE '%z%' FROM customer":              true,
		"SELECT c_name IS NULL FROM customer":                     false,
		"SELECT c_name IS NOT NULL FROM customer":                 true,
	}
	for src, want := range cases {
		v := evalOne(t, src, custRow(5, "alice", "seg"), lay)
		if v.IsNull() || v.Bool() != want {
			t.Errorf("%s = %v, want %v", src, v, want)
		}
	}
}

func TestEvalThreeValuedLogic(t *testing.T) {
	lay := SingleRel(0)
	nullRow := Row{types.Null, types.Null, types.NewString("s")}
	// NULL = 5 -> NULL
	if v := evalOne(t, "SELECT c_custkey = 5 FROM customer", nullRow, lay); !v.IsNull() {
		t.Errorf("NULL = 5 should be NULL, got %v", v)
	}
	// NULL AND false -> false
	if v := evalOne(t, "SELECT c_custkey = 5 AND c_mktsegment = 'x' FROM customer", nullRow, lay); v.IsNull() || v.Bool() {
		t.Errorf("NULL AND false = %v, want false", v)
	}
	// NULL OR true -> true
	if v := evalOne(t, "SELECT c_custkey = 5 OR c_mktsegment = 's' FROM customer", nullRow, lay); v.IsNull() || !v.Bool() {
		t.Errorf("NULL OR true = %v, want true", v)
	}
	// NOT NULL -> NULL
	if v := evalOne(t, "SELECT NOT c_custkey = 5 FROM customer", nullRow, lay); !v.IsNull() {
		t.Errorf("NOT NULL = %v, want NULL", v)
	}
	// NULL IN (...) -> NULL
	if v := evalOne(t, "SELECT c_custkey IN (1, 2) FROM customer", nullRow, lay); !v.IsNull() {
		t.Errorf("NULL IN = %v, want NULL", v)
	}
	// 5 IN (1, NULL) -> NULL
	if v := evalOne(t, "SELECT c_custkey IN (1, NULL) FROM customer", custRow(5, "a", "b"), lay); !v.IsNull() {
		t.Errorf("5 IN (1, NULL) = %v, want NULL", v)
	}
	// 1 IN (1, NULL) -> true
	if v := evalOne(t, "SELECT c_custkey IN (1, NULL) FROM customer", custRow(1, "a", "b"), lay); v.IsNull() || !v.Bool() {
		t.Errorf("1 IN (1, NULL) = %v, want true", v)
	}
	// NULL IS NULL -> true
	if v := evalOne(t, "SELECT c_custkey IS NULL FROM customer", nullRow, lay); v.IsNull() || !v.Bool() {
		t.Errorf("NULL IS NULL = %v", v)
	}
	// NULL BETWEEN -> NULL
	if v := evalOne(t, "SELECT c_custkey BETWEEN 1 AND 2 FROM customer", nullRow, lay); !v.IsNull() {
		t.Errorf("NULL BETWEEN = %v", v)
	}
	// Arithmetic with NULL -> NULL
	if v := evalOne(t, "SELECT c_custkey + 1 FROM customer", nullRow, lay); !v.IsNull() {
		t.Errorf("NULL + 1 = %v", v)
	}
}

func TestEvalDateComparison(t *testing.T) {
	lay := NewLayout()
	lay.Base[0] = 0
	q := mustBind(t, "SELECT o_orderdate < date '1995-01-01' FROM orders")
	ev, err := Compile(q.Select[0].E, lay, NullSink{})
	if err != nil {
		t.Fatal(err)
	}
	row := Row{types.NewInt(1), types.NewInt(1), types.MustDate("1994-06-15"), types.NewString(""), types.NewFloat(0)}
	v, err := ev(row)
	if err != nil || v.IsNull() || !v.Bool() {
		t.Errorf("date comparison = %v, %v", v, err)
	}
}

type countingSink struct{ ops float64 }

func (c *countingSink) AccountCPU(ops float64) { c.ops += ops }

func TestEvalChargesCPU(t *testing.T) {
	q := mustBind(t, "SELECT c_custkey > 1 AND c_custkey < 10 FROM customer")
	sink := &countingSink{}
	ev, err := Compile(q.Select[0].E, SingleRel(0), sink)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev(custRow(5, "a", "b")); err != nil {
		t.Fatal(err)
	}
	// AND + two comparisons = 3 operator charges.
	if want := float64(3 * OpsPerOperator); sink.ops != want {
		t.Errorf("ops = %g, want %g", sink.ops, want)
	}
}

func TestEvalLikeChargesByLength(t *testing.T) {
	q := mustBind(t, "SELECT c_name LIKE '%x%' FROM customer")
	sink := &countingSink{}
	ev, _ := Compile(q.Select[0].E, SingleRel(0), sink)
	ev(custRow(1, strings.Repeat("a", 10), "s"))
	short := sink.ops
	sink.ops = 0
	ev(custRow(1, strings.Repeat("a", 1000), "s"))
	if sink.ops <= short {
		t.Errorf("long string should cost more: %g vs %g", sink.ops, short)
	}
}

func TestEvalShortCircuitSavesCPU(t *testing.T) {
	q := mustBind(t, "SELECT c_custkey = 99 AND c_name LIKE '%x%' FROM customer")
	sink := &countingSink{}
	ev, _ := Compile(q.Select[0].E, SingleRel(0), sink)
	ev(custRow(1, strings.Repeat("a", 1000), "s")) // left is false
	withShort := sink.ops
	sink.ops = 0
	ev(custRow(99, strings.Repeat("a", 1000), "s")) // left is true, LIKE runs
	if withShort >= sink.ops {
		t.Errorf("short circuit should be cheaper: %g vs %g", withShort, sink.ops)
	}
}

func TestLayoutOffsets(t *testing.T) {
	lay := NewLayout()
	lay.Base[0] = 0
	lay.Base[1] = 3
	c := &ColRef{Rel: 1, Col: 2}
	off, err := lay.Offset(c)
	if err != nil || off != 5 {
		t.Errorf("offset = %d, %v", off, err)
	}
	if _, err := lay.Offset(&ColRef{Rel: 9}); err == nil {
		t.Error("unknown rel should error")
	}
	pa := PostAgg(2)
	if off, _ := pa.Offset(&ColRef{Rel: GroupScope, Col: 1}); off != 1 {
		t.Error("group offset")
	}
	if off, _ := pa.Offset(&ColRef{Rel: AggScope, Col: 0}); off != 2 {
		t.Error("agg offset")
	}
}

func TestTruthy(t *testing.T) {
	if Truthy(types.Null) || Truthy(types.NewBool(false)) || !Truthy(types.NewBool(true)) {
		t.Error("Truthy semantics wrong")
	}
}
