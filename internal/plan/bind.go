package plan

import (
	"fmt"
	"strings"

	"dbvirt/internal/catalog"
	"dbvirt/internal/sql"
	"dbvirt/internal/types"
)

// Rel is one relation of a bound query: a base table, or a derived table
// (FROM subquery) whose Sub holds the independently bound inner query and
// whose Table is a synthetic schema-only descriptor.
type Rel struct {
	Idx   int
	Name  string // alias if given, else table name
	Table *catalog.Table
	Sub   *Query // non-nil for derived tables
}

// Conjunct is one AND-factor of a predicate, with the set of relations it
// references (used for predicate pushdown and join-condition matching).
type Conjunct struct {
	E    Expr
	Rels RelSet
}

// AggSpec is one aggregate computed by the query.
type AggSpec struct {
	Func sql.AggFunc
	Star bool
	Arg  Expr // nil when Star
	Kind types.Kind
	Name string
}

// OutputCol is one column of the query result. Hidden columns are added
// for ORDER BY keys that are not in the select list and are stripped
// before returning rows.
type OutputCol struct {
	Name   string
	E      Expr
	Hidden bool
}

// OrderKey sorts the result by output column Col (an index into Select).
type OrderKey struct {
	Col  int
	Desc bool
}

// JoinTree is a fixed join shape, used when the query contains outer
// joins (which the optimizer must not freely reorder).
type JoinTree struct {
	// Leaf relation (nil for internal nodes).
	Rel *Rel
	// Internal node fields.
	Type        sql.JoinType
	Left, Right *JoinTree
	On          []Conjunct
}

// Rels returns the set of base relations under this tree.
func (j *JoinTree) Rels() RelSet {
	if j.Rel != nil {
		return NewRelSet(j.Rel.Idx)
	}
	return j.Left.Rels() | j.Right.Rels()
}

// Query is a bound SELECT, ready for the optimizer.
type Query struct {
	Rels []*Rel
	// Where holds the WHERE conjuncts plus, when all joins are inner, the
	// flattened ON conjuncts. The optimizer is free to place them.
	Where []Conjunct
	// OuterTree is non-nil when the query contains outer joins; the join
	// shape is then fixed and Where conjuncts apply above the tree.
	OuterTree *JoinTree
	// Grouped is true when the query aggregates (GROUP BY or any
	// aggregate function). GroupBy may be empty for a single global group.
	Grouped  bool
	GroupBy  []Expr
	Aggs     []AggSpec
	Having   Expr // post-aggregation scope; nil if absent
	Select   []OutputCol
	OrderBy  []OrderKey
	Limit    *int64
	Distinct bool
}

// OutputNames returns the visible column names of the result.
func (q *Query) OutputNames() []string {
	var names []string
	for _, c := range q.Select {
		if !c.Hidden {
			names = append(names, c.Name)
		}
	}
	return names
}

// binder carries binding state.
type binder struct {
	cat    *catalog.Catalog
	rels   []*Rel
	byName map[string]*Rel
}

// Bind resolves a parsed SELECT against the catalog.
func Bind(sel *sql.SelectStmt, cat *catalog.Catalog) (*Query, error) {
	b := &binder{cat: cat, byName: make(map[string]*Rel)}
	q := &Query{}

	// FROM: decide between the flat inner-join form and a fixed tree.
	hasOuter := false
	for _, fi := range sel.From {
		if fromHasOuter(fi) {
			hasOuter = true
		}
	}
	if hasOuter {
		if len(sel.From) != 1 {
			return nil, fmt.Errorf("plan: outer joins cannot be mixed with comma-separated FROM items")
		}
		tree, err := b.bindJoinTree(sel.From[0])
		if err != nil {
			return nil, err
		}
		q.OuterTree = tree
	} else {
		for _, fi := range sel.From {
			if err := b.flattenInner(fi, q); err != nil {
				return nil, err
			}
		}
	}
	q.Rels = b.rels
	if len(q.Rels) == 0 {
		return nil, fmt.Errorf("plan: query has no relations")
	}
	if len(q.Rels) > 64 {
		return nil, fmt.Errorf("plan: too many relations (%d > 64)", len(q.Rels))
	}

	// WHERE.
	if sel.Where != nil {
		conjs, err := b.bindConjuncts(sel.Where, "WHERE")
		if err != nil {
			return nil, err
		}
		q.Where = append(q.Where, conjs...)
	}

	// GROUP BY and aggregates.
	for _, ge := range sel.GroupBy {
		e, err := b.bindScalar(ge, "GROUP BY")
		if err != nil {
			return nil, err
		}
		q.GroupBy = append(q.GroupBy, e)
	}
	q.Grouped = len(sel.GroupBy) > 0 || stmtHasAgg(sel)
	if sel.Having != nil && !q.Grouped {
		return nil, fmt.Errorf("plan: HAVING requires aggregation")
	}

	// Select list.
	for _, item := range sel.Items {
		if item.Star {
			if q.Grouped {
				return nil, fmt.Errorf("plan: SELECT * cannot be combined with aggregation")
			}
			for _, rel := range q.Rels {
				for ci, col := range rel.Table.Schema.Cols {
					q.Select = append(q.Select, OutputCol{
						Name: col.Name,
						E:    &ColRef{Rel: rel.Idx, Col: ci, Kind: col.Kind, Name: rel.Name + "." + col.Name},
					})
				}
			}
			continue
		}
		var e Expr
		var err error
		if q.Grouped {
			e, err = b.bindPostAgg(item.Expr, q)
		} else {
			e, err = b.bindNoAgg(item.Expr, "SELECT")
		}
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			name = displayName(item.Expr)
		}
		q.Select = append(q.Select, OutputCol{Name: name, E: e})
	}

	// HAVING.
	if sel.Having != nil {
		e, err := b.bindPostAgg(sel.Having, q)
		if err != nil {
			return nil, err
		}
		if e.ResultKind() != types.KindBool && e.ResultKind() != types.KindNull {
			return nil, fmt.Errorf("plan: HAVING must be boolean, got %s", e.ResultKind())
		}
		q.Having = e
	}

	// ORDER BY.
	visible := len(q.Select)
	for _, oi := range sel.OrderBy {
		var col int
		switch {
		case oi.Position > 0:
			if oi.Position > visible {
				return nil, fmt.Errorf("plan: ORDER BY position %d out of range", oi.Position)
			}
			col = oi.Position - 1
		default:
			// A bare unqualified name matching a select-list alias orders
			// by that output column (standard SQL alias resolution).
			if cr, ok := oi.Expr.(*sql.ColumnRef); ok && cr.Table == "" {
				aliasCol := -1
				for i, sc := range q.Select {
					if !sc.Hidden && strings.EqualFold(sc.Name, cr.Column) {
						aliasCol = i
						break
					}
				}
				if aliasCol >= 0 {
					q.OrderBy = append(q.OrderBy, OrderKey{Col: aliasCol, Desc: oi.Desc})
					continue
				}
			}
			var e Expr
			var err error
			if q.Grouped {
				e, err = b.bindPostAgg(oi.Expr, q)
			} else {
				e, err = b.bindNoAgg(oi.Expr, "ORDER BY")
			}
			if err != nil {
				return nil, err
			}
			col = -1
			for i, sc := range q.Select {
				if Equal(sc.E, e) {
					col = i
					break
				}
			}
			if col < 0 {
				q.Select = append(q.Select, OutputCol{Name: displayName(oi.Expr), E: e, Hidden: true})
				col = len(q.Select) - 1
			}
		}
		q.OrderBy = append(q.OrderBy, OrderKey{Col: col, Desc: oi.Desc})
	}

	q.Limit = sel.Limit
	q.Distinct = sel.Distinct
	return q, nil
}

// fromHasOuter reports whether a FROM item contains a LEFT join.
func fromHasOuter(fi sql.FromItem) bool {
	j, ok := fi.(*sql.JoinExpr)
	if !ok {
		return false
	}
	return j.Type == sql.LeftJoin || fromHasOuter(j.Left) || fromHasOuter(j.Right)
}

// flattenInner adds the relations of an inner-join-only FROM item and
// pushes its ON conjuncts into q.Where.
func (b *binder) flattenInner(fi sql.FromItem, q *Query) error {
	switch x := fi.(type) {
	case *sql.TableRef:
		_, err := b.addRel(x)
		return err
	case *sql.SubqueryRef:
		_, err := b.addSubqueryRel(x)
		return err
	case *sql.JoinExpr:
		if err := b.flattenInner(x.Left, q); err != nil {
			return err
		}
		if err := b.flattenInner(x.Right, q); err != nil {
			return err
		}
		conjs, err := b.bindConjuncts(x.On, "ON")
		if err != nil {
			return err
		}
		q.Where = append(q.Where, conjs...)
		return nil
	default:
		return fmt.Errorf("plan: unknown FROM item %T", fi)
	}
}

// bindJoinTree binds a FROM item into a fixed join tree.
func (b *binder) bindJoinTree(fi sql.FromItem) (*JoinTree, error) {
	switch x := fi.(type) {
	case *sql.TableRef:
		rel, err := b.addRel(x)
		if err != nil {
			return nil, err
		}
		return &JoinTree{Rel: rel}, nil
	case *sql.SubqueryRef:
		rel, err := b.addSubqueryRel(x)
		if err != nil {
			return nil, err
		}
		return &JoinTree{Rel: rel}, nil
	case *sql.JoinExpr:
		left, err := b.bindJoinTree(x.Left)
		if err != nil {
			return nil, err
		}
		right, err := b.bindJoinTree(x.Right)
		if err != nil {
			return nil, err
		}
		conjs, err := b.bindConjuncts(x.On, "ON")
		if err != nil {
			return nil, err
		}
		avail := left.Rels() | right.Rels()
		for _, c := range conjs {
			if !c.Rels.SubsetOf(avail) {
				return nil, fmt.Errorf("plan: ON condition references relations outside the join")
			}
		}
		return &JoinTree{Type: x.Type, Left: left, Right: right, On: conjs}, nil
	default:
		return nil, fmt.Errorf("plan: unknown FROM item %T", fi)
	}
}

func (b *binder) addRel(ref *sql.TableRef) (*Rel, error) {
	t, err := b.cat.Table(ref.Table)
	if err != nil {
		return nil, err
	}
	name := strings.ToLower(ref.Name())
	if _, dup := b.byName[name]; dup {
		return nil, fmt.Errorf("plan: duplicate relation name %q (use aliases)", ref.Name())
	}
	rel := &Rel{Idx: len(b.rels), Name: ref.Name(), Table: t}
	b.rels = append(b.rels, rel)
	b.byName[name] = rel
	return rel, nil
}

// addSubqueryRel binds a derived table: the inner SELECT is bound as an
// independent query (no correlation with the outer scope) and exposed as
// a relation whose columns are the inner query's visible outputs.
func (b *binder) addSubqueryRel(ref *sql.SubqueryRef) (*Rel, error) {
	inner, err := Bind(ref.Select, b.cat)
	if err != nil {
		return nil, fmt.Errorf("plan: derived table %q: %w", ref.Alias, err)
	}
	var cols []catalog.Column
	for _, oc := range inner.Select {
		if oc.Hidden {
			continue
		}
		kind := oc.E.ResultKind()
		if kind == types.KindNull {
			kind = types.KindFloat // NULL-typed outputs default to numeric
		}
		cols = append(cols, catalog.Column{Name: oc.Name, Kind: kind})
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("plan: derived table %q has no output columns", ref.Alias)
	}
	name := strings.ToLower(ref.Alias)
	if _, dup := b.byName[name]; dup {
		return nil, fmt.Errorf("plan: duplicate relation name %q (use aliases)", ref.Alias)
	}
	rel := &Rel{
		Idx:   len(b.rels),
		Name:  ref.Alias,
		Table: &catalog.Table{Name: ref.Alias, Schema: catalog.Schema{Cols: cols}},
		Sub:   inner,
	}
	b.rels = append(b.rels, rel)
	b.byName[name] = rel
	return rel, nil
}

// bindConjuncts binds a boolean expression and splits it on top-level AND.
func (b *binder) bindConjuncts(e sql.Expr, ctx string) ([]Conjunct, error) {
	var parts []sql.Expr
	splitAnd(e, &parts)
	out := make([]Conjunct, 0, len(parts))
	for _, p := range parts {
		be, err := b.bindNoAgg(p, ctx)
		if err != nil {
			return nil, err
		}
		if be.ResultKind() != types.KindBool && be.ResultKind() != types.KindNull {
			return nil, fmt.Errorf("plan: %s condition must be boolean, got %s", ctx, be.ResultKind())
		}
		out = append(out, Conjunct{E: be, Rels: RelsOf(be)})
	}
	return out, nil
}

func splitAnd(e sql.Expr, out *[]sql.Expr) {
	if be, ok := e.(*sql.BinaryExpr); ok && be.Op == sql.OpAnd {
		splitAnd(be.L, out)
		splitAnd(be.R, out)
		return
	}
	*out = append(*out, e)
}

// bindNoAgg binds an expression in input scope, rejecting aggregates.
func (b *binder) bindNoAgg(e sql.Expr, ctx string) (Expr, error) {
	if exprHasAgg(e) {
		return nil, fmt.Errorf("plan: aggregate not allowed in %s", ctx)
	}
	return b.bindScalar(e, ctx)
}

// bindScalar binds a non-aggregate expression in input scope.
func (b *binder) bindScalar(e sql.Expr, ctx string) (Expr, error) {
	switch x := e.(type) {
	case *sql.Literal:
		return &Const{Val: x.Value}, nil

	case *sql.ColumnRef:
		return b.resolveColumn(x)

	case *sql.BinaryExpr:
		l, err := b.bindScalar(x.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := b.bindScalar(x.R, ctx)
		if err != nil {
			return nil, err
		}
		return makeBin(x.Op, l, r)

	case *sql.NotExpr:
		inner, err := b.bindScalar(x.E, ctx)
		if err != nil {
			return nil, err
		}
		if k := inner.ResultKind(); k != types.KindBool && k != types.KindNull {
			return nil, fmt.Errorf("plan: NOT requires a boolean, got %s", k)
		}
		return &Not{E: inner}, nil

	case *sql.NegExpr:
		inner, err := b.bindScalar(x.E, ctx)
		if err != nil {
			return nil, err
		}
		if k := inner.ResultKind(); !k.Numeric() && k != types.KindNull {
			return nil, fmt.Errorf("plan: cannot negate %s", k)
		}
		return &Neg{E: inner}, nil

	case *sql.BetweenExpr:
		ev, err := b.bindScalar(x.E, ctx)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindScalar(x.Lo, ctx)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindScalar(x.Hi, ctx)
		if err != nil {
			return nil, err
		}
		if !types.Compatible(ev.ResultKind(), lo.ResultKind()) || !types.Compatible(ev.ResultKind(), hi.ResultKind()) {
			return nil, fmt.Errorf("plan: BETWEEN operands are incompatible")
		}
		return &Between{NotB: x.Not, E: ev, Lo: lo, Hi: hi}, nil

	case *sql.InExpr:
		ev, err := b.bindScalar(x.E, ctx)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(x.List))
		for i, le := range x.List {
			list[i], err = b.bindScalar(le, ctx)
			if err != nil {
				return nil, err
			}
			if !types.Compatible(ev.ResultKind(), list[i].ResultKind()) {
				return nil, fmt.Errorf("plan: IN list item %d is incompatible", i)
			}
		}
		return &In{NotI: x.Not, E: ev, List: list}, nil

	case *sql.LikeExpr:
		ev, err := b.bindScalar(x.E, ctx)
		if err != nil {
			return nil, err
		}
		if k := ev.ResultKind(); k != types.KindString && k != types.KindNull {
			return nil, fmt.Errorf("plan: LIKE requires a string, got %s", k)
		}
		return &Like{NotL: x.Not, E: ev, Pattern: x.Pattern}, nil

	case *sql.IsNullExpr:
		ev, err := b.bindScalar(x.E, ctx)
		if err != nil {
			return nil, err
		}
		return &IsNull{NotN: x.Not, E: ev}, nil

	case *sql.AggExpr:
		return nil, fmt.Errorf("plan: aggregate not allowed in %s", ctx)

	default:
		return nil, fmt.Errorf("plan: cannot bind %T", e)
	}
}

func makeBin(op sql.BinaryOp, l, r Expr) (Expr, error) {
	lk, rk := l.ResultKind(), r.ResultKind()
	switch {
	case op == sql.OpAnd || op == sql.OpOr:
		for _, k := range []types.Kind{lk, rk} {
			if k != types.KindBool && k != types.KindNull {
				return nil, fmt.Errorf("plan: %s requires booleans, got %s", op, k)
			}
		}
		return &Bin{Op: op, L: l, R: r, K: types.KindBool}, nil
	case op.Comparison():
		if !types.Compatible(lk, rk) {
			return nil, fmt.Errorf("plan: cannot compare %s with %s", lk, rk)
		}
		return &Bin{Op: op, L: l, R: r, K: types.KindBool}, nil
	default: // arithmetic
		for _, k := range []types.Kind{lk, rk} {
			if !k.Numeric() && k != types.KindNull {
				return nil, fmt.Errorf("plan: arithmetic on %s", k)
			}
		}
		k := types.KindInt
		if lk == types.KindFloat || rk == types.KindFloat {
			k = types.KindFloat
		}
		return &Bin{Op: op, L: l, R: r, K: k}, nil
	}
}

func (b *binder) resolveColumn(c *sql.ColumnRef) (*ColRef, error) {
	if c.Table != "" {
		rel, ok := b.byName[strings.ToLower(c.Table)]
		if !ok {
			return nil, fmt.Errorf("plan: unknown relation %q", c.Table)
		}
		ci := rel.Table.Schema.ColIndex(c.Column)
		if ci < 0 {
			return nil, fmt.Errorf("plan: relation %q has no column %q", c.Table, c.Column)
		}
		return &ColRef{
			Rel: rel.Idx, Col: ci,
			Kind: rel.Table.Schema.Cols[ci].Kind,
			Name: rel.Name + "." + c.Column,
		}, nil
	}
	var found *ColRef
	for _, rel := range b.rels {
		ci := rel.Table.Schema.ColIndex(c.Column)
		if ci < 0 {
			continue
		}
		if found != nil {
			return nil, fmt.Errorf("plan: column %q is ambiguous", c.Column)
		}
		found = &ColRef{
			Rel: rel.Idx, Col: ci,
			Kind: rel.Table.Schema.Cols[ci].Kind,
			Name: rel.Name + "." + c.Column,
		}
	}
	if found == nil {
		return nil, fmt.Errorf("plan: unknown column %q", c.Column)
	}
	return found, nil
}

// bindPostAgg binds an expression in post-aggregation scope: aggregate
// calls become AggScope references (registered in q.Aggs), expressions
// matching a GROUP BY key become GroupScope references, and anything else
// must decompose into those plus constants.
func (b *binder) bindPostAgg(e sql.Expr, q *Query) (Expr, error) {
	// Aggregate call: register and reference.
	if agg, ok := e.(*sql.AggExpr); ok {
		spec := AggSpec{Func: agg.Func, Star: agg.Star, Name: agg.String()}
		if !agg.Star {
			arg, err := b.bindNoAgg(agg.Arg, "aggregate argument")
			if err != nil {
				return nil, err
			}
			spec.Arg = arg
		}
		spec.Kind = aggResultKind(spec)
		if spec.Kind == types.KindNull {
			return nil, fmt.Errorf("plan: %s over %s is not supported", agg.Func, spec.Arg.ResultKind())
		}
		// Reuse an identical aggregate if present.
		for i, existing := range q.Aggs {
			if existing.Func == spec.Func && existing.Star == spec.Star &&
				(spec.Star || Equal(existing.Arg, spec.Arg)) {
				return &ColRef{Rel: AggScope, Col: i, Kind: existing.Kind, Name: spec.Name}, nil
			}
		}
		q.Aggs = append(q.Aggs, spec)
		return &ColRef{Rel: AggScope, Col: len(q.Aggs) - 1, Kind: spec.Kind, Name: spec.Name}, nil
	}

	// Whole expression equal to a GROUP BY key?
	if !exprHasAgg(e) {
		bound, err := b.bindScalar(e, "SELECT")
		if err != nil {
			return nil, err
		}
		for i, g := range q.GroupBy {
			if Equal(g, bound) {
				return &ColRef{Rel: GroupScope, Col: i, Kind: g.ResultKind(), Name: displayName(e)}, nil
			}
		}
		if _, isConst := bound.(*Const); isConst {
			return bound, nil
		}
		if RelsOf(bound) == 0 {
			return bound, nil
		}
		// Fall through to recursion so mixed expressions like
		// group_key + count(*) work; a bare column will error below.
	}

	switch x := e.(type) {
	case *sql.Literal:
		return &Const{Val: x.Value}, nil
	case *sql.ColumnRef:
		return nil, fmt.Errorf("plan: column %q must appear in GROUP BY or inside an aggregate", x.String())
	case *sql.BinaryExpr:
		l, err := b.bindPostAgg(x.L, q)
		if err != nil {
			return nil, err
		}
		r, err := b.bindPostAgg(x.R, q)
		if err != nil {
			return nil, err
		}
		return makeBin(x.Op, l, r)
	case *sql.NotExpr:
		inner, err := b.bindPostAgg(x.E, q)
		if err != nil {
			return nil, err
		}
		return &Not{E: inner}, nil
	case *sql.NegExpr:
		inner, err := b.bindPostAgg(x.E, q)
		if err != nil {
			return nil, err
		}
		return &Neg{E: inner}, nil
	case *sql.BetweenExpr:
		ev, err := b.bindPostAgg(x.E, q)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindPostAgg(x.Lo, q)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindPostAgg(x.Hi, q)
		if err != nil {
			return nil, err
		}
		return &Between{NotB: x.Not, E: ev, Lo: lo, Hi: hi}, nil
	case *sql.InExpr:
		ev, err := b.bindPostAgg(x.E, q)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(x.List))
		for i, le := range x.List {
			list[i], err = b.bindPostAgg(le, q)
			if err != nil {
				return nil, err
			}
		}
		return &In{NotI: x.Not, E: ev, List: list}, nil
	case *sql.LikeExpr:
		ev, err := b.bindPostAgg(x.E, q)
		if err != nil {
			return nil, err
		}
		return &Like{NotL: x.Not, E: ev, Pattern: x.Pattern}, nil
	case *sql.IsNullExpr:
		ev, err := b.bindPostAgg(x.E, q)
		if err != nil {
			return nil, err
		}
		return &IsNull{NotN: x.Not, E: ev}, nil
	default:
		return nil, fmt.Errorf("plan: cannot bind %T in aggregation scope", e)
	}
}

// aggResultKind determines the output type of an aggregate, or KindNull
// for unsupported combinations.
func aggResultKind(s AggSpec) types.Kind {
	if s.Func == sql.AggCount {
		return types.KindInt
	}
	k := s.Arg.ResultKind()
	switch s.Func {
	case sql.AggSum:
		switch k {
		case types.KindInt:
			return types.KindInt
		case types.KindFloat, types.KindNull:
			return types.KindFloat
		default:
			return types.KindNull
		}
	case sql.AggAvg:
		if k.Numeric() || k == types.KindNull {
			return types.KindFloat
		}
		return types.KindNull
	case sql.AggMin, sql.AggMax:
		if k == types.KindNull {
			return types.KindFloat
		}
		return k
	default:
		return types.KindNull
	}
}

func stmtHasAgg(sel *sql.SelectStmt) bool {
	for _, item := range sel.Items {
		if !item.Star && exprHasAgg(item.Expr) {
			return true
		}
	}
	if sel.Having != nil && exprHasAgg(sel.Having) {
		return true
	}
	for _, oi := range sel.OrderBy {
		if oi.Expr != nil && exprHasAgg(oi.Expr) {
			return true
		}
	}
	return false
}

func exprHasAgg(e sql.Expr) bool {
	switch x := e.(type) {
	case *sql.AggExpr:
		return true
	case *sql.BinaryExpr:
		return exprHasAgg(x.L) || exprHasAgg(x.R)
	case *sql.NotExpr:
		return exprHasAgg(x.E)
	case *sql.NegExpr:
		return exprHasAgg(x.E)
	case *sql.BetweenExpr:
		return exprHasAgg(x.E) || exprHasAgg(x.Lo) || exprHasAgg(x.Hi)
	case *sql.InExpr:
		if exprHasAgg(x.E) {
			return true
		}
		for _, l := range x.List {
			if exprHasAgg(l) {
				return true
			}
		}
		return false
	case *sql.LikeExpr:
		return exprHasAgg(x.E)
	case *sql.IsNullExpr:
		return exprHasAgg(x.E)
	default:
		return false
	}
}

func displayName(e sql.Expr) string {
	if c, ok := e.(*sql.ColumnRef); ok {
		return c.Column
	}
	return e.String()
}
