package plan

import "dbvirt/internal/types"

// BatchSize is the target number of rows per batch in the vectorized
// executor. Scans emit one batch per heap page (a page holds fewer rows
// than this), so a batch never spans a page pin.
const BatchSize = 1024

// Batch is a set of rows in columnar form: one Vec per output column plus
// an optional selection vector. Operators narrow Sel instead of copying
// survivors, so a filtered scan batch still aliases the decoded page
// columns with zero copying.
type Batch struct {
	// Cols holds one vector per column. Column vectors may alias shared
	// column blocks and must not be mutated in place.
	Cols []types.Vec
	// Sel lists the live physical row indexes in ascending order; nil
	// means all N rows are live.
	Sel []int
	// N is the number of physical rows in Cols (the live count when Sel
	// is nil).
	N int
}

// Len returns the number of live rows.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// RowIdx maps the k-th live row to its physical row index.
func (b *Batch) RowIdx(k int) int {
	if b.Sel != nil {
		return b.Sel[k]
	}
	return k
}

// Value returns column col of physical row i.
func (b *Batch) Value(i, col int) types.Value {
	return b.Cols[col].Get(i)
}

// ReadRow materializes physical row i into dst, which must have length
// len(b.Cols).
func (b *Batch) ReadRow(i int, dst Row) {
	for c := range b.Cols {
		dst[c] = b.Cols[c].Get(i)
	}
}

// Reset prepares b as an empty boxed output batch of the given width,
// reusing column capacity.
func (b *Batch) Reset(width int) {
	if cap(b.Cols) < width {
		b.Cols = make([]types.Vec, width)
	}
	b.Cols = b.Cols[:width]
	for c := range b.Cols {
		b.Cols[c].Reset()
	}
	b.Sel = nil
	b.N = 0
}

// AppendRow appends one row to a boxed output batch.
func (b *Batch) AppendRow(r Row) {
	for c := range b.Cols {
		b.Cols[c].Append(r[c])
	}
	b.N++
}
