package plan

import (
	"fmt"

	"dbvirt/internal/sql"
	"dbvirt/internal/types"
)

// Layout maps relation indexes to their base offset in a flat executor
// row. The executor concatenates the tuples of joined relations into one
// row; Layout records where each relation's columns start. The pseudo
// relations GroupScope and AggScope address post-aggregation rows, which
// are laid out as group keys followed by aggregate results.
type Layout struct {
	Base map[int]int
	// GroupCount is the number of group-by keys in post-aggregation rows.
	GroupCount int
}

// NewLayout creates an empty layout.
func NewLayout() Layout { return Layout{Base: make(map[int]int)} }

// SingleRel returns a layout for a row holding just relation rel at
// offset 0.
func SingleRel(rel int) Layout {
	l := NewLayout()
	l.Base[rel] = 0
	return l
}

// PostAgg returns the layout of post-aggregation rows.
func PostAgg(groupCount int) Layout {
	l := NewLayout()
	l.GroupCount = groupCount
	return l
}

// Offset resolves a column reference to a row index.
func (l Layout) Offset(c *ColRef) (int, error) {
	switch c.Rel {
	case GroupScope:
		return c.Col, nil
	case AggScope:
		return l.GroupCount + c.Col, nil
	default:
		base, ok := l.Base[c.Rel]
		if !ok {
			return 0, fmt.Errorf("plan: relation %d not in row layout", c.Rel)
		}
		return base + c.Col, nil
	}
}

// Row is a flat executor row.
type Row []types.Value

// Evaluator computes a bound expression over a row. Evaluators follow SQL
// three-valued logic: any NULL yields NULL except where SQL defines
// otherwise (AND/OR short-circuit, IS NULL).
type Evaluator func(Row) (types.Value, error)

// Compile translates a bound expression into an evaluator. Every operator
// node charges OpsPerOperator to the sink when evaluated; LIKE charges its
// length-dependent cost on top.
func Compile(e Expr, lay Layout, sink CPUSink) (Evaluator, error) {
	switch x := e.(type) {
	case *Const:
		v := x.Val
		return func(Row) (types.Value, error) { return v, nil }, nil

	case *ColRef:
		off, err := lay.Offset(x)
		if err != nil {
			return nil, err
		}
		return func(r Row) (types.Value, error) {
			if off >= len(r) {
				return types.Null, fmt.Errorf("plan: row too short: col %d of %d", off, len(r))
			}
			return r[off], nil
		}, nil

	case *Bin:
		l, err := Compile(x.L, lay, sink)
		if err != nil {
			return nil, err
		}
		r, err := Compile(x.R, lay, sink)
		if err != nil {
			return nil, err
		}
		return compileBin(x.Op, l, r, sink)

	case *Not:
		inner, err := Compile(x.E, lay, sink)
		if err != nil {
			return nil, err
		}
		return func(row Row) (types.Value, error) {
			sink.AccountCPU(OpsPerOperator)
			v, err := inner(row)
			if err != nil || v.IsNull() {
				return types.Null, err
			}
			return types.NewBool(!v.Bool()), nil
		}, nil

	case *Neg:
		inner, err := Compile(x.E, lay, sink)
		if err != nil {
			return nil, err
		}
		return func(row Row) (types.Value, error) {
			sink.AccountCPU(OpsPerOperator)
			v, err := inner(row)
			if err != nil || v.IsNull() {
				return types.Null, err
			}
			switch v.Kind {
			case types.KindInt:
				return types.NewInt(-v.I), nil
			case types.KindFloat:
				return types.NewFloat(-v.F), nil
			default:
				return types.Null, fmt.Errorf("plan: cannot negate %s", v.Kind)
			}
		}, nil

	case *Between:
		ev, err := Compile(x.E, lay, sink)
		if err != nil {
			return nil, err
		}
		lo, err := Compile(x.Lo, lay, sink)
		if err != nil {
			return nil, err
		}
		hi, err := Compile(x.Hi, lay, sink)
		if err != nil {
			return nil, err
		}
		return func(row Row) (types.Value, error) {
			sink.AccountCPU(2 * OpsPerOperator)
			v, err := ev(row)
			if err != nil {
				return types.Null, err
			}
			lv, err := lo(row)
			if err != nil {
				return types.Null, err
			}
			hv, err := hi(row)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() || lv.IsNull() || hv.IsNull() {
				return types.Null, nil
			}
			c1, ok1 := types.Compare(v, lv)
			c2, ok2 := types.Compare(v, hv)
			if !ok1 || !ok2 {
				return types.Null, fmt.Errorf("plan: BETWEEN on incompatible types")
			}
			res := c1 >= 0 && c2 <= 0
			if x.NotB {
				res = !res
			}
			return types.NewBool(res), nil
		}, nil

	case *In:
		ev, err := Compile(x.E, lay, sink)
		if err != nil {
			return nil, err
		}
		list := make([]Evaluator, len(x.List))
		for i, le := range x.List {
			list[i], err = Compile(le, lay, sink)
			if err != nil {
				return nil, err
			}
		}
		return func(row Row) (types.Value, error) {
			sink.AccountCPU(float64(len(list)) * OpsPerOperator)
			v, err := ev(row)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() {
				return types.Null, nil
			}
			sawNull := false
			found := false
			for _, le := range list {
				lv, err := le(row)
				if err != nil {
					return types.Null, err
				}
				if lv.IsNull() {
					sawNull = true
					continue
				}
				if types.Equal(v, lv) {
					found = true
					break
				}
			}
			switch {
			case found:
				return types.NewBool(!x.NotI), nil
			case sawNull:
				return types.Null, nil
			default:
				return types.NewBool(x.NotI), nil
			}
		}, nil

	case *Like:
		ev, err := Compile(x.E, lay, sink)
		if err != nil {
			return nil, err
		}
		pattern := x.Pattern
		return func(row Row) (types.Value, error) {
			v, err := ev(row)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() {
				return types.Null, nil
			}
			if v.Kind != types.KindString {
				return types.Null, fmt.Errorf("plan: LIKE on %s", v.Kind)
			}
			sink.AccountCPU(types.LikeCostOps(len(v.S)))
			res := types.MatchLike(v.S, pattern)
			if x.NotL {
				res = !res
			}
			return types.NewBool(res), nil
		}, nil

	case *IsNull:
		ev, err := Compile(x.E, lay, sink)
		if err != nil {
			return nil, err
		}
		return func(row Row) (types.Value, error) {
			sink.AccountCPU(OpsPerOperator)
			v, err := ev(row)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(v.IsNull() != x.NotN), nil
		}, nil

	default:
		return nil, fmt.Errorf("plan: cannot compile %T", e)
	}
}

func compileBin(op sql.BinaryOp, l, r Evaluator, sink CPUSink) (Evaluator, error) {
	switch op {
	case sql.OpAnd:
		return func(row Row) (types.Value, error) {
			sink.AccountCPU(OpsPerOperator)
			lv, err := l(row)
			if err != nil {
				return types.Null, err
			}
			if !lv.IsNull() && !lv.Bool() {
				return types.NewBool(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return types.Null, err
			}
			if !rv.IsNull() && !rv.Bool() {
				return types.NewBool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null, nil
			}
			return types.NewBool(true), nil
		}, nil

	case sql.OpOr:
		return func(row Row) (types.Value, error) {
			sink.AccountCPU(OpsPerOperator)
			lv, err := l(row)
			if err != nil {
				return types.Null, err
			}
			if !lv.IsNull() && lv.Bool() {
				return types.NewBool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return types.Null, err
			}
			if !rv.IsNull() && rv.Bool() {
				return types.NewBool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null, nil
			}
			return types.NewBool(false), nil
		}, nil
	}

	if op.Comparison() {
		return func(row Row) (types.Value, error) {
			sink.AccountCPU(OpsPerOperator)
			lv, err := l(row)
			if err != nil {
				return types.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null, nil
			}
			c, ok := types.Compare(lv, rv)
			if !ok {
				return types.Null, fmt.Errorf("plan: cannot compare %s with %s", lv.Kind, rv.Kind)
			}
			var res bool
			switch op {
			case sql.OpEq:
				res = c == 0
			case sql.OpNe:
				res = c != 0
			case sql.OpLt:
				res = c < 0
			case sql.OpLe:
				res = c <= 0
			case sql.OpGt:
				res = c > 0
			case sql.OpGe:
				res = c >= 0
			}
			return types.NewBool(res), nil
		}, nil
	}

	// Arithmetic.
	return func(row Row) (types.Value, error) {
		sink.AccountCPU(OpsPerOperator)
		lv, err := l(row)
		if err != nil {
			return types.Null, err
		}
		rv, err := r(row)
		if err != nil {
			return types.Null, err
		}
		if lv.IsNull() || rv.IsNull() {
			return types.Null, nil
		}
		return arith(op, lv, rv)
	}, nil
}

func arith(op sql.BinaryOp, l, r types.Value) (types.Value, error) {
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return types.Null, fmt.Errorf("plan: arithmetic on %s and %s", l.Kind, r.Kind)
	}
	useFloat := l.Kind == types.KindFloat || r.Kind == types.KindFloat
	if useFloat {
		var out float64
		switch op {
		case sql.OpAdd:
			out = lf + rf
		case sql.OpSub:
			out = lf - rf
		case sql.OpMul:
			out = lf * rf
		case sql.OpDiv:
			if rf == 0 {
				return types.Null, fmt.Errorf("plan: division by zero")
			}
			out = lf / rf
		default:
			return types.Null, fmt.Errorf("plan: unknown arithmetic op %v", op)
		}
		return types.NewFloat(out), nil
	}
	li, ri := l.I, r.I
	var out int64
	switch op {
	case sql.OpAdd:
		out = li + ri
	case sql.OpSub:
		out = li - ri
	case sql.OpMul:
		out = li * ri
	case sql.OpDiv:
		if ri == 0 {
			return types.Null, fmt.Errorf("plan: division by zero")
		}
		out = li / ri
	default:
		return types.Null, fmt.Errorf("plan: unknown arithmetic op %v", op)
	}
	// Date arithmetic yields dates for +/- with ints, int otherwise.
	if (l.Kind == types.KindDate) != (r.Kind == types.KindDate) && (op == sql.OpAdd || op == sql.OpSub) {
		return types.NewDate(out), nil
	}
	return types.NewInt(out), nil
}

// Truthy reports whether a filter value passes: NULL and false are both
// rejected.
func Truthy(v types.Value) bool { return !v.IsNull() && v.Bool() }
