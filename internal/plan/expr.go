// Package plan implements the semantic layer between the SQL parser and
// the optimizer/executor: it binds parsed queries against the catalog,
// resolves and type-checks expressions, classifies predicates by the
// relations they touch, and compiles bound expressions to evaluators with
// SQL three-valued logic. Compiled evaluators charge their CPU cost to a
// sink (the session's VM) so that expression-heavy queries are CPU-bound
// in the simulator, as they are on real hardware.
package plan

import (
	"fmt"
	"strings"

	"dbvirt/internal/sql"
	"dbvirt/internal/types"
)

// Simulated CPU cost, in abstract machine operations, of evaluating one
// expression operator node once. With the default machine (1e9 ops/s CPU,
// 2560 pages/s sequential disk) one operator evaluation costs ~0.00026 of
// a sequential page fetch, so plain scans are disk-dominated — as on the
// paper's 2006 testbed — while expression-heavy work (LIKE over long
// strings) remains CPU-dominated.
const OpsPerOperator = 100

// CPUSink receives the CPU cost of expression evaluation. *vm.VM satisfies
// it.
type CPUSink interface {
	AccountCPU(ops float64)
}

// NullSink discards CPU accounting; used by tests and by the optimizer's
// constant folding.
type NullSink struct{}

// AccountCPU implements CPUSink.
func (NullSink) AccountCPU(float64) {}

// Expr is a bound (resolved, type-checked) expression.
type Expr interface {
	// ResultKind is the expression's result type. Comparisons and logic
	// yield KindBool.
	ResultKind() types.Kind
	// String renders the expression for EXPLAIN output.
	String() string
}

// ColRef references column Col of relation Rel (an index into the bound
// query's Rels). In post-aggregation scope, Rel is one of the pseudo
// relations GroupScope or AggScope.
type ColRef struct {
	Rel  int
	Col  int
	Kind types.Kind
	Name string // qualified display name
}

// Pseudo relation indexes for post-aggregation scope.
const (
	// GroupScope marks a ColRef to group-by key i (Col = i).
	GroupScope = -1
	// AggScope marks a ColRef to aggregate output i (Col = i).
	AggScope = -2
)

// Const is a literal.
type Const struct {
	Val types.Value
}

// Bin is a binary operation (arithmetic or comparison or AND/OR).
type Bin struct {
	Op   sql.BinaryOp
	L, R Expr
	K    types.Kind
}

// Not is logical negation.
type Not struct{ E Expr }

// Neg is arithmetic negation.
type Neg struct{ E Expr }

// Between is e [NOT] BETWEEN lo AND hi.
type Between struct {
	NotB   bool
	E      Expr
	Lo, Hi Expr
}

// In is e [NOT] IN (list).
type In struct {
	NotI bool
	E    Expr
	List []Expr
}

// Like is e [NOT] LIKE pattern.
type Like struct {
	NotL    bool
	E       Expr
	Pattern string
}

// IsNull is e IS [NOT] NULL.
type IsNull struct {
	NotN bool
	E    Expr
}

// ResultKind implementations.
func (c *ColRef) ResultKind() types.Kind { return c.Kind }
func (c *Const) ResultKind() types.Kind  { return c.Val.Kind }
func (b *Bin) ResultKind() types.Kind    { return b.K }
func (*Not) ResultKind() types.Kind      { return types.KindBool }
func (n *Neg) ResultKind() types.Kind    { return n.E.ResultKind() }
func (*Between) ResultKind() types.Kind  { return types.KindBool }
func (*In) ResultKind() types.Kind       { return types.KindBool }
func (*Like) ResultKind() types.Kind     { return types.KindBool }
func (*IsNull) ResultKind() types.Kind   { return types.KindBool }

// String implementations.
func (c *ColRef) String() string {
	switch c.Rel {
	case GroupScope:
		return fmt.Sprintf("group[%d]", c.Col)
	case AggScope:
		return fmt.Sprintf("agg[%d]", c.Col)
	default:
		return c.Name
	}
}

func (c *Const) String() string {
	if c.Val.Kind == types.KindString {
		return "'" + c.Val.S + "'"
	}
	return c.Val.String()
}

func (b *Bin) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

func (n *Not) String() string { return "NOT " + n.E.String() }
func (n *Neg) String() string { return "-" + n.E.String() }

func (b *Between) String() string {
	not := ""
	if b.NotB {
		not = " NOT"
	}
	return fmt.Sprintf("(%s%s BETWEEN %s AND %s)", b.E, not, b.Lo, b.Hi)
}

func (i *In) String() string {
	var parts []string
	for _, e := range i.List {
		parts = append(parts, e.String())
	}
	not := ""
	if i.NotI {
		not = " NOT"
	}
	return fmt.Sprintf("(%s%s IN (%s))", i.E, not, strings.Join(parts, ", "))
}

func (l *Like) String() string {
	not := ""
	if l.NotL {
		not = " NOT"
	}
	return fmt.Sprintf("(%s%s LIKE '%s')", l.E, not, l.Pattern)
}

func (i *IsNull) String() string {
	if i.NotN {
		return "(" + i.E.String() + " IS NOT NULL)"
	}
	return "(" + i.E.String() + " IS NULL)"
}

// Equal reports structural equality of two bound expressions; used to
// match ORDER BY and select-list expressions against GROUP BY keys.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case *ColRef:
		y, ok := b.(*ColRef)
		return ok && x.Rel == y.Rel && x.Col == y.Col
	case *Const:
		y, ok := b.(*Const)
		if !ok || x.Val.Kind != y.Val.Kind {
			return false
		}
		if x.Val.IsNull() {
			return true
		}
		return types.Equal(x.Val, y.Val)
	case *Bin:
		y, ok := b.(*Bin)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Not:
		y, ok := b.(*Not)
		return ok && Equal(x.E, y.E)
	case *Neg:
		y, ok := b.(*Neg)
		return ok && Equal(x.E, y.E)
	case *Between:
		y, ok := b.(*Between)
		return ok && x.NotB == y.NotB && Equal(x.E, y.E) && Equal(x.Lo, y.Lo) && Equal(x.Hi, y.Hi)
	case *In:
		y, ok := b.(*In)
		if !ok || x.NotI != y.NotI || len(x.List) != len(y.List) || !Equal(x.E, y.E) {
			return false
		}
		for i := range x.List {
			if !Equal(x.List[i], y.List[i]) {
				return false
			}
		}
		return true
	case *Like:
		y, ok := b.(*Like)
		return ok && x.NotL == y.NotL && x.Pattern == y.Pattern && Equal(x.E, y.E)
	case *IsNull:
		y, ok := b.(*IsNull)
		return ok && x.NotN == y.NotN && Equal(x.E, y.E)
	default:
		return false
	}
}

// RelSet is a bitmask of relation indexes (supports up to 64 relations).
type RelSet uint64

// NewRelSet builds a set from relation indexes.
func NewRelSet(rels ...int) RelSet {
	var s RelSet
	for _, r := range rels {
		s |= 1 << uint(r)
	}
	return s
}

// Has reports whether relation r is in the set.
func (s RelSet) Has(r int) bool { return s&(1<<uint(r)) != 0 }

// Union returns the union of two sets.
func (s RelSet) Union(o RelSet) RelSet { return s | o }

// SubsetOf reports whether s ⊆ o.
func (s RelSet) SubsetOf(o RelSet) bool { return s&^o == 0 }

// Intersects reports whether the sets share a relation.
func (s RelSet) Intersects(o RelSet) bool { return s&o != 0 }

// Count returns the number of relations in the set.
func (s RelSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// RelsOf returns the set of base relations referenced by an expression.
// Pseudo-scope references contribute nothing.
func RelsOf(e Expr) RelSet {
	switch x := e.(type) {
	case *ColRef:
		if x.Rel >= 0 {
			return NewRelSet(x.Rel)
		}
		return 0
	case *Const:
		return 0
	case *Bin:
		return RelsOf(x.L) | RelsOf(x.R)
	case *Not:
		return RelsOf(x.E)
	case *Neg:
		return RelsOf(x.E)
	case *Between:
		return RelsOf(x.E) | RelsOf(x.Lo) | RelsOf(x.Hi)
	case *In:
		s := RelsOf(x.E)
		for _, l := range x.List {
			s |= RelsOf(l)
		}
		return s
	case *Like:
		return RelsOf(x.E)
	case *IsNull:
		return RelsOf(x.E)
	default:
		return 0
	}
}

// NumOperators counts the operator nodes in an expression: the optimizer
// multiplies it by cpu_operator_cost per input row.
func NumOperators(e Expr) int {
	switch x := e.(type) {
	case *ColRef, *Const:
		return 0
	case *Bin:
		return 1 + NumOperators(x.L) + NumOperators(x.R)
	case *Not:
		return 1 + NumOperators(x.E)
	case *Neg:
		return 1 + NumOperators(x.E)
	case *Between:
		return 2 + NumOperators(x.E) + NumOperators(x.Lo) + NumOperators(x.Hi)
	case *In:
		n := len(x.List) + NumOperators(x.E)
		for _, l := range x.List {
			n += NumOperators(l)
		}
		return n
	case *Like:
		// LIKE is far more expensive than a comparison; the optimizer
		// models it as several operator units (the executor charges the
		// true length-dependent cost). 4 units corresponds to a typical
		// 90-byte string under types.LikeCostOps.
		return 4 + NumOperators(x.E)
	case *IsNull:
		return 1 + NumOperators(x.E)
	default:
		return 1
	}
}
