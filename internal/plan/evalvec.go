package plan

import (
	"fmt"
	"strings"

	"dbvirt/internal/sql"
	"dbvirt/internal/types"
)

// VecEval evaluates a compiled expression over selected rows of a batch:
// for each k, out[k] receives the expression's value on physical row
// sel[k]. out must have length len(sel).
//
// VecEval charges the sink exactly the CPU operations the row-at-a-time
// Evaluator would charge across the same rows: per-operator charges are
// issued once per batch as ops × rows, and AND/OR evaluate their right
// operand only on the sub-selection where the left operand did not decide
// the result — the vector form of the scalar short-circuit. Because every
// charge is integer-valued and the VM accumulates exact counters, the
// totals are bit-identical to scalar evaluation. The only divergence is on
// error paths (a failing row may have charged the rest of its batch
// first); errors abort the query, so no cost observation follows them.
type VecEval func(b *Batch, sel []int, out []types.Value) error

// growVals returns a value slice of length n, reusing s's capacity.
func growVals(s []types.Value, n int) []types.Value {
	if cap(s) < n {
		return make([]types.Value, n)
	}
	return s[:n]
}

// CompileVec translates a bound expression into a vectorized evaluator
// with the same semantics and CPU charges as Compile.
func CompileVec(e Expr, lay Layout, sink CPUSink) (VecEval, error) {
	switch x := e.(type) {
	case *Const:
		v := x.Val
		return func(_ *Batch, sel []int, out []types.Value) error {
			for k := range sel {
				out[k] = v
			}
			return nil
		}, nil

	case *ColRef:
		off, err := lay.Offset(x)
		if err != nil {
			return nil, err
		}
		return func(b *Batch, sel []int, out []types.Value) error {
			if off >= len(b.Cols) {
				return fmt.Errorf("plan: row too short: col %d of %d", off, len(b.Cols))
			}
			// Per-representation gather loops; each produces exactly what
			// col.Get(i) would, without its per-row branch chain.
			col := &b.Cols[off]
			if col.Any != nil {
				a := col.Any
				for k, i := range sel {
					out[k] = a[i]
				}
				return nil
			}
			nul := col.Null
			switch col.Kind {
			case types.KindFloat:
				f := col.F
				if nul == nil {
					for k, i := range sel {
						out[k] = types.Value{Kind: types.KindFloat, F: f[i]}
					}
				} else {
					for k, i := range sel {
						if nul[i] {
							out[k] = types.Null
						} else {
							out[k] = types.Value{Kind: types.KindFloat, F: f[i]}
						}
					}
				}
			case types.KindString:
				s := col.S
				if nul == nil {
					for k, i := range sel {
						out[k] = types.Value{Kind: types.KindString, S: s[i]}
					}
				} else {
					for k, i := range sel {
						if nul[i] {
							out[k] = types.Null
						} else {
							out[k] = types.Value{Kind: types.KindString, S: s[i]}
						}
					}
				}
			case types.KindNull:
				for k := range sel {
					out[k] = types.Null
				}
			default: // Int, Date, Bool
				iv := col.I
				kind := col.Kind
				if nul == nil {
					for k, i := range sel {
						out[k] = types.Value{Kind: kind, I: iv[i]}
					}
				} else {
					for k, i := range sel {
						if nul[i] {
							out[k] = types.Null
						} else {
							out[k] = types.Value{Kind: kind, I: iv[i]}
						}
					}
				}
			}
			return nil
		}, nil

	case *Bin:
		if x.Op.Comparison() {
			if ev, ok := fuseCmpColConst(x, lay, sink); ok {
				return ev, nil
			}
		}
		l, err := CompileVec(x.L, lay, sink)
		if err != nil {
			return nil, err
		}
		r, err := CompileVec(x.R, lay, sink)
		if err != nil {
			return nil, err
		}
		return compileBinVec(x.Op, l, r, sink)

	case *Not:
		inner, err := CompileVec(x.E, lay, sink)
		if err != nil {
			return nil, err
		}
		var iv []types.Value
		return func(b *Batch, sel []int, out []types.Value) error {
			sink.AccountCPU(OpsPerOperator * float64(len(sel)))
			iv = growVals(iv, len(sel))
			if err := inner(b, sel, iv); err != nil {
				return err
			}
			for k := range sel {
				if iv[k].IsNull() {
					out[k] = types.Null
				} else {
					out[k] = types.NewBool(!iv[k].Bool())
				}
			}
			return nil
		}, nil

	case *Neg:
		inner, err := CompileVec(x.E, lay, sink)
		if err != nil {
			return nil, err
		}
		var iv []types.Value
		return func(b *Batch, sel []int, out []types.Value) error {
			sink.AccountCPU(OpsPerOperator * float64(len(sel)))
			iv = growVals(iv, len(sel))
			if err := inner(b, sel, iv); err != nil {
				return err
			}
			for k := range sel {
				v := iv[k]
				switch v.Kind {
				case types.KindNull:
					out[k] = types.Null
				case types.KindInt:
					out[k] = types.NewInt(-v.I)
				case types.KindFloat:
					out[k] = types.NewFloat(-v.F)
				default:
					return fmt.Errorf("plan: cannot negate %s", v.Kind)
				}
			}
			return nil
		}, nil

	case *Between:
		if fev, ok := fuseBetweenColConst(x, lay, sink); ok {
			return fev, nil
		}
		ev, err := CompileVec(x.E, lay, sink)
		if err != nil {
			return nil, err
		}
		lo, err := CompileVec(x.Lo, lay, sink)
		if err != nil {
			return nil, err
		}
		hi, err := CompileVec(x.Hi, lay, sink)
		if err != nil {
			return nil, err
		}
		notB := x.NotB
		var vv, lv, hv []types.Value
		return func(b *Batch, sel []int, out []types.Value) error {
			n := len(sel)
			sink.AccountCPU(2 * OpsPerOperator * float64(n))
			vv, lv, hv = growVals(vv, n), growVals(lv, n), growVals(hv, n)
			if err := ev(b, sel, vv); err != nil {
				return err
			}
			if err := lo(b, sel, lv); err != nil {
				return err
			}
			if err := hi(b, sel, hv); err != nil {
				return err
			}
			for k := 0; k < n; k++ {
				if vv[k].IsNull() || lv[k].IsNull() || hv[k].IsNull() {
					out[k] = types.Null
					continue
				}
				c1, ok1 := cmpFast(vv[k], lv[k])
				c2, ok2 := cmpFast(vv[k], hv[k])
				if !ok1 || !ok2 {
					return fmt.Errorf("plan: BETWEEN on incompatible types")
				}
				res := c1 >= 0 && c2 <= 0
				if notB {
					res = !res
				}
				out[k] = types.NewBool(res)
			}
			return nil
		}, nil

	case *In:
		// Vectorize only when every list element is charge-free (Const or
		// ColRef): the scalar form evaluates list elements lazily, which
		// only matters for charges. Complex lists fall back to the scalar
		// evaluator row by row.
		getters := make([]func(*Batch, int) types.Value, len(x.List))
		offs := make([]int, 0, len(x.List))
		simple := true
		for i, le := range x.List {
			switch y := le.(type) {
			case *Const:
				v := y.Val
				getters[i] = func(*Batch, int) types.Value { return v }
			case *ColRef:
				off, err := lay.Offset(y)
				if err != nil {
					return nil, err
				}
				offs = append(offs, off)
				getters[i] = func(b *Batch, row int) types.Value { return b.Cols[off].Get(row) }
			default:
				simple = false
			}
			if !simple {
				break
			}
		}
		if !simple {
			return rowFallback(e, lay, sink)
		}
		ev, err := CompileVec(x.E, lay, sink)
		if err != nil {
			return nil, err
		}
		notI := x.NotI
		var vv []types.Value
		return func(b *Batch, sel []int, out []types.Value) error {
			n := len(sel)
			sink.AccountCPU(float64(len(getters)) * OpsPerOperator * float64(n))
			for _, off := range offs {
				if off >= len(b.Cols) {
					return fmt.Errorf("plan: row too short: col %d of %d", off, len(b.Cols))
				}
			}
			vv = growVals(vv, n)
			if err := ev(b, sel, vv); err != nil {
				return err
			}
			for k, i := range sel {
				v := vv[k]
				if v.IsNull() {
					out[k] = types.Null
					continue
				}
				sawNull := false
				found := false
				for _, g := range getters {
					lv := g(b, i)
					if lv.IsNull() {
						sawNull = true
						continue
					}
					if types.Equal(v, lv) {
						found = true
						break
					}
				}
				switch {
				case found:
					out[k] = types.NewBool(!notI)
				case sawNull:
					out[k] = types.Null
				default:
					out[k] = types.NewBool(notI)
				}
			}
			return nil
		}, nil

	case *Like:
		ev, err := CompileVec(x.E, lay, sink)
		if err != nil {
			return nil, err
		}
		match := compileLikeMatcher(x.Pattern)
		notL := x.NotL
		var vv []types.Value
		return func(b *Batch, sel []int, out []types.Value) error {
			vv = growVals(vv, len(sel))
			if err := ev(b, sel, vv); err != nil {
				return err
			}
			var ops float64
			for k := range sel {
				v := vv[k]
				if v.IsNull() {
					out[k] = types.Null
					continue
				}
				if v.Kind != types.KindString {
					sink.AccountCPU(ops)
					return fmt.Errorf("plan: LIKE on %s", v.Kind)
				}
				ops += types.LikeCostOps(len(v.S))
				res := match(v.S)
				if notL {
					res = !res
				}
				out[k] = types.NewBool(res)
			}
			sink.AccountCPU(ops)
			return nil
		}, nil

	case *IsNull:
		inner, err := CompileVec(x.E, lay, sink)
		if err != nil {
			return nil, err
		}
		notN := x.NotN
		var iv []types.Value
		return func(b *Batch, sel []int, out []types.Value) error {
			sink.AccountCPU(OpsPerOperator * float64(len(sel)))
			iv = growVals(iv, len(sel))
			if err := inner(b, sel, iv); err != nil {
				return err
			}
			for k := range sel {
				out[k] = types.NewBool(iv[k].IsNull() != notN)
			}
			return nil
		}, nil

	default:
		return nil, fmt.Errorf("plan: cannot compile %T", e)
	}
}

// cmpFast compares two non-NULL values, specializing the same-kind cases
// of types.Compare (identical results; it only skips the generic kind
// dispatch and float promotion).
func cmpFast(a, b types.Value) (int, bool) {
	if a.Kind == b.Kind {
		switch a.Kind {
		case types.KindFloat:
			switch {
			case a.F < b.F:
				return -1, true
			case a.F > b.F:
				return 1, true
			}
			return 0, true
		case types.KindInt, types.KindDate, types.KindBool:
			switch {
			case a.I < b.I:
				return -1, true
			case a.I > b.I:
				return 1, true
			}
			return 0, true
		}
	}
	return types.Compare(a, b)
}

// rowFallback evaluates an expression with the scalar evaluator, one
// selected row at a time; charges are identical by construction.
func rowFallback(e Expr, lay Layout, sink CPUSink) (VecEval, error) {
	ev, err := Compile(e, lay, sink)
	if err != nil {
		return nil, err
	}
	var row Row
	return func(b *Batch, sel []int, out []types.Value) error {
		if cap(row) < len(b.Cols) {
			row = make(Row, len(b.Cols))
		}
		r := row[:len(b.Cols)]
		for k, i := range sel {
			b.ReadRow(i, r)
			v, err := ev(r)
			if err != nil {
				return err
			}
			out[k] = v
		}
		return nil
	}, nil
}

func compileBinVec(op sql.BinaryOp, l, r VecEval, sink CPUSink) (VecEval, error) {
	switch op {
	case sql.OpAnd:
		var lv, rv []types.Value
		var subsel, subpos []int
		return func(b *Batch, sel []int, out []types.Value) error {
			n := len(sel)
			sink.AccountCPU(OpsPerOperator * float64(n))
			lv = growVals(lv, n)
			if err := l(b, sel, lv); err != nil {
				return err
			}
			subsel, subpos = subsel[:0], subpos[:0]
			for k := 0; k < n; k++ {
				if !lv[k].IsNull() && !lv[k].Bool() {
					out[k] = types.NewBool(false)
				} else {
					subsel = append(subsel, sel[k])
					subpos = append(subpos, k)
				}
			}
			if len(subsel) == 0 {
				return nil
			}
			rv = growVals(rv, len(subsel))
			if err := r(b, subsel, rv); err != nil {
				return err
			}
			for j, k := range subpos {
				switch {
				case !rv[j].IsNull() && !rv[j].Bool():
					out[k] = types.NewBool(false)
				case lv[k].IsNull() || rv[j].IsNull():
					out[k] = types.Null
				default:
					out[k] = types.NewBool(true)
				}
			}
			return nil
		}, nil

	case sql.OpOr:
		var lv, rv []types.Value
		var subsel, subpos []int
		return func(b *Batch, sel []int, out []types.Value) error {
			n := len(sel)
			sink.AccountCPU(OpsPerOperator * float64(n))
			lv = growVals(lv, n)
			if err := l(b, sel, lv); err != nil {
				return err
			}
			subsel, subpos = subsel[:0], subpos[:0]
			for k := 0; k < n; k++ {
				if !lv[k].IsNull() && lv[k].Bool() {
					out[k] = types.NewBool(true)
				} else {
					subsel = append(subsel, sel[k])
					subpos = append(subpos, k)
				}
			}
			if len(subsel) == 0 {
				return nil
			}
			rv = growVals(rv, len(subsel))
			if err := r(b, subsel, rv); err != nil {
				return err
			}
			for j, k := range subpos {
				switch {
				case !rv[j].IsNull() && rv[j].Bool():
					out[k] = types.NewBool(true)
				case lv[k].IsNull() || rv[j].IsNull():
					out[k] = types.Null
				default:
					out[k] = types.NewBool(false)
				}
			}
			return nil
		}, nil
	}

	if op.Comparison() {
		var lv, rv []types.Value
		return func(b *Batch, sel []int, out []types.Value) error {
			n := len(sel)
			sink.AccountCPU(OpsPerOperator * float64(n))
			lv, rv = growVals(lv, n), growVals(rv, n)
			if err := l(b, sel, lv); err != nil {
				return err
			}
			if err := r(b, sel, rv); err != nil {
				return err
			}
			for k := 0; k < n; k++ {
				if lv[k].IsNull() || rv[k].IsNull() {
					out[k] = types.Null
					continue
				}
				c, ok := cmpFast(lv[k], rv[k])
				if !ok {
					return fmt.Errorf("plan: cannot compare %s with %s", lv[k].Kind, rv[k].Kind)
				}
				var res bool
				switch op {
				case sql.OpEq:
					res = c == 0
				case sql.OpNe:
					res = c != 0
				case sql.OpLt:
					res = c < 0
				case sql.OpLe:
					res = c <= 0
				case sql.OpGt:
					res = c > 0
				case sql.OpGe:
					res = c >= 0
				}
				out[k] = types.NewBool(res)
			}
			return nil
		}, nil
	}

	// Arithmetic.
	var lv, rv []types.Value
	return func(b *Batch, sel []int, out []types.Value) error {
		n := len(sel)
		sink.AccountCPU(OpsPerOperator * float64(n))
		lv, rv = growVals(lv, n), growVals(rv, n)
		if err := l(b, sel, lv); err != nil {
			return err
		}
		if err := r(b, sel, rv); err != nil {
			return err
		}
		for k := 0; k < n; k++ {
			a, b2 := lv[k], rv[k]
			if a.IsNull() || b2.IsNull() {
				out[k] = types.Null
				continue
			}
			// Numeric fast paths for +,-,* mirror arith() exactly: float
			// promotion when either side is a float, and an int result for
			// int⊗int (the date-typing rule only applies with a date
			// operand, which takes the general path).
			if a.Kind == types.KindInt && b2.Kind == types.KindInt {
				var i int64
				switch op {
				case sql.OpAdd:
					i = a.I + b2.I
				case sql.OpSub:
					i = a.I - b2.I
				case sql.OpMul:
					i = a.I * b2.I
				default:
					goto general
				}
				out[k] = types.Value{Kind: types.KindInt, I: i}
				continue
			}
			if (a.Kind == types.KindFloat || b2.Kind == types.KindFloat) &&
				(a.Kind == types.KindFloat || a.Kind == types.KindInt) &&
				(b2.Kind == types.KindFloat || b2.Kind == types.KindInt) {
				af, bf := a.F, b2.F
				if a.Kind == types.KindInt {
					af = float64(a.I)
				}
				if b2.Kind == types.KindInt {
					bf = float64(b2.I)
				}
				var f float64
				switch op {
				case sql.OpAdd:
					f = af + bf
				case sql.OpSub:
					f = af - bf
				case sql.OpMul:
					f = af * bf
				default:
					goto general
				}
				out[k] = types.Value{Kind: types.KindFloat, F: f}
				continue
			}
		general:
			v, err := arith(op, a, b2)
			if err != nil {
				return err
			}
			out[k] = v
		}
		return nil
	}, nil
}

// compileLikeMatcher builds a matcher equivalent to
// types.MatchLike(s, pattern), specialized once at compile time. A
// pattern without '_' wildcards reduces to a prefix check, a suffix
// check, and an ordered chain of substring searches, which run on the
// optimized strings package instead of the general byte-at-a-time
// backtracking matcher. The charge (LikeCostOps per row) is unchanged.
func compileLikeMatcher(pattern string) func(string) bool {
	if strings.ContainsRune(pattern, '_') {
		return func(s string) bool { return types.MatchLike(s, pattern) }
	}
	segs := strings.Split(pattern, "%")
	if len(segs) == 1 {
		return func(s string) bool { return s == pattern }
	}
	first, last := segs[0], segs[len(segs)-1]
	mids := segs[1 : len(segs)-1]
	return func(s string) bool {
		if !strings.HasPrefix(s, first) {
			return false
		}
		s = s[len(first):]
		if len(s) < len(last) || !strings.HasSuffix(s, last) {
			return false
		}
		s = s[:len(s)-len(last)]
		for _, m := range mids {
			if m == "" {
				continue
			}
			idx := strings.Index(s, m)
			if idx < 0 {
				return false
			}
			s = s[idx+len(m):]
		}
		return true
	}
}

// cmpOpRes maps a three-way comparison result to a comparison operator's
// boolean result, exactly as the generic comparison loop does.
func cmpOpRes(op sql.BinaryOp, c int) bool {
	switch op {
	case sql.OpEq:
		return c == 0
	case sql.OpNe:
		return c != 0
	case sql.OpLt:
		return c < 0
	case sql.OpLe:
		return c <= 0
	case sql.OpGt:
		return c > 0
	case sql.OpGe:
		return c >= 0
	}
	return false
}

// fuseCmpColConst specializes `column <op> constant` (either operand
// order) comparisons: typed same-kind columns compare directly on the
// payload slice with no per-row boxing or gathering. Charges, NULL
// handling, error messages, and three-way comparison results (including
// the NaN-compares-equal convention of cmpFast) are identical to the
// generic path.
func fuseCmpColConst(x *Bin, lay Layout, sink CPUSink) (VecEval, bool) {
	op := x.Op
	cr, okC := x.L.(*ColRef)
	cn, okK := x.R.(*Const)
	flip := false
	if !okC || !okK {
		cn, okK = x.L.(*Const)
		cr, okC = x.R.(*ColRef)
		if !okC || !okK {
			return nil, false
		}
		flip = true
	}
	off, err := lay.Offset(cr)
	if err != nil {
		return nil, false
	}
	cv := cn.Val
	return func(b *Batch, sel []int, out []types.Value) error {
		n := len(sel)
		sink.AccountCPU(OpsPerOperator * float64(n))
		if off >= len(b.Cols) {
			return fmt.Errorf("plan: row too short: col %d of %d", off, len(b.Cols))
		}
		col := &b.Cols[off]
		if cv.IsNull() {
			for k := range sel {
				out[k] = types.Null
			}
			return nil
		}
		if col.Any == nil && cv.Kind == col.Kind {
			nul := col.Null
			switch col.Kind {
			case types.KindFloat:
				f, c := col.F, cv.F
				for k, i := range sel {
					if nul != nil && nul[i] {
						out[k] = types.Null
						continue
					}
					cc := 0
					switch v := f[i]; {
					case v < c:
						cc = -1
					case v > c:
						cc = 1
					}
					if flip {
						cc = -cc
					}
					out[k] = types.NewBool(cmpOpRes(op, cc))
				}
				return nil
			case types.KindInt, types.KindDate, types.KindBool:
				iv, c := col.I, cv.I
				for k, i := range sel {
					if nul != nil && nul[i] {
						out[k] = types.Null
						continue
					}
					cc := 0
					switch v := iv[i]; {
					case v < c:
						cc = -1
					case v > c:
						cc = 1
					}
					if flip {
						cc = -cc
					}
					out[k] = types.NewBool(cmpOpRes(op, cc))
				}
				return nil
			case types.KindString:
				s, c := col.S, cv.S
				for k, i := range sel {
					if nul != nil && nul[i] {
						out[k] = types.Null
						continue
					}
					cc := strings.Compare(s[i], c)
					if flip {
						cc = -cc
					}
					out[k] = types.NewBool(cmpOpRes(op, cc))
				}
				return nil
			}
		}
		for k, i := range sel {
			v := col.Get(i)
			if v.IsNull() {
				out[k] = types.Null
				continue
			}
			a, b2 := v, cv
			if flip {
				a, b2 = cv, v
			}
			c, ok := cmpFast(a, b2)
			if !ok {
				return fmt.Errorf("plan: cannot compare %s with %s", a.Kind, b2.Kind)
			}
			out[k] = types.NewBool(cmpOpRes(op, c))
		}
		return nil
	}, true
}

// fuseBetweenColConst specializes `column BETWEEN const AND const` over
// typed same-kind columns, comparing directly on the payload slice. The
// !(v < lo) / !(v > hi) forms reproduce cmpFast's three-way results
// exactly, NaN included.
func fuseBetweenColConst(x *Between, lay Layout, sink CPUSink) (VecEval, bool) {
	cr, ok1 := x.E.(*ColRef)
	lo, ok2 := x.Lo.(*Const)
	hi, ok3 := x.Hi.(*Const)
	if !ok1 || !ok2 || !ok3 {
		return nil, false
	}
	off, err := lay.Offset(cr)
	if err != nil {
		return nil, false
	}
	loV, hiV := lo.Val, hi.Val
	notB := x.NotB
	return func(b *Batch, sel []int, out []types.Value) error {
		n := len(sel)
		sink.AccountCPU(2 * OpsPerOperator * float64(n))
		if off >= len(b.Cols) {
			return fmt.Errorf("plan: row too short: col %d of %d", off, len(b.Cols))
		}
		col := &b.Cols[off]
		if loV.IsNull() || hiV.IsNull() {
			for k := range sel {
				out[k] = types.Null
			}
			return nil
		}
		if col.Any == nil && loV.Kind == col.Kind && hiV.Kind == col.Kind {
			nul := col.Null
			switch col.Kind {
			case types.KindFloat:
				f, loF, hiF := col.F, loV.F, hiV.F
				for k, i := range sel {
					if nul != nil && nul[i] {
						out[k] = types.Null
						continue
					}
					v := f[i]
					res := !(v < loF) && !(v > hiF)
					if notB {
						res = !res
					}
					out[k] = types.NewBool(res)
				}
				return nil
			case types.KindInt, types.KindDate, types.KindBool:
				iv, loI, hiI := col.I, loV.I, hiV.I
				for k, i := range sel {
					if nul != nil && nul[i] {
						out[k] = types.Null
						continue
					}
					v := iv[i]
					res := v >= loI && v <= hiI
					if notB {
						res = !res
					}
					out[k] = types.NewBool(res)
				}
				return nil
			}
		}
		for k, i := range sel {
			v := col.Get(i)
			if v.IsNull() {
				out[k] = types.Null
				continue
			}
			c1, okA := cmpFast(v, loV)
			c2, okB := cmpFast(v, hiV)
			if !okA || !okB {
				return fmt.Errorf("plan: BETWEEN on incompatible types")
			}
			res := c1 >= 0 && c2 <= 0
			if notB {
				res = !res
			}
			out[k] = types.NewBool(res)
		}
		return nil
	}, true
}
