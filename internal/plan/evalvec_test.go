package plan

import (
	"fmt"
	"testing"

	"dbvirt/internal/types"
)

// vecParityExprs are scalar SELECT expressions over the orders schema
// covering every CompileVec case: comparisons (both null and non-null
// operands), AND/OR short-circuiting, arithmetic, BETWEEN, IN (simple and
// compiled-fallback lists), LIKE, IS NULL, NOT, and negation.
var vecParityExprs = []string{
	"o_orderkey = 7",
	"o_orderkey <> o_custkey",
	"o_total < 500.0",
	"o_total >= 100.0",
	"o_orderkey <= o_custkey",
	"o_orderkey > 3",
	"o_orderkey + o_custkey * 2",
	"o_total / 2.0 - 1.0",
	"-o_orderkey",
	"NOT (o_orderkey = 2)",
	"o_orderkey = 2 AND o_total > 50.0",
	"o_orderkey = 2 OR o_total > 50.0",
	"o_orderkey < 5 AND (o_custkey > 2 OR o_total IS NULL)",
	"o_orderkey BETWEEN 2 AND 8",
	"o_orderkey NOT BETWEEN o_custkey AND 8",
	"o_total BETWEEN 10.0 AND 900.0",
	"o_orderkey IN (1, 3, 5, 7)",
	"o_orderkey NOT IN (2, o_custkey)",
	"o_orderkey IN (o_custkey + 1, 4)", // non-simple list: row fallback
	"o_comment LIKE '%pending%'",
	"o_comment NOT LIKE 'x%'",
	"o_comment LIKE '%a%b%'",
	"o_total IS NULL",
	"o_comment IS NOT NULL",
	"o_orderkey = 1 OR o_comment LIKE '%deposit%'",
}

// vecParityRows builds a row set with NULLs in every column and enough
// variety to take both branches of each predicate.
func vecParityRows() []Row {
	var rows []Row
	comments := []string{
		"pending deposits", "quick brown fox", "", "aXb", "special requests",
		"furiously pending", "deposit accounts move",
	}
	for i := 0; i < 37; i++ {
		r := Row{
			types.NewInt(int64(i % 11)),
			types.NewInt(int64(i % 7)),
			types.NewDate(int64(10000 + i)),
			types.NewString(comments[i%len(comments)]),
			types.NewFloat(float64(i*13%1000) + 0.5),
		}
		if i%5 == 0 {
			r[4] = types.Null
		}
		if i%7 == 3 {
			r[3] = types.Null
		}
		if i%9 == 4 {
			r[0] = types.Null
		}
		rows = append(rows, r)
	}
	return rows
}

// batchOf packs rows into a boxed batch.
func batchOf(rows []Row) *Batch {
	var b Batch
	b.Reset(len(rows[0]))
	for _, r := range rows {
		b.AppendRow(r)
	}
	return &b
}

// TestCompileVecMatchesCompile checks that the vectorized evaluator
// produces the same values AND charges bit-identical CPU operations as
// the scalar evaluator, over full batches and over sub-selections.
func TestCompileVecMatchesCompile(t *testing.T) {
	rows := vecParityRows()
	b := batchOf(rows)
	lay := SingleRel(0)

	sels := map[string][]int{
		"all":    nil, // full batch
		"even":   {0, 2, 4, 6, 8, 10, 12, 20, 30, 36},
		"single": {17},
		"empty":  {},
	}

	for _, src := range vecParityExprs {
		q := mustBind(t, "SELECT "+src+" FROM orders")
		e := q.Select[0].E
		for selName, sel := range sels {
			t.Run(fmt.Sprintf("%s/%s", src, selName), func(t *testing.T) {
				if sel == nil {
					sel = make([]int, len(rows))
					for i := range sel {
						sel[i] = i
					}
				}
				scalarSink := &countingSink{}
				ev, err := Compile(e, lay, scalarSink)
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
				want := make([]types.Value, len(sel))
				for k, i := range sel {
					v, err := ev(rows[i])
					if err != nil {
						t.Fatalf("scalar eval row %d: %v", i, err)
					}
					want[k] = v
				}

				vecSink := &countingSink{}
				vev, err := CompileVec(e, lay, vecSink)
				if err != nil {
					t.Fatalf("CompileVec: %v", err)
				}
				got := make([]types.Value, len(sel))
				if err := vev(b, sel, got); err != nil {
					t.Fatalf("vec eval: %v", err)
				}

				for k := range sel {
					if !valueEq(want[k], got[k]) {
						t.Errorf("row %d: scalar %v, vec %v", sel[k], want[k], got[k])
					}
				}
				if scalarSink.ops != vecSink.ops {
					t.Errorf("charges diverge: scalar %v ops, vec %v ops", scalarSink.ops, vecSink.ops)
				}
			})
		}
	}
}

// TestCompileVecReusedAcrossBatches verifies a compiled VecEval can be
// called repeatedly (internal scratch is reused) without corrupting
// results or charges.
func TestCompileVecReusedAcrossBatches(t *testing.T) {
	rows := vecParityRows()
	b := batchOf(rows)
	lay := SingleRel(0)
	q := mustBind(t, "SELECT o_orderkey < 5 AND o_comment LIKE '%pending%' FROM orders")

	vecSink := &countingSink{}
	vev, err := CompileVec(q.Select[0].E, lay, vecSink)
	if err != nil {
		t.Fatal(err)
	}
	scalarSink := &countingSink{}
	ev, err := Compile(q.Select[0].E, lay, scalarSink)
	if err != nil {
		t.Fatal(err)
	}

	sels := [][]int{{0, 1, 2, 3}, {4, 9, 14}, {36}, {5, 6, 7, 8, 9, 10, 11}}
	for pass := 0; pass < 3; pass++ {
		for _, sel := range sels {
			out := make([]types.Value, len(sel))
			if err := vev(b, sel, out); err != nil {
				t.Fatal(err)
			}
			for k, i := range sel {
				want, err := ev(rows[i])
				if err != nil {
					t.Fatal(err)
				}
				if !valueEq(want, out[k]) {
					t.Fatalf("pass %d row %d: scalar %v, vec %v", pass, i, want, out[k])
				}
			}
		}
	}
	if scalarSink.ops != vecSink.ops {
		t.Errorf("charges diverge after reuse: scalar %v, vec %v", scalarSink.ops, vecSink.ops)
	}
}

// TestCompileVecTypedColumns runs the parity check against a batch whose
// columns use typed payloads with null bitmaps rather than boxed values.
func TestCompileVecTypedColumns(t *testing.T) {
	lay := SingleRel(0)
	n := 29
	ints := make([]int64, n)
	nulls := make([]bool, n)
	totals := make([]float64, n)
	comments := make([]string, n)
	var rows []Row
	for i := 0; i < n; i++ {
		ints[i] = int64(i % 9)
		nulls[i] = i%6 == 2
		totals[i] = float64(i) * 3.25
		comments[i] = fmt.Sprintf("c%d pending", i)
		r := Row{types.NewInt(ints[i]), types.NewInt(int64(i)), types.NewDate(int64(i)),
			types.NewString(comments[i]), types.NewFloat(totals[i])}
		if nulls[i] {
			r[0] = types.Null
		}
		rows = append(rows, r)
	}
	custs := make([]int64, n)
	dates := make([]int64, n)
	for i := range custs {
		custs[i] = int64(i)
		dates[i] = int64(i)
	}
	b := &Batch{
		Cols: []types.Vec{
			{Kind: types.KindInt, I: ints, Null: nulls},
			{Kind: types.KindInt, I: custs},
			{Kind: types.KindDate, I: dates},
			{Kind: types.KindString, S: comments},
			{Kind: types.KindFloat, F: totals},
		},
		N: n,
	}

	for _, src := range []string{
		"o_orderkey = 4 OR o_total > 50.0",
		"o_orderkey IS NULL",
		"o_comment LIKE '%pending'",
		"o_orderkey BETWEEN 2 AND 6",
	} {
		q := mustBind(t, "SELECT "+src+" FROM orders")
		sSink, vSink := &countingSink{}, &countingSink{}
		ev, err := Compile(q.Select[0].E, lay, sSink)
		if err != nil {
			t.Fatal(err)
		}
		vev, err := CompileVec(q.Select[0].E, lay, vSink)
		if err != nil {
			t.Fatal(err)
		}
		sel := make([]int, n)
		for i := range sel {
			sel[i] = i
		}
		out := make([]types.Value, n)
		if err := vev(b, sel, out); err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			want, err := ev(rows[i])
			if err != nil {
				t.Fatal(err)
			}
			if !valueEq(want, out[i]) {
				t.Errorf("%s row %d: scalar %v, vec %v", src, i, want, out[i])
			}
		}
		if sSink.ops != vSink.ops {
			t.Errorf("%s: charges diverge: scalar %v, vec %v", src, sSink.ops, vSink.ops)
		}
	}
}

// valueEq compares values including NULL-ness and kind-sensitive payloads.
func valueEq(a, b types.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case types.KindString:
		return a.S == b.S
	case types.KindFloat:
		return a.F == b.F
	default:
		return a.I == b.I
	}
}

// TestCompileLikeMatcherEquivalence checks the compile-time-specialized
// LIKE matcher against the reference backtracking matcher on patterns
// exercising every specialization branch (exact, prefix, suffix,
// substring chains, empty segments, overlaps, underscores).
func TestCompileLikeMatcherEquivalence(t *testing.T) {
	patterns := []string{
		"", "%", "%%", "a", "abc", "a%", "%a", "%a%", "a%b", "a%b%c",
		"%special%requests%", "%%a%%b%%", "a%a", "ab%ba", "%abc",
		"abc%", "_", "a_c", "%a_c%", "_%_", "aa%aa",
	}
	inputs := []string{
		"", "a", "b", "aa", "ab", "abc", "abcabc", "aba", "abba",
		"special requests", "xspecialyrequestsz", "requests special",
		"aabaa", "aaaa", "abcba", "cab", "the special x requests y",
	}
	for _, p := range patterns {
		m := compileLikeMatcher(p)
		for _, s := range inputs {
			if got, want := m(s), types.MatchLike(s, p); got != want {
				t.Errorf("pattern %q input %q: compiled=%v reference=%v", p, s, got, want)
			}
		}
	}
}
