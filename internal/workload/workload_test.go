package workload

import (
	"testing"

	"dbvirt/internal/engine"
	"dbvirt/internal/vm"
)

func buildTiny(t *testing.T) *engine.Session {
	t.Helper()
	m := vm.MustMachine(vm.DefaultMachineConfig())
	v, err := m.NewVM("loader", vm.Shares{CPU: 1, Memory: 1, IO: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := engine.NewSession(engine.NewDatabase(), v, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := Build(s, TinyScale(), 42); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildCreatesTablesAndRows(t *testing.T) {
	s := buildTiny(t)
	counts := map[string]int64{}
	for _, tbl := range []string{"customer", "orders", "lineitem"} {
		rows, _, err := s.QueryRows("SELECT count(*) FROM " + tbl)
		if err != nil {
			t.Fatalf("%s: %v", tbl, err)
		}
		counts[tbl] = rows[0][0].I
	}
	sc := TinyScale()
	if counts["customer"] != int64(sc.Customers) {
		t.Errorf("customers = %d", counts["customer"])
	}
	if counts["orders"] != int64(sc.Orders) {
		t.Errorf("orders = %d", counts["orders"])
	}
	// Lines per order average around LinesPerOrder.
	avg := float64(counts["lineitem"]) / float64(counts["orders"])
	if avg < float64(sc.LinesPerOrder)-1 || avg > float64(sc.LinesPerOrder)+1 {
		t.Errorf("lineitem avg per order = %g, want ~%d", avg, sc.LinesPerOrder)
	}
}

func TestBuildDeterministic(t *testing.T) {
	s1 := buildTiny(t)
	s2 := buildTiny(t)
	q := "SELECT sum(o_totalprice), count(*) FROM orders WHERE o_custkey < 50"
	r1, _, err := s1.QueryRows(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, _ := s2.QueryRows(q)
	if r1[0][0].F != r2[0][0].F || r1[0][1].I != r2[0][1].I {
		t.Error("same seed should generate identical data")
	}
}

func TestIndexesAndStatsBuilt(t *testing.T) {
	s := buildTiny(t)
	orders, err := s.DB.Catalog.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(orders.Indexes) != 3 {
		t.Errorf("orders has %d indexes, want 3", len(orders.Indexes))
	}
	if orders.Stats == nil || orders.Stats.NumRows != int64(TinyScale().Orders) {
		t.Errorf("orders stats = %+v", orders.Stats)
	}
	// The o_orderdate index must be strongly correlated (loaded in date
	// order) — the optimizer relies on this.
	for _, ix := range orders.Indexes {
		if ix.Name == "orders_orderdate" && ix.Stats.Correlation < 0.95 {
			t.Errorf("orderdate correlation = %g, want ~1", ix.Stats.Correlation)
		}
	}
}

func TestAllQueriesRun(t *testing.T) {
	s := buildTiny(t)
	for name, q := range Queries() {
		rows, _, err := s.QueryRows(q)
		if err != nil {
			t.Errorf("query %s failed: %v", name, err)
			continue
		}
		switch name {
		case "Q1":
			if len(rows) == 0 || len(rows) > 6 {
				t.Errorf("Q1 groups = %d, want 1..6", len(rows))
			}
		case "Q13":
			if len(rows) != TinyScale().Customers {
				t.Errorf("Q13 must keep all %d customers, got %d", TinyScale().Customers, len(rows))
			}
		case "Q4":
			if len(rows) == 0 || len(rows) > 5 {
				t.Errorf("Q4 groups = %d, want 1..5", len(rows))
			}
		}
	}
}

func TestQ13CountsOnlyMatchingOrders(t *testing.T) {
	s := buildTiny(t)
	// Sum of per-customer counts == orders whose comment passes NOT LIKE.
	rows, _, err := s.QueryRows(Query("Q13"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range rows {
		total += r[1].I
	}
	cnt, _, err := s.QueryRows(
		`SELECT count(*) FROM orders WHERE o_comment NOT LIKE '%special%requests%'`)
	if err != nil {
		t.Fatal(err)
	}
	if total != cnt[0][0].I {
		t.Errorf("Q13 total %d != filtered orders %d", total, cnt[0][0].I)
	}
	if cnt[0][0].I == int64(TinyScale().Orders) {
		t.Error("some comments should contain the special phrase")
	}
}

func TestCommentGeneration(t *testing.T) {
	s := buildTiny(t)
	rows, _, err := s.QueryRows("SELECT o_comment FROM orders LIMIT 50")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		c := r[0].S
		if len(c) == 0 || len(c) > TinyScale().CommentLen {
			t.Errorf("comment length %d out of range", len(c))
		}
	}
}

func TestRepeatAndMix(t *testing.T) {
	w := Repeat("w", "SELECT 1 FROM t", 3)
	if len(w.Statements) != 3 || w.Name != "w" {
		t.Errorf("Repeat = %+v", w)
	}
	m := Mix("m", []string{"a", "b"}, 2)
	if len(m.Statements) != 4 || m.Statements[2] != "a" {
		t.Errorf("Mix = %+v", m)
	}
}

func TestQueryPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Query("nope")
}

func TestScalesAreOrdered(t *testing.T) {
	if TinyScale().Rows() >= SmallScale().Rows() || SmallScale().Rows() >= ExperimentScale().Rows() {
		t.Error("scales should increase")
	}
}

func TestQ4IsIOBoundAndQ13IsCPUBound(t *testing.T) {
	if testing.Short() {
		t.Skip("profile check needs a non-tiny build")
	}
	// Use the small scale with a machine whose memory makes lineitem
	// exceed the pool while orders+customer fit.
	cfg := vm.DefaultMachineConfig()
	cfg.MemBytes = 16 << 20
	m := vm.MustMachine(cfg)
	loader, _ := m.NewVM("loader", vm.Shares{CPU: 0.5, Memory: 0.5, IO: 0.5})
	s, err := engine.NewSession(engine.NewDatabase(), loader, engine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := Build(s, SmallScale(), 7); err != nil {
		t.Fatal(err)
	}

	measure := func(query string) (cpu, io float64) {
		mm := vm.MustMachine(cfg)
		v, _ := mm.NewVM("run", vm.Shares{CPU: 0.5, Memory: 0.5, IO: 0.5})
		sess, err := engine.NewSession(s.DB, v, engine.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		// Warm the cache, then measure.
		if _, err := sess.RunStatement(query); err != nil {
			t.Fatal(err)
		}
		start := v.Snapshot()
		if _, err := sess.RunStatement(query); err != nil {
			t.Fatal(err)
		}
		u := v.Since(start)
		return u.CPUSeconds, u.IOSeconds
	}

	cpu4, io4 := measure(Query("Q4"))
	cpu13, io13 := measure(Query("Q13"))
	if io4 <= cpu4 {
		t.Errorf("Q4 should be I/O-bound: cpu=%.3fs io=%.3fs", cpu4, io4)
	}
	if cpu13 <= io13 {
		t.Errorf("Q13 should be CPU-bound: cpu=%.3fs io=%.3fs", cpu13, io13)
	}
}

func TestQ13FullFormMatchesInnerForm(t *testing.T) {
	s := buildTiny(t)
	// The distribution in Q13FULL must be consistent with the per-customer
	// counts of Q13: summing custdist weighted by count equals the total
	// of matching orders, and summing custdist equals the customer count.
	dist, _, err := s.QueryRows(Query("Q13FULL"))
	if err != nil {
		t.Fatal(err)
	}
	var custTotal, orderTotal int64
	for _, r := range dist {
		custTotal += r[1].I
		orderTotal += r[0].I * r[1].I
	}
	if custTotal != int64(TinyScale().Customers) {
		t.Errorf("distribution covers %d customers, want %d", custTotal, TinyScale().Customers)
	}
	matching, _, err := s.QueryRows(
		`SELECT count(*) FROM orders WHERE o_comment NOT LIKE '%special%requests%'`)
	if err != nil {
		t.Fatal(err)
	}
	if orderTotal != matching[0][0].I {
		t.Errorf("weighted distribution = %d orders, want %d", orderTotal, matching[0][0].I)
	}
}
