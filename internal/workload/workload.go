// Package workload provides the TPC-H-like database generator and query
// set used by the experiments. It stands in for the paper's OSDB build of
// the TPC-H benchmark: a customer/orders/lineitem schema with secondary
// indexes, deterministic seeded data, and analogues of the TPC-H queries
// the paper uses (Q4: I/O-bound; Q13: CPU-bound) plus several others with
// varied resource profiles.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"dbvirt/internal/engine"
	"dbvirt/internal/storage"
	"dbvirt/internal/types"
)

// Scale sizes the generated database.
type Scale struct {
	Customers     int
	Orders        int
	LinesPerOrder int
	CommentLen    int // orders comment length (drives Q13's CPU cost)
}

// Rows returns the approximate total row count.
func (s Scale) Rows() int { return s.Customers + s.Orders + s.Orders*s.LinesPerOrder }

// TinyScale is for unit tests.
func TinyScale() Scale {
	return Scale{Customers: 200, Orders: 1000, LinesPerOrder: 3, CommentLen: 60}
}

// SmallScale is for quick experiments.
func SmallScale() Scale {
	return Scale{Customers: 4000, Orders: 24000, LinesPerOrder: 4, CommentLen: 90}
}

// ExperimentScale is sized against the default 64 MiB machine so that the
// lineitem relation exceeds a half-memory buffer pool while orders plus
// customer fit — the regime of the paper's testbed (4 GB database, 2 GB
// VM), which makes Q4 I/O-bound and Q13 CPU-bound.
func ExperimentScale() Scale {
	return Scale{Customers: 20000, Orders: 120000, LinesPerOrder: 4, CommentLen: 90}
}

// Dates bounding o_orderdate, as in TPC-H.
var (
	startDate = types.MustDate("1992-01-01").I
	endDate   = types.MustDate("1998-08-02").I
)

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var returnFlags = []string{"A", "N", "R"}
var lineStatuses = []string{"O", "F"}

var commentWords = []string{
	"furiously", "quickly", "carefully", "blithely", "slyly", "pending",
	"final", "ironic", "express", "regular", "bold", "even", "silent",
	"deposits", "packages", "accounts", "instructions", "theodolites",
	"platelets", "foxes", "ideas", "requests", "pinto", "beans",
}

// Build creates the schema, loads deterministic data, builds the indexes,
// and analyzes all tables through the given session.
func Build(s *engine.Session, sc Scale, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	ddl := []string{
		`CREATE TABLE customer (
			c_custkey INT, c_name TEXT, c_mktsegment TEXT,
			c_nationkey INT, c_acctbal FLOAT)`,
		`CREATE TABLE orders (
			o_orderkey INT, o_custkey INT, o_orderstatus TEXT,
			o_totalprice FLOAT, o_orderdate DATE, o_orderpriority TEXT,
			o_comment TEXT)`,
		`CREATE TABLE lineitem (
			l_orderkey INT, l_linenumber INT, l_quantity FLOAT,
			l_extendedprice FLOAT, l_discount FLOAT, l_tax FLOAT,
			l_returnflag TEXT, l_linestatus TEXT,
			l_shipdate DATE, l_commitdate DATE, l_receiptdate DATE)`,
	}
	for _, stmt := range ddl {
		if _, err := s.Exec(stmt); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	}

	cust, err := s.DB.Catalog.Table("customer")
	if err != nil {
		return err
	}
	for i := 0; i < sc.Customers; i++ {
		tup := storage.Tuple{
			types.NewInt(int64(i + 1)),
			types.NewString(fmt.Sprintf("Customer#%09d", i+1)),
			types.NewString(segments[rng.Intn(len(segments))]),
			types.NewInt(int64(rng.Intn(25))),
			types.NewFloat(float64(rng.Intn(999999))/100 - 999.99),
		}
		if err := s.InsertTuple(cust, tup); err != nil {
			return err
		}
	}

	orders, err := s.DB.Catalog.Table("orders")
	if err != nil {
		return err
	}
	line, err := s.DB.Catalog.Table("lineitem")
	if err != nil {
		return err
	}
	dateSpan := endDate - startDate
	for o := 0; o < sc.Orders; o++ {
		// Order dates increase with the key: the o_orderdate index is
		// physically correlated, as clustered TPC-H loads are.
		odate := startDate + int64(o)*dateSpan/int64(sc.Orders)
		tup := storage.Tuple{
			types.NewInt(int64(o + 1)),
			types.NewInt(int64(rng.Intn(sc.Customers) + 1)),
			types.NewString([]string{"O", "F", "P"}[rng.Intn(3)]),
			types.NewFloat(1000 + rng.Float64()*100000),
			types.NewDate(odate),
			types.NewString(priorities[rng.Intn(len(priorities))]),
			types.NewString(comment(rng, sc.CommentLen)),
		}
		if err := s.InsertTuple(orders, tup); err != nil {
			return err
		}
		lines := 1 + rng.Intn(2*sc.LinesPerOrder-1) // avg LinesPerOrder
		for ln := 0; ln < lines; ln++ {
			ship := odate + int64(1+rng.Intn(121))
			commit := odate + int64(30+rng.Intn(61))
			receipt := ship + int64(1+rng.Intn(30))
			ltup := storage.Tuple{
				types.NewInt(int64(o + 1)),
				types.NewInt(int64(ln + 1)),
				types.NewFloat(float64(1 + rng.Intn(50))),
				types.NewFloat(900 + rng.Float64()*104000),
				types.NewFloat(float64(rng.Intn(11)) / 100),
				types.NewFloat(float64(rng.Intn(9)) / 100),
				types.NewString(returnFlags[rng.Intn(len(returnFlags))]),
				types.NewString(lineStatuses[rng.Intn(len(lineStatuses))]),
				types.NewDate(ship),
				types.NewDate(commit),
				types.NewDate(receipt),
			}
			if err := s.InsertTuple(line, ltup); err != nil {
				return err
			}
		}
	}

	indexes := []string{
		"CREATE INDEX customer_pk ON customer (c_custkey)",
		"CREATE INDEX orders_pk ON orders (o_orderkey)",
		"CREATE INDEX orders_custkey ON orders (o_custkey)",
		"CREATE INDEX orders_orderdate ON orders (o_orderdate)",
		"CREATE INDEX lineitem_orderkey ON lineitem (l_orderkey)",
		"CREATE INDEX lineitem_shipdate ON lineitem (l_shipdate)",
	}
	for _, stmt := range indexes {
		if _, err := s.Exec(stmt); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	}
	if _, err := s.Exec("ANALYZE"); err != nil {
		return err
	}
	// Make the loaded database visible to sessions with other buffer
	// pools (the measurement VMs).
	return s.Checkpoint()
}

// comment builds a pseudo-random comment of roughly n bytes. About 1% of
// comments contain the "special ... requests" phrase that TPC-H Q13
// excludes, so the NOT LIKE predicate does real work.
func comment(rng *rand.Rand, n int) string {
	var sb strings.Builder
	if rng.Intn(100) == 0 {
		sb.WriteString("special packages requests ")
	}
	for sb.Len() < n {
		sb.WriteString(commentWords[rng.Intn(len(commentWords))])
		sb.WriteByte(' ')
	}
	return strings.TrimSpace(sb.String()[:n])
}

// Queries returns the named query set. Q4 and Q13 are the paper's
// experiment queries; the others round out the workload mix for the
// search-algorithm and SLO experiments.
func Queries() map[string]string {
	return map[string]string{
		// Q1-like: pricing summary — sequential scan of lineitem with
		// heavy aggregation. Mixed CPU/IO profile.
		"Q1": `SELECT l_returnflag, l_linestatus,
			sum(l_quantity), sum(l_extendedprice),
			sum(l_extendedprice * (1 - l_discount)),
			avg(l_quantity), count(*)
		FROM lineitem
		WHERE l_shipdate <= date '1998-08-01'
		GROUP BY l_returnflag, l_linestatus
		ORDER BY l_returnflag, l_linestatus`,

		// Q3-like: shipping priority — 3-way join with date filters.
		"Q3": `SELECT o_orderkey, sum(l_extendedprice * (1 - l_discount)), o_orderdate
		FROM customer, orders, lineitem
		WHERE c_mktsegment = 'BUILDING'
		  AND c_custkey = o_custkey AND l_orderkey = o_orderkey
		  AND o_orderdate < date '1995-03-15' AND l_shipdate > date '1995-03-15'
		GROUP BY o_orderkey, o_orderdate
		ORDER BY 2 DESC, o_orderdate LIMIT 10`,

		// Q4-like: order priority checking. The paper's EXISTS subquery is
		// rewritten as a join; the query scans the large lineitem relation
		// and is I/O-bound (lineitem exceeds the buffer pool).
		"Q4": `SELECT o_orderpriority, count(*)
		FROM orders, lineitem
		WHERE l_orderkey = o_orderkey
		  AND o_orderdate >= date '1993-07-01' AND o_orderdate < date '1993-10-01'
		  AND l_commitdate < l_receiptdate
		GROUP BY o_orderpriority
		ORDER BY o_orderpriority`,

		// Q6-like: forecasting revenue change — selective scan arithmetic.
		"Q6": `SELECT sum(l_extendedprice * l_discount)
		FROM lineitem
		WHERE l_shipdate >= date '1994-01-01' AND l_shipdate < date '1995-01-01'
		  AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24`,

		// Q13-like: customer distribution. LEFT OUTER JOIN with a NOT LIKE
		// over every order comment plus a large hash aggregation; orders
		// and customer fit in the buffer pool, so the query is CPU-bound.
		"Q13": `SELECT c_custkey, count(o_orderkey)
		FROM customer LEFT OUTER JOIN orders
		  ON c_custkey = o_custkey
		 AND o_comment NOT LIKE '%special%requests%'
		GROUP BY c_custkey`,

		// Q13 in TPC-H's exact published nested form: the per-customer
		// counts inside a derived table, the distribution of counts
		// outside. Same resource profile as Q13 plus a small outer
		// aggregation.
		"Q13FULL": `SELECT c_count, count(*) AS custdist
		FROM (SELECT c_custkey, count(o_orderkey) AS c_count
		      FROM customer LEFT OUTER JOIN orders
		        ON c_custkey = o_custkey
		       AND o_comment NOT LIKE '%special%requests%'
		      GROUP BY c_custkey) c_orders
		GROUP BY c_count
		ORDER BY custdist DESC, c_count DESC`,

		// A point-lookup OLTP-ish query (index heavy).
		"QPOINT": `SELECT o_totalprice, o_orderdate FROM orders WHERE o_orderkey = 4242`,
	}
}

// Query returns one named query or panics; experiment code uses known
// names.
func Query(name string) string {
	q, ok := Queries()[name]
	if !ok {
		panic("workload: unknown query " + name)
	}
	return q
}

// Workload is a named sequence of SQL statements, the W_i of the paper's
// problem formulation.
type Workload struct {
	Name       string
	Statements []string
}

// Repeat builds a workload of n copies of one query, as the paper does
// ("3 copies of Q4", "9 copies of Q13") to amortize startup effects.
func Repeat(name, query string, n int) Workload {
	stmts := make([]string, n)
	for i := range stmts {
		stmts[i] = query
	}
	return Workload{Name: name, Statements: stmts}
}

// Mix builds a workload interleaving the given queries n times.
func Mix(name string, queries []string, n int) Workload {
	var stmts []string
	for i := 0; i < n; i++ {
		stmts = append(stmts, queries...)
	}
	return Workload{Name: name, Statements: stmts}
}

// BuildWriteBase creates and loads the small bank-style table the write
// workloads target: `account (a_id INT, a_bal FLOAT)` with an index on
// a_id, rows preloaded (frozen bulk load), analyzed, and checkpointed. It
// is deliberately tiny — the write workloads it serves are commit-bound,
// not scan-bound.
func BuildWriteBase(s *engine.Session, rows int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	if _, err := s.Exec(`CREATE TABLE account (a_id INT, a_bal FLOAT)`); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	acct, err := s.DB.Catalog.Table("account")
	if err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		tup := storage.Tuple{
			types.NewInt(int64(i + 1)),
			types.NewFloat(float64(rng.Intn(100000)) / 100),
		}
		if err := s.InsertTuple(acct, tup); err != nil {
			return err
		}
	}
	if _, err := s.Exec("CREATE INDEX account_pk ON account (a_id)"); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if _, err := s.Exec("ANALYZE"); err != nil {
		return err
	}
	return s.Checkpoint()
}

// InsertHeavy builds a write-bound workload: n single-row INSERTs into
// account, each an autocommit transaction ending in a WAL flush. Keys
// start above the preloaded range so index maintenance stays rightmost.
func InsertHeavy(name string, baseRows, n int) Workload {
	stmts := make([]string, n)
	for i := range stmts {
		k := baseRows + i + 1
		stmts[i] = fmt.Sprintf("INSERT INTO account VALUES (%d, %d.0)", k, k%997)
	}
	return Workload{Name: name, Statements: stmts}
}

// UpdateHeavy builds an update-bound workload: n single-row balance
// updates against the preloaded account rows, each an autocommit
// transaction (delete + re-insert through the MVCC write path, one WAL
// flush per statement).
func UpdateHeavy(name string, baseRows, n int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	stmts := make([]string, n)
	for i := range stmts {
		k := rng.Intn(baseRows) + 1
		stmts[i] = fmt.Sprintf("UPDATE account SET a_bal = a_bal + 1.0 WHERE a_id = %d", k)
	}
	return Workload{Name: name, Statements: stmts}
}
