package experiments

import (
	"context"

	"dbvirt/internal/calibration"
	"dbvirt/internal/core"
	"dbvirt/internal/optimizer"
	"dbvirt/internal/vm"
)

// SyntheticGrid builds a deterministic parameter lattice over the given
// share axes without running any calibration experiments. The parameter
// surface is a plausible stand-in for a calibrated grid: CPU costs
// (relative to one sequential page fetch) grow as the CPU share shrinks
// or the I/O share grows, the cache assumption and work_mem scale with
// the memory share, and the seconds-per-page conversion scales with the
// inverse I/O share. The spread is wide enough to flip access paths and
// join methods across the lattice, which is exactly what the what-if
// re-costing benchmarks and differential tests need — reproducibly, and
// with no dependence on calibration measurements.
func SyntheticGrid(cpus, mems, ios []float64) (*calibration.Grid, error) {
	points := make([]optimizer.Params, 0, len(cpus)*len(mems)*len(ios))
	for _, c := range cpus {
		for _, m := range mems {
			for _, io := range ios {
				points = append(points, syntheticParams(c, m, io))
			}
		}
	}
	return calibration.NewGrid(cpus, mems, ios, points)
}

// syntheticParams maps one allocation to a parameter vector. Each field
// is a smooth monotone function of the shares, so trilinear
// interpolation between lattice points stays well-behaved.
func syntheticParams(cpu, mem, io float64) optimizer.Params {
	p := optimizer.DefaultParams()
	// Faster I/O makes a page fetch cheap in wall time, so CPU work costs
	// more pages-worth; a bigger CPU share pushes the other way.
	rel := io / cpu
	p.CPUTupleCost = 0.01 * rel
	p.CPUIndexTupleCost = 0.005 * rel
	p.CPUOperatorCost = 0.0025 * rel
	// Seeks amortize better at higher I/O shares (deeper queues).
	p.RandomPageCost = 1 + 3/io
	p.EffectiveCacheSizePages = int64(16384*mem + 0.5)
	p.WorkMemBytes = int64(float64(16<<20)*mem + 0.5)
	p.TimePerSeqPage = 1e-4 / io
	p.Overlap = 0.3
	return p
}

// CostMatrix prices every workload at every allocation through the
// model and returns the dense workload-major result matrix:
// out[i][j] = Cost(specs[i], allocs[j]). This is the inner loop of the
// paper's design search — one what-if cost per (workload, candidate
// allocation) pair — isolated so benchmarks and equivalence tests can
// drive it directly.
func CostMatrix(ctx context.Context, model core.CostModel, specs []*core.WorkloadSpec, allocs []vm.Shares) ([][]float64, error) {
	out := make([][]float64, len(specs))
	for i, w := range specs {
		row := make([]float64, len(allocs))
		for j, sh := range allocs {
			c, err := model.Cost(ctx, w, sh)
			if err != nil {
				return nil, err
			}
			row[j] = c
		}
		out[i] = row
	}
	return out, nil
}

// MatrixWorkloads exposes the paper's two benchmark workloads (W1 = n4
// copies of Q4, W2 = n13 copies of Q13, each on its own database) for
// the what-if matrix benchmark and tests.
func (e *Env) MatrixWorkloads(n4, n13 int) ([]*core.WorkloadSpec, error) {
	return e.specs(n4, n13)
}
