// Package experiments reproduces the paper's evaluation: Figure 3
// (calibrated cpu_tuple_cost across CPU and memory allocations), Figure 4
// (estimated vs actual sensitivity of TPC-H Q4 and Q13 to the CPU share),
// and Figure 5 (total execution time of a 3×Q4 workload and a 9×Q13
// workload under the default 50/50 CPU split versus the 25/75 split the
// what-if model selects), plus the ablation studies listed in DESIGN.md.
//
// The harness returns structured rows; cmd/experiments and the benchmark
// suite format them.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"dbvirt/internal/calibration"
	"dbvirt/internal/core"
	"dbvirt/internal/engine"
	"dbvirt/internal/obs"
	"dbvirt/internal/optimizer"
	"dbvirt/internal/vm"
	"dbvirt/internal/wal"
	"dbvirt/internal/workload"
)

// Env is one experiment environment: a machine model, a workload scale,
// and lazily built per-workload databases plus a shared calibrator.
type Env struct {
	Machine vm.MachineConfig
	Engine  engine.Config
	Scale   workload.Scale
	CalCfg  calibration.Config
	Seed    int64
	// Parallelism is handed to the calibrator (grid fan-out) and to every
	// design problem the harness solves; 0 means runtime.GOMAXPROCS(0).
	// Results are identical at every setting.
	Parallelism int
	// Obs is handed to the calibrator and to every design problem, so one
	// trace covers calibration spans and solver spans; nil disables
	// tracing/logging (metrics are always recorded globally).
	Obs *obs.Telemetry

	mu  sync.Mutex
	dbs map[string]*engine.Database
	cal *calibration.Calibrator
}

// NewEnv creates an experiment environment. With zero values it uses the
// default machine and the paper-regime experiment scale.
func NewEnv(scale workload.Scale, machine vm.MachineConfig) *Env {
	calCfg := calibration.DefaultConfig()
	calCfg.Machine = machine
	// Size the calibration tables to the machine: the big table must
	// exceed the largest possible buffer pool.
	maxPoolPages := int(float64(machine.MemBytes) * 0.75 / 8192)
	calCfg.BigRows = maxPoolPages * 2 * 16 // ~2x pool at ~16 rows/page
	calCfg.NarrowRows = maxPoolPages * 4   // ~pool/57 pages: comfortably cached
	if calCfg.NarrowRows > 20000 {
		calCfg.NarrowRows = 20000
	}
	return &Env{
		Machine: machine,
		Engine:  engine.DefaultConfig(),
		Scale:   scale,
		CalCfg:  calCfg,
		Seed:    7,
		dbs:     make(map[string]*engine.Database),
	}
}

// DefaultEnv is the environment of the paper-reproduction figures.
func DefaultEnv() *Env {
	return NewEnv(workload.ExperimentScale(), vm.DefaultMachineConfig())
}

// QuickEnv is a scaled-down environment for -short benchmark runs and CI.
func QuickEnv() *Env {
	cfg := vm.DefaultMachineConfig()
	cfg.MemBytes = 16 << 20
	return NewEnv(workload.SmallScale(), cfg)
}

// Calibrator returns the shared (caching) calibrator.
func (e *Env) Calibrator() *calibration.Calibrator {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cal == nil {
		cfg := e.CalCfg
		if cfg.Parallelism == 0 {
			cfg.Parallelism = e.Parallelism
		}
		if cfg.Obs == nil {
			cfg.Obs = e.Obs
		}
		e.cal = calibration.New(cfg)
	}
	return e.cal
}

// DB returns (building on first use) the named workload database. Each
// workload gets its own database, as in the paper's formulation.
func (e *Env) DB(name string) (*engine.Database, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if db, ok := e.dbs[name]; ok {
		return db, nil
	}
	m, err := vm.NewMachine(e.Machine)
	if err != nil {
		return nil, err
	}
	loader, err := m.NewVM(name+"-loader", vm.Shares{CPU: 1, Memory: 1, IO: 1})
	if err != nil {
		return nil, err
	}
	db := engine.NewDatabase()
	s, err := engine.NewSession(db, loader, e.Engine)
	if err != nil {
		return nil, err
	}
	if err := workload.Build(s, e.Scale, e.Seed); err != nil {
		return nil, fmt.Errorf("experiments: building %s: %w", name, err)
	}
	e.dbs[name] = db
	return db, nil
}

// MeasureQuery runs one query in a fresh VM at the given shares (warm run
// first) and returns the simulated elapsed seconds of the measured run.
func (e *Env) MeasureQuery(db *engine.Database, query string, shares vm.Shares) (float64, error) {
	m, err := vm.NewMachine(e.Machine)
	if err != nil {
		return 0, err
	}
	v, err := m.NewVM("measure", shares)
	if err != nil {
		return 0, err
	}
	s, err := engine.NewSession(db, v, e.Engine)
	if err != nil {
		return 0, err
	}
	if _, err := s.RunStatement(query); err != nil { // warm the cache
		return 0, err
	}
	start := v.Snapshot()
	if _, err := s.RunStatement(query); err != nil {
		return 0, err
	}
	return v.ElapsedSince(start), nil
}

// MeasureWrite executes a write workload against a fresh WAL-logged
// database in a VM at the given shares and returns the simulated elapsed
// seconds plus the workload's log footprint (bytes appended, group
// fsyncs) — the inputs of the write-path what-if estimate. The base table
// is built by a full-share loader VM on the same machine; only the write
// statements themselves are timed. Each statement is an autocommit
// transaction, so flushes == len(w.Statements).
func (e *Env) MeasureWrite(w workload.Workload, baseRows int, shares vm.Shares) (elapsed float64, logBytes int64, flushes int, err error) {
	lm, err := vm.NewMachine(e.Machine)
	if err != nil {
		return 0, 0, 0, err
	}
	loader, err := lm.NewVM("write-loader", vm.Shares{CPU: 1, Memory: 1, IO: 1})
	if err != nil {
		return 0, 0, 0, err
	}
	db := engine.NewDatabase()
	if err := db.EnableLogging(wal.NewMemDevice(), 1); err != nil {
		return 0, 0, 0, err
	}
	ls, err := engine.NewSession(db, loader, e.Engine)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := workload.BuildWriteBase(ls, baseRows, e.Seed); err != nil {
		return 0, 0, 0, fmt.Errorf("experiments: building write base: %w", err)
	}
	m, err := vm.NewMachine(e.Machine)
	if err != nil {
		return 0, 0, 0, err
	}
	v, err := m.NewVM("write", shares)
	if err != nil {
		return 0, 0, 0, err
	}
	s, err := engine.NewSession(db, v, e.Engine)
	if err != nil {
		return 0, 0, 0, err
	}
	_, before := db.LogStats()
	start := v.Snapshot()
	for _, stmt := range w.Statements {
		if _, err := s.RunStatement(stmt); err != nil {
			return 0, 0, 0, fmt.Errorf("experiments: %s: %w", w.Name, err)
		}
	}
	elapsed = v.ElapsedSince(start)
	_, after := db.LogStats()
	return elapsed, after - before, len(w.Statements), nil
}

// EstimateQuery plans one query under the calibrated P(shares) and
// returns the estimated seconds.
func (e *Env) EstimateQuery(db *engine.Database, query string, shares vm.Shares) (float64, error) {
	p, err := e.Calibrator().Calibrate(context.Background(), shares)
	if err != nil {
		return 0, err
	}
	return estimateUnder(db, query, p)
}

func estimateUnder(db *engine.Database, query string, p optimizer.Params) (float64, error) {
	m, err := vm.NewMachine(vm.DefaultMachineConfig())
	if err != nil {
		return 0, err
	}
	v, err := m.NewVM("planner", vm.Shares{CPU: 1, Memory: 1, IO: 1})
	if err != nil {
		return 0, err
	}
	s, err := engine.NewSession(db, v, engine.DefaultConfig())
	if err != nil {
		return 0, err
	}
	return s.EstimateSeconds(query, p)
}

// specs builds the paper's two workloads: W1 = n4 copies of Q4 and W2 =
// n13 copies of Q13, each on its own database.
func (e *Env) specs(n4, n13 int) ([]*core.WorkloadSpec, error) {
	q4db, err := e.DB("w-q4")
	if err != nil {
		return nil, err
	}
	q13db, err := e.DB("w-q13")
	if err != nil {
		return nil, err
	}
	return []*core.WorkloadSpec{
		{
			Name:       "W1-Q4",
			Statements: workload.Repeat("w1", workload.Query("Q4"), n4).Statements,
			DB:         q4db,
		},
		{
			Name:       "W2-Q13",
			Statements: workload.Repeat("w2", workload.Query("Q13"), n13).Statements,
			DB:         q13db,
		},
	}, nil
}
