package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"dbvirt/internal/core"

	"dbvirt/internal/vm"
	"dbvirt/internal/workload"
)

// SearchRow compares one search algorithm on one problem instance.
type SearchRow struct {
	Algorithm      string
	PredictedTotal float64
	MeasuredTotal  float64
	Evaluations    int
}

// AblationSearch compares the search algorithms (plus the equal-shares
// baseline) on an N-workload problem with heterogeneous resource
// profiles, validating each algorithm's chosen allocation by actual
// execution.
func (e *Env) AblationSearch(n int, step float64) ([]SearchRow, error) {
	if n < 2 || n > 4 {
		return nil, fmt.Errorf("experiments: search ablation supports 2..4 workloads, got %d", n)
	}
	// Heterogeneous mix: CPU-bound, I/O-bound, mixed, index-heavy.
	queryNames := []string{"Q13", "Q4", "Q6", "QPOINT"}
	reps := []int{6, 1, 2, 200}
	var specs []*core.WorkloadSpec
	for i := 0; i < n; i++ {
		db, err := e.DB("search-" + queryNames[i])
		if err != nil {
			return nil, err
		}
		specs = append(specs, &core.WorkloadSpec{
			Name:       fmt.Sprintf("W%d-%s", i+1, queryNames[i]),
			Statements: workload.Repeat("w", workload.Query(queryNames[i]), reps[i]).Statements,
			DB:         db,
		})
	}
	model := &core.WhatIfModel{Cal: e.Calibrator()}
	problem := &core.Problem{
		Workloads:   specs,
		Resources:   []vm.Resource{vm.CPU},
		Step:        step,
		Parallelism: e.Parallelism,
		Obs:         e.Obs,
	}

	type solver struct {
		name string
		run  func() (*core.Result, error)
	}
	solvers := []solver{
		{"equal", func() (*core.Result, error) {
			return core.EvaluateAllocation(context.Background(), problem, model, core.EqualAllocation(n), "equal")
		}},
		{"greedy", func() (*core.Result, error) { return core.SolveGreedy(context.Background(), problem, model) }},
		{"dp", func() (*core.Result, error) { return core.SolveDP(context.Background(), problem, model) }},
		{"exhaustive", func() (*core.Result, error) { return core.SolveExhaustive(context.Background(), problem, model) }},
	}
	var rows []SearchRow
	for _, s := range solvers {
		res, err := s.run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.name, err)
		}
		measured, err := core.MeasureAllocation(e.Machine, e.Engine, specs, res.Allocation, true)
		if err != nil {
			return nil, err
		}
		var total float64
		for _, m := range measured {
			total += m
		}
		rows = append(rows, SearchRow{
			Algorithm:      s.name,
			PredictedTotal: res.PredictedTotal,
			MeasuredTotal:  total,
			Evaluations:    res.Evaluations,
		})
	}
	return rows, nil
}

// FormatSearch renders the search-algorithm comparison.
func FormatSearch(rows []SearchRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: search algorithms (what-if model, CPU dimension)\n")
	sb.WriteString("  algorithm   predicted   measured   cost-model evals\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10s  %8.3fs  %8.3fs   %d\n",
			r.Algorithm, r.PredictedTotal, r.MeasuredTotal, r.Evaluations)
	}
	return sb.String()
}

// GridRow reports interpolation error for one grid resolution.
type GridRow struct {
	AxisPoints   int
	Calibrations int
	MaxRelErr    float64 // max relative error of cpu_tuple_cost at probes
	MeanRelErr   float64
}

// AblationCalibrationGrid quantifies the paper's §7 trade-off: fewer
// calibration experiments (coarser grid) versus parameter accuracy,
// evaluated against direct calibration at off-lattice CPU shares.
func (e *Env) AblationCalibrationGrid() ([]GridRow, error) {
	cal := e.Calibrator()
	probeShares := []float64{0.35, 0.5, 0.65}
	axes := [][]float64{
		{0.25, 0.75},
		{0.25, 0.5, 0.75},
		{0.2, 0.4, 0.6, 0.8},
	}
	var rows []GridRow
	for _, axis := range axes {
		g, err := cal.CalibrateGrid(context.Background(), axis, []float64{0.5}, []float64{0.5})
		if err != nil {
			return nil, err
		}
		var maxErr, sumErr float64
		for _, cpu := range probeShares {
			sh := vm.Shares{CPU: cpu, Memory: 0.5, IO: 0.5}
			direct, err := cal.Calibrate(context.Background(), sh)
			if err != nil {
				return nil, err
			}
			interp := g.Interpolate(sh)
			rel := math.Abs(interp.CPUTupleCost-direct.CPUTupleCost) / direct.CPUTupleCost
			sumErr += rel
			if rel > maxErr {
				maxErr = rel
			}
		}
		rows = append(rows, GridRow{
			AxisPoints:   len(axis),
			Calibrations: len(axis), // one memory/io point
			MaxRelErr:    maxErr,
			MeanRelErr:   sumErr / float64(len(probeShares)),
		})
	}
	return rows, nil
}

// FormatGrid renders the grid ablation.
func FormatGrid(rows []GridRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: calibration grid resolution vs interpolation error (cpu_tuple_cost)\n")
	sb.WriteString("  lattice points   max rel err   mean rel err\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %6d           %6.1f%%       %6.1f%%\n",
			r.AxisPoints, r.MaxRelErr*100, r.MeanRelErr*100)
	}
	return sb.String()
}

// OverlapRow reports Q4's measured CPU sensitivity at one CPU/I-O overlap
// factor.
type OverlapRow struct {
	Overlap       float64
	Q4Sensitivity float64 // act(25%) / act(75%)
}

// AblationOverlap varies the machine's CPU/I-O overlap and measures how
// sensitive the I/O-bound Q4 becomes to the CPU share: with full overlap
// Q4 is flat, with no overlap (fully serial) its CPU component is exposed.
func (e *Env) AblationOverlap(overlaps []float64) ([]OverlapRow, error) {
	var rows []OverlapRow
	for _, ov := range overlaps {
		env := NewEnv(e.Scale, e.Machine)
		env.Machine.Overlap = ov
		env.Seed = e.Seed
		db, err := env.DB("w-q4")
		if err != nil {
			return nil, err
		}
		lo, err := env.MeasureQuery(db, workload.Query("Q4"), vm.Shares{CPU: 0.25, Memory: 0.5, IO: 0.5})
		if err != nil {
			return nil, err
		}
		hi, err := env.MeasureQuery(db, workload.Query("Q4"), vm.Shares{CPU: 0.75, Memory: 0.5, IO: 0.5})
		if err != nil {
			return nil, err
		}
		rows = append(rows, OverlapRow{Overlap: ov, Q4Sensitivity: lo / hi})
	}
	return rows, nil
}

// FormatOverlap renders the overlap ablation.
func FormatOverlap(rows []OverlapRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: CPU/I-O overlap vs Q4's measured CPU sensitivity (act 25% / act 75%)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  overlap %.2f -> sensitivity %.3f\n", r.Overlap, r.Q4Sensitivity)
	}
	return sb.String()
}

// DynamicResult compares a static design against online reconfiguration
// across a workload phase change.
type DynamicResult struct {
	// Phase 1: W1 is I/O-bound (Q4) and W2 CPU-bound (Q13); in phase 2
	// the workloads swap profiles, inverting the optimal CPU split.
	StaticTotal  float64 // static allocation solved for phase 1, used for both
	DynamicTotal float64 // controller re-solves at the phase boundary
	Reconfigured bool
}

// DynamicReconfig reproduces the paper's §7 dynamic scenario: the
// controller re-solves the design problem when the workload changes phase
// and reconfigures the running VMs.
func (e *Env) DynamicReconfig() (*DynamicResult, error) {
	q4db, err := e.DB("w-q4")
	if err != nil {
		return nil, err
	}
	q13db, err := e.DB("w-q13")
	if err != nil {
		return nil, err
	}
	w1 := &core.WorkloadSpec{
		Name:       "W1",
		Statements: workload.Repeat("w1", workload.Query("Q4"), 1).Statements,
		DB:         q4db,
	}
	w2Phase1 := &core.WorkloadSpec{
		Name:       "W2",
		Statements: workload.Repeat("w2", workload.Query("Q13"), 6).Statements,
		DB:         q13db,
	}
	// Phase 2: W2's demand flips to the I/O-bound query while W1 keeps
	// running; the static design now starves nobody but wastes W2's CPU
	// grant, while the controller rebalances.
	w2Phase2 := &core.WorkloadSpec{
		Name:       "W2",
		Statements: workload.Repeat("w2", workload.Query("Q4"), 1).Statements,
		DB:         q13db,
	}
	w1Phase2 := &core.WorkloadSpec{
		Name:       "W1",
		Statements: workload.Repeat("w1", workload.Query("Q13"), 6).Statements,
		DB:         q4db,
	}
	model := &core.WhatIfModel{Cal: e.Calibrator()}
	mkProblem := func(a, b *core.WorkloadSpec) *core.Problem {
		return &core.Problem{
			Workloads:   []*core.WorkloadSpec{a, b},
			Resources:   []vm.Resource{vm.CPU},
			Step:        0.25,
			Parallelism: e.Parallelism,
			Obs:         e.Obs,
		}
	}

	runPhases := func(dynamic bool) (float64, bool, error) {
		sol1, err := core.SolveDP(context.Background(), mkProblem(w1, w2Phase1), model)
		if err != nil {
			return 0, false, err
		}
		dep, err := core.Deploy(e.Machine, e.Engine, []*core.WorkloadSpec{w1, w2Phase1}, sol1.Allocation)
		if err != nil {
			return 0, false, err
		}
		// Warm both VMs' caches.
		if _, err := dep.MeasureWorkloads(false); err != nil {
			return 0, false, err
		}
		start1 := []vm.Usage{dep.VMs[0].Snapshot(), dep.VMs[1].Snapshot()}
		if _, err := dep.Sessions[0].RunWorkload(w1.Statements); err != nil {
			return 0, false, err
		}
		if _, err := dep.Sessions[1].RunWorkload(w2Phase1.Statements); err != nil {
			return 0, false, err
		}
		phase1 := dep.VMs[0].ElapsedSince(start1[0]) + dep.VMs[1].ElapsedSince(start1[1])

		reconfigured := false
		if dynamic {
			ctrl := &core.Controller{Machine: dep.Machine, Model: model}
			if _, err := ctrl.Reconfigure(context.Background(), mkProblem(w1Phase2, w2Phase2), dep.VMs); err != nil {
				return 0, false, err
			}
			reconfigured = len(ctrl.History) == 1 && ctrl.History[0].Applied
		}
		start2 := []vm.Usage{dep.VMs[0].Snapshot(), dep.VMs[1].Snapshot()}
		if _, err := dep.Sessions[0].RunWorkload(w1Phase2.Statements); err != nil {
			return 0, false, err
		}
		if _, err := dep.Sessions[1].RunWorkload(w2Phase2.Statements); err != nil {
			return 0, false, err
		}
		phase2 := dep.VMs[0].ElapsedSince(start2[0]) + dep.VMs[1].ElapsedSince(start2[1])
		return phase1 + phase2, reconfigured, nil
	}

	staticTotal, _, err := runPhases(false)
	if err != nil {
		return nil, err
	}
	dynamicTotal, reconf, err := runPhases(true)
	if err != nil {
		return nil, err
	}
	return &DynamicResult{StaticTotal: staticTotal, DynamicTotal: dynamicTotal, Reconfigured: reconf}, nil
}

// FormatDynamic renders the dynamic-reconfiguration study.
func FormatDynamic(r *DynamicResult) string {
	var sb strings.Builder
	sb.WriteString("Extension: dynamic reconfiguration across a workload phase change\n")
	fmt.Fprintf(&sb, "  static design:  %.3fs total\n", r.StaticTotal)
	fmt.Fprintf(&sb, "  online control: %.3fs total (reconfigured=%v)\n", r.DynamicTotal, r.Reconfigured)
	if r.StaticTotal > 0 {
		fmt.Fprintf(&sb, "  improvement: %.0f%%\n", (1-r.DynamicTotal/r.StaticTotal)*100)
	}
	return sb.String()
}

// SLOResult compares the unconstrained optimum with an SLO-constrained
// one.
type SLOResult struct {
	Unconstrained core.Allocation
	Constrained   core.Allocation
	// W1CostUnconstrained/Constrained are the predicted costs of the
	// SLO-bearing workload under each design.
	W1CostUnconstrained float64
	W1CostConstrained   float64
	SLOSeconds          float64
}

// SLOWeighted demonstrates the paper's §7 service-level-objective
// extension: attaching a latency target to the I/O-bound workload forces
// the search away from the throughput-optimal design.
func (e *Env) SLOWeighted() (*SLOResult, error) {
	specs, err := e.specs(3, 9)
	if err != nil {
		return nil, err
	}
	model := &core.WhatIfModel{Cal: e.Calibrator()}
	base := &core.Problem{
		Workloads:   specs,
		Resources:   []vm.Resource{vm.CPU, vm.IO},
		Step:        0.25,
		Parallelism: e.Parallelism,
		Obs:         e.Obs,
	}
	unconstrained, err := core.SolveDP(context.Background(), base, model)
	if err != nil {
		return nil, err
	}
	// SLO: W1 must beat 90% of its unconstrained-optimal cost, pressuring
	// the search to give it more I/O than the throughput optimum would.
	slo := unconstrained.PredictedCosts[0] * 0.9
	specs[0].SLOSeconds = slo
	constrained := &core.Problem{
		Workloads:   specs,
		Resources:   []vm.Resource{vm.CPU, vm.IO},
		Step:        0.25,
		Objective:   core.Objective{SLOPenalty: 50},
		Parallelism: e.Parallelism,
		Obs:         e.Obs,
	}
	sol, err := core.SolveDP(context.Background(), constrained, model)
	if err != nil {
		return nil, err
	}
	specs[0].SLOSeconds = 0 // restore
	return &SLOResult{
		Unconstrained:       unconstrained.Allocation,
		Constrained:         sol.Allocation,
		W1CostUnconstrained: unconstrained.PredictedCosts[0],
		W1CostConstrained:   sol.PredictedCosts[0],
		SLOSeconds:          slo,
	}, nil
}

// FormatSLO renders the SLO study.
func FormatSLO(r *SLOResult) string {
	var sb strings.Builder
	sb.WriteString("Extension: service-level objectives\n")
	fmt.Fprintf(&sb, "  unconstrained: %v (W1 predicted %.3fs)\n", r.Unconstrained, r.W1CostUnconstrained)
	fmt.Fprintf(&sb, "  SLO %.3fs:     %v (W1 predicted %.3fs)\n", r.SLOSeconds, r.Constrained, r.W1CostConstrained)
	return sb.String()
}

// MemoryDimensionResult compares CPU-only optimization against joint
// CPU+memory optimization.
type MemoryDimensionResult struct {
	CPUOnly         core.Allocation
	Joint           core.Allocation
	CPUOnlyMeasured float64
	JointMeasured   float64
}

// MemoryDimension optimizes the same two workloads over CPU only and over
// CPU+memory jointly. The experiment runs on a machine whose memory is
// sized so that the Q13 workload's hot orders relation does NOT fit its
// buffer pool at the equal memory split but does at a 75% share — the
// regime where the memory dimension matters.
func (e *Env) MemoryDimension() (*MemoryDimensionResult, error) {
	q13db, err := e.DB("w-q13")
	if err != nil {
		return nil, err
	}
	orders, err := q13db.Catalog.Table("orders")
	if err != nil {
		return nil, err
	}
	ordersPages := float64(q13db.Disk.NumPages(orders.Heap.FileID()))

	// Size machine memory so the pool holds 0.9x orders at a 50% memory
	// share (sequential flooding, ~0% hits) but 1.35x at 75% (fully
	// cached): pool(share) = share * BufferFrac * MemBytes / pageSize.
	machine := e.Machine
	machine.MemBytes = int64(ordersPages * 8192 * 1.8 / e.Engine.BufferFrac)
	env := NewEnv(e.Scale, machine)
	env.Seed = e.Seed
	env.mu.Lock()
	env.dbs = e.dbs // reuse the already-built databases
	env.mu.Unlock()

	specs, err := env.specs(2, 6)
	if err != nil {
		return nil, err
	}
	model := &core.WhatIfModel{Cal: env.Calibrator()}
	cpuOnly, err := core.SolveDP(context.Background(), &core.Problem{
		Workloads:   specs,
		Resources:   []vm.Resource{vm.CPU},
		Step:        0.25,
		Parallelism: env.Parallelism,
		Obs:         env.Obs,
	}, model)
	if err != nil {
		return nil, err
	}
	joint, err := core.SolveDP(context.Background(), &core.Problem{
		Workloads:   specs,
		Resources:   []vm.Resource{vm.CPU, vm.Memory},
		Step:        0.25,
		Parallelism: env.Parallelism,
		Obs:         env.Obs,
	}, model)
	if err != nil {
		return nil, err
	}
	mc, err := core.MeasureAllocation(env.Machine, env.Engine, specs, cpuOnly.Allocation, true)
	if err != nil {
		return nil, err
	}
	mj, err := core.MeasureAllocation(env.Machine, env.Engine, specs, joint.Allocation, true)
	if err != nil {
		return nil, err
	}
	return &MemoryDimensionResult{
		CPUOnly:         cpuOnly.Allocation,
		Joint:           joint.Allocation,
		CPUOnlyMeasured: mc[0] + mc[1],
		JointMeasured:   mj[0] + mj[1],
	}, nil
}

// FormatMemoryDimension renders the memory-dimension study.
func FormatMemoryDimension(r *MemoryDimensionResult) string {
	var sb strings.Builder
	sb.WriteString("Ablation: CPU-only vs joint CPU+memory design\n")
	fmt.Fprintf(&sb, "  cpu-only: %v -> measured %.3fs\n", r.CPUOnly, r.CPUOnlyMeasured)
	fmt.Fprintf(&sb, "  joint:    %v -> measured %.3fs\n", r.Joint, r.JointMeasured)
	return sb.String()
}
