package experiments

import (
	"context"
	"fmt"
	"strings"

	"dbvirt/internal/core"
	"dbvirt/internal/optimizer"
	"dbvirt/internal/vm"
	"dbvirt/internal/workload"
)

// Fig3Row is one point of Figure 3: the calibrated cpu_tuple_cost at one
// (CPU share, memory share) pair.
type Fig3Row struct {
	CPUShare, MemShare float64
	CPUTupleCost       float64
	Params             optimizer.Params
}

// Figure3 calibrates the optimizer over the cross product of CPU and
// memory shares (I/O fixed) and reports cpu_tuple_cost at each point — the
// paper's Figure 3.
func (e *Env) Figure3(cpuShares, memShares []float64, ioShare float64) ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, mem := range memShares {
		for _, cpu := range cpuShares {
			p, err := e.Calibrator().Calibrate(context.Background(), vm.Shares{CPU: cpu, Memory: mem, IO: ioShare})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig3Row{
				CPUShare: cpu, MemShare: mem,
				CPUTupleCost: p.CPUTupleCost,
				Params:       p,
			})
		}
	}
	return rows, nil
}

// FormatFigure3 renders the rows as the paper's series (one line per
// memory share, one column per CPU share).
func FormatFigure3(rows []Fig3Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 3: calibrated cpu_tuple_cost vs resource allocation\n")
	byMem := map[float64][]Fig3Row{}
	var mems []float64
	for _, r := range rows {
		if _, ok := byMem[r.MemShare]; !ok {
			mems = append(mems, r.MemShare)
		}
		byMem[r.MemShare] = append(byMem[r.MemShare], r)
	}
	for _, mem := range mems {
		fmt.Fprintf(&sb, "  mem=%2.0f%%:", mem*100)
		for _, r := range byMem[mem] {
			fmt.Fprintf(&sb, "  cpu=%2.0f%% -> %.5f", r.CPUShare*100, r.CPUTupleCost)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Fig4Row is one point of Figure 4: estimated and actual execution time of
// Q4 and Q13 at one CPU share (memory and I/O fixed at 50%).
type Fig4Row struct {
	CPUShare float64
	EstQ4    float64
	ActQ4    float64
	EstQ13   float64
	ActQ13   float64
}

// Fig4Result holds the rows plus the 50%-normalized series as plotted in
// the paper.
type Fig4Result struct {
	Rows []Fig4Row
	// Norm* are the same series divided by their value at CPU=50%.
	NormEstQ4, NormActQ4, NormEstQ13, NormActQ13 []float64
}

// Figure4 reproduces the paper's sensitivity experiment: estimate and
// measure Q4 and Q13 at each CPU share with memory fixed at 50%.
func (e *Env) Figure4(cpuShares []float64) (*Fig4Result, error) {
	q4db, err := e.DB("w-q4")
	if err != nil {
		return nil, err
	}
	q13db, err := e.DB("w-q13")
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{}
	var at50 *Fig4Row
	for _, cpu := range cpuShares {
		shares := vm.Shares{CPU: cpu, Memory: 0.5, IO: 0.5}
		row := Fig4Row{CPUShare: cpu}
		if row.EstQ4, err = e.EstimateQuery(q4db, workload.Query("Q4"), shares); err != nil {
			return nil, err
		}
		if row.ActQ4, err = e.MeasureQuery(q4db, workload.Query("Q4"), shares); err != nil {
			return nil, err
		}
		if row.EstQ13, err = e.EstimateQuery(q13db, workload.Query("Q13"), shares); err != nil {
			return nil, err
		}
		if row.ActQ13, err = e.MeasureQuery(q13db, workload.Query("Q13"), shares); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		if cpu == 0.5 {
			at50 = &res.Rows[len(res.Rows)-1]
		}
	}
	if at50 == nil && len(res.Rows) > 0 {
		at50 = &res.Rows[len(res.Rows)/2]
	}
	for _, r := range res.Rows {
		res.NormEstQ4 = append(res.NormEstQ4, r.EstQ4/at50.EstQ4)
		res.NormActQ4 = append(res.NormActQ4, r.ActQ4/at50.ActQ4)
		res.NormEstQ13 = append(res.NormEstQ13, r.EstQ13/at50.EstQ13)
		res.NormActQ13 = append(res.NormActQ13, r.ActQ13/at50.ActQ13)
	}
	return res, nil
}

// FormatFigure4 renders the normalized series like the paper's bars.
func FormatFigure4(res *Fig4Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 4: sensitivity to varying CPU share (normalized to CPU=50%)\n")
	sb.WriteString("  cpu%   est-Q4  act-Q4  est-Q13 act-Q13   (raw est/act seconds)\n")
	for i, r := range res.Rows {
		fmt.Fprintf(&sb, "  %3.0f%%   %6.3f  %6.3f  %6.3f  %6.3f   (Q4 %.3f/%.3f  Q13 %.3f/%.3f)\n",
			r.CPUShare*100,
			res.NormEstQ4[i], res.NormActQ4[i], res.NormEstQ13[i], res.NormActQ13[i],
			r.EstQ4, r.ActQ4, r.EstQ13, r.ActQ13)
	}
	return sb.String()
}

// Fig5Result holds the Figure 5 reproduction: measured workload times
// under the default equal CPU split and under the allocation chosen by the
// what-if search.
type Fig5Result struct {
	ChosenAllocation core.Allocation
	PredictedTotal   float64
	// Measured seconds per workload under each allocation.
	DefaultW1, DefaultW2 float64
	ChosenW1, ChosenW2   float64
}

// Improvement returns W2's relative improvement and W1's relative
// degradation under the chosen allocation.
func (r *Fig5Result) Improvement() (w2Gain, w1Loss float64) {
	w2Gain = 1 - r.ChosenW2/r.DefaultW2
	w1Loss = r.ChosenW1/r.DefaultW1 - 1
	return
}

// Figure5 reproduces the paper's workload experiment: W1 = 3 copies of
// Q4, W2 = 9 copies of Q13. The what-if model drives a CPU-share search
// (memory and I/O fixed 50/50); the chosen allocation and the default
// equal split are then both actually executed.
func (e *Env) Figure5() (*Fig5Result, error) {
	specs, err := e.specs(3, 9)
	if err != nil {
		return nil, err
	}
	model := &core.WhatIfModel{Cal: e.Calibrator()}
	problem := &core.Problem{
		Workloads:   specs,
		Resources:   []vm.Resource{vm.CPU},
		Step:        0.25,
		Parallelism: e.Parallelism,
		Obs:         e.Obs,
	}
	sol, err := core.SolveDP(context.Background(), problem, model)
	if err != nil {
		return nil, err
	}

	def, err := core.MeasureAllocation(e.Machine, e.Engine, specs, core.EqualAllocation(2), true)
	if err != nil {
		return nil, err
	}
	chosen, err := core.MeasureAllocation(e.Machine, e.Engine, specs, sol.Allocation, true)
	if err != nil {
		return nil, err
	}
	return &Fig5Result{
		ChosenAllocation: sol.Allocation,
		PredictedTotal:   sol.PredictedTotal,
		DefaultW1:        def[0], DefaultW2: def[1],
		ChosenW1: chosen[0], ChosenW2: chosen[1],
	}, nil
}

// FormatFigure5 renders the result like the paper's bar chart.
func FormatFigure5(r *Fig5Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: effect on total execution time (W1 = 3xQ4, W2 = 9xQ13)\n")
	fmt.Fprintf(&sb, "  chosen allocation: %v (predicted total %.3fs)\n", r.ChosenAllocation, r.PredictedTotal)
	fmt.Fprintf(&sb, "  W1 (Q4):  default %.3fs -> chosen %.3fs\n", r.DefaultW1, r.ChosenW1)
	fmt.Fprintf(&sb, "  W2 (Q13): default %.3fs -> chosen %.3fs\n", r.DefaultW2, r.ChosenW2)
	gain, loss := r.Improvement()
	fmt.Fprintf(&sb, "  W2 improves %.0f%%; W1 degrades %.0f%%\n", gain*100, loss*100)
	return sb.String()
}

// FigWriteRow is one point of the write-sensitivity figure: estimated and
// actual time of a commit-bound insert workload, the actual time of an
// update workload, and the actual time of the read-bound Q4, all at one
// I/O share (CPU and memory fixed at 50%).
type FigWriteRow struct {
	IOShare   float64
	EstWrite  float64
	ActWrite  float64
	ActUpdate float64
	ActRead   float64
	// LogBytes/Flushes are the insert workload's measured log footprint —
	// the inputs of EstWrite. They are a property of the workload, not of
	// the allocation, so they are identical on every row.
	LogBytes int64
	Flushes  int
}

// FigWriteResult holds the rows plus the IO=50%-normalized series.
type FigWriteResult struct {
	Rows []FigWriteRow
	// Norm* are the same series divided by their value at IO=50%.
	NormEstWrite, NormActWrite, NormActUpdate, NormActRead []float64
}

// FigureWrite contrasts a write-bound tenant with a read-bound one across
// I/O shares (CPU and memory fixed at 50%): the insert and update
// workloads pay a WAL group fsync per autocommit statement, so their time
// tracks the calibrated TimePerLogFlush as the I/O share shrinks, while
// the read-bound Q4's sensitivity comes from page fetches alone. EstWrite
// is the what-if write estimate EstimateWriteSeconds(LogBytes, Flushes)
// under the calibrated P(shares).
func (e *Env) FigureWrite(ioShares []float64) (*FigWriteResult, error) {
	const baseRows = 512
	const nWrites = 96
	inserts := workload.InsertHeavy("insert-heavy", baseRows, nWrites)
	updates := workload.UpdateHeavy("update-heavy", baseRows, nWrites, e.Seed)
	q4db, err := e.DB("w-q4")
	if err != nil {
		return nil, err
	}
	res := &FigWriteResult{}
	var at50 *FigWriteRow
	for _, io := range ioShares {
		shares := vm.Shares{CPU: 0.5, Memory: 0.5, IO: io}
		row := FigWriteRow{IOShare: io}
		if row.ActWrite, row.LogBytes, row.Flushes, err = e.MeasureWrite(inserts, baseRows, shares); err != nil {
			return nil, err
		}
		if row.ActUpdate, _, _, err = e.MeasureWrite(updates, baseRows, shares); err != nil {
			return nil, err
		}
		p, err := e.Calibrator().Calibrate(context.Background(), shares)
		if err != nil {
			return nil, err
		}
		row.EstWrite = p.EstimateWriteSeconds(row.LogBytes, row.Flushes)
		if row.ActRead, err = e.MeasureQuery(q4db, workload.Query("Q4"), shares); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		if io == 0.5 {
			at50 = &res.Rows[len(res.Rows)-1]
		}
	}
	if at50 == nil && len(res.Rows) > 0 {
		at50 = &res.Rows[len(res.Rows)/2]
	}
	for _, r := range res.Rows {
		res.NormEstWrite = append(res.NormEstWrite, r.EstWrite/at50.EstWrite)
		res.NormActWrite = append(res.NormActWrite, r.ActWrite/at50.ActWrite)
		res.NormActUpdate = append(res.NormActUpdate, r.ActUpdate/at50.ActUpdate)
		res.NormActRead = append(res.NormActRead, r.ActRead/at50.ActRead)
	}
	return res, nil
}

// FormatFigureWrite renders the normalized series.
func FormatFigureWrite(res *FigWriteResult) string {
	var sb strings.Builder
	sb.WriteString("Figure W: sensitivity to varying I/O share (normalized to IO=50%)\n")
	sb.WriteString("  io%   est-ins  act-ins  act-upd  act-Q4   (raw seconds)\n")
	for i, r := range res.Rows {
		fmt.Fprintf(&sb, "  %3.0f%%  %7.3f  %7.3f  %7.3f  %6.3f   (ins %.4f/%.4f  upd %.4f  Q4 %.4f)\n",
			r.IOShare*100,
			res.NormEstWrite[i], res.NormActWrite[i], res.NormActUpdate[i], res.NormActRead[i],
			r.EstWrite, r.ActWrite, r.ActUpdate, r.ActRead)
	}
	if len(res.Rows) > 0 {
		fmt.Fprintf(&sb, "  write workload: %d stmts, %d log bytes, %d flushes\n",
			res.Rows[0].Flushes, res.Rows[0].LogBytes, res.Rows[0].Flushes)
	}
	return sb.String()
}
