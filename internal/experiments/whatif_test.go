package experiments

import (
	"context"
	"testing"

	"dbvirt/internal/core"
	"dbvirt/internal/obs"
)

// TestSyntheticGridMatrixEquivalence drives the full what-if matrix —
// every workload priced at every lattice allocation — through both the
// memoized model and the cold (NoPrepare) model and requires
// bit-identical cost matrices, with the re-costing fast path actually
// engaged on the memoized side.
func TestSyntheticGridMatrixEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds workload databases")
	}
	e := QuickEnv()
	specs, err := e.MatrixWorkloads(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := SyntheticGrid([]float64{0.25, 1.0}, []float64{0.5, 1.0}, []float64{0.25, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	allocs := g.Allocations()

	ctx := context.Background()
	fastBefore := obs.Global.Counter("whatif.recost.fast").Value()
	memo, err := CostMatrix(ctx, &core.WhatIfModel{Grid: g}, specs, allocs)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := CostMatrix(ctx, &core.WhatIfModel{Grid: g, NoPrepare: true}, specs, allocs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		for j := range allocs {
			if memo[i][j] != cold[i][j] {
				t.Errorf("%s @ %v: memoized %v, cold %v",
					specs[i].Name, allocs[j], memo[i][j], cold[i][j])
			}
			if memo[i][j] <= 0 {
				t.Errorf("%s @ %v: non-positive cost %v", specs[i].Name, allocs[j], memo[i][j])
			}
		}
	}
	if got := obs.Global.Counter("whatif.recost.fast").Value() - fastBefore; got == 0 {
		t.Error("memoized matrix never took the re-costing fast path")
	}
}
