package experiments

import (
	"strings"
	"testing"
)

// The experiment harness tests run at the quick scale and assert the
// paper's qualitative shapes, not absolute numbers.

func quick(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment harness tests are not short")
	}
	return QuickEnv()
}

func TestFigure3Shape(t *testing.T) {
	env := quick(t)
	rows, err := env.Figure3([]float64{0.25, 0.5, 0.75}, []float64{0.5}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// cpu_tuple_cost decreases monotonically with the CPU share and the
	// 25%/75% ratio is super-linear (> 3) due to scheduler overhead.
	if !(rows[0].CPUTupleCost > rows[1].CPUTupleCost && rows[1].CPUTupleCost > rows[2].CPUTupleCost) {
		t.Errorf("cpu_tuple_cost not monotone: %v %v %v",
			rows[0].CPUTupleCost, rows[1].CPUTupleCost, rows[2].CPUTupleCost)
	}
	if ratio := rows[0].CPUTupleCost / rows[2].CPUTupleCost; ratio < 3 {
		t.Errorf("25%%/75%% ratio = %.2f, want > 3 (super-linear)", ratio)
	}
	out := FormatFigure3(rows)
	if !strings.Contains(out, "cpu_tuple_cost") {
		t.Error("format output missing header")
	}
}

func TestFigure4Shape(t *testing.T) {
	env := quick(t)
	res, err := env.Figure4([]float64{0.25, 0.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	// Q4 (I/O-bound) is nearly flat: within 15% of its 50% value at both
	// extremes, in estimate and measurement.
	for i := range res.Rows {
		for _, v := range []float64{res.NormEstQ4[i], res.NormActQ4[i]} {
			if v < 0.85 || v > 1.15 {
				t.Errorf("Q4 should be flat, point %d = %.3f", i, v)
			}
		}
	}
	// Q13 (CPU-bound) slows at 25% and speeds up at 75% substantially.
	if res.NormActQ13[0] < 1.8 {
		t.Errorf("Q13 actual at 25%% = %.2f, want > 1.8", res.NormActQ13[0])
	}
	if res.NormActQ13[2] > 0.7 {
		t.Errorf("Q13 actual at 75%% = %.2f, want < 0.7", res.NormActQ13[2])
	}
	if res.NormEstQ13[0] < 1.5 || res.NormEstQ13[2] > 0.8 {
		t.Errorf("Q13 estimates should track: %.2f / %.2f", res.NormEstQ13[0], res.NormEstQ13[2])
	}
	// Estimates rank allocations in the same order as measurements.
	for i := 1; i < len(res.Rows); i++ {
		if (res.NormEstQ13[i] < res.NormEstQ13[i-1]) != (res.NormActQ13[i] < res.NormActQ13[i-1]) {
			t.Errorf("estimate/actual ranking disagree for Q13 between points %d and %d", i-1, i)
		}
	}
	if !strings.Contains(FormatFigure4(res), "Figure 4") {
		t.Error("format output missing header")
	}
}

func TestFigure5Shape(t *testing.T) {
	env := quick(t)
	res, err := env.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	// The search must give W2 (Q13) more CPU than W1 (Q4).
	if res.ChosenAllocation[1].CPU <= res.ChosenAllocation[0].CPU {
		t.Fatalf("search should favor the CPU-bound workload: %v", res.ChosenAllocation)
	}
	gain, loss := res.Improvement()
	if gain < 0.2 {
		t.Errorf("W2 improvement = %.0f%%, want >= 20%% (paper: ~30%%)", gain*100)
	}
	if loss > 0.15 {
		t.Errorf("W1 degradation = %.0f%%, want <= 15%% (paper: not significant)", loss*100)
	}
	if !strings.Contains(FormatFigure5(res), "Figure 5") {
		t.Error("format output missing header")
	}
}

func TestAblationSearchShape(t *testing.T) {
	env := quick(t)
	rows, err := env.AblationSearch(3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SearchRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	// DP and exhaustive agree (both exact).
	if byName["dp"].PredictedTotal != byName["exhaustive"].PredictedTotal {
		t.Errorf("dp %.3f != exhaustive %.3f",
			byName["dp"].PredictedTotal, byName["exhaustive"].PredictedTotal)
	}
	// The searched designs beat the equal split in actual execution.
	if byName["dp"].MeasuredTotal >= byName["equal"].MeasuredTotal {
		t.Errorf("dp measured %.3f should beat equal %.3f",
			byName["dp"].MeasuredTotal, byName["equal"].MeasuredTotal)
	}
	if _, err := env.AblationSearch(9, 0.25); err == nil {
		t.Error("workload count out of range should error")
	}
}

func TestAblationOverlapShape(t *testing.T) {
	env := quick(t)
	rows, err := env.AblationOverlap([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Q4's CPU sensitivity shrinks as overlap grows; at full overlap the
	// query is perfectly flat.
	if rows[0].Q4Sensitivity <= rows[1].Q4Sensitivity {
		t.Errorf("overlap should hide CPU: %v", rows)
	}
	if rows[1].Q4Sensitivity > 1.02 {
		t.Errorf("full overlap should make Q4 flat, got %.3f", rows[1].Q4Sensitivity)
	}
}

func TestDynamicReconfigImproves(t *testing.T) {
	env := quick(t)
	res, err := env.DynamicReconfig()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reconfigured {
		t.Fatal("controller did not reconfigure")
	}
	if res.DynamicTotal >= res.StaticTotal {
		t.Errorf("dynamic %.3fs should beat static %.3fs", res.DynamicTotal, res.StaticTotal)
	}
}

func TestSLOForcesShares(t *testing.T) {
	env := quick(t)
	res, err := env.SLOWeighted()
	if err != nil {
		t.Fatal(err)
	}
	// Under the SLO, W1's predicted cost must meet (or get much closer
	// to) the target than the unconstrained design.
	if res.W1CostConstrained > res.W1CostUnconstrained {
		t.Errorf("SLO design should not worsen W1: %.3f vs %.3f",
			res.W1CostConstrained, res.W1CostUnconstrained)
	}
}

func TestMemoryDimensionImproves(t *testing.T) {
	env := quick(t)
	res, err := env.MemoryDimension()
	if err != nil {
		t.Fatal(err)
	}
	// The joint design shifts memory toward the cacheable workload and
	// must win in actual execution.
	if res.Joint[1].Memory <= res.Joint[0].Memory {
		t.Errorf("joint design should favor W2's memory: %v", res.Joint)
	}
	if res.JointMeasured >= res.CPUOnlyMeasured {
		t.Errorf("joint %.3fs should beat cpu-only %.3fs", res.JointMeasured, res.CPUOnlyMeasured)
	}
}

func TestGridAblationShape(t *testing.T) {
	env := quick(t)
	rows, err := env.AblationCalibrationGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatal("need at least two grid resolutions")
	}
	if rows[len(rows)-1].MeanRelErr >= rows[0].MeanRelErr {
		t.Errorf("finer grids should reduce error: %v", rows)
	}
}
