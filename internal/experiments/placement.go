package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"dbvirt/internal/core"
	"dbvirt/internal/placement"
	"dbvirt/internal/workload"
)

// fleetQueries are the workload shapes the synthetic fleet cycles over;
// each gets one shared database, so tenants of a shape share an interned
// spec (the serving-side registry behavior).
var fleetQueries = []string{"Q1", "Q4", "Q6", "Q13"}

// FleetTenants generates n deterministic synthetic tenants: each tenant
// runs one of the fleet query shapes repeated 1–3 times, with the
// (shape, repeat) pair drawn from a seeded hash of the tenant index.
// Specs are interned per (shape, repeat), so the fleet has at most
// len(fleetQueries)*3 distinct workload identities — the regime workload
// compression exploits.
func (e *Env) FleetTenants(n int, seed uint64) ([]*placement.Tenant, error) {
	specs := make(map[string]*core.WorkloadSpec)
	tenants := make([]*placement.Tenant, n)
	for i := 0; i < n; i++ {
		h := fleetMix(seed + uint64(i))
		q := fleetQueries[h%uint64(len(fleetQueries))]
		repeat := int(h>>8)%3 + 1
		id := fmt.Sprintf("%sx%d", q, repeat)
		spec, ok := specs[id]
		if !ok {
			db, err := e.DB("fleet-" + q)
			if err != nil {
				return nil, err
			}
			spec = &core.WorkloadSpec{
				Name:       id,
				Statements: workload.Repeat(id, workload.Query(q), repeat).Statements,
				DB:         db,
			}
			specs[id] = spec
		}
		tenants[i] = &placement.Tenant{Name: fmt.Sprintf("t%05d", i), Spec: spec}
	}
	return tenants, nil
}

// fleetMix is a splitmix64 finalizer: a seeded index hash with good
// avalanche, so tenant shapes look shuffled but are reproducible.
func fleetMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FigPRow is one fleet size of the placement-scaling figure. The timing
// fields are excluded from JSON so golden snapshots stay deterministic.
type FigPRow struct {
	Tenants       int     `json:"tenants"`
	Classes       int     `json:"classes"`
	Machines      int     `json:"machines"`
	MachineSolves int     `json:"machine_solves"`
	MemoHits      int     `json:"memo_hits"`
	TotalCost     float64 `json:"total_cost"`
	// ApplyDirty / ApplyMachines describe the incremental arrival applied
	// after the full solve: how many machine shapes one new tenant dirtied
	// versus the machine count it left behind.
	ApplyDirty    int  `json:"apply_dirty"`
	ApplyMachines int  `json:"apply_machines"`
	Verified      bool `json:"verified"`

	FullSeconds  float64 `json:"-"`
	ApplySeconds float64 `json:"-"`
	Speedup      float64 `json:"-"`
}

// FigurePlacement runs the fleet-placement scaling experiment: for each
// fleet size, a from-scratch solve (fresh solver and cost model — the
// cold baseline), a Verify pass, and then one incremental tenant arrival
// on the warm state. TotalCost is only reported after Verify re-checks
// every machine against the cost model.
func (e *Env) FigurePlacement(sizes []int) ([]FigPRow, error) {
	ctx := context.Background()
	axes := []float64{0.25, 0.5, 0.75, 1.0}
	rows := make([]FigPRow, 0, len(sizes))
	for _, n := range sizes {
		tenants, err := e.FleetTenants(n, 11)
		if err != nil {
			return nil, err
		}
		grid, err := SyntheticGrid(axes, axes, axes)
		if err != nil {
			return nil, err
		}
		model := core.NewSharedCostModel(&core.WhatIfModel{Grid: grid}, func(w *core.WorkloadSpec) string {
			return placement.SpecKey(w)
		})
		solver, err := placement.NewSolver(placement.Config{
			Parallelism: e.Parallelism,
			Obs:         e.Obs,
		}, model)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		pl, err := solver.Solve(ctx, tenants)
		if err != nil {
			return nil, err
		}
		full := time.Since(start)
		fullStats := pl.Stats
		fullCost := pl.TotalCost
		if err := pl.Verify(ctx); err != nil {
			return nil, fmt.Errorf("experiments: placement verify (%d tenants): %w", n, err)
		}
		arrival, err := e.FleetTenants(1, 997)
		if err != nil {
			return nil, err
		}
		arrival[0].Name = "t-new"
		start = time.Now()
		stats, err := pl.Apply(ctx, placement.Event{Type: placement.Arrive, Tenant: arrival[0]})
		if err != nil {
			return nil, err
		}
		applyDur := time.Since(start)
		speedup := 0.0
		if applyDur > 0 {
			speedup = float64(full) / float64(applyDur)
		}
		rows = append(rows, FigPRow{
			Tenants:       n,
			Classes:       fullStats.Classes,
			Machines:      fullStats.Machines,
			MachineSolves: fullStats.MachineSolves,
			MemoHits:      fullStats.MemoHits,
			TotalCost:     fullCost,
			ApplyDirty:    stats.MachineSolves,
			ApplyMachines: stats.Machines,
			Verified:      true,
			FullSeconds:   full.Seconds(),
			ApplySeconds:  applyDur.Seconds(),
			Speedup:       speedup,
		})
	}
	return rows, nil
}

// FormatFigurePlacement renders the placement-scaling figure.
func FormatFigurePlacement(rows []FigPRow) string {
	var b strings.Builder
	b.WriteString("Figure P: fleet placement scaling (cluster -> pack -> per-machine solve)\n")
	b.WriteString("tenants  classes  machines  solves  memo  fleet-cost  full(s)  apply(s)  speedup\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d  %7d  %8d  %6d  %4d  %10.3f  %7.3f  %8.4f  %7.1fx\n",
			r.Tenants, r.Classes, r.Machines, r.MachineSolves, r.MemoHits,
			r.TotalCost, r.FullSeconds, r.ApplySeconds, r.Speedup)
	}
	return b.String()
}
