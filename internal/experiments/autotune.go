package experiments

// The closed-loop payoff figure (Figure 5 extended into a time series):
// two tenants run under the autotuning controller; mid-trace one
// tenant's mix collapses from the I/O-bound Q4 scan to cheap point
// lookups. The series shows the paper's dynamic-reconfiguration story
// end to end — shift, drift alarm, hysteresis-delayed share shift, and
// the predicted-cost drop that pays for it — produced by the same
// internal/autotune loop vdtuned runs, under an injected clock so the
// figure is deterministic.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"dbvirt/internal/autotune"
	"dbvirt/internal/core"
	"dbvirt/internal/telemetry"
	"dbvirt/internal/vm"
	"dbvirt/internal/workload"
)

// FigCRow is one control-loop tick of the payoff series. Every field is
// deterministic — the loop runs under a fixed clock and a synthetic
// grid, and no wall-clock measurement appears in the row — so the
// figure can be pinned by a golden snapshot.
type FigCRow struct {
	Tick    int64   `json:"tick"`
	Phase   string  `json:"phase"` // "stationary" | "shifted"
	Trigger string  `json:"trigger"`
	Action  string  `json:"action"`
	Reason  string  `json:"reason,omitempty"`
	Drift   float64 `json:"drift"`
	Alarmed bool    `json:"alarmed"`
	Gain    float64 `json:"gain"`
	// Cost is the predicted total cost of the allocation in force when
	// the tick ran — the figure's "latency" axis.
	Cost  float64 `json:"cost"`
	W1CPU float64 `json:"w1_cpu"` // shares after the tick's decision
	W2CPU float64 `json:"w2_cpu"`
}

// FigureControl replays the two-phase trace through a real control
// loop: preTicks ticks of symmetric Q4 traffic (the controller must
// hold the equal split), then postTicks ticks with tenant w2 shifted to
// QPOINT (the controller must move CPU to w1 exactly once).
func (e *Env) FigureControl(preTicks, postTicks int) ([]FigCRow, error) {
	axes := []float64{0.25, 0.5, 0.75, 1.0}
	grid, err := SyntheticGrid(axes, axes, axes)
	if err != nil {
		return nil, err
	}
	model := core.NewSharedCostModel(&core.WhatIfModel{Grid: grid}, nil)

	db1, err := e.DB("at-w1")
	if err != nil {
		return nil, err
	}
	db2, err := e.DB("at-w2")
	if err != nil {
		return nil, err
	}
	machine, err := vm.NewMachine(e.Machine)
	if err != nil {
		return nil, err
	}
	equal := core.EqualAllocation(2)
	vms := make([]*vm.VM, 2)
	for i, name := range []string{"w1", "w2"} {
		if vms[i], err = machine.NewVM(name, equal[i]); err != nil {
			return nil, err
		}
	}
	fallback := workload.Repeat("w", workload.Query("Q4"), 2).Statements
	hub := telemetry.NewHub(telemetry.Config{Window: 8, TopK: 8})

	base := time.Unix(1700000000, 0).UTC()
	var clockTicks int64
	loop, err := autotune.NewLoop(autotune.Config{
		Hub:   hub,
		Model: model,
		VMs:   vms,
		Tenants: []autotune.ManagedTenant{
			{Name: "w1", DB: db1, Fallback: fallback},
			{Name: "w2", DB: db2, Fallback: fallback},
		},
		Step:        0.25,
		Parallelism: e.Parallelism,
		Decider: autotune.DeciderConfig{
			MinGain:       0.05,
			ConfirmTicks:  2,
			CooldownTicks: 4,
			MaxStepDelta:  0.25,
		},
		Obs: e.Obs,
		Clock: func() time.Time {
			clockTicks++
			return base.Add(time.Duration(clockTicks) * time.Second)
		},
		StartEnabled: true,
	})
	if err != nil {
		return nil, err
	}

	feed := func(tenant, query string) {
		t := hub.Tenant(tenant)
		for i := 0; i < 8; i++ { // one full sketch window per tick
			t.ObserveQuery(workload.Query(query))
		}
	}
	ctx := context.Background()
	rows := make([]FigCRow, 0, preTicks+postTicks)
	for i := 0; i < preTicks+postTicks; i++ {
		phase, w2q := "stationary", "Q4"
		if i >= preTicks {
			phase, w2q = "shifted", "QPOINT"
		}
		feed("w1", "Q4")
		feed("w2", w2q)
		d := loop.Tick(ctx)
		if d.Action == autotune.ActionError {
			return nil, fmt.Errorf("experiments: control tick %d: %s", d.Tick, d.Err)
		}
		rows = append(rows, FigCRow{
			Tick:    d.Tick,
			Phase:   phase,
			Trigger: d.Trigger,
			Action:  d.Action,
			Reason:  d.Reason,
			Drift:   d.DriftMax,
			Alarmed: len(d.Alarmed) > 0,
			Gain:    d.Gain,
			Cost:    d.CurrentTotal,
			W1CPU:   vms[0].Shares().CPU,
			W2CPU:   vms[1].Shares().CPU,
		})
	}
	return rows, nil
}

// FormatFigureControl renders the payoff time series.
func FormatFigureControl(rows []FigCRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure C: closed-loop payoff (Q4/Q4 -> Q4/QPOINT at the phase break)\n")
	fmt.Fprintf(&b, "%4s  %-10s  %-8s  %-10s  %-10s  %6s  %5s  %8s  %5s  %5s\n",
		"tick", "phase", "trigger", "action", "reason", "drift", "alarm", "cost", "w1cpu", "w2cpu")
	for _, r := range rows {
		alarm := ""
		if r.Alarmed {
			alarm = "ALARM"
		}
		fmt.Fprintf(&b, "%4d  %-10s  %-8s  %-10s  %-10s  %6.3f  %5s  %8.4f  %5.2f  %5.2f\n",
			r.Tick, r.Phase, r.Trigger, r.Action, r.Reason, r.Drift, alarm, r.Cost, r.W1CPU, r.W2CPU)
	}
	return b.String()
}
