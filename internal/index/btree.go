// Package index implements a page-based B+-tree mapping int64 keys to heap
// tuple IDs. It supports duplicate keys, range scans via a leaf sibling
// chain, and lazy deletes. All page access goes through a storage.Pager,
// so index I/O is charged to the owning VM like any other page access.
//
// Page 0 of the index file is a meta page holding the root page number,
// tree height, and entry count. Interior and leaf nodes use fixed-size
// entries, giving fan-outs of ~680 and ~580 respectively at 8 KiB pages.
package index

import (
	"encoding/binary"
	"fmt"

	"dbvirt/internal/storage"
)

const (
	metaPage = 0

	// node header layout
	offIsLeaf  = 0 // byte: 1 leaf, 0 interior
	offNumKeys = 2 // uint16
	offNext    = 4 // uint32: next-leaf page (leaves only)
	hdrSize    = 8

	leafEntrySize = 14 // key int64 + TID (page uint32 + slot uint16)
	intEntrySize  = 12 // key int64 + child uint32
	intFirstChild = hdrSize
	intEntries    = hdrSize + 4

	invalidPage = ^uint32(0)
)

// MaxLeafEntries and MaxInternalKeys are exported for tests that exercise
// splits.
const (
	MaxLeafEntries  = (storage.PageSize - hdrSize) / leafEntrySize
	MaxInternalKeys = (storage.PageSize - intEntries) / intEntrySize
)

// BTree is a handle to a B+-tree stored in one disk file. Like HeapFile it
// holds only identity; page access uses the Pager passed to each call.
type BTree struct {
	fid storage.FileID
}

// Create initializes a new B+-tree in an empty file: a meta page plus an
// empty root leaf.
func Create(pg storage.Pager, fid storage.FileID) (*BTree, error) {
	if pg.NumPages(fid) != 0 {
		return nil, fmt.Errorf("index: file %d is not empty", fid)
	}
	metaID, meta, err := pg.Allocate(fid)
	if err != nil {
		return nil, err
	}
	rootID, root, err := pg.Allocate(fid)
	if err != nil {
		pg.Unpin(metaID, false)
		return nil, err
	}
	initLeaf(root)
	pg.Unpin(rootID, true)
	setMeta(meta, rootID.Page, 1, 0)
	pg.Unpin(metaID, true)
	return &BTree{fid: fid}, nil
}

// Open wraps an existing B+-tree file.
func Open(fid storage.FileID) *BTree { return &BTree{fid: fid} }

// FileID returns the underlying disk file.
func (t *BTree) FileID() storage.FileID { return t.fid }

func setMeta(meta *storage.PageData, root uint32, height uint32, entries int64) {
	binary.LittleEndian.PutUint32(meta[0:], root)
	binary.LittleEndian.PutUint32(meta[4:], height)
	binary.LittleEndian.PutUint64(meta[8:], uint64(entries))
}

func getMeta(meta *storage.PageData) (root uint32, height uint32, entries int64) {
	return binary.LittleEndian.Uint32(meta[0:]),
		binary.LittleEndian.Uint32(meta[4:]),
		int64(binary.LittleEndian.Uint64(meta[8:]))
}

func initLeaf(p *storage.PageData) {
	p[offIsLeaf] = 1
	binary.LittleEndian.PutUint16(p[offNumKeys:], 0)
	binary.LittleEndian.PutUint32(p[offNext:], invalidPage)
}

func initInternal(p *storage.PageData) {
	p[offIsLeaf] = 0
	binary.LittleEndian.PutUint16(p[offNumKeys:], 0)
	binary.LittleEndian.PutUint32(p[offNext:], invalidPage)
}

func isLeaf(p *storage.PageData) bool { return p[offIsLeaf] == 1 }
func numKeys(p *storage.PageData) int { return int(binary.LittleEndian.Uint16(p[offNumKeys:])) }
func setNumKeys(p *storage.PageData, n int) {
	binary.LittleEndian.PutUint16(p[offNumKeys:], uint16(n))
}
func nextLeaf(p *storage.PageData) uint32       { return binary.LittleEndian.Uint32(p[offNext:]) }
func setNextLeaf(p *storage.PageData, n uint32) { binary.LittleEndian.PutUint32(p[offNext:], n) }

// --- leaf entries ---

func leafKey(p *storage.PageData, i int) int64 {
	return int64(binary.LittleEndian.Uint64(p[hdrSize+i*leafEntrySize:]))
}

func leafTID(p *storage.PageData, i int) storage.TID {
	off := hdrSize + i*leafEntrySize + 8
	return storage.TID{
		Page: binary.LittleEndian.Uint32(p[off:]),
		Slot: binary.LittleEndian.Uint16(p[off+4:]),
	}
}

func setLeafEntry(p *storage.PageData, i int, key int64, tid storage.TID) {
	off := hdrSize + i*leafEntrySize
	binary.LittleEndian.PutUint64(p[off:], uint64(key))
	binary.LittleEndian.PutUint32(p[off+8:], tid.Page)
	binary.LittleEndian.PutUint16(p[off+12:], tid.Slot)
}

func leafInsertAt(p *storage.PageData, i int, key int64, tid storage.TID) {
	n := numKeys(p)
	copy(p[hdrSize+(i+1)*leafEntrySize:hdrSize+(n+1)*leafEntrySize],
		p[hdrSize+i*leafEntrySize:hdrSize+n*leafEntrySize])
	setLeafEntry(p, i, key, tid)
	setNumKeys(p, n+1)
}

func leafRemoveAt(p *storage.PageData, i int) {
	n := numKeys(p)
	copy(p[hdrSize+i*leafEntrySize:hdrSize+(n-1)*leafEntrySize],
		p[hdrSize+(i+1)*leafEntrySize:hdrSize+n*leafEntrySize])
	setNumKeys(p, n-1)
}

// leafLowerBound returns the first index whose key >= key.
func leafLowerBound(p *storage.PageData, key int64) int {
	lo, hi := 0, numKeys(p)
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(p, mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// --- internal entries ---

func intKey(p *storage.PageData, i int) int64 {
	return int64(binary.LittleEndian.Uint64(p[intEntries+i*intEntrySize:]))
}

func intChild(p *storage.PageData, i int) uint32 {
	if i == 0 {
		return binary.LittleEndian.Uint32(p[intFirstChild:])
	}
	return binary.LittleEndian.Uint32(p[intEntries+(i-1)*intEntrySize+8:])
}

func setIntChild(p *storage.PageData, i int, child uint32) {
	if i == 0 {
		binary.LittleEndian.PutUint32(p[intFirstChild:], child)
		return
	}
	binary.LittleEndian.PutUint32(p[intEntries+(i-1)*intEntrySize+8:], child)
}

func setIntKey(p *storage.PageData, i int, key int64) {
	binary.LittleEndian.PutUint64(p[intEntries+i*intEntrySize:], uint64(key))
}

// intInsertAt inserts (key, rightChild) at key position i.
func intInsertAt(p *storage.PageData, i int, key int64, rightChild uint32) {
	n := numKeys(p)
	copy(p[intEntries+(i+1)*intEntrySize:intEntries+(n+1)*intEntrySize],
		p[intEntries+i*intEntrySize:intEntries+n*intEntrySize])
	setIntKey(p, i, key)
	binary.LittleEndian.PutUint32(p[intEntries+i*intEntrySize+8:], rightChild)
	setNumKeys(p, n+1)
}

// intChildIndex returns the child slot to descend into for an insert of
// key: the first child whose separator is greater than key (equal keys go
// right).
func intChildIndex(p *storage.PageData, key int64) int {
	lo, hi := 0, numKeys(p)
	for lo < hi {
		mid := (lo + hi) / 2
		if intKey(p, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intChildIndexLower returns the child that may contain the first
// occurrence of key: the first child whose separator is >= key. Seeks use
// this so that duplicates that straddled a leaf split are not skipped.
func intChildIndexLower(p *storage.PageData, key int64) int {
	lo, hi := 0, numKeys(p)
	for lo < hi {
		mid := (lo + hi) / 2
		if intKey(p, mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// --- tree operations ---

// NumEntries returns the number of live entries in the tree.
func (t *BTree) NumEntries(pg storage.Pager) (int64, error) {
	id := storage.PageID{File: t.fid, Page: metaPage}
	meta, err := pg.Fetch(id, storage.RandHint)
	if err != nil {
		return 0, err
	}
	defer pg.Unpin(id, false)
	_, _, entries := getMeta(meta)
	return entries, nil
}

// Height returns the tree height (1 for a single leaf).
func (t *BTree) Height(pg storage.Pager) (int, error) {
	id := storage.PageID{File: t.fid, Page: metaPage}
	meta, err := pg.Fetch(id, storage.RandHint)
	if err != nil {
		return 0, err
	}
	defer pg.Unpin(id, false)
	_, h, _ := getMeta(meta)
	return int(h), nil
}

// splitResult describes a child split to the parent.
type splitResult struct {
	split   bool
	sepKey  int64  // first key of the new right node
	rightPg uint32 // page of the new right node
}

// Insert adds (key, tid) to the tree.
func (t *BTree) Insert(pg storage.Pager, key int64, tid storage.TID) error {
	metaID := storage.PageID{File: t.fid, Page: metaPage}
	meta, err := pg.Fetch(metaID, storage.RandHint)
	if err != nil {
		return err
	}
	root, height, entries := getMeta(meta)

	res, err := t.insertInto(pg, root, key, tid)
	if err != nil {
		pg.Unpin(metaID, false)
		return err
	}
	if res.split {
		// Grow a new root.
		newRootID, newRoot, err := pg.Allocate(t.fid)
		if err != nil {
			pg.Unpin(metaID, false)
			return err
		}
		initInternal(newRoot)
		setIntChild(newRoot, 0, root)
		intInsertAt(newRoot, 0, res.sepKey, res.rightPg)
		pg.Unpin(newRootID, true)
		root = newRootID.Page
		height++
	}
	setMeta(meta, root, height, entries+1)
	pg.Unpin(metaID, true)
	return nil
}

func (t *BTree) insertInto(pg storage.Pager, pageNo uint32, key int64, tid storage.TID) (splitResult, error) {
	id := storage.PageID{File: t.fid, Page: pageNo}
	p, err := pg.Fetch(id, storage.RandHint)
	if err != nil {
		return splitResult{}, err
	}
	if isLeaf(p) {
		res, err := t.insertLeaf(pg, id, p, key, tid)
		return res, err
	}
	ci := intChildIndex(p, key)
	child := intChild(p, ci)
	// Recurse without holding the parent data pointer invalid: the pin
	// keeps the frame stable.
	res, err := t.insertInto(pg, child, key, tid)
	if err != nil {
		pg.Unpin(id, false)
		return splitResult{}, err
	}
	if !res.split {
		pg.Unpin(id, false)
		return splitResult{}, nil
	}
	if numKeys(p) < MaxInternalKeys {
		intInsertAt(p, ci, res.sepKey, res.rightPg)
		pg.Unpin(id, true)
		return splitResult{}, nil
	}
	out, err := t.splitInternal(pg, p, ci, res.sepKey, res.rightPg)
	pg.Unpin(id, true)
	return out, err
}

func (t *BTree) insertLeaf(pg storage.Pager, id storage.PageID, p *storage.PageData, key int64, tid storage.TID) (splitResult, error) {
	pos := leafLowerBound(p, key)
	if numKeys(p) < MaxLeafEntries {
		leafInsertAt(p, pos, key, tid)
		pg.Unpin(id, true)
		return splitResult{}, nil
	}
	// Split: move the upper half to a new right sibling.
	rightID, right, err := pg.Allocate(t.fid)
	if err != nil {
		pg.Unpin(id, false)
		return splitResult{}, err
	}
	initLeaf(right)
	n := numKeys(p)
	mid := n / 2
	for i := mid; i < n; i++ {
		setLeafEntry(right, i-mid, leafKey(p, i), leafTID(p, i))
	}
	setNumKeys(right, n-mid)
	setNumKeys(p, mid)
	setNextLeaf(right, nextLeaf(p))
	setNextLeaf(p, rightID.Page)
	// Insert into the correct half.
	if pos <= mid && (pos < mid || key < leafKey(right, 0)) {
		leafInsertAt(p, pos, key, tid)
	} else {
		leafInsertAt(right, leafLowerBound(right, key), key, tid)
	}
	sep := leafKey(right, 0)
	pg.Unpin(rightID, true)
	pg.Unpin(id, true)
	return splitResult{split: true, sepKey: sep, rightPg: rightID.Page}, nil
}

// splitInternal splits a full internal node p while inserting (key,
// rightChild) at key index ci. Returns the split to propagate.
func (t *BTree) splitInternal(pg storage.Pager, p *storage.PageData, ci int, key int64, rightChild uint32) (splitResult, error) {
	n := numKeys(p)
	// Build the merged key/child sequence in memory (n+1 keys, n+2 children).
	keys := make([]int64, 0, n+1)
	children := make([]uint32, 0, n+2)
	children = append(children, intChild(p, 0))
	for i := 0; i < n; i++ {
		if i == ci {
			keys = append(keys, key)
			children = append(children, rightChild)
		}
		keys = append(keys, intKey(p, i))
		children = append(children, intChild(p, i+1))
	}
	if ci == n {
		keys = append(keys, key)
		children = append(children, rightChild)
	}
	mid := len(keys) / 2
	sep := keys[mid]

	rightID, right, err := pg.Allocate(t.fid)
	if err != nil {
		return splitResult{}, err
	}
	initInternal(right)
	// Left keeps keys[:mid], children[:mid+1].
	setNumKeys(p, 0)
	setIntChild(p, 0, children[0])
	for i := 0; i < mid; i++ {
		intInsertAt(p, i, keys[i], children[i+1])
	}
	// Right gets keys[mid+1:], children[mid+1:].
	setIntChild(right, 0, children[mid+1])
	for i := mid + 1; i < len(keys); i++ {
		intInsertAt(right, i-mid-1, keys[i], children[i+1])
	}
	pg.Unpin(rightID, true)
	return splitResult{split: true, sepKey: sep, rightPg: rightID.Page}, nil
}

// Search returns the TIDs of all entries with exactly the given key.
func (t *BTree) Search(pg storage.Pager, key int64) ([]storage.TID, error) {
	var out []storage.TID
	it, err := t.Seek(pg, key)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	for {
		k, tid, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok || k > key {
			break
		}
		out = append(out, tid)
	}
	return out, nil
}

// Delete removes one entry matching (key, tid). It returns false if no
// such entry exists. Underflowed nodes are not rebalanced (lazy deletion).
func (t *BTree) Delete(pg storage.Pager, key int64, tid storage.TID) (bool, error) {
	metaID := storage.PageID{File: t.fid, Page: metaPage}
	meta, err := pg.Fetch(metaID, storage.RandHint)
	if err != nil {
		return false, err
	}
	root, height, entries := getMeta(meta)
	leafPg, err := t.descendToLeaf(pg, root, key)
	if err != nil {
		pg.Unpin(metaID, false)
		return false, err
	}
	// Walk the leaf chain while the key matches (duplicates may span leaves).
	cur := leafPg
	for cur != invalidPage {
		id := storage.PageID{File: t.fid, Page: cur}
		p, err := pg.Fetch(id, storage.RandHint)
		if err != nil {
			pg.Unpin(metaID, false)
			return false, err
		}
		i := leafLowerBound(p, key)
		for ; i < numKeys(p) && leafKey(p, i) == key; i++ {
			if leafTID(p, i) == tid {
				leafRemoveAt(p, i)
				pg.Unpin(id, true)
				setMeta(meta, root, height, entries-1)
				pg.Unpin(metaID, true)
				return true, nil
			}
		}
		done := i < numKeys(p) // passed beyond key within this leaf
		next := nextLeaf(p)
		pg.Unpin(id, false)
		if done {
			break
		}
		cur = next
	}
	pg.Unpin(metaID, false)
	return false, nil
}

// maxDescentDepth bounds root-to-leaf walks; a deeper descent means the
// tree is corrupt (e.g. read through a stale cache without a checkpoint).
const maxDescentDepth = 64

// descendToLeaf returns the page number of the leaf that would contain key.
func (t *BTree) descendToLeaf(pg storage.Pager, root uint32, key int64) (uint32, error) {
	cur := root
	for depth := 0; depth < maxDescentDepth; depth++ {
		id := storage.PageID{File: t.fid, Page: cur}
		p, err := pg.Fetch(id, storage.RandHint)
		if err != nil {
			return 0, err
		}
		if isLeaf(p) {
			pg.Unpin(id, false)
			return cur, nil
		}
		if numKeys(p) == 0 {
			pg.Unpin(id, false)
			return 0, fmt.Errorf("index: corrupt internal node %d (no keys); was the database checkpointed?", cur)
		}
		next := intChild(p, intChildIndexLower(p, key))
		pg.Unpin(id, false)
		cur = next
	}
	return 0, fmt.Errorf("index: descent deeper than %d levels; tree is corrupt", maxDescentDepth)
}

// RangeIterator scans entries with keys in [lo, hi] in ascending order.
type RangeIterator struct {
	t      *BTree
	pg     storage.Pager
	hi     int64
	pageNo uint32
	idx    int
	p      *storage.PageData
	id     storage.PageID
	pinned bool
	done   bool
}

// Seek positions an iterator at the first entry with key >= lo; iterate
// with Next and stop when it reports done or the caller's bound is passed.
// The iterator itself enforces no upper bound; use SeekRange for [lo, hi].
func (t *BTree) Seek(pg storage.Pager, lo int64) (*RangeIterator, error) {
	return t.SeekRange(pg, lo, int64(^uint64(0)>>1))
}

// SeekRange returns an iterator over keys in [lo, hi].
func (t *BTree) SeekRange(pg storage.Pager, lo, hi int64) (*RangeIterator, error) {
	metaID := storage.PageID{File: t.fid, Page: metaPage}
	meta, err := pg.Fetch(metaID, storage.RandHint)
	if err != nil {
		return nil, err
	}
	root, _, _ := getMeta(meta)
	pg.Unpin(metaID, false)
	leaf, err := t.descendToLeaf(pg, root, lo)
	if err != nil {
		return nil, err
	}
	it := &RangeIterator{t: t, pg: pg, hi: hi, pageNo: leaf}
	if err := it.pin(); err != nil {
		return nil, err
	}
	it.idx = leafLowerBound(it.p, lo)
	return it, nil
}

func (it *RangeIterator) pin() error {
	it.id = storage.PageID{File: it.t.fid, Page: it.pageNo}
	p, err := it.pg.Fetch(it.id, storage.RandHint)
	if err != nil {
		return err
	}
	it.p = p
	it.pinned = true
	return nil
}

// Next returns the next entry in the range, or ok=false at the end.
func (it *RangeIterator) Next() (int64, storage.TID, bool, error) {
	for !it.done {
		if it.idx < numKeys(it.p) {
			k := leafKey(it.p, it.idx)
			if k > it.hi {
				it.Close()
				return 0, storage.TID{}, false, nil
			}
			tid := leafTID(it.p, it.idx)
			it.idx++
			return k, tid, true, nil
		}
		next := nextLeaf(it.p)
		it.pg.Unpin(it.id, false)
		it.pinned = false
		if next == invalidPage {
			it.done = true
			break
		}
		it.pageNo = next
		it.idx = 0
		if err := it.pin(); err != nil {
			it.done = true
			return 0, storage.TID{}, false, err
		}
	}
	return 0, storage.TID{}, false, nil
}

// Close releases the iterator's pinned page; safe to call repeatedly.
func (it *RangeIterator) Close() {
	if it.pinned {
		it.pg.Unpin(it.id, false)
		it.pinned = false
	}
	it.done = true
}
