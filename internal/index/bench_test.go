package index

import (
	"math/rand"
	"testing"

	"dbvirt/internal/storage"
)

func benchTree(b *testing.B, n int) (*BTree, *storage.DirectPager) {
	b.Helper()
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	tree, err := Create(pg, d.CreateFile())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		if err := tree.Insert(pg, rng.Int63n(int64(n)), tid(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	return tree, pg
}

func BenchmarkInsertRandom(b *testing.B) {
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	tree, _ := Create(pg, d.CreateFile())
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(pg, rng.Int63(), tid(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	tree, _ := Create(pg, d.CreateFile())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(pg, int64(i), tid(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointSearch(b *testing.B) {
	tree, pg := benchTree(b, 100000)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Search(pg, rng.Int63n(100000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeScan100(b *testing.B) {
	tree, pg := benchTree(b, 100000)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(100000 - 200)
		it, err := tree.SeekRange(pg, lo, lo+100)
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, _, ok, err := it.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
		it.Close()
	}
}
