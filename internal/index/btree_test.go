package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dbvirt/internal/storage"
)

func newTree(t *testing.T) (*BTree, *storage.DirectPager) {
	t.Helper()
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	tree, err := Create(pg, d.CreateFile())
	if err != nil {
		t.Fatal(err)
	}
	return tree, pg
}

func tid(n int64) storage.TID {
	return storage.TID{Page: uint32(n / 100), Slot: uint16(n % 100)}
}

func TestCreateRejectsNonEmptyFile(t *testing.T) {
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	f := d.CreateFile()
	if _, err := d.Allocate(f); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(pg, f); err == nil {
		t.Error("Create on non-empty file should fail")
	}
}

func TestEmptyTree(t *testing.T) {
	tree, pg := newTree(t)
	n, err := tree.NumEntries(pg)
	if err != nil || n != 0 {
		t.Fatalf("NumEntries = %d, %v", n, err)
	}
	h, err := tree.Height(pg)
	if err != nil || h != 1 {
		t.Fatalf("Height = %d, %v", h, err)
	}
	tids, err := tree.Search(pg, 5)
	if err != nil || len(tids) != 0 {
		t.Fatalf("Search on empty = %v, %v", tids, err)
	}
	if pg.PinnedCount() != 0 {
		t.Errorf("%d pages pinned", pg.PinnedCount())
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tree, pg := newTree(t)
	keys := []int64{5, 3, 8, 1, 9, 7, 2, 6, 4, 0}
	for _, k := range keys {
		if err := tree.Insert(pg, k, tid(k)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		got, err := tree.Search(pg, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != tid(k) {
			t.Errorf("Search(%d) = %v, want [%v]", k, got, tid(k))
		}
	}
	if got, _ := tree.Search(pg, 100); len(got) != 0 {
		t.Errorf("Search(100) = %v, want empty", got)
	}
	if n, _ := tree.NumEntries(pg); n != int64(len(keys)) {
		t.Errorf("NumEntries = %d, want %d", n, len(keys))
	}
	if pg.PinnedCount() != 0 {
		t.Errorf("%d pages pinned", pg.PinnedCount())
	}
}

func TestInsertManyCausesSplitsAndStaysSorted(t *testing.T) {
	tree, pg := newTree(t)
	const n = 3 * MaxLeafEntries // guarantees leaf and possibly internal splits
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		if err := tree.Insert(pg, int64(k), tid(int64(k))); err != nil {
			t.Fatal(err)
		}
	}
	if h, _ := tree.Height(pg); h < 2 {
		t.Errorf("height = %d, expected splits to grow the tree", h)
	}
	it, err := tree.SeekRange(pg, 0, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	count := 0
	for {
		k, v, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if k <= prev {
			t.Fatalf("keys out of order: %d after %d", k, prev)
		}
		if v != tid(k) {
			t.Fatalf("wrong TID for key %d", k)
		}
		prev = k
		count++
	}
	it.Close()
	if count != n {
		t.Errorf("range scan saw %d entries, want %d", count, n)
	}
	if pg.PinnedCount() != 0 {
		t.Errorf("%d pages pinned", pg.PinnedCount())
	}
}

func TestAscendingAndDescendingInserts(t *testing.T) {
	for name, gen := range map[string]func(i, n int) int64{
		"ascending":  func(i, n int) int64 { return int64(i) },
		"descending": func(i, n int) int64 { return int64(n - i) },
	} {
		t.Run(name, func(t *testing.T) {
			tree, pg := newTree(t)
			n := 2*MaxLeafEntries + 7
			for i := 0; i < n; i++ {
				if err := tree.Insert(pg, gen(i, n), tid(gen(i, n))); err != nil {
					t.Fatal(err)
				}
			}
			it, _ := tree.Seek(pg, -1)
			count := 0
			var prev int64 = -1 << 62
			for {
				k, _, ok, err := it.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				if k < prev {
					t.Fatalf("order violation")
				}
				prev = k
				count++
			}
			it.Close()
			if count != n {
				t.Errorf("saw %d, want %d", count, n)
			}
		})
	}
}

func TestDuplicateKeys(t *testing.T) {
	tree, pg := newTree(t)
	// Insert enough duplicates of one key to straddle leaf splits, with
	// other keys around them.
	const dups = MaxLeafEntries + 50
	for i := 0; i < dups; i++ {
		if err := tree.Insert(pg, 42, tid(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []int64{41, 43, 42, 40, 44} {
		if err := tree.Insert(pg, k, tid(1000+k)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tree.Search(pg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != dups+1 {
		t.Errorf("Search(42) found %d entries, want %d", len(got), dups+1)
	}
	if g, _ := tree.Search(pg, 41); len(g) != 1 {
		t.Errorf("Search(41) = %d entries, want 1", len(g))
	}
	if pg.PinnedCount() != 0 {
		t.Errorf("%d pages pinned", pg.PinnedCount())
	}
}

func TestRangeScanBounds(t *testing.T) {
	tree, pg := newTree(t)
	for k := int64(0); k < 100; k += 2 { // even keys 0..98
		tree.Insert(pg, k, tid(k))
	}
	collect := func(lo, hi int64) []int64 {
		it, err := tree.SeekRange(pg, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		var out []int64
		for {
			k, _, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			out = append(out, k)
		}
		return out
	}
	if got := collect(10, 20); len(got) != 6 || got[0] != 10 || got[5] != 20 {
		t.Errorf("range [10,20] = %v", got)
	}
	if got := collect(11, 19); len(got) != 4 || got[0] != 12 || got[3] != 18 {
		t.Errorf("range [11,19] = %v", got)
	}
	if got := collect(-5, -1); len(got) != 0 {
		t.Errorf("range below = %v", got)
	}
	if got := collect(200, 300); len(got) != 0 {
		t.Errorf("range above = %v", got)
	}
	if got := collect(98, 1000); len(got) != 1 || got[0] != 98 {
		t.Errorf("range at end = %v", got)
	}
	if pg.PinnedCount() != 0 {
		t.Errorf("%d pages pinned", pg.PinnedCount())
	}
}

func TestDelete(t *testing.T) {
	tree, pg := newTree(t)
	for k := int64(0); k < 50; k++ {
		tree.Insert(pg, k, tid(k))
	}
	ok, err := tree.Delete(pg, 25, tid(25))
	if err != nil || !ok {
		t.Fatalf("Delete(25) = %v, %v", ok, err)
	}
	if got, _ := tree.Search(pg, 25); len(got) != 0 {
		t.Error("deleted key still found")
	}
	if n, _ := tree.NumEntries(pg); n != 49 {
		t.Errorf("NumEntries = %d, want 49", n)
	}
	// Deleting again fails.
	ok, err = tree.Delete(pg, 25, tid(25))
	if err != nil || ok {
		t.Errorf("second Delete = %v, %v; want false", ok, err)
	}
	// Deleting a present key with wrong TID fails.
	ok, _ = tree.Delete(pg, 30, tid(999))
	if ok {
		t.Error("Delete with wrong TID should fail")
	}
	// Neighbors survive.
	if got, _ := tree.Search(pg, 24); len(got) != 1 {
		t.Error("neighbor lost")
	}
	if pg.PinnedCount() != 0 {
		t.Errorf("%d pages pinned", pg.PinnedCount())
	}
}

func TestDeleteAmongDuplicates(t *testing.T) {
	tree, pg := newTree(t)
	const dups = MaxLeafEntries + 10
	for i := 0; i < dups; i++ {
		tree.Insert(pg, 7, tid(int64(i)))
	}
	// Delete a specific duplicate that lives past the first leaf.
	target := tid(int64(dups - 3))
	ok, err := tree.Delete(pg, 7, target)
	if err != nil || !ok {
		t.Fatalf("Delete dup = %v, %v", ok, err)
	}
	got, _ := tree.Search(pg, 7)
	if len(got) != dups-1 {
		t.Errorf("found %d, want %d", len(got), dups-1)
	}
	for _, g := range got {
		if g == target {
			t.Error("deleted TID still present")
		}
	}
}

func TestNegativeKeys(t *testing.T) {
	tree, pg := newTree(t)
	keys := []int64{-100, -1, 0, 1, 100, -50}
	for _, k := range keys {
		tree.Insert(pg, k, tid(k&0xFFF))
	}
	it, _ := tree.SeekRange(pg, -100, 100)
	var got []int64
	for {
		k, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, k)
	}
	it.Close()
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Property: tree contents always equal a reference multimap.
func TestTreeMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, pgd := func() (*BTree, *storage.DirectPager) {
			d := storage.NewDiskManager()
			pg := storage.NewDirectPager(d)
			tr, _ := Create(pg, d.CreateFile())
			return tr, pg
		}()
		ref := map[int64][]storage.TID{}
		for op := 0; op < 400; op++ {
			k := int64(rng.Intn(60))
			if rng.Intn(4) != 0 { // 75% inserts
				v := tid(int64(op))
				if tree.Insert(pgd, k, v) != nil {
					return false
				}
				ref[k] = append(ref[k], v)
			} else if len(ref[k]) > 0 {
				v := ref[k][0]
				ok, err := tree.Delete(pgd, k, v)
				if err != nil || !ok {
					return false
				}
				ref[k] = ref[k][1:]
			}
		}
		for k, want := range ref {
			got, err := tree.Search(pgd, k)
			if err != nil || len(got) != len(want) {
				return false
			}
		}
		return pgd.PinnedCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tree, pg := newTree(t)
	n := MaxLeafEntries*MaxInternalKeys/4 + 1 // enough for height 3
	if n > 300000 {
		n = 300000
	}
	for i := 0; i < n; i++ {
		if err := tree.Insert(pg, int64(i), tid(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	h, _ := tree.Height(pg)
	if h < 2 || h > 4 {
		t.Errorf("height = %d for %d entries, expected 2-4", h, n)
	}
	cnt, _ := tree.NumEntries(pg)
	if cnt != int64(n) {
		t.Errorf("NumEntries = %d, want %d", cnt, n)
	}
}

func TestCheckInvariantsOnRandomWorkload(t *testing.T) {
	tree, pg := newTree(t)
	rng := rand.New(rand.NewSource(77))
	// Duplicate-heavy inserts interleaved with deletes, verifying the
	// full structural invariants at checkpoints.
	live := map[int64][]storage.TID{}
	for i := 0; i < 5000; i++ {
		k := int64(rng.Intn(300))
		if rng.Intn(5) != 0 {
			v := tid(int64(i))
			if err := tree.Insert(pg, k, v); err != nil {
				t.Fatal(err)
			}
			live[k] = append(live[k], v)
		} else if vs := live[k]; len(vs) > 0 {
			ok, err := tree.Delete(pg, k, vs[len(vs)-1])
			if err != nil || !ok {
				t.Fatalf("delete: %v %v", ok, err)
			}
			live[k] = vs[:len(vs)-1]
		}
		if i%500 == 0 {
			if err := tree.CheckInvariants(pg); err != nil {
				t.Fatalf("after %d ops: %v", i, err)
			}
		}
	}
	if err := tree.CheckInvariants(pg); err != nil {
		t.Fatal(err)
	}
	if pg.PinnedCount() != 0 {
		t.Errorf("%d pages pinned after invariant check", pg.PinnedCount())
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	d := storage.NewDiskManager()
	pg := storage.NewDirectPager(d)
	tree, err := Create(pg, d.CreateFile())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*MaxLeafEntries; i++ {
		if err := tree.Insert(pg, int64(i), tid(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt a page: zero out page 2 (a node page) on disk.
	var zero storage.PageData
	if err := d.WritePage(storage.PageID{File: tree.FileID(), Page: 2}, &zero); err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(pg); err == nil {
		t.Error("invariant checker should detect a zeroed node")
	}
}
