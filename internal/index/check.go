package index

import (
	"fmt"

	"dbvirt/internal/storage"
)

// CheckInvariants walks the whole tree and verifies its structural
// invariants: no page is reachable twice (no cycles, no sharing), keys
// within every node are sorted, children lie within their separator
// bounds, all leaves are at the same depth, the leaf sibling chain visits
// exactly the leaves in key order, and the meta entry count matches the
// number of leaf entries. It is used by tests and by debugging tools.
func (t *BTree) CheckInvariants(pg storage.Pager) error {
	metaID := storage.PageID{File: t.fid, Page: metaPage}
	meta, err := pg.Fetch(metaID, storage.RandHint)
	if err != nil {
		return err
	}
	root, height, entries := getMeta(meta)
	pg.Unpin(metaID, false)

	seen := map[uint32]bool{metaPage: true}
	var leaves []uint32
	var leafEntries int64

	var walk func(pageNo uint32, depth int, lo, hi *int64) error
	walk = func(pageNo uint32, depth int, lo, hi *int64) error {
		if seen[pageNo] {
			return fmt.Errorf("index: page %d reachable twice (cycle or sharing)", pageNo)
		}
		seen[pageNo] = true
		id := storage.PageID{File: t.fid, Page: pageNo}
		p, err := pg.Fetch(id, storage.RandHint)
		if err != nil {
			return err
		}
		defer pg.Unpin(id, false)
		n := numKeys(p)
		if isLeaf(p) {
			if depth != int(height) {
				return fmt.Errorf("index: leaf %d at depth %d, height is %d", pageNo, depth, height)
			}
			for i := 0; i < n; i++ {
				k := leafKey(p, i)
				if i > 0 && leafKey(p, i-1) > k {
					return fmt.Errorf("index: leaf %d keys out of order at %d", pageNo, i)
				}
				if lo != nil && k < *lo {
					return fmt.Errorf("index: leaf %d key %d below bound %d", pageNo, k, *lo)
				}
				if hi != nil && k > *hi {
					return fmt.Errorf("index: leaf %d key %d above bound %d", pageNo, k, *hi)
				}
			}
			leaves = append(leaves, pageNo)
			leafEntries += int64(n)
			return nil
		}
		if n < 1 {
			return fmt.Errorf("index: internal node %d has no keys", pageNo)
		}
		for i := 0; i < n; i++ {
			if i > 0 && intKey(p, i-1) > intKey(p, i) {
				return fmt.Errorf("index: internal %d separators out of order at %d", pageNo, i)
			}
		}
		for i := 0; i <= n; i++ {
			childLo, childHi := lo, hi
			if i > 0 {
				k := intKey(p, i-1)
				childLo = &k
			}
			if i < n {
				k := intKey(p, i)
				childHi = &k
			}
			if err := walk(intChild(p, i), depth+1, childLo, childHi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, 1, nil, nil); err != nil {
		return err
	}
	if leafEntries != entries {
		return fmt.Errorf("index: meta says %d entries, leaves hold %d", entries, leafEntries)
	}

	// Leaf chain must visit exactly the reachable leaves, left to right.
	chainPos := map[uint32]int{}
	for i, l := range leaves {
		chainPos[l] = i
	}
	cur := leaves[0]
	count := 0
	prevLast := int64(-1 << 62)
	for cur != invalidPage {
		pos, ok := chainPos[cur]
		if !ok {
			return fmt.Errorf("index: leaf chain reaches unreachable page %d", cur)
		}
		if pos != count {
			return fmt.Errorf("index: leaf chain order broken at page %d (pos %d, want %d)", cur, pos, count)
		}
		id := storage.PageID{File: t.fid, Page: cur}
		p, err := pg.Fetch(id, storage.RandHint)
		if err != nil {
			return err
		}
		n := numKeys(p)
		if n > 0 {
			if leafKey(p, 0) < prevLast {
				pg.Unpin(id, false)
				return fmt.Errorf("index: leaf chain keys regress at page %d", cur)
			}
			prevLast = leafKey(p, n-1)
		}
		next := nextLeaf(p)
		pg.Unpin(id, false)
		cur = next
		count++
		if count > len(leaves) {
			return fmt.Errorf("index: leaf chain longer than leaf count (cycle)")
		}
	}
	if count != len(leaves) {
		return fmt.Errorf("index: leaf chain visits %d of %d leaves", count, len(leaves))
	}
	return nil
}
