package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindString: "TEXT", KindBool: "BOOL", KindDate: "DATE", Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", uint8(k), got, want)
		}
	}
}

func TestConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-42), "-42"},
		{NewFloat(2.5), "2.5"},
		{NewString("abc"), "abc"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{MustDate("1995-03-15"), "1995-03-15"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := NewInt(7).AsFloat(); !ok || f != 7 {
		t.Errorf("int AsFloat = %v %v", f, ok)
	}
	if f, ok := NewFloat(1.5).AsFloat(); !ok || f != 1.5 {
		t.Errorf("float AsFloat = %v %v", f, ok)
	}
	if f, ok := NewBool(true).AsFloat(); !ok || f != 1 {
		t.Errorf("bool AsFloat = %v %v", f, ok)
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("string AsFloat should fail")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("null AsFloat should fail")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{NewInt(1), NewInt(2), -1, true},
		{NewInt(2), NewInt(2), 0, true},
		{NewInt(3), NewInt(2), 1, true},
		{NewInt(1), NewFloat(1.5), -1, true},
		{NewFloat(2.5), NewInt(2), 1, true},
		{NewFloat(2), NewInt(2), 0, true},
		{NewString("a"), NewString("b"), -1, true},
		{NewString("b"), NewString("b"), 0, true},
		{NewBool(false), NewBool(true), -1, true},
		{MustDate("1995-01-01"), MustDate("1996-01-01"), -1, true},
		{MustDate("1995-01-01"), NewInt(9131), 0, true}, // dates are numeric
		{Null, NewInt(1), 0, false},
		{NewInt(1), Null, 0, false},
		{NewString("a"), NewInt(1), 0, false},
	}
	for _, c := range cases {
		cmp, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && sign(cmp) != c.cmp) {
			t.Errorf("Compare(%v, %v) = %d,%v want %d,%v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(NewInt(3), NewFloat(3)) {
		t.Error("3 == 3.0 expected")
	}
	if Equal(Null, Null) {
		t.Error("NULL must not equal NULL")
	}
	if Equal(NewString("a"), NewString("b")) {
		t.Error("a != b")
	}
}

func TestCompatible(t *testing.T) {
	if !Compatible(KindInt, KindFloat) || !Compatible(KindDate, KindInt) {
		t.Error("numeric kinds should be compatible")
	}
	if !Compatible(KindNull, KindString) {
		t.Error("null compatible with anything")
	}
	if Compatible(KindString, KindInt) {
		t.Error("string and int are incompatible")
	}
}

func TestToSortKeyOrderPreserving(t *testing.T) {
	a, _ := NewString("apple").ToSortKey()
	b, _ := NewString("banana").ToSortKey()
	if a >= b {
		t.Errorf("sort key order violated: %g >= %g", a, b)
	}
	n, ok := NewInt(12).ToSortKey()
	if !ok || n != 12 {
		t.Errorf("int sort key = %g", n)
	}
	if _, ok := Null.ToSortKey(); ok {
		t.Error("null has no sort key")
	}
}

func TestDateRoundTrip(t *testing.T) {
	for _, s := range []string{
		"1970-01-01", "1992-02-29", "1995-06-17", "1998-12-31",
		"2000-02-29", "2001-03-01", "1900-03-01", "2026-07-06",
	} {
		v := MustDate(s)
		if got := v.String(); got != s {
			t.Errorf("roundtrip %q -> %q", s, got)
		}
	}
	if MustDate("1970-01-01").I != 0 {
		t.Errorf("epoch should be day 0, got %d", MustDate("1970-01-01").I)
	}
	if MustDate("1970-01-02").I != 1 {
		t.Errorf("1970-01-02 should be day 1")
	}
	if MustDate("1971-01-01").I != 365 {
		t.Errorf("1971-01-01 should be day 365, got %d", MustDate("1971-01-01").I)
	}
}

func TestParseDateErrors(t *testing.T) {
	for _, s := range []string{"", "1995", "1995-13-01", "1995-02-29", "1995-00-10", "1995-01-32", "abcd-ef-gh"} {
		if _, err := ParseDate(s); err == nil {
			t.Errorf("ParseDate(%q) should fail", s)
		}
	}
}

func TestDateRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		days := int64(raw%80000) - 20000 // ~1915 to ~2189
		y, m, d := FromDays(days)
		return ToDays(y, m, d) == days && m >= 1 && m <= 12 && d >= 1 && d <= 31
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_l_o", true},
		{"hello", "", false},
		{"", "", true},
		{"", "%", true},
		{"hello", "%x%", false},
		{"special packages requests", "%special%requests%", true},
		{"special packages", "%special%requests%", false},
		{"aaa", "a%a", true},
		{"ab", "a%b%c", false},
		{"abc", "___", true},
		{"abc", "____", false},
		{"mississippi", "%issip%", true},
		{"mississippi", "%issib%", false},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestMatchLikeProperty(t *testing.T) {
	// Every string matches "%"+s[i:j]+"%" for any substring.
	f := func(s string, i, j uint8) bool {
		if len(s) == 0 {
			return true
		}
		a := int(i) % len(s)
		b := a + int(j)%(len(s)-a+1)
		sub := s[a:b]
		if strings.ContainsAny(sub, "%_") {
			return true // wildcard bytes in the needle change semantics
		}
		return MatchLike(s, "%"+sub+"%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLikeCostOpsGrowsWithLength(t *testing.T) {
	if LikeCostOps(100) <= LikeCostOps(10) {
		t.Error("cost should grow with string length")
	}
	if LikeCostOps(0) <= 0 {
		t.Error("cost should be positive even for empty strings")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
