package types

// Vec is a column vector: the values of one column across the rows of a
// batch. Two representations are supported:
//
//   - Typed: Kind names a uniform non-null kind and the matching payload
//     slice (I for Int/Date/Bool, F for Float, S for String) holds one
//     entry per row; Null, when non-nil, flags NULL rows (their payload
//     entry is the zero value). Columnar page decoding produces this form.
//   - Boxed: Any holds one Value per row. Operator output vectors use this
//     form; it handles mixed kinds (e.g. expression results).
//
// The zero Vec is an empty boxed vector. A Vec must not be mutated once
// shared: scan batches alias cached column blocks.
type Vec struct {
	Kind Kind
	Null []bool    // non-nil when the column has NULLs (typed form)
	I    []int64   // KindInt, KindDate, KindBool payloads
	F    []float64 // KindFloat payloads
	S    []string  // KindString payloads
	Any  []Value   // boxed form; takes precedence when non-nil
}

// Len returns the number of rows in the vector.
func (v *Vec) Len() int {
	if v.Any != nil {
		return len(v.Any)
	}
	switch v.Kind {
	case KindFloat:
		return len(v.F)
	case KindString:
		return len(v.S)
	case KindNull:
		return len(v.Null)
	default:
		return len(v.I)
	}
}

// Get materializes row i of the vector as a Value.
func (v *Vec) Get(i int) Value {
	if v.Any != nil {
		return v.Any[i]
	}
	if v.Null != nil && v.Null[i] {
		return Null
	}
	switch v.Kind {
	case KindFloat:
		return Value{Kind: KindFloat, F: v.F[i]}
	case KindString:
		return Value{Kind: KindString, S: v.S[i]}
	case KindNull:
		return Null
	default:
		return Value{Kind: v.Kind, I: v.I[i]}
	}
}

// Append adds one value to a boxed vector. It must not be used on typed
// vectors (those are built whole by the page decoder).
func (v *Vec) Append(val Value) {
	v.Any = append(v.Any, val)
}

// Reset truncates a boxed vector to zero rows, keeping capacity.
func (v *Vec) Reset() {
	v.Any = v.Any[:0]
	v.Kind = KindNull
	v.Null = nil
	v.I = nil
	v.F = nil
	v.S = nil
}
