// Package types defines the value model of the database engine: column
// kinds, runtime values, comparisons, and the date representation shared by
// the parser, catalog, optimizer, and executor.
package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the data types supported by the engine.
type Kind uint8

// Supported column kinds. Date is stored as days since 1970-01-01.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOL"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Numeric reports whether values of this kind participate in arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat || k == KindDate }

// Value is a single runtime value. The zero Value is NULL.
type Value struct {
	Kind Kind
	I    int64   // KindInt, KindDate (days since epoch), KindBool (0/1)
	F    float64 // KindFloat
	S    string  // KindString
}

// Null is the NULL value.
var Null = Value{Kind: KindNull}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{Kind: KindInt, I: i} }

// NewFloat returns a floating-point value.
func NewFloat(f float64) Value { return Value{Kind: KindFloat, F: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{Kind: KindString, S: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// NewDate returns a date value from days since 1970-01-01.
func NewDate(days int64) Value { return Value{Kind: KindDate, I: days} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Bool returns the boolean payload; valid only for KindBool.
func (v Value) Bool() bool { return v.I != 0 }

// AsFloat converts any numeric value (int, float, date, bool) to float64.
// It is the common domain used by statistics and selectivity estimation.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt, KindDate, KindBool:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// String formats the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		y, m, d := FromDays(v.I)
		return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
	default:
		return fmt.Sprintf("value(kind=%d)", v.Kind)
	}
}

// Compatible reports whether two kinds can be compared with each other.
func Compatible(a, b Kind) bool {
	if a == b || a == KindNull || b == KindNull {
		return true
	}
	return a.Numeric() && b.Numeric()
}

// Compare orders two non-NULL values of compatible kinds: -1 if a < b,
// 0 if equal, +1 if a > b. Comparing a NULL or incompatible kinds returns
// ok=false; SQL three-valued logic is handled by the caller.
func Compare(a, b Value) (cmp int, ok bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	switch {
	case a.Kind == KindString && b.Kind == KindString:
		return strings.Compare(a.S, b.S), true
	case a.Kind == KindBool && b.Kind == KindBool:
		return int(a.I - b.I), true
	case a.Kind.Numeric() && b.Kind.Numeric():
		if a.Kind == KindFloat || b.Kind == KindFloat {
			af, _ := a.AsFloat()
			bf, _ := b.AsFloat()
			switch {
			case af < bf:
				return -1, true
			case af > bf:
				return 1, true
			default:
				return 0, true
			}
		}
		switch {
		case a.I < b.I:
			return -1, true
		case a.I > b.I:
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

// Equal reports whether two values are equal under Compare semantics.
// NULL is not equal to anything, including NULL.
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// ToSortKey maps a value onto the real line for histogram construction and
// selectivity interpolation, mirroring PostgreSQL's convert_to_scalar.
// Strings map via their first eight bytes; non-representable values report
// ok=false.
func (v Value) ToSortKey() (float64, bool) {
	if f, ok := v.AsFloat(); ok {
		return f, true
	}
	if v.Kind == KindString {
		var key float64
		scale := 1.0
		for i := 0; i < 8; i++ {
			scale /= 256
			var b byte
			if i < len(v.S) {
				b = v.S[i]
			}
			key += float64(b) * scale
		}
		return key, true
	}
	return 0, false
}

// daysBeforeMonth[m] is the number of days before month m (1-based) in a
// non-leap year.
var daysBeforeMonth = [13]int64{0, 0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334}

func isLeap(y int64) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

// ToDays converts a civil date to days since 1970-01-01. It is a pure
// function with no time-zone dependence (unlike time.Time).
func ToDays(year, month, day int) int64 {
	y := int64(year)
	// Days from 0001-01-01 to year-01-01 (proleptic Gregorian).
	yd := 365*(y-1) + (y-1)/4 - (y-1)/100 + (y-1)/400
	d := yd + daysBeforeMonth[month] + int64(day) - 1
	if month > 2 && isLeap(y) {
		d++
	}
	const epochDays = 719162 // days from 0001-01-01 to 1970-01-01
	return d - epochDays
}

// FromDays converts days since 1970-01-01 back to a civil date.
func FromDays(days int64) (year, month, day int) {
	d := days + 719162 // days since 0001-01-01
	// Estimate the year, then correct.
	y := d/365 + 1
	for {
		yd := 365*(y-1) + (y-1)/4 - (y-1)/100 + (y-1)/400
		if yd > d {
			y--
			continue
		}
		rem := d - yd
		leapAdd := int64(0)
		if isLeap(y) {
			leapAdd = 1
		}
		if rem >= 365+leapAdd {
			y++
			continue
		}
		m := 12
		for m > 1 {
			start := daysBeforeMonth[m]
			if m > 2 {
				start += leapAdd
			}
			if rem >= start {
				break
			}
			m--
		}
		start := daysBeforeMonth[m]
		if m > 2 {
			start += leapAdd
		}
		return int(y), m, int(rem - start + 1)
	}
}

// ParseDate parses "YYYY-MM-DD" into a date value.
func ParseDate(s string) (Value, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return Null, fmt.Errorf("types: invalid date %q", s)
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || y < 1 || m < 1 || m > 12 || d < 1 || d > 31 {
		return Null, fmt.Errorf("types: invalid date %q", s)
	}
	maxDay := []int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}[m-1]
	if m == 2 && isLeap(int64(y)) {
		maxDay = 29
	}
	if d > maxDay {
		return Null, fmt.Errorf("types: invalid date %q", s)
	}
	return NewDate(ToDays(y, m, d)), nil
}

// MustDate parses a date literal or panics; for tests and generators.
func MustDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// MatchLike implements SQL LIKE matching with '%' (any run) and '_' (any
// single byte) wildcards, by iterative backtracking. The cost of a call is
// O(len(s) * wildcards), which is what makes LIKE-heavy queries CPU-bound.
func MatchLike(s, pattern string) bool {
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// LikeCostOps estimates the CPU operations one LIKE evaluation over a
// string of length n costs in the simulator; shared by the executor
// (charging) and nothing else, but kept here next to MatchLike.
func LikeCostOps(n int) float64 { return 20 + 8*float64(n) }
