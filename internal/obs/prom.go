package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format (version
// 0.0.4) over the metrics registry, plus a strict parser used by tests
// and the CI e2e job to prove the exposition stays valid. Counters map
// to counter families, gauges to gauge families, and histograms (and
// sliding-window snapshots) to summary families with quantile labels —
// all emitted in sorted name order so scrapes are deterministic.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry metric name into a legal Prometheus
// metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (the registry's namespace
// separator) and any other illegal byte become underscores.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			c = '_'
		}
		b.WriteByte(c)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promValue formats a sample value; Prometheus spells the specials
// "+Inf", "-Inf", and "NaN".
func promValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// writeSummary emits one histogram snapshot as a Prometheus summary
// family.
func writeSummary(w io.Writer, name string, s HistogramSnapshot) error {
	_, err := fmt.Fprintf(w, "# TYPE %s summary\n%s{quantile=\"0.5\"} %s\n%s{quantile=\"0.95\"} %s\n%s{quantile=\"0.99\"} %s\n%s_sum %s\n%s_count %d\n",
		name,
		name, promValue(s.P50),
		name, promValue(s.P95),
		name, promValue(s.P99),
		name, promValue(s.Sum),
		name, s.Count)
	return err
}

// WritePrometheus writes the registry's counters, gauges, histograms,
// and sliding-window snapshots in the Prometheus text exposition format,
// sorted by metric name within each kind. Extras (opaque JSON callbacks)
// are omitted: they have no scalar representation.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", pn, pn, promValue(s.Gauges[n])); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := writeSummary(bw, promName(n), s.Histograms[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Windows {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := writeSummary(bw, promName(n), s.Windows[n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// PromSample is one parsed exposition sample: the metric name, its
// (possibly empty) raw label block, and the value.
type PromSample struct {
	Name   string
	Labels string
	Value  float64
}

// ParsePrometheusText is a strict parser for the text exposition format,
// used to validate /metrics output in tests and CI: it checks every line
// against the grammar (comment, TYPE/HELP declaration, or sample), that
// metric names are legal, that TYPE declarations name a known type and
// precede their family's samples, and that every value parses. It
// returns the samples keyed by name+labels.
func ParsePrometheusText(r io.Reader) (map[string]PromSample, error) {
	samples := make(map[string]PromSample)
	typed := make(map[string]string)
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				continue // bare comment
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				if !validPromName(fields[2]) {
					return nil, fmt.Errorf("line %d: illegal metric name %q", lineNo, fields[2])
				}
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				if _, dup := typed[fields[2]]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				if seen[fields[2]] {
					return nil, fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, fields[2])
				}
				typed[fields[2]] = fields[3]
			case "HELP":
				if len(fields) < 3 {
					return nil, fmt.Errorf("line %d: malformed HELP comment %q", lineNo, line)
				}
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		seen[baseFamily(name)] = true
		key := name + labels
		if _, dup := samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %q", lineNo, key)
		}
		samples[key] = PromSample{Name: name, Labels: labels, Value: value}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no samples in exposition")
	}
	return samples, nil
}

// baseFamily strips the _sum/_count suffixes summary samples carry.
func baseFamily(name string) string {
	name = strings.TrimSuffix(name, "_sum")
	return strings.TrimSuffix(name, "_count")
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// parsePromSample splits `name[{labels}] value [timestamp]`.
func parsePromSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated label block in %q", line)
		}
		labels = rest[i : j+1]
		if err := validateLabels(labels); err != nil {
			return "", "", 0, fmt.Errorf("%w in %q", err, line)
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validPromName(name) {
		return "", "", 0, fmt.Errorf("illegal metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	v, perr := parsePromValue(fields[0])
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %w", fields[0], perr)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", "", 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, v, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateLabels checks a raw {k="v",...} block: legal label names and
// properly quoted values.
func validateLabels(block string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return nil
	}
	for len(inner) > 0 {
		eq := strings.IndexByte(inner, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair")
		}
		lname := strings.TrimSpace(inner[:eq])
		if !validPromName(lname) {
			return fmt.Errorf("illegal label name %q", lname)
		}
		rest := inner[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value")
		}
		inner = strings.TrimPrefix(strings.TrimSpace(rest[end+1:]), ",")
		inner = strings.TrimSpace(inner)
	}
	return nil
}
