package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the trace golden file")

// fakeClock ticks a fixed amount per call, making trace output
// deterministic.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

// TestChromeTraceGolden builds a small span hierarchy under a
// deterministic clock and compares the exported Chrome trace JSON
// against the checked-in golden file.
func TestChromeTraceGolden(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_000_000, 0).UTC(), step: time.Millisecond}
	tr := NewTracerWithClock(clock.now)

	root := tr.Start("vdtune")
	root.SetArg("algo", "dp")
	cal := root.Child("calibrate")
	pt := cal.Child("calibrate.point")
	pt.SetArg("cpu", 0.25)
	pt.End()
	cal.End()
	solve := root.Child("solve.dp")
	worker := solve.Fork("worker")
	worker.End()
	solve.SetArg("evaluations", 12)
	solve.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON differs from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Independently of the exact bytes, the document must be loadable as
	// a Chrome trace: a traceEvents array of complete events.
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   *int64 `json:"ts"`
			Dur  *int64 `json:"dur"`
			PID  int    `json:"pid"`
			TID  int64  `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d trace events, want 5", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.TS == nil || ev.Dur == nil || ev.PID != 1 || ev.TID == 0 {
			t.Errorf("malformed event %+v", ev)
		}
	}
	// Spans end in completion order; the root spans the whole run.
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last.Name != "vdtune" {
		t.Errorf("last event = %q, want root span", last.Name)
	}
	for _, ev := range doc.TraceEvents[:len(doc.TraceEvents)-1] {
		if *ev.TS < *last.TS || *ev.TS+*ev.Dur > *last.TS+*last.Dur {
			t.Errorf("span %q [%d, %d] escapes root [%d, %d]",
				ev.Name, *ev.TS, *ev.TS+*ev.Dur, *last.TS, *last.TS+*last.Dur)
		}
	}
}
