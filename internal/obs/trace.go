package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects hierarchical spans and exports them in the Chrome
// trace_event format (load the file at chrome://tracing or
// https://ui.perfetto.dev). It is safe for concurrent use: spans from
// different goroutines land on different track IDs, so parallel
// calibration workers render as parallel rows.
type Tracer struct {
	now   func() time.Time
	epoch time.Time

	mu      sync.Mutex
	events  []traceEvent
	nextTID atomic.Int64
}

// traceEvent is one complete ("ph":"X") Chrome trace event.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`  // microseconds since the tracer epoch
	Dur  int64          `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer creates a tracer over the real clock.
func NewTracer() *Tracer { return NewTracerWithClock(time.Now) }

// NewTracerWithClock creates a tracer with an injectable clock, so tests
// can produce deterministic trace files.
func NewTracerWithClock(now func() time.Time) *Tracer {
	return &Tracer{now: now, epoch: now()}
}

// Span is one in-flight trace interval. The nil span is a valid no-op,
// so code instruments unconditionally and pays one branch when tracing
// is off. A span is owned by one goroutine; children started with Fork
// may end on other goroutines.
type Span struct {
	tr    *Tracer
	name  string
	tid   int64
	start time.Time
	args  map[string]any
	done  bool
}

// Start begins a root span on a fresh track.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, tid: t.nextTID.Add(1), start: t.now()}
}

// Child begins a nested span on the same track as s; it renders stacked
// under s because its interval nests inside s's.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{tr: s.tr, name: name, tid: s.tid, start: s.tr.now()}
}

// Fork begins a child span on a fresh track, for work handed to another
// goroutine (a calibration worker, a solver worker).
func (s *Span) Fork(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{tr: s.tr, name: name, tid: s.tr.nextTID.Add(1), start: s.tr.now()}
}

// SetArg attaches a key/value argument shown in the trace viewer.
func (s *Span) SetArg(key string, v any) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any)
	}
	s.args[key] = v
}

// End finishes the span, recording it with the tracer. End is
// idempotent.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	t := s.tr
	end := t.now()
	ev := traceEvent{
		Name: s.name,
		Ph:   "X",
		TS:   s.start.Sub(t.epoch).Microseconds(),
		Dur:  end.Sub(s.start).Microseconds(),
		PID:  1,
		TID:  s.tid,
		Args: s.args,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// chromeTrace is the container object the Chrome trace viewer expects.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeJSON writes all finished spans as a Chrome trace_event
// JSON document.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeFile dumps the trace to the given path.
func (t *Tracer) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
