package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentMetrics hammers one counter, one gauge, and one
// histogram from many goroutines; under -race this is the data-race
// stress test for the whole registry, and the totals check that no
// update is lost.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("test.counter")
			h := r.Histogram("test.hist")
			ga := r.Gauge("test.gauge")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(float64(i%100) + 0.5)
				ga.Set(float64(g))
			}
		}(g)
	}
	wg.Wait()

	if got := r.Counter("test.counter").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	h := r.Histogram("test.hist")
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	s := h.snapshot()
	if s.Min != 0.5 {
		t.Errorf("histogram min = %g, want 0.5", s.Min)
	}
	if s.Max != 99.5 {
		t.Errorf("histogram max = %g, want 99.5", s.Max)
	}
	// Σ_{i=0..99}(i+0.5) = 5000 per 100 observations.
	wantSum := float64(goroutines*perG) / 100 * 5000
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Errorf("histogram sum = %g, want %g", s.Sum, wantSum)
	}
	g := r.Gauge("test.gauge").Value()
	if g < 0 || g >= goroutines {
		t.Errorf("gauge = %g, want in [0, %d)", g, goroutines)
	}
}

// TestConcurrentSpans creates spans from many goroutines; under -race
// this exercises the tracer's append path and TID allocation.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := root.Fork("work")
				sp.SetArg("worker", w)
				child := sp.Child("inner")
				child.End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got, want := tr.Len(), workers*50*2+1; got != want {
		t.Fatalf("tracer recorded %d events, want %d", got, want)
	}
}

// TestNilTelemetryIsNoop checks the disabled path: every method of a nil
// telemetry, span, counter, histogram, and logger must be safe.
func TestNilTelemetryIsNoop(t *testing.T) {
	var tel *Telemetry
	sp := tel.Span("x")
	sp.SetArg("k", 1)
	sp.Child("c").End()
	sp.Fork("f").End()
	sp.End()
	tel.Debug("d")
	tel.Info("i", "k", 1)
	tel.Warn("w")
	tel.Error("e")
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram has observations")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var l *Logger
	l.Info("nope")
	if tel.Registry() != Global {
		t.Fatal("nil telemetry should expose the Global registry")
	}
}

// TestHistogramQuantiles feeds a known distribution and checks the
// estimated quantiles stay within the documented factor-of-2 bucket
// error (they are much tighter in practice).
func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	// 1..1000 milliseconds, uniformly.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	checks := []struct {
		q, want float64
	}{
		{0.50, 0.500},
		{0.95, 0.950},
		{0.99, 0.990},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("p%.0f = %g, want within [%g, %g]", c.q*100, got, c.want/2, c.want*2)
		}
	}
	if h.Quantile(0) <= 0 {
		t.Errorf("p0 = %g, want > 0", h.Quantile(0))
	}
	if got := h.Quantile(1); math.Abs(got-1.0) > 1.0 {
		t.Errorf("p100 = %g, want ~1.0", got)
	}
	s := h.snapshot()
	if s.Count != 1000 || s.Min != 0.001 || s.Max != 1.0 {
		t.Errorf("snapshot = %+v, want count=1000 min=0.001 max=1", s)
	}
	if math.Abs(s.Mean-0.5005) > 1e-9 {
		t.Errorf("mean = %g, want 0.5005", s.Mean)
	}
}

// TestRegistrySnapshotJSON checks the export shape: counters, gauges,
// histograms, and extras all land under their keys.
func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.hits").Add(3)
	r.Gauge("b.level").Set(0.25)
	r.Histogram("c.lat").Observe(0.5)
	r.SetExtra("figures", func() any { return []string{"fig3"} })

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]int64             `json:"counters"`
		Gauges     map[string]float64           `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
		Extra      map[string]any               `json:"extra"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, buf.String())
	}
	if decoded.Counters["a.hits"] != 3 {
		t.Errorf("counter a.hits = %d, want 3", decoded.Counters["a.hits"])
	}
	if decoded.Gauges["b.level"] != 0.25 {
		t.Errorf("gauge b.level = %g, want 0.25", decoded.Gauges["b.level"])
	}
	if decoded.Histograms["c.lat"].Count != 1 {
		t.Errorf("histogram c.lat count = %d, want 1", decoded.Histograms["c.lat"].Count)
	}
	if decoded.Extra["figures"] == nil {
		t.Error("extra figures missing from snapshot")
	}
}

// TestLoggerJSONLines checks level filtering and the JSON-lines shape.
func TestLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	fixed := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	l := NewLoggerWithClock(&buf, LevelInfo, func() time.Time { return fixed })
	l.Debug("dropped")
	l.Info("kept", "rounds", 3, "total", 1.5)
	l.Error("bad", "err", "boom")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, lines[0])
	}
	if ev["msg"] != "kept" || ev["level"] != "info" || ev["rounds"] != float64(3) {
		t.Errorf("unexpected event %v", ev)
	}
	if ev["ts"] != "2026-08-06T12:00:00Z" {
		t.Errorf("ts = %v", ev["ts"])
	}
	if !l.Enabled(LevelWarn) || l.Enabled(LevelDebug) {
		t.Error("level filtering broken")
	}
}

// TestParseLevel covers the accepted names and the error path.
func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud): want error")
	}
}

// TestVersionNonEmpty sanity-checks the -version string source.
func TestVersionNonEmpty(t *testing.T) {
	if v := Version(); v == "" {
		t.Fatal("Version() is empty")
	}
}
