package obs

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusRoundTrip exposes a populated registry and feeds the
// output back through the strict parser: every metric must survive with
// its value intact, proving the exposition is well-formed.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.solve.count").Add(7)
	r.Gauge("vdtuned.inflight").Set(2.5)
	h := r.Histogram("server.request.seconds")
	for _, v := range []float64{0.001, 0.002, 0.004, 0.1} {
		h.Observe(v)
	}
	w := r.Window("server.request.window.seconds", 6, 10*time.Second)
	w.Observe(0.05)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples, err := ParsePrometheusText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	if got := samples["core_solve_count"].Value; got != 7 {
		t.Fatalf("counter sample = %g, want 7", got)
	}
	if got := samples["vdtuned_inflight"].Value; got != 2.5 {
		t.Fatalf("gauge sample = %g, want 2.5", got)
	}
	if got := samples["server_request_seconds_count"].Value; got != 4 {
		t.Fatalf("summary count = %g, want 4", got)
	}
	if got := samples[`server_request_seconds{quantile="0.5"}`]; got.Value <= 0 {
		t.Fatalf("missing or zero p50 quantile sample: %+v", got)
	}
	if got := samples["server_request_window_seconds_count"].Value; got != 1 {
		t.Fatalf("window summary count = %g, want 1", got)
	}
}

// TestWritePrometheusSpecialValues: an empty histogram carries ±Inf
// min/max internally but must still expose parseable samples, and NaN
// gauges must round-trip through the special spellings.
func TestWritePrometheusSpecialValues(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g.nan").Set(math.NaN())
	r.Gauge("g.inf").Set(math.Inf(1))
	r.Histogram("h.empty")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples, err := ParsePrometheusText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("special values break the exposition: %v\n%s", err, buf.String())
	}
	if !math.IsNaN(samples["g_nan"].Value) {
		t.Fatalf("NaN gauge = %g", samples["g_nan"].Value)
	}
	if !math.IsInf(samples["g_inf"].Value, 1) {
		t.Fatalf("+Inf gauge = %g", samples["g_inf"].Value)
	}
}

func TestPromNameSanitize(t *testing.T) {
	cases := map[string]string{
		"core.solve.count": "core_solve_count",
		"9lives":           "_lives",
		"a-b c":            "a_b_c",
		"ok_name:x":        "ok_name:x",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestParsePrometheusTextRejects feeds malformed expositions through the
// parser; each must be rejected.
func TestParsePrometheusTextRejects(t *testing.T) {
	bad := map[string]string{
		"empty":             "",
		"bare name":         "just_a_name\n",
		"bad value":         "m notanumber\n",
		"bad name":          "1m 3\n",
		"unknown type":      "# TYPE m sparkline\nm 1\n",
		"malformed type":    "# TYPE m\nm 1\n",
		"duplicate type":    "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"type after sample": "m 1\n# TYPE m counter\n",
		"duplicate sample":  "m 1\nm 2\n",
		"unterminated lbls": "m{a=\"b 1\n",
		"unquoted label":    "m{a=b} 1\n",
		"bad timestamp":     "m 1 notatime\n",
	}
	for name, text := range bad {
		if _, err := ParsePrometheusText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parser accepted %q", name, text)
		}
	}
	good := "# HELP m helpful\n# TYPE m counter\nm 1 1700000000\nn{a=\"x\",b=\"y\"} 2.5\n"
	if _, err := ParsePrometheusText(strings.NewReader(good)); err != nil {
		t.Errorf("parser rejected valid exposition: %v", err)
	}
}

// TestWindowedHistogramSlides drives a fake clock: observations age out
// of the window, and the snapshot merges only live slots.
func TestWindowedHistogramSlides(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	w := NewWindowedHistogram(3, 10*time.Second, clock)

	w.Observe(1.0)
	w.Observe(3.0)
	now = now.Add(10 * time.Second)
	w.Observe(5.0)

	s := w.Snapshot()
	if s.Count != 3 || s.Sum != 9.0 || s.Min != 1.0 || s.Max != 5.0 {
		t.Fatalf("merged snapshot wrong: %+v", s)
	}

	// Advance two more slots: the first slot (1.0, 3.0) falls out.
	now = now.Add(20 * time.Second)
	s = w.Snapshot()
	if s.Count != 1 || s.Sum != 5.0 {
		t.Fatalf("old slot not expired: %+v", s)
	}

	// Far future: everything expires; idle snapshot is zero.
	now = now.Add(time.Hour)
	if s = w.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatalf("window did not drain: %+v", s)
	}

	// A slot index reused after wraparound must reset, not accumulate.
	w.Observe(2.0)
	if s = w.Snapshot(); s.Count != 1 || s.Sum != 2.0 {
		t.Fatalf("slot reuse leaked stale data: %+v", s)
	}
	if s.P50 <= 0 || s.P99 < s.P50 {
		t.Fatalf("quantiles inconsistent: %+v", s)
	}
}

func TestWindowedHistogramConcurrent(t *testing.T) {
	w := NewWindowedHistogram(4, time.Second, nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if s := w.Snapshot(); s.Count != 4000 {
		t.Fatalf("count %d, want 4000", s.Count)
	}
}

func TestRegistryWindowIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Window("w", 4, time.Second)
	b := r.Window("w", 99, time.Hour)
	if a != b {
		t.Fatal("Window not idempotent")
	}
	a.Observe(1)
	snap := r.Snapshot()
	if snap.Windows["w"].Count != 1 {
		t.Fatalf("registry snapshot missing window: %+v", snap.Windows)
	}
}

// TestTraceparent exercises the W3C parser and formatter.
func TestTraceparent(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent: %v", err)
	}
	if !sc.Valid() || !sc.Sampled() {
		t.Fatalf("parsed context invalid: %+v", sc)
	}
	if got := sc.Traceparent(); got != h {
		t.Fatalf("round trip %q != %q", got, h)
	}
	if sc.TraceIDString() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id %q", sc.TraceIDString())
	}

	child := sc.NewChild()
	if child.TraceID != sc.TraceID || child.SpanID == sc.SpanID {
		t.Fatal("NewChild must keep trace id and change span id")
	}

	fresh := NewSpanContext()
	if !fresh.Valid() || !fresh.Sampled() {
		t.Fatalf("NewSpanContext invalid: %+v", fresh)
	}

	ctx := WithSpanContext(context.Background(), sc)
	got, ok := SpanContextFrom(ctx)
	if !ok || got != sc {
		t.Fatal("context round trip failed")
	}
	if _, ok := SpanContextFrom(context.Background()); ok {
		t.Fatal("empty context reported a span context")
	}

	bad := []string{
		"",
		"00-short-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-short-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // reserved version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
	}
	for _, b := range bad {
		if _, err := ParseTraceparent(b); err == nil {
			t.Errorf("accepted bad traceparent %q", b)
		}
	}
}

// TestFlightRecorderWraparound fills the ring past capacity and checks
// order, bounds, and sequence numbers.
func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	if f.Len() != 0 || f.Snapshot() != nil && len(f.Snapshot()) != 0 {
		t.Fatal("fresh recorder not empty")
	}
	for i := 0; i < 10; i++ {
		f.Record(FlightRecord{Path: "/v1/whatif", Status: 200 + i})
	}
	recs := f.Snapshot()
	if len(recs) != 4 || f.Len() != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(6+i) || r.Status != 206+i {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"records"`) {
		t.Fatalf("JSON missing records key: %s", buf.String())
	}

	var nilRec *FlightRecorder
	nilRec.Record(FlightRecord{})
	if nilRec.Snapshot() != nil || nilRec.Len() != 0 {
		t.Fatal("nil recorder not a no-op")
	}
}
