package obs

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil counter is a
// valid no-op, so disabled instrumentation costs one branch.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value (0 for the nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of every histogram: power-of-two
// buckets spanning ~2.3e-10 .. 2.1e9 in the recorded unit (for seconds:
// sub-nanosecond to ~68 years), so the memory footprint is bounded no
// matter how many observations arrive.
const histBuckets = 64

// histBias maps a value's base-2 exponent onto [0, histBuckets).
const histBias = 32

// Histogram is a bounded, lock-free histogram over positive float64
// observations. Quantiles are estimated by log-linear interpolation
// inside power-of-two buckets, so any reported quantile is within a
// factor of 2 of the true order statistic (much closer in practice).
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a positive value to its bucket index.
func bucketOf(v float64) int {
	_, exp := math.Frexp(v) // v = f * 2^exp, f in [0.5, 1)
	b := exp + histBias
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketLow returns the lower bound of bucket b.
func bucketLow(b int) float64 { return math.Ldexp(0.5, b-histBias) }

// newHistogram initializes the min/max sentinels; histograms must be
// created through a Registry (or this constructor), not as bare structs.
func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one observation. Negative and NaN values are clamped
// to zero so the count stays consistent.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.buckets[bucketOf(v)].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveSince records the wall-clock seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-th quantile (q in [0, 1]) by interpolating
// within the containing power-of-two bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total-1)
	var seen float64
	for b := 0; b < histBuckets; b++ {
		n := float64(h.buckets[b].Load())
		if n == 0 {
			continue
		}
		if seen+n > rank {
			lo, hi := bucketLow(b), bucketLow(b+1)
			frac := (rank - seen) / n
			return lo + (hi-lo)*frac
		}
		seen += n
	}
	return math.Float64frombits(h.maxBits.Load())
}

// HistogramSnapshot is the exported view of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// snapshot captures the histogram's summary statistics.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
		Min:   math.Float64frombits(h.minBits.Load()),
		Max:   math.Float64frombits(h.maxBits.Load()),
	}
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
	} else {
		s.Mean = s.Sum / float64(s.Count)
	}
	s.P50 = h.Quantile(0.50)
	s.P95 = h.Quantile(0.95)
	s.P99 = h.Quantile(0.99)
	return s
}

// Registry holds named metrics. Creation is mutex-guarded and idempotent
// (the same name always returns the same metric); updates are atomic on
// the metric itself.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	windows    map[string]*WindowedHistogram
	extras     map[string]func() any
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		windows:    make(map[string]*WindowedHistogram),
		extras:     make(map[string]func() any),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; !ok {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// Window returns (creating if needed) the named sliding-window
// histogram. Like the other constructors it is idempotent: the first
// call fixes the window geometry, later calls return the same instance
// regardless of their arguments.
func (r *Registry) Window(name string, slots int, slotDur time.Duration) *WindowedHistogram {
	r.mu.RLock()
	h, ok := r.windows[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.windows[name]; !ok {
		h = NewWindowedHistogram(slots, slotDur, nil)
		r.windows[name] = h
	}
	return h
}

// SetExtra registers a callback whose result is embedded under the given
// key in every snapshot — e.g. a per-figure summary built by a CLI.
func (r *Registry) SetExtra(key string, fn func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.extras[key] = fn
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CounterValues returns a point-in-time copy of every counter, keyed by
// name — the building block for before/after deltas.
func (r *Registry) CounterValues() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	return out
}

// MetricsSnapshot is the exported view of a whole registry.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Windows    map[string]HistogramSnapshot `json:"windows,omitempty"`
	Extra      map[string]any               `json:"extra,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := MetricsSnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.histograms {
		s.Histograms[n] = h.snapshot()
	}
	if len(r.windows) > 0 {
		s.Windows = make(map[string]HistogramSnapshot, len(r.windows))
		for n, h := range r.windows {
			s.Windows[n] = h.Snapshot()
		}
	}
	if len(r.extras) > 0 {
		s.Extra = make(map[string]any, len(r.extras))
		for k, fn := range r.extras {
			s.Extra[k] = fn()
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteMetricsFile dumps the Global registry to the given path; used by
// CLIs (-metrics-out) and the benchmark harness (DBVIRT_METRICS_OUT).
func WriteMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Global.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
