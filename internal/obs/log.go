package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int32

// Log levels, in increasing severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the conventional lower-case level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel parses a level name ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
	}
}

// Logger writes structured events as JSON lines: one object per event
// with "ts", "level", "msg", and the caller's key/value pairs. The nil
// logger is a valid no-op.
type Logger struct {
	min Level
	now func() time.Time

	mu sync.Mutex
	w  io.Writer
}

// NewLogger creates a logger writing events at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min, now: time.Now}
}

// NewLoggerWithClock is NewLogger with an injectable clock for tests.
func NewLoggerWithClock(w io.Writer, min Level, now func() time.Time) *Logger {
	return &Logger{w: w, min: min, now: now}
}

// Enabled reports whether events at the given level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.min
}

// Debug logs a debug event; kv are alternating key/value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs an info event.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs a warning event.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs an error event.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var sb strings.Builder
	sb.WriteString(`{"ts":`)
	sb.WriteString(jsonQuote(l.now().UTC().Format(time.RFC3339Nano)))
	sb.WriteString(`,"level":`)
	sb.WriteString(jsonQuote(level.String()))
	sb.WriteString(`,"msg":`)
	sb.WriteString(jsonQuote(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		key := fmt.Sprint(kv[i])
		sb.WriteByte(',')
		sb.WriteString(jsonQuote(key))
		sb.WriteByte(':')
		val, err := json.Marshal(kv[i+1])
		if err != nil {
			val, _ = json.Marshal(fmt.Sprint(kv[i+1]))
		}
		sb.Write(val)
	}
	if len(kv)%2 != 0 {
		sb.WriteString(`,"!BADKEY":`)
		val, _ := json.Marshal(fmt.Sprint(kv[len(kv)-1]))
		sb.Write(val)
	}
	sb.WriteString("}\n")
	l.mu.Lock()
	io.WriteString(l.w, sb.String())
	l.mu.Unlock()
}

// jsonQuote JSON-quotes a string.
func jsonQuote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
