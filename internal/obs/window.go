package obs

import (
	"math"
	"sync"
	"time"
)

// WindowedHistogram is a sliding-window companion to Histogram: it keeps
// the same power-of-two buckets in a ring of time slots and reports
// summary statistics over only the slots inside the window, so a scrape
// answers "what were the last N seconds like" instead of "what has
// happened since boot". Slots expire lazily on the next observation or
// snapshot — an idle histogram costs nothing.
//
// Unlike Histogram it is mutex-guarded rather than lock-free: windowed
// views exist for request-rate paths (hundreds per second), not the
// executor's per-batch hot path.
type WindowedHistogram struct {
	mu      sync.Mutex
	now     func() time.Time
	slotDur time.Duration
	slots   []windowSlot
}

// windowSlot is one time-slot's bucket counts; epoch identifies which
// absolute slot the entry holds, so stale entries are recognized and
// reset instead of expired eagerly.
type windowSlot struct {
	epoch   int64
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// NewWindowedHistogram creates a window of slots*slotDur total span. A
// nil clock uses the wall clock; tests inject a fake for determinism.
func NewWindowedHistogram(slots int, slotDur time.Duration, clock func() time.Time) *WindowedHistogram {
	if slots < 1 {
		slots = 1
	}
	if slotDur <= 0 {
		slotDur = 10 * time.Second
	}
	if clock == nil {
		clock = time.Now
	}
	return &WindowedHistogram{now: clock, slotDur: slotDur, slots: make([]windowSlot, slots)}
}

// epoch returns the absolute slot number of the current instant.
func (h *WindowedHistogram) epoch() int64 {
	return h.now().UnixNano() / int64(h.slotDur)
}

// Observe records one observation into the current slot. Negative and
// NaN values clamp to zero, mirroring Histogram.
func (h *WindowedHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	e := h.epoch()
	h.mu.Lock()
	s := &h.slots[e%int64(len(h.slots))]
	if s.epoch != e {
		*s = windowSlot{epoch: e, min: math.Inf(1), max: math.Inf(-1)}
	}
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

// ObserveSince records the wall-clock seconds elapsed since start.
func (h *WindowedHistogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(h.now().Sub(start).Seconds())
}

// Snapshot merges the live slots (those whose epoch lies inside the
// window ending now) into one summary.
func (h *WindowedHistogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	e := h.epoch()
	lo := e - int64(len(h.slots)) + 1
	var merged windowSlot
	merged.min, merged.max = math.Inf(1), math.Inf(-1)
	h.mu.Lock()
	for i := range h.slots {
		s := &h.slots[i]
		if s.epoch < lo || s.epoch > e || s.count == 0 {
			continue
		}
		merged.count += s.count
		merged.sum += s.sum
		if s.min < merged.min {
			merged.min = s.min
		}
		if s.max > merged.max {
			merged.max = s.max
		}
		for b := range s.buckets {
			merged.buckets[b] += s.buckets[b]
		}
	}
	h.mu.Unlock()

	snap := HistogramSnapshot{Count: merged.count, Sum: merged.sum, Min: merged.min, Max: merged.max}
	if merged.count == 0 {
		return HistogramSnapshot{}
	}
	snap.Mean = merged.sum / float64(merged.count)
	snap.P50 = bucketQuantile(&merged.buckets, merged.count, 0.50, merged.max)
	snap.P95 = bucketQuantile(&merged.buckets, merged.count, 0.95, merged.max)
	snap.P99 = bucketQuantile(&merged.buckets, merged.count, 0.99, merged.max)
	return snap
}

// bucketQuantile estimates a quantile from power-of-two bucket counts by
// log-linear interpolation — the same estimator Histogram.Quantile uses.
func bucketQuantile(buckets *[histBuckets]int64, total int64, q, max float64) float64 {
	rank := q * float64(total-1)
	var seen float64
	for b := 0; b < histBuckets; b++ {
		n := float64(buckets[b])
		if n == 0 {
			continue
		}
		if seen+n > rank {
			lo, hi := bucketLow(b), bucketLow(b+1)
			frac := (rank - seen) / n
			return lo + (hi-lo)*frac
		}
		seen += n
	}
	return max
}
