// Package obs is the repo's dependency-free telemetry subsystem: an
// atomic metrics registry (counters, gauges, bounded histograms), a
// hierarchical tracer exportable as Chrome trace_event JSON, and a
// leveled structured (JSON-lines) event logger.
//
// Two usage modes coexist:
//
//   - Metrics are always on. Instrumented packages resolve their
//     counters once (usually in a package var) against the process-wide
//     Global registry; an update is a single atomic add, so the
//     always-on cost is negligible even on hot paths. CLIs dump the
//     registry with -metrics-out and publish it over expvar with
//     -debug-addr.
//
//   - Traces and logs are opt-in. A *Telemetry bundle is plumbed through
//     the layers (core.Problem.Obs, calibration.Config.Obs,
//     experiments.Env.Obs); a nil *Telemetry — the default everywhere —
//     makes every span and log call a nil-check no-op, so instrumented
//     code never branches on configuration.
//
// Nothing in this package imports other dbvirt packages, so any layer
// (vm, optimizer, executor, ...) may depend on it without cycles.
package obs

import "io"

// Global is the process-wide metrics registry. Instrumented packages
// register their counters, gauges, and histograms here; CLIs snapshot it
// for -metrics-out and -debug-addr.
var Global = NewRegistry()

// Telemetry bundles the opt-in telemetry sinks handed down through the
// layers. A nil *Telemetry is fully usable: every method no-ops.
type Telemetry struct {
	// Metrics is the registry snapshotted by exports; it defaults to
	// Global and exists as a field so tests can isolate a registry.
	Metrics *Registry
	// Trace collects spans when non-nil.
	Trace *Tracer
	// Log receives structured events when non-nil.
	Log *Logger
}

// New builds a telemetry bundle over the Global metrics registry.
func New(tracer *Tracer, logger *Logger) *Telemetry {
	return &Telemetry{Metrics: Global, Trace: tracer, Log: logger}
}

// Registry returns the bundle's metrics registry (Global when unset),
// never nil, so callers can register ad-hoc gauges against it.
func (t *Telemetry) Registry() *Registry {
	if t == nil || t.Metrics == nil {
		return Global
	}
	return t.Metrics
}

// Span starts a root span, or returns nil (a no-op span) when tracing is
// off.
func (t *Telemetry) Span(name string) *Span {
	if t == nil || t.Trace == nil {
		return nil
	}
	return t.Trace.Start(name)
}

// Debug logs at debug level; kv are alternating key/value pairs.
func (t *Telemetry) Debug(msg string, kv ...any) {
	if t != nil {
		t.Log.Debug(msg, kv...)
	}
}

// Info logs at info level.
func (t *Telemetry) Info(msg string, kv ...any) {
	if t != nil {
		t.Log.Info(msg, kv...)
	}
}

// Warn logs at warn level.
func (t *Telemetry) Warn(msg string, kv ...any) {
	if t != nil {
		t.Log.Warn(msg, kv...)
	}
}

// Error logs at error level.
func (t *Telemetry) Error(msg string, kv ...any) {
	if t != nil {
		t.Log.Error(msg, kv...)
	}
}

// WriteMetrics writes the bundle's registry snapshot as JSON.
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	return t.Registry().WriteJSON(w)
}
