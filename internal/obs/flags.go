package obs

import (
	"flag"
	"fmt"
	"os"
)

// Flags is the shared telemetry flag bundle of the CLIs: every command
// registers the same -trace-out, -metrics-out, -log-level/-v,
// -debug-addr, and -version flags and hands them to Setup.
type Flags struct {
	TraceOut   string
	MetricsOut string
	DebugAddr  string
	LogLevel   string
	Verbose    bool
	Version    bool
}

// Register adds the telemetry flags to a flag set.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Chrome trace_event JSON file here on exit")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write the metrics registry as JSON here on exit")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve /debug/vars, /debug/pprof, and /metrics on this address")
	fs.StringVar(&f.LogLevel, "log-level", "info", "structured log level: debug, info, warn, error")
	fs.BoolVar(&f.Verbose, "v", false, "shorthand for -log-level debug")
	fs.BoolVar(&f.Version, "version", false, "print the build version and exit")
}

// Setup applies the parsed flags for the named tool. It returns the
// telemetry bundle to plumb through the layers and a close function that
// flushes -trace-out and -metrics-out; handled is true when -version was
// requested and printed (the caller should exit). Logs go to stderr.
func (f *Flags) Setup(tool string) (tel *Telemetry, closeFn func() error, handled bool, err error) {
	if f.Version {
		fmt.Printf("%s %s\n", tool, Version())
		return nil, func() error { return nil }, true, nil
	}
	level := LevelInfo
	if f.LogLevel != "" {
		if level, err = ParseLevel(f.LogLevel); err != nil {
			return nil, nil, false, err
		}
	}
	if f.Verbose {
		level = LevelDebug
	}
	var tracer *Tracer
	if f.TraceOut != "" {
		tracer = NewTracer()
	}
	var logger *Logger
	if f.TraceOut != "" || f.MetricsOut != "" || f.DebugAddr != "" || f.Verbose || f.LogLevel != "info" {
		logger = NewLogger(os.Stderr, level)
	}
	tel = New(tracer, logger)
	if f.DebugAddr != "" {
		addr, err := ServeDebug(f.DebugAddr)
		if err != nil {
			return nil, nil, false, fmt.Errorf("debug server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%s: debug server on http://%s/debug/pprof (metrics at /metrics)\n", tool, addr)
	}
	closeFn = func() error {
		var firstErr error
		if tracer != nil && f.TraceOut != "" {
			if err := tracer.WriteChromeFile(f.TraceOut); err != nil {
				firstErr = err
			}
		}
		if f.MetricsOut != "" {
			if err := writeRegistryFile(tel.Registry(), f.MetricsOut); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return tel, closeFn, false, nil
}

// writeRegistryFile dumps one registry to a path.
func writeRegistryFile(r *Registry, path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
