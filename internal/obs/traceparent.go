package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
)

// SpanContext is a W3C Trace Context identity: a 16-byte trace ID shared
// by every span of one distributed request, an 8-byte span ID naming the
// current hop, and the sampled flag. It is the wire-level companion to
// the Chrome-trace Span: handlers parse it from the incoming traceparent
// header, stamp it onto their spans as an argument, and propagate a
// child context to downstream work.
type SpanContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// Valid reports whether the context carries non-zero trace and span IDs,
// as the W3C spec requires.
func (sc SpanContext) Valid() bool {
	return sc.TraceID != [16]byte{} && sc.SpanID != [8]byte{}
}

// Traceparent renders the context in W3C traceparent form:
// version-traceid-spanid-flags, all lowercase hex.
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x",
		hex.EncodeToString(sc.TraceID[:]),
		hex.EncodeToString(sc.SpanID[:]),
		sc.Flags)
}

// TraceIDString returns the 32-hex-digit trace ID.
func (sc SpanContext) TraceIDString() string { return hex.EncodeToString(sc.TraceID[:]) }

// SpanIDString returns the 16-hex-digit span ID.
func (sc SpanContext) SpanIDString() string { return hex.EncodeToString(sc.SpanID[:]) }

// Sampled reports the sampled bit of the flags field.
func (sc SpanContext) Sampled() bool { return sc.Flags&0x01 != 0 }

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// known-length version whose version byte is not the reserved "ff",
// lowercase hex only, and rejects all-zero trace or span IDs.
func ParseTraceparent(h string) (SpanContext, error) {
	var sc SpanContext
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return sc, fmt.Errorf("traceparent: want 4 fields, got %d", len(parts))
	}
	ver, tid, sid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || ver == "ff" || !isLowerHex(ver) {
		return sc, fmt.Errorf("traceparent: bad version %q", ver)
	}
	// Version 00 has exactly four fields; future versions may append more.
	if ver == "00" && len(parts) != 4 {
		return sc, fmt.Errorf("traceparent: version 00 with %d fields", len(parts))
	}
	if len(tid) != 32 || !isLowerHex(tid) {
		return sc, fmt.Errorf("traceparent: bad trace-id %q", tid)
	}
	if len(sid) != 16 || !isLowerHex(sid) {
		return sc, fmt.Errorf("traceparent: bad parent-id %q", sid)
	}
	if len(flags) != 2 || !isLowerHex(flags) {
		return sc, fmt.Errorf("traceparent: bad flags %q", flags)
	}
	hex.Decode(sc.TraceID[:], []byte(tid))
	hex.Decode(sc.SpanID[:], []byte(sid))
	var fb [1]byte
	hex.Decode(fb[:], []byte(flags))
	sc.Flags = fb[0]
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("traceparent: all-zero trace or span id")
	}
	return sc, nil
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// NewSpanContext mints a fresh sampled root context with random IDs —
// used when a request arrives without a traceparent header.
func NewSpanContext() SpanContext {
	var sc SpanContext
	for !sc.Valid() {
		rand.Read(sc.TraceID[:])
		rand.Read(sc.SpanID[:])
	}
	sc.Flags = 0x01
	return sc
}

// NewChild keeps the trace ID and flags but mints a fresh span ID: the
// identity a handler passes downstream so each hop is distinguishable.
func (sc SpanContext) NewChild() SpanContext {
	child := sc
	for {
		rand.Read(child.SpanID[:])
		if child.SpanID != [8]byte{} && child.SpanID != sc.SpanID {
			return child
		}
	}
}

// EnvTraceparent is the environment variable CLIs read to join an
// externally-initiated trace — the command-line analogue of the HTTP
// traceparent header (a CI harness or orchestration script sets it, and
// every tool it runs lands in the same distributed trace).
const EnvTraceparent = "TRACEPARENT"

// EnvSpanContext returns the trace context propagated via TRACEPARENT,
// continued with a fresh span ID, or a brand-new root context when the
// variable is absent or malformed.
func EnvSpanContext() SpanContext {
	if sc, err := ParseTraceparent(os.Getenv(EnvTraceparent)); err == nil {
		return sc.NewChild()
	}
	return NewSpanContext()
}

// spanContextKey keys a SpanContext inside a context.Context.
type spanContextKey struct{}

// WithSpanContext returns a context carrying sc.
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanContextKey{}, sc)
}

// SpanContextFrom extracts the SpanContext, if any, from ctx.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanContextKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Annotate stamps the trace identity onto a Chrome-trace span so the two
// trace systems can be joined offline by trace ID.
func (sc SpanContext) Annotate(s *Span) {
	if s == nil || !sc.Valid() {
		return
	}
	s.SetArg("trace_id", sc.TraceIDString())
	s.SetArg("span_id", sc.SpanIDString())
}
