package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// FlightRecord is one completed request's summary as kept by the flight
// recorder: enough to reconstruct what the server was doing just before
// an incident without storing bodies or unbounded detail.
type FlightRecord struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	TraceID  string    `json:"trace_id,omitempty"`
	SpanID   string    `json:"span_id,omitempty"`
	Method   string    `json:"method,omitempty"`
	Path     string    `json:"path,omitempty"`
	Status   int       `json:"status,omitempty"`
	Tenant   string    `json:"tenant,omitempty"`
	Micros   int64     `json:"micros"`
	Detail   string    `json:"detail,omitempty"`
	Coalesce string    `json:"coalesce,omitempty"`
}

// FlightRecorder is a bounded ring buffer of the most recent
// FlightRecords. Writes are O(1) and never allocate once the ring is
// warm; readers get a copy in arrival order. The nil recorder no-ops.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []FlightRecord
	next uint64 // total records ever written; ring index is next % len
}

// NewFlightRecorder creates a recorder holding the last n records
// (minimum 1).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{ring: make([]FlightRecord, n)}
}

// Record appends one record, overwriting the oldest when full. The Seq
// field is assigned by the recorder.
func (f *FlightRecorder) Record(rec FlightRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	rec.Seq = f.next
	f.ring[f.next%uint64(len(f.ring))] = rec
	f.next++
	f.mu.Unlock()
}

// Len returns how many records are currently held (≤ capacity).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next < uint64(len(f.ring)) {
		return int(f.next)
	}
	return len(f.ring)
}

// Snapshot returns the held records oldest-first.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := uint64(len(f.ring))
	start, count := uint64(0), f.next
	if f.next > n {
		start, count = f.next-n, n
	}
	out := make([]FlightRecord, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, f.ring[(start+i)%n])
	}
	return out
}

// WriteJSON writes the snapshot as an indented JSON document.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Records []FlightRecord `json:"records"`
	}{Records: f.Snapshot()})
}

// Flight is the process-wide flight recorder, mirroring the Global
// metrics registry: always present, bounded, and shared by every server
// and debug endpoint in the process.
var Flight = NewFlightRecorder(256)
