package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version describes the running binary from the embedded Go build info:
// module version, VCS revision (with a "-dirty" suffix when the working
// tree had uncommitted changes), and the Go toolchain.
func Version() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "(no build info) " + runtime.Version()
	}
	version := info.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return fmt.Sprintf("%s (%s%s, %s)", version, rev, modified, runtime.Version())
	}
	return fmt.Sprintf("%s (%s)", version, runtime.Version())
}
