package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registration (expvar.Publish panics on
// duplicate names).
var publishOnce sync.Once

// publishExpvar exposes the Global registry snapshot under the expvar
// name "dbvirt_metrics".
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("dbvirt_metrics", expvar.Func(func() any {
			return Global.Snapshot()
		}))
	})
}

// HandleMetricsProm serves the Global registry in the Prometheus text
// exposition format.
func HandleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	Global.WritePrometheus(w)
}

// HandleMetricsJSON serves the Global registry snapshot as JSON. Map
// keys are emitted sorted by encoding/json, so two snapshots of the same
// state are byte-identical.
func HandleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	Global.WriteJSON(w)
}

// HandleFlightRecorder serves the process flight recorder as JSON,
// oldest record first.
func HandleFlightRecorder(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	Flight.WriteJSON(w)
}

// ServeDebug starts an HTTP debug endpoint on addr in a background
// goroutine, exposing /debug/vars (expvar, including the Global metrics
// registry), /debug/pprof, /metrics (Prometheus text format),
// /debug/metrics (the same registry as deterministic JSON), and
// /debug/flightrecorder (the recent-request ring buffer). It returns the
// bound address (useful with ":0") or an error if the listener cannot be
// created.
func ServeDebug(addr string) (string, error) {
	publishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", HandleMetricsProm)
	mux.HandleFunc("/debug/metrics", HandleMetricsJSON)
	mux.HandleFunc("/debug/flightrecorder", HandleFlightRecorder)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}
