package sql

import (
	"fmt"
	"strconv"
	"strings"

	"dbvirt/internal/types"
)

// Parse parses one SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected input after statement")
	}
	return stmt, nil
}

// ParseSelect parses a statement that must be a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected SELECT statement, got %T", stmt)
	}
	return sel, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	where := "end of input"
	if t.kind != tokEOF {
		where = fmt.Sprintf("%q (offset %d)", t.text, t.pos)
	}
	return fmt.Errorf("sql: %s at %s", fmt.Sprintf(format, args...), where)
}

// acceptKeyword consumes the token if it is the given keyword.
func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokIdent && p.cur().upper == kw {
		p.i++
		return true
	}
	return false
}

// expectKeyword consumes the keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

// peekKeyword reports whether the current token is the keyword.
func (p *parser) peekKeyword(kw string) bool {
	return p.cur().kind == tokIdent && p.cur().upper == kw
}

// acceptSymbol consumes the token if it is the given symbol.
func (p *parser) acceptSymbol(sym string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.i++
		return true
	}
	return false
}

// expectSymbol consumes the symbol or fails.
func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q", sym)
	}
	return nil
}

// expectIdent consumes and returns an identifier that is not a reserved
// keyword in this position.
func (p *parser) expectIdent(what string) (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errorf("expected %s", what)
	}
	return p.advance().text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.peekKeyword("SELECT"):
		return p.parseSelect()
	case p.peekKeyword("CREATE"):
		return p.parseCreate()
	case p.peekKeyword("INSERT"):
		return p.parseInsert()
	case p.peekKeyword("DELETE"):
		return p.parseDelete()
	case p.peekKeyword("UPDATE"):
		return p.parseUpdate()
	case p.peekKeyword("ANALYZE"):
		return p.parseAnalyze()
	case p.peekKeyword("BEGIN"):
		p.advance()
		p.acceptKeyword("TRANSACTION")
		return &BeginStmt{}, nil
	case p.peekKeyword("COMMIT"):
		p.advance()
		return &CommitStmt{}, nil
	case p.peekKeyword("ROLLBACK"):
		p.advance()
		return &RollbackStmt{}, nil
	case p.peekKeyword("CHECKPOINT"):
		p.advance()
		return &CheckpointStmt{}, nil
	case p.peekKeyword("EXPLAIN"):
		p.advance()
		analyze := p.acceptKeyword("ANALYZE")
		if !p.peekKeyword("SELECT") {
			if analyze {
				return nil, p.errorf("EXPLAIN ANALYZE supports only SELECT")
			}
			return nil, p.errorf("EXPLAIN supports only SELECT")
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: sel.(*SelectStmt), Analyze: analyze}, nil
	default:
		return nil, p.errorf("expected a statement")
	}
}

// reservedAfterFrom are keywords that terminate a table alias.
var reservedAfterFrom = map[string]bool{
	"WHERE": true, "GROUP": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"JOIN": true, "INNER": true, "LEFT": true, "ON": true, "AND": true, "OR": true,
}

func (p *parser) parseSelect() (Statement, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	sel.Distinct = p.acceptKeyword("DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, fi)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			item, err := p.parseOrderItem()
			if err != nil {
				return nil, err
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		if p.cur().kind != tokNumber {
			return nil, p.errorf("expected LIMIT count")
		}
		n, err := strconv.ParseInt(p.advance().text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT count")
		}
		sel.Limit = &n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent("alias")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.cur().kind == tokIdent && !reservedSelectTail[p.cur().upper] {
		item.Alias = p.advance().text
	}
	return item, nil
}

// reservedSelectTail are keywords that end the select list (so a bare
// identifier after an expression is an implicit alias only if not one of
// these).
var reservedSelectTail = map[string]bool{
	"FROM": true, "WHERE": true, "GROUP": true, "HAVING": true,
	"ORDER": true, "LIMIT": true, "AS": true,
}

func (p *parser) parseOrderItem() (OrderItem, error) {
	var item OrderItem
	if p.cur().kind == tokNumber && !strings.Contains(p.cur().text, ".") {
		n, err := strconv.Atoi(p.advance().text)
		if err != nil || n < 1 {
			return item, p.errorf("invalid ORDER BY position")
		}
		item.Position = n
	} else {
		e, err := p.parseExpr()
		if err != nil {
			return item, err
		}
		item.Expr = e
	}
	if p.acceptKeyword("DESC") {
		item.Desc = true
	} else {
		p.acceptKeyword("ASC")
	}
	return item, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	left, err := p.parseFromPrimary()
	if err != nil {
		return nil, err
	}
	var item FromItem = left
	for {
		var jt JoinType
		switch {
		case p.peekKeyword("JOIN"):
			p.advance()
			jt = InnerJoin
		case p.peekKeyword("INNER"):
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = InnerJoin
		case p.peekKeyword("LEFT"):
			p.advance()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = LeftJoin
		default:
			return item, nil
		}
		right, err := p.parseFromPrimary()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item = &JoinExpr{Type: jt, Left: item, Right: right, On: on}
	}
}

// parseFromPrimary parses a base table reference or a parenthesized
// derived table.
func (p *parser) parseFromPrimary() (FromItem, error) {
	if p.acceptSymbol("(") {
		if !p.peekKeyword("SELECT") {
			return nil, p.errorf("expected SELECT in derived table")
		}
		inner, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		p.acceptKeyword("AS")
		alias, err := p.expectIdent("derived table alias")
		if err != nil {
			return nil, fmt.Errorf("sql: derived tables require an alias: %w", err)
		}
		return &SubqueryRef{Select: inner.(*SelectStmt), Alias: alias}, nil
	}
	return p.parseTableRef()
}

func (p *parser) parseTableRef() (*TableRef, error) {
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	ref := &TableRef{Table: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent("alias")
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if p.cur().kind == tokIdent && !reservedAfterFrom[p.cur().upper] {
		ref.Alias = p.advance().text
	}
	return ref, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	switch {
	case p.acceptKeyword("TABLE"):
		name, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var cols []ColumnDef
		for {
			colName, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			kind, err := p.parseType()
			if err != nil {
				return nil, err
			}
			cols = append(cols, ColumnDef{Name: colName, Kind: kind})
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateTableStmt{Name: name, Columns: cols}, nil
	case p.acceptKeyword("INDEX"):
		name, err := p.expectIdent("index name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		col, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Name: name, Table: table, Column: col}, nil
	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseType() (types.Kind, error) {
	name, err := p.expectIdent("type name")
	if err != nil {
		return 0, err
	}
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT":
		return types.KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL":
		return types.KindFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		// Optional length, ignored.
		if p.acceptSymbol("(") {
			if p.cur().kind != tokNumber {
				return 0, p.errorf("expected length")
			}
			p.advance()
			if err := p.expectSymbol(")"); err != nil {
				return 0, err
			}
		}
		return types.KindString, nil
	case "BOOL", "BOOLEAN":
		return types.KindBool, nil
	case "DATE":
		return types.KindDate, nil
	default:
		return 0, p.errorf("unknown type %q", name)
	}
}

func (p *parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: table}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.advance() // UPDATE
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	upd := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Sets = append(upd.Sets, SetClause{Column: col, Value: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = e
	}
	return upd, nil
}

func (p *parser) parseAnalyze() (Statement, error) {
	p.advance() // ANALYZE
	st := &AnalyzeStmt{}
	if p.cur().kind == tokIdent {
		st.Table = p.advance().text
	}
	return st, nil
}

// --- expressions ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]BinaryOp{
	"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Postfix predicates: BETWEEN, IN, LIKE, IS NULL, optionally negated.
	not := false
	if p.peekKeyword("NOT") {
		// Only consume NOT if followed by BETWEEN/IN/LIKE.
		save := p.i
		p.advance()
		if p.peekKeyword("BETWEEN") || p.peekKeyword("IN") || p.peekKeyword("LIKE") {
			not = true
		} else {
			p.i = save
			return l, nil
		}
	}
	switch {
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Not: not, E: l, Lo: lo, Hi: hi}, nil
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{Not: not, E: l, List: list}, nil
	case p.acceptKeyword("LIKE"):
		if p.cur().kind != tokString {
			return nil, p.errorf("LIKE pattern must be a string literal")
		}
		return &LikeExpr{Not: not, E: l, Pattern: p.advance().text}, nil
	case p.acceptKeyword("IS"):
		isNot := p.acceptKeyword("NOT")
		if !p.acceptKeyword("NULL") {
			return nil, p.errorf("expected NULL after IS")
		}
		return &IsNullExpr{Not: isNot, E: l}, nil
	}
	if p.cur().kind == tokSymbol {
		if op, ok := comparisonOps[p.cur().text]; ok {
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.acceptSymbol("+"):
			op = OpAdd
		case p.acceptSymbol("-"):
			op = OpSub
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.acceptSymbol("*"):
			op = OpMul
		case p.acceptSymbol("/"):
			op = OpDiv
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok {
			switch lit.Value.Kind {
			case types.KindInt:
				return &Literal{Value: types.NewInt(-lit.Value.I)}, nil
			case types.KindFloat:
				return &Literal{Value: types.NewFloat(-lit.Value.F)}, nil
			}
		}
		return &NegExpr{E: e}, nil
	}
	p.acceptSymbol("+")
	return p.parsePrimary()
}

var aggFuncs = map[string]AggFunc{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.text)
			}
			return &Literal{Value: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid integer %q", t.text)
		}
		return &Literal{Value: types.NewInt(n)}, nil
	case tokString:
		p.advance()
		return &Literal{Value: types.NewString(t.text)}, nil
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("expected expression")
	case tokIdent:
		upper := t.upper
		// Typed literals: DATE 'yyyy-mm-dd'.
		if upper == "DATE" && p.toks[p.i+1].kind == tokString {
			p.advance()
			s := p.advance().text
			v, err := types.ParseDate(s)
			if err != nil {
				return nil, p.errorf("invalid date literal %q", s)
			}
			return &Literal{Value: v}, nil
		}
		if upper == "TRUE" {
			p.advance()
			return &Literal{Value: types.NewBool(true)}, nil
		}
		if upper == "FALSE" {
			p.advance()
			return &Literal{Value: types.NewBool(false)}, nil
		}
		if upper == "NULL" {
			p.advance()
			return &Literal{Value: types.Null}, nil
		}
		// Aggregate call.
		if fn, ok := aggFuncs[upper]; ok && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			p.advance()
			p.advance() // (
			if p.acceptSymbol("*") {
				if fn != AggCount {
					return nil, p.errorf("only COUNT accepts *")
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &AggExpr{Func: fn, Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &AggExpr{Func: fn, Arg: arg}, nil
		}
		// Column reference, possibly qualified.
		p.advance()
		if p.acceptSymbol(".") {
			col, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	default:
		return nil, p.errorf("expected expression")
	}
}
