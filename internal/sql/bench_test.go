package sql

import "testing"

var benchQueries = map[string]string{
	"point": `SELECT a FROM t WHERE id = 42`,
	"tpchQ1": `SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice),
		sum(l_extendedprice * (1 - l_discount)), avg(l_quantity), count(*)
		FROM lineitem WHERE l_shipdate <= date '1998-09-01'
		GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`,
	"nested": `SELECT c_count, count(*) AS custdist
		FROM (SELECT c_custkey, count(o_orderkey) AS c_count
		      FROM customer LEFT OUTER JOIN orders
		        ON c_custkey = o_custkey AND o_comment NOT LIKE '%special%requests%'
		      GROUP BY c_custkey) c_orders
		GROUP BY c_count ORDER BY custdist DESC, c_count DESC`,
}

func BenchmarkParse(b *testing.B) {
	for name, q := range benchQueries {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Parse(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLex(b *testing.B) {
	q := benchQueries["tpchQ1"]
	for i := 0; i < b.N; i++ {
		if _, err := lex(q); err != nil {
			b.Fatal(err)
		}
	}
}
